// Package doscope is a from-scratch Go reproduction of "Millions of
// Targets Under Attack: a Macroscopic Characterization of the DoS
// Ecosystem" (Jonker, King, Krupp, Rossow, Sperotto, Dainotti — IMC 2017).
//
// The repository builds every system the paper relies on — a network
// telescope with the Moore et al. backscatter classifier, the AmpPot
// amplification honeypot fleet, an OpenINTEL-style active DNS measurement
// platform (with its own RFC 1035 codec and authoritative UDP server), IP
// geolocation and prefix-to-AS metadata, DPS-use detection — plus a
// calibrated scenario generator that substitutes for the restricted
// measurement data, and the fusion framework that reproduces every table
// and figure of the paper's evaluation.
//
// # The attack event store
//
// Both sensor pipelines feed attack.Store, which shards events by
// day-of-window and answers analyses through a composable query API
// instead of a materialized slice:
//
//	n := store.Query().
//		Source(attack.SourceHoneypot).
//		Vectors(attack.VectorNTP).
//		Days(0, 364).
//		Count() // answered from the per-day count index, no scan
//
// Terminal operations are Iter (a Go range-over-func sequence),
// IterByStart (both data sets merged in start-time order), Count,
// CountByVector, CountByDay, GroupByTarget, and attack.Fold, a parallel
// aggregation that fans out one task per day-range shard and merges
// partials deterministically. Every table/figure method in internal/core
// is built on these primitives; Store.Events remains only as a deprecated
// compatibility shim (returning a fresh defensive copy per call).
//
// # Live ingest: pending tails, sealing, and index deltas
//
// Mutation cost is proportional to the delta, not the store. Add parks
// the event in its shard's small unsorted pending tail (O(1), nothing
// invalidated); counting terminals answer sealed rows from the per-day
// count and by-target indexes and fold in the pending tails by bounded
// linear scan. Sealing — automatic at a small tail threshold, per
// touched shard after an AddBatch, or explicit via Seal, always on the
// writer's side — stable-sorts just the tail, sorted-merges it into the
// shard's order index, and applies index deltas for the newly sealed
// rows only. Physical rows never move, so (shard, row) handles stay
// valid for the life of the store, and a from-scratch index rebuild
// happens at most once per store lifetime. The amppot live pipeline
// streams completed events into a queried store's ingest queue as
// their flows close (Fleet.StreamTo), with cmd/amppot -flush as the
// store's drain tick; Fleet.DrainTo/AddBatch remain the amortized
// batch path for bulk loads.
//
// # Concurrency: MPSC ingest, published immutable views
//
// A Store is safe for any number of concurrent producers and any
// number of concurrent readers. Producers (Add/AddBatch) enqueue into
// a bounded MPSC ingest queue; a single drainer applies every queued
// batch in enqueue order, seals each touched shard at most once, and
// atomically publishes ONE immutable view (shard snapshots plus count
// index) covering all of them — so publication cost is paid per drain,
// not per mutation, and concurrent producers coalesce instead of
// serializing on full writer passes. The zero-value store drains
// synchronously (AddBatch returns published: read-your-writes);
// StartIngest switches to a background drainer publishing once per
// tick, with Flush as the visibility barrier and Close as the
// exactly-once final drain — the cmd/amppot live pipeline runs this
// way, with -flush as the tick. Every query terminal loads the
// published view once when it starts and runs lock-free against it —
// no read path ever takes a lock, seals a tail, or mutates shard
// state. Readers observe whole-batch prefixes of the enqueue order: an
// AddBatch becomes visible all at once, never partially, and a drain
// that coalesced several batches publishes them as one step. Terminals
// that need sorted order merge pending tails on the fly through a
// read-only cursor instead of sealing, and the lazy index builds are
// once-per-lifetime: the first reader that needs an index builds it
// against its own snapshot and the writer adopts it on the next
// mutation. This is what lets cmd/amppot stream, query, and serve its
// capture with no store mutex, and federation.Server run concurrent
// handlers over a live store.
//
// # Columnar layout and the scratch-Event contract
//
// Each shard stores its events column-wise: the hot filter columns
// (Start, Target, and a packed Source|Vector key, ~14 bytes per event)
// are all a filtered scan or count reads, cold payload columns are
// touched only for matching rows, and port lists live in a shared
// per-shard arena addressed by (offset, length). Iter, IterByStart and
// Fold yield a per-iteration scratch *Event materialized from the
// columns: it is valid until the next yield, and its Ports slice aliases
// store-owned memory. Under live ingest that aliasing is still safe —
// appends never move arena entries — but the scratch event itself is
// only valid until the next yield, so callers that retain events across
// iterations must copy them (GroupByTarget and Events return stable
// copies).
//
// # On-disk formats
//
// Stores persist as CSV, as the record-oriented DOSEVT01 stream
// (Store.WriteBinary/ReadBinary), or as the column-oriented DOSEVT02
// segment (Store.WriteSegment/OpenSegment/OpenSegmentFile): the shard
// columns written verbatim as aligned per-shard blocks plus a footer of
// offsets, which a reader mmaps and serves a Store from directly —
// opening a multi-GB capture in O(1) time and memory. OpenEventsFile
// detects either codec by magic. docs/FORMATS.md specifies every layout
// byte-for-byte.
//
// # Federation
//
// internal/federation extends the query plane across processes, the
// paper's join of independent vantage points: a Server exposes a site's
// store (including a live amppot capture, via cmd/amppot -serve) over
// the DOSFED01 frame protocol — handlers run concurrently as lock-free
// reads of the store's published view — and RemoteStore satisfies the
// narrow attack.Queryable contract, so attack.QueryBackends plans mix
// local stores and remote sites:
//
//	n, err := attack.QueryBackends(localStore, federation.Dial("site:9041")).
//		Vectors(attack.VectorNTP).
//		Count()
//
// Query filters compile to a portable attack.Plan (20 bytes on the
// wire); counting terminals come back as fixed-size index partials —
// O(index cells), never O(events) — merged deterministically in backend
// order, and iteration terminals fetch matching events as DOSEVT02
// segments opened zero-copy. cmd/doscope -federate aggregates sites
// from the command line; examples/federation is a runnable two-site
// walkthrough.
//
// Start with the README and the canonical references under docs/
// (ARCHITECTURE.md, FORMATS.md), run `go run ./examples/quickstart`, or
// regenerate the full evaluation with `go test -bench=. .` or
// `go run ./cmd/doscope`.
package doscope

// Package doscope is a from-scratch Go reproduction of "Millions of
// Targets Under Attack: a Macroscopic Characterization of the DoS
// Ecosystem" (Jonker, King, Krupp, Rossow, Sperotto, Dainotti — IMC 2017).
//
// The repository builds every system the paper relies on — a network
// telescope with the Moore et al. backscatter classifier, the AmpPot
// amplification honeypot fleet, an OpenINTEL-style active DNS measurement
// platform (with its own RFC 1035 codec and authoritative UDP server), IP
// geolocation and prefix-to-AS metadata, DPS-use detection — plus a
// calibrated scenario generator that substitutes for the restricted
// measurement data, and the fusion framework that reproduces every table
// and figure of the paper's evaluation.
//
// # The attack event store
//
// Both sensor pipelines feed attack.Store, which shards events by
// day-of-window and answers analyses through a composable query API
// instead of a materialized slice:
//
//	n := store.Query().
//		Source(attack.SourceHoneypot).
//		Vectors(attack.VectorNTP).
//		Days(0, 364).
//		Count() // answered from the per-day count index, no scan
//
// Terminal operations are Iter (a Go range-over-func sequence),
// IterByStart (both data sets merged in start-time order), Count,
// CountByVector, CountByDay, GroupByTarget, and attack.Fold, a parallel
// aggregation that fans out one task per day-range shard and merges
// partials deterministically. Every table/figure method in internal/core
// is built on these primitives; Store.Events remains only as a deprecated
// compatibility shim.
//
// Start with the README, run `go run ./examples/quickstart`, or regenerate
// the full evaluation with `go test -bench=. .` or `go run ./cmd/doscope`.
package doscope

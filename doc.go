// Package doscope is a from-scratch Go reproduction of "Millions of
// Targets Under Attack: a Macroscopic Characterization of the DoS
// Ecosystem" (Jonker, King, Krupp, Rossow, Sperotto, Dainotti — IMC 2017).
//
// The repository builds every system the paper relies on — a network
// telescope with the Moore et al. backscatter classifier, the AmpPot
// amplification honeypot fleet, an OpenINTEL-style active DNS measurement
// platform (with its own RFC 1035 codec and authoritative UDP server), IP
// geolocation and prefix-to-AS metadata, DPS-use detection — plus a
// calibrated scenario generator that substitutes for the restricted
// measurement data, and the fusion framework that reproduces every table
// and figure of the paper's evaluation.
//
// Start with the README, run `go run ./examples/quickstart`, or regenerate
// the full evaluation with `go test -bench=. .` or `go run ./cmd/doscope`.
package doscope

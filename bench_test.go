// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each printing the paper-shaped rows it regenerates (once),
// plus ablation benchmarks for the design choices DESIGN.md calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem .
package doscope_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doscope/internal/amppot"
	"doscope/internal/attack"
	"doscope/internal/core"
	"doscope/internal/dossim"
	"doscope/internal/ipmeta"
	"doscope/internal/netx"
	"doscope/internal/packet"
	"doscope/internal/report"
	"doscope/internal/telescope"
	"doscope/internal/webmodel"
)

// benchScale reproduces the paper at 1/1000: ≈20.9k attack events and
// 210k Web sites over the real 731-day window.
const benchScale = 0.001

var (
	benchOnce sync.Once
	benchSc   *dossim.Scenario
	benchErr  error
)

func benchScenario(b *testing.B) *dossim.Scenario {
	b.Helper()
	benchOnce.Do(func() {
		benchSc, benchErr = dossim.Generate(dossim.Config{Seed: 42, Scale: benchScale})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSc
}

func freshDataset(b *testing.B) *core.Dataset {
	sc := benchScenario(b)
	return core.New(sc.Telescope, sc.Honeypot, sc.Plan, sc.History, sc.Cfg.WindowDays)
}

// printOnce emits the regenerated rows exactly once per bench target.
var printedSections sync.Map

func printOnce(key, text string) {
	if _, loaded := printedSections.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s (scale %g) =====\n%s", key, benchScale, text)
	}
}

func BenchmarkTable1AttackEvents(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Table 1", report.Table1(ds.Table1()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := freshDataset(b)
		_ = ds.Table1()
	}
}

func BenchmarkTable2DNSDataset(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Table 2", report.Table2(ds.Table2()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Table2()
	}
}

func BenchmarkTable3DPSUse(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Table 3", report.Table3(ds.Table3()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Table3()
	}
}

func BenchmarkTable4CountryRanking(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Table 4", report.Table4("a (telescope)", ds.Table4(attack.SourceTelescope, 5))+
		report.Table4("b (honeypot)", ds.Table4(attack.SourceHoneypot, 5)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Table4(attack.SourceTelescope, 5)
		_ = ds.Table4(attack.SourceHoneypot, 5)
	}
}

func BenchmarkTable5IPProtocols(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Table 5", report.Mix("Table 5: IP protocol distribution", ds.Table5()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Table5()
	}
}

func BenchmarkTable6ReflectionProtocols(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Table 6", report.Mix("Table 6: reflection protocol distribution", ds.Table6()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Table6()
	}
}

func BenchmarkTable7PortCardinality(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Table 7", report.Mix("Table 7: target port cardinality", ds.Table7()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Table7()
	}
}

func BenchmarkTable8TargetPorts(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Table 8", report.Mix("Table 8a: single-port TCP services", ds.Table8(attack.VectorTCP, 5))+
		report.Mix("Table 8b: single-port UDP services", ds.Table8(attack.VectorUDP, 5)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Table8(attack.VectorTCP, 5)
		_ = ds.Table8(attack.VectorUDP, 5)
	}
}

func BenchmarkTable9IntensityOverWebsites(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Table 9", report.Table9(ds.Table9()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := freshDataset(b)
		_ = ds.Table9()
	}
}

func BenchmarkFigure1TimeSeries(b *testing.B) {
	ds := freshDataset(b)
	tel, hp, comb := ds.Figure1()
	printOnce("Figure 1", report.Figure1(tel, hp, comb))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = ds.Figure1()
	}
}

func BenchmarkFigure2DurationCDF(b *testing.B) {
	ds := freshDataset(b)
	tel, hp := ds.Figure2()
	printOnce("Figure 2", report.Figure2(tel, hp))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ds.Figure2()
	}
}

func BenchmarkFigure3TelescopeIntensity(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Figure 3", report.Figure3(ds.Figure3()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Figure3()
	}
}

func BenchmarkFigure4HoneypotIntensity(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Figure 4", report.Figure4(ds.Figure4()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Figure4()
	}
}

func BenchmarkFigure5HighIntensitySeries(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Figure 5", report.Figure5(ds.Figure5()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Figure5()
	}
}

func BenchmarkFigure6CoHosting(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Figure 6", report.Figure6(ds.Figure6()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := freshDataset(b)
		_ = ds.Figure6()
	}
}

func BenchmarkFigure7WebImpactSeries(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Figure 7", report.Figure7(ds.Figure7(), ds.WindowDays))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := freshDataset(b)
		_ = ds.Figure7()
	}
}

func BenchmarkFigure8Taxonomy(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Figure 8", report.Figure8(ds.Figure8()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := freshDataset(b)
		_ = ds.Figure8()
	}
}

func BenchmarkFigure9AttackFrequency(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Figure 9", report.Figure9(ds.Figure9()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Figure9()
	}
}

func BenchmarkFigure10MigrationDelay(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Figure 10", report.Figure10(ds.Figure10()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Figure10()
	}
}

func BenchmarkFigure11LongAttackMigration(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Figure 11", report.Figure11(ds.Figure11()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Figure11()
	}
}

func BenchmarkJointAttacks(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Joint attacks (§4)", report.Joint(ds.JointAttacks()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.JointAttacks()
	}
}

func BenchmarkWebImpactAggregates(b *testing.B) {
	ds := freshDataset(b)
	printOnce("Web impact (§5)", report.WebImpact(ds.WebImpactStats()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := freshDataset(b)
		_ = ds.WebImpactStats()
	}
}

func BenchmarkScenarioGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dossim.Generate(dossim.Config{Seed: int64(i), Scale: 0.0002}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks ------------------------------------------------

// synFlood builds a deterministic, time-sorted backscatter stream:
// victims each emit a 1 pps SYN/ACK flood of packetsPer packets, with
// mid-attack lulls of the given lengths inserted at even fractions of the
// flood (a 150 s lull splits flows under a 60 s timeout but not under the
// Moore 300 s timeout; a 400 s lull splits both).
func synFlood(b *testing.B, darknet netx.Prefix, victimNet byte, victims, packetsPer int, lulls []int64) []struct {
	ts   int64
	data []byte
} {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	var out []struct {
		ts   int64
		data []byte
	}
	buf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	for v := 0; v < victims; v++ {
		victim := netx.AddrFrom4(203, victimNet, byte(v>>8), byte(v))
		base := attack.WindowStart + int64(v)*5
		for i := 0; i < packetsPer; i++ {
			ts := base + int64(i)
			for li, lull := range lulls {
				if i > (li+1)*packetsPer/(len(lulls)+1) {
					ts += lull
				}
			}
			dst := darknet.First() + netx.Addr(rng.Int63n(int64(darknet.NumAddrs())))
			ip := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolTCP, Src: victim, Dst: dst}
			tcp := &packet.TCP{SrcPort: 80, DstPort: uint16(2000 + i), Flags: packet.TCPSyn | packet.TCPAck}
			tcp.SetNetworkLayer(victim, dst)
			if err := packet.SerializeLayers(buf, opts, ip, tcp); err != nil {
				b.Fatal(err)
			}
			out = append(out, struct {
				ts   int64
				data []byte
			}{ts, append([]byte(nil), buf.Bytes()...)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ts < out[j].ts })
	return out
}

// BenchmarkAblationFlowTimeout shows how the 300s flow timeout (Moore et
// al.) merges or splits attacks: the same stream (with 400s lulls)
// classified under different timeouts yields different event counts.
func BenchmarkAblationFlowTimeout(b *testing.B) {
	darknet := netx.MustParsePrefix("44.0.0.0/8")
	stream := synFlood(b, darknet, 0, 50, 400, []int64{150, 400})
	for _, timeout := range []int64{60, 300, 3600} {
		timeout := timeout
		b.Run(fmt.Sprintf("timeout=%ds", timeout), func(b *testing.B) {
			events := 0
			for i := 0; i < b.N; i++ {
				cfg := telescope.DefaultConfig(darknet)
				cfg.FlowTimeout = timeout
				c := telescope.New(cfg)
				for _, p := range stream {
					c.ProcessPacket(p.ts, p.data)
				}
				c.Flush()
				events = len(c.Events())
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// BenchmarkAblationMooreThresholds quantifies the low-intensity filter:
// with the filter off, scan-like flows survive as events.
func BenchmarkAblationMooreThresholds(b *testing.B) {
	darknet := netx.MustParsePrefix("44.0.0.0/8")
	// Mix real floods with sub-threshold dribbles.
	stream := synFlood(b, darknet, 0, 30, 300, nil)
	dribble := synFlood(b, darknet, 1, 200, 8, nil)
	stream = append(stream, dribble...)
	sort.Slice(stream, func(i, j int) bool { return stream[i].ts < stream[j].ts })
	for _, disabled := range []bool{false, true} {
		disabled := disabled
		name := "filter=on"
		if disabled {
			name = "filter=off"
		}
		b.Run(name, func(b *testing.B) {
			events := 0
			for i := 0; i < b.N; i++ {
				cfg := telescope.DefaultConfig(darknet)
				cfg.DisableFilter = disabled
				c := telescope.New(cfg)
				for _, p := range stream {
					c.ProcessPacket(p.ts, p.data)
				}
				c.Flush()
				events = len(c.Events())
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// BenchmarkAblationLPMTrieVsLinear compares the radix trie against the
// linear reference on the pfx2as workload of the fusion pipeline.
func BenchmarkAblationLPMTrieVsLinear(b *testing.B) {
	plan, err := ipmeta.BuildPlan(ipmeta.PlanConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var linear ipmeta.LinearPfx2AS
	for i := range plan.ASes {
		for _, p := range plan.ASes[i].Prefixes {
			linear.Insert(p, plan.ASes[i].Num)
		}
	}
	rng := rand.New(rand.NewSource(2))
	addrs := make([]netx.Addr, 4096)
	for i := range addrs {
		as := &plan.ASes[rng.Intn(len(plan.ASes))]
		addrs[i], _ = plan.RandomAddrInAS(rng, as.Num)
	}
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan.Trie.Lookup(addrs[i%len(addrs)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linear.Lookup(addrs[i%len(addrs)])
		}
	})
}

// BenchmarkAblationEventLevelVsPacketLevel measures the cost of full
// packet-level fidelity against the event-level fast path at equal scale.
func BenchmarkAblationEventLevelVsPacketLevel(b *testing.B) {
	plan, err := ipmeta.BuildPlan(ipmeta.PlanConfig{Seed: 9, NumSixteens: 512, NumActive24: 800})
	if err != nil {
		b.Fatal(err)
	}
	for _, packetLevel := range []bool{false, true} {
		packetLevel := packetLevel
		name := "event-level"
		if packetLevel {
			name = "packet-level"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := dossim.Generate(dossim.Config{
					Seed: 9, Scale: 1e-5, Plan: plan, PacketLevel: packetLevel,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHoneypotRequestPath measures the per-request cost of the
// honeypot hot path (emulator + rate limiter + collector).
func BenchmarkHoneypotRequestPath(b *testing.B) {
	fleet := amppot.NewFleet(amppot.DefaultConfig())
	req := make([]byte, 8)
	req[0], req[3] = 0x17, 42
	victim := netx.MustParseAddr("203.0.113.9")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet.HandleRequest(i, attack.WindowStart+int64(i/100), victim, attack.VectorNTP, req)
	}
}

// BenchmarkMailImpact regenerates the §8 mail-infrastructure extension.
func BenchmarkMailImpact(b *testing.B) {
	sc := benchScenario(b)
	ds := freshDataset(b)
	ds.MailIdx = sc.Web
	printOnce("Mail impact (§8 extension)", report.Mail(ds.MailImpactStats()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := freshDataset(b)
		ds.MailIdx = sc.Web
		_ = ds.MailImpactStats()
	}
}

// --- query-vs-scan benchmarks (sharded store API) -----------------------

// queryBenchScale reproduces the paper's event volumes at 1/100
// (≈125k telescope + 84k honeypot events); the metadata models are kept
// small so scenario generation stays fast.
const queryBenchScale = 0.01

var (
	qbOnce sync.Once
	qbTel  *attack.Store
	qbHp   *attack.Store
	qbErr  error
)

func queryBenchStores(b *testing.B) (tel, hp *attack.Store) {
	b.Helper()
	qbOnce.Do(func() {
		plan, err := ipmeta.BuildPlan(ipmeta.PlanConfig{Seed: 7, NumActive24: 65000})
		if err != nil {
			qbErr = err
			return
		}
		web, err := webmodel.Build(webmodel.Config{
			Seed: 8, NumDomains: 20000, Plan: plan, WindowDays: attack.WindowDays,
		}, nil)
		if err != nil {
			qbErr = err
			return
		}
		sc, err := dossim.Generate(dossim.Config{Seed: 7, Scale: queryBenchScale, Plan: plan, Web: web})
		if err != nil {
			qbErr = err
			return
		}
		qbTel, qbHp = sc.Telescope, sc.Honeypot
		// Warm the lazy seal, count, target-permutation, and target-
		// bitmap indexes so both sides measure steady state.
		qbTel.Seal()
		qbHp.Seal()
		qbTel.Query().Count()
		qbHp.Query().Count()
		qbTel.Query().TargetPrefix(0, 8).Count()
		qbHp.Query().TargetPrefix(0, 8).Count()
		qbTel.UniqueTargets()
		qbHp.UniqueTargets()
	})
	if qbErr != nil {
		b.Fatal(qbErr)
	}
	return qbTel, qbHp
}

var benchSink int

// BenchmarkAggPerVector compares the seed's full-scan per-vector rollup
// (the Table 5/6 aggregation class) against the count-index query path.
func BenchmarkAggPerVector(b *testing.B) {
	tel, hp := queryBenchStores(b)
	// Events() now returns a defensive copy per call; materialize once
	// so the scan side measures the seed's flat-slice walk, not the copy.
	telEvs, hpEvs := tel.Events(), hp.Events()
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var counts [attack.NumVectors]int
			for _, evs := range [][]attack.Event{telEvs, hpEvs} {
				for _, e := range evs {
					counts[e.Vector]++
				}
			}
			benchSink = counts[attack.VectorNTP]
		}
	})
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counts := attack.QueryStores(tel, hp).CountByVector()
			benchSink = counts[attack.VectorNTP]
		}
	})
}

// BenchmarkAggPerDay compares the full-scan per-day event rollup (the
// Figure 1 attack-count series) against the count-index query path.
func BenchmarkAggPerDay(b *testing.B) {
	tel, hp := queryBenchStores(b)
	telEvs, hpEvs := tel.Events(), hp.Events()
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			daily := make([]int, attack.WindowDays)
			for _, evs := range [][]attack.Event{telEvs, hpEvs} {
				for _, e := range evs {
					if d := e.Day(); d >= 0 && d < attack.WindowDays {
						daily[d]++
					}
				}
			}
			benchSink = daily[0]
		}
	})
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			daily := attack.QueryStores(tel, hp).CountByDay()
			benchSink = daily[0]
		}
	})
}

// BenchmarkAggVectorDayRange counts NTP reflection events in a 90-day
// slice of the window: the query path prunes to ~1/8 of the shards and
// answers from the index instead of scanning every event.
func BenchmarkAggVectorDayRange(b *testing.B) {
	_, hp := queryBenchStores(b)
	hpEvs := hp.Events()
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, e := range hpEvs {
				if d := e.Day(); e.Vector == attack.VectorNTP && d >= 300 && d <= 389 {
					n++
				}
			}
			benchSink = n
		}
	})
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = hp.Query().Vectors(attack.VectorNTP).Days(300, 389).Count()
		}
	})
}

// BenchmarkAggDailyUniqueTargets compares the sequential full-scan daily
// unique-target series (the Figure 1 targets panel) against the bitmap
// terminal: per-shard roaring unions and popcounts instead of hashing
// every (day, target) stamp.
func BenchmarkAggDailyUniqueTargets(b *testing.B) {
	tel, hp := queryBenchStores(b)
	telEvs, hpEvs := tel.Events(), hp.Events()
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			daily := make([]int, attack.WindowDays)
			stamps := make(map[int64]struct{})
			for _, evs := range [][]attack.Event{telEvs, hpEvs} {
				for _, e := range evs {
					d := e.Day()
					if d < 0 || d >= attack.WindowDays {
						continue
					}
					key := int64(d)<<32 | int64(uint32(e.Target))
					if _, ok := stamps[key]; !ok {
						stamps[key] = struct{}{}
						daily[d]++
					}
				}
			}
			benchSink = daily[0]
		}
	})
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			daily := attack.QueryStores(tel, hp).CountDistinctTargetsByDay()
			benchSink = daily[0]
		}
	})
}

// BenchmarkParallelQuery sweeps the per-shard executor's worker-count
// knob across the terminal classes that fan shard tasks over the pool:
// a predicate count (pure scan tasks), GroupByTarget (scan + per-task
// partial maps), Fold (scan + merge), and the daily distinct-target
// bitmap union. On a multi-core host ns/op drops toward the merge
// floor as workers grow; on a single-core host the grid shows the
// pool's overhead staying flat — the win there comes from the indexes,
// not the parallelism.
func BenchmarkParallelQuery(b *testing.B) {
	tel, hp := queryBenchStores(b)
	pred := func(e *attack.Event) bool { return e.Packets%2 == 0 }
	terminals := []struct {
		name string
		run  func(w int) int
	}{
		{"scan-count", func(w int) int {
			return attack.QueryStores(tel, hp).Where(pred).Workers(w).Count()
		}},
		{"group-by-target", func(w int) int {
			return len(attack.QueryStores(tel, hp).Workers(w).GroupByTarget())
		}},
		{"fold-sum", func(w int) int {
			return int(attack.Fold(attack.QueryStores(tel, hp).Workers(w),
				func() uint64 { return 0 },
				func(acc uint64, e *attack.Event) uint64 { return acc + e.Packets },
				func(a, b uint64) uint64 { return a + b }))
		}},
		{"distinct-daily", func(w int) int {
			return attack.QueryStores(tel, hp).Workers(w).CountDistinctTargetsByDay()[0]
		}},
	}
	for _, term := range terminals {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", term.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSink = term.run(w)
				}
			})
		}
	}
}

// BenchmarkAblationHoneypotGap shows how the collector's gap timeout
// merges or splits reflection events: a request stream with 30-minute and
// 2-hour lulls yields different event counts under different gaps.
func BenchmarkAblationHoneypotGap(b *testing.B) {
	victim := netx.MustParseAddr("203.0.113.50")
	type obs struct{ ts int64 }
	var stream []obs
	// Three 200-request bursts separated by 30 min and 2 h.
	base := attack.WindowStart
	for burst, offset := range []int64{0, 200 + 1800, 200 + 1800 + 200 + 7200} {
		for i := int64(0); i < 200; i++ {
			stream = append(stream, obs{base + offset + i})
		}
		_ = burst
	}
	for _, gap := range []int64{600, 3600, 4 * 3600} {
		gap := gap
		b.Run(fmt.Sprintf("gap=%ds", gap), func(b *testing.B) {
			events := 0
			for i := 0; i < b.N; i++ {
				cfg := amppot.DefaultConfig()
				cfg.GapTimeout = gap
				col := amppot.NewCollector(cfg)
				for _, o := range stream {
					col.Add(amppot.Observation{Time: o.ts, Victim: victim, Vector: attack.VectorNTP, Bytes: 8})
				}
				col.Flush()
				events = len(col.Events())
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// --- columnar-scan and segment benchmarks (PR 2) ------------------------

// BenchmarkAggFilteredScan measures a source/vector/day aggregation that
// misses the count index (the Where predicate disables it): the query
// path rejects non-candidates on the ~14-byte hot columns and
// materializes only rows that reach the predicate, versus the full
// ~90-byte-record scan.
func BenchmarkAggFilteredScan(b *testing.B) {
	tel, hp := queryBenchStores(b)
	telEvs, hpEvs := tel.Events(), hp.Events()
	pred := func(e *attack.Event) bool { return e.Packets%2 == 0 }
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, evs := range [][]attack.Event{telEvs, hpEvs} {
				for _, e := range evs {
					d := e.Day()
					if e.Source == attack.SourceHoneypot && e.Vector == attack.VectorNTP &&
						d >= 100 && d <= 400 && pred(&e) {
						n++
					}
				}
			}
			benchSink = n
		}
	})
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = attack.QueryStores(tel, hp).
				Source(attack.SourceHoneypot).
				Vectors(attack.VectorNTP).
				Days(100, 400).
				Where(pred).
				Count()
		}
	})
}

// BenchmarkAggPrefixCount measures a target-prefix count, the other
// index-missing filter class: the columnar path touches only the target
// and start columns and materializes nothing.
func BenchmarkAggPrefixCount(b *testing.B) {
	tel, hp := queryBenchStores(b)
	telEvs, hpEvs := tel.Events(), hp.Events()
	prefix := telEvs[0].Target
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, evs := range [][]attack.Event{telEvs, hpEvs} {
				for _, e := range evs {
					if d := e.Day(); e.Target.Mask(16) == prefix.Mask(16) && d >= 0 && d < attack.WindowDays {
						n++
					}
				}
			}
			benchSink = n
		}
	})
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = attack.QueryStores(tel, hp).
				TargetPrefix(prefix, 16).
				Days(0, attack.WindowDays-1).
				Count()
		}
	})
}

// BenchmarkColumnarScan isolates the layout win: counting one vector's
// events via the hot columns (key + start + target, ~14 B/event) versus
// walking the materialized event slice (~90 B/event). The predicate-free
// prefix filter forces both sides off the count index.
func BenchmarkColumnarScan(b *testing.B) {
	tel, hp := queryBenchStores(b)
	telEvs, hpEvs := tel.Events(), hp.Events()
	b.Run("events-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, evs := range [][]attack.Event{telEvs, hpEvs} {
				for _, e := range evs {
					if e.Vector == attack.VectorDNS && e.Target.Mask(8) == 0 {
						n++
					}
				}
			}
			benchSink = n
		}
	})
	b.Run("hot-columns", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = attack.QueryStores(tel, hp).
				Vectors(attack.VectorDNS).
				TargetPrefix(0, 8).
				Count()
		}
	})
}

// segmentEvents synthesizes n deterministic events spread over the
// window, for the segment open benchmarks.
func segmentEvents(n int) []attack.Event {
	rng := rand.New(rand.NewSource(17))
	evs := make([]attack.Event, n)
	for i := range evs {
		e := attack.Event{
			Target:  netx.AddrFrom4(198, byte(rng.Intn(64)), byte(rng.Intn(256)), byte(rng.Intn(256))),
			Start:   attack.WindowStart + rng.Int63n(attack.WindowDays*86400),
			Packets: rng.Uint64() % 1e9,
			Bytes:   rng.Uint64() % 1e12,
		}
		if i%2 == 0 {
			e.Source = attack.SourceTelescope
			e.Vector = attack.Vector(rng.Intn(4))
			e.MaxPPS = rng.Float64() * 1e4
			e.Ports = []uint16{80, uint16(rng.Intn(65536))}
		} else {
			e.Source = attack.SourceHoneypot
			e.Vector = attack.VectorNTP + attack.Vector(rng.Intn(8))
			e.AvgRPS = rng.Float64() * 1e4
		}
		e.End = e.Start + rng.Int63n(86400)
		evs[i] = e
	}
	return evs
}

// BenchmarkSegmentOpen shows DOSEVT02's O(1) open: ns/op must stay flat
// as the capture grows, because only the footer is decoded and the
// columns are served from the mapping. The DOSEVT01 reader at the same
// sizes decodes every record.
func BenchmarkSegmentOpen(b *testing.B) {
	for _, n := range []int{20000, 80000, 320000} {
		st := attack.NewStore(segmentEvents(n))
		dir := b.TempDir()
		segPath := filepath.Join(dir, "events.seg")
		f, err := os.Create(segPath)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.WriteSegment(f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		binPath := filepath.Join(dir, "events.bin")
		if f, err = os.Create(binPath); err != nil {
			b.Fatal(err)
		}
		if err := st.WriteBinary(f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("dosevt02-mmap/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, closer, err := attack.OpenSegmentFile(segPath)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = s.Len()
				closer.Close()
			}
		})
		b.Run(fmt.Sprintf("dosevt01-decode/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, closer, err := attack.OpenEventsFile(binPath)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = s.Len()
				closer.Close()
			}
		})
	}
}

// --- concurrent-query benchmarks (lock-free published-view reads) -------

// concurrentReaders runs the query workload from n goroutines sharing
// b.N iterations and returns only after all finish.
func concurrentReaders(b *testing.B, n int, query func() int) {
	var next int64
	var wg sync.WaitGroup
	sink := make([]int, n*8) // one padded slot per reader, no false sharing on benchSink
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				if i := atomic.AddInt64(&next, 1); i > int64(b.N) {
					return
				}
				sink[g*8] = query()
			}
		}(g)
	}
	wg.Wait()
	benchSink = sink[0]
}

// BenchmarkConcurrentQuery is the tentpole proof for the lock-free
// store: reader throughput must scale with goroutines where the old
// external-mutex contract flatlines. All three variants run the same
// columnar prefix count (a real CPU-bound read, off the count index):
//
//   - mutex: every reader serializes on one lock, the PR-4-era contract
//     ("a Store is not safe for concurrent use") — adding readers adds
//     nothing.
//   - lockfree: readers hit the published view directly.
//   - lockfree-live: same, with a writer goroutine AddBatching into the
//     store the whole time — reads and ingest never block each other.
func BenchmarkConcurrentQuery(b *testing.B) {
	evs := segmentEvents(200_000)
	prefix := evs[0].Target
	for _, readers := range []int{1, 2, 4, 8} {
		st := attack.NewStore(evs)
		st.Query().Count() // build the count index once, like a warmed dashboard
		scan := func() int { return st.Query().TargetPrefix(prefix, 16).Days(0, attack.WindowDays-1).Count() }

		var mu sync.Mutex
		b.Run(fmt.Sprintf("mutex/readers=%d", readers), func(b *testing.B) {
			concurrentReaders(b, readers, func() int {
				mu.Lock()
				defer mu.Unlock()
				return scan()
			})
		})
		b.Run(fmt.Sprintf("lockfree/readers=%d", readers), func(b *testing.B) {
			concurrentReaders(b, readers, scan)
		})
		b.Run(fmt.Sprintf("lockfree-live/readers=%d", readers), func(b *testing.B) {
			live := attack.NewStore(evs)
			live.Query().Count()
			stop := make(chan struct{})
			var wwg sync.WaitGroup
			wwg.Add(1)
			go func() {
				// A paced flush writer (the amppot cadence, sped up):
				// one 512-event batch per millisecond, publishing each
				// batch atomically while the readers run.
				defer wwg.Done()
				tick := time.NewTicker(time.Millisecond)
				defer tick.Stop()
				for i := 0; ; i = (i + 512) % len(evs) {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
					end := i + 512
					if end > len(evs) {
						end = len(evs)
					}
					live.AddBatch(evs[i:end])
				}
			}()
			b.ResetTimer()
			concurrentReaders(b, readers, func() int {
				return live.Query().TargetPrefix(prefix, 16).Days(0, attack.WindowDays-1).Count()
			})
			b.StopTimer()
			close(stop)
			wwg.Wait()
		})
	}
}

// --- live-ingest benchmarks (incremental index maintenance) -------------

// wholesaleStore replicates the pre-incremental store semantics the
// ISSUE calls the wholesale-invalidation baseline: events live in
// day-range buckets that an append marks dirty, and any query first
// re-sorts every dirty bucket (the seed kept each shard in (start,
// target) order) and rebuilds the per-day count index from scratch
// before answering. This is exactly what the seed paid whenever ingest
// and queries interleaved.
type wholesaleStore struct {
	buckets [][]attack.Event
	dirty   []bool
	counts  [][2][attack.NumVectors]int32
}

func newWholesaleStore() *wholesaleStore {
	const n = (attack.WindowDays + 7) / 8
	return &wholesaleStore{buckets: make([][]attack.Event, n), dirty: make([]bool, n)}
}

func (w *wholesaleStore) add(e attack.Event) {
	d := e.Day()
	if d < 0 {
		d = 0
	} else if d >= attack.WindowDays {
		d = attack.WindowDays - 1
	}
	b := d / 8
	w.buckets[b] = append(w.buckets[b], e)
	w.dirty[b] = true
	w.counts = nil // wholesale invalidation
}

func (w *wholesaleStore) seal() {
	for b := range w.buckets {
		if !w.dirty[b] {
			continue
		}
		evs := w.buckets[b]
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].Start != evs[j].Start {
				return evs[i].Start < evs[j].Start
			}
			return evs[i].Target < evs[j].Target
		})
		w.dirty[b] = false
	}
	counts := make([][2][attack.NumVectors]int32, attack.WindowDays)
	for b := range w.buckets {
		for i := range w.buckets[b] {
			e := &w.buckets[b][i]
			if d := e.Day(); d >= 0 && d < attack.WindowDays {
				counts[d][e.Source][e.Vector]++
			}
		}
	}
	w.counts = counts
}

func (w *wholesaleStore) count(src attack.Source, vec attack.Vector, dayLo, dayHi int) int {
	if w.counts == nil {
		w.seal()
	}
	n := 0
	for d := dayLo; d <= dayHi; d++ {
		n += int(w.counts[d][src][vec])
	}
	return n
}

// BenchmarkLiveIngestQuery interleaves Add with dashboard-style counts
// at 100k events: the incremental store answers every query from the
// delta-maintained per-day index plus a bounded pending-tail scan,
// while the wholesale baseline pays the seed's dirty-shard re-sort and
// full index rebuild on every query after a mutation.
func BenchmarkLiveIngestQuery(b *testing.B) {
	const nEvents = 100_000
	const queryEvery = 64
	evs := segmentEvents(nEvents)
	b.Run("baseline-wholesale", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := newWholesaleStore()
			total, ranged := 0, 0
			for j := range evs {
				w.add(evs[j])
				if (j+1)%queryEvery == 0 {
					total = w.count(attack.SourceHoneypot, attack.VectorNTP, 0, attack.WindowDays-1)
					ranged = w.count(attack.SourceHoneypot, attack.VectorNTP, 300, 389)
				}
			}
			benchSink = total + ranged
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := &attack.Store{}
			total, ranged := 0, 0
			for j := range evs {
				st.Add(evs[j])
				if (j+1)%queryEvery == 0 {
					total = st.Query().Source(attack.SourceHoneypot).Vectors(attack.VectorNTP).Count()
					ranged = st.Query().Source(attack.SourceHoneypot).Vectors(attack.VectorNTP).Days(300, 389).Count()
				}
			}
			benchSink = total + ranged
		}
	})
}

// BenchmarkLiveIngestAddBatch compares event-at-a-time Add against the
// amortized AddBatch flush path (the amppot live pipeline's shape): one
// seal and one index-delta application per touched shard per batch,
// with a per-day count after every flush. The add variant runs the
// store in queued ingest mode — the daemon's live wiring — so each Add
// is an enqueue and the background drainer coalesces publication;
// BENCH_5's ~168ms for this sub-benchmark was the cost of publishing a
// view per mutation, which the MPSC ingest front exists to amortize.
func BenchmarkLiveIngestAddBatch(b *testing.B) {
	const nEvents = 100_000
	const batch = 512
	evs := segmentEvents(nEvents)
	b.Run("add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := &attack.Store{}
			st.StartIngest(attack.IngestConfig{Tick: 0}) // drain continuously
			for j := range evs {
				st.Add(evs[j])
				if (j+1)%batch == 0 {
					benchSink = st.Query().Vectors(attack.VectorDNS).Count()
				}
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			benchSink = st.Len()
		}
	})
	b.Run("addbatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := &attack.Store{}
			for off := 0; off < nEvents; off += batch {
				end := off + batch
				if end > nEvents {
					end = nEvents
				}
				st.AddBatch(evs[off:end])
				benchSink = st.Query().Vectors(attack.VectorDNS).Count()
			}
		}
	})
}

// BenchmarkMultiProducerIngest measures aggregate ingest throughput as
// the producer count grows — the paper's many-vantage-points regime,
// where each sensor does real extraction work before submitting. Every
// producer distills its share of a fixed 100k-event corpus from raw
// per-packet observations (rawPerEvent pseudo-observations aggregated
// into each flow event — the work amppot's collector does per victim
// flow) and streams the events into ONE store in queued ingest mode
// (StartIngest with a continuous drainer — the cmd/amppot live
// regime), Close sealing the corpus. Total work is fixed across the
// grid, so ns/op directly compares producer counts: on a multi-core
// host the per-producer extraction parallelizes and ns/op drops
// toward the single-drainer apply floor; on a single-core host (this
// repo's CI container) the grid instead demonstrates the contention
// story — ns/op holds flat from p1 to p8 because producers enqueue
// without blocking and publication coalesces, where a design that ran
// a full writer pass per producer batch would pay per-producer
// penalties. The -r2 grid repeats each point under two concurrent
// readers hammering an indexed count, the serving-while-ingesting
// regime.
func BenchmarkMultiProducerIngest(b *testing.B) {
	const nEvents = 100_000
	const batch = 64
	const rawPerEvent = 32
	produce := func(st *attack.Store, seed int64, n int) {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]attack.Event, 0, batch)
		for i := 0; i < n; i++ {
			// Aggregate one flow of raw observations into one event:
			// packet/byte totals, duration, peak instantaneous rate.
			start := attack.WindowStart + rng.Int63n(attack.WindowDays*86400)
			t := start
			var packets, bytes uint64
			var maxPPS float64
			for r := 0; r < rawPerEvent; r++ {
				gap := rng.Int63n(30) + 1
				size := 64 + rng.Intn(1400)
				t += gap
				packets++
				bytes += uint64(size)
				if pps := 1.0 / float64(gap); pps > maxPPS {
					maxPPS = pps
				}
			}
			e := attack.Event{
				Target:  netx.AddrFrom4(198, byte(rng.Intn(64)), byte(rng.Intn(256)), byte(rng.Intn(256))),
				Start:   start,
				End:     t,
				Packets: packets,
				Bytes:   bytes,
			}
			if i%2 == 0 {
				e.Source = attack.SourceTelescope
				e.Vector = attack.Vector(rng.Intn(4))
				e.MaxPPS = maxPPS
				e.Ports = []uint16{80, uint16(rng.Intn(65536))}
			} else {
				e.Source = attack.SourceHoneypot
				e.Vector = attack.VectorNTP + attack.Vector(rng.Intn(8))
				e.AvgRPS = float64(packets) / float64(t-start+1)
			}
			buf = append(buf, e)
			if len(buf) == batch {
				st.AddBatch(buf)
				buf = make([]attack.Event, 0, batch)
			}
		}
		if len(buf) > 0 {
			st.AddBatch(buf)
		}
	}
	for _, readers := range []int{0, 2} {
		for _, producers := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("p%d", producers)
			if readers > 0 {
				name = fmt.Sprintf("p%d-r%d", producers, readers)
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					st := &attack.Store{}
					st.StartIngest(attack.IngestConfig{Tick: 0})
					stop := make(chan struct{})
					var rwg sync.WaitGroup
					for r := 0; r < readers; r++ {
						rwg.Add(1)
						go func() {
							defer rwg.Done()
							for {
								select {
								case <-stop:
									return
								default:
									benchSink = st.Query().Vectors(attack.VectorDNS).Count()
								}
							}
						}()
					}
					var wg sync.WaitGroup
					per := nEvents / producers
					for p := 0; p < producers; p++ {
						wg.Add(1)
						go func(p int) {
							defer wg.Done()
							produce(st, int64(1000+p), per)
						}(p)
					}
					wg.Wait()
					if err := st.Close(); err != nil {
						b.Fatal(err)
					}
					close(stop)
					rwg.Wait()
					if st.Len() != per*producers {
						b.Fatalf("ingested %d events, want %d", st.Len(), per*producers)
					}
				}
			})
		}
	}
}

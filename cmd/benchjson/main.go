// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document, the format the repository's BENCH_<n>.json
// perf-trajectory records use.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson -match 'Agg|Columnar|Segment' > BENCH_2.json
//
// Lines that are not benchmark results (the printed report sections, the
// goos/goarch/cpu header) are ignored, except that the header fields are
// captured into the document preamble.
//
// When the same benchmark name appears more than once — `go test
// -count N`, or the same suite run across packages — the minimum
// ns/op is kept (with that run's iterations and allocation columns):
// repeated runs bound scheduling noise from above, so the minimum is
// the closest observation to the code's actual cost.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

type document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkAggPerDay/query-8   123   4567 ns/op   89 B/op   2 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	match := flag.String("match", ".", "regexp selecting which benchmark names to record")
	flag.Parse()
	sel, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}

	doc := document{Benchmarks: []result{}}
	byName := make(map[string]int) // name -> index in doc.Benchmarks
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil || !sel.MatchString(m[1]) {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.ParseInt(m[4], 10, 64)
			r.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.ParseInt(m[5], 10, 64)
			r.AllocsPerOp = &a
		}
		if i, ok := byName[r.Name]; ok {
			if r.NsPerOp < doc.Benchmarks[i].NsPerOp {
				doc.Benchmarks[i] = r
			}
			continue
		}
		byName[r.Name] = len(doc.Benchmarks)
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Command dosqueryd serves the HTTP/JSON query API over any mix of
// attack-event backends: DOSEVT02 segment files (mmap'd, O(1) open),
// event-cache directories, and remote federation sites speaking
// DOSFED01. One process can front a single capture file or stitch an
// ecosystem-wide federated view behind the same URLs.
//
// Usage:
//
//	dosqueryd [-listen 127.0.0.1:8080] [-events dir] [-seg file,...]
//	          [-federate addr,...] [-cache 1024] [-rate 0] [-burst 10]
//	          [-max-inflight 0] [-max-page 10000] [-strict]
//	          [-breaker-failures 5] [-breaker-cooldown 1s] [-quiet]
//
// Backends merge in flag order: -events directories first (telescope
// then honeypot), then -seg segments, then -federate sites. Counting
// and figure responses are cached keyed on the compiled plan and
// validated by the version vector of every backend, so repeat queries
// between ingest batches never re-execute, and no response is ever
// staler than the stores. -rate enables a per-client token bucket
// (requests per second, bursting to -burst); -max-inflight caps
// concurrently executing requests across all clients, shedding the
// excess with 503.
//
// Federated sites degrade rather than fail: when a site dies, queries
// keep answering 200 from the surviving backends with a "degraded"
// field naming the casualty, a per-site circuit breaker
// (-breaker-failures consecutive failures to open, probed again after
// -breaker-cooldown) stops the fleet from paying the dead site's
// timeouts, and the site rejoins automatically when its health probe
// answers. -strict restores the all-or-nothing discipline: any backend
// failure turns the query into a 502. /healthz reports per-site
// breaker states either way.
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// requests drain, then the process exits. See docs/API.md for the
// endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"doscope/internal/attack"
	"doscope/internal/federation"
	"doscope/internal/httpapi"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		events      = flag.String("events", "", "event-cache directory (telescope/honeypot .seg or .bin, as written by doscope -save-events)")
		segs        = flag.String("seg", "", "comma-separated DOSEVT02 segment files to serve")
		fedAddrs    = flag.String("federate", "", "comma-separated federation site addresses (host:port or unix socket path)")
		cacheSize   = flag.Int("cache", 1024, "response cache capacity in entries (0 disables)")
		rate        = flag.Float64("rate", 0, "per-client rate limit in requests/second (0 disables)")
		burst       = flag.Int("burst", 10, "per-client burst capacity when -rate is set")
		maxInflight = flag.Int("max-inflight", 0, "global cap on concurrently executing requests (0 = unlimited)")
		maxPage     = flag.Int("max-page", 10000, "largest /v1/events page a client may request")
		strict      = flag.Bool("strict", false, "fail federated queries (502) when any backend fails, instead of serving degraded results")
		brFailures  = flag.Int("breaker-failures", 5, "consecutive failures before a site's circuit breaker opens (0 disables the breaker)")
		brCooldown  = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker waits before probing the site again")
		quiet       = flag.Bool("quiet", false, "suppress per-request log lines")
	)
	flag.Parse()

	var backends []attack.Queryable
	var names []string
	if *events != "" {
		for _, base := range []string{"telescope", "honeypot"} {
			st, path, err := openCached(*events, base)
			if err != nil {
				fatal(err)
			}
			backends = append(backends, st)
			names = append(names, fmt.Sprintf("%s (%d events)", path, st.Len()))
		}
	}
	for _, path := range splitList(*segs) {
		st, _, err := attack.OpenEventsFile(path)
		if err != nil {
			fatal(err)
		}
		backends = append(backends, st)
		names = append(names, fmt.Sprintf("%s (%d events)", path, st.Len()))
	}
	for _, addr := range splitList(*fedAddrs) {
		r := federation.Dial(addr,
			federation.WithBreaker(*brFailures, *brCooldown),
			federation.WithHealthProbe(*brCooldown))
		defer r.Close()
		backends = append(backends, r)
		names = append(names, "federated site "+addr)
	}
	if len(backends) == 0 {
		fatal(fmt.Errorf("no backends: pass -events, -seg, or -federate"))
	}

	opts := []httpapi.Option{
		httpapi.WithCache(*cacheSize),
		httpapi.WithRateLimit(*rate, *burst),
		httpapi.WithMaxInFlight(*maxInflight),
		httpapi.WithMaxPage(*maxPage),
		httpapi.WithStrict(*strict),
	}
	if !*quiet {
		opts = append(opts, httpapi.WithLogger(log.New(os.Stderr, "dosqueryd: ", 0)))
	}
	srv := httpapi.NewServer(backends, opts...)

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	for _, n := range names {
		fmt.Fprintln(os.Stderr, "dosqueryd: backend:", n)
	}
	fmt.Fprintf(os.Stderr, "dosqueryd: serving http://%s/v1/ over %d backend(s)\n", l.Addr(), len(backends))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	select {
	case err := <-served:
		if err != nil {
			fatal(err)
		}
		return
	case <-stop:
	}
	fmt.Fprintln(os.Stderr, "dosqueryd: shutting down, draining in-flight requests")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(err)
	}
	<-served
}

// openCached opens one store of a doscope -save-events directory,
// preferring the mmap-able DOSEVT02 segment.
func openCached(dir, base string) (*attack.Store, string, error) {
	for _, ext := range []string{".seg", ".bin"} {
		path := filepath.Join(dir, base+ext)
		if _, err := os.Stat(path); err != nil {
			continue
		}
		st, _, err := attack.OpenEventsFile(path)
		return st, path, err
	}
	return nil, "", fmt.Errorf("no %s.seg or %s.bin in %s", base, base, dir)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dosqueryd:", err)
	os.Exit(1)
}

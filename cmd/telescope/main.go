// Command telescope runs the Moore et al. backscatter classifier — the
// Corsaro RS-DoS plugin equivalent — over a pcap capture and prints the
// inferred randomly spoofed DoS attack events as CSV.
//
// Usage:
//
//	telescope -r capture.pcap [-darknet 44.0.0.0/8] [-timeout 300]
//	          [-min-packets 25] [-min-duration 60] [-min-pps 0.5] [-no-filter]
//
// The capture must use the raw-IP or Ethernet link type; timestamps must
// be non-decreasing (standard for captures).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"doscope/internal/attack"
	"doscope/internal/netx"
	"doscope/internal/pcap"
	"doscope/internal/telescope"
)

func main() {
	var (
		file        = flag.String("r", "", "pcap file to read (required)")
		darknet     = flag.String("darknet", "44.0.0.0/8", "telescope prefix")
		timeout     = flag.Int64("timeout", 300, "flow timeout seconds")
		minPackets  = flag.Uint64("min-packets", 25, "Moore filter: minimum packets")
		minDuration = flag.Int64("min-duration", 60, "Moore filter: minimum duration (s)")
		minPPS      = flag.Float64("min-pps", 0.5, "Moore filter: minimum max packet rate")
		noFilter    = flag.Bool("no-filter", false, "disable the Moore et al. low-intensity filter")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	prefix, err := netx.ParsePrefix(*darknet)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		fatal(err)
	}
	cfg := telescope.Config{
		Prefix:        prefix,
		FlowTimeout:   *timeout,
		MinPackets:    *minPackets,
		MinDuration:   *minDuration,
		MinMaxPPS:     *minPPS,
		DisableFilter: *noFilter,
	}
	c := telescope.New(cfg)
	var total, backscatter, malformed int
	for {
		hdr, data, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		payload := data
		if r.LinkType() == pcap.LinkTypeEthernet {
			if len(data) < 14 {
				continue
			}
			payload = data[14:]
		}
		total++
		switch c.ProcessPacket(hdr.Timestamp.Unix(), payload) {
		case telescope.KindBackscatter:
			backscatter++
		case telescope.KindMalformed:
			malformed++
		}
	}
	c.Flush()
	store := c.Store()
	fmt.Fprintf(os.Stderr, "telescope: %d packets, %d backscatter, %d malformed, %d attack events\n",
		total, backscatter, malformed, store.Len())
	counts := store.Query().CountByVector()
	var vecTargets [4]map[netx.Addr]struct{}
	for i := range vecTargets {
		vecTargets[i] = make(map[netx.Addr]struct{})
	}
	for e := range store.Query().Iter() {
		if int(e.Vector) < len(vecTargets) {
			vecTargets[e.Vector][e.Target] = struct{}{}
		}
	}
	for _, v := range []attack.Vector{attack.VectorTCP, attack.VectorUDP, attack.VectorICMP, attack.VectorOtherIP} {
		if counts[v] > 0 {
			fmt.Fprintf(os.Stderr, "telescope:   %-5s %d events, %d targets\n",
				v, counts[v], len(vecTargets[v]))
		}
	}
	if err := store.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telescope:", err)
	os.Exit(1)
}

package main

import (
	"testing"

	"doscope/internal/attack"
	"doscope/internal/netx"
)

// TestCompilePlanRoundTrip pins the -plan contract: the flags compile
// through the same grammar as the HTTP API's URL parameters, and the
// printed base64 string decodes back to the identical plan — so a plan
// built here is accepted verbatim by dosqueryd's plan= parameter and
// the DOSFED01 wire.
func TestCompilePlanRoundTrip(t *testing.T) {
	prefix, err := netx.ParsePrefix("203.0.112.0/20")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name                          string
		source, vectors, days, target string
		want                          attack.Plan
	}{
		{name: "all", want: attack.PlanAll()},
		{name: "source", source: "honeypot", want: attack.Plan{Source: int8(attack.SourceHoneypot)}},
		{
			name: "vectors", vectors: "NTP,DNS",
			want: attack.Plan{Source: -1, VecMask: 1<<attack.VectorNTP | 1<<attack.VectorDNS},
		},
		{
			name: "days", days: "30..120",
			want: attack.Plan{Source: -1, HasDays: true, DayLo: 30, DayHi: 120},
		},
		{
			name: "single day", days: "45",
			want: attack.Plan{Source: -1, HasDays: true, DayLo: 45, DayHi: 45},
		},
		{
			name: "prefix", target: "203.0.112.0/20",
			want: attack.Plan{Source: -1, HasPrefix: true, PrefixBits: 20, Prefix: prefix.Addr()},
		},
		{
			name: "combined", source: "telescope", vectors: "TCP", days: "0..364", target: "203.0.112.0/20",
			want: attack.Plan{
				Source: int8(attack.SourceTelescope), VecMask: 1 << attack.VectorTCP,
				HasDays: true, DayLo: 0, DayHi: 364,
				HasPrefix: true, PrefixBits: 20, Prefix: prefix.Addr(),
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := compilePlan(c.source, c.vectors, c.days, c.target)
			if err != nil {
				t.Fatal(err)
			}
			if p != c.want {
				t.Fatalf("compiled %+v, want %+v", p, c.want)
			}
			back, err := attack.DecodePlanString(p.EncodeString())
			if err != nil {
				t.Fatalf("decode printed plan: %v", err)
			}
			if back != p {
				t.Fatalf("round trip %+v, want %+v", back, p)
			}
		})
	}
}

// TestCompilePlanRejects keeps flag errors at compile time, not at the
// serving side.
func TestCompilePlanRejects(t *testing.T) {
	cases := []struct {
		name                          string
		source, vectors, days, target string
	}{
		{name: "bad source", source: "satellite"},
		{name: "bad vector", vectors: "NTP,WARP"},
		{name: "bad days", days: "x..y"},
		{name: "bad prefix", target: "203.0.112.0/33"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if p, err := compilePlan(c.source, c.vectors, c.days, c.target); err == nil {
				t.Fatalf("compiled %+v, want error", p)
			}
		})
	}
}

// Command doscope reproduces the paper end to end: it generates the
// calibrated two-year DoS ecosystem scenario, runs the sensor pipelines,
// fuses the data sets, and prints every table and figure of the paper's
// evaluation.
//
// Usage:
//
//	doscope [-scale 0.001] [-seed 42] [-packet-level] [-save-events dir]
//	        [-load-events dir] [-federate host:port,...] [-section all]
//	        [-plan] [-source s] [-vectors v,...] [-days lo..hi] [-target-prefix cidr]
//
// -scale 0.001 reproduces the paper at 1/1000 (≈21k attack events, 210k
// Web sites) in a few seconds. -packet-level synthesizes raw backscatter
// and reflection traffic and classifies it with the real telescope and
// honeypot code paths (use scales <= 0.00005).
//
// -federate skips generation entirely and aggregates remote federation
// sites (e.g. amppot -serve instances) into one macroscopic view: the
// listed sites are queried over the DOSFED01 protocol with counting
// plans — index partials cross the wire, never events — and the merged
// per-vector and per-day aggregates are printed Figure-1 style. Site
// addresses are host:port pairs or unix socket paths.
//
// -save-events writes telescope.seg / honeypot.seg in the mmap-able
// DOSEVT02 segment format, the scenario cache for bulk captures;
// -load-events serves the attack stores from such a directory (DOSEVT02
// files are mmap'd and open in O(1) regardless of size; legacy DOSEVT01
// .bin files are decoded as a fallback) and skips attack planning and
// event synthesis entirely. The segment records no generation config, so
// pass the same -scale and -seed as at save time: the Web model is still
// generated from those flags, and mismatched values would join cached
// events against a differently-sized site population.
//
// -plan compiles the query filter flags (-source, -vectors, -days,
// -target-prefix — the same grammar the HTTP API's URL parameters use)
// into a portable attack.Plan and prints its base64 form, then exits.
// The printed string is what dosqueryd's plan= parameter and the
// DOSFED01 wire accept, so a query can be built once here and replayed
// against any serving surface.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"doscope/internal/attack"
	"doscope/internal/core"
	"doscope/internal/dossim"
	"doscope/internal/federation"
	"doscope/internal/report"
)

func main() {
	var (
		scale       = flag.Float64("scale", 0.001, "fraction of the paper's full-scale event and domain counts")
		seed        = flag.Int64("seed", 42, "deterministic scenario seed")
		packetLevel = flag.Bool("packet-level", false, "synthesize raw packets and run the real classifiers (slow; use small scales)")
		saveEvents  = flag.String("save-events", "", "directory to write telescope.seg / honeypot.seg DOSEVT02 event segments")
		loadEvents  = flag.String("load-events", "", "directory to serve the attack stores from (telescope/honeypot .seg mmap'd, .bin decoded); use the -scale/-seed the cache was saved with")
		federate    = flag.String("federate", "", "comma-separated federation site addresses to aggregate instead of generating a scenario")
		section     = flag.String("section", "all", "report section: all, tables, figures, joint, web")
		printPlan   = flag.Bool("plan", false, "print the base64 plan compiled from the query filter flags, then exit")
		source      = flag.String("source", "", "plan filter: sensor source (telescope or honeypot)")
		vectors     = flag.String("vectors", "", "plan filter: comma-separated attack vectors")
		days        = flag.String("days", "", "plan filter: day range lo..hi (or a single day), relative to the window start")
		targetPfx   = flag.String("target-prefix", "", "plan filter: target CIDR prefix")
	)
	flag.Parse()

	if *printPlan {
		p, err := compilePlan(*source, *vectors, *days, *targetPfx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doscope:", err)
			os.Exit(1)
		}
		fmt.Println(p.EncodeString())
		return
	}

	if *federate != "" {
		if err := federated(os.Stdout, strings.Split(*federate, ",")); err != nil {
			fmt.Fprintln(os.Stderr, "doscope:", err)
			os.Exit(1)
		}
		return
	}

	cfg := dossim.Config{
		Seed:        *seed,
		Scale:       *scale,
		PacketLevel: *packetLevel,
	}
	if *loadEvents != "" {
		// Serve the attack stores from the segment cache; generation
		// then skips attack planning and event synthesis entirely.
		tel, hp, err := load(*loadEvents)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doscope:", err)
			os.Exit(1)
		}
		cfg.Telescope, cfg.Honeypot = tel, hp
	}
	sc, err := dossim.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doscope:", err)
		os.Exit(1)
	}
	if *saveEvents != "" {
		if err := save(sc, *saveEvents); err != nil {
			fmt.Fprintln(os.Stderr, "doscope:", err)
			os.Exit(1)
		}
	}
	ds := core.New(sc.Telescope, sc.Honeypot, sc.Plan, sc.History, sc.Cfg.WindowDays)
	ds.MailIdx = sc.Web
	fmt.Printf("doscope: scale=%g seed=%d telescope=%d honeypot=%d events, %d Web sites\n",
		*scale, *seed, sc.Telescope.Len(), sc.Honeypot.Len(), sc.History.NumDomains())
	// First-month reflection share straight off the count indexes: no scan.
	if n := attack.QueryStores(sc.Telescope, sc.Honeypot).Days(0, 29).Count(); n > 0 {
		refl := sc.Honeypot.Query().Days(0, 29).Count()
		fmt.Printf("doscope: first month: %d events, %.1f%% reflection\n\n", n, 100*float64(refl)/float64(n))
	} else {
		fmt.Println()
	}
	switch *section {
	case "all":
		fmt.Print(report.All(ds))
	case "tables":
		fmt.Print(report.Table1(ds.Table1()))
		fmt.Print(report.Table2(ds.Table2()))
		fmt.Print(report.Table3(ds.Table3()))
		fmt.Print(report.Table4("a (telescope)", ds.Table4(attack.SourceTelescope, 5)))
		fmt.Print(report.Table4("b (honeypot)", ds.Table4(attack.SourceHoneypot, 5)))
		fmt.Print(report.Mix("Table 5", ds.Table5()))
		fmt.Print(report.Mix("Table 6", ds.Table6()))
		fmt.Print(report.Mix("Table 7", ds.Table7()))
		fmt.Print(report.Mix("Table 8a", ds.Table8(attack.VectorTCP, 5)))
		fmt.Print(report.Mix("Table 8b", ds.Table8(attack.VectorUDP, 5)))
		fmt.Print(report.Table9(ds.Table9()))
	case "figures":
		tel, hp, comb := ds.Figure1()
		fmt.Print(report.Figure1(tel, hp, comb))
		f2t, f2h := ds.Figure2()
		fmt.Print(report.Figure2(f2t, f2h))
		fmt.Print(report.Figure3(ds.Figure3()))
		fmt.Print(report.Figure4(ds.Figure4()))
		fmt.Print(report.Figure5(ds.Figure5()))
		fmt.Print(report.Figure6(ds.Figure6()))
		fmt.Print(report.Figure7(ds.Figure7(), ds.WindowDays))
		fmt.Print(report.Figure8(ds.Figure8()))
		fmt.Print(report.Figure9(ds.Figure9()))
		fmt.Print(report.Figure10(ds.Figure10()))
		fmt.Print(report.Figure11(ds.Figure11()))
	case "joint":
		fmt.Print(report.Joint(ds.JointAttacks()))
	case "web":
		fmt.Print(report.WebImpact(ds.WebImpactStats()))
	default:
		fmt.Fprintf(os.Stderr, "doscope: unknown section %q\n", *section)
		os.Exit(2)
	}
}

// compilePlan maps the query filter flags onto the HTTP API's URL
// parameter grammar and compiles them through the same
// attack.PlanFromValues path, so the flags and the serving layer can
// never drift apart.
func compilePlan(source, vectors, days, prefix string) (attack.Plan, error) {
	v := url.Values{}
	for key, val := range map[string]string{
		attack.ParamSource:  source,
		attack.ParamVectors: vectors,
		attack.ParamDays:    days,
		attack.ParamPrefix:  prefix,
	} {
		if val != "" {
			v.Set(key, val)
		}
	}
	return attack.PlanFromValues(v)
}

// federated aggregates the listed sites' attack stores into one
// ecosystem-wide summary — the paper's macroscopic join, but across
// processes: every number below comes back as an index partial over the
// DOSFED01 wire, merged client-side; no event leaves a site.
func federated(w io.Writer, addrs []string) error {
	var backends []attack.Queryable
	var remotes []*federation.RemoteStore
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		r := federation.Dial(addr)
		defer r.Close()
		remotes = append(remotes, r)
		backends = append(backends, r)
	}
	if len(backends) == 0 {
		return fmt.Errorf("-federate: no site addresses")
	}
	fed := attack.QueryBackends(backends...)
	// Per-site count partials, summed client-side: the per-site lines
	// (the vantage-point split the paper's Table 1 rows show) and the
	// header total come from the same snapshot, so they always agree
	// even while sites are still ingesting.
	perSite := make([]int, len(remotes))
	total := 0
	for i, r := range remotes {
		n, err := r.PlanCount(attack.PlanAll())
		if err != nil {
			return err
		}
		perSite[i], total = n, total+n
	}
	perVec, err := fed.CountByVector()
	if err != nil {
		return err
	}
	perDay, err := fed.CountByDay()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "federated aggregate over %d sites: %d events\n", len(remotes), total)
	for i, r := range remotes {
		fmt.Fprintf(w, "  site %-24s %d events\n", r.Addr(), perSite[i])
	}
	fmt.Fprintln(w, "per vector:")
	for v := 0; v < attack.NumVectors; v++ {
		if perVec[v] > 0 {
			fmt.Fprintf(w, "  %-8s %d\n", attack.Vector(v), perVec[v])
		}
	}
	active, peakDay, peakN := 0, 0, 0
	for d, n := range perDay {
		if n > 0 {
			active++
		}
		if n > peakN {
			peakDay, peakN = d, n
		}
	}
	fmt.Fprintf(w, "daily series: %d active days, peak %d events on %s\n",
		active, peakN, attack.Date(attack.DayStart(peakDay)).Format("2006-01-02"))
	var sent, recv uint64
	for _, r := range remotes {
		s, v := r.WireBytes()
		sent, recv = sent+s, recv+v
	}
	fmt.Fprintf(w, "wire: %d bytes sent, %d received (index partials only)\n", sent, recv)
	return nil
}

func save(sc *dossim.Scenario, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, store := range map[string]*attack.Store{
		"telescope.seg": sc.Telescope,
		"honeypot.seg":  sc.Honeypot,
	} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := store.WriteSegment(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// load opens the attack stores cached in dir, looking for
// telescope/honeypot with a .seg (DOSEVT02, mmap'd) or .bin (DOSEVT01,
// decoded) suffix. The mappings stay open for the life of the process;
// the OS reclaims them on exit.
func load(dir string) (tel, hp *attack.Store, err error) {
	open := func(base string) (*attack.Store, error) {
		for _, ext := range []string{".seg", ".bin"} {
			path := filepath.Join(dir, base+ext)
			if _, err := os.Stat(path); err != nil {
				continue
			}
			st, _, err := attack.OpenEventsFile(path)
			return st, err
		}
		return nil, fmt.Errorf("no %s.seg or %s.bin in %s", base, base, dir)
	}
	if tel, err = open("telescope"); err != nil {
		return nil, nil, err
	}
	if hp, err = open("honeypot"); err != nil {
		return nil, nil, err
	}
	return tel, hp, nil
}

// Command dnsmeasure demonstrates the OpenINTEL-style measurement path
// end to end: it builds the synthetic Web ecosystem, materializes its
// authoritative .com/.net/.org zones for a chosen day, serves them over a
// real UDP socket with the built-in DNS server, walks a sample of domains
// through the wire-format resolver, and prints each domain's A record and
// detected DPS provider.
//
// Usage:
//
//	dnsmeasure [-domains 25] [-day 650] [-seed 42] [-sites 30000]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"doscope/internal/dnsserver"
	"doscope/internal/dps"
	"doscope/internal/ipmeta"
	"doscope/internal/openintel"
	"doscope/internal/webmodel"
)

func main() {
	var (
		nDomains = flag.Int("domains", 25, "number of domains to measure")
		day      = flag.Int("day", 650, "measurement day (0 = 2015-03-01)")
		seed     = flag.Int64("seed", 42, "world seed")
		sites    = flag.Int("sites", 30000, "synthetic Web population size")
	)
	flag.Parse()

	plan, err := ipmeta.BuildPlan(ipmeta.PlanConfig{Seed: *seed, NumSixteens: 512, NumActive24: 3000})
	if err != nil {
		fatal(err)
	}
	pop, err := webmodel.Build(webmodel.Config{Seed: *seed, NumDomains: *sites, Plan: plan}, nil)
	if err != nil {
		fatal(err)
	}
	pop.ApplyMigrations(*seed, nil) // bulk migrations only

	// Sample a representative set: sites from the named pools plus a few
	// self-hosted singles.
	var ids []uint32
	for _, name := range []string{"CloudFlareFront", "DOSarrestFront", "Wix", "GoDaddy", "OVH", "eNom"} {
		if pool, ok := pop.PoolByName(name); ok {
			ids = append(ids, pool.Sites[0])
		}
	}
	for id := uint32(997); id < uint32(pop.NumDomains()) && len(ids) < *nDomains; id += 997 {
		if pop.Alive(id, *day) {
			ids = append(ids, id)
		}
	}

	zones, err := openintel.ZonesForDay(pop, *day, ids)
	if err != nil {
		fatal(err)
	}
	srv := dnsserver.New()
	total := 0
	for _, z := range zones {
		srv.AddZone(z)
		total += z.NumRecords()
	}
	conn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go func() { _ = srv.Serve(conn) }()
	defer conn.Close()
	fmt.Fprintf(os.Stderr, "dnsmeasure: authoritative server on %s serving %d records for day %d\n",
		conn.LocalAddr(), total, *day)

	walker := &openintel.Walker{Resolver: openintel.NewWireResolver(conn.LocalAddr().String())}
	det := dps.NewDetector(plan)
	var names []string
	for _, id := range ids {
		names = append(names, pop.DomainName(id))
	}
	observations, err := walker.Measure(names, 8)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-20s %-16s %-34s %s\n", "domain", "www A", "cname", "DPS")
	for _, obs := range observations {
		addr := "-"
		if obs.HasAddr {
			addr = obs.WWWAddr.String()
		}
		cname := obs.CNAME
		if cname == "" {
			cname = "-"
		}
		prov := openintel.DetectProvider(det, obs, plan)
		fmt.Printf("%-20s %-16s %-34s %s\n", obs.Domain, addr, cname, prov)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnsmeasure:", err)
	os.Exit(1)
}

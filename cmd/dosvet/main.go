// Command dosvet runs doscope's custom analyzer suite (internal/lint)
// over the module: scratchescape, readpurity, errsentinel,
// nodeprecated, and ctxflow — the machine-checked versions of the
// store's load-bearing contracts.
//
// It speaks the `go vet -vettool` protocol (unitchecker), so the
// canonical invocation is
//
//	go vet -vettool=$(which dosvet) ./...
//
// but it is also runnable standalone: invoked without unitchecker's
// protocol arguments it re-execs itself through `go vet -vettool` so
// the go tool computes export data for it. Analyzer selection flags
// pass through either way:
//
//	go run ./cmd/dosvet ./...                 # whole suite
//	go run ./cmd/dosvet -nodeprecated ./...   # one analyzer
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"doscope/internal/lint"
)

func main() {
	args := os.Args[1:]
	// unitchecker invocations: `dosvet -V=full`, `dosvet -flags`, and
	// `dosvet [-analyzerflags...] <unit>.cfg` (go vet puts the analyzer
	// selection flags before the cfg file) — everything else is a human
	// at a shell.
	if len(args) > 0 {
		switch {
		case args[0] == "-V=full",
			args[0] == "-flags",
			strings.HasSuffix(args[len(args)-1], ".cfg"):
			unitchecker.Main(lint.Analyzers...) // does not return
		}
	}
	os.Exit(standalone(args))
}

// standalone re-execs through `go vet -vettool=<self>`, defaulting to
// the whole module when no package pattern is given.
func standalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosvet: cannot locate own binary: %v\n", err)
		return 2
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	vetArgs = append(vetArgs, args...)
	havePattern := false
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			havePattern = true
		}
	}
	if !havePattern {
		vetArgs = append(vetArgs, "./...")
	}
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "dosvet: %v\n", err)
		return 2
	}
	return 0
}

// Command amppot runs AmpPot honeypot instances on real UDP sockets,
// emulating the eight reflection protocols, rate-limiting replies, and
// printing extracted attack events as CSV on shutdown (SIGINT) or after
// -duration.
//
// Usage:
//
//	amppot [-listen 127.0.0.1] [-protocols NTP,DNS,CharGen] [-base-port 0]
//	       [-duration 0] [-min-requests 100] [-gap 1h] [-flush 30s]
//	       [-serve addr] [-serve-http addr] [-strict] [-out file]
//
// Extraction is live: completed attack events stream straight from the
// collector into the capture store's concurrent ingest queue as their
// flows close, and -flush is the store's drain tick — once per tick the
// store's drainer coalesces everything queued and publishes ONE
// immutable view, so flow closing never pays view-publication cost and
// queries between ticks never re-sort or recount the capture. Each tick
// also expires idle flows and prints a status line with index-served
// per-vector counts to stderr. -flush 0 disables the live path and
// extracts everything once at shutdown (synchronous store, no queue).
//
// -serve exposes the live capture store as a federation site on the
// given address (host:port, or a unix socket path) speaking the DOSFED01
// protocol: remote clients (federation.RemoteStore, doscope -federate)
// run counting queries against the store at any time — lock-free reads
// of the store's published view, concurrent with ingest and with each
// other, shipping index partials rather than events — or fetch the
// capture as a DOSEVT02 segment. Every query observes a whole-tick
// prefix of the capture, never a partial batch. On shutdown the
// federation listener closes and in-flight handlers drain before the
// final flush, the store close, and the -out write, so no remote fetch
// can observe the capture mid-finalization. See docs/FORMATS.md for the wire format.
//
// -serve-http exposes the same live store over the HTTP/JSON query API
// (internal/httpapi, the dosqueryd endpoints): curl or a dashboard can
// count, filter, and stream the capture while the honeypots ingest,
// with counting responses cached between drain ticks (the store's
// version counter moves once per published tick, invalidating exactly
// when the capture visibly changed). Both servers can run at once —
// they read the same lock-free published views. See docs/API.md.
//
// -out selects the capture sink by extension: .seg writes the mmap-able
// DOSEVT02 segment format, .bin the DOSEVT01 record stream, anything
// else CSV. Without -out, CSV goes to stdout.
//
// With -base-port 0 each protocol listens on its well-known port (needs
// privileges); otherwise protocol i listens on base-port+i.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"doscope/internal/amppot"
	"doscope/internal/attack"
	"doscope/internal/federation"
	"doscope/internal/httpapi"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1", "address to bind")
		protos     = flag.String("protocols", "NTP,DNS,CharGen,SSDP,RIPv1,QOTD,MSSQL,TFTP", "comma-separated protocol list")
		basePort   = flag.Int("base-port", 0, "0 = well-known ports; otherwise base for sequential ports")
		duration   = flag.Duration("duration", 0, "stop after this long (0 = until SIGINT)")
		minReq     = flag.Uint64("min-requests", 100, "attack event threshold (requests)")
		gap        = flag.Duration("gap", time.Hour, "idle gap splitting request streams into separate events")
		flushEvery = flag.Duration("flush", 30*time.Second, "drain completed events into the live store this often (0 = only at shutdown)")
		serveAddr  = flag.String("serve", "", "expose the live store to federation clients on this address (host:port or unix socket path)")
		serveHTTP  = flag.String("serve-http", "", "expose the live store over the HTTP/JSON query API on this address (host:port)")
		strict     = flag.Bool("strict", false, "-serve-http fails queries (502) on any backend error instead of serving degraded results")
		out        = flag.String("out", "", "write events to this file instead of stdout CSV (.seg = DOSEVT02 segment, .bin = DOSEVT01, otherwise CSV)")
	)
	flag.Parse()

	cfg := amppot.DefaultConfig()
	cfg.MinRequests = *minReq
	cfg.GapTimeout = int64(*gap / time.Second)
	fleet := amppot.NewFleet(cfg)

	var conns []net.PacketConn
	i := 0
	for _, name := range strings.Split(*protos, ",") {
		name = strings.TrimSpace(name)
		vec, err := attack.ParseVector(name)
		if err != nil {
			fatal(err)
		}
		spec, ok := amppot.SpecFor(vec)
		if !ok {
			fatal(fmt.Errorf("%s is not a reflection protocol", name))
		}
		port := int(spec.Port)
		if *basePort != 0 {
			port = *basePort + i
		}
		conn, err := net.ListenPacket("udp4", fmt.Sprintf("%s:%d", *listen, port))
		if err != nil {
			fatal(err)
		}
		conns = append(conns, conn)
		fmt.Fprintf(os.Stderr, "amppot: %s on %s\n", name, conn.LocalAddr())
		hp := fleet.Honeypot(i % amppot.FleetSize)
		go func(vec attack.Vector, conn net.PacketConn) {
			_ = hp.Serve(conn, vec)
		}(vec, conn)
		i++
	}
	if len(conns) == 0 {
		fatal(fmt.Errorf("no protocols to serve"))
	}

	// The live capture store. With -flush > 0 it runs in queued ingest
	// mode: the collector streams each completed event into the store's
	// MPSC queue as the flow closes (an enqueue, not a publication), and
	// the store's background drainer coalesces everything queued into
	// ONE immutable view per -flush tick — seals at most once per
	// touched shard, pays publication once per tick. The ticker below
	// only expires idle flows and prints the status line. No lock
	// anywhere: honeypot goroutines enqueue concurrently, and the
	// status-line queries, federation handlers, and HTTP handlers all
	// read published views lock-free.
	store := &attack.Store{}
	if *flushEvery > 0 {
		store.StartIngest(attack.IngestConfig{Tick: *flushEvery})
		fleet.StreamTo(store)
	}
	// -serve makes this process a federation site: handlers execute each
	// shipped plan as a lock-free read against the live store's
	// published view, so remote counting queries run concurrently with
	// ingest (and with each other) and always observe a whole-batch
	// prefix of the capture.
	var fedListener net.Listener
	var fedSrv *federation.Server
	if *serveAddr != "" {
		l, err := federation.Listen(*serveAddr)
		if err != nil {
			fatal(err)
		}
		fedListener = l
		fmt.Fprintf(os.Stderr, "amppot: federation site on %s\n", l.Addr())
		fedSrv = federation.NewServer(store)
		go func() {
			if err := fedSrv.Serve(l); err != nil {
				fmt.Fprintln(os.Stderr, "amppot: federation:", err)
			}
		}()
	}
	// -serve-http fronts the same store with the HTTP/JSON query API;
	// its responses cache between flushes because every drain bumps the
	// store's version counter.
	var httpSrv *httpapi.Server
	if *serveHTTP != "" {
		l, err := net.Listen("tcp", *serveHTTP)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "amppot: http query api on http://%s/v1/\n", l.Addr())
		httpSrv = httpapi.NewServer([]attack.Queryable{store}, httpapi.WithStrict(*strict))
		go func() {
			if err := httpSrv.Serve(l); err != nil {
				fmt.Fprintln(os.Stderr, "amppot: http:", err)
			}
		}()
	}

	done := make(chan struct{})
	var flushWG sync.WaitGroup
	if *flushEvery > 0 {
		flushWG.Add(1)
		go func() {
			defer flushWG.Done()
			tick := time.NewTicker(*flushEvery)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					// Expire idle flows (their events stream into the
					// queue) and force the tick's publication so the
					// status line reads the post-drain view.
					n := fleet.DrainTo(store, time.Now().Unix())
					if n == 0 {
						continue
					}
					store.Flush()
					fmt.Fprintf(os.Stderr, "amppot: live flush: +%d events (total %d, %s)\n",
						n, store.Len(), vectorSummary(store.Query().CountByVector()))
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-stop:
		case <-time.After(*duration):
		}
	} else {
		<-stop
	}
	for _, c := range conns {
		c.Close()
	}
	// Shutdown order matters: stop accepting federation and HTTP
	// connections and wait for every in-flight handler BEFORE the final
	// drain and the -out write, so a remote fetch can never observe (or
	// race) the capture mid-final-flush, and the written file is the
	// same capture the last remote query saw.
	if fedListener != nil {
		fedListener.Close()
		fedSrv.Shutdown()
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "amppot: http shutdown:", err)
		}
		cancel()
	}
	close(done)
	flushWG.Wait()

	// Final drain: close every remaining flow (streaming the events into
	// the queue), then Close the store — its drainer publishes everything
	// enqueued exactly once and the store reverts to synchronous mode —
	// before the -out write, so the written file is the full capture.
	fleet.FlushTo(store)
	if err := store.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "amppot: %d attack events\n", store.Len())
	counts := store.Query().CountByVector()
	for v := attack.VectorNTP; int(v) < attack.NumVectors; v++ {
		if counts[v] > 0 {
			fmt.Fprintf(os.Stderr, "amppot:   %-7s %d events\n", v, counts[v])
		}
	}
	if err := write(store, *out); err != nil {
		fatal(err)
	}
}

// vectorSummary formats nonzero reflection-vector counts for the live
// status line.
func vectorSummary(counts [attack.NumVectors]int) string {
	var b strings.Builder
	for v := attack.VectorNTP; int(v) < attack.NumVectors; v++ {
		if counts[v] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d", v, counts[v])
	}
	if b.Len() == 0 {
		return "no vectors"
	}
	return b.String()
}

// write sinks the extracted events: to stdout as CSV, or to a file in
// the codec its extension selects.
func write(store *attack.Store, out string) error {
	if out == "" {
		return store.WriteCSV(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	switch filepath.Ext(out) {
	case ".seg":
		err = store.WriteSegment(f)
	case ".bin":
		err = store.WriteBinary(f)
	default:
		err = store.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amppot:", err)
	os.Exit(1)
}

# Pipelines must fail when any stage fails (the bench smoke pipes
# through tee; without pipefail a crashing benchmark would pass green).
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO        ?= go
# BENCHTIME=1x keeps `make bench` a smoke check; raise it (e.g. 1s) when
# recording BENCH_<n>.json numbers meant for comparison.
BENCHTIME ?= 1x
# The benchmark families whose ns/op the perf-trajectory record tracks.
BENCH_RECORD ?= BenchmarkAgg|BenchmarkColumnarScan|BenchmarkSegmentOpen|BenchmarkLiveIngest|BenchmarkFederated|BenchmarkConcurrentQuery|BenchmarkHTTP

.PHONY: build vet test race bench chaos docs serve-smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector: the lock-free store read
# paths (writer-vs-readers stress tests in internal/attack and
# internal/federation), the amppot live-flush pipeline, and attack.Fold
# are the concurrent surfaces it guards.
race:
	$(GO) test -race ./...

# bench runs every benchmark in the module once as a smoke check and
# records the query/columnar/segment/live-ingest/federation/concurrency
# /http-serving suites' ns/op into BENCH_7.json.
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) ./... | tee bench.out
	$(GO) run ./cmd/benchjson -match '$(BENCH_RECORD)' < bench.out > BENCH_7.json
	rm -f bench.out

# chaos runs the degraded-mode packages under the race detector: the
# fault-injection proxy, the circuit breaker (state machine, rejoin,
# flapping-site stress), and the HTTP chaos sweep that checks every
# endpoint's degraded answer against the healthy-subset oracle.
chaos:
	$(GO) test -race ./internal/faultnet ./internal/federation ./internal/httpapi

# serve-smoke boots dosqueryd over a deterministic generated capture,
# curls the endpoint matrix (counting, cursor pagination, figures,
# failure-mode statuses), and diffs the responses against the golden
# transcript in cmd/dosqueryd/testdata/. UPDATE=1 regenerates the
# golden after an intentional API change.
serve-smoke:
	./scripts/serve_smoke.sh

# docs keeps the documentation honest: the examples must build, the
# godoc Example* snippets must run, neither README nor docs/ may
# demonstrate the deprecated snippet-style Events()/ByTarget() API, and
# no NEW internal caller may adopt it either (the attack package itself
# and tests, which use Events() as the oracle, are the only exceptions).
docs:
	$(GO) build ./examples/...
	$(GO) test -run Example ./internal/attack ./internal/federation
	@if grep -RnE '(st|store)\.(Events|ByTarget)\(\)' README.md docs/; then \
		echo "docs reference the deprecated Events()/ByTarget() API"; exit 1; fi
	@if grep -RnE '\b(st|store)\.(Events|ByTarget)\(\)' --include='*.go' cmd examples internal \
		| grep -v '_test\.go' | grep -v '^internal/attack/'; then \
		echo "new internal callers of the deprecated Events()/ByTarget() API"; exit 1; fi
	@echo "docs ok"

clean:
	rm -f bench.out

# Pipelines must fail when any stage fails (the bench smoke pipes
# through tee; without pipefail a crashing benchmark would pass green).
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO        ?= go
# BENCHTIME=1x keeps `make bench` a smoke check; raise it (e.g. 1s) when
# recording BENCH_<n>.json numbers meant for comparison.
BENCHTIME ?= 1x
# BENCHCOUNT repeats every benchmark; benchjson keeps the minimum ns/op
# across repeats, so recorded numbers track the quiet-machine floor
# instead of whatever scheduling noise one run caught.
BENCHCOUNT ?= 1
# Per-package `go test` timeout for the bench run. The default 10m is
# enough for the 1x smoke, but a recording run (BENCHTIME=10x,
# BENCHCOUNT>1) overruns it in the root package — the packet-level
# ablation alone costs ~20s/op.
BENCHTIMEOUT ?= 10m
# The benchmark families whose ns/op the perf-trajectory record tracks.
BENCH_RECORD ?= BenchmarkAgg|BenchmarkColumnarScan|BenchmarkSegmentOpen|BenchmarkLiveIngest|BenchmarkMultiProducer|BenchmarkFederated|BenchmarkConcurrentQuery|BenchmarkHTTP|BenchmarkParallel

# Pinned third-party linter versions (installed by `make lint-tools`;
# `make lint` runs them when present and says so when not, so the
# offline dev loop stays green while CI gets the full stack).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
STATICCHECK ?= staticcheck
GOVULNCHECK ?= govulncheck

.PHONY: build vet test race bench chaos lint lint-tools docs serve-smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector: the lock-free store read
# paths (writer-vs-readers stress tests in internal/attack and
# internal/federation), the amppot live-flush pipeline, and the query
# executor are the concurrent surfaces it guards. internal/attack runs
# again under -cpu 1,2,4 so the executor's determinism property
# (byte-identical results at any GOMAXPROCS) is checked where worker
# scheduling actually varies.
race:
	$(GO) test -race ./...
	$(GO) test -race -cpu 1,2,4 ./internal/attack

# bench runs every benchmark in the module once as a smoke check and
# records the query/columnar/segment/live-ingest/multi-producer/federation/concurrency
# /http-serving/parallel-executor suites' ns/op into BENCH_10.json.
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -timeout $(BENCHTIMEOUT) ./... | tee bench.out
	$(GO) run ./cmd/benchjson -match '$(BENCH_RECORD)' < bench.out > BENCH_10.json
	rm -f bench.out

# chaos runs the degraded-mode packages under the race detector: the
# fault-injection proxy, the circuit breaker (state machine, rejoin,
# flapping-site stress), and the HTTP chaos sweep that checks every
# endpoint's degraded answer against the healthy-subset oracle.
chaos:
	$(GO) test -race ./internal/faultnet ./internal/federation ./internal/httpapi

# serve-smoke boots dosqueryd over a deterministic generated capture,
# curls the endpoint matrix (counting, cursor pagination, figures,
# failure-mode statuses), and diffs the responses against the golden
# transcript in cmd/dosqueryd/testdata/. UPDATE=1 regenerates the
# golden after an intentional API change.
serve-smoke:
	./scripts/serve_smoke.sh

# lint runs the dosvet suite (internal/lint: scratchescape, readpurity,
# errsentinel, nodeprecated, ctxflow — see docs/ARCHITECTURE.md
# "Enforced invariants") plus staticcheck and govulncheck at the pinned
# versions when installed. The dosvet analyzers are tier-1: they fail
# the build; the third-party tools are skipped with a notice on
# machines that lack them (this container has no network to install
# into — CI runs `make lint-tools` first).
lint:
	$(GO) run ./cmd/dosvet ./...
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else echo "lint: $(STATICCHECK) $(STATICCHECK_VERSION) not installed; skipped (make lint-tools)"; fi
	@if command -v $(GOVULNCHECK) >/dev/null 2>&1; then \
		$(GOVULNCHECK) ./...; \
	else echo "lint: $(GOVULNCHECK) $(GOVULNCHECK_VERSION) not installed; skipped (make lint-tools)"; fi

# lint-tools installs the pinned third-party linters (network needed).
lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# docs keeps the documentation honest: the examples must build, the
# godoc Example* snippets must run, and no new caller outside the
# attack package may adopt the deprecated Events()/ByTarget() API. The
# deprecated-API check is dosvet's nodeprecated analyzer — type-aware
# call detection that replaced the old variable-name greps, so renaming
# a receiver no longer smuggles a deprecated call past the gate.
docs:
	$(GO) build ./examples/...
	$(GO) test -run Example ./internal/attack ./internal/federation
	$(GO) run ./cmd/dosvet -nodeprecated ./...
	@echo "docs ok"

clean:
	rm -f bench.out

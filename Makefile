# Pipelines must fail when any stage fails (the bench smoke pipes
# through tee; without pipefail a crashing benchmark would pass green).
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO        ?= go
# BENCHTIME=1x keeps `make bench` a smoke check; raise it (e.g. 1s) when
# recording BENCH_<n>.json numbers meant for comparison.
BENCHTIME ?= 1x
# The benchmark families whose ns/op the perf-trajectory record tracks.
BENCH_RECORD ?= BenchmarkAgg|BenchmarkColumnarScan|BenchmarkSegmentOpen

.PHONY: build vet test bench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench runs every benchmark in the module once as a smoke check and
# records the query/columnar/segment suites' ns/op into BENCH_2.json.
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) ./... | tee bench.out
	$(GO) run ./cmd/benchjson -match '$(BENCH_RECORD)' < bench.out > BENCH_2.json
	rm -f bench.out

clean:
	rm -f bench.out

#!/usr/bin/env bash
# serve_smoke.sh boots dosqueryd over a deterministically generated
# scenario capture, curls the endpoint matrix, and diffs the responses
# against the golden transcript in cmd/dosqueryd/testdata/. Run with
# UPDATE=1 to regenerate the golden after an intentional API change.
set -euo pipefail

cd "$(dirname "$0")/.."
GOLDEN=cmd/dosqueryd/testdata/serve-smoke.golden
ADDR=127.0.0.1:18080
TMP=$(mktemp -d)
PID=
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null && wait "$PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "serve-smoke: generating scenario capture" >&2
go run ./cmd/doscope -scale 0.0005 -seed 42 -save-events "$TMP/events" -section tables >/dev/null
go build -o "$TMP/dosqueryd" ./cmd/dosqueryd

"$TMP/dosqueryd" -listen "$ADDR" -events "$TMP/events" -quiet 2>"$TMP/boot.log" &
PID=$!
for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "serve-smoke: dosqueryd died at boot:" >&2
    cat "$TMP/boot.log" >&2
    exit 1
  fi
  sleep 0.1
done

# get <label> <path> — append one labeled response to the transcript.
get() {
  echo "== $1" >>"$TMP/out"
  curl -s "http://$ADDR$2" >>"$TMP/out"
}
# status <want> <path> — assert a failure-mode status code.
status() {
  got=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR$2")
  if [ "$got" != "$1" ]; then
    echo "serve-smoke: GET $2: status $got, want $1" >&2
    exit 1
  fi
}

: >"$TMP/out"
get healthz                 /healthz
get count                   /v1/count
get count-filtered          '/v1/count?source=honeypot&vectors=NTP,DNS&days=0..364'
get count-vector            '/v1/count/vector?days=0..29'
get count-day-slice         '/v1/count/day?source=telescope&days=0..6'
get count-target-prefix     '/v1/count/target-prefix?group=8&top=5'
get events-page1            '/v1/events?limit=3'
CURSOR=$(tail -1 "$TMP/out" | sed -n 's/.*"next":"\([^"]*\)".*/\1/p')
if [ -z "$CURSOR" ]; then
  echo "serve-smoke: events page 1 returned no cursor" >&2
  exit 1
fi
get events-page2            "/v1/events?limit=3&cursor=${CURSOR/:/%3A}"
get figure1                 /v1/figures/1
get figure5                 /v1/figures/5
get figure6                 /v1/figures/6
get figure7                 /v1/figures/7

# /v1/stats moves with every request; assert it serves, not its body.
status 200 /v1/stats
status 400 '/v1/count?source=mars'
status 400 '/v1/events?cursor=bogus'
status 400 '/v1/figures/1?source=telescope'
status 404 /v1/figures/3
status 404 /v1/nope

if [ "${UPDATE:-}" = 1 ]; then
  mkdir -p "$(dirname "$GOLDEN")"
  cp "$TMP/out" "$GOLDEN"
  echo "serve-smoke: golden updated ($GOLDEN)" >&2
  exit 0
fi
if ! diff -u "$GOLDEN" "$TMP/out"; then
  echo "serve-smoke: responses diverged from $GOLDEN (run UPDATE=1 $0 if intentional)" >&2
  exit 1
fi
echo "serve-smoke ok"

module doscope

go 1.24

// Custom go/analysis lint suite (internal/lint, cmd/dosvet) builds
// against the x/tools analysis framework vendored under third_party/
// (copied from the Go toolchain's own cmd/vendor tree), so the module
// needs no network access to build or vet itself.
require golang.org/x/tools v0.30.0

replace golang.org/x/tools => ./third_party/golang.org/x/tools

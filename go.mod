module doscope

go 1.24

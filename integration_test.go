// End-to-end integration tests across module boundaries: the pcap interop
// path (scenario → capture file → Moore classifier), persistence round
// trips of generated data sets, and whole-pipeline determinism.
package doscope_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"doscope/internal/attack"
	"doscope/internal/core"
	"doscope/internal/dossim"
	"doscope/internal/ipmeta"
	"doscope/internal/netx"
	"doscope/internal/pcap"
	"doscope/internal/telescope"
)

func smallPlan(t testing.TB) *ipmeta.Plan {
	t.Helper()
	plan, err := ipmeta.BuildPlan(ipmeta.PlanConfig{Seed: 9, NumSixteens: 512, NumActive24: 800})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestPcapInterop writes a scenario's telescope traffic to a pcap capture
// and classifies the file exactly as cmd/telescope does; the events must
// match the in-process packet-level classification.
func TestPcapInterop(t *testing.T) {
	if testing.Short() {
		t.Skip("packet synthesis is slow")
	}
	plan := smallPlan(t)
	cfg := dossim.Config{Seed: 9, Scale: 1e-5, Plan: plan, PacketLevel: true}
	sc, err := dossim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var capture bytes.Buffer
	n, err := dossim.WriteTelescopePcap(&capture, cfg, sc.Planned)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no packets written")
	}

	// Classify the capture like cmd/telescope.
	r, err := pcap.NewReader(&capture)
	if err != nil {
		t.Fatal(err)
	}
	c := telescope.New(telescope.DefaultConfig(cfg.Darknet))
	packets := 0
	for {
		hdr, data, err := r.Next()
		if err != nil {
			break
		}
		packets++
		c.ProcessPacket(hdr.Timestamp.Unix(), data)
	}
	c.Flush()
	if packets != n {
		t.Fatalf("read %d of %d packets back", packets, n)
	}
	got := attack.NewStore(c.Events())
	want := sc.Telescope
	if got.Len() != want.Len() {
		t.Fatalf("pcap path found %d events, in-process path %d", got.Len(), want.Len())
	}
	ge, we := got.Events(), want.Events()
	for i := range ge {
		if ge[i].Target != we[i].Target || ge[i].Vector != we[i].Vector || ge[i].Packets != we[i].Packets {
			t.Fatalf("event %d differs:\npcap   %+v\ninproc %+v", i, ge[i], we[i])
		}
	}
}

// TestEventStorePersistenceRoundTrip saves a generated scenario's event
// stores to disk in both formats and reloads them.
func TestEventStorePersistenceRoundTrip(t *testing.T) {
	sc, err := dossim.Generate(dossim.Config{Seed: 4, Scale: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for name, store := range map[string]*attack.Store{"tel": sc.Telescope, "hp": sc.Honeypot} {
		binPath := filepath.Join(dir, name+".bin")
		f, err := os.Create(binPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.WriteBinary(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		f, err = os.Open(binPath)
		if err != nil {
			t.Fatal(err)
		}
		back, err := attack.ReadBinary(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(store.Events(), back.Events()) {
			t.Fatalf("%s binary round trip mismatch", name)
		}

		var csvBuf bytes.Buffer
		if err := store.WriteCSV(&csvBuf); err != nil {
			t.Fatal(err)
		}
		back, err = attack.ReadCSV(&csvBuf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(store.Events(), back.Events()) {
			t.Fatalf("%s CSV round trip mismatch", name)
		}
	}
}

// TestPipelineDeterminism: the same seed yields byte-identical analyses
// end to end.
func TestPipelineDeterminism(t *testing.T) {
	run := func() (core.Figure8Result, int, netx.Addr) {
		sc, err := dossim.Generate(dossim.Config{Seed: 12, Scale: 0.0002})
		if err != nil {
			t.Fatal(err)
		}
		ds := core.New(sc.Telescope, sc.Honeypot, sc.Plan, sc.History, sc.Cfg.WindowDays)
		ds.MailIdx = sc.Web
		tax := ds.Figure8()
		return tax, sc.Telescope.Len(), sc.Telescope.Events()[0].Target
	}
	tax1, n1, t1 := run()
	tax2, n2, t2 := run()
	if tax1 != tax2 || n1 != n2 || t1 != t2 {
		t.Fatalf("pipeline not deterministic: %+v/%d/%v vs %+v/%d/%v", tax1, n1, t1, tax2, n2, t2)
	}
}

// TestReducedWindowRobustness reruns the taxonomy with the window
// shortened by a month on either end (the paper's §6 misclassification
// check) and verifies the class distribution moves only marginally.
func TestReducedWindowRobustness(t *testing.T) {
	sc, err := dossim.Generate(dossim.Config{Seed: 3, Scale: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	full := core.New(sc.Telescope, sc.Honeypot, sc.Plan, sc.History, sc.Cfg.WindowDays)
	fullTax := full.Figure8()

	// Shorten the attack data by 30 days on either end.
	var telTrim, hpTrim attack.Store
	lo := attack.WindowStart + 30*86400
	hi := attack.WindowEnd - 30*86400
	for _, e := range sc.Telescope.Events() {
		if e.Start >= lo && e.Start < hi {
			telTrim.Add(e)
		}
	}
	for _, e := range sc.Honeypot.Events() {
		if e.Start >= lo && e.Start < hi {
			hpTrim.Add(e)
		}
	}
	trimmed := core.New(&telTrim, &hpTrim, sc.Plan, sc.History, sc.Cfg.WindowDays)
	trimTax := trimmed.Figure8()

	fullPre := float64(fullTax.AttackedPreexisting) / float64(fullTax.Attacked)
	trimPre := float64(trimTax.AttackedPreexisting) / float64(trimTax.Attacked)
	if diff := fullPre - trimPre; diff < -0.05 || diff > 0.05 {
		t.Errorf("preexisting share moved %.3f under window trim (want negligible, §6)", diff)
	}
	fullMig := float64(fullTax.AttackedMigrating) / float64(fullTax.AttackedNonPre)
	trimMig := float64(trimTax.AttackedMigrating) / float64(trimTax.AttackedNonPre)
	if diff := fullMig - trimMig; diff < -0.03 || diff > 0.03 {
		t.Errorf("migrating share moved %.3f under window trim", diff)
	}
}

// Package dnswire implements the subset of the RFC 1035 DNS wire format
// that the OpenINTEL-style measurement platform needs: headers, questions,
// and A/NS/CNAME/SOA/MX/TXT resource records, with full name-compression
// support on both the encode and decode paths.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"doscope/internal/netx"
)

// Type is an RR type.
type Type uint16

// Supported RR types.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeANY   Type = 255
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeANY:
		return "ANY"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is an RR class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a response code.
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// Errors returned by Unpack.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrBadName          = errors.New("dnswire: malformed domain name")
	ErrPointerLoop      = errors.New("dnswire: compression pointer loop")
)

// Header is the fixed 12-byte message header, with the flag word
// decomposed.
type Header struct {
	ID                 uint16
	Response           bool // QR
	OpCode             uint8
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	RCode              RCode
}

// Question is one query.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// SOAData is the SOA RDATA.
type SOAData struct {
	MName, RName                            string
	Serial, Refresh, Retry, Expire, Minimum uint32
}

// RR is one resource record. The typed RDATA fields are used according to
// Type: A uses Addr; NS and CNAME use Target; MX uses Pref and Target; TXT
// uses Text; SOA uses SOA.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	Addr   netx.Addr
	Target string
	Pref   uint16
	Text   string
	SOA    *SOAData
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NormalizeName lowercases a domain name and strips a trailing dot; the
// empty string is the root.
func NormalizeName(name string) string {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	return name
}

// --- packing -----------------------------------------------------------

type packer struct {
	buf      []byte
	nameOffs map[string]int
}

// Pack serializes the message with name compression.
func (m *Message) Pack() ([]byte, error) {
	p := &packer{buf: make([]byte, 0, 512), nameOffs: make(map[string]int)}
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.OpCode&0xf) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xf)
	p.u16(m.Header.ID)
	p.u16(flags)
	p.u16(uint16(len(m.Questions)))
	p.u16(uint16(len(m.Answers)))
	p.u16(uint16(len(m.Authority)))
	p.u16(uint16(len(m.Additional)))
	for _, q := range m.Questions {
		if err := p.name(q.Name); err != nil {
			return nil, err
		}
		p.u16(uint16(q.Type))
		p.u16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for i := range sec {
			if err := p.rr(&sec[i]); err != nil {
				return nil, err
			}
		}
	}
	return p.buf, nil
}

func (p *packer) u16(v uint16) { p.buf = binary.BigEndian.AppendUint16(p.buf, v) }
func (p *packer) u32(v uint32) { p.buf = binary.BigEndian.AppendUint32(p.buf, v) }

// name emits a possibly compressed domain name.
func (p *packer) name(name string) error {
	name = NormalizeName(name)
	for name != "" {
		if off, ok := p.nameOffs[name]; ok {
			p.u16(uint16(off) | 0xc000)
			return nil
		}
		var label string
		if dot := strings.IndexByte(name, '.'); dot >= 0 {
			label, name = name[:dot], name[dot+1:]
		} else {
			label, name = name, ""
		}
		if len(label) == 0 || len(label) > 63 {
			return fmt.Errorf("%w: label %q", ErrBadName, label)
		}
		full := label
		if name != "" {
			full = label + "." + name
		}
		if len(p.buf) < 0x4000 {
			p.nameOffs[full] = len(p.buf)
		}
		p.buf = append(p.buf, byte(len(label)))
		p.buf = append(p.buf, label...)
	}
	p.buf = append(p.buf, 0)
	return nil
}

func (p *packer) rr(rr *RR) error {
	if err := p.name(rr.Name); err != nil {
		return err
	}
	p.u16(uint16(rr.Type))
	p.u16(uint16(rr.Class))
	p.u32(rr.TTL)
	// Reserve RDLENGTH; fill after encoding RDATA.
	lenAt := len(p.buf)
	p.u16(0)
	start := len(p.buf)
	switch rr.Type {
	case TypeA:
		o0, o1, o2, o3 := rr.Addr.Octets()
		p.buf = append(p.buf, o0, o1, o2, o3)
	case TypeNS, TypeCNAME:
		if err := p.name(rr.Target); err != nil {
			return err
		}
	case TypeMX:
		p.u16(rr.Pref)
		if err := p.name(rr.Target); err != nil {
			return err
		}
	case TypeTXT:
		txt := rr.Text
		for len(txt) > 255 {
			p.buf = append(p.buf, 255)
			p.buf = append(p.buf, txt[:255]...)
			txt = txt[255:]
		}
		p.buf = append(p.buf, byte(len(txt)))
		p.buf = append(p.buf, txt...)
	case TypeSOA:
		soa := rr.SOA
		if soa == nil {
			soa = &SOAData{}
		}
		if err := p.name(soa.MName); err != nil {
			return err
		}
		if err := p.name(soa.RName); err != nil {
			return err
		}
		p.u32(soa.Serial)
		p.u32(soa.Refresh)
		p.u32(soa.Retry)
		p.u32(soa.Expire)
		p.u32(soa.Minimum)
	default:
		return fmt.Errorf("dnswire: cannot pack RR type %v", rr.Type)
	}
	binary.BigEndian.PutUint16(p.buf[lenAt:], uint16(len(p.buf)-start))
	return nil
}

// --- unpacking ----------------------------------------------------------

type unpacker struct {
	data []byte
	off  int
}

// Unpack parses a complete message.
func (m *Message) Unpack(data []byte) error {
	u := &unpacker{data: data}
	id, err := u.u16()
	if err != nil {
		return err
	}
	flags, err := u.u16()
	if err != nil {
		return err
	}
	m.Header = Header{
		ID:                 id,
		Response:           flags&(1<<15) != 0,
		OpCode:             uint8(flags >> 11 & 0xf),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		RCode:              RCode(flags & 0xf),
	}
	counts := make([]uint16, 4)
	for i := range counts {
		if counts[i], err = u.u16(); err != nil {
			return err
		}
	}
	m.Questions = m.Questions[:0]
	for i := 0; i < int(counts[0]); i++ {
		name, err := u.name()
		if err != nil {
			return err
		}
		t, err := u.u16()
		if err != nil {
			return err
		}
		cl, err := u.u16()
		if err != nil {
			return err
		}
		m.Questions = append(m.Questions, Question{Name: name, Type: Type(t), Class: Class(cl)})
	}
	secs := []*[]RR{&m.Answers, &m.Authority, &m.Additional}
	for s, sec := range secs {
		*sec = (*sec)[:0]
		for i := 0; i < int(counts[s+1]); i++ {
			rr, err := u.rr()
			if err != nil {
				return err
			}
			*sec = append(*sec, rr)
		}
	}
	return nil
}

func (u *unpacker) u16() (uint16, error) {
	if u.off+2 > len(u.data) {
		return 0, ErrTruncatedMessage
	}
	v := binary.BigEndian.Uint16(u.data[u.off:])
	u.off += 2
	return v, nil
}

func (u *unpacker) u32() (uint32, error) {
	if u.off+4 > len(u.data) {
		return 0, ErrTruncatedMessage
	}
	v := binary.BigEndian.Uint32(u.data[u.off:])
	u.off += 4
	return v, nil
}

// name reads a possibly compressed name starting at the cursor.
func (u *unpacker) name() (string, error) {
	s, next, err := readName(u.data, u.off)
	if err != nil {
		return "", err
	}
	u.off = next
	return s, nil
}

// readName decodes a name at off, returning the cursor position after the
// name as encountered in the stream (pointers are followed without moving
// the stream cursor past them).
func readName(data []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumps := 0
	cursor := off
	after := -1 // stream position after the first pointer
	for {
		if cursor >= len(data) {
			return "", 0, ErrTruncatedMessage
		}
		b := data[cursor]
		switch {
		case b == 0:
			cursor++
			if after < 0 {
				after = cursor
			}
			return sb.String(), after, nil
		case b&0xc0 == 0xc0:
			if cursor+2 > len(data) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := int(binary.BigEndian.Uint16(data[cursor:]) & 0x3fff)
			if after < 0 {
				after = cursor + 2
			}
			jumps++
			if jumps > 64 || ptr >= len(data) {
				return "", 0, ErrPointerLoop
			}
			cursor = ptr
		case b&0xc0 != 0:
			return "", 0, ErrBadName
		default:
			l := int(b)
			if cursor+1+l > len(data) {
				return "", 0, ErrTruncatedMessage
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			if sb.Len()+l > 255 {
				return "", 0, ErrBadName
			}
			sb.Write(data[cursor+1 : cursor+1+l])
			cursor += 1 + l
		}
	}
}

func (u *unpacker) rr() (RR, error) {
	var rr RR
	name, err := u.name()
	if err != nil {
		return rr, err
	}
	rr.Name = name
	t, err := u.u16()
	if err != nil {
		return rr, err
	}
	rr.Type = Type(t)
	cl, err := u.u16()
	if err != nil {
		return rr, err
	}
	rr.Class = Class(cl)
	if rr.TTL, err = u.u32(); err != nil {
		return rr, err
	}
	rdlen, err := u.u16()
	if err != nil {
		return rr, err
	}
	end := u.off + int(rdlen)
	if end > len(u.data) {
		return rr, ErrTruncatedMessage
	}
	switch rr.Type {
	case TypeA:
		if rdlen != 4 {
			return rr, fmt.Errorf("dnswire: A RDATA length %d", rdlen)
		}
		rr.Addr, _ = netx.AddrFromSlice(u.data[u.off:end])
	case TypeNS, TypeCNAME:
		if rr.Target, err = u.name(); err != nil {
			return rr, err
		}
	case TypeMX:
		if rr.Pref, err = u.u16(); err != nil {
			return rr, err
		}
		if rr.Target, err = u.name(); err != nil {
			return rr, err
		}
	case TypeTXT:
		var sb strings.Builder
		for u.off < end {
			l := int(u.data[u.off])
			if u.off+1+l > end {
				return rr, ErrTruncatedMessage
			}
			sb.Write(u.data[u.off+1 : u.off+1+l])
			u.off += 1 + l
		}
		rr.Text = sb.String()
	case TypeSOA:
		soa := &SOAData{}
		if soa.MName, err = u.name(); err != nil {
			return rr, err
		}
		if soa.RName, err = u.name(); err != nil {
			return rr, err
		}
		for _, dst := range []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum} {
			if *dst, err = u.u32(); err != nil {
				return rr, err
			}
		}
		rr.SOA = soa
	}
	// Skip any unparsed RDATA (unknown types) and normalize the cursor.
	u.off = end
	return rr, nil
}

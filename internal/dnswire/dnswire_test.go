package dnswire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"doscope/internal/netx"
)

func sampleMessage() *Message {
	return &Message{
		Header: Header{
			ID: 0xbeef, Response: true, Authoritative: true,
			RecursionDesired: true, RCode: RCodeNoError,
		},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []RR{
			{Name: "www.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 300, Target: "web.hosting.example.com"},
			{Name: "web.hosting.example.com", Type: TypeA, Class: ClassIN, TTL: 300, Addr: netx.MustParseAddr("203.0.113.10")},
		},
		Authority: []RR{
			{Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 86400, Target: "ns1.example.com"},
		},
		Additional: []RR{
			{Name: "example.com", Type: TypeMX, Class: ClassIN, TTL: 3600, Pref: 10, Target: "mail.example.com"},
			{Name: "example.com", Type: TypeTXT, Class: ClassIN, TTL: 60, Text: "v=spf1 -all"},
		},
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := sampleMessage()
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, m) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, *m)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage()
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Without compression, "example.com" appears 6 times (~13 bytes each);
	// with compression the total must be clearly below the naive size.
	naive := 0
	count := strings.Count(string(data), "example")
	if count > 2 {
		t.Errorf("'example' literal appears %d times; compression not effective", count)
	}
	_ = naive
}

func TestSOARoundTrip(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 7, Response: true, RCode: RCodeNXDomain},
		Questions: []Question{{Name: "gone.example.com", Type: TypeA, Class: ClassIN}},
		Authority: []RR{{
			Name: "example.com", Type: TypeSOA, Class: ClassIN, TTL: 900,
			SOA: &SOAData{
				MName: "ns1.example.com", RName: "hostmaster.example.com",
				Serial: 2017022801, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 86400,
			},
		}},
	}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Authority, m.Authority) {
		t.Fatalf("SOA mismatch: %+v vs %+v", got.Authority, m.Authority)
	}
	if got.Header.RCode != RCodeNXDomain {
		t.Errorf("RCode = %v", got.Header.RCode)
	}
}

func TestNameNormalization(t *testing.T) {
	m := &Message{Questions: []Question{{Name: "WWW.Example.COM.", Type: TypeA, Class: ClassIN}}}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(data); err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "www.example.com" {
		t.Errorf("name = %q", got.Questions[0].Name)
	}
}

func TestRootName(t *testing.T) {
	m := &Message{Questions: []Question{{Name: "", Type: TypeNS, Class: ClassIN}}}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(data); err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "" {
		t.Errorf("root name = %q", got.Questions[0].Name)
	}
}

func TestLongTXTSplitsChunks(t *testing.T) {
	long := strings.Repeat("x", 600)
	m := &Message{Answers: []RR{{Name: "t.example.com", Type: TypeTXT, Class: ClassIN, Text: long}}}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(data); err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Text != long {
		t.Errorf("TXT length = %d", len(got.Answers[0].Text))
	}
}

func TestRejectsOverlongLabel(t *testing.T) {
	m := &Message{Questions: []Question{{Name: strings.Repeat("a", 64) + ".com", Type: TypeA, Class: ClassIN}}}
	if _, err := m.Pack(); err == nil {
		t.Error("64-char label accepted")
	}
	m = &Message{Questions: []Question{{Name: "a..com", Type: TypeA, Class: ClassIN}}}
	if _, err := m.Pack(); err == nil {
		t.Error("empty label accepted")
	}
}

func TestUnpackPointerLoop(t *testing.T) {
	// Craft a header + question whose name is a pointer to itself.
	data := make([]byte, 12, 16)
	binary.BigEndian.PutUint16(data[4:6], 1) // QDCOUNT=1
	data = append(data, 0xc0, 12)            // pointer to itself
	data = append(data, 0, 1, 0, 1)
	var m Message
	if err := m.Unpack(data); err == nil {
		t.Error("pointer loop accepted")
	}
}

func TestUnpackTruncated(t *testing.T) {
	m := sampleMessage()
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, 11, 13, len(data) / 2, len(data) - 1} {
		var got Message
		if err := got.Unpack(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestUnpackNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var m Message
		_ = m.Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackFuzzedMutations(t *testing.T) {
	base, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), base...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		var m Message
		_ = m.Unpack(mut) // must not panic
	}
}

func TestPackUnpackPropertyNames(t *testing.T) {
	// Random label structures must round-trip.
	rng := rand.New(rand.NewSource(23))
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-"
	randomName := func() string {
		labels := 1 + rng.Intn(4)
		parts := make([]string, labels)
		for i := range parts {
			l := 1 + rng.Intn(20)
			b := make([]byte, l)
			for j := range b {
				b[j] = alpha[rng.Intn(len(alpha))]
			}
			parts[i] = string(b)
		}
		return strings.Join(parts, ".")
	}
	for i := 0; i < 300; i++ {
		m := &Message{Header: Header{ID: uint16(i)}}
		for q := 0; q < 1+rng.Intn(3); q++ {
			m.Questions = append(m.Questions, Question{Name: randomName(), Type: TypeA, Class: ClassIN})
		}
		for a := 0; a < rng.Intn(4); a++ {
			m.Answers = append(m.Answers, RR{
				Name: randomName(), Type: TypeCNAME, Class: ClassIN, TTL: uint32(rng.Intn(1 << 20)), Target: randomName(),
			})
		}
		data, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		var got Message
		if err := got.Unpack(data); err != nil {
			t.Fatalf("unpack: %v", err)
		}
		if !reflect.DeepEqual(got.Questions, m.Questions) {
			t.Fatalf("questions mismatch")
		}
		if len(m.Answers) > 0 && !reflect.DeepEqual(got.Answers, m.Answers) {
			t.Fatalf("answers mismatch")
		}
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	f := func(id uint16, qr, aa, tc, rd, ra bool, op, rc uint8) bool {
		m := &Message{Header: Header{
			ID: id, Response: qr, Authoritative: aa, Truncated: tc,
			RecursionDesired: rd, RecursionAvailable: ra,
			OpCode: op & 0xf, RCode: RCode(rc & 0xf),
		}}
		data, err := m.Pack()
		if err != nil {
			return false
		}
		var got Message
		if err := got.Unpack(data); err != nil {
			return false
		}
		return got.Header == m.Header
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	if TypeA.String() != "A" || TypeCNAME.String() != "CNAME" || Type(999).String() != "TYPE999" {
		t.Error("Type.String wrong")
	}
}

func TestUnknownRDataSkipped(t *testing.T) {
	// An RR of unknown type must be skipped without desync: craft AAAA.
	var p packer
	p.nameOffs = map[string]int{}
	p.buf = make([]byte, 0, 64)
	p.u16(1) // ID
	p.u16(1 << 15)
	p.u16(0)
	p.u16(2) // two answers
	p.u16(0)
	p.u16(0)
	if err := p.name("v6.example.com"); err != nil {
		t.Fatal(err)
	}
	p.u16(28) // AAAA
	p.u16(uint16(ClassIN))
	p.u32(60)
	p.u16(16)
	p.buf = append(p.buf, bytes.Repeat([]byte{0xfe}, 16)...)
	if err := p.rr(&RR{Name: "w.example.com", Type: TypeA, Class: ClassIN, TTL: 60, Addr: 0x01020304}); err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := m.Unpack(p.buf); err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 2 {
		t.Fatalf("answers = %d", len(m.Answers))
	}
	if m.Answers[1].Type != TypeA || m.Answers[1].Addr != 0x01020304 {
		t.Errorf("A record after unknown type mis-parsed: %+v", m.Answers[1])
	}
}

func BenchmarkPackCompressed(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	data, err := sampleMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	var m Message
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Unpack(data); err != nil {
			b.Fatal(err)
		}
	}
}

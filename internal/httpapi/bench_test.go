package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"doscope/internal/attack"
)

const benchEvents = 20000

// benchServer serves one live store of benchEvents random events.
func benchServer(b *testing.B, opts ...Option) *httptest.Server {
	b.Helper()
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(71)), benchEvents))
	ts := httptest.NewServer(NewServer([]attack.Queryable{st}, opts...))
	b.Cleanup(ts.Close)
	return ts
}

func benchGet(b *testing.B, client *http.Client, url string) {
	resp, err := client.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkHTTPCount measures the counting path end to end — HTTP
// parse, plan compile, index lookup, JSON — cold (cache disabled, every
// request executes) versus cached (every request after the first is a
// version-validated cache hit), serially and under 8 concurrent
// clients. The cold/cached delta is the response cache's whole case.
func BenchmarkHTTPCount(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"cold", []Option{WithCache(0)}},
		{"cached", nil},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ts := benchServer(b, mode.opts...)
			url := ts.URL + "/v1/count?source=honeypot&days=0..364"
			for _, clients := range []int{1, 8} {
				b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
					b.SetParallelism(clients)
					benchGet(b, ts.Client(), url) // warm once so "cached" measures hits
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						client := ts.Client()
						for pb.Next() {
							benchGet(b, client, url)
						}
					})
				})
			}
		})
	}
}

// BenchmarkHTTPTargetPrefix is the cache's real case: the grouped
// tally iterates every matching event, so a cold request is O(events)
// while a cached hit is one map lookup and a body write. The cold/
// cached delta here is what a fleet of dashboard consumers polling the
// same view between ingest batches saves.
func BenchmarkHTTPTargetPrefix(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"cold", []Option{WithCache(0)}},
		{"cached", nil},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ts := benchServer(b, mode.opts...)
			url := ts.URL + "/v1/count/target-prefix?group=16&top=100"
			client := ts.Client()
			benchGet(b, client, url)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchGet(b, client, url)
			}
		})
	}
}

// BenchmarkHTTPEventsPage measures one NDJSON page of 1000 events
// through the streaming path (pages are never cached), first page
// versus a deep cursor-resumed page — the deep page leans on the
// cursor's day-range narrowing to skip shards below the resume point.
func BenchmarkHTTPEventsPage(b *testing.B) {
	ts := benchServer(b)
	first := ts.URL + "/v1/events?limit=1000"

	// Fetch a deep cursor once: page 15 of the full scan.
	cursor := ""
	for i := 0; i < 15; i++ {
		u := first
		if cursor != "" {
			u += "&cursor=" + cursor
		}
		resp, err := ts.Client().Get(u)
		if err != nil {
			b.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		var trailer eventsTrailer
		lines := splitLines(body)
		if err := unmarshalLast(lines, &trailer); err != nil || !trailer.More {
			b.Fatalf("page %d: trailer %+v err %v", i, trailer, err)
		}
		cursor = trailer.Next
	}
	deep := first + "&cursor=" + cursor

	for _, bc := range []struct{ name, url string }{
		{"first", first},
		{"deep", deep},
	} {
		b.Run(bc.name, func(b *testing.B) {
			client := ts.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchGet(b, client, bc.url)
			}
		})
	}
}

func splitLines(body []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, c := range body {
		if c == '\n' {
			if i > start {
				lines = append(lines, body[start:i])
			}
			start = i + 1
		}
	}
	if start < len(body) {
		lines = append(lines, body[start:])
	}
	return lines
}

func unmarshalLast(lines [][]byte, v any) error {
	if len(lines) == 0 {
		return io.ErrUnexpectedEOF
	}
	return json.Unmarshal(lines[len(lines)-1], v)
}

package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"doscope/internal/attack"
	"doscope/internal/federation"
	"doscope/internal/netx"
)

// randomEvents mirrors the attack package's test generator: n valid
// events spread across (and slightly outside) the measurement window,
// over both sources and all vectors, with repeated targets so prefix
// grouping and figure tallies have structure.
func randomEvents(rng *rand.Rand, n int) []attack.Event {
	events := make([]attack.Event, n)
	for i := range events {
		e := attack.Event{
			Target:  netx.AddrFrom4(203, byte(rng.Intn(4)), byte(rng.Intn(8)), byte(rng.Intn(32))),
			Start:   attack.WindowStart + rng.Int63n((attack.WindowDays+20)*86400) - 10*86400,
			Packets: rng.Uint64() % 1e9,
			Bytes:   rng.Uint64() % 1e12,
		}
		if rng.Intn(2) == 0 {
			e.Source = attack.SourceTelescope
			e.Vector = attack.Vector(rng.Intn(4))
			e.MaxPPS = rng.Float64() * 1e4
			for j := 0; j < rng.Intn(4); j++ {
				e.Ports = append(e.Ports, uint16(rng.Intn(65536)))
			}
		} else {
			e.Source = attack.SourceHoneypot
			e.Vector = attack.VectorNTP + attack.Vector(rng.Intn(8))
			e.AvgRPS = rng.Float64() * 1e4
		}
		e.End = e.Start + rng.Int63n(86400)
		events[i] = e
	}
	return events
}

// segmentBacked round-trips a store through the DOSEVT02 codec so a
// backend serves frozen, index-complete shards — the mmap-style shape.
func segmentBacked(t *testing.T, st *attack.Store) *attack.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteSegment(&buf); err != nil {
		t.Fatal(err)
	}
	seg, err := attack.OpenSegment(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// startSite serves st over DOSFED01 on a loopback listener and returns
// a connected RemoteStore, so tests can put a real federated backend
// behind the HTTP server.
func startSite(t *testing.T, st *attack.Store) *federation.RemoteStore {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := federation.NewServer(st)
	go fs.Serve(l)
	t.Cleanup(fs.Shutdown)
	r := federation.Dial(l.Addr().String())
	t.Cleanup(func() { r.Close() })
	return r
}

// testBackends builds the three backend shapes the server must treat
// identically: a live store with a pending (unsealed) tail, a
// segment-backed store, and a federated remote site.
func testBackends(t *testing.T, rng *rand.Rand) []attack.Queryable {
	t.Helper()
	live := &attack.Store{}
	live.AddBatch(randomEvents(rng, 400))
	live.Seal()
	for _, e := range randomEvents(rng, 60) {
		live.Add(e) // pending tail stays unsealed
	}

	segSrc := &attack.Store{}
	segSrc.AddBatch(randomEvents(rng, 300))
	seg := segmentBacked(t, segSrc)

	siteStore := &attack.Store{}
	siteStore.AddBatch(randomEvents(rng, 250))
	remote := startSite(t, siteStore)

	return []attack.Queryable{live, seg, remote}
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, body
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	status, body := getBody(t, ts, path)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, status, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

// equivalencePlans is the filter matrix the HTTP layer is checked
// against direct execution on: every filter dimension alone and in
// combination, in both URL-parameter and base64-plan form.
func equivalencePlans() []attack.Plan {
	prefix, _ := netx.ParsePrefix("203.1.0.0/16")
	narrow, _ := netx.ParsePrefix("203.0.2.0/24")
	return []attack.Plan{
		attack.PlanAll(),
		{Source: int8(attack.SourceTelescope)},
		{Source: int8(attack.SourceHoneypot)},
		{Source: -1, VecMask: 1<<attack.VectorNTP | 1<<attack.VectorDNS},
		{Source: -1, HasDays: true, DayLo: 100, DayHi: 400},
		{Source: -1, HasPrefix: true, PrefixBits: 16, Prefix: prefix.Addr()},
		{
			Source: int8(attack.SourceTelescope), VecMask: 1 << attack.VectorTCP,
			HasDays: true, DayLo: 0, DayHi: attack.WindowDays - 1,
			HasPrefix: true, PrefixBits: 24, Prefix: narrow.Addr(),
		},
	}
}

// TestHTTPDirectEquivalence is the core contract: every counting
// endpoint must return exactly what direct attack.QueryPlan execution
// returns over the same backend mix — live (pending tail), segment-
// backed, and federated — for both parameter encodings.
func TestHTTPDirectEquivalence(t *testing.T) {
	backends := testBackends(t, rand.New(rand.NewSource(1)))
	ts := httptest.NewServer(NewServer(backends))
	defer ts.Close()

	for i, p := range equivalencePlans() {
		queries := []string{p.Values().Encode(), "plan=" + url.QueryEscape(p.EncodeString())}
		for _, q := range queries {
			suffix := ""
			if q != "" {
				suffix = "?" + q
			}

			wantCount, err := attack.QueryPlan(p, backends...).Count()
			if err != nil {
				t.Fatal(err)
			}
			var cr countResponse
			getJSON(t, ts, "/v1/count"+suffix, &cr)
			if cr.Count != wantCount {
				t.Errorf("plan %d %q: /v1/count = %d, direct = %d", i, q, cr.Count, wantCount)
			}
			if cr.Plan != p.EncodeString() {
				t.Errorf("plan %d %q: echoed plan %q, want %q", i, q, cr.Plan, p.EncodeString())
			}

			wantVec, err := attack.QueryPlan(p, backends...).CountByVector()
			if err != nil {
				t.Fatal(err)
			}
			var vr countByVectorResponse
			getJSON(t, ts, "/v1/count/vector"+suffix, &vr)
			if len(vr.Counts) != attack.NumVectors {
				t.Fatalf("plan %d: /v1/count/vector returned %d rows", i, len(vr.Counts))
			}
			for v := range wantVec {
				if vr.Counts[v].Count != wantVec[v] || vr.Counts[v].Vector != attack.Vector(v).String() {
					t.Errorf("plan %d vector %s: got %+v, want %d", i, attack.Vector(v), vr.Counts[v], wantVec[v])
				}
			}

			wantDays, err := attack.QueryPlan(p, backends...).CountByDay()
			if err != nil {
				t.Fatal(err)
			}
			var dr countByDayResponse
			getJSON(t, ts, "/v1/count/day"+suffix, &dr)
			if !equalInts(dr.Days, wantDays) {
				t.Errorf("plan %d %q: /v1/count/day disagrees with direct execution", i, q)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decodeEventPage splits one /v1/events NDJSON response into its event
// lines and trailer.
func decodeEventPage(t *testing.T, body []byte) ([]eventJSON, eventsTrailer) {
	t.Helper()
	var events []eventJSON
	var trailer eventsTrailer
	sawTrailer := false
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if sawTrailer {
			t.Fatalf("line after trailer: %s", line)
		}
		if bytes.Contains(line, []byte(`"page"`)) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("trailer %s: %v", line, err)
			}
			sawTrailer = true
			continue
		}
		var e eventJSON
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("event line %s: %v", line, err)
		}
		events = append(events, e)
	}
	if !sawTrailer {
		t.Fatal("page had no trailer line")
	}
	return events, trailer
}

// TestEventsEquivalenceAndPagination checks /v1/events against direct
// IterByStart execution: one unpaginated fetch must match exactly, and
// stitching cursor-resumed pages together must reproduce the same
// sequence — including across ties, where many events share a start
// timestamp and the cursor's skip count does the work.
func TestEventsEquivalenceAndPagination(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	backends := testBackends(t, rng)

	// Pile ties onto one backend so page boundaries land mid-run.
	tied := &attack.Store{}
	base := attack.WindowStart + 123*86400
	for i := 0; i < 90; i++ {
		e := randomEvents(rng, 1)[0]
		e.Start = base + int64(i/30) // three runs of 30 identical starts
		e.End = e.Start + 60
		tied.Add(e)
	}
	backends = append(backends, tied)

	ts := httptest.NewServer(NewServer(backends))
	defer ts.Close()

	for _, p := range equivalencePlans() {
		it, closer, err := attack.QueryPlan(p, backends...).IterByStart()
		if err != nil {
			t.Fatal(err)
		}
		var want []eventJSON
		for e := range it {
			want = append(want, toEventJSON(e))
		}
		closer.Close()

		suffix := "?" + p.Values().Encode()
		if p.All() {
			suffix = ""
		}
		sep := "?"
		if suffix != "" {
			sep = "&"
		}

		// One big page.
		_, body := getBody(t, ts, "/v1/events"+suffix+sep+"limit=10000")
		got, trailer := decodeEventPage(t, body)
		if trailer.More || trailer.Next != "" {
			t.Fatalf("full fetch still reports more (trailer %+v)", trailer)
		}
		assertEventsEqual(t, got, want, "single page")

		// Stitched pages with a limit that lands inside tie runs.
		var stitched []eventJSON
		cursor := ""
		for pages := 0; ; pages++ {
			if pages > len(want)/7+2 {
				t.Fatal("pagination did not terminate")
			}
			u := "/v1/events" + suffix + sep + "limit=7"
			if cursor != "" {
				u += "&cursor=" + url.QueryEscape(cursor)
			}
			_, body := getBody(t, ts, u)
			page, trailer := decodeEventPage(t, body)
			stitched = append(stitched, page...)
			if trailer.Count != len(page) {
				t.Fatalf("trailer count %d, page had %d events", trailer.Count, len(page))
			}
			if !trailer.More {
				break
			}
			cursor = trailer.Next
		}
		assertEventsEqual(t, stitched, want, "stitched pages")
	}
}

func assertEventsEqual(t *testing.T, got, want []eventJSON, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, direct execution has %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: event %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestCacheInvalidationOnIngest pins the cache contract: repeat queries
// between ingest batches are served from cache without re-executing,
// and any ingest — local or at a federated site — invalidates, so a
// response is never staler than the stores.
func TestCacheInvalidationOnIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	live := &attack.Store{}
	live.AddBatch(randomEvents(rng, 200))
	siteStore := &attack.Store{}
	siteStore.AddBatch(randomEvents(rng, 100))
	remote := startSite(t, siteStore)

	s := NewServer([]attack.Queryable{live, remote})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var c1, c2 countResponse
	getJSON(t, ts, "/v1/count", &c1)
	misses0 := s.metrics.cacheMisses.Load()
	getJSON(t, ts, "/v1/count", &c2)
	if c2.Count != c1.Count {
		t.Fatalf("repeat count %d != %d", c2.Count, c1.Count)
	}
	if hits := s.metrics.cacheHits.Load(); hits != 1 {
		t.Fatalf("after repeat query: %d cache hits, want 1", hits)
	}
	if misses := s.metrics.cacheMisses.Load(); misses != misses0 {
		t.Fatalf("repeat query re-executed (misses %d -> %d)", misses0, misses)
	}

	// Local ingest must invalidate.
	live.AddBatch(randomEvents(rng, 10))
	var c3 countResponse
	getJSON(t, ts, "/v1/count", &c3)
	if c3.Count != c1.Count+10 {
		t.Fatalf("after local ingest: count %d, want %d", c3.Count, c1.Count+10)
	}

	// Remote ingest must invalidate too: the entry is keyed on the
	// version vector of ALL backends, including the DOSFED01 site.
	getJSON(t, ts, "/v1/count", &c3) // warm the cache under the new vector
	siteStore.AddBatch(randomEvents(rng, 5))
	var c4 countResponse
	getJSON(t, ts, "/v1/count", &c4)
	if c4.Count != c1.Count+15 {
		t.Fatalf("after remote ingest: count %d, want %d", c4.Count, c1.Count+15)
	}
}

// TestRateLimit429 exercises the per-client token bucket: once the
// burst is spent, requests draw 429 with a Retry-After hint, while
// /healthz keeps answering.
func TestRateLimit429(t *testing.T) {
	live := &attack.Store{}
	live.AddBatch(randomEvents(rand.New(rand.NewSource(4)), 50))
	ts := httptest.NewServer(NewServer([]attack.Queryable{live},
		WithRateLimit(0.001, 3))) // burst of 3, effectively no refill
	defer ts.Close()

	limited := 0
	for i := 0; i < 10; i++ {
		resp, err := ts.Client().Get(ts.URL + "/v1/count")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			limited++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if limited != 7 {
		t.Fatalf("%d of 10 requests limited, want 7 (burst 3)", limited)
	}
	if status, _ := getBody(t, ts, "/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz limited: status %d", status)
	}
}

// TestInFlightCap503 exercises the global concurrency gate: with every
// slot held, requests shed with 503 instead of queuing, and recover
// once a slot frees.
func TestInFlightCap503(t *testing.T) {
	live := &attack.Store{}
	live.AddBatch(randomEvents(rand.New(rand.NewSource(5)), 50))
	s := NewServer([]attack.Queryable{live}, WithMaxInFlight(2))
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.inflight <- struct{}{} // occupy both slots
	s.inflight <- struct{}{}
	if status, _ := getBody(t, ts, "/v1/count"); status != http.StatusServiceUnavailable {
		t.Fatalf("at capacity: status %d, want 503", status)
	}
	if status, _ := getBody(t, ts, "/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz rejected at capacity: status %d", status)
	}
	<-s.inflight
	if status, _ := getBody(t, ts, "/v1/count"); status != http.StatusOK {
		t.Fatalf("after slot freed: status %d, want 200", status)
	}
	if s.metrics.rejected.Load() == 0 {
		t.Fatal("rejected counter never moved")
	}
}

// TestFiguresAgainstDirect checks Figure 1 cell-for-cell against direct
// CountByDay execution and sanity-pins the scan figures' invariants.
func TestFiguresAgainstDirect(t *testing.T) {
	backends := testBackends(t, rand.New(rand.NewSource(6)))
	ts := httptest.NewServer(NewServer(backends))
	defer ts.Close()

	var f1 figure1Response
	getJSON(t, ts, "/v1/figures/1", &f1)
	for _, panel := range []struct {
		name string
		src  int8
		got  []int
	}{
		{"telescope", int8(attack.SourceTelescope), f1.Telescope},
		{"honeypot", int8(attack.SourceHoneypot), f1.Honeypot},
		{"combined", -1, f1.Combined},
	} {
		p := attack.PlanAll()
		p.Source = panel.src
		want, err := attack.QueryPlan(p, backends...).CountByDay()
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(panel.got, want) {
			t.Errorf("figure 1 %s panel disagrees with direct CountByDay", panel.name)
		}
	}

	total, err := attack.QueryPlan(attack.PlanAll(), backends...).Count()
	if err != nil {
		t.Fatal(err)
	}

	var f5 figure5Response
	getJSON(t, ts, "/v1/figures/5", &f5)
	med := 0
	for _, n := range f5.MediumPlus {
		med += n
	}
	if med <= 0 || med > total {
		t.Fatalf("figure 5: %d medium-plus events of %d total", med, total)
	}

	var f6 figure6Response
	getJSON(t, ts, "/v1/figures/6", &f6)
	binned, weighted := 0, 0
	for k, b := range f6.Bins {
		binned += b.Count
		if k == 0 {
			weighted += b.Count
		}
	}
	if binned != f6.Targets {
		t.Fatalf("figure 6: bins sum to %d, targets = %d", binned, f6.Targets)
	}
	if f6.Targets <= 0 {
		t.Fatal("figure 6: no targets")
	}
	_ = weighted

	var f7 figure7Response
	getJSON(t, ts, "/v1/figures/7", &f7)
	if len(f7.DailyTargets) != attack.WindowDays || len(f7.DailyMedium) != attack.WindowDays {
		t.Fatal("figure 7: series are not window-sized")
	}
	if len(f7.PeakDays) != 4 || len(f7.PeakValues) != 4 {
		t.Fatalf("figure 7: %d peaks, want 4", len(f7.PeakDays))
	}
	for i, d := range f7.PeakDays {
		if f7.DailyTargets[d] != f7.PeakValues[i] {
			t.Fatalf("figure 7 peak %d: day %d has %d targets, peak claims %d", i, d, f7.DailyTargets[d], f7.PeakValues[i])
		}
	}
	maxDay := 0
	for _, v := range f7.DailyTargets {
		if v > maxDay {
			maxDay = v
		}
	}
	if f7.PeakValues[0] != maxDay {
		t.Fatalf("figure 7: top peak %d, series max %d", f7.PeakValues[0], maxDay)
	}
	for d := range f7.DailyTargets {
		if f7.DailyMedium[d] > f7.DailyTargets[d] {
			t.Fatalf("figure 7 day %d: medium series %d exceeds all-targets %d", d, f7.DailyMedium[d], f7.DailyTargets[d])
		}
	}
}

// TestBadRequests pins the failure-mode statuses: malformed filters and
// cursors are 400s, unknown figures 404, source-filtered figures 400,
// and the error body is always the JSON envelope.
func TestBadRequests(t *testing.T) {
	live := &attack.Store{}
	ts := httptest.NewServer(NewServer([]attack.Queryable{live}))
	defer ts.Close()

	cases := []struct {
		path string
		want int
	}{
		{"/v1/count?source=mars", http.StatusBadRequest},
		{"/v1/count?days=ten..twelve", http.StatusBadRequest},
		{"/v1/count?prefix=not-a-cidr", http.StatusBadRequest},
		{"/v1/count?plan=%21%21%21", http.StatusBadRequest},
		{"/v1/count?plan=AAAA&source=telescope", http.StatusBadRequest},
		{"/v1/events?cursor=xyz", http.StatusBadRequest},
		{"/v1/events?limit=0", http.StatusBadRequest},
		{"/v1/events?limit=999999999", http.StatusBadRequest},
		{"/v1/count/target-prefix?group=33", http.StatusBadRequest},
		{"/v1/figures/2", http.StatusNotFound},
		{"/v1/figures/1?source=telescope", http.StatusBadRequest},
		{"/v1/nope", http.StatusNotFound},
	}
	for _, c := range cases {
		status, body := getBody(t, ts, c.path)
		if status != c.want {
			t.Errorf("GET %s: status %d, want %d (body %s)", c.path, status, c.want, body)
		}
		if status == http.StatusBadRequest && !strings.Contains(string(body), `"error"`) {
			t.Errorf("GET %s: error body missing envelope: %s", c.path, body)
		}
	}
}

// TestTargetPrefixEndpoint checks the grouped tally against a direct
// full-scan oracle at /24 granularity.
func TestTargetPrefixEndpoint(t *testing.T) {
	backends := testBackends(t, rand.New(rand.NewSource(7)))
	ts := httptest.NewServer(NewServer(backends))
	defer ts.Close()

	it, closer, err := attack.QueryPlan(attack.PlanAll(), backends...).Iter()
	if err != nil {
		t.Fatal(err)
	}
	events := make(map[netx.Addr]int)
	targets := make(map[netx.Addr]map[netx.Addr]struct{})
	for e := range it {
		key := e.Target.Mask(24)
		events[key]++
		if targets[key] == nil {
			targets[key] = make(map[netx.Addr]struct{})
		}
		targets[key][e.Target] = struct{}{}
	}
	closer.Close()

	var pr targetPrefixResponse
	getJSON(t, ts, "/v1/count/target-prefix?group=24&top=100000", &pr)
	if pr.GroupBits != 24 || pr.Total != len(events) || len(pr.Groups) != len(events) {
		t.Fatalf("got %d/%d groups at /%d, oracle has %d", len(pr.Groups), pr.Total, pr.GroupBits, len(events))
	}
	for _, g := range pr.Groups {
		pfx, err := netx.ParsePrefix(g.Prefix)
		if err != nil {
			t.Fatalf("bad prefix %q: %v", g.Prefix, err)
		}
		if g.Events != events[pfx.Addr()] || g.Targets != len(targets[pfx.Addr()]) {
			t.Fatalf("group %s: %d events / %d targets, oracle %d / %d",
				g.Prefix, g.Events, g.Targets, events[pfx.Addr()], len(targets[pfx.Addr()]))
		}
	}
	for i := 1; i < len(pr.Groups); i++ {
		if pr.Groups[i].Events > pr.Groups[i-1].Events {
			t.Fatal("groups not ordered by event count")
		}
	}

	// top= truncates but keeps the total.
	var top targetPrefixResponse
	getJSON(t, ts, "/v1/count/target-prefix?group=24&top=2", &top)
	if len(top.Groups) != 2 || top.Total != pr.Total {
		t.Fatalf("top=2: %d groups, total %d (want 2, %d)", len(top.Groups), top.Total, pr.Total)
	}
}

// TestStatsAndHealthz sanity-checks the operational endpoints.
func TestStatsAndHealthz(t *testing.T) {
	backends := testBackends(t, rand.New(rand.NewSource(8)))
	ts := httptest.NewServer(NewServer(backends))
	defer ts.Close()

	var hz struct {
		OK       bool `json:"ok"`
		Backends int  `json:"backends"`
	}
	getJSON(t, ts, "/healthz", &hz)
	if !hz.OK || hz.Backends != len(backends) {
		t.Fatalf("healthz = %+v", hz)
	}

	getJSON(t, ts, "/v1/count", &countResponse{})
	var snap statsSnapshot
	getJSON(t, ts, "/v1/stats", &snap)
	if snap.Requests < 2 || snap.BytesStreamed == 0 {
		t.Fatalf("stats counters did not move: %+v", snap)
	}
	if len(snap.Backends) != len(backends) {
		t.Fatalf("stats lists %d backends, want %d", len(snap.Backends), len(backends))
	}
	kinds := map[string]int{}
	for _, b := range snap.Backends {
		kinds[b.Kind]++
		if b.Kind == "remote" && b.Addr == "" {
			t.Fatal("remote backend without addr")
		}
	}
	if kinds["store"] != 2 || kinds["remote"] != 1 {
		t.Fatalf("backend kinds = %v", kinds)
	}
}

// TestGracefulShutdown drains an in-flight request before Shutdown
// returns, mirroring the federation server's contract.
func TestGracefulShutdown(t *testing.T) {
	live := &attack.Store{}
	live.AddBatch(randomEvents(rand.New(rand.NewSource(9)), 2000))
	s := NewServer([]attack.Queryable{live})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()

	resp, err := http.Get(fmt.Sprintf("http://%s/v1/events?limit=2000", l.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after Shutdown", err)
	}
	events, trailer := decodeEventPage(t, body)
	if len(events) != 2000 || trailer.More {
		t.Fatalf("drained response truncated: %d events, more=%v", len(events), trailer.More)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", l.Addr())); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

package httpapi

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"doscope/internal/attack"
)

// eventJSON is one /v1/events line.
type eventJSON struct {
	Source  string   `json:"source"`
	Vector  string   `json:"vector"`
	Target  string   `json:"target"`
	Start   int64    `json:"start"`
	End     int64    `json:"end"`
	Packets uint64   `json:"packets"`
	Bytes   uint64   `json:"bytes"`
	MaxPPS  float64  `json:"max_pps,omitempty"`
	AvgRPS  float64  `json:"avg_rps,omitempty"`
	Ports   []uint16 `json:"ports,omitempty"`
}

func toEventJSON(e *attack.Event) eventJSON {
	return eventJSON{
		Source:  e.Source.String(),
		Vector:  e.Vector.String(),
		Target:  e.Target.String(),
		Start:   e.Start,
		End:     e.End,
		Packets: e.Packets,
		Bytes:   e.Bytes,
		MaxPPS:  e.MaxPPS,
		AvgRPS:  e.AvgRPS,
		Ports:   e.Ports,
	}
}

// eventsTrailer is the final NDJSON line of every /v1/events page: the
// emitted count, whether more matches remain, and if so the cursor
// that resumes exactly after the last emitted event. Clients
// distinguish it from event lines by the "page" field.
type eventsTrailer struct {
	Page     bool          `json:"page"`
	Count    int           `json:"count"`
	More     bool          `json:"more"`
	Next     string        `json:"next,omitempty"`
	Degraded *degradedJSON `json:"degraded,omitempty"`
}

// cursor addresses a position in the global IterByStart order: resume
// at events with Start >= ts, skipping the first skip events whose
// Start equals ts exactly (already emitted by earlier pages). The text
// form is "ts:skip".
type cursor struct {
	ts   int64
	skip int
}

func parseCursor(s string) (cursor, error) {
	tsStr, skipStr, ok := strings.Cut(s, ":")
	if !ok {
		return cursor{}, fmt.Errorf("cursor %q: want \"start:skip\"", s)
	}
	ts, err := strconv.ParseInt(tsStr, 10, 64)
	if err != nil {
		return cursor{}, fmt.Errorf("cursor %q: bad start timestamp", s)
	}
	skip, err := strconv.Atoi(skipStr)
	if err != nil || skip < 0 {
		return cursor{}, fmt.Errorf("cursor %q: bad skip count", s)
	}
	return cursor{ts: ts, skip: skip}, nil
}

func (c cursor) String() string { return fmt.Sprintf("%d:%d", c.ts, c.skip) }

// narrowToCursor tightens the plan's day range so execution resumes at
// the cursor's day instead of re-scanning (and, federated, re-shipping)
// everything before it: DayOf is monotone in Start, so no event at or
// past the cursor can live below day DayOf(ts). When the plan carries
// no day filter the range is opened upward to beyond-the-window values
// rather than the window edge — a day filter is exclusive of
// out-of-window events, and pagination must not change which events
// match.
func narrowToCursor(p attack.Plan, c cursor) attack.Plan {
	day := int32(attack.DayOf(c.ts))
	if p.HasDays {
		if day > p.DayLo {
			p.DayLo = day
		}
		return p
	}
	p.HasDays, p.DayLo, p.DayHi = true, day, math.MaxInt32-1
	return p
}

// handleEvents streams matching events as NDJSON in global start-time
// order (attack.FedQuery.IterByStart: ties resolve by backend order,
// then per-store order), paginated by limit= and resumed by cursor=.
// Pages are not cached — they stream — but deep pagination stays
// cheap: the cursor's day bound prunes every shard (and for remote
// backends, every shipped segment) below the resume point.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	p, ok := planFrom(w, r)
	if !ok {
		return
	}
	limit, err := intParam(r.URL.Query(), "limit", 1000, 1, s.maxPage)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var cur cursor
	resuming := false
	if cs := r.URL.Query().Get("cursor"); cs != "" {
		if cur, err = parseCursor(cs); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		resuming = true
	}
	exec := p
	if resuming {
		exec = narrowToCursor(p, cur)
	}
	it, statuses, closer, err := s.fedIterByStart(r.Context(), exec)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	defer closer.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	var (
		emitted  int
		more     bool
		lastTS   int64
		lastTies int // events emitted with Start == lastTS, this page
		skipped  int // cursor ties skipped so far
	)
	for e := range it {
		if resuming {
			if e.Start < cur.ts {
				continue
			}
			if e.Start == cur.ts && skipped < cur.skip {
				skipped++
				continue
			}
		}
		if emitted == limit {
			more = true
			break
		}
		if e.Start == lastTS && emitted > 0 {
			lastTies++
		} else {
			lastTS, lastTies = e.Start, 1
		}
		if err := enc.Encode(toEventJSON(e)); err != nil {
			return // client went away mid-stream
		}
		emitted++
		if emitted%512 == 0 {
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	}
	trailer := eventsTrailer{Page: true, Count: emitted, More: more, Degraded: degradedFrom(statuses)}
	if trailer.Degraded != nil {
		s.metrics.degraded.Add(1)
	}
	if more {
		next := cursor{ts: lastTS, skip: lastTies}
		if resuming && lastTS == cur.ts {
			// Still inside the cursor's tie run: the skip count is
			// cumulative across pages.
			next.skip += cur.skip
		}
		trailer.Next = next.String()
	}
	enc.Encode(trailer)
}

// Package httpapi serves the attack-event query plane over HTTP/JSON —
// the consumer-facing front end layered on the same attack.Queryable
// contract DOSFED01 federates over. A Server fronts any mix of
// backends (local *attack.Store values, live or segment-backed, and
// federation.RemoteStore sites) and fans each request's compiled
// attack.Plan out to all of them, so one process can serve a single
// honeypot's live capture or an ecosystem-wide federated view through
// the same URLs.
//
// The endpoint families mirror the query terminals: /v1/count,
// /v1/count/vector, /v1/count/day and /v1/count/target-prefix are the
// counting terminals; /v1/events streams matching events as paginated
// NDJSON with stable start-timestamp cursors; /v1/figures/{1,5,6,7}
// serve the source paper's measurement views as live aggregates.
// Filters arrive as URL parameters (source=, vectors=, days=, prefix=)
// or as a complete base64 plan (plan=), both compiled through
// attack.PlanFromValues — the exact plan domain the wire protocol
// accepts, nothing more.
//
// Between ingest batches, counting and figure responses come from a
// plan-keyed response cache validated by the backends' version vector
// (attack.Store.Version locally, a DOSFED01 version frame per remote
// site): any ingest anywhere invalidates, so a cached body is never
// staler than the stores. Per-client token buckets and a global
// in-flight cap bound what any one consumer — or all of them — can ask
// of the store, and Shutdown drains in-flight requests before
// returning, mirroring federation.Server.Shutdown.
//
// Reads are lock-free end to end: a handler executes its plan against
// whatever view each store publishes, concurrent with ingest and with
// every other handler. See docs/API.md for the endpoint reference.
package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doscope/internal/attack"
	"doscope/internal/federation"
)

// Server is an http.Handler serving the query API over a fixed backend
// set. Construct with NewServer; serve with Serve (or mount it on any
// http.Server or test mux — ServeHTTP carries all behavior, so
// httptest exercises the real gates).
type Server struct {
	backends []attack.Queryable
	mux      *http.ServeMux
	cache    *cache
	limiter  *limiter
	inflight chan struct{}
	metrics  metrics
	logger   *log.Logger
	maxPage  int
	strict   bool // fail-closed on any backend error (see WithStrict)

	hsMu sync.Mutex
	hs   *http.Server
}

// Option configures a Server.
type Option func(*Server)

// WithCache sets the response-cache capacity in entries (default 1024;
// 0 disables caching).
func WithCache(entries int) Option {
	return func(s *Server) { s.cache = newCache(entries) }
}

// WithRateLimit applies a per-client token bucket: rate requests per
// second accruing up to burst (rate <= 0 disables, the default).
func WithRateLimit(rate float64, burst int) Option {
	return func(s *Server) { s.limiter = newLimiter(rate, burst) }
}

// WithMaxInFlight caps concurrently executing requests across all
// clients; excess requests are rejected with 503 rather than queued,
// so overload degrades crisply instead of compounding (default 0 =
// unlimited).
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.inflight = make(chan struct{}, n)
		} else {
			s.inflight = nil
		}
	}
}

// WithLogger directs per-request log lines (method, path, status,
// bytes, duration) to l; nil (the default) disables request logging.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithMaxPage caps the per-request limit= on /v1/events (default
// 10000).
func WithMaxPage(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxPage = n
		}
	}
}

// NewServer builds a query server over the given backends. Responses
// merge all backends in argument order, exactly like
// attack.QueryBackends.
func NewServer(backends []attack.Queryable, opts ...Option) *Server {
	s := &Server{
		backends: backends,
		cache:    newCache(1024),
		maxPage:  10000,
	}
	for _, o := range opts {
		o(s)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/count", s.handleCount)
	s.mux.HandleFunc("GET /v1/count/vector", s.handleCountByVector)
	s.mux.HandleFunc("GET /v1/count/day", s.handleCountByDay)
	s.mux.HandleFunc("GET /v1/count/target-prefix", s.handleCountTargetPrefix)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/figures/{fig}", s.handleFigure)
	return s
}

// countingWriter wraps the ResponseWriter to record status and bytes
// for metrics and logging.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *countingWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *countingWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

func (w *countingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP runs the request through the gates — per-client rate
// limit, then the global in-flight cap — and dispatches to the
// endpoint handlers. /healthz bypasses both gates so load-balancer
// probes keep answering under overload.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	cw := &countingWriter{ResponseWriter: w}
	start := time.Now()
	defer func() {
		s.metrics.bytesStreamed.Add(uint64(cw.bytes))
		if cw.status >= 400 {
			s.metrics.errors.Add(1)
		}
		if s.logger != nil {
			s.logger.Printf("%s %s %d %dB %v", r.Method, r.URL.RequestURI(), cw.status, cw.bytes, time.Since(start).Round(time.Microsecond))
		}
	}()
	if r.URL.Path != "/healthz" {
		if s.limiter != nil && !s.limiter.allow(clientKey(r)) {
			s.metrics.rateLimited.Add(1)
			cw.Header().Set("Retry-After", fmt.Sprint(s.limiter.retryAfter()))
			writeError(cw, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.metrics.rejected.Add(1)
				writeError(cw, http.StatusServiceUnavailable, "server at capacity")
				return
			}
		}
	}
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)
	s.mux.ServeHTTP(cw, r)
}

// clientKey identifies a client for rate limiting: the connection's
// remote IP, ports stripped so reconnecting does not reset the bucket.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// Serve accepts connections on l until Shutdown. It returns nil when
// the listener closes through Shutdown.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s}
	s.hsMu.Lock()
	s.hs = hs
	s.hsMu.Unlock()
	err := hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown stops the server gracefully, mirroring
// federation.Server.Shutdown: the listener closes first (no new
// connections), in-flight requests drain, then idle connections close.
// The context bounds the drain; on expiry remaining connections are
// closed hard.
func (s *Server) Shutdown(ctx context.Context) error {
	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Shutdown(ctx)
}

// versions reports every backend's mutation counter, in backend order —
// the cache validation vector. ok is false when any backend cannot
// report one (then caching is skipped for the request, never unsafe).
// Local stores answer from their published view; remote sites answer a
// DOSFED01 version frame (8 bytes each way), queried concurrently so
// the vector costs one round-trip, not one per site — and a site with
// an open breaker rejects in memory instead of stalling the vector.
func (s *Server) versions() ([]uint64, bool) {
	vec := make([]uint64, len(s.backends))
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i, b := range s.backends {
		switch v := b.(type) {
		case interface{ Version() uint64 }:
			vec[i] = v.Version()
		case interface{ Version() (uint64, error) }:
			wg.Add(1)
			go func() {
				defer wg.Done()
				ver, err := v.Version()
				if err != nil {
					failed.Store(true)
					return
				}
				vec[i] = ver
			}()
		default:
			failed.Store(true)
		}
	}
	wg.Wait()
	if failed.Load() {
		return nil, false
	}
	return vec, true
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// writeJSON writes a pre-marshaled JSON body.
func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// marshalBody renders one newline-terminated JSON response body.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// cached runs one cacheable endpoint: on a version-validated hit the
// stored body is written back without executing anything; otherwise
// compute runs, and its marshaled result is cached under the version
// vector observed before execution (see cacheEntry for why that
// direction is safe).
//
// compute additionally reports whether its result is degraded — a
// partial answer missing some backend's contribution. Degraded bodies
// are never cached: an entry must be a whole answer, or a site's
// outage would be served from cache after the site recovered. (In
// practice an unreachable site also fails the version vector, which
// disables the cache for the whole outage — this guard is the
// belt-and-braces for the window where versions succeeded and the
// query then lost a site.)
//
// Versioned responses carry an ETag derived from the same cache key
// plus the version vector, so the conditional-request path shares the
// cache's validation rule exactly: If-None-Match matches only while no
// backend has ingested, and then the 304 skips both execution and body
// re-serialization. Degraded responses carry no ETag — a partial
// answer must not validate a later whole one.
func (s *Server) cached(w http.ResponseWriter, r *http.Request, endpoint, extra string, p attack.Plan, compute func() (any, bool, error)) {
	versions, versioned := s.versions()
	key := cacheKey{endpoint: endpoint, plan: p, extra: extra}
	var etag string
	if versioned {
		etag = etagFor(key, versions)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
			s.metrics.notModified.Add(1)
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	if s.cache != nil && versioned {
		if body, ok := s.cache.get(key, versions); ok {
			s.metrics.cacheHits.Add(1)
			w.Header().Set("ETag", etag)
			writeJSON(w, body)
			return
		}
	}
	s.metrics.cacheMisses.Add(1)
	result, degraded, err := compute()
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	if degraded {
		s.metrics.degraded.Add(1)
	}
	body, err := marshalBody(result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if s.cache != nil && versioned && !degraded {
		s.cache.put(key, versions, body)
	}
	if versioned && !degraded {
		w.Header().Set("ETag", etag)
	}
	writeJSON(w, body)
}

// etagFor derives the strong ETag for one cacheable response: a hash
// of the cache key and the backend version vector it was (or would be)
// computed under. Identical inputs — same endpoint, same plan, same
// versions everywhere — yield the identical tag, so a client's
// If-None-Match revalidates across server restarts too.
func etagFor(k cacheKey, versions []uint64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s", k.endpoint, k.extra, k.plan.EncodeString())
	for _, v := range versions {
		fmt.Fprintf(h, "|%d", v)
	}
	return `"` + strconv.FormatUint(h.Sum64(), 16) + `"`
}

// etagMatch implements If-None-Match list matching. Weak tags compare
// by their opaque value (weak comparison is all a cache validator
// needs), and "*" matches any current representation.
func etagMatch(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// backendsInfo describes the backend set for /v1/stats.
func (s *Server) backendsInfo() []backendInfo {
	out := make([]backendInfo, len(s.backends))
	for i, b := range s.backends {
		info := backendInfo{Kind: "store"}
		switch v := b.(type) {
		case *attack.Store:
			info.Versioned, info.Version, info.Events = true, v.Version(), v.Len()
			is := v.IngestStats()
			info.IngestQueued, info.IngestBatches = is.Queued, is.Batches
			info.IngestDrains, info.IngestCoalesced = is.Drains, is.Coalesced
			info.IngestAsync = is.Async
			es := v.ExecStats()
			info.ExecScanTasks, info.ExecProbeTasks = es.ScanTasks, es.ProbeTasks
			info.ExecBitmapTasks = es.BitmapTasks
			info.BitmapHits, info.BitmapMisses = es.BitmapHits, es.BitmapMisses
		case *federation.RemoteStore:
			info.Kind, info.Addr = "remote", v.Addr()
			if st, on := v.Breaker(); on {
				info.Breaker = st.State.String()
				info.BreakerFailures = st.Failures
			}
			if ver, err := v.Version(); err == nil {
				info.Versioned, info.Version = true, ver
			}
		}
		out[i] = info
	}
	return out
}

package httpapi

import (
	"container/list"
	"slices"
	"sync"

	"doscope/internal/attack"
)

// cacheKey identifies one cacheable response: the endpoint, the
// compiled plan (comparable by value — the same 20 bytes DOSFED01
// ships), and any endpoint-specific parameters in canonical form.
type cacheKey struct {
	endpoint string
	plan     attack.Plan
	extra    string
}

// cacheEntry is one cached response body together with the backend
// version vector it was computed under. An entry is valid only while
// every backend still reports the same version — any ingest anywhere
// invalidates it, so the cache can never serve a count the stores have
// moved past. (A write racing the execution can leave a body slightly
// NEWER than its key claims; the next lookup under the new vector then
// misses and recomputes. Staleness is the direction that cannot
// happen.)
type cacheEntry struct {
	key      cacheKey
	versions []uint64
	body     []byte
}

// cache is a version-validated LRU over serialized responses. Counting
// and figure endpoints answer repeat queries from here between ingest
// batches — the regime where one store serves the same measurement view
// to many consumers.
type cache struct {
	mu  sync.Mutex
	max int
	m   map[cacheKey]*list.Element
	ll  *list.List // front = most recently used
}

func newCache(max int) *cache {
	if max <= 0 {
		return nil
	}
	return &cache{max: max, m: make(map[cacheKey]*list.Element), ll: list.New()}
}

// get returns the cached body for k if it was computed under exactly
// the given backend version vector.
func (c *cache) get(k cacheKey, versions []uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !slices.Equal(e.versions, versions) {
		// Superseded by ingest: drop it rather than letting dead
		// entries crowd out live ones.
		c.ll.Remove(el)
		delete(c.m, k)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.body, true
}

// put stores a computed body under its version vector, evicting the
// least recently used entry past the size cap.
func (c *cache) put(k cacheKey, versions []uint64, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		e := el.Value.(*cacheEntry)
		e.versions, e.body = versions, body
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, versions: versions, body: body})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// len reports the live entry count (for /v1/stats).
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

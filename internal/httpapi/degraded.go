package httpapi

import (
	"context"
	"io"
	"iter"

	"doscope/internal/attack"
)

// Degraded-results policy. By default the server serves whatever the
// healthy backends answer: a federated query that loses a site returns
// 200 with the surviving backends' merged result and a "degraded"
// field naming the casualties, instead of turning one dead site into a
// fleet-wide 502. WithStrict restores the all-or-nothing discipline
// for consumers that would rather fail than undercount.
//
// Degraded bodies are never written to — or served from — the
// version-vector response cache: the cache stores only whole answers.

// WithStrict selects the all-or-nothing failure discipline: any
// backend failure fails the request with 502, the pre-degraded-mode
// behavior. The default is degraded mode — partial results with
// per-backend status.
func WithStrict(strict bool) Option {
	return func(s *Server) { s.strict = strict }
}

// backendStatusJSON is one backend's outcome in a degraded response.
type backendStatusJSON struct {
	Backend int    `json:"backend"`
	State   string `json:"state"` // "ok", "failed", "skipped"
	Error   string `json:"error,omitempty"`
}

// degradedJSON is the "degraded" response field: present only when at
// least one backend did not contribute, so healthy responses are
// byte-identical to the pre-degraded-mode wire format.
type degradedJSON struct {
	Failed   int                 `json:"failed"`
	Skipped  int                 `json:"skipped"`
	Backends []backendStatusJSON `json:"backends"`
}

// degradedFrom renders fan-out statuses for the response body: nil —
// the field marshals away — unless some backend failed or was skipped.
func degradedFrom(statuses []attack.BackendStatus) *degradedJSON {
	if !attack.Degraded(statuses) {
		return nil
	}
	d := &degradedJSON{Backends: make([]backendStatusJSON, len(statuses))}
	for i, st := range statuses {
		j := backendStatusJSON{Backend: st.Backend, State: st.State.String()}
		if st.Err != nil {
			j.Error = st.Err.Error()
		}
		switch st.State {
		case attack.BackendFailed:
			d.Failed++
		case attack.BackendSkipped:
			d.Skipped++
		}
		d.Backends[i] = j
	}
	return d
}

// mergeStatuses folds per-backend outcomes across the several fan-outs
// one endpoint may run (figure 1 executes three plans): a backend is
// only as healthy as its worst outcome.
func mergeStatuses(a, b []attack.BackendStatus) []attack.BackendStatus {
	if a == nil {
		return b
	}
	for i := range a {
		if i < len(b) && a[i].State == attack.BackendOK && b[i].State != attack.BackendOK {
			a[i].State, a[i].Err = b[i].State, b[i].Err
		}
	}
	return a
}

// The fed* helpers run one fan-out terminal under the server's failure
// discipline: strict mode surfaces any backend error (the caller 502s),
// degraded mode reports per-backend statuses alongside the healthy
// subset's merged answer. The request context bounds the whole fan-out
// either way — a hung site costs the caller its deadline, not forever.

func (s *Server) query(ctx context.Context, p attack.Plan) *attack.FedQuery {
	return attack.QueryPlan(p, s.backends...).Context(ctx)
}

func (s *Server) fedCount(ctx context.Context, p attack.Plan) (int, []attack.BackendStatus, error) {
	if s.strict {
		n, err := s.query(ctx, p).Count()
		return n, nil, err
	}
	return s.query(ctx, p).CountPartial()
}

func (s *Server) fedCountByVector(ctx context.Context, p attack.Plan) ([attack.NumVectors]int, []attack.BackendStatus, error) {
	if s.strict {
		counts, err := s.query(ctx, p).CountByVector()
		return counts, nil, err
	}
	return s.query(ctx, p).CountByVectorPartial()
}

func (s *Server) fedCountByDay(ctx context.Context, p attack.Plan) ([]int, []attack.BackendStatus, error) {
	if s.strict {
		days, err := s.query(ctx, p).CountByDay()
		return days, nil, err
	}
	return s.query(ctx, p).CountByDayPartial()
}

func (s *Server) fedStores(ctx context.Context, p attack.Plan) ([]*attack.Store, []attack.BackendStatus, io.Closer, error) {
	if s.strict {
		stores, closer, err := s.query(ctx, p).Stores()
		return stores, nil, closer, err
	}
	return s.query(ctx, p).StoresPartial()
}

func (s *Server) fedIter(ctx context.Context, p attack.Plan) (iter.Seq[*attack.Event], []attack.BackendStatus, io.Closer, error) {
	if s.strict {
		it, closer, err := s.query(ctx, p).Iter()
		return it, nil, closer, err
	}
	return s.query(ctx, p).IterPartial()
}

func (s *Server) fedIterByStart(ctx context.Context, p attack.Plan) (iter.Seq[*attack.Event], []attack.BackendStatus, io.Closer, error) {
	if s.strict {
		it, closer, err := s.query(ctx, p).IterByStart()
		return it, nil, closer, err
	}
	return s.query(ctx, p).IterByStartPartial()
}

package httpapi

import (
	"sync"
	"time"
)

// limiterClients bounds the per-client bucket map; past it, idle (full)
// buckets are pruned before a new client is admitted. A full bucket
// carries no history — dropping and recreating it is equivalent — so
// pruning never loosens anyone's limit.
const limiterClients = 8192

// limiter applies a token bucket per client key: each client accrues
// rate tokens per second up to burst, and each request spends one.
// Keys are client IPs, so one greedy consumer exhausts its own bucket
// without starving the rest — the first thing a front end needs once
// it serves more consumers than it has cores.
type limiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	clients map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), now: time.Now, clients: make(map[string]*bucket)}
}

// allow reports whether the client may proceed, spending one token.
func (l *limiter) allow(key string) bool {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.clients[key]
	if !ok {
		if len(l.clients) >= limiterClients {
			l.prune(now)
			// Pruning only drops fully-refilled buckets; a map full of
			// active clients shrinks by evicting the longest-idle ones,
			// so the cap holds however many distinct keys arrive (an
			// address-rotating scraper must not grow the map without
			// bound). An evicted client restarts with a full bucket —
			// eviction can only loosen its limit, never block it.
			for len(l.clients) >= limiterClients {
				l.evictOldest()
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// prune drops buckets that have refilled completely — clients idle for
// at least burst/rate seconds, indistinguishable from new ones. Called
// with the lock held.
func (l *limiter) prune(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.clients {
		if now.Sub(b.last) >= idle {
			delete(l.clients, k)
		}
	}
}

// evictOldest removes the bucket with the oldest last-seen time — the
// client most likely gone for good. Called with the lock held and the
// map non-empty.
func (l *limiter) evictOldest() {
	var oldestKey string
	var oldest time.Time
	first := true
	for k, b := range l.clients {
		if first || b.last.Before(oldest) {
			oldestKey, oldest, first = k, b.last, false
		}
	}
	delete(l.clients, oldestKey)
}

// retryAfter estimates the seconds until one token accrues — the
// Retry-After hint on 429 responses (at least 1, so clients never spin).
func (l *limiter) retryAfter() int {
	s := int(1 / l.rate)
	if s < 1 {
		s = 1
	}
	return s
}

package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"doscope/internal/attack"
	"doscope/internal/faultnet"
	"doscope/internal/federation"
)

// chaosSite is one federated site with a faultnet proxy in front: the
// HTTP server under test dials the proxy, so tests can injure and heal
// the site without touching the federation server.
type chaosSite struct {
	store *attack.Store
	proxy *faultnet.Proxy
}

// startChaosSite serves st over DOSFED01 behind a fault proxy.
func startChaosSite(t *testing.T, st *attack.Store) *chaosSite {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := federation.NewServer(st)
	go fs.Serve(l)
	t.Cleanup(fs.Shutdown)
	proxy, err := faultnet.Listen(l.Addr().String(), faultnet.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(); proxy.Close() })
	return &chaosSite{store: st, proxy: proxy}
}

// chaosOpts tunes the federation clients for fast failure detection in
// tests: one attempt, sub-second timeouts, a two-failure breaker, and
// an aggressive background probe so healed sites rejoin quickly.
func chaosOpts() []federation.Option {
	return []federation.Option{
		federation.WithAttempts(1),
		federation.WithDialTimeout(400 * time.Millisecond),
		federation.WithRequestTimeout(400 * time.Millisecond),
		federation.WithBreaker(2, 100*time.Millisecond),
		federation.WithHealthProbe(25 * time.Millisecond),
	}
}

// chaosFixture: three federated sites behind fault proxies, an HTTP
// server fanning out to all three, and two oracle servers over the
// same event data held locally — the full set and the healthy subset
// with site 1 removed. Degraded-mode responses must equal the subset
// oracle; healthy responses the full one.
func chaosFixture(t *testing.T, opts ...Option) (ts, oracleFull, oracleSub *httptest.Server, sites []*chaosSite) {
	t.Helper()
	rng := rand.New(rand.NewSource(103))
	stores := make([]*attack.Store, 3)
	for i, n := range []int{350, 300, 250} {
		stores[i] = attack.NewStore(randomEvents(rng, n))
	}
	sites = make([]*chaosSite, 3)
	backends := make([]attack.Queryable, 3)
	for i, st := range stores {
		sites[i] = startChaosSite(t, st)
		r := federation.Dial(sites[i].proxy.Addr(), chaosOpts()...)
		t.Cleanup(func() { r.Close() })
		backends[i] = r
	}
	ts = httptest.NewServer(NewServer(backends, opts...))
	t.Cleanup(ts.Close)
	oracleFull = httptest.NewServer(NewServer([]attack.Queryable{stores[0], stores[1], stores[2]}))
	t.Cleanup(oracleFull.Close)
	oracleSub = httptest.NewServer(NewServer([]attack.Queryable{stores[0], stores[2]}))
	t.Cleanup(oracleSub.Close)
	return
}

// getMap fetches a JSON endpoint into a generic map, failing on
// non-200.
func getMap(t *testing.T, ts *httptest.Server, path string) map[string]any {
	t.Helper()
	status, body := getBody(t, ts, path)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, status, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
	return m
}

// chaosEndpoints is every query endpoint the degraded sweep covers.
var chaosEndpoints = []string{
	"/v1/count",
	"/v1/count/vector",
	"/v1/count/day",
	"/v1/count/target-prefix?group=16",
	"/v1/figures/1",
	"/v1/figures/5",
	"/v1/figures/6",
	"/v1/figures/7",
}

// TestChaosDegradedSweep is the acceptance scenario: with one of three
// sites blackholed, every counting and figure endpoint answers 200
// with a degraded field naming the dead site and values equal to the
// healthy-subset oracle; /healthz reports the open breaker; and when
// the site heals, it rejoins automatically and responses return to the
// full-fleet values with no degraded field.
func TestChaosDegradedSweep(t *testing.T) {
	ts, oracleFull, oracleSub, sites := chaosFixture(t)

	// Healthy first: full-oracle values, no degraded field anywhere.
	for _, ep := range chaosEndpoints {
		got, want := getMap(t, ts, ep), getMap(t, oracleFull, ep)
		if _, ok := got["degraded"]; ok {
			t.Fatalf("%s: degraded field over healthy sites: %v", ep, got["degraded"])
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s healthy: got %v, want full oracle %v", ep, got, want)
		}
	}

	sites[1].proxy.SetFaults(faultnet.Faults{Blackhole: true})

	for _, ep := range chaosEndpoints {
		got := getMap(t, ts, ep)
		deg, ok := got["degraded"].(map[string]any)
		if !ok {
			t.Fatalf("%s with site 1 blackholed: no degraded field: %v", ep, got)
		}
		bs := deg["backends"].([]any)
		if len(bs) != 3 {
			t.Fatalf("%s: degraded lists %d backends, want 3", ep, len(bs))
		}
		st1 := bs[1].(map[string]any)
		if st1["state"] == "ok" || st1["backend"].(float64) != 1 {
			t.Fatalf("%s: dead site status %v, want failed/skipped backend 1", ep, st1)
		}
		for _, i := range []int{0, 2} {
			if st := bs[i].(map[string]any); st["state"] != "ok" {
				t.Fatalf("%s: healthy site %d reported %v", ep, i, st)
			}
		}
		delete(got, "degraded")
		want := getMap(t, oracleSub, ep)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s degraded: got %v, want healthy-subset oracle %v", ep, got, want)
		}
	}

	// The breaker has tripped by now (every sweep request fed it);
	// /healthz reports it without touching the network.
	deadline := time.Now().Add(5 * time.Second)
	for {
		hz := getMap(t, ts, "/healthz")
		if hz["degraded"] == true {
			if hz["ok"] != true {
				t.Fatal("healthz ok flipped false while degraded; it reports liveness")
			}
			sitesList := hz["sites"].([]any)
			if len(sitesList) != 3 {
				t.Fatalf("healthz lists %d sites, want 3", len(sitesList))
			}
			s1 := sitesList[1].(map[string]any)
			if s1["breaker"] == "closed" {
				t.Fatalf("healthz site 1 breaker %v, want open/half-open", s1["breaker"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported degraded with a blackholed site")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// /v1/stats carries the same breaker view per backend.
	var snap statsSnapshot
	getJSON(t, ts, "/v1/stats", &snap)
	if snap.Degraded == 0 {
		t.Error("stats degraded counter never moved")
	}
	if snap.Backends[1].Breaker == "closed" || snap.Backends[1].Breaker == "" {
		t.Errorf("stats backend 1 breaker = %q, want open/half-open", snap.Backends[1].Breaker)
	}

	// With the breaker open the dead site is skipped in memory — the
	// sweep stays fast instead of paying the 400ms timeout per request.
	start := time.Now()
	got := getMap(t, ts, "/v1/count")
	if _, ok := got["degraded"]; !ok {
		t.Fatal("count lost its degraded field while the site is still down")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("open-breaker count took %v", d)
	}

	// Heal: the background probe closes the breaker and the site
	// rejoins with no caller traffic required.
	sites[1].proxy.Heal()
	deadline = time.Now().Add(10 * time.Second)
	for {
		got := getMap(t, ts, "/v1/count")
		if _, ok := got["degraded"]; !ok {
			want := getMap(t, oracleFull, "/v1/count")
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("post-rejoin count %v, want full oracle %v", got, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("site never rejoined after healing")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosEventsDegrade: the streaming endpoint degrades too — the
// page holds the healthy subset's events and the trailer carries the
// per-backend statuses.
func TestChaosEventsDegrade(t *testing.T) {
	ts, _, oracleSub, sites := chaosFixture(t)
	sites[1].proxy.SetFaults(faultnet.Faults{Blackhole: true})

	status, body := getBody(t, ts, "/v1/events?limit=2000")
	if status != http.StatusOK {
		t.Fatalf("events with a blackholed site: status %d", status)
	}
	events, trailer := decodeEventPage(t, body)
	if trailer.Degraded == nil {
		t.Fatal("events trailer carries no degraded field")
	}
	if st := trailer.Degraded.Backends[1]; st.State == "ok" {
		t.Fatalf("dead site state %q in trailer", st.State)
	}
	_, wantBody := getBody(t, oracleSub, "/v1/events?limit=2000")
	wantEvents, _ := decodeEventPage(t, wantBody)
	assertEventsEqual(t, events, wantEvents, "degraded events vs healthy-subset oracle")
}

// TestChaosStrictFailsClosed: WithStrict restores the all-or-nothing
// discipline — one dead site turns the query into a 502.
func TestChaosStrictFailsClosed(t *testing.T) {
	ts, oracleFull, _, sites := chaosFixture(t, WithStrict(true))

	got := getMap(t, ts, "/v1/count")
	want := getMap(t, oracleFull, "/v1/count")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("strict healthy count %v, want %v", got, want)
	}

	sites[1].proxy.SetFaults(faultnet.Faults{Blackhole: true})
	status, body := getBody(t, ts, "/v1/count")
	if status != http.StatusBadGateway {
		t.Fatalf("strict count with a dead site: status %d (%s), want 502", status, body)
	}
	status, _ = getBody(t, ts, "/v1/events")
	if status != http.StatusBadGateway {
		t.Fatalf("strict events with a dead site: status %d, want 502", status)
	}
}

// flakyLocal is a versioned backend whose query path can be failed on
// demand while Version keeps answering — the window where the cache's
// version vector succeeds but the fan-out loses a backend. It is the
// backend shape that exercises cached()'s degraded-bypass guard
// directly, with no network involved.
type flakyLocal struct {
	st *attack.Store

	mu   sync.Mutex
	fail bool
}

func (f *flakyLocal) setFail(b bool) {
	f.mu.Lock()
	f.fail = b
	f.mu.Unlock()
}

func (f *flakyLocal) err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errors.New("flaky backend down")
	}
	return nil
}

func (f *flakyLocal) Version() uint64 { return f.st.Version() }

func (f *flakyLocal) PlanCount(p attack.Plan) (int, error) {
	if err := f.err(); err != nil {
		return 0, err
	}
	return f.st.PlanCount(p)
}

func (f *flakyLocal) PlanCountByVector(p attack.Plan) ([attack.NumVectors]int, error) {
	if err := f.err(); err != nil {
		return [attack.NumVectors]int{}, err
	}
	return f.st.PlanCountByVector(p)
}

func (f *flakyLocal) PlanCountByDay(p attack.Plan) ([]int, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	return f.st.PlanCountByDay(p)
}

func (f *flakyLocal) PlanStore(p attack.Plan) (*attack.Store, io.Closer, error) {
	if err := f.err(); err != nil {
		return nil, nil, err
	}
	return f.st.PlanStore(p)
}

// TestDegradedNeverCached is the cache regression: a degraded body is
// never written to the response cache, so a backend outage cannot be
// replayed from cache after the backend recovers. The flaky backend
// keeps its version vector valid throughout, so the cache would accept
// the degraded body if cached() offered it.
func TestDegradedNeverCached(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	healthy := attack.NewStore(randomEvents(rng, 400))
	flaky := &flakyLocal{st: attack.NewStore(randomEvents(rng, 300))}
	ts := httptest.NewServer(NewServer([]attack.Queryable{healthy, flaky}))
	defer ts.Close()

	flaky.setFail(true)
	for i := 0; i < 2; i++ {
		var resp countResponse
		getJSON(t, ts, "/v1/count", &resp)
		if resp.Degraded == nil {
			t.Fatalf("request %d: no degraded field with a failing backend", i)
		}
		if resp.Count != healthy.Len() {
			t.Fatalf("request %d: degraded count = %d, want the healthy backend's %d", i, resp.Count, healthy.Len())
		}
	}
	var snap statsSnapshot
	getJSON(t, ts, "/v1/stats", &snap)
	if snap.CacheEntries != 0 {
		t.Fatalf("degraded responses were cached: %d entries", snap.CacheEntries)
	}
	if snap.CacheHits != 0 {
		t.Fatalf("a degraded response was served from cache (%d hits)", snap.CacheHits)
	}

	// Backend heals under an unchanged version vector: the next
	// request must recompute the whole answer, not replay the outage.
	flaky.setFail(false)
	var resp countResponse
	getJSON(t, ts, "/v1/count", &resp)
	if resp.Degraded != nil {
		t.Fatalf("healed backend still reported degraded: %+v", resp.Degraded)
	}
	if want := healthy.Len() + flaky.st.Len(); resp.Count != want {
		t.Fatalf("post-heal count = %d, want %d", resp.Count, want)
	}
	getJSON(t, ts, "/v1/stats", &snap)
	if snap.CacheEntries != 1 {
		t.Fatalf("healthy response not cached: %d entries", snap.CacheEntries)
	}
}

// TestLimiterCapEviction: the per-client bucket map cannot grow past
// its cap even when every client stays active — the overflow evicts the
// longest-idle buckets first.
func TestLimiterCapEviction(t *testing.T) {
	l := newLimiter(1, 60)
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }

	key := func(i int) string { return fmt.Sprintf("client-%d", i) }
	for i := 0; i < limiterClients; i++ {
		now = now.Add(time.Millisecond)
		if !l.allow(key(i)) {
			t.Fatalf("fresh client %d rejected", i)
		}
	}
	if len(l.clients) != limiterClients {
		t.Fatalf("map holds %d buckets, want the cap %d", len(l.clients), limiterClients)
	}
	// Every bucket is active (spent a token moments ago), so pruning
	// frees nothing — admission must evict, and evict the oldest.
	now = now.Add(time.Millisecond)
	if !l.allow("fresh-client") {
		t.Fatal("client rejected at the cap")
	}
	if len(l.clients) > limiterClients {
		t.Fatalf("map grew past the cap: %d", len(l.clients))
	}
	if _, ok := l.clients[key(0)]; ok {
		t.Error("oldest bucket survived eviction")
	}
	if _, ok := l.clients["fresh-client"]; !ok {
		t.Error("new client not admitted")
	}
}

package httpapi

import "sync/atomic"

// metrics is the server's expvar-style counter set, updated atomically
// on every request and reported by /v1/stats. Counters only ever grow;
// inFlight is the single gauge.
type metrics struct {
	requests      atomic.Uint64 // every request received, before any gate
	rateLimited   atomic.Uint64 // 429s from the per-client token buckets
	rejected      atomic.Uint64 // 503s from the global in-flight cap
	errors        atomic.Uint64 // responses with status >= 400 (including the above)
	cacheHits     atomic.Uint64 // responses served from the plan-keyed cache
	cacheMisses   atomic.Uint64 // cacheable responses that had to execute
	notModified   atomic.Uint64 // 304s from If-None-Match revalidation
	degraded      atomic.Uint64 // 200s that were missing some backend's partial
	bytesStreamed atomic.Uint64 // response body bytes, all endpoints
	inFlight      atomic.Int64  // requests currently inside a handler
}

// statsSnapshot is the JSON shape /v1/stats serves.
type statsSnapshot struct {
	Requests      uint64        `json:"requests"`
	RateLimited   uint64        `json:"rate_limited"`
	Rejected      uint64        `json:"rejected"`
	Errors        uint64        `json:"errors"`
	CacheHits     uint64        `json:"cache_hits"`
	CacheMisses   uint64        `json:"cache_misses"`
	NotModified   uint64        `json:"not_modified"`
	CacheEntries  int           `json:"cache_entries"`
	Degraded      uint64        `json:"degraded"`
	BytesStreamed uint64        `json:"bytes_streamed"`
	InFlight      int64         `json:"in_flight"`
	Backends      []backendInfo `json:"backends"`
}

// backendInfo describes one backend in /v1/stats. Remote backends with
// a circuit breaker additionally report its state — the ops view of
// which sites a degraded response is missing.
type backendInfo struct {
	Kind            string `json:"kind"` // "store" or "remote"
	Addr            string `json:"addr,omitempty"`
	Versioned       bool   `json:"versioned"`
	Version         uint64 `json:"version,omitempty"`
	Events          int    `json:"events,omitempty"`
	Breaker         string `json:"breaker,omitempty"` // "closed", "open", "half-open"
	BreakerFailures int    `json:"breaker_failures,omitempty"`

	// Ingest-front state for local stores (attack.Store.IngestStats):
	// queue depth in events/batches, drain-tick and coalesced-batch
	// counters, and whether the store ingests in queued (async) mode.
	// The ops view of how far publication lags the producers.
	IngestQueued    int    `json:"ingest_queued,omitempty"`
	IngestBatches   int    `json:"ingest_batches,omitempty"`
	IngestDrains    uint64 `json:"ingest_drains,omitempty"`
	IngestCoalesced uint64 `json:"ingest_coalesced,omitempty"`
	IngestAsync     bool   `json:"ingest_async,omitempty"`

	// Query-execution counters for local stores (attack.Store.ExecStats):
	// per-shard tasks by kind since process start, plus how often the
	// distinct-target terminals were answered by bitmap union versus
	// falling back to a scan. The ops view of whether the working set is
	// index-served or core-saturating.
	ExecScanTasks   uint64 `json:"exec_scan_tasks,omitempty"`
	ExecProbeTasks  uint64 `json:"exec_probe_tasks,omitempty"`
	ExecBitmapTasks uint64 `json:"exec_bitmap_tasks,omitempty"`
	BitmapHits      uint64 `json:"bitmap_hits,omitempty"`
	BitmapMisses    uint64 `json:"bitmap_misses,omitempty"`
}

func (m *metrics) snapshot() statsSnapshot {
	return statsSnapshot{
		Requests:      m.requests.Load(),
		RateLimited:   m.rateLimited.Load(),
		Rejected:      m.rejected.Load(),
		Errors:        m.errors.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		NotModified:   m.notModified.Load(),
		Degraded:      m.degraded.Load(),
		BytesStreamed: m.bytesStreamed.Load(),
		InFlight:      m.inFlight.Load(),
	}
}

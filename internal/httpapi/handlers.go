package httpapi

import (
	"cmp"
	"fmt"
	"net/http"
	"net/url"
	"slices"
	"strconv"

	"doscope/internal/attack"
	"doscope/internal/federation"
	"doscope/internal/netx"
)

// planFrom compiles the request's filter parameters (or plan=) into a
// plan, reporting a 400 on any malformed or out-of-domain value.
func planFrom(w http.ResponseWriter, r *http.Request) (attack.Plan, bool) {
	p, err := attack.PlanFromValues(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return attack.Plan{}, false
	}
	return p, true
}

// intParam parses an optional integer parameter with bounds.
func intParam(v url.Values, key string, def, min, max int) (int, error) {
	s := v.Get(key)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < min || n > max {
		return 0, fmt.Errorf("%s=%q: want an integer in [%d, %d]", key, s, min, max)
	}
	return n, nil
}

// healthzSite is one remote backend's circuit-breaker view in
// /healthz: which site, and whether the breaker currently has it out
// of rotation.
type healthzSite struct {
	Backend  int    `json:"backend"`
	Addr     string `json:"addr"`
	Breaker  string `json:"breaker"` // "closed", "open", "half-open"
	Failures int    `json:"failures,omitempty"`
}

// healthzBody is the /healthz response. ok reports liveness and stays
// true while degraded — a front end missing a site is still worth
// routing to; degraded tells the orchestrator a site is out.
type healthzBody struct {
	OK       bool          `json:"ok"`
	Backends int           `json:"backends"`
	Degraded bool          `json:"degraded"`
	Sites    []healthzSite `json:"sites,omitempty"`
}

// handleHealthz answers liveness probes. It touches no backend — the
// breaker states it reports are in-memory snapshots — and bypasses
// every gate, so it keeps answering while the server sheds load.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hz := healthzBody{OK: true, Backends: len(s.backends)}
	for i, b := range s.backends {
		rs, ok := b.(*federation.RemoteStore)
		if !ok {
			continue
		}
		st, on := rs.Breaker()
		if !on {
			continue
		}
		hz.Sites = append(hz.Sites, healthzSite{
			Backend: i, Addr: rs.Addr(),
			Breaker: st.State.String(), Failures: st.Failures,
		})
		if st.State != federation.BreakerClosed {
			hz.Degraded = true
		}
	}
	body, err := marshalBody(hz)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, body)
}

// handleStats serves the counter snapshot plus per-backend state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot()
	snap.CacheEntries = s.cache.len()
	snap.Backends = s.backendsInfo()
	body, err := marshalBody(snap)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, body)
}

// countResponse is the /v1/count body.
type countResponse struct {
	Plan     string        `json:"plan"`
	Count    int           `json:"count"`
	Degraded *degradedJSON `json:"degraded,omitempty"`
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	p, ok := planFrom(w, r)
	if !ok {
		return
	}
	s.cached(w, r, "count", "", p, func() (any, bool, error) {
		n, statuses, err := s.fedCount(r.Context(), p)
		if err != nil {
			return nil, false, err
		}
		d := degradedFrom(statuses)
		return countResponse{Plan: p.EncodeString(), Count: n, Degraded: d}, d != nil, nil
	})
}

// vectorCount is one row of the /v1/count/vector body; rows cover
// every vector, in vector order, so clients need no name lookup to
// align series.
type vectorCount struct {
	Vector string `json:"vector"`
	Count  int    `json:"count"`
}

type countByVectorResponse struct {
	Plan     string        `json:"plan"`
	Counts   []vectorCount `json:"counts"`
	Degraded *degradedJSON `json:"degraded,omitempty"`
}

func (s *Server) handleCountByVector(w http.ResponseWriter, r *http.Request) {
	p, ok := planFrom(w, r)
	if !ok {
		return
	}
	s.cached(w, r, "count/vector", "", p, func() (any, bool, error) {
		counts, statuses, err := s.fedCountByVector(r.Context(), p)
		if err != nil {
			return nil, false, err
		}
		rows := make([]vectorCount, attack.NumVectors)
		for v := range counts {
			rows[v] = vectorCount{Vector: attack.Vector(v).String(), Count: counts[v]}
		}
		d := degradedFrom(statuses)
		return countByVectorResponse{Plan: p.EncodeString(), Counts: rows, Degraded: d}, d != nil, nil
	})
}

// countByDayResponse is the /v1/count/day body: one cell per day of
// the measurement window, index = day offset from the window start.
type countByDayResponse struct {
	Plan     string        `json:"plan"`
	Days     []int         `json:"days"`
	Degraded *degradedJSON `json:"degraded,omitempty"`
}

func (s *Server) handleCountByDay(w http.ResponseWriter, r *http.Request) {
	p, ok := planFrom(w, r)
	if !ok {
		return
	}
	s.cached(w, r, "count/day", "", p, func() (any, bool, error) {
		days, statuses, err := s.fedCountByDay(r.Context(), p)
		if err != nil {
			return nil, false, err
		}
		d := degradedFrom(statuses)
		return countByDayResponse{Plan: p.EncodeString(), Days: days, Degraded: d}, d != nil, nil
	})
}

// prefixGroup is one row of /v1/count/target-prefix: a target block,
// its matching event count, and how many distinct targets it holds.
type prefixGroup struct {
	Prefix  string `json:"prefix"`
	Events  int    `json:"events"`
	Targets int    `json:"targets"`
}

type targetPrefixResponse struct {
	Plan      string        `json:"plan"`
	GroupBits int           `json:"group_bits"`
	Total     int           `json:"total_groups"`
	Groups    []prefixGroup `json:"groups"`
	Degraded  *degradedJSON `json:"degraded,omitempty"`
}

// handleCountTargetPrefix groups matching events by target block — the
// HTTP face of Query.GroupByTarget, generalized to any block size.
// group= sets the grouping prefix length (default 32, exact targets);
// top= caps the rows returned, ordered by event count. Unlike the pure
// counting endpoints this iterates events (remote backends ship their
// matching subset once as a segment), so responses lean on the
// version-keyed cache.
func (s *Server) handleCountTargetPrefix(w http.ResponseWriter, r *http.Request) {
	p, ok := planFrom(w, r)
	if !ok {
		return
	}
	group, err := intParam(r.URL.Query(), "group", 32, 0, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	top, err := intParam(r.URL.Query(), "top", 100, 1, 100000)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	extra := fmt.Sprintf("group=%d&top=%d", group, top)
	s.cached(w, r, "count/target-prefix", extra, p, func() (any, bool, error) {
		type tally struct {
			events  int
			targets map[netx.Addr]struct{}
		}
		it, statuses, closer, err := s.fedIter(r.Context(), p)
		if err != nil {
			return nil, false, err
		}
		defer closer.Close()
		groups := make(map[netx.Addr]*tally)
		for e := range it {
			key := e.Target.Mask(group)
			t := groups[key]
			if t == nil {
				t = &tally{targets: make(map[netx.Addr]struct{})}
				groups[key] = t
			}
			t.events++
			t.targets[e.Target] = struct{}{}
		}
		rows := make([]prefixGroup, 0, len(groups))
		for addr, t := range groups {
			rows = append(rows, prefixGroup{
				Prefix:  fmt.Sprintf("%s/%d", addr, group),
				Events:  t.events,
				Targets: len(t.targets),
			})
		}
		slices.SortFunc(rows, func(a, b prefixGroup) int {
			if c := cmp.Compare(b.Events, a.Events); c != 0 {
				return c
			}
			return cmp.Compare(a.Prefix, b.Prefix)
		})
		total := len(rows)
		if len(rows) > top {
			rows = rows[:top]
		}
		d := degradedFrom(statuses)
		return targetPrefixResponse{
			Plan: p.EncodeString(), GroupBits: group, Total: total, Groups: rows,
			Degraded: d,
		}, d != nil, nil
	})
}

package httpapi

import (
	"cmp"
	"context"
	"fmt"
	"net/http"
	"slices"

	"doscope/internal/attack"
	"doscope/internal/netx"
	"doscope/internal/stats"
)

// The figure endpoints serve the source paper's measurement views
// (Figures 1, 5, 6 and 7) as live aggregates over the backend set —
// the attack-plane halves of those figures, computable from events
// alone. (Figures 6 and 7 additionally join against the Web-site model
// in the paper; that join lives in internal/core and needs the
// OpenINTEL-style history, which the serving layer does not carry, so
// here Figure 6 is the repeated-targeting histogram and Figure 7 the
// unique-target time series.)
//
// All figure endpoints accept the standard filter parameters except
// source= — the figures are per-source by construction — and every
// response is cached under the backend version vector, so a fleet of
// dashboard consumers polling the same figure between ingest batches
// executes it once.

// figure1Response carries Figure 1's daily-attacks panels: one series
// per sensor plus the combined view, straight from the per-day count
// indexes (three CountByDay plans, no event scan).
type figure1Response struct {
	Plan      string        `json:"plan"`
	Days      int           `json:"days"`
	Telescope []int         `json:"telescope"`
	Honeypot  []int         `json:"honeypot"`
	Combined  []int         `json:"combined"`
	Degraded  *degradedJSON `json:"degraded,omitempty"`
}

// figure5Response is Figure 5's combined daily series restricted to
// medium-plus events — intensity at least the per-source mean over the
// matching events, the paper's §4 definition.
type figure5Response struct {
	Plan          string             `json:"plan"`
	Days          int                `json:"days"`
	MediumPlus    []int              `json:"medium_plus"`
	MeanIntensity map[string]float64 `json:"mean_intensity"`
	Degraded      *degradedJSON      `json:"degraded,omitempty"`
}

// figureBin is one histogram bin of Figure 6.
type figureBin struct {
	Bin   string `json:"bin"`
	Count int    `json:"count"`
}

// figure6Response is the attack-plane Figure 6: the log-binned
// histogram of attacks per unique target — how concentrated repeated
// targeting is.
type figure6Response struct {
	Plan     string        `json:"plan"`
	Targets  int           `json:"targets"`
	Bins     []figureBin   `json:"bins"`
	Degraded *degradedJSON `json:"degraded,omitempty"`
}

// figure7Response is the attack-plane Figure 7: daily unique targets,
// the medium-plus restriction of the same series, and the four peak
// days.
type figure7Response struct {
	Plan          string             `json:"plan"`
	Days          int                `json:"days"`
	DailyTargets  []int              `json:"daily_targets"`
	DailyMedium   []int              `json:"daily_medium"`
	PeakDays      []int              `json:"peak_days"`
	PeakValues    []int              `json:"peak_values"`
	MeanIntensity map[string]float64 `json:"mean_intensity"`
	Degraded      *degradedJSON      `json:"degraded,omitempty"`
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	p, ok := planFrom(w, r)
	if !ok {
		return
	}
	if p.Source >= 0 {
		writeError(w, http.StatusBadRequest, "figures compute their own per-source panels; drop the source filter")
		return
	}
	fig := r.PathValue("fig")
	ctx := r.Context()
	var compute func() (any, bool, error)
	switch fig {
	case "1":
		compute = func() (any, bool, error) { return s.figure1(ctx, p) }
	case "5":
		compute = func() (any, bool, error) { return s.figure5(ctx, p) }
	case "6":
		compute = func() (any, bool, error) { return s.figure6(ctx, p) }
	case "7":
		compute = func() (any, bool, error) { return s.figure7(ctx, p) }
	default:
		writeError(w, http.StatusNotFound, fmt.Sprintf("no figure %q: serving 1, 5, 6, 7", fig))
		return
	}
	s.cached(w, r, "figures/"+fig, "", p, compute)
}

// figure1 answers from the count indexes alone: one CountByDay plan
// per panel, fanned to every backend. A backend that misses any panel
// marks the whole figure degraded — the panels must describe the same
// backend subset to be comparable.
func (s *Server) figure1(ctx context.Context, p attack.Plan) (any, bool, error) {
	var merged []attack.BackendStatus
	panel := func(src int8) ([]int, error) {
		pp := p
		pp.Source = src
		days, statuses, err := s.fedCountByDay(ctx, pp)
		merged = mergeStatuses(merged, statuses)
		return days, err
	}
	tel, err := panel(int8(attack.SourceTelescope))
	if err != nil {
		return nil, false, err
	}
	hp, err := panel(int8(attack.SourceHoneypot))
	if err != nil {
		return nil, false, err
	}
	comb, err := panel(-1)
	if err != nil {
		return nil, false, err
	}
	d := degradedFrom(merged)
	return figure1Response{
		Plan: p.EncodeString(), Days: attack.WindowDays,
		Telescope: tel, Honeypot: hp, Combined: comb, Degraded: d,
	}, d != nil, nil
}

// meanIntensity computes the per-source mean intensity over the
// matching events of the fetched stores — the medium-plus threshold.
func meanIntensity(p attack.Plan, stores []*attack.Store) [attack.NumSources]float64 {
	var sum [attack.NumSources]float64
	var n [attack.NumSources]int
	for e := range p.Query(stores...).Iter() {
		sum[e.Source] += e.Intensity()
		n[e.Source]++
	}
	var mean [attack.NumSources]float64
	for src := range mean {
		if n[src] > 0 {
			mean[src] = sum[src] / float64(n[src])
		}
	}
	return mean
}

func meanJSON(mean [attack.NumSources]float64) map[string]float64 {
	return map[string]float64{
		attack.SourceTelescope.String(): mean[attack.SourceTelescope],
		attack.SourceHoneypot.String():  mean[attack.SourceHoneypot],
	}
}

// figure5 fetches the matching events once (remote backends ship one
// segment) and runs two passes over the local partials: means, then
// the medium-plus daily tally.
func (s *Server) figure5(ctx context.Context, p attack.Plan) (any, bool, error) {
	stores, statuses, closer, err := s.fedStores(ctx, p)
	if err != nil {
		return nil, false, err
	}
	defer closer.Close()
	mean := meanIntensity(p, stores)
	days := make([]int, attack.WindowDays)
	for e := range p.Query(stores...).Iter() {
		if e.Intensity() < mean[e.Source] {
			continue
		}
		if d := e.Day(); d >= 0 && d < attack.WindowDays {
			days[d]++
		}
	}
	d := degradedFrom(statuses)
	return figure5Response{
		Plan: p.EncodeString(), Days: attack.WindowDays,
		MediumPlus: days, MeanIntensity: meanJSON(mean), Degraded: d,
	}, d != nil, nil
}

// figure6 tallies events per unique target and log-bins the counts.
func (s *Server) figure6(ctx context.Context, p attack.Plan) (any, bool, error) {
	it, statuses, closer, err := s.fedIter(ctx, p)
	if err != nil {
		return nil, false, err
	}
	defer closer.Close()
	perTarget := make(map[netx.Addr]int)
	for e := range it {
		perTarget[e.Target]++
	}
	vals := make([]int, 0, len(perTarget))
	for _, n := range perTarget {
		vals = append(vals, n)
	}
	h := stats.NewLogHistogram(vals)
	bins := make([]figureBin, len(h.Counts))
	for k, n := range h.Counts {
		bins[k] = figureBin{Bin: h.BinLabel(k), Count: n}
	}
	d := degradedFrom(statuses)
	return figure6Response{Plan: p.EncodeString(), Targets: len(perTarget), Bins: bins, Degraded: d}, d != nil, nil
}

// figure7 builds the daily unique-target series (overall and
// medium-plus) plus the four peak days, mirroring core.Figure7's
// attack-plane half: a target counts once per day it is attacked.
func (s *Server) figure7(ctx context.Context, p attack.Plan) (any, bool, error) {
	stores, statuses, closer, err := s.fedStores(ctx, p)
	if err != nil {
		return nil, false, err
	}
	defer closer.Close()
	mean := meanIntensity(p, stores)
	dailyAll := make([]int, attack.WindowDays)
	dailyMed := make([]int, attack.WindowDays)
	seenAll := make(map[int64]struct{})
	seenMed := make(map[int64]struct{})
	for e := range p.Query(stores...).Iter() {
		d := e.Day()
		if d < 0 || d >= attack.WindowDays {
			continue
		}
		key := int64(d)<<32 | int64(uint32(e.Target))
		if _, ok := seenAll[key]; !ok {
			seenAll[key] = struct{}{}
			dailyAll[d]++
		}
		if e.Intensity() >= mean[e.Source] {
			if _, ok := seenMed[key]; !ok {
				seenMed[key] = struct{}{}
				dailyMed[d]++
			}
		}
	}
	type peak struct{ day, v int }
	peaks := make([]peak, 0, attack.WindowDays)
	for d, v := range dailyAll {
		peaks = append(peaks, peak{d, v})
	}
	slices.SortFunc(peaks, func(a, b peak) int {
		if c := cmp.Compare(b.v, a.v); c != 0 {
			return c
		}
		return cmp.Compare(a.day, b.day)
	})
	d := degradedFrom(statuses)
	res := figure7Response{
		Plan: p.EncodeString(), Days: attack.WindowDays,
		DailyTargets: dailyAll, DailyMedium: dailyMed,
		MeanIntensity: meanJSON(mean), Degraded: d,
	}
	for i := 0; i < 4 && i < len(peaks); i++ {
		res.PeakDays = append(res.PeakDays, peaks[i].day)
		res.PeakValues = append(res.PeakValues, peaks[i].v)
	}
	return res, d != nil, nil
}

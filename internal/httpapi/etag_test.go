package httpapi

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"doscope/internal/attack"
)

// condGet issues a GET with an optional If-None-Match and returns the
// status, the response ETag, and the body.
func condGet(t *testing.T, ts *httptest.Server, path, inm string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), body
}

// TestETagRevalidation drives the conditional-request cycle on the
// counting and figure endpoints: a fresh response carries an ETag,
// If-None-Match with that tag revalidates to an empty 304, ingest
// anywhere invalidates the tag, and the replacement tag differs.
func TestETagRevalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	live := &attack.Store{}
	live.AddBatch(randomEvents(rng, 300))
	s := NewServer([]attack.Queryable{live})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, path := range []string{"/v1/count", "/v1/count/day?days=0-30", "/v1/figures/1"} {
		status, etag, body := condGet(t, ts, path, "")
		if status != http.StatusOK || etag == "" {
			t.Fatalf("GET %s: status %d etag %q, want 200 with an ETag", path, status, etag)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty fresh body", path)
		}

		status, etag2, body304 := condGet(t, ts, path, etag)
		if status != http.StatusNotModified {
			t.Fatalf("GET %s If-None-Match=%s: status %d, want 304", path, etag, status)
		}
		if etag2 != etag {
			t.Fatalf("GET %s: 304 ETag %q != original %q", path, etag2, etag)
		}
		if len(body304) != 0 {
			t.Fatalf("GET %s: 304 carried %d body bytes", path, len(body304))
		}

		// List and weak-comparison forms must also revalidate.
		for _, inm := range []string{`"nope", ` + etag, "W/" + etag, "*"} {
			if status, _, _ := condGet(t, ts, path, inm); status != http.StatusNotModified {
				t.Fatalf("GET %s If-None-Match=%q: status %d, want 304", path, inm, status)
			}
		}
	}

	// The tag is bound to the version vector: ingest must invalidate it.
	_, etag, _ := condGet(t, ts, "/v1/count", "")
	live.AddBatch(randomEvents(rng, 10))
	status, etagNew, body := condGet(t, ts, "/v1/count", etag)
	if status != http.StatusOK || len(body) == 0 {
		t.Fatalf("post-ingest conditional GET: status %d, want fresh 200", status)
	}
	if etagNew == etag || etagNew == "" {
		t.Fatalf("post-ingest ETag %q did not change from %q", etagNew, etag)
	}

	// 304s are counted separately from cache hits and misses.
	var snap statsSnapshot
	getJSON(t, ts, "/v1/stats", &snap)
	if snap.NotModified == 0 {
		t.Fatal("stats report zero not_modified after 304 responses")
	}

	// Different plans for the same endpoint must not share a tag.
	_, etagA, _ := condGet(t, ts, "/v1/count", "")
	_, etagB, _ := condGet(t, ts, "/v1/count?vectors=ntp", "")
	if etagA == etagB {
		t.Fatalf("distinct plans share ETag %q", etagA)
	}
}

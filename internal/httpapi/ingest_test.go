package httpapi

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"doscope/internal/attack"
)

// TestCacheUnderCoalescedPublication pins response-cache correctness
// against the store's tick-based publication: between ticks the store's
// version is unmoved, so a cached body stays valid no matter how many
// batches are queued behind it — and the moment a tick publishes
// (coalescing those batches into one view), the version vector changes
// and the cached body must not be served again. Two batches landing in
// one tick must surface as exactly one invalidation, with the response
// jumping straight to the combined count.
func TestCacheUnderCoalescedPublication(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	live := &attack.Store{}
	live.AddBatch(randomEvents(rng, 200)) // synchronous seed
	live.StartIngest(attack.IngestConfig{Tick: time.Hour})
	defer live.Close()

	s := NewServer([]attack.Queryable{live})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var c countResponse
	getJSON(t, ts, "/v1/count", &c)
	if c.Count != 200 {
		t.Fatalf("seed count %d, want 200", c.Count)
	}

	// Two batches inside one tick: enqueued, not published.
	live.AddBatch(randomEvents(rng, 10))
	live.AddBatch(randomEvents(rng, 5))

	// Before the tick the published view is unchanged, so the cached
	// body is still the truth — it must be a hit, not a stale miss.
	hits0 := s.metrics.cacheHits.Load()
	getJSON(t, ts, "/v1/count", &c)
	if c.Count != 200 {
		t.Fatalf("pre-tick count %d, want 200 (queued batches leaked into the view)", c.Count)
	}
	if hits := s.metrics.cacheHits.Load(); hits != hits0+1 {
		t.Fatalf("pre-tick repeat was not served from cache (hits %d -> %d)", hits0, hits)
	}

	// The tick: ONE publication covering both batches. The version
	// vector moves once; the cached body must not outlive it.
	live.Flush()
	misses0 := s.metrics.cacheMisses.Load()
	getJSON(t, ts, "/v1/count", &c)
	if c.Count != 215 {
		t.Fatalf("post-tick count %d, want 215", c.Count)
	}
	if misses := s.metrics.cacheMisses.Load(); misses != misses0+1 {
		t.Fatalf("post-tick query served stale cache (misses %d -> %d)", misses0, misses)
	}

	// The stats endpoint agrees: version jumped by both batches at once.
	var snap statsSnapshot
	getJSON(t, ts, "/v1/stats", &snap)
	if len(snap.Backends) != 1 || snap.Backends[0].Version != 215 {
		t.Fatalf("backend version after tick = %+v, want 215", snap.Backends)
	}
}

// TestStatsIngestCounters pins the /v1/stats ingest-front fields: queue
// depth while batches wait for a tick, drain/coalesce counters after,
// and the async flag over the store's mode lifecycle.
func TestStatsIngestCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	live := &attack.Store{}
	live.StartIngest(attack.IngestConfig{Tick: time.Hour})
	defer live.Close()

	ts := httptest.NewServer(NewServer([]attack.Queryable{live}))
	defer ts.Close()

	live.AddBatch(randomEvents(rng, 30))
	live.AddBatch(randomEvents(rng, 12))

	var snap statsSnapshot
	getJSON(t, ts, "/v1/stats", &snap)
	if len(snap.Backends) != 1 {
		t.Fatalf("backends = %+v, want 1 store", snap.Backends)
	}
	b := snap.Backends[0]
	if b.IngestQueued != 42 || b.IngestBatches != 2 || !b.IngestAsync {
		t.Fatalf("pre-drain ingest stats = %+v, want 42 queued in 2 batches, async", b)
	}
	if b.Events != 0 {
		t.Fatalf("queued events already published: %d", b.Events)
	}

	live.Flush()
	snap = statsSnapshot{} // omitempty: zeroed fields vanish from the JSON
	getJSON(t, ts, "/v1/stats", &snap)
	b = snap.Backends[0]
	if b.IngestQueued != 0 || b.IngestBatches != 0 || b.IngestDrains != 1 || b.IngestCoalesced != 2 {
		t.Fatalf("post-drain ingest stats = %+v, want empty queue, 1 drain, 2 coalesced", b)
	}
	if b.Events != 42 || b.Version != 42 {
		t.Fatalf("post-drain backend = %+v, want 42 events at version 42", b)
	}

	// Close reverts to synchronous mode; stats reflect it.
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	snap = statsSnapshot{}
	getJSON(t, ts, "/v1/stats", &snap)
	if snap.Backends[0].IngestAsync {
		t.Fatal("store still reports async ingest after Close")
	}
}

// Package packet implements wire-format encoding and decoding for the IPv4
// header family (IPv4, TCP, UDP, ICMPv4) with no dependencies beyond the
// standard library.
//
// The design follows the gopacket DecodingLayer idiom: layer structs are
// decoded in place with DecodeFromBytes so a hot parsing loop performs no
// per-packet allocation, and serialization uses a prepend-style
// SerializeBuffer so a packet is built by serializing layers innermost
// first. doscope uses this package to synthesize and to classify telescope
// backscatter and honeypot reflection traffic.
package packet

import (
	"errors"
	"fmt"
)

// IPProtocol is the IPv4 protocol number.
type IPProtocol uint8

// Protocol numbers used by the telescope classifier.
const (
	ProtocolICMP IPProtocol = 1
	ProtocolIGMP IPProtocol = 2
	ProtocolTCP  IPProtocol = 6
	ProtocolUDP  IPProtocol = 17
	ProtocolGRE  IPProtocol = 47
	ProtocolESP  IPProtocol = 50
)

// String returns the conventional protocol name.
func (p IPProtocol) String() string {
	switch p {
	case ProtocolICMP:
		return "ICMP"
	case ProtocolIGMP:
		return "IGMP"
	case ProtocolTCP:
		return "TCP"
	case ProtocolUDP:
		return "UDP"
	case ProtocolGRE:
		return "GRE"
	case ProtocolESP:
		return "ESP"
	}
	return fmt.Sprintf("proto-%d", uint8(p))
}

// Errors shared by the layer decoders.
var (
	ErrTruncated = errors.New("packet: truncated data")
	ErrMalformed = errors.New("packet: malformed header")
)

// Layer is the interface implemented by every protocol layer in this
// package. DecodeFromBytes parses the layer from the start of data and
// retains a reference to the payload bytes (no copy).
type Layer interface {
	DecodeFromBytes(data []byte) error
	// Payload returns the bytes that follow this layer's header.
	Payload() []byte
}

// SerializableLayer is implemented by layers that can write themselves to a
// SerializeBuffer.
type SerializableLayer interface {
	SerializeTo(b *SerializeBuffer, opts SerializeOptions) error
}

// SerializeOptions controls header fix-ups during serialization.
type SerializeOptions struct {
	// FixLengths recomputes length fields (IPv4 total length, UDP length)
	// from the buffer contents.
	FixLengths bool
	// ComputeChecksums recomputes the IPv4 header checksum and the
	// TCP/UDP/ICMP checksums.
	ComputeChecksums bool
}

// SerializeBuffer assembles a packet back-to-front: each layer prepends its
// header in front of the bytes already present, mirroring
// gopacket.SerializeBuffer. The zero value is ready to use.
type SerializeBuffer struct {
	data  []byte // window within store holding the packet
	store []byte // backing array; data grows toward its start
}

// NewSerializeBuffer returns a buffer with a default amount of prepend
// headroom.
func NewSerializeBuffer() *SerializeBuffer {
	return NewSerializeBufferExpectedSize(64, 512)
}

// NewSerializeBufferExpectedSize returns a buffer sized for the expected
// header (prepend) and payload (append) byte counts.
func NewSerializeBufferExpectedSize(prepend, appendSize int) *SerializeBuffer {
	store := make([]byte, prepend+appendSize)
	return &SerializeBuffer{data: store[prepend:prepend], store: store}
}

// Bytes returns the assembled packet. The slice is invalidated by the next
// Prepend/Append/Clear call.
func (b *SerializeBuffer) Bytes() []byte { return b.data }

// Clear empties the buffer, retaining capacity and restoring headroom.
func (b *SerializeBuffer) Clear() {
	prepend := len(b.store)
	if prepend > 64 {
		prepend = 64
	}
	b.data = b.store[prepend:prepend]
}

// PrependBytes returns a slice of n fresh bytes at the front of the packet.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n < 0 {
		panic("packet: negative prepend")
	}
	start := b.headroom()
	if start < n {
		b.grow(n-start, 0)
		start = b.headroom()
	}
	newStart := start - n
	b.data = b.store[newStart : start+len(b.data)]
	for i := 0; i < n; i++ {
		b.data[i] = 0
	}
	return b.data[:n]
}

// AppendBytes returns a slice of n fresh bytes at the end of the packet.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	if n < 0 {
		panic("packet: negative append")
	}
	start := b.headroom()
	if len(b.store)-start-len(b.data) < n {
		b.grow(0, n-(len(b.store)-start-len(b.data)))
		start = b.headroom()
	}
	old := len(b.data)
	b.data = b.store[start : start+old+n]
	tail := b.data[old:]
	for i := range tail {
		tail[i] = 0
	}
	return tail
}

func (b *SerializeBuffer) headroom() int {
	if b.store == nil {
		return 0
	}
	// The data window always aliases store; its start offset is the
	// headroom available for prepending.
	return cap(b.store) - cap(b.data)
}

func (b *SerializeBuffer) grow(front, back int) {
	curFront := b.headroom()
	curBack := len(b.store) - curFront - len(b.data)
	newFront := curFront + front
	if newFront < 64 {
		newFront = 64
	}
	newBack := curBack + back
	if newBack < 64 {
		newBack = 64
	}
	newStore := make([]byte, newFront+len(b.data)+newBack)
	copy(newStore[newFront:], b.data)
	b.store = newStore
	b.data = newStore[newFront : newFront+len(b.data)]
}

// SerializeLayers clears the buffer and serializes the given layers so each
// earlier layer wraps the later ones (e.g. IPv4, TCP, payload).
func SerializeLayers(b *SerializeBuffer, opts SerializeOptions, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b, opts); err != nil {
			return err
		}
	}
	return nil
}

// Payload is a raw application payload usable as the innermost layer when
// serializing.
type Payload []byte

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	copy(b.PrependBytes(len(p)), p)
	return nil
}

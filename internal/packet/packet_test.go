package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"doscope/internal/netx"
)

var (
	srcAddr = netx.MustParseAddr("192.0.2.1")
	dstAddr = netx.MustParseAddr("198.51.100.2")
)

func buildTCPPacket(t *testing.T, payload []byte) []byte {
	t.Helper()
	ip := &IPv4{TTL: 64, Protocol: ProtocolTCP, Src: srcAddr, Dst: dstAddr}
	tcp := &TCP{SrcPort: 80, DstPort: 51234, Seq: 1000, Ack: 42, Flags: TCPSyn | TCPAck, Window: 8192}
	tcp.SetNetworkLayer(srcAddr, dstAddr)
	buf := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := SerializeLayers(buf, opts, ip, tcp, Payload(payload)); err != nil {
		t.Fatalf("SerializeLayers: %v", err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte("hello")
	data := buildTCPPacket(t, payload)

	var ip IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		t.Fatalf("IPv4 decode: %v", err)
	}
	if ip.Src != srcAddr || ip.Dst != dstAddr {
		t.Errorf("addresses = %v -> %v", ip.Src, ip.Dst)
	}
	if ip.Protocol != ProtocolTCP {
		t.Errorf("protocol = %v", ip.Protocol)
	}
	if int(ip.Length) != len(data) {
		t.Errorf("total length = %d, want %d", ip.Length, len(data))
	}
	if !ip.VerifyChecksum() {
		t.Error("IPv4 checksum does not verify")
	}
	var tcp TCP
	if err := tcp.DecodeFromBytes(ip.Payload()); err != nil {
		t.Fatalf("TCP decode: %v", err)
	}
	if tcp.SrcPort != 80 || tcp.DstPort != 51234 {
		t.Errorf("ports = %d -> %d", tcp.SrcPort, tcp.DstPort)
	}
	if tcp.Flags != TCPSyn|TCPAck {
		t.Errorf("flags = %v", tcp.Flags)
	}
	if !bytes.Equal(tcp.Payload(), payload) {
		t.Errorf("payload = %q", tcp.Payload())
	}
	if !tcp.VerifyChecksum(ip.Src, ip.Dst, ip.Payload()) {
		t.Error("TCP checksum does not verify")
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	data := buildTCPPacket(t, []byte("payload"))
	data[len(data)-1] ^= 0xff
	var ip IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	var tcp TCP
	if err := tcp.DecodeFromBytes(ip.Payload()); err != nil {
		t.Fatal(err)
	}
	if tcp.VerifyChecksum(ip.Src, ip.Dst, ip.Payload()) {
		t.Error("corrupted TCP payload passed checksum verification")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	ip := &IPv4{TTL: 255, Protocol: ProtocolUDP, Src: srcAddr, Dst: dstAddr}
	udp := &UDP{SrcPort: 123, DstPort: 40000}
	udp.SetNetworkLayer(srcAddr, dstAddr)
	buf := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := SerializeLayers(buf, opts, ip, udp, Payload(payload)); err != nil {
		t.Fatal(err)
	}
	var gotIP IPv4
	if err := gotIP.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var gotUDP UDP
	if err := gotUDP.DecodeFromBytes(gotIP.Payload()); err != nil {
		t.Fatal(err)
	}
	if gotUDP.SrcPort != 123 || gotUDP.DstPort != 40000 {
		t.Errorf("ports = %d -> %d", gotUDP.SrcPort, gotUDP.DstPort)
	}
	if int(gotUDP.Length) != 8+len(payload) {
		t.Errorf("UDP length = %d", gotUDP.Length)
	}
	if !bytes.Equal(gotUDP.Payload(), payload) {
		t.Errorf("payload = %x", gotUDP.Payload())
	}
	if !gotUDP.VerifyChecksum(gotIP.Src, gotIP.Dst, gotIP.Payload()) {
		t.Error("UDP checksum does not verify")
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	u := UDP{Checksum: 0}
	if !u.VerifyChecksum(srcAddr, dstAddr, []byte{0, 0, 0, 0, 0, 0, 0, 0}) {
		t.Error("zero UDP checksum must be accepted as 'not computed'")
	}
}

func TestICMPEchoReplyRoundTrip(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: ProtocolICMP, Src: srcAddr, Dst: dstAddr}
	icmp := &ICMPv4{Type: ICMPEchoReply, RestOfHeader: 0x00010002}
	buf := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := SerializeLayers(buf, opts, ip, icmp, Payload([]byte("ping-data"))); err != nil {
		t.Fatal(err)
	}
	var gotIP IPv4
	if err := gotIP.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var gotICMP ICMPv4
	if err := gotICMP.DecodeFromBytes(gotIP.Payload()); err != nil {
		t.Fatal(err)
	}
	if gotICMP.Type != ICMPEchoReply {
		t.Errorf("type = %d", gotICMP.Type)
	}
	if !gotICMP.VerifyChecksum(gotIP.Payload()) {
		t.Error("ICMP checksum does not verify")
	}
	if gotICMP.IsErrorMessage() {
		t.Error("echo reply misclassified as error message")
	}
	if _, err := gotICMP.QuotedPacket(); err == nil {
		t.Error("QuotedPacket on echo reply should fail")
	}
}

func TestICMPUnreachableQuotedPacket(t *testing.T) {
	// Build the quoted original datagram: victim -> some UDP service.
	victim := netx.MustParseAddr("203.0.113.5")
	quotedIP := &IPv4{TTL: 64, Protocol: ProtocolUDP, Src: victim, Dst: dstAddr}
	quotedUDP := &UDP{SrcPort: 4444, DstPort: 53}
	quotedUDP.SetNetworkLayer(victim, dstAddr)
	qbuf := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := SerializeLayers(qbuf, opts, quotedIP, quotedUDP); err != nil {
		t.Fatal(err)
	}

	icmp := &ICMPv4{Type: ICMPDestUnreachable, Code: 3}
	ip := &IPv4{TTL: 64, Protocol: ProtocolICMP, Src: dstAddr, Dst: victim}
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, opts, ip, icmp, Payload(qbuf.Bytes())); err != nil {
		t.Fatal(err)
	}

	var gotIP IPv4
	if err := gotIP.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var gotICMP ICMPv4
	if err := gotICMP.DecodeFromBytes(gotIP.Payload()); err != nil {
		t.Fatal(err)
	}
	if !gotICMP.IsErrorMessage() {
		t.Fatal("unreachable not classified as error message")
	}
	quoted, err := gotICMP.QuotedPacket()
	if err != nil {
		t.Fatalf("QuotedPacket: %v", err)
	}
	if quoted.Src != victim || quoted.Protocol != ProtocolUDP {
		t.Errorf("quoted src=%v proto=%v", quoted.Src, quoted.Protocol)
	}
	var innerUDP UDP
	if err := innerUDP.DecodeFromBytes(quoted.Payload()); err != nil {
		t.Fatalf("inner UDP decode: %v", err)
	}
	if innerUDP.DstPort != 53 {
		t.Errorf("inner UDP dst port = %d", innerUDP.DstPort)
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var ip IPv4
	if err := ip.DecodeFromBytes(make([]byte, 19)); err != ErrTruncated {
		t.Errorf("short header: %v", err)
	}
	bad := make([]byte, 20)
	bad[0] = 0x65 // version 6
	if err := ip.DecodeFromBytes(bad); err == nil {
		t.Error("version 6 accepted")
	}
	bad[0] = 0x43 // version 4, IHL 3 (<5)
	if err := ip.DecodeFromBytes(bad); err == nil {
		t.Error("IHL 3 accepted")
	}
	bad[0] = 0x46 // IHL 6 => 24 bytes needed, only 20 present
	if err := ip.DecodeFromBytes(bad); err != ErrTruncated {
		t.Errorf("truncated options: %v", err)
	}
}

func TestTCPDecodeErrors(t *testing.T) {
	var tcp TCP
	if err := tcp.DecodeFromBytes(make([]byte, 19)); err != ErrTruncated {
		t.Errorf("short header: %v", err)
	}
	bad := make([]byte, 20)
	bad[12] = 0x40 // data offset 4 (<5)
	if err := tcp.DecodeFromBytes(bad); err == nil {
		t.Error("data offset 4 accepted")
	}
	bad[12] = 0x60 // data offset 6 => 24 bytes needed
	if err := tcp.DecodeFromBytes(bad); err != ErrTruncated {
		t.Errorf("truncated options: %v", err)
	}
}

func TestDecodersNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		var ip IPv4
		var tcp TCP
		var udp UDP
		var icmp ICMPv4
		_ = ip.DecodeFromBytes(data)
		_ = tcp.DecodeFromBytes(data)
		_ = udp.DecodeFromBytes(data)
		_ = icmp.DecodeFromBytes(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4HeaderRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, id uint16, ttl uint8, proto uint8, payload []byte) bool {
		ip := &IPv4{
			TTL: ttl, Protocol: IPProtocol(proto), ID: id,
			Src: netx.Addr(src), Dst: netx.Addr(dst),
		}
		buf := NewSerializeBuffer()
		opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		if err := SerializeLayers(buf, opts, ip, Payload(payload)); err != nil {
			return false
		}
		var got IPv4
		if err := got.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return got.Src == netx.Addr(src) && got.Dst == netx.Addr(dst) &&
			got.ID == id && got.TTL == ttl && got.Protocol == IPProtocol(proto) &&
			got.VerifyChecksum() && bytes.Equal(got.Payload(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style vector: checksum of an even-length buffer,
	// verified by the complement-sums-to-zero property.
	data := []byte{0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7}
	sum := Checksum(data, 0)
	if sum != 0xb861 {
		t.Errorf("Checksum = %#04x, want 0xb861", sum)
	}
	// Writing the checksum back must make the region sum to zero.
	data[10] = byte(sum >> 8)
	data[11] = byte(sum)
	if got := Checksum(data, 0); got != 0 {
		t.Errorf("checksum over checksummed data = %#04x, want 0", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0x01, 0x02, 0x03}
	got := Checksum(data, 0)
	// Manual: 0x0102 + 0x0300 = 0x0402; ^0x0402 = 0xfbfd.
	if got != 0xfbfd {
		t.Errorf("odd-length checksum = %#04x, want 0xfbfd", got)
	}
}

func TestSerializeBufferPrependAppend(t *testing.T) {
	var b SerializeBuffer
	copy(b.AppendBytes(3), []byte("def"))
	copy(b.PrependBytes(3), []byte("abc"))
	copy(b.AppendBytes(3), []byte("ghi"))
	if string(b.Bytes()) != "abcdefghi" {
		t.Fatalf("Bytes = %q", b.Bytes())
	}
	b.Clear()
	if len(b.Bytes()) != 0 {
		t.Fatalf("after Clear len = %d", len(b.Bytes()))
	}
	copy(b.PrependBytes(2), []byte("zz"))
	if string(b.Bytes()) != "zz" {
		t.Fatalf("after Clear+Prepend = %q", b.Bytes())
	}
}

func TestSerializeBufferLargePrepend(t *testing.T) {
	var b SerializeBuffer
	big := b.PrependBytes(10000)
	for i := range big {
		big[i] = byte(i)
	}
	if len(b.Bytes()) != 10000 {
		t.Fatalf("len = %d", len(b.Bytes()))
	}
	if b.Bytes()[9999] != byte(9999%256) {
		t.Fatal("data corrupted after grow")
	}
}

func TestTCPFlagsString(t *testing.T) {
	if got := (TCPSyn | TCPAck).String(); got != "SYN|ACK" {
		t.Errorf("String = %q", got)
	}
	if got := TCPFlags(0).String(); got != "none" {
		t.Errorf("String = %q", got)
	}
}

func TestIPProtocolString(t *testing.T) {
	if ProtocolTCP.String() != "TCP" || ProtocolUDP.String() != "UDP" || ProtocolICMP.String() != "ICMP" {
		t.Error("protocol names wrong")
	}
	if IPProtocol(99).String() != "proto-99" {
		t.Errorf("unknown proto = %q", IPProtocol(99).String())
	}
}

func BenchmarkIPv4TCPDecode(b *testing.B) {
	data := buildTCPPacketBench()
	var ip IPv4
	var tcp TCP
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ip.DecodeFromBytes(data); err != nil {
			b.Fatal(err)
		}
		if err := tcp.DecodeFromBytes(ip.Payload()); err != nil {
			b.Fatal(err)
		}
	}
}

func buildTCPPacketBench() []byte {
	ip := &IPv4{TTL: 64, Protocol: ProtocolTCP, Src: srcAddr, Dst: dstAddr}
	tcp := &TCP{SrcPort: 80, DstPort: 51234, Flags: TCPSyn | TCPAck}
	tcp.SetNetworkLayer(srcAddr, dstAddr)
	buf := NewSerializeBuffer()
	_ = SerializeLayers(buf, SerializeOptions{FixLengths: true, ComputeChecksums: true}, ip, tcp, Payload([]byte("x")))
	return append([]byte(nil), buf.Bytes()...)
}

func BenchmarkIPv4TCPSerialize(b *testing.B) {
	ip := &IPv4{TTL: 64, Protocol: ProtocolTCP, Src: srcAddr, Dst: dstAddr}
	tcp := &TCP{SrcPort: 80, DstPort: 51234, Flags: TCPSyn | TCPAck}
	tcp.SetNetworkLayer(srcAddr, dstAddr)
	buf := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := SerializeLayers(buf, opts, ip, tcp); err != nil {
			b.Fatal(err)
		}
	}
}

package packet

import (
	"encoding/binary"
	"fmt"

	"doscope/internal/netx"
)

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16

	payload              []byte
	pseudoSrc, pseudoDst netx.Addr
	havePseudo           bool
}

// DecodeFromBytes parses a UDP header from the start of data.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := int(u.Length)
	if end < 8 || end > len(data) {
		end = len(data)
	}
	u.payload = data[8:end]
	return nil
}

// Payload returns the UDP datagram payload.
func (u *UDP) Payload() []byte { return u.payload }

// SetNetworkLayer records the addresses used for the pseudo-header
// checksum; call it before SerializeTo with ComputeChecksums.
func (u *UDP) SetNetworkLayer(src, dst netx.Addr) {
	u.pseudoSrc, u.pseudoDst = src, dst
	u.havePseudo = true
}

// VerifyChecksum checks the transport checksum against the pseudo-header.
// datagram must be the full UDP header+payload. A zero checksum means
// "not computed" in UDP over IPv4 and is accepted.
func (u *UDP) VerifyChecksum(src, dst netx.Addr, datagram []byte) bool {
	if u.Checksum == 0 {
		return true
	}
	sum := PseudoHeaderSum(src, dst, ProtocolUDP, len(datagram))
	return Checksum(datagram, sum) == 0
}

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	dgramLen := 8 + len(b.Bytes())
	bytes := b.PrependBytes(8)
	if opts.FixLengths {
		u.Length = uint16(dgramLen)
	}
	binary.BigEndian.PutUint16(bytes[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(bytes[2:4], u.DstPort)
	binary.BigEndian.PutUint16(bytes[4:6], u.Length)
	if opts.ComputeChecksums {
		if !u.havePseudo {
			return fmt.Errorf("packet: UDP ComputeChecksums without SetNetworkLayer")
		}
		binary.BigEndian.PutUint16(bytes[6:8], 0)
		sum := PseudoHeaderSum(u.pseudoSrc, u.pseudoDst, ProtocolUDP, dgramLen)
		u.Checksum = Checksum(b.Bytes(), sum)
		if u.Checksum == 0 {
			u.Checksum = 0xffff // RFC 768: transmitted as all ones
		}
	}
	binary.BigEndian.PutUint16(bytes[6:8], u.Checksum)
	return nil
}

package packet

import (
	"encoding/binary"
	"fmt"

	"doscope/internal/netx"
)

// IPv4 flag bits (in the 3-bit flags field).
const (
	IPv4EvilBit       uint8 = 1 << 2 // reserved, RFC 3514 has opinions
	IPv4DontFragment  uint8 = 1 << 1
	IPv4MoreFragments uint8 = 1 << 0
)

// IPv4 is an IPv4 header. Decoding is allocation free except when the
// header carries options.
type IPv4 struct {
	Version    uint8
	IHL        uint8 // header length in 32-bit words
	TOS        uint8
	Length     uint16 // total length, header + payload
	ID         uint16
	Flags      uint8
	FragOffset uint16 // in 8-byte units
	TTL        uint8
	Protocol   IPProtocol
	Checksum   uint16
	Src, Dst   netx.Addr
	Options    []byte

	payload []byte
}

// DecodeFromBytes parses an IPv4 header from the start of data. The payload
// slice references data without copying; it is truncated to the header's
// total length when data carries trailing link-layer padding.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrTruncated
	}
	ip.Version = data[0] >> 4
	ip.IHL = data[0] & 0x0f
	if ip.Version != 4 {
		return fmt.Errorf("%w: IP version %d", ErrMalformed, ip.Version)
	}
	hdrLen := int(ip.IHL) * 4
	if hdrLen < 20 {
		return fmt.Errorf("%w: IHL %d", ErrMalformed, ip.IHL)
	}
	if len(data) < hdrLen {
		return ErrTruncated
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src, _ = netx.AddrFromSlice(data[12:16])
	ip.Dst, _ = netx.AddrFromSlice(data[16:20])
	if hdrLen > 20 {
		ip.Options = data[20:hdrLen]
	} else {
		ip.Options = nil
	}
	end := int(ip.Length)
	if end < hdrLen || end > len(data) {
		// Tolerate inconsistent total length (common in truncated
		// captures): deliver whatever bytes are present.
		end = len(data)
	}
	ip.payload = data[hdrLen:end]
	return nil
}

// Payload returns the bytes following the IPv4 header.
func (ip *IPv4) Payload() []byte { return ip.payload }

// HeaderLength returns the header length in bytes implied by IHL.
func (ip *IPv4) HeaderLength() int { return int(ip.IHL) * 4 }

// VerifyChecksum reports whether the stored header checksum is consistent
// with the decoded fields.
func (ip *IPv4) VerifyChecksum() bool {
	hdr := make([]byte, 20+len(ip.Options))
	ip.marshalHeader(hdr, ip.Checksum)
	return Checksum(hdr, 0) == 0
}

// SerializeTo implements SerializableLayer. With opts.FixLengths the total
// length is set to header+payload; with opts.ComputeChecksums the header
// checksum is recomputed. IHL is always derived from the options length.
func (ip *IPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if len(ip.Options)%4 != 0 {
		return fmt.Errorf("%w: IPv4 options length %d not a multiple of 4", ErrMalformed, len(ip.Options))
	}
	hdrLen := 20 + len(ip.Options)
	payloadLen := len(b.Bytes())
	bytes := b.PrependBytes(hdrLen)
	ip.IHL = uint8(hdrLen / 4)
	if ip.Version == 0 {
		ip.Version = 4
	}
	if opts.FixLengths {
		ip.Length = uint16(hdrLen + payloadLen)
	}
	ip.marshalHeader(bytes, 0)
	if opts.ComputeChecksums {
		ip.Checksum = Checksum(bytes[:hdrLen], 0)
	}
	binary.BigEndian.PutUint16(bytes[10:12], ip.Checksum)
	return nil
}

func (ip *IPv4) marshalHeader(dst []byte, checksum uint16) {
	dst[0] = ip.Version<<4 | ip.IHL
	dst[1] = ip.TOS
	binary.BigEndian.PutUint16(dst[2:4], ip.Length)
	binary.BigEndian.PutUint16(dst[4:6], ip.ID)
	binary.BigEndian.PutUint16(dst[6:8], uint16(ip.Flags)<<13|ip.FragOffset)
	dst[8] = ip.TTL
	dst[9] = uint8(ip.Protocol)
	binary.BigEndian.PutUint16(dst[10:12], checksum)
	binary.BigEndian.PutUint32(dst[12:16], uint32(ip.Src))
	binary.BigEndian.PutUint32(dst[16:20], uint32(ip.Dst))
	copy(dst[20:], ip.Options)
}

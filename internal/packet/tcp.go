package packet

import (
	"encoding/binary"
	"fmt"
	"strings"

	"doscope/internal/netx"
)

// TCPFlags is the TCP flag byte (plus NS, unused here).
type TCPFlags uint16

// TCP flag bits.
const (
	TCPFin TCPFlags = 1 << 0
	TCPSyn TCPFlags = 1 << 1
	TCPRst TCPFlags = 1 << 2
	TCPPsh TCPFlags = 1 << 3
	TCPAck TCPFlags = 1 << 4
	TCPUrg TCPFlags = 1 << 5
	TCPEce TCPFlags = 1 << 6
	TCPCwr TCPFlags = 1 << 7
)

// String lists the set flags, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{TCPFin, "FIN"}, {TCPSyn, "SYN"}, {TCPRst, "RST"}, {TCPPsh, "PSH"},
		{TCPAck, "ACK"}, {TCPUrg, "URG"}, {TCPEce, "ECE"}, {TCPCwr, "CWR"},
	}
	var parts []string
	for _, n := range names {
		if f&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// TCP is a TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte

	payload              []byte
	pseudoSrc, pseudoDst netx.Addr
	havePseudo           bool
}

// DecodeFromBytes parses a TCP header from the start of data.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hdrLen := int(t.DataOffset) * 4
	if hdrLen < 20 {
		return fmt.Errorf("%w: TCP data offset %d", ErrMalformed, t.DataOffset)
	}
	if len(data) < hdrLen {
		return ErrTruncated
	}
	t.Flags = TCPFlags(data[13])
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	if hdrLen > 20 {
		t.Options = data[20:hdrLen]
	} else {
		t.Options = nil
	}
	t.payload = data[hdrLen:]
	return nil
}

// Payload returns the TCP segment payload.
func (t *TCP) Payload() []byte { return t.payload }

// SetNetworkLayer records the addresses used for the pseudo-header
// checksum; call it before SerializeTo with ComputeChecksums.
func (t *TCP) SetNetworkLayer(src, dst netx.Addr) {
	t.pseudoSrc, t.pseudoDst = src, dst
	t.havePseudo = true
}

// VerifyChecksum checks the transport checksum against the pseudo-header
// for the given addresses. segment must be the full TCP header+payload as
// received.
func (t *TCP) VerifyChecksum(src, dst netx.Addr, segment []byte) bool {
	sum := PseudoHeaderSum(src, dst, ProtocolTCP, len(segment))
	return Checksum(segment, sum) == 0
}

// SerializeTo implements SerializableLayer. ComputeChecksums requires a
// prior SetNetworkLayer call.
func (t *TCP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if len(t.Options)%4 != 0 {
		return fmt.Errorf("%w: TCP options length %d not a multiple of 4", ErrMalformed, len(t.Options))
	}
	hdrLen := 20 + len(t.Options)
	segLen := hdrLen + len(b.Bytes())
	bytes := b.PrependBytes(hdrLen)
	t.DataOffset = uint8(hdrLen / 4)
	binary.BigEndian.PutUint16(bytes[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(bytes[2:4], t.DstPort)
	binary.BigEndian.PutUint32(bytes[4:8], t.Seq)
	binary.BigEndian.PutUint32(bytes[8:12], t.Ack)
	bytes[12] = t.DataOffset << 4
	bytes[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(bytes[14:16], t.Window)
	binary.BigEndian.PutUint16(bytes[18:20], t.Urgent)
	copy(bytes[20:], t.Options)
	if opts.ComputeChecksums {
		if !t.havePseudo {
			return fmt.Errorf("packet: TCP ComputeChecksums without SetNetworkLayer")
		}
		binary.BigEndian.PutUint16(bytes[16:18], 0)
		sum := PseudoHeaderSum(t.pseudoSrc, t.pseudoDst, ProtocolTCP, segLen)
		t.Checksum = Checksum(b.Bytes(), sum)
	}
	binary.BigEndian.PutUint16(bytes[16:18], t.Checksum)
	return nil
}

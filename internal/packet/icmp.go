package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMPv4 message types relevant to backscatter classification.
const (
	ICMPEchoReply          uint8 = 0
	ICMPDestUnreachable    uint8 = 3
	ICMPSourceQuench       uint8 = 4
	ICMPRedirect           uint8 = 5
	ICMPEchoRequest        uint8 = 8
	ICMPTimeExceeded       uint8 = 11
	ICMPParameterProblem   uint8 = 12
	ICMPTimestampRequest   uint8 = 13
	ICMPTimestampReply     uint8 = 14
	ICMPInfoRequest        uint8 = 15
	ICMPInfoReply          uint8 = 16
	ICMPAddressMaskRequest uint8 = 17
	ICMPAddressMaskReply   uint8 = 18
)

// ICMPTypeName returns a readable name for an ICMPv4 type.
func ICMPTypeName(t uint8) string {
	switch t {
	case ICMPEchoReply:
		return "echo-reply"
	case ICMPDestUnreachable:
		return "dest-unreachable"
	case ICMPSourceQuench:
		return "source-quench"
	case ICMPRedirect:
		return "redirect"
	case ICMPEchoRequest:
		return "echo-request"
	case ICMPTimeExceeded:
		return "time-exceeded"
	case ICMPParameterProblem:
		return "parameter-problem"
	case ICMPTimestampRequest:
		return "timestamp-request"
	case ICMPTimestampReply:
		return "timestamp-reply"
	case ICMPInfoRequest:
		return "info-request"
	case ICMPInfoReply:
		return "info-reply"
	case ICMPAddressMaskRequest:
		return "address-mask-request"
	case ICMPAddressMaskReply:
		return "address-mask-reply"
	}
	return fmt.Sprintf("icmp-type-%d", t)
}

// ICMPv4 is an ICMPv4 message header. The 4 bytes after the checksum are
// kept raw in RestOfHeader (identifier/sequence for echo, unused for
// unreachable, gateway for redirect).
type ICMPv4 struct {
	Type         uint8
	Code         uint8
	Checksum     uint16
	RestOfHeader uint32

	payload []byte
}

// DecodeFromBytes parses an ICMPv4 message from the start of data.
func (ic *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrTruncated
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.RestOfHeader = binary.BigEndian.Uint32(data[4:8])
	ic.payload = data[8:]
	return nil
}

// Payload returns the bytes after the 8-byte ICMP header. For error
// messages (unreachable, time exceeded, ...) this is the quoted original
// IPv4 header plus at least 8 payload bytes.
func (ic *ICMPv4) Payload() []byte { return ic.payload }

// IsErrorMessage reports whether the message type quotes an offending
// packet in its payload.
func (ic *ICMPv4) IsErrorMessage() bool {
	switch ic.Type {
	case ICMPDestUnreachable, ICMPSourceQuench, ICMPRedirect, ICMPTimeExceeded, ICMPParameterProblem:
		return true
	}
	return false
}

// QuotedPacket decodes the quoted original IPv4 header carried by ICMP
// error messages. It reports an error for non-error message types or when
// the quote is too short.
func (ic *ICMPv4) QuotedPacket() (*IPv4, error) {
	if !ic.IsErrorMessage() {
		return nil, fmt.Errorf("%w: ICMP type %d carries no quoted packet", ErrMalformed, ic.Type)
	}
	var quoted IPv4
	if err := quoted.DecodeFromBytes(ic.payload); err != nil {
		return nil, err
	}
	return &quoted, nil
}

// VerifyChecksum checks the message checksum. message must be the full
// ICMP header+payload as received.
func (ic *ICMPv4) VerifyChecksum(message []byte) bool {
	return Checksum(message, 0) == 0
}

// SerializeTo implements SerializableLayer.
func (ic *ICMPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	bytes := b.PrependBytes(8)
	bytes[0] = ic.Type
	bytes[1] = ic.Code
	binary.BigEndian.PutUint32(bytes[4:8], ic.RestOfHeader)
	if opts.ComputeChecksums {
		binary.BigEndian.PutUint16(bytes[2:4], 0)
		ic.Checksum = Checksum(b.Bytes(), 0)
	}
	binary.BigEndian.PutUint16(bytes[2:4], ic.Checksum)
	return nil
}

package packet

import "doscope/internal/netx"

// Checksum computes the Internet checksum (RFC 1071) over data with the
// given initial partial sum. The initial value allows folding in a
// pseudo-header computed with PseudoHeaderSum.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// PseudoHeaderSum returns the partial checksum of the IPv4 pseudo-header
// used by TCP and UDP: source, destination, zero/protocol, and the
// transport-layer length.
func PseudoHeaderSum(src, dst netx.Addr, proto IPProtocol, length int) uint32 {
	var sum uint32
	sum += uint32(src >> 16)
	sum += uint32(src & 0xffff)
	sum += uint32(dst >> 16)
	sum += uint32(dst & 0xffff)
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

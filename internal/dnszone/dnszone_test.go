package dnszone

import (
	"testing"

	"doscope/internal/dnswire"
	"doscope/internal/netx"
)

func buildZone(t *testing.T) *Zone {
	t.Helper()
	z := New("com")
	adds := []dnswire.RR{
		{Name: "example.com", Type: dnswire.TypeNS, Target: "ns1.dns-host.com", TTL: 86400},
		{Name: "www.example.com", Type: dnswire.TypeA, Addr: netx.MustParseAddr("203.0.113.10"), TTL: 300},
		{Name: "example.com", Type: dnswire.TypeMX, Pref: 10, Target: "mail.example.com", TTL: 3600},
		{Name: "cdn.example.com", Type: dnswire.TypeCNAME, Target: "edge.provider.com", TTL: 300},
		{Name: "edge.provider.com", Type: dnswire.TypeA, Addr: netx.MustParseAddr("198.51.100.1"), TTL: 300},
		{Name: "alias.example.com", Type: dnswire.TypeCNAME, Target: "www.example.com", TTL: 300},
		{Name: "external.example.com", Type: dnswire.TypeCNAME, Target: "host.example.net", TTL: 300},
	}
	for _, rr := range adds {
		if err := z.Add(rr); err != nil {
			t.Fatal(err)
		}
	}
	return z
}

func TestLookupA(t *testing.T) {
	z := buildZone(t)
	ans, rcode := z.Lookup("www.example.com", dnswire.TypeA)
	if rcode != dnswire.RCodeNoError || len(ans) != 1 || ans[0].Addr != netx.MustParseAddr("203.0.113.10") {
		t.Fatalf("ans=%v rcode=%v", ans, rcode)
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	z := buildZone(t)
	ans, rcode := z.Lookup("WWW.EXAMPLE.COM.", dnswire.TypeA)
	if rcode != dnswire.RCodeNoError || len(ans) != 1 {
		t.Fatalf("case-insensitive lookup failed: %v %v", ans, rcode)
	}
}

func TestLookupCNAMEChain(t *testing.T) {
	z := buildZone(t)
	ans, rcode := z.Lookup("alias.example.com", dnswire.TypeA)
	if rcode != dnswire.RCodeNoError || len(ans) != 2 {
		t.Fatalf("chain ans=%v rcode=%v", ans, rcode)
	}
	if ans[0].Type != dnswire.TypeCNAME || ans[1].Type != dnswire.TypeA {
		t.Errorf("chain order wrong: %v", ans)
	}
}

func TestLookupCNAMELeavingZone(t *testing.T) {
	z := buildZone(t)
	ans, rcode := z.Lookup("external.example.com", dnswire.TypeA)
	if rcode != dnswire.RCodeNoError || len(ans) != 1 || ans[0].Type != dnswire.TypeCNAME {
		t.Fatalf("out-of-zone chain: ans=%v rcode=%v", ans, rcode)
	}
	if ans[0].Target != "host.example.net" {
		t.Errorf("target = %q", ans[0].Target)
	}
}

func TestLookupNXDomainVsNoData(t *testing.T) {
	z := buildZone(t)
	if _, rcode := z.Lookup("missing.example.com", dnswire.TypeA); rcode != dnswire.RCodeNXDomain {
		t.Errorf("missing name rcode = %v, want NXDOMAIN", rcode)
	}
	// www.example.com exists but has no MX: NODATA (NoError, no answers).
	ans, rcode := z.Lookup("www.example.com", dnswire.TypeMX)
	if rcode != dnswire.RCodeNoError || len(ans) != 0 {
		t.Errorf("NODATA: ans=%v rcode=%v", ans, rcode)
	}
}

func TestLookupANY(t *testing.T) {
	z := buildZone(t)
	ans, rcode := z.Lookup("example.com", dnswire.TypeANY)
	if rcode != dnswire.RCodeNoError || len(ans) != 2 {
		t.Fatalf("ANY: ans=%v rcode=%v", ans, rcode)
	}
}

func TestCNAMELoopBounded(t *testing.T) {
	z := New("com")
	_ = z.Add(dnswire.RR{Name: "a.loop.com", Type: dnswire.TypeCNAME, Target: "b.loop.com"})
	_ = z.Add(dnswire.RR{Name: "b.loop.com", Type: dnswire.TypeCNAME, Target: "a.loop.com"})
	ans, rcode := z.Lookup("a.loop.com", dnswire.TypeA)
	if rcode != dnswire.RCodeNoError {
		t.Errorf("rcode = %v", rcode)
	}
	if len(ans) > maxCNAMEChain+1 {
		t.Errorf("loop not bounded: %d answers", len(ans))
	}
}

func TestAddOutsideZoneRejected(t *testing.T) {
	z := New("com")
	if err := z.Add(dnswire.RR{Name: "host.example.net", Type: dnswire.TypeA}); err == nil {
		t.Error("out-of-zone record accepted")
	}
}

func TestRemoveSet(t *testing.T) {
	z := buildZone(t)
	before := z.NumNames()
	z.RemoveSet("www.example.com", dnswire.TypeA)
	if _, rcode := z.Lookup("www.example.com", dnswire.TypeA); rcode != dnswire.RCodeNXDomain {
		t.Error("record still resolves after RemoveSet")
	}
	if z.NumNames() != before-1 {
		t.Errorf("NumNames = %d, want %d", z.NumNames(), before-1)
	}
	// Removing one of two rrsets at a name keeps the name alive.
	z2 := buildZone(t)
	z2.RemoveSet("example.com", dnswire.TypeMX)
	if _, rcode := z2.Lookup("example.com", dnswire.TypeNS); rcode != dnswire.RCodeNoError {
		t.Error("name vanished though NS set remains")
	}
}

func TestCountsAndNames(t *testing.T) {
	z := buildZone(t)
	if z.NumRecords() != 7 {
		t.Errorf("NumRecords = %d", z.NumRecords())
	}
	names := z.Names()
	if len(names) != z.NumNames() {
		t.Errorf("Names() length %d != NumNames %d", len(names), z.NumNames())
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() not sorted")
		}
	}
}

// Package dnszone models authoritative DNS zone content for the TLDs the
// measurement platform walks (.com, .net, .org in the paper). A Zone is a
// point-in-time view; the webmodel package materializes a Zone for any
// given day of the measurement window.
package dnszone

import (
	"fmt"
	"sort"
	"strings"

	"doscope/internal/dnswire"
)

// Zone holds the records of one origin (e.g. "com").
type Zone struct {
	Origin string
	soa    dnswire.RR
	rrs    map[rrKey][]dnswire.RR
	names  map[string]int // name -> number of rrsets (for NXDOMAIN vs NODATA)
}

type rrKey struct {
	name string
	typ  dnswire.Type
}

// New creates a zone with a synthetic SOA.
func New(origin string) *Zone {
	origin = dnswire.NormalizeName(origin)
	z := &Zone{
		Origin: origin,
		rrs:    make(map[rrKey][]dnswire.RR),
		names:  make(map[string]int),
	}
	z.soa = dnswire.RR{
		Name: origin, Type: dnswire.TypeSOA, Class: dnswire.ClassIN, TTL: 900,
		SOA: &dnswire.SOAData{
			MName: "a.gtld-servers." + origin, RName: "hostmaster." + origin,
			Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
		},
	}
	return z
}

// SOA returns the zone's SOA record.
func (z *Zone) SOA() dnswire.RR { return z.soa }

// Contains reports whether a name belongs to this zone.
func (z *Zone) Contains(name string) bool {
	name = dnswire.NormalizeName(name)
	return name == z.Origin || strings.HasSuffix(name, "."+z.Origin)
}

// Add inserts a record; the name must belong to the zone.
func (z *Zone) Add(rr dnswire.RR) error {
	rr.Name = dnswire.NormalizeName(rr.Name)
	rr.Target = dnswire.NormalizeName(rr.Target)
	if !z.Contains(rr.Name) {
		return fmt.Errorf("dnszone: %q outside zone %q", rr.Name, z.Origin)
	}
	if rr.Class == 0 {
		rr.Class = dnswire.ClassIN
	}
	key := rrKey{rr.Name, rr.Type}
	if len(z.rrs[key]) == 0 {
		z.names[rr.Name]++
	}
	z.rrs[key] = append(z.rrs[key], rr)
	return nil
}

// RemoveSet deletes all records of one type at a name.
func (z *Zone) RemoveSet(name string, t dnswire.Type) {
	name = dnswire.NormalizeName(name)
	key := rrKey{name, t}
	if len(z.rrs[key]) > 0 {
		delete(z.rrs, key)
		z.names[name]--
		if z.names[name] <= 0 {
			delete(z.names, name)
		}
	}
}

// NumNames returns the number of names with at least one record.
func (z *Zone) NumNames() int { return len(z.names) }

// NumRecords returns the total record count.
func (z *Zone) NumRecords() int {
	n := 0
	for _, set := range z.rrs {
		n += len(set)
	}
	return n
}

// Names returns all names in the zone, sorted (for deterministic walks).
func (z *Zone) Names() []string {
	out := make([]string, 0, len(z.names))
	for n := range z.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// maxCNAMEChain bounds in-zone CNAME chasing.
const maxCNAMEChain = 8

// Lookup resolves a query against the zone, chasing CNAME chains that stay
// in-zone, and returns the answer section plus the response code.
func (z *Zone) Lookup(name string, t dnswire.Type) ([]dnswire.RR, dnswire.RCode) {
	name = dnswire.NormalizeName(name)
	var answers []dnswire.RR
	cur := name
	for hop := 0; hop < maxCNAMEChain; hop++ {
		if t == dnswire.TypeANY {
			found := false
			for _, typ := range []dnswire.Type{dnswire.TypeA, dnswire.TypeNS, dnswire.TypeCNAME, dnswire.TypeMX, dnswire.TypeTXT} {
				if set := z.rrs[rrKey{cur, typ}]; len(set) > 0 {
					answers = append(answers, set...)
					found = true
				}
			}
			if found {
				return answers, dnswire.RCodeNoError
			}
		} else if set := z.rrs[rrKey{cur, t}]; len(set) > 0 {
			return append(answers, set...), dnswire.RCodeNoError
		}
		// No direct match: follow a CNAME if present.
		cnames := z.rrs[rrKey{cur, dnswire.TypeCNAME}]
		if len(cnames) == 0 {
			break
		}
		answers = append(answers, cnames[0])
		next := cnames[0].Target
		if !z.Contains(next) {
			// Chain leaves the zone: return what we have; the resolver
			// follows up elsewhere.
			return answers, dnswire.RCodeNoError
		}
		cur = next
	}
	if z.names[cur] > 0 || len(answers) > 0 {
		return answers, dnswire.RCodeNoError // NODATA
	}
	return nil, dnswire.RCodeNXDomain
}

// Package netx provides compact IPv4 address and prefix primitives used
// throughout doscope. Addresses are represented as big-endian uint32 values
// so that millions of attack targets can be stored, masked, and grouped
// without allocation. Conversions to and from the standard library's
// net/netip types are provided at the edges.
package netx

import (
	"fmt"
	"math"
	"net/netip"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host integer form (the first octet is the most
// significant byte). The zero value is 0.0.0.0.
type Addr uint32

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// AddrFromSlice builds an Addr from a 4-byte slice. It reports false when
// the slice does not hold exactly four bytes.
func AddrFromSlice(b []byte) (Addr, bool) {
	if len(b) != 4 {
		return 0, false
	}
	return AddrFrom4(b[0], b[1], b[2], b[3]), true
}

// AddrFromNetip converts a netip.Addr. It reports false for non-IPv4
// addresses (including IPv4-mapped IPv6, which callers should Unmap first).
func AddrFromNetip(a netip.Addr) (Addr, bool) {
	if !a.Is4() {
		return 0, false
	}
	b := a.As4()
	return AddrFrom4(b[0], b[1], b[2], b[3]), true
}

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	var out Addr
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netx: invalid IPv4 address %q", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		n, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netx: invalid IPv4 address %q", s)
		}
		out = out<<8 | Addr(n)
	}
	return out, nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four octets of the address.
func (a Addr) Octets() (o0, o1, o2, o3 byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// AppendTo appends the dotted-quad form to dst and returns the extended
// slice. It performs no heap allocation when dst has capacity.
func (a Addr) AppendTo(dst []byte) []byte {
	o0, o1, o2, o3 := a.Octets()
	dst = strconv.AppendUint(dst, uint64(o0), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(o1), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(o2), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(o3), 10)
	return dst
}

// String returns dotted-quad notation.
func (a Addr) String() string {
	return string(a.AppendTo(make([]byte, 0, 15)))
}

// Netip converts to a netip.Addr.
func (a Addr) Netip() netip.Addr {
	o0, o1, o2, o3 := a.Octets()
	return netip.AddrFrom4([4]byte{o0, o1, o2, o3})
}

// Slash24 returns the address masked to its /24 network block.
func (a Addr) Slash24() Addr { return a &^ 0xff }

// Slash16 returns the address masked to its /16 network block.
func (a Addr) Slash16() Addr { return a &^ 0xffff }

// Slash8 returns the address masked to its /8 network block.
func (a Addr) Slash8() Addr { return a &^ 0xffffff }

// Mask returns the address masked to a prefix of the given length.
// Lengths outside [0,32] are clamped.
func (a Addr) Mask(length int) Addr {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return a
	}
	return a &^ (1<<(32-uint(length)) - 1)
}

// Prefix is an IPv4 CIDR prefix. The address is stored masked.
type Prefix struct {
	addr Addr
	bits int8
}

// PrefixFrom builds a Prefix, masking the address to the prefix length.
// Lengths outside [0,32] are clamped.
func PrefixFrom(a Addr, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	return Prefix{addr: a.Mask(bits), bits: int8(bits)}
}

// ParsePrefix parses CIDR notation such as "192.0.2.0/24".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netx: invalid prefix %q: missing '/'", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netx: invalid prefix length in %q", s)
	}
	return PrefixFrom(a, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the (masked) network address.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether the prefix covers the address.
func (p Prefix) Contains(a Addr) bool { return a.Mask(int(p.bits)) == p.addr }

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - uint(p.bits)) }

// First returns the first address in the prefix.
func (p Prefix) First() Addr { return p.addr }

// Last returns the last address in the prefix.
func (p Prefix) Last() Addr {
	if p.bits >= 32 {
		return p.addr
	}
	return p.addr | Addr(uint32(math.MaxUint32)>>uint(p.bits))
}

// String returns CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

package netx

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestAddrFrom4(t *testing.T) {
	a := AddrFrom4(192, 0, 2, 1)
	if got := a.String(); got != "192.0.2.1" {
		t.Fatalf("String() = %q, want 192.0.2.1", got)
	}
	o0, o1, o2, o3 := a.Octets()
	if o0 != 192 || o1 != 0 || o2 != 2 || o3 != 1 {
		t.Fatalf("Octets() = %d.%d.%d.%d", o0, o1, o2, o3)
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.1.2.3", AddrFrom4(10, 1, 2, 3), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", c.in)
		}
	}
}

func TestAddrStringParseRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		a := Addr(u)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrNetipRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		a := Addr(u)
		na := a.Netip()
		back, ok := AddrFromNetip(na)
		return ok && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrFromNetipRejectsIPv6(t *testing.T) {
	if _, ok := AddrFromNetip(netip.MustParseAddr("2001:db8::1")); ok {
		t.Fatal("AddrFromNetip accepted an IPv6 address")
	}
}

func TestAddrFromSlice(t *testing.T) {
	if a, ok := AddrFromSlice([]byte{1, 2, 3, 4}); !ok || a != AddrFrom4(1, 2, 3, 4) {
		t.Fatalf("AddrFromSlice = %v, %v", a, ok)
	}
	if _, ok := AddrFromSlice([]byte{1, 2, 3}); ok {
		t.Fatal("AddrFromSlice accepted a 3-byte slice")
	}
}

func TestMasks(t *testing.T) {
	a := MustParseAddr("10.20.30.40")
	if got := a.Slash24(); got != MustParseAddr("10.20.30.0") {
		t.Errorf("Slash24 = %v", got)
	}
	if got := a.Slash16(); got != MustParseAddr("10.20.0.0") {
		t.Errorf("Slash16 = %v", got)
	}
	if got := a.Slash8(); got != MustParseAddr("10.0.0.0") {
		t.Errorf("Slash8 = %v", got)
	}
	if got := a.Mask(0); got != 0 {
		t.Errorf("Mask(0) = %v", got)
	}
	if got := a.Mask(32); got != a {
		t.Errorf("Mask(32) = %v", got)
	}
	if got := a.Mask(40); got != a {
		t.Errorf("Mask(40) = %v, want clamp to /32", got)
	}
	if got := a.Mask(-3); got != 0 {
		t.Errorf("Mask(-3) = %v, want clamp to /0", got)
	}
}

func TestMaskConsistentWithSlash(t *testing.T) {
	f := func(u uint32) bool {
		a := Addr(u)
		return a.Mask(24) == a.Slash24() && a.Mask(16) == a.Slash16() && a.Mask(8) == a.Slash8()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("192.0.2.77/24")
	if p.Addr() != MustParseAddr("192.0.2.0") {
		t.Errorf("prefix address not masked: %v", p.Addr())
	}
	if p.Bits() != 24 {
		t.Errorf("Bits = %d", p.Bits())
	}
	if p.String() != "192.0.2.0/24" {
		t.Errorf("String = %q", p.String())
	}
	for _, bad := range []string{"192.0.2.0", "192.0.2.0/33", "192.0.2.0/-1", "x/24", "192.0.2.0/a"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if !p.Contains(MustParseAddr("10.255.255.255")) {
		t.Error("prefix should contain last address")
	}
	if p.Contains(MustParseAddr("11.0.0.0")) {
		t.Error("prefix should not contain 11.0.0.0")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixFirstLastNum(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if p.First() != MustParseAddr("192.0.2.0") || p.Last() != MustParseAddr("192.0.2.255") {
		t.Errorf("First/Last = %v/%v", p.First(), p.Last())
	}
	if p.NumAddrs() != 256 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	host := MustParsePrefix("192.0.2.7/32")
	if host.First() != host.Last() || host.NumAddrs() != 1 {
		t.Errorf("host prefix First/Last/Num = %v/%v/%d", host.First(), host.Last(), host.NumAddrs())
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap in both directions")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixContainsConsistentWithRange(t *testing.T) {
	f := func(u uint32, bits uint8) bool {
		b := int(bits % 33)
		p := PrefixFrom(Addr(u), b)
		lo, hi := p.First(), p.Last()
		// An address inside [lo,hi] must be contained; the neighbours
		// outside must not (when they exist).
		if !p.Contains(lo) || !p.Contains(hi) {
			return false
		}
		if lo > 0 && p.Contains(lo-1) {
			return false
		}
		if hi < 0xffffffff && p.Contains(hi+1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendToNoGarbage(t *testing.T) {
	buf := make([]byte, 0, 32)
	buf = MustParseAddr("1.2.3.4").AppendTo(buf)
	if string(buf) != "1.2.3.4" {
		t.Fatalf("AppendTo = %q", buf)
	}
	buf = append(buf, ':')
	buf = MustParseAddr("5.6.7.8").AppendTo(buf)
	if string(buf) != "1.2.3.4:5.6.7.8" {
		t.Fatalf("AppendTo chained = %q", buf)
	}
}

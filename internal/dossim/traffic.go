package dossim

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"doscope/internal/amppot"
	"doscope/internal/attack"
	"doscope/internal/netx"
	"doscope/internal/packet"
	"doscope/internal/pcap"
	"doscope/internal/telescope"
)

// Packet-level fidelity caps: synthesized traffic bounds the per-event
// packet budget so laptop-scale runs stay tractable. Rates above the cap
// are faithfully *detected* but their measured intensity saturates at the
// cap; packet-level mode is therefore for validating the classification
// pipeline, not for reproducing intensity tails (the event-level path does
// that).
const (
	maxPeakPacketsPerMinute = 1200
	maxReflectionRequests   = 2000
	maxPacketLevelEvents    = 60000
)

type synthPacket struct {
	ts int64
	// raw is a telescope packet (IPv4 bytes); nil for reflection requests.
	raw []byte
	// reflection request fields.
	victim  netx.Addr
	vector  attack.Vector
	payload []byte
}

// runPacketLevel synthesizes raw sensor traffic for every planned attack
// and classifies it with the real telescope classifier and honeypot fleet.
func runPacketLevel(cfg Config, planned []PlannedAttack) (tel, hp *attack.Store, err error) {
	if len(planned) > maxPacketLevelEvents {
		return nil, nil, fmt.Errorf("dossim: %d planned events exceed the packet-level cap %d; lower Scale or disable PacketLevel", len(planned), maxPacketLevelEvents)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	var pkts []synthPacket
	for i := range planned {
		pa := &planned[i]
		if pa.Dataset == attack.SourceTelescope {
			pkts = synthesizeBackscatter(rng, cfg, pa, pkts)
		} else {
			pkts = synthesizeReflection(rng, pa, pkts)
		}
	}
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].ts < pkts[j].ts })

	classifier := telescope.New(telescope.DefaultConfig(cfg.Darknet))
	fleet := amppot.NewFleet(amppot.DefaultConfig())
	instance := 0
	for i := range pkts {
		p := &pkts[i]
		if p.raw != nil {
			classifier.ProcessPacket(p.ts, p.raw)
			continue
		}
		fleet.HandleRequest(instance, p.ts, p.victim, p.vector, p.payload)
		instance++
	}
	classifier.Flush()
	return classifier.Store(), fleet.FlushStore(), nil
}

// synthesizeBackscatter emits the victim's backscatter for one randomly
// spoofed attack: keepalive packets spanning the full duration (spaced
// well inside the 300 s flow timeout) plus a peak minute carrying the
// attack's maximum rate.
func synthesizeBackscatter(rng *rand.Rand, cfg Config, pa *PlannedAttack, pkts []synthPacket) []synthPacket {
	d := pa.Duration
	if d < 60 {
		d = 60
	}
	darknetSize := int64(cfg.Darknet.NumAddrs())
	dst := func() netx.Addr {
		return cfg.Darknet.First() + netx.Addr(rng.Int63n(darknetSize))
	}
	emit := func(ts int64) {
		raw := backscatterPacket(rng, pa, dst())
		pkts = append(pkts, synthPacket{ts: ts, raw: raw})
	}
	// Keepalives from start to end.
	nKeep := d/120 + 2
	for i := int64(0); i < nKeep; i++ {
		emit(pa.Start + i*d/(nKeep-1))
	}
	// Peak minute at one third of the attack.
	peak := int64(pa.Intensity * 60)
	if peak < 30 {
		peak = 30
	}
	if peak > maxPeakPacketsPerMinute {
		peak = maxPeakPacketsPerMinute
	}
	peakStart := pa.Start + d/3
	// Stay within a single wall-clock minute bucket so the classifier's
	// per-minute maximum equals the planned rate.
	peakStart -= peakStart % 60
	for i := int64(0); i < peak; i++ {
		emit(peakStart + i*59/peak)
	}
	return pkts
}

// backscatterPacket crafts the wire bytes of one backscatter packet.
func backscatterPacket(rng *rand.Rand, pa *PlannedAttack, dst netx.Addr) []byte {
	buf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	port := uint16(0)
	if len(pa.Ports) > 0 {
		port = pa.Ports[rng.Intn(len(pa.Ports))]
	}
	switch pa.Vector {
	case attack.VectorTCP:
		// SYN/ACK (or RST for a quarter of packets) from the victim's
		// attacked service port.
		flags := packet.TCPSyn | packet.TCPAck
		if rng.Intn(4) == 0 {
			flags = packet.TCPRst
		}
		ip := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolTCP, Src: pa.Target, Dst: dst}
		tcp := &packet.TCP{SrcPort: port, DstPort: uint16(1024 + rng.Intn(60000)), Flags: flags, Window: 14600}
		tcp.SetNetworkLayer(pa.Target, dst)
		if err := packet.SerializeLayers(buf, opts, ip, tcp); err != nil {
			panic(err)
		}
	case attack.VectorICMP:
		ip := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolICMP, Src: pa.Target, Dst: dst}
		icmp := &packet.ICMPv4{Type: packet.ICMPEchoReply, RestOfHeader: rng.Uint32()}
		if err := packet.SerializeLayers(buf, opts, ip, icmp, packet.Payload([]byte("doscope-ping"))); err != nil {
			panic(err)
		}
	default:
		// UDP (and other-protocol) floods surface as ICMP errors quoting
		// the offending packet; the victim is the quote's destination.
		quoted := packet.NewSerializeBuffer()
		if pa.Vector == attack.VectorUDP {
			qIP := &packet.IPv4{TTL: 3, Protocol: packet.ProtocolUDP, Src: dst, Dst: pa.Target}
			qUDP := &packet.UDP{SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: port}
			qUDP.SetNetworkLayer(dst, pa.Target)
			if err := packet.SerializeLayers(quoted, opts, qIP, qUDP); err != nil {
				panic(err)
			}
		} else {
			qIP := &packet.IPv4{TTL: 3, Protocol: packet.ProtocolIGMP, Src: dst, Dst: pa.Target}
			if err := packet.SerializeLayers(quoted, opts, qIP, packet.Payload(make([]byte, 8))); err != nil {
				panic(err)
			}
		}
		ip := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolICMP, Src: pa.Target, Dst: dst}
		icmp := &packet.ICMPv4{Type: packet.ICMPDestUnreachable, Code: 3}
		if err := packet.SerializeLayers(buf, opts, ip, icmp, packet.Payload(quoted.Bytes())); err != nil {
			panic(err)
		}
	}
	return append([]byte(nil), buf.Bytes()...)
}

// synthesizeReflection emits the spoofed requests one reflection attack
// sprays across the honeypot fleet.
func synthesizeReflection(rng *rand.Rand, pa *PlannedAttack, pkts []synthPacket) []synthPacket {
	d := pa.Duration
	if d < 15 {
		d = 15
	}
	n := int64(pa.Intensity * float64(d))
	if n < 102 {
		n = 102
	}
	if n > maxReflectionRequests {
		n = maxReflectionRequests
	}
	payload := reflectionRequest(rng, pa.Vector)
	for i := int64(0); i < n; i++ {
		pkts = append(pkts, synthPacket{
			ts:      pa.Start + i*d/(n-1),
			victim:  pa.Target,
			vector:  pa.Vector,
			payload: payload,
		})
	}
	return pkts
}

// reflectionRequest builds a protocol-valid abused request.
func reflectionRequest(rng *rand.Rand, vec attack.Vector) []byte {
	switch vec {
	case attack.VectorNTP:
		req := make([]byte, 8)
		req[0] = 0x17 // mode 7 private
		req[3] = 42   // monlist
		return req
	case attack.VectorDNS:
		q := make([]byte, 12, 32)
		binary.BigEndian.PutUint16(q[0:2], uint16(rng.Intn(1<<16)))
		binary.BigEndian.PutUint16(q[4:6], 1)
		q = append(q, 4)
		q = append(q, []byte("amp"+string(rune('a'+rng.Intn(26))))...)
		q = append(q, 3)
		q = append(q, []byte("com")...)
		q = append(q, 0, 0, 0xff, 0, 1) // ANY IN
		return q
	case attack.VectorCharGen, attack.VectorQOTD:
		return []byte{0x0a}
	case attack.VectorSSDP:
		return []byte("M-SEARCH * HTTP/1.1\r\nHOST:239.255.255.250:1900\r\nMAN:\"ssdp:discover\"\r\nST:ssdp:all\r\n\r\n")
	case attack.VectorMSSQL:
		return []byte{0x02}
	case attack.VectorRIPv1:
		req := make([]byte, 24)
		req[0], req[1] = 1, 1
		binary.BigEndian.PutUint16(req[4:6], 0)
		binary.BigEndian.PutUint32(req[20:24], 16) // metric 16: whole table
		return req
	case attack.VectorTFTP:
		return append([]byte{0, 1}, []byte("doscope.bin\x00octet\x00")...)
	}
	return []byte{0}
}

// WriteTelescopePcap synthesizes the backscatter traffic of all planned
// randomly spoofed attacks and writes it as a raw-IP pcap capture,
// time-sorted. The capture classifies identically to the in-process
// packet-level path (cmd/telescope consumes it), enabling interop with
// external pcap tooling. Returns the number of packets written.
func WriteTelescopePcap(w io.Writer, cfg Config, planned []PlannedAttack) (int, error) {
	cfg.applyDefaults()
	telCount := 0
	for i := range planned {
		if planned[i].Dataset == attack.SourceTelescope {
			telCount++
		}
	}
	if telCount > maxPacketLevelEvents {
		return 0, fmt.Errorf("dossim: %d telescope events exceed the packet-level cap %d", telCount, maxPacketLevelEvents)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	var pkts []synthPacket
	for i := range planned {
		if planned[i].Dataset == attack.SourceTelescope {
			pkts = synthesizeBackscatter(rng, cfg, &planned[i], pkts)
		}
	}
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].ts < pkts[j].ts })
	pw, err := pcap.NewWriter(w, pcap.LinkTypeRaw, 65535)
	if err != nil {
		return 0, err
	}
	for i := range pkts {
		if err := pw.WritePacket(time.Unix(pkts[i].ts, 0).UTC(), pkts[i].raw); err != nil {
			return i, err
		}
	}
	return len(pkts), pw.Flush()
}

package dossim

import (
	"math"
	"math/rand"

	"doscope/internal/attack"
)

// Attribute samplers calibrated to §4 of the paper. Each comment cites the
// statistic being planted.

// logNormal draws exp(N(mu, sigma^2)).
func logNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// telescopeDuration: median 454 s, mean 48 min, P90 >= 1.5 h, ~0.2% > 24 h
// (Fig. 2 top). Lognormal(6.118, 1.92) matches all four anchors.
func telescopeDuration(rng *rand.Rand, isWeb bool) int64 {
	if isWeb {
		// Web-port attacks are shorter: mean 10 min, median 240 s.
		return int64(clampF(logNormal(rng, 5.48, 1.3), 60, 7*86400))
	}
	return int64(clampF(logNormal(rng, 6.118, 1.92), 60, 7*86400))
}

// honeypotDuration: median 255 s, mean 18 min, P90 >= 40 min, ~6% >= 1 h,
// ~0.02% at the 24 h cap (Fig. 2 bottom). Lognormal(5.541, 1.70).
func honeypotDuration(rng *rand.Rand) int64 {
	return int64(clampF(logNormal(rng, 5.541, 1.70), 15, 86400))
}

// telescopeIntensity: max backscatter pps at the telescope. ~70% of
// attacks at roughly <= 2 pps, median ~1, mean ~107, tail to tens of
// thousands (Fig. 3). Mixture of a narrow bulk and a heavy tail.
func telescopeIntensity(rng *rand.Rand, isWeb bool) float64 {
	tailP, tailMu := 0.30, 3.5
	if isWeb {
		// Web-port attacks are more intense: mean 226 vs 107 (§4).
		tailP, tailMu = 0.35, 4.4
	}
	var v float64
	if rng.Float64() < tailP {
		v = logNormal(rng, tailMu, 2.2)
	} else {
		v = logNormal(rng, -0.15, 0.55)
	}
	return clampF(v, 0.5, 200000)
}

// honeypotIntensity: average requests/s at the reflectors; median 77,
// mean 413 overall, per-protocol shifts per Fig. 4 (NTP reaches the
// highest rates).
func honeypotIntensity(rng *rand.Rand, vec attack.Vector) float64 {
	mu := 4.34
	switch vec {
	case attack.VectorNTP:
		mu += 0.35
	case attack.VectorCharGen:
		mu += 0.05
	case attack.VectorDNS:
		mu -= 0.05
	case attack.VectorSSDP:
		mu -= 0.50
	case attack.VectorRIPv1:
		mu -= 0.90
	default:
		mu -= 0.30
	}
	return clampF(logNormal(rng, mu, 1.7), 0.2, 500000)
}

// telescopeVector: Table 5 (TCP 79.4%, UDP 15.9%, ICMP 4.5%, other 0.2%);
// Web targets shift to 93.4% TCP (§5).
func telescopeVector(rng *rand.Rand, isWeb bool) attack.Vector {
	x := rng.Float64()
	if isWeb {
		switch {
		case x < 0.934:
			return attack.VectorTCP
		case x < 0.984:
			return attack.VectorUDP
		case x < 0.999:
			return attack.VectorICMP
		default:
			return attack.VectorOtherIP
		}
	}
	switch {
	case x < 0.794:
		return attack.VectorTCP
	case x < 0.794+0.159:
		return attack.VectorUDP
	case x < 0.794+0.159+0.045:
		return attack.VectorICMP
	default:
		return attack.VectorOtherIP
	}
}

// honeypotVector: Table 6 (NTP 40.08%, DNS 26.17%, CharGen 22.37%, SSDP
// 8.38%, RIPv1 2.27%, other 0.73%); Web targets raise NTP to 54.69% (§5);
// joint attacks raise NTP to 47.0% and halve CharGen to 11.5% (§4).
func honeypotVector(rng *rand.Rand, isWeb, joint bool) attack.Vector {
	type vw struct {
		v attack.Vector
		w float64
	}
	var table []vw
	switch {
	case isWeb:
		table = []vw{{attack.VectorNTP, 0.5469}, {attack.VectorDNS, 0.20},
			{attack.VectorCharGen, 0.16}, {attack.VectorSSDP, 0.065},
			{attack.VectorRIPv1, 0.018}, {attack.VectorQOTD, 0.004},
			{attack.VectorMSSQL, 0.004}, {attack.VectorTFTP, 0.0021}}
	case joint:
		table = []vw{{attack.VectorNTP, 0.470}, {attack.VectorDNS, 0.28},
			{attack.VectorCharGen, 0.115}, {attack.VectorSSDP, 0.10},
			{attack.VectorRIPv1, 0.027}, {attack.VectorQOTD, 0.003},
			{attack.VectorMSSQL, 0.003}, {attack.VectorTFTP, 0.002}}
	default:
		table = []vw{{attack.VectorNTP, 0.4008}, {attack.VectorDNS, 0.2617},
			{attack.VectorCharGen, 0.2237}, {attack.VectorSSDP, 0.0838},
			{attack.VectorRIPv1, 0.0227}, {attack.VectorQOTD, 0.003},
			{attack.VectorMSSQL, 0.0025}, {attack.VectorTFTP, 0.0018}}
	}
	x := rng.Float64()
	for _, e := range table {
		if x < e.w {
			return e.v
		}
		x -= e.w
	}
	return attack.VectorNTP
}

// telescopePorts: Table 7 (single-port 60.6%, 77.1% for joint attacks) and
// Table 8 port mixes; Web targets hit Web ports 87.6% of the time (§5).
func telescopePorts(rng *rand.Rand, vec attack.Vector, isWeb, joint bool) []uint16 {
	if vec == attack.VectorICMP || vec == attack.VectorOtherIP {
		return nil
	}
	pSingle := 0.606
	if joint {
		pSingle = 0.771
	}
	if rng.Float64() < pSingle {
		return []uint16{singlePort(rng, vec, isWeb, joint)}
	}
	// Multi-port: a handful of distinct ports.
	n := 2 + rng.Intn(6)
	ports := make([]uint16, 0, n)
	seen := make(map[uint16]bool, n)
	for len(ports) < n {
		var p uint16
		if isWeb && rng.Float64() < 0.6 {
			p = []uint16{80, 443, 8080}[rng.Intn(3)]
		} else {
			p = uint16(1 + rng.Intn(65535))
		}
		if !seen[p] {
			seen[p] = true
			ports = append(ports, p)
		}
	}
	sortPorts(ports)
	return ports
}

func sortPorts(p []uint16) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j] < p[j-1]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

func singlePort(rng *rand.Rand, vec attack.Vector, isWeb, joint bool) uint16 {
	x := rng.Float64()
	if vec == attack.VectorTCP {
		if isWeb {
			// 87.6% of Web-target events hit Web infrastructure ports.
			switch {
			case x < 0.62:
				return 80
			case x < 0.876:
				return 443
			case x < 0.89:
				return 3306
			case x < 0.90:
				return 22
			default:
				return uint16(1 + rng.Intn(65535))
			}
		}
		pHTTP := 0.4868
		if joint {
			pHTTP = 0.5023 // §4: joint attacks target HTTP slightly more
		}
		switch {
		case x < pHTTP:
			return 80
		case x < pHTTP+0.2068:
			return 443
		case x < pHTTP+0.2068+0.0112:
			return 3306
		case x < pHTTP+0.2068+0.0112+0.0107:
			return 53
		case x < pHTTP+0.2068+0.0112+0.0107+0.0099:
			return 1723
		default:
			// Table 8a "Other": a long tail of services.
			common := []uint16{22, 25, 21, 6667, 3389, 5900, 143, 110, 8080}
			if rng.Float64() < 0.4 {
				return common[rng.Intn(len(common))]
			}
			return uint16(1 + rng.Intn(65535))
		}
	}
	// UDP: Table 8b; joint attacks concentrate on 27015 (53% vs 18.54%).
	p27015 := 0.1854
	if joint {
		p27015 = 0.53
	}
	switch {
	case x < p27015:
		return 27015
	case x < p27015+0.0204:
		return 37547
	case x < p27015+0.0204+0.0141:
		return 32124
	case x < p27015+0.0204+0.0141+0.0139:
		return 28183
	case x < p27015+0.0204+0.0141+0.0139+0.0130:
		return 3306
	default:
		common := []uint16{123, 138, 161, 53, 500, 5060}
		if rng.Float64() < 0.1 {
			return common[rng.Intn(len(common))]
		}
		return uint16(1 + rng.Intn(65535))
	}
}

// drawKTel draws events-per-target for the telescope data set
// (mean ~5.1, matching 12.47M events over 2.45M targets).
func drawKTel(rng *rand.Rand) int {
	x := rng.Float64()
	switch {
	case x < 0.6:
		return 1 + rng.Intn(2)
	case x < 0.9:
		return 1 + geom(rng, 5)
	default:
		return 1 + geom(rng, 24)
	}
}

// drawKHp draws events-per-target for the honeypot data set (mean ~2.0,
// matching 8.43M events over 4.18M targets).
func drawKHp(rng *rand.Rand) int {
	x := rng.Float64()
	switch {
	case x < 0.7:
		return 1
	case x < 0.9:
		return 1 + geom(rng, 2)
	default:
		return 1 + geom(rng, 6)
	}
}

func geom(rng *rand.Rand, mean float64) int {
	return int(rng.ExpFloat64() * mean)
}

// countryMix is a cumulative sampler over country codes.
type countryMix struct {
	codes []string
	cum   []float64
}

func newCountryMix(pairs []struct {
	cc string
	w  float64
}) *countryMix {
	m := &countryMix{}
	total := 0.0
	for _, p := range pairs {
		total += p.w
		m.codes = append(m.codes, p.cc)
		m.cum = append(m.cum, total)
	}
	return m
}

func (m *countryMix) pick(rng *rand.Rand) string {
	x := rng.Float64() * m.cum[len(m.cum)-1]
	for i, c := range m.cum {
		if x < c {
			return m.codes[i]
		}
	}
	return m.codes[len(m.codes)-1]
}

type ccw = struct {
	cc string
	w  float64
}

// telescopeCountryMix plants Table 4a: US 25.56%, CN 10.47%, RU 5.72%,
// FR 5.14%, DE 4.20%; Japan pushed down to ~25th place.
func telescopeCountryMix() *countryMix {
	return newCountryMix([]ccw{
		{"US", .2456}, {"CN", .1047}, {"RU", .0650}, {"FR", .0330}, {"DE", .0430},
		{"GB", .044}, {"CA", .040}, {"BR", .036}, {"IT", .033}, {"NL", .030},
		{"KR", .029}, {"AU", .027}, {"IN", .026}, {"ES", .024}, {"TR", .022},
		{"PL", .021}, {"SE", .019}, {"MX", .018}, {"TW", .016}, {"CH", .015},
		{"AR", .014}, {"ZA", .012}, {"SG", .010}, {"JP", .004}, {"ZZ", .0377},
	})
}

// honeypotCountryMix plants Table 4b: US 29.50%, CN 9.96%, FR 7.73%,
// GB 6.37%, DE 5.18%; Japan ~14th.
func honeypotCountryMix() *countryMix {
	return newCountryMix([]ccw{
		{"US", .2950}, {"CN", .0996}, {"FR", .0600}, {"GB", .0680}, {"DE", .0560},
		{"CA", .040}, {"RU", .036}, {"BR", .034}, {"NL", .030}, {"IT", .028},
		{"KR", .025}, {"AU", .023}, {"IN", .021}, {"JP", .009}, {"ES", .019},
		{"SE", .016}, {"PL", .015}, {"TR", .014}, {"MX", .013}, {"TW", .011},
		{"CH", .010}, {"AR", .009}, {"ZA", .008}, {"SG", .006}, {"ZZ", .0404},
	})
}

// jointCountryMix shapes the *generic* joint targets so that, combined
// with the Web-hoster joint targets (which are predominantly US and
// OVH/FR), the overall joint-target ranking lands at the paper's §4
// numbers: US first (~24%), CN second (~20%), FR third (~9.5%).
func jointCountryMix() *countryMix {
	return newCountryMix([]ccw{
		{"CN", .400}, {"US", .080}, {"RU", .060}, {"DE", .060}, {"GB", .050},
		{"CA", .030}, {"BR", .030}, {"IT", .025}, {"NL", .025}, {"KR", .020},
		{"AU", .020}, {"IN", .020}, {"ES", .020}, {"TR", .020}, {"PL", .020},
		{"SE", .015}, {"MX", .015}, {"TW", .010}, {"CH", .010}, {"AR", .010},
		{"ZA", .010}, {"SG", .005}, {"JP", .005}, {"ZZ", .040},
	})
}

package dossim

import (
	"math"
	"sync"
	"testing"

	"doscope/internal/attack"
	"doscope/internal/ipmeta"
	"doscope/internal/netx"
	"doscope/internal/stats"
)

var (
	scOnce sync.Once
	scDef  *Scenario
	scErr  error
)

// defaultScenario generates the 1/1000-scale scenario once for all tests.
func defaultScenario(t testing.TB) *Scenario {
	t.Helper()
	scOnce.Do(func() {
		scDef, scErr = Generate(Config{Seed: 42})
	})
	if scErr != nil {
		t.Fatal(scErr)
	}
	return scDef
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestTable1Shapes(t *testing.T) {
	sc := defaultScenario(t)
	telEvents := float64(sc.Telescope.Len())
	hpEvents := float64(sc.Honeypot.Len())
	if relErr(telEvents, 12470) > 0.25 {
		t.Errorf("telescope events = %.0f, want ~12470 (Table 1 scaled)", telEvents)
	}
	if relErr(hpEvents, 8430) > 0.25 {
		t.Errorf("honeypot events = %.0f, want ~8430", hpEvents)
	}
	telTargets := float64(sc.Telescope.UniqueTargets())
	hpTargets := float64(sc.Honeypot.UniqueTargets())
	if relErr(telTargets, 2450) > 0.2 {
		t.Errorf("telescope targets = %.0f, want ~2450", telTargets)
	}
	if relErr(hpTargets, 4180) > 0.2 {
		t.Errorf("honeypot targets = %.0f, want ~4180", hpTargets)
	}
	// Combined unique targets and the one-third-of-the-Internet headline.
	seen := make(map[netx.Addr]struct{})
	for _, e := range sc.Telescope.Events() {
		seen[e.Target] = struct{}{}
	}
	telOnly := len(seen)
	common := 0
	for _, e := range sc.Honeypot.Events() {
		if _, ok := seen[e.Target]; ok {
			common++
		}
		seen[e.Target] = struct{}{}
	}
	_ = telOnly
	combined := float64(len(seen))
	if relErr(combined, 6340) > 0.2 {
		t.Errorf("combined targets = %.0f, want ~6340", combined)
	}
	// /24 blocks attacked vs active: about one third (§4 headline).
	s24 := make(map[netx.Addr]struct{})
	for a := range seen {
		s24[a.Slash24()] = struct{}{}
	}
	frac := float64(len(s24)) / float64(sc.Plan.NumActive24())
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("attacked /24 fraction = %.2f, want ~1/3", frac)
	}
}

func TestCommonAndJointTargets(t *testing.T) {
	sc := defaultScenario(t)
	telByTarget := sc.Telescope.ByTarget()
	hpByTarget := sc.Honeypot.ByTarget()
	common, joint := 0, 0
	telEvents := sc.Telescope.Events()
	hpEvents := sc.Honeypot.Events()
	for target, tIdx := range telByTarget {
		hIdx, ok := hpByTarget[target]
		if !ok {
			continue
		}
		common++
		overlap := false
	outer:
		for _, i := range tIdx {
			for _, j := range hIdx {
				if telEvents[i].Overlaps(&hpEvents[j]) {
					overlap = true
					break outer
				}
			}
		}
		if overlap {
			joint++
		}
	}
	if relErr(float64(common), 282) > 0.35 {
		t.Errorf("common targets = %d, want ~282", common)
	}
	if relErr(float64(joint), 137) > 0.45 {
		t.Errorf("joint targets = %d, want ~137", joint)
	}
	if joint > common {
		t.Error("joint exceeds common")
	}
}

func TestTable5IPProtocolMix(t *testing.T) {
	sc := defaultScenario(t)
	var counts [4]float64
	total := 0.0
	for _, e := range sc.Telescope.Events() {
		counts[e.Vector]++
		total++
	}
	want := [4]float64{0.794, 0.159, 0.045, 0.002}
	for v, w := range want {
		got := counts[v] / total
		if math.Abs(got-w) > 0.05 {
			t.Errorf("protocol %v share = %.3f, want %.3f", attack.Vector(v), got, w)
		}
	}
}

func TestTable6ReflectionMix(t *testing.T) {
	sc := defaultScenario(t)
	counts := make(map[attack.Vector]float64)
	total := 0.0
	for _, e := range sc.Honeypot.Events() {
		counts[e.Vector]++
		total++
	}
	want := map[attack.Vector]float64{
		attack.VectorNTP:     0.4008,
		attack.VectorDNS:     0.2617,
		attack.VectorCharGen: 0.2237,
		attack.VectorSSDP:    0.0838,
		attack.VectorRIPv1:   0.0227,
	}
	for v, w := range want {
		got := counts[v] / total
		if math.Abs(got-w) > 0.05 {
			t.Errorf("%v share = %.3f, want %.3f", v, got, w)
		}
	}
	if counts[attack.VectorNTP] <= counts[attack.VectorDNS] {
		t.Error("NTP must lead the reflection mix")
	}
}

func TestTable7PortCardinality(t *testing.T) {
	sc := defaultScenario(t)
	single, withPorts := 0.0, 0.0
	for _, e := range sc.Telescope.Events() {
		if len(e.Ports) == 0 {
			continue
		}
		withPorts++
		if e.SinglePort() {
			single++
		}
	}
	got := single / withPorts
	if math.Abs(got-0.606) > 0.08 {
		t.Errorf("single-port share = %.3f, want ~0.606", got)
	}
}

func TestTable8TopPorts(t *testing.T) {
	sc := defaultScenario(t)
	tcp := make(map[uint16]int)
	udp := make(map[uint16]int)
	tcpTotal, udpTotal := 0, 0
	for _, e := range sc.Telescope.Events() {
		if !e.SinglePort() {
			continue
		}
		switch e.Vector {
		case attack.VectorTCP:
			tcp[e.Ports[0]]++
			tcpTotal++
		case attack.VectorUDP:
			udp[e.Ports[0]]++
			udpTotal++
		}
	}
	httpShare := float64(tcp[80]) / float64(tcpTotal)
	if math.Abs(httpShare-0.52) > 0.12 {
		t.Errorf("HTTP share = %.3f, want ~0.50 (Table 8a + Web boost)", httpShare)
	}
	if tcp[443] == 0 || tcp[80] < tcp[443] {
		t.Error("HTTP must dominate HTTPS")
	}
	gameShare := float64(udp[27015]) / float64(udpTotal)
	if gameShare < 0.10 || gameShare > 0.40 {
		t.Errorf("27015/UDP share = %.3f, want ~0.19-0.25", gameShare)
	}
	// Web-port events over TCP: ~69% overall in the paper.
	webPort := 0
	for p, n := range tcp {
		if attack.WebPort(p) {
			webPort += n
		}
	}
	webShare := float64(webPort) / float64(tcpTotal)
	if webShare < 0.55 || webShare > 0.85 {
		t.Errorf("TCP Web-port share = %.3f, want ~0.69", webShare)
	}
}

func TestFigure2Durations(t *testing.T) {
	sc := defaultScenario(t)
	var tel, hp []float64
	for _, e := range sc.Telescope.Events() {
		tel = append(tel, float64(e.Duration()))
	}
	for _, e := range sc.Honeypot.Events() {
		hp = append(hp, float64(e.Duration()))
	}
	telCDF := stats.NewCDF(tel)
	hpCDF := stats.NewCDF(hp)
	if m := telCDF.Median(); m < 250 || m > 900 {
		t.Errorf("telescope median duration = %.0f s, want ~454", m)
	}
	if m := telCDF.Mean(); m < 1700 || m > 4300 {
		t.Errorf("telescope mean duration = %.0f s, want ~2880", m)
	}
	if p90 := telCDF.Quantile(0.9); p90 < 3600 || p90 > 12000 {
		t.Errorf("telescope P90 duration = %.0f s, want >= 5400 (1.5h)", p90)
	}
	if m := hpCDF.Median(); m < 150 || m > 450 {
		t.Errorf("honeypot median duration = %.0f s, want ~255", m)
	}
	if m := hpCDF.Mean(); m < 650 || m > 1700 {
		t.Errorf("honeypot mean duration = %.0f s, want ~1080", m)
	}
	over1h := 1 - hpCDF.At(3600)
	if over1h < 0.03 || over1h > 0.12 {
		t.Errorf("honeypot P(>1h) = %.3f, want ~0.06", over1h)
	}
	if hpCDF.Max() > 86400 {
		t.Errorf("honeypot max duration %.0f exceeds the 24h cap", hpCDF.Max())
	}
}

func TestFigure3And4Intensities(t *testing.T) {
	sc := defaultScenario(t)
	var tel, hp []float64
	for _, e := range sc.Telescope.Events() {
		tel = append(tel, e.MaxPPS)
	}
	for _, e := range sc.Honeypot.Events() {
		hp = append(hp, e.AvgRPS)
	}
	telCDF := stats.NewCDF(tel)
	hpCDF := stats.NewCDF(hp)
	if m := telCDF.Median(); m < 0.5 || m > 3 {
		t.Errorf("telescope median intensity = %.2f pps, want ~1", m)
	}
	if m := telCDF.Mean(); m < 40 || m > 260 {
		t.Errorf("telescope mean intensity = %.1f pps, want ~107", m)
	}
	if low := telCDF.At(2); low < 0.5 || low > 0.8 {
		t.Errorf("P(<=2pps) = %.2f, want ~0.7 (Fig 3)", low)
	}
	if m := hpCDF.Median(); m < 35 || m > 160 {
		t.Errorf("honeypot median intensity = %.1f rps, want ~77", m)
	}
	if m := hpCDF.Mean(); m < 200 || m > 800 {
		t.Errorf("honeypot mean intensity = %.1f rps, want ~413", m)
	}
}

func TestTable4CountryRanking(t *testing.T) {
	sc := defaultScenario(t)
	rank := func(st *attack.Store) map[string]float64 {
		seen := make(map[netx.Addr]bool)
		counts := make(map[string]float64)
		total := 0.0
		for _, e := range st.Events() {
			if seen[e.Target] {
				continue
			}
			seen[e.Target] = true
			if cc, ok := sc.Plan.CountryOf(e.Target); ok {
				counts[cc.String()]++
				total++
			}
		}
		for k := range counts {
			counts[k] /= total
		}
		return counts
	}
	tel := rank(sc.Telescope)
	if math.Abs(tel["US"]-0.2556) > 0.06 {
		t.Errorf("telescope US share = %.3f, want ~0.256", tel["US"])
	}
	if math.Abs(tel["CN"]-0.1047) > 0.05 {
		t.Errorf("telescope CN share = %.3f, want ~0.105", tel["CN"])
	}
	if tel["JP"] > 0.02 {
		t.Errorf("telescope JP share = %.3f, want tiny (ranks ~25th)", tel["JP"])
	}
	hp := rank(sc.Honeypot)
	if math.Abs(hp["US"]-0.295) > 0.06 {
		t.Errorf("honeypot US share = %.3f, want ~0.295", hp["US"])
	}
	if hp["FR"] < 0.04 {
		t.Errorf("honeypot FR share = %.3f, want ~0.077 (OVH effect)", hp["FR"])
	}
}

func TestWebTargetOverrides(t *testing.T) {
	sc := defaultScenario(t)
	rev := sc.History.BuildReverseIndex()
	tcp, total := 0.0, 0.0
	ntp, hpTotal := 0.0, 0.0
	for _, e := range sc.Telescope.Events() {
		if !rev.HasAddr(e.Target) {
			continue
		}
		total++
		if e.Vector == attack.VectorTCP {
			tcp++
		}
	}
	for _, e := range sc.Honeypot.Events() {
		if !rev.HasAddr(e.Target) {
			continue
		}
		hpTotal++
		if e.Vector == attack.VectorNTP {
			ntp++
		}
	}
	if got := tcp / total; math.Abs(got-0.934) > 0.05 {
		t.Errorf("TCP share on Web targets = %.3f, want ~0.934 (§5)", got)
	}
	if got := ntp / hpTotal; math.Abs(got-0.5469) > 0.07 {
		t.Errorf("NTP share on Web targets = %.3f, want ~0.547 (§5)", got)
	}
}

func TestMigrationsApplied(t *testing.T) {
	sc := defaultScenario(t)
	wix, ok := sc.Web.PoolByName("Wix")
	if !ok {
		t.Fatal("no Wix pool")
	}
	migrated := 0
	for _, id := range wix.Sites {
		if sc.Web.Domains[id].MigDay == int32(wix.Bulk.TriggerDay+wix.Bulk.DelayDays) {
			migrated++
		}
	}
	if migrated < len(wix.Sites)*9/10 {
		t.Errorf("Wix bulk migration: %d/%d sites", migrated, len(wix.Sites))
	}
	// Individual migrations exist.
	individual := 0
	for id := range sc.Web.Domains {
		d := &sc.Web.Domains[id]
		if d.Pre == 0 && d.MigDay >= 0 {
			individual++
		}
	}
	if individual < 500 {
		t.Errorf("only %d migrated domains", individual)
	}
	if len(sc.Exposures) == 0 {
		t.Fatal("no exposures computed")
	}
}

func TestExposuresConsistent(t *testing.T) {
	sc := defaultScenario(t)
	for _, ex := range sc.Exposures[:100] {
		if ex.FirstDay < 0 || ex.FirstDay >= sc.Cfg.WindowDays {
			t.Fatalf("exposure day %d out of window", ex.FirstDay)
		}
		if ex.IntensityPct < 0 || ex.IntensityPct > 1 {
			t.Fatalf("exposure pct %f out of range", ex.IntensityPct)
		}
	}
}

func TestEventsWithinWindowAndFilters(t *testing.T) {
	sc := defaultScenario(t)
	for _, e := range sc.Telescope.Events() {
		if e.Day() < 0 || e.Day() >= sc.Cfg.WindowDays {
			t.Fatalf("telescope event day %d out of window", e.Day())
		}
		if e.Duration() < 60 || e.MaxPPS < 0.5 || e.Packets < 25 {
			t.Fatalf("telescope event violates Moore filter: %+v", e)
		}
		if sc.Cfg.Darknet.Contains(e.Target) {
			t.Fatal("target inside the darknet")
		}
	}
	for _, e := range sc.Honeypot.Events() {
		if e.Packets <= 100 {
			t.Fatalf("honeypot event below request threshold: %+v", e)
		}
		if e.Duration() > 86400 {
			t.Fatalf("honeypot event exceeds 24h cap: %+v", e)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Config{Seed: 7, Scale: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 7, Scale: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	if a.Telescope.Len() != b.Telescope.Len() || a.Honeypot.Len() != b.Honeypot.Len() {
		t.Fatal("scenario not deterministic")
	}
	ae, be := a.Telescope.Events(), b.Telescope.Events()
	for i := range ae {
		if ae[i].Target != be[i].Target || ae[i].Start != be[i].Start {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestPacketLevelMatchesEventLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level generation is slow")
	}
	plan, err := ipmeta.BuildPlan(ipmeta.PlanConfig{Seed: 9, NumSixteens: 512, NumActive24: 800})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 9, Scale: 2e-5, Plan: plan, PacketLevel: true}
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every planned telescope attack passes the Moore thresholds by
	// construction, so the classifier must recover nearly all of them
	// (same-victim events that overlap in time merge into one flow).
	plannedTel, plannedHp := 0, 0
	for _, pa := range sc.Planned {
		if pa.Dataset == attack.SourceTelescope {
			plannedTel++
		} else {
			plannedHp++
		}
	}
	gotTel, gotHp := sc.Telescope.Len(), sc.Honeypot.Len()
	if gotTel < plannedTel*70/100 || gotTel > plannedTel {
		t.Errorf("telescope recovered %d of %d planned", gotTel, plannedTel)
	}
	if gotHp < plannedHp*70/100 || gotHp > plannedHp {
		t.Errorf("honeypot recovered %d of %d planned", gotHp, plannedHp)
	}
	// Recovered target sets must match the planned ones.
	plannedTargets := make(map[netx.Addr]bool)
	for _, pa := range sc.Planned {
		if pa.Dataset == attack.SourceTelescope {
			plannedTargets[pa.Target] = true
		}
	}
	for _, e := range sc.Telescope.Events() {
		if !plannedTargets[e.Target] {
			t.Fatalf("classifier invented target %v", e.Target)
		}
	}
	recovered := make(map[netx.Addr]bool)
	for _, e := range sc.Telescope.Events() {
		recovered[e.Target] = true
	}
	missing := 0
	for target := range plannedTargets {
		if !recovered[target] {
			missing++
		}
	}
	if missing > len(plannedTargets)/20 {
		t.Errorf("%d of %d planned telescope targets unrecovered", missing, len(plannedTargets))
	}
	// Vector mix survives the packet round trip.
	tcp, total := 0.0, 0.0
	for _, e := range sc.Telescope.Events() {
		total++
		if e.Vector == attack.VectorTCP {
			tcp++
		}
	}
	if got := tcp / total; got < 0.70 || got > 0.95 {
		t.Errorf("packet-level TCP share = %.3f", got)
	}
}

// TestGenerateWithInjectedStores checks the segment-cache path: Generate
// with pre-captured stores must skip attack planning, use the stores
// as-is, and still derive the Web model from their events.
func TestGenerateWithInjectedStores(t *testing.T) {
	base, err := Generate(Config{Seed: 3, Scale: 0.0002})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Generate(Config{
		Seed: 3, Scale: 0.0002,
		Telescope: base.Telescope, Honeypot: base.Honeypot,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Telescope != base.Telescope || sc.Honeypot != base.Honeypot {
		t.Fatal("injected stores were not used as-is")
	}
	if sc.Planned != nil {
		t.Fatal("attack planning ran despite injected stores")
	}
	if sc.History == nil || sc.History.NumDomains() == 0 {
		t.Fatal("Web history not derived for injected stores")
	}
	if len(sc.Exposures) != len(base.Exposures) {
		t.Fatalf("exposures differ: %d vs %d", len(sc.Exposures), len(base.Exposures))
	}
}

package dossim

import (
	"math"
	"math/rand"

	"doscope/internal/attack"
	"doscope/internal/ipmeta"
	"doscope/internal/netx"
	"doscope/internal/webmodel"
)

// targetRec is one attack target with its planned dataset membership.
type targetRec struct {
	addr  netx.Addr
	pool  int32 // webmodel pool, -1 otherwise
	isWeb bool
	inTel bool
	inHp  bool
	joint bool
	// wide targets (named hoster infrastructure) are attacked in
	// campaigns spread across the whole window rather than clustered
	// around a single home day.
	wide bool
	// mail targets are hoster mail clusters: SMTP-port floods.
	mail       bool
	kTel, kHp  int
	weightBump float64
}

// fig7Peaks plants the four §5 case-study peaks: March 12 2015 (GoDaddy,
// WordPress/Automattic, CenturyLink-routed infrastructure), October 10
// 2015 (Squarespace, OVH, the AWS-hosted reseller), November 4 2016
// (GoDaddy, Wix, Squarespace; high intensity), February 25 2017 (GoDaddy,
// OVH, Network Solutions, EIG).
type peakPool struct {
	name string
	ips  int // how many of the pool's IPs the campaign hits
}

var fig7Peaks = []struct {
	day     int
	pools   []peakPool
	intense bool
}{
	{11, []peakPool{{"GoDaddy", 13}, {"WordPress", 2}, {"CenturyLinkFront", 1}}, false},
	{223, []peakPool{{"Squarespace", 2}, {"OVH", 6}, {"AmazonReseller", 1}}, false},
	{614, []peakPool{{"GoDaddy", 6}, {"Wix", 1}, {"Squarespace", 2}}, true},
	{727, []peakPool{{"GoDaddy", 4}, {"OVH", 5}, {"NetworkSolutions", 2}, {"EIG", 2}}, false},
}

// planAttacks produces the full ground-truth attack schedule.
func planAttacks(rng *rand.Rand, cfg Config, plan *ipmeta.Plan, web *webmodel.Population) []PlannedAttack {
	nTelTargets := scaledInt(fullTelescopeTgts, cfg.Scale, 80)
	nHpTargets := scaledInt(fullHoneypotTgts, cfg.Scale, 80)
	nCommon := scaledInt(fullCommonTargets, cfg.Scale, 16)
	nJoint := scaledInt(fullJointTargets, cfg.Scale, 8)

	days := newDaySampler(rng, cfg.WindowDays)
	seen := make(map[netx.Addr]bool)
	sampler := newAddrSampler(plan, seen)
	var targets []targetRec

	// 1. Web-hosting targets: every attackable hosting IP is attacked at
	// least once over the window (this is what makes 64% of sites land on
	// attacked IPs).
	webTargets := web.AttackableTargets(cfg.Seed+5, scaledInt(210e3, cfg.Scale, 30))
	jointCount, bothCount := 0, 0
	for _, wt := range webTargets {
		rec := targetRec{addr: wt.Addr, pool: wt.Pool, isWeb: true, weightBump: wt.Weight}
		switch {
		case wt.Weight >= 3: // named hoster / front infrastructure
			rec.inTel, rec.inHp = true, true
			rec.joint = rng.Float64() < 0.5
			rec.wide = true
		case wt.Pool >= 0:
			x := rng.Float64()
			switch {
			case x < 0.2:
				rec.inTel, rec.inHp = true, true
				rec.joint = rng.Float64() < 0.45
			case x < 0.7:
				rec.inTel = true
			default:
				rec.inHp = true
			}
		default: // self-hosted single
			x := rng.Float64()
			switch {
			case x < 0.55:
				rec.inTel = true
			case x < 0.9:
				rec.inHp = true
			default:
				rec.inTel, rec.inHp = true, true
				rec.joint = rng.Float64() < 0.3
			}
		}
		if rec.inTel {
			rec.kTel = drawKTel(rng) + int(wt.Weight*(0.5+rng.Float64()))
		}
		if rec.inHp {
			rec.kHp = drawKHp(rng) + int(wt.Weight*(0.25+rng.Float64()/2))
		}
		if rec.inTel && rec.inHp {
			bothCount++
			if rec.joint {
				jointCount++
			}
		}
		seen[rec.addr] = true
		targets = append(targets, rec)
	}

	// 1b. Mail-cluster targets: large hosters' mail servers are frequently
	// attacked (§5/§8 — GoDaddy's e-mail servers serve tens of millions of
	// domains and are regular targets). These are direct SMTP-port floods
	// plus occasional reflection.
	for _, mt := range web.MailTargets(200) {
		rec := targetRec{addr: mt.Addr, pool: mt.Pool, inTel: true, mail: true}
		rec.kTel = 2 + geom(rng, 3)
		if rng.Float64() < 0.3 {
			rec.inHp = true
			rec.kHp = 1 + geom(rng, 1)
		}
		seen[rec.addr] = true
		targets = append(targets, rec)
	}

	// 2. Non-web "both datasets" targets, with the §4 joint-target AS
	// skew: OVH 12.3%, China Telecom 5.4%, China Unicom 3.1% of joint
	// targets.
	jointMix := jointCountryMix()
	asQuota := []struct {
		name string
		n    int
	}{
		{"OVH", int(0.123 * float64(nCommon))},
		{"China Telecom", int(0.054 * float64(nCommon))},
		{"China Unicom", int(0.031 * float64(nCommon))},
	}
	addBoth := func(addr netx.Addr) {
		rec := targetRec{addr: addr, pool: -1, inTel: true, inHp: true}
		if jointCount < nJoint && rng.Float64() < 0.55 {
			rec.joint = true
			jointCount++
		}
		rec.kTel = drawKTel(rng)
		rec.kHp = drawKHp(rng)
		seen[addr] = true
		targets = append(targets, rec)
		bothCount++
	}
	for _, q := range asQuota {
		asn, ok := plan.ASNByName(q.name)
		if !ok {
			continue
		}
		for i := 0; i < q.n && bothCount < nCommon; i++ {
			addr, ok := genericAddrInAS(rng, plan, asn, seen)
			if !ok {
				break
			}
			addBoth(addr)
		}
	}
	for bothCount < nCommon {
		addr, ok := sampler.pick(rng, jointMix.pick(rng))
		if !ok {
			break
		}
		addBoth(addr)
	}

	// 3. Fill the per-dataset unique-target quotas (Table 1) with
	// single-dataset targets following the Table 4 country mixes.
	telMix := telescopeCountryMix()
	hpMix := honeypotCountryMix()
	telAssigned, hpAssigned := 0, 0
	for _, t := range targets {
		if t.inTel {
			telAssigned++
		}
		if t.inHp {
			hpAssigned++
		}
	}
	for telAssigned < nTelTargets {
		addr, ok := sampler.pick(rng, telMix.pick(rng))
		if !ok {
			break
		}
		seen[addr] = true
		targets = append(targets, targetRec{addr: addr, pool: -1, inTel: true, kTel: drawKTel(rng)})
		telAssigned++
	}
	for hpAssigned < nHpTargets {
		addr, ok := sampler.pick(rng, hpMix.pick(rng))
		if !ok {
			break
		}
		seen[addr] = true
		targets = append(targets, targetRec{addr: addr, pool: -1, inHp: true, kHp: drawKHp(rng)})
		hpAssigned++
	}

	// 4. Schedule events per target.
	var planned []PlannedAttack
	for i := range targets {
		planned = scheduleTarget(rng, cfg, days, &targets[i], planned)
	}

	// 5. The four Fig. 7 peaks: coordinated multi-IP attacks on large
	// hosters, with the Nov 2016 peak at high intensity (Fig. 5).
	for _, pk := range fig7Peaks {
		if pk.day >= cfg.WindowDays {
			continue
		}
		for _, pp := range pk.pools {
			pool, ok := web.PoolByName(pp.name)
			if !ok {
				continue
			}
			ips := pool.IPs
			if pp.ips < len(ips) {
				ips = ips[:pp.ips]
			}
			for ipIdx, addr := range ips {
				start := attack.DayStart(pk.day) + int64(rng.Intn(40000))
				dur := telescopeDuration(rng, true)
				intensity := telescopeIntensity(rng, true)
				if pk.intense {
					intensity = clampF(intensity*20, 1000, 30000)
				}
				planned = append(planned, PlannedAttack{
					Dataset: attack.SourceTelescope,
					Vector:  attack.VectorTCP, Target: addr,
					Start: start, Duration: dur, Intensity: intensity,
					Ports: []uint16{80}, IsWeb: true, Pool: poolFor(web, pp.name),
				})
				// Half the peak IPs are also hit by joint reflection.
				if ipIdx%2 == 0 {
					hpDur := honeypotDuration(rng)
					hpInt := honeypotIntensity(rng, attack.VectorNTP)
					if pk.intense {
						hpInt = clampF(hpInt*15, 2000, 60000)
					}
					planned = append(planned, PlannedAttack{
						Dataset: attack.SourceHoneypot,
						Vector:  attack.VectorNTP, Target: addr,
						Start: start + int64(rng.Intn(600)), Duration: hpDur,
						Intensity: hpInt, IsWeb: true, Pool: poolFor(web, pp.name),
					})
				}
			}
		}
	}

	// 6. Bulk-migration trigger attacks (Wix: >= 4 h, intense, Nov 4 2016;
	// eNom: long and intense). Durations matter for Fig. 11, which uses
	// honeypot durations only, so the trigger lives in the honeypot set.
	for _, tr := range web.BulkTriggers() {
		if tr.Day >= cfg.WindowDays {
			continue
		}
		start := attack.DayStart(tr.Day) + 3600
		dur := tr.MinDurationSec + int64(rng.Intn(7200))
		// The Wix trigger is the most intense reflection attack of the
		// window (its sites form the top intensity percentile of Fig. 10);
		// the eNom trigger is long but modest, so its 101-day migration
		// does not pollute the top band.
		hpIntensity := 600 + rng.Float64()*300
		if tr.PoolName == "Wix" {
			hpIntensity = 120000 + rng.Float64()*40000
		}
		planned = append(planned, PlannedAttack{
			Dataset: attack.SourceHoneypot, Vector: attack.VectorNTP,
			Target: tr.Addr, Start: start, Duration: dur,
			Intensity: hpIntensity,
			IsWeb:     true, Pool: poolFor(web, tr.PoolName),
		})
		planned = append(planned, PlannedAttack{
			Dataset: attack.SourceTelescope, Vector: attack.VectorTCP,
			Target: tr.Addr, Start: start + 300, Duration: dur / 2,
			Intensity: 3000 + rng.Float64()*5000,
			Ports:     []uint16{80}, IsWeb: true, Pool: poolFor(web, tr.PoolName),
		})
	}
	return planned
}

func poolFor(web *webmodel.Population, name string) int32 {
	if _, ok := web.PoolByName(name); !ok {
		return -1
	}
	// PoolByName returns a pointer; recover the index by matching names.
	for i := range web.Pools {
		if web.Pools[i].Name == name {
			return int32(i)
		}
	}
	return -1
}

// scheduleTarget lays the target's events out in time: events cluster on
// campaign days (several same-day repeats), campaigns span a few weeks
// around a home day drawn from the global daily-rate curve.
func scheduleTarget(rng *rand.Rand, cfg Config, days *daySampler, t *targetRec, planned []PlannedAttack) []PlannedAttack {
	home := days.sample(rng)
	var telEvents, hpEvents []int // indexes into planned
	if t.inTel {
		repeat := 1 + geom(rng, 0.8)
		if repeat > 4 {
			repeat = 4
		}
		telEvents = scheduleSet(rng, cfg, days, t, home, t.kTel, repeat, attack.SourceTelescope, &planned)
	}
	if t.inHp {
		repeat := 1 + geom(rng, 0.15)
		if repeat > 3 {
			repeat = 3
		}
		hpEvents = scheduleSet(rng, cfg, days, t, home, t.kHp, repeat, attack.SourceHoneypot, &planned)
	}
	// Joint targets get at least one overlapping pair: align one honeypot
	// event inside one telescope event.
	if t.joint && len(telEvents) > 0 && len(hpEvents) > 0 {
		te := &planned[telEvents[rng.Intn(len(telEvents))]]
		he := &planned[hpEvents[rng.Intn(len(hpEvents))]]
		span := te.Duration
		if span < 1 {
			span = 1
		}
		he.Start = te.Start + rng.Int63n(span)
	}
	return planned
}

func scheduleSet(rng *rand.Rand, cfg Config, days *daySampler, t *targetRec, home, k, repeat int, src attack.Source, planned *[]PlannedAttack) []int {
	if k <= 0 {
		return nil
	}
	m := (k + repeat - 1) / repeat
	var idxs []int
	for j := 0; j < m; j++ {
		day := home + int(rng.NormFloat64()*21)
		if t.wide {
			day = days.sample(rng)
		}
		if day < 0 {
			day = 0
		}
		if day >= cfg.WindowDays {
			day = cfg.WindowDays - 1
		}
		onDay := repeat
		if j == m-1 {
			onDay = k - repeat*(m-1)
		}
		for e := 0; e < onDay; e++ {
			start := attack.DayStart(day) + int64(rng.Intn(86400))
			var pa PlannedAttack
			if src == attack.SourceTelescope {
				vec := telescopeVector(rng, t.isWeb)
				ports := telescopePorts(rng, vec, t.isWeb, t.joint)
				if t.mail {
					// Mail clusters take SMTP(S)/IMAP floods.
					vec = attack.VectorTCP
					ports = []uint16{25}
					if rng.Float64() < 0.25 {
						ports = []uint16{25, 143, 587}
					}
				}
				pa = PlannedAttack{
					Dataset: src, Vector: vec, Target: t.addr,
					Start: start, Duration: telescopeDuration(rng, t.isWeb),
					Intensity: telescopeIntensity(rng, t.isWeb),
					Ports:     ports,
				}
			} else {
				vec := honeypotVector(rng, t.isWeb, t.joint)
				pa = PlannedAttack{
					Dataset: src, Vector: vec, Target: t.addr,
					Start: start, Duration: honeypotDuration(rng),
					Intensity: honeypotIntensity(rng, vec),
				}
			}
			// A small fraction of attacks on smaller Web hosters are
			// devastating: these sites populate the upper intensity
			// percentiles of §6 and migrate almost immediately (Fig. 10).
			if t.isWeb && !t.wide && rng.Float64() < 0.01 {
				if src == attack.SourceTelescope {
					pa.Intensity = clampF(logNormal(rng, 9.2, 1.0), 5000, 150000)
				} else {
					pa.Intensity = clampF(logNormal(rng, 8.8, 0.8), 2000, 100000)
				}
			}
			pa.IsWeb = t.isWeb
			pa.Pool = t.pool
			*planned = append(*planned, pa)
			idxs = append(idxs, len(*planned)-1)
		}
	}
	return idxs
}

// daySampler draws event days from the global daily-rate curve: a flat
// base with weekly periodicity, mild noise, and slight growth over the
// two years.
type daySampler struct {
	cum []float64
}

func newDaySampler(rng *rand.Rand, windowDays int) *daySampler {
	s := &daySampler{cum: make([]float64, windowDays)}
	total := 0.0
	for d := 0; d < windowDays; d++ {
		w := 1.0 +
			0.15*math.Sin(2*math.Pi*float64(d)/7) +
			0.10*float64(d)/float64(windowDays) +
			0.15*rng.Float64()
		total += w
		s.cum[d] = total
	}
	return s
}

func (s *daySampler) sample(rng *rand.Rand) int {
	x := rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// addrSampler picks target addresses, reusing already-attacked /24 blocks
// often enough to plant the paper's ~2.9 unique targets per attacked /24
// (6.34M targets in 2.19M blocks, one third of the active /24 space).
type addrSampler struct {
	plan   *ipmeta.Plan
	seen   map[netx.Addr]bool
	used24 map[ipmeta.Country][]netx.Addr
	// reuseP is the probability of landing in an already-attacked block.
	reuseP float64
}

func newAddrSampler(plan *ipmeta.Plan, seen map[netx.Addr]bool) *addrSampler {
	return &addrSampler{
		plan:   plan,
		seen:   seen,
		used24: make(map[ipmeta.Country][]netx.Addr),
		reuseP: 0.65,
	}
}

func (s *addrSampler) pick(rng *rand.Rand, cc string) (netx.Addr, bool) {
	country := ipmeta.CC(cc)
	for tries := 0; tries < 100; tries++ {
		var base netx.Addr
		if blocks := s.used24[country]; len(blocks) > 0 && rng.Float64() < s.reuseP {
			base = blocks[rng.Intn(len(blocks))]
		} else {
			blk, ok := s.plan.RandomActive24(rng, country)
			if !ok {
				return 0, false
			}
			base = blk.Base
			s.used24[country] = append(s.used24[country], base)
		}
		addr := base + netx.Addr(1+rng.Intn(254))
		if !s.seen[addr] {
			return addr, true
		}
	}
	return 0, false
}

func genericAddrInAS(rng *rand.Rand, plan *ipmeta.Plan, asn ipmeta.ASN, seen map[netx.Addr]bool) (netx.Addr, bool) {
	for tries := 0; tries < 100; tries++ {
		blk, ok := plan.RandomActive24InAS(rng, asn)
		if !ok {
			return 0, false
		}
		addr := blk.Base + netx.Addr(1+rng.Intn(254))
		if !seen[addr] {
			return addr, true
		}
	}
	return 0, false
}

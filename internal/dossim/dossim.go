// Package dossim generates the synthetic DoS ecosystem ground truth: two
// years of randomly spoofed and reflection attacks whose marginal
// distributions are calibrated to every statistic the paper reports
// (daily rates, per-target repetition, country mixes, protocol and port
// mixes, duration and intensity tails, joint-attack structure, Web-hoster
// peaks, and the migration behaviour of §6).
//
// The generator emits a list of planned attacks; the event-level path
// converts them directly into sensor events (applying the same acceptance
// filters the classifiers use), while the packet-level path synthesizes
// raw backscatter and reflection traffic and pushes it through the real
// telescope classifier and honeypot fleet. Both paths share the sampling
// code, so their distributions agree by construction.
package dossim

import (
	"fmt"
	"math/rand"
	"sort"

	"doscope/internal/amppot"
	"doscope/internal/attack"
	"doscope/internal/dps"
	"doscope/internal/ipmeta"
	"doscope/internal/netx"
	"doscope/internal/openintel"
	"doscope/internal/telescope"
	"doscope/internal/webmodel"
)

// Full-scale totals from Table 1, scaled by Config.Scale.
const (
	fullTelescopeEvents = 12.47e6
	fullHoneypotEvents  = 8.43e6
	fullTelescopeTgts   = 2.45e6
	fullHoneypotTgts    = 4.18e6
	fullCommonTargets   = 282e3
	fullJointTargets    = 137e3
)

// Config parameterizes scenario generation.
type Config struct {
	Seed int64
	// Scale multiplies the paper's full-scale totals. Default 0.001
	// (20.9 k events, 210 k domains); keep at or below ~0.01 on a laptop.
	Scale float64
	// WindowDays defaults to the paper's 731.
	WindowDays int
	// Plan and Web, when nil, are built with sizes matched to Scale.
	Plan *ipmeta.Plan
	Web  *webmodel.Population
	// PacketLevel routes planned attacks through the real telescope
	// classifier and honeypot fleet instead of constructing events
	// directly. Quadratically more expensive; intended for Scale <= 1e-5
	// equivalents (tests, examples).
	PacketLevel bool
	// Telescope and Honeypot, when both non-nil, are used as the
	// measured attack data sets directly (e.g. stores mmap'd from a
	// DOSEVT02 segment cache): attack planning and event synthesis are
	// skipped entirely and Scenario.Planned stays nil, while the Web
	// model (exposures, migrations, History) is still derived from the
	// provided events.
	Telescope *attack.Store
	Honeypot  *attack.Store
	// Telescope darknet used by both paths.
	Darknet netx.Prefix
}

func (c *Config) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 0.001
	}
	if c.WindowDays == 0 {
		c.WindowDays = attack.WindowDays
	}
	if c.Darknet == (netx.Prefix{}) {
		c.Darknet = netx.MustParsePrefix("44.0.0.0/8")
	}
}

// Scenario is a fully generated world plus the sensor-observed data sets.
type Scenario struct {
	Cfg  Config
	Plan *ipmeta.Plan
	Web  *webmodel.Population
	// Planned is the ground truth (before sensor filtering).
	Planned []PlannedAttack
	// Telescope and Honeypot are the measured attack-event data sets.
	Telescope *attack.Store
	Honeypot  *attack.Store
	// History is the OpenINTEL-equivalent DNS measurement data set,
	// derived after migrations were applied.
	History *openintel.History
	// Exposures record the per-domain attack summaries that drove
	// migration decisions (ground truth for validating §6 analyses).
	Exposures []webmodel.AttackExposure
}

// PlannedAttack is one ground-truth attack the generator scheduled.
type PlannedAttack struct {
	Dataset  attack.Source
	Vector   attack.Vector
	Target   netx.Addr
	Start    int64
	Duration int64
	// Intensity is max backscatter pps at the telescope for direct
	// attacks, or the average reflector request rate for reflection
	// attacks.
	Intensity float64
	Ports     []uint16
	IsWeb     bool
	Pool      int32 // webmodel pool index, -1 otherwise
}

// End returns the planned end time.
func (p *PlannedAttack) End() int64 { return p.Start + p.Duration }

// Generate builds the world, plans all attacks, runs them through the
// sensors, applies migrations, and derives the DNS measurement history.
func Generate(cfg Config) (*Scenario, error) {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	plan := cfg.Plan
	if plan == nil {
		var err error
		plan, err = ipmeta.BuildPlan(ipmeta.PlanConfig{
			Seed:        cfg.Seed + 1,
			NumActive24: scaledInt(6.5e6, cfg.Scale, 500),
			Telescope:   cfg.Darknet,
		})
		if err != nil {
			return nil, fmt.Errorf("dossim: building plan: %w", err)
		}
	}
	web := cfg.Web
	if web == nil {
		var err error
		web, err = webmodel.Build(webmodel.Config{
			Seed:       cfg.Seed + 2,
			NumDomains: scaledInt(webmodel.FullScaleDomains, cfg.Scale, 2000),
			Plan:       plan,
			WindowDays: cfg.WindowDays,
		}, nil)
		if err != nil {
			return nil, fmt.Errorf("dossim: building web model: %w", err)
		}
	}

	if err := web.BuildMail(cfg.Seed + 7); err != nil {
		return nil, fmt.Errorf("dossim: building mail model: %w", err)
	}
	sc := &Scenario{Cfg: cfg, Plan: plan, Web: web}
	if cfg.Telescope != nil && cfg.Honeypot != nil {
		// Pre-captured stores: skip planning and synthesis, the
		// dominant cost the segment cache exists to avoid.
		sc.Telescope, sc.Honeypot = cfg.Telescope, cfg.Honeypot
	} else {
		sc.Planned = planAttacks(rng, cfg, plan, web)
		if cfg.PacketLevel {
			tel, hp, err := runPacketLevel(cfg, sc.Planned)
			if err != nil {
				return nil, err
			}
			sc.Telescope, sc.Honeypot = tel, hp
		} else {
			sc.Telescope, sc.Honeypot = eventsFromPlan(cfg, sc.Planned)
		}
	}

	sc.Exposures = computeExposures(sc)
	web.ApplyMigrations(cfg.Seed+3, sc.Exposures)
	det := dps.NewDetector(plan)
	sc.History = openintel.FromWebModel(web, det, cfg.WindowDays)
	return sc, nil
}

func scaledInt(full, scale float64, min int) int {
	n := int(full * scale)
	if n < min {
		n = min
	}
	return n
}

// eventsFromPlan converts planned attacks into sensor events, applying the
// same acceptance rules the packet-level classifiers enforce.
func eventsFromPlan(cfg Config, planned []PlannedAttack) (tel, hp *attack.Store) {
	telCfg := telescope.DefaultConfig(cfg.Darknet)
	hpCfg := amppot.DefaultConfig()
	// Accumulate per-sensor batches and build each store with one
	// AddBatch: per-event Add now publishes a fresh store view every
	// call, which is pure overhead while the stores are still private.
	var telEvs, hpEvs []attack.Event
	for i := range planned {
		pa := &planned[i]
		if pa.Dataset == attack.SourceTelescope {
			packets := uint64(pa.Intensity * float64(pa.Duration) * 0.4)
			if packets < telCfg.MinPackets {
				packets = telCfg.MinPackets
			}
			if !telCfg.Accept(packets, pa.Duration, pa.Intensity) {
				continue
			}
			telEvs = append(telEvs, attack.Event{
				Source: attack.SourceTelescope, Vector: pa.Vector,
				Target: pa.Target, Start: pa.Start, End: pa.End(),
				Packets: packets, Bytes: packets * 60,
				MaxPPS: pa.Intensity, Ports: pa.Ports,
			})
			continue
		}
		requests := uint64(pa.Intensity * float64(pa.Duration))
		if requests <= hpCfg.MinRequests {
			requests = hpCfg.MinRequests + 1
		}
		if !hpCfg.Accept(requests) {
			continue
		}
		dur := pa.Duration
		if dur > hpCfg.MaxEventDuration {
			dur = hpCfg.MaxEventDuration
		}
		if dur < 1 {
			dur = 1
		}
		hpEvs = append(hpEvs, attack.Event{
			Source: attack.SourceHoneypot, Vector: pa.Vector,
			Target: pa.Target, Start: pa.Start, End: pa.Start + dur,
			Packets: requests, Bytes: requests * 40,
			AvgRPS: float64(requests) / float64(dur),
		})
	}
	return attack.NewStore(telEvs), attack.NewStore(hpEvs)
}

// computeExposures aggregates attacks per Web-hosting IP and expands them
// to the sites hosted there, producing the inputs of the migration model.
func computeExposures(sc *Scenario) []webmodel.AttackExposure {
	// Percentile-normalize intensities within each data set (§6, Table 9).
	telInt := make([]float64, 0, sc.Telescope.Len())
	for e := range sc.Telescope.Query().Iter() {
		telInt = append(telInt, e.MaxPPS)
	}
	hpInt := make([]float64, 0, sc.Honeypot.Len())
	for e := range sc.Honeypot.Query().Iter() {
		hpInt = append(hpInt, e.AvgRPS)
	}
	sort.Float64s(telInt)
	sort.Float64s(hpInt)
	pctOf := func(sorted []float64, v float64) float64 {
		if len(sorted) < 2 {
			return 1
		}
		i := sort.SearchFloat64s(sorted, v)
		return float64(i) / float64(len(sorted)-1)
	}

	type ipAgg struct {
		firstDay int
		maxPct   float64
		longest  int64
	}
	aggs := make(map[netx.Addr]*ipAgg)
	consider := func(target netx.Addr, day int, pct float64, dur int64) {
		if !sc.Web.HostsAnySite(target) {
			return
		}
		a := aggs[target]
		if a == nil {
			a = &ipAgg{firstDay: day}
			aggs[target] = a
		}
		if day < a.firstDay {
			a.firstDay = day
		}
		if pct > a.maxPct {
			a.maxPct = pct
		}
		if dur > a.longest {
			a.longest = dur
		}
	}
	for e := range sc.Telescope.Query().Iter() {
		consider(e.Target, e.Day(), pctOf(telInt, e.MaxPPS), e.Duration())
	}
	for e := range sc.Honeypot.Query().Iter() {
		consider(e.Target, e.Day(), pctOf(hpInt, e.AvgRPS), e.Duration())
	}

	var exposures []webmodel.AttackExposure
	for addr, agg := range aggs {
		sc.Web.ForEachSiteOn(addr, agg.firstDay, func(id uint32) {
			exposures = append(exposures, webmodel.AttackExposure{
				Domain:       id,
				FirstDay:     agg.firstDay,
				IntensityPct: agg.maxPct,
				LongestSecs:  agg.longest,
			})
		})
	}
	// Deterministic order for reproducible migration sampling.
	sort.Slice(exposures, func(i, j int) bool { return exposures[i].Domain < exposures[j].Domain })
	return exposures
}

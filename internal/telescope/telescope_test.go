package telescope

import (
	"testing"

	"doscope/internal/attack"
	"doscope/internal/netx"
	"doscope/internal/packet"
)

var darknet = netx.MustParsePrefix("44.0.0.0/8")

func darknetAddr(i uint32) netx.Addr {
	return darknet.First() + netx.Addr(i%uint32(darknet.NumAddrs()))
}

// synAck builds victim -> darknet TCP SYN/ACK backscatter from the given
// victim service port.
func synAck(t testing.TB, victim netx.Addr, fromPort uint16, dst netx.Addr) []byte {
	t.Helper()
	ip := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolTCP, Src: victim, Dst: dst}
	tcp := &packet.TCP{SrcPort: fromPort, DstPort: 30000, Flags: packet.TCPSyn | packet.TCPAck}
	tcp.SetNetworkLayer(victim, dst)
	buf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := packet.SerializeLayers(buf, opts, ip, tcp); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

func echoReply(t testing.TB, victim netx.Addr, dst netx.Addr) []byte {
	t.Helper()
	ip := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolICMP, Src: victim, Dst: dst}
	icmp := &packet.ICMPv4{Type: packet.ICMPEchoReply}
	buf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := packet.SerializeLayers(buf, opts, ip, icmp, packet.Payload([]byte("abcd"))); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

// unreachable builds router -> darknet ICMP dest-unreachable quoting a
// spoofed UDP attack packet darknetSrc -> victim:port.
func unreachable(t testing.TB, router, victim netx.Addr, port uint16, dst netx.Addr) []byte {
	t.Helper()
	quotedIP := &packet.IPv4{TTL: 4, Protocol: packet.ProtocolUDP, Src: dst, Dst: victim}
	quotedUDP := &packet.UDP{SrcPort: 40000, DstPort: port}
	quotedUDP.SetNetworkLayer(dst, victim)
	qbuf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := packet.SerializeLayers(qbuf, opts, quotedIP, quotedUDP); err != nil {
		t.Fatal(err)
	}
	ip := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolICMP, Src: router, Dst: dst}
	icmp := &packet.ICMPv4{Type: packet.ICMPDestUnreachable, Code: 1}
	buf := packet.NewSerializeBuffer()
	if err := packet.SerializeLayers(buf, opts, ip, icmp, packet.Payload(qbuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

// feedSynAckFlood pushes n SYN/ACK packets from victim spread over
// durationSec seconds.
func feedSynAckFlood(t testing.TB, c *Classifier, victim netx.Addr, port uint16, n int, start, durationSec int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		ts := start
		if n > 1 {
			ts += int64(i) * durationSec / int64(n-1)
		}
		pkt := synAck(t, victim, port, darknetAddr(uint32(i*7919)))
		if got := c.ProcessPacket(ts, pkt); got != KindBackscatter {
			t.Fatalf("packet %d classified %v, want backscatter", i, got)
		}
	}
}

func TestSynAckFloodBecomesEvent(t *testing.T) {
	c := New(DefaultConfig(darknet))
	victim := netx.MustParseAddr("203.0.113.80")
	feedSynAckFlood(t, c, victim, 80, 200, attack.WindowStart, 120)
	c.Flush()
	evs := c.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.Source != attack.SourceTelescope || e.Vector != attack.VectorTCP {
		t.Errorf("source/vector = %v/%v", e.Source, e.Vector)
	}
	if e.Target != victim {
		t.Errorf("target = %v", e.Target)
	}
	if e.Packets != 200 {
		t.Errorf("packets = %d", e.Packets)
	}
	if e.Duration() != 120 {
		t.Errorf("duration = %d", e.Duration())
	}
	if len(e.Ports) != 1 || e.Ports[0] != 80 {
		t.Errorf("ports = %v", e.Ports)
	}
	if !e.SinglePort() || !e.TargetsWeb() {
		t.Error("should be a single-port Web attack")
	}
	// 200 packets over 120s: ~100 packets in some minute -> ~1.67 pps
	if e.MaxPPS < 0.5 || e.MaxPPS > 4 {
		t.Errorf("MaxPPS = %v", e.MaxPPS)
	}
}

func TestMooreFilterDropsSmallFlows(t *testing.T) {
	cfg := DefaultConfig(darknet)

	// Fewer than 25 packets.
	c := New(cfg)
	feedSynAckFlood(t, c, netx.MustParseAddr("203.0.113.1"), 80, 24, attack.WindowStart, 120)
	c.Flush()
	if len(c.Events()) != 0 {
		t.Errorf("24-packet flow emitted %d events", len(c.Events()))
	}

	// Shorter than 60 seconds.
	c = New(cfg)
	feedSynAckFlood(t, c, netx.MustParseAddr("203.0.113.2"), 80, 100, attack.WindowStart, 30)
	c.Flush()
	if len(c.Events()) != 0 {
		t.Errorf("30s flow emitted %d events", len(c.Events()))
	}

	// Max packet rate below 0.5 pps: 30 packets over 30 minutes.
	c = New(cfg)
	feedSynAckFlood(t, c, netx.MustParseAddr("203.0.113.3"), 80, 30, attack.WindowStart, 290*6)
	c.Flush()
	if len(c.Events()) != 0 {
		t.Errorf("slow flow emitted %d events", len(c.Events()))
	}
}

func TestDisableFilterKeepsSmallFlows(t *testing.T) {
	cfg := DefaultConfig(darknet)
	cfg.DisableFilter = true
	c := New(cfg)
	feedSynAckFlood(t, c, netx.MustParseAddr("203.0.113.1"), 80, 5, attack.WindowStart, 10)
	c.Flush()
	if len(c.Events()) != 1 {
		t.Errorf("unfiltered events = %d, want 1", len(c.Events()))
	}
}

func TestFlowTimeoutSplitsEvents(t *testing.T) {
	c := New(DefaultConfig(darknet))
	victim := netx.MustParseAddr("203.0.113.9")
	feedSynAckFlood(t, c, victim, 80, 100, attack.WindowStart, 120)
	// Second burst beyond the 300s timeout after the first burst's end.
	feedSynAckFlood(t, c, victim, 80, 100, attack.WindowStart+120+301, 120)
	c.Flush()
	if len(c.Events()) != 2 {
		t.Fatalf("events = %d, want 2 (flow split)", len(c.Events()))
	}
}

func TestFlowGapWithinTimeoutMerges(t *testing.T) {
	c := New(DefaultConfig(darknet))
	victim := netx.MustParseAddr("203.0.113.9")
	feedSynAckFlood(t, c, victim, 80, 100, attack.WindowStart, 120)
	feedSynAckFlood(t, c, victim, 80, 100, attack.WindowStart+120+299, 120)
	c.Flush()
	if len(c.Events()) != 1 {
		t.Fatalf("events = %d, want 1 (merged)", len(c.Events()))
	}
	if got := c.Events()[0].Duration(); got != 120+299+120 {
		t.Errorf("merged duration = %d", got)
	}
}

func TestICMPEchoReplyFlood(t *testing.T) {
	c := New(DefaultConfig(darknet))
	victim := netx.MustParseAddr("198.51.100.5")
	for i := 0; i < 100; i++ {
		ts := attack.WindowStart + int64(i)
		if got := c.ProcessPacket(ts, echoReply(t, victim, darknetAddr(uint32(i*131)))); got != KindBackscatter {
			t.Fatalf("classified %v", got)
		}
	}
	c.Flush()
	evs := c.Events()
	if len(evs) != 1 || evs[0].Vector != attack.VectorICMP {
		t.Fatalf("events = %v", evs)
	}
	if len(evs[0].Ports) != 0 {
		t.Errorf("ICMP flood tracked ports %v", evs[0].Ports)
	}
}

func TestICMPUnreachableUsesQuotedPacket(t *testing.T) {
	c := New(DefaultConfig(darknet))
	victim := netx.MustParseAddr("198.51.100.77")
	router := netx.MustParseAddr("192.0.2.254")
	for i := 0; i < 100; i++ {
		ts := attack.WindowStart + int64(i)
		pkt := unreachable(t, router, victim, 53, darknetAddr(uint32(i*17)))
		if got := c.ProcessPacket(ts, pkt); got != KindBackscatter {
			t.Fatalf("classified %v", got)
		}
	}
	c.Flush()
	evs := c.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	e := evs[0]
	if e.Target != victim {
		t.Errorf("victim = %v, want quoted destination %v", e.Target, victim)
	}
	if e.Vector != attack.VectorUDP {
		t.Errorf("vector = %v, want UDP (quoted protocol)", e.Vector)
	}
	if len(e.Ports) != 1 || e.Ports[0] != 53 {
		t.Errorf("ports = %v, want [53]", e.Ports)
	}
}

func TestNonBackscatterIgnored(t *testing.T) {
	c := New(DefaultConfig(darknet))
	victim := netx.MustParseAddr("203.0.113.80")
	dst := darknetAddr(5)
	// Plain SYN (a scan) is not backscatter.
	ip := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolTCP, Src: victim, Dst: dst}
	tcp := &packet.TCP{SrcPort: 1234, DstPort: 80, Flags: packet.TCPSyn}
	tcp.SetNetworkLayer(victim, dst)
	buf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := packet.SerializeLayers(buf, opts, ip, tcp); err != nil {
		t.Fatal(err)
	}
	if got := c.ProcessPacket(attack.WindowStart, buf.Bytes()); got != KindIgnored {
		t.Errorf("SYN scan classified %v", got)
	}
	// Echo *request* (a ping scan) is not backscatter either.
	ip2 := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolICMP, Src: victim, Dst: dst}
	icmp := &packet.ICMPv4{Type: packet.ICMPEchoRequest}
	if err := packet.SerializeLayers(buf, opts, ip2, icmp); err != nil {
		t.Fatal(err)
	}
	if got := c.ProcessPacket(attack.WindowStart, buf.Bytes()); got != KindIgnored {
		t.Errorf("ping scan classified %v", got)
	}
	// UDP to the darknet is not backscatter.
	ip3 := &packet.IPv4{TTL: 60, Protocol: packet.ProtocolUDP, Src: victim, Dst: dst}
	udp := &packet.UDP{SrcPort: 1, DstPort: 2}
	udp.SetNetworkLayer(victim, dst)
	if err := packet.SerializeLayers(buf, opts, ip3, udp); err != nil {
		t.Fatal(err)
	}
	if got := c.ProcessPacket(attack.WindowStart, buf.Bytes()); got != KindIgnored {
		t.Errorf("UDP scan classified %v", got)
	}
}

func TestOutsideDarknetIgnored(t *testing.T) {
	c := New(DefaultConfig(darknet))
	pkt := synAck(t, netx.MustParseAddr("203.0.113.80"), 80, netx.MustParseAddr("9.9.9.9"))
	if got := c.ProcessPacket(attack.WindowStart, pkt); got != KindIgnored {
		t.Errorf("non-darknet packet classified %v", got)
	}
}

func TestMalformedPacket(t *testing.T) {
	c := New(DefaultConfig(darknet))
	if got := c.ProcessPacket(attack.WindowStart, []byte{0x45, 0x00}); got != KindMalformed {
		t.Errorf("classified %v", got)
	}
}

func TestMultiPortAttack(t *testing.T) {
	c := New(DefaultConfig(darknet))
	victim := netx.MustParseAddr("203.0.113.80")
	for i := 0; i < 120; i++ {
		port := uint16(80)
		if i%2 == 1 {
			port = 443
		}
		ts := attack.WindowStart + int64(i)
		c.ProcessPacket(ts, synAck(t, victim, port, darknetAddr(uint32(i))))
	}
	c.Flush()
	evs := c.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if len(evs[0].Ports) != 2 || evs[0].Ports[0] != 80 || evs[0].Ports[1] != 443 {
		t.Errorf("ports = %v", evs[0].Ports)
	}
	if evs[0].SinglePort() {
		t.Error("multi-port attack classified single-port")
	}
}

func TestPortOverflowForcesMultiPort(t *testing.T) {
	c := New(DefaultConfig(darknet))
	victim := netx.MustParseAddr("203.0.113.80")
	// More distinct ports than the tracker bound.
	for i := 0; i < 200; i++ {
		ts := attack.WindowStart + int64(i)
		c.ProcessPacket(ts, synAck(t, victim, uint16(1000+i), darknetAddr(uint32(i))))
	}
	c.Flush()
	evs := c.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].SinglePort() {
		t.Error("overflowed port tracker must not report single-port")
	}
}

func TestDominantProtocolWins(t *testing.T) {
	c := New(DefaultConfig(darknet))
	victim := netx.MustParseAddr("203.0.113.80")
	for i := 0; i < 150; i++ {
		ts := attack.WindowStart + int64(i)
		if i%3 == 0 {
			c.ProcessPacket(ts, echoReply(t, victim, darknetAddr(uint32(i))))
		} else {
			c.ProcessPacket(ts, synAck(t, victim, 80, darknetAddr(uint32(i))))
		}
	}
	c.Flush()
	evs := c.Events()
	if len(evs) != 1 || evs[0].Vector != attack.VectorTCP {
		t.Fatalf("dominant vector = %v", evs)
	}
}

func TestSweepExpiresIdleFlows(t *testing.T) {
	cfg := DefaultConfig(darknet)
	c := New(cfg)
	c.sweepEvery = 10
	victim := netx.MustParseAddr("203.0.113.80")
	feedSynAckFlood(t, c, victim, 80, 100, attack.WindowStart, 120)
	if c.OpenFlows() != 1 {
		t.Fatalf("open flows = %d", c.OpenFlows())
	}
	// Traffic for a different victim far in the future triggers a sweep.
	other := netx.MustParseAddr("198.51.100.1")
	for i := 0; i < 30; i++ {
		ts := attack.WindowStart + 10000 + int64(i)
		c.ProcessPacket(ts, synAck(t, other, 443, darknetAddr(uint32(i))))
	}
	if c.OpenFlows() != 1 {
		t.Errorf("idle flow not swept: open = %d", c.OpenFlows())
	}
	if len(c.Events()) != 1 {
		t.Errorf("swept flow did not emit event: %d", len(c.Events()))
	}
}

func TestMaxPPSPerMinute(t *testing.T) {
	cfg := DefaultConfig(darknet)
	c := New(cfg)
	victim := netx.MustParseAddr("203.0.113.80")
	// 60 packets in the first minute, then 1 per minute for 5 minutes.
	ts := attack.WindowStart
	for i := 0; i < 60; i++ {
		c.ProcessPacket(ts+int64(i), synAck(t, victim, 80, darknetAddr(uint32(i))))
	}
	for i := 1; i <= 5; i++ {
		c.ProcessPacket(ts+int64(i*60), synAck(t, victim, 80, darknetAddr(uint32(i))))
	}
	c.Flush()
	evs := c.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if got := evs[0].MaxPPS; got != 1.0 {
		t.Errorf("MaxPPS = %v, want 1.0 (60 packets in the first minute)", got)
	}
}

func TestAcceptSharedFilter(t *testing.T) {
	cfg := DefaultConfig(darknet)
	if !cfg.Accept(25, 60, 0.5) {
		t.Error("boundary values must pass")
	}
	if cfg.Accept(24, 60, 0.5) || cfg.Accept(25, 59, 0.5) || cfg.Accept(25, 60, 0.49) {
		t.Error("sub-threshold values must fail")
	}
	cfg.DisableFilter = true
	if !cfg.Accept(0, 0, 0) {
		t.Error("disabled filter must accept everything")
	}
}

func BenchmarkClassifierPacketLevel(b *testing.B) {
	c := New(DefaultConfig(darknet))
	victim := netx.MustParseAddr("203.0.113.80")
	pkt := synAck(b, victim, 80, darknetAddr(12345))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ProcessPacket(attack.WindowStart+int64(i/100), pkt)
	}
}

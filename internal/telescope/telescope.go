// Package telescope implements the UCSD Network Telescope substrate: a
// darknet packet classifier that infers randomly spoofed DoS attacks from
// backscatter, following the Moore et al. methodology the paper implements
// as a Corsaro plugin (§3.1.1).
//
// The three-step process is reproduced faithfully: (1) identify and
// extract backscatter packets (TCP SYN/ACK and RST, ICMP Echo Reply,
// Destination Unreachable, Source Quench, Redirect, Time Exceeded,
// Parameter Problem, Timestamp/Information/Address-Mask Reply); (2)
// aggregate related packets into per-victim attack flows expired with a
// conservative 300 s timeout; (3) classify and filter attacks, discarding
// those with fewer than 25 packets, shorter than 60 s, or a maximum
// per-minute packet rate below 0.5 pps.
package telescope

import (
	"doscope/internal/attack"
	"doscope/internal/netx"
	"doscope/internal/packet"
)

// Config parameterizes the classifier. The defaults are the paper's.
type Config struct {
	// Prefix is the darknet; packets destined elsewhere are ignored.
	Prefix netx.Prefix
	// FlowTimeout (seconds) expires idle victim flows. Default 300.
	FlowTimeout int64
	// MinPackets, MinDuration (seconds) and MinMaxPPS are the Moore et al.
	// low-intensity filter thresholds. Defaults 25, 60, 0.5.
	MinPackets  uint64
	MinDuration int64
	MinMaxPPS   float64
	// DisableFilter keeps all flows as events regardless of thresholds
	// (for the ablation study).
	DisableFilter bool
}

// DefaultConfig returns the paper's parameters with the given darknet.
func DefaultConfig(darknet netx.Prefix) Config {
	return Config{
		Prefix:      darknet,
		FlowTimeout: 300,
		MinPackets:  25,
		MinDuration: 60,
		MinMaxPPS:   0.5,
	}
}

func (c *Config) applyDefaults() {
	if c.FlowTimeout == 0 {
		c.FlowTimeout = 300
	}
	if c.MinPackets == 0 {
		c.MinPackets = 25
	}
	if c.MinDuration == 0 {
		c.MinDuration = 60
	}
	if c.MinMaxPPS == 0 {
		c.MinMaxPPS = 0.5
	}
}

// Accept applies the Moore et al. attack filter to flow-level aggregates.
// The event-level simulation fast path uses it so both fidelity levels
// share one filtering rule.
func (c Config) Accept(packets uint64, duration int64, maxPPS float64) bool {
	if c.DisableFilter {
		return true
	}
	c.applyDefaults()
	return packets >= c.MinPackets && duration >= c.MinDuration && maxPPS >= c.MinMaxPPS
}

// PacketKind is the classification of one darknet packet.
type PacketKind uint8

// Classifications returned by ProcessPacket.
const (
	KindIgnored     PacketKind = iota // not backscatter (scan, junk, outside darknet)
	KindBackscatter                   // counted into a victim flow
	KindMalformed                     // undecodable IPv4
)

// Classifier consumes a time-ordered stream of darknet packets and emits
// attack events. It is not safe for concurrent use; shard by victim if
// parallel classification is needed.
type Classifier struct {
	cfg    Config
	flows  map[netx.Addr]*flow
	events []attack.Event

	// scratch decoding state (allocation-free hot path)
	ip   packet.IPv4
	tcp  packet.TCP
	icmp packet.ICMPv4
	inIP packet.IPv4
	inl4 [4]byte

	packetsSeen uint64
	sweepEvery  uint64
}

// New returns a Classifier with the given configuration.
func New(cfg Config) *Classifier {
	cfg.applyDefaults()
	return &Classifier{
		cfg:        cfg,
		flows:      make(map[netx.Addr]*flow),
		sweepEvery: 8192,
	}
}

type flow struct {
	start, last  int64
	packets      uint64
	bytes        uint64
	protoCount   [4]uint64 // TCP, UDP, ICMP, Other
	ports        map[uint16]struct{}
	morePorts    bool
	curMinute    int64
	curMinuteCnt uint64
	maxMinuteCnt uint64
}

// ProcessPacket classifies one raw IPv4 packet captured at unix time ts.
// Packets must arrive in non-decreasing timestamp order.
func (c *Classifier) ProcessPacket(ts int64, data []byte) PacketKind {
	c.packetsSeen++
	if c.packetsSeen%c.sweepEvery == 0 {
		c.sweep(ts)
	}
	if err := c.ip.DecodeFromBytes(data); err != nil {
		return KindMalformed
	}
	if !c.cfg.Prefix.Contains(c.ip.Dst) {
		return KindIgnored
	}
	victim, vec, port, hasPort, ok := c.classifyBackscatter()
	if !ok {
		return KindIgnored
	}
	c.observe(ts, victim, vec, port, hasPort, uint64(len(data)))
	return KindBackscatter
}

// classifyBackscatter implements step (1): decide whether the decoded
// packet is a response packet, and if so extract the victim address, the
// flooding protocol and the attacked port.
func (c *Classifier) classifyBackscatter() (victim netx.Addr, vec attack.Vector, port uint16, hasPort, ok bool) {
	switch c.ip.Protocol {
	case packet.ProtocolTCP:
		if c.tcp.DecodeFromBytes(c.ip.Payload()) != nil {
			return 0, 0, 0, false, false
		}
		isSynAck := c.tcp.Flags&(packet.TCPSyn|packet.TCPAck) == packet.TCPSyn|packet.TCPAck
		isRst := c.tcp.Flags&packet.TCPRst != 0
		if !isSynAck && !isRst {
			return 0, 0, 0, false, false
		}
		// The victim's attacked service port is the source port of its
		// SYN/ACK or RST backscatter.
		return c.ip.Src, attack.VectorTCP, c.tcp.SrcPort, true, true
	case packet.ProtocolICMP:
		if c.icmp.DecodeFromBytes(c.ip.Payload()) != nil {
			return 0, 0, 0, false, false
		}
		switch c.icmp.Type {
		case packet.ICMPEchoReply, packet.ICMPTimestampReply,
			packet.ICMPInfoReply, packet.ICMPAddressMaskReply:
			// Direct responses from the victim itself: an ICMP flood.
			return c.ip.Src, attack.VectorICMP, 0, false, true
		case packet.ICMPDestUnreachable, packet.ICMPSourceQuench,
			packet.ICMPRedirect, packet.ICMPTimeExceeded,
			packet.ICMPParameterProblem:
			// Error messages may originate at routers; the victim is the
			// destination of the quoted offending packet, and we register
			// the quoted packet's protocol (§4, Table 5).
			if c.inIP.DecodeFromBytes(c.icmp.Payload()) != nil {
				return 0, 0, 0, false, false
			}
			vec := attack.VectorOtherIP
			var qPort uint16
			var qHas bool
			switch c.inIP.Protocol {
			case packet.ProtocolTCP, packet.ProtocolUDP:
				if c.inIP.Protocol == packet.ProtocolTCP {
					vec = attack.VectorTCP
				} else {
					vec = attack.VectorUDP
				}
				// Only the first 8 payload bytes are guaranteed quoted:
				// enough for the port pair.
				pl := c.inIP.Payload()
				if len(pl) >= 4 {
					copy(c.inl4[:], pl[:4])
					qPort = uint16(c.inl4[2])<<8 | uint16(c.inl4[3]) // destination port
					qHas = true
				}
			case packet.ProtocolICMP:
				vec = attack.VectorICMP
			}
			return c.inIP.Dst, vec, qPort, qHas, true
		}
		return 0, 0, 0, false, false
	default:
		return 0, 0, 0, false, false
	}
}

// Observe records a pre-classified backscatter observation. The
// packet-level path funnels into it; tests and the event-level simulator
// may call it directly.
func (c *Classifier) Observe(ts int64, victim netx.Addr, vec attack.Vector, port uint16, hasPort bool, bytes uint64) {
	c.packetsSeen++
	if c.packetsSeen%c.sweepEvery == 0 {
		c.sweep(ts)
	}
	c.observe(ts, victim, vec, port, hasPort, bytes)
}

func (c *Classifier) observe(ts int64, victim netx.Addr, vec attack.Vector, port uint16, hasPort bool, bytes uint64) {
	f := c.flows[victim]
	if f != nil && ts-f.last > c.cfg.FlowTimeout {
		c.closeFlow(victim, f)
		f = nil
	}
	if f == nil {
		f = &flow{start: ts, curMinute: ts / 60, ports: make(map[uint16]struct{}, 4)}
		c.flows[victim] = f
	}
	f.last = ts
	f.packets++
	f.bytes += bytes
	switch vec {
	case attack.VectorTCP:
		f.protoCount[0]++
	case attack.VectorUDP:
		f.protoCount[1]++
	case attack.VectorICMP:
		f.protoCount[2]++
	default:
		f.protoCount[3]++
	}
	if hasPort {
		if _, seen := f.ports[port]; !seen {
			if len(f.ports) < attack.MaxTrackedPorts {
				f.ports[port] = struct{}{}
			} else {
				f.morePorts = true
			}
		}
	}
	min := ts / 60
	if min != f.curMinute {
		if f.curMinuteCnt > f.maxMinuteCnt {
			f.maxMinuteCnt = f.curMinuteCnt
		}
		f.curMinute = min
		f.curMinuteCnt = 0
	}
	f.curMinuteCnt++
}

func (c *Classifier) sweep(now int64) {
	for victim, f := range c.flows {
		if now-f.last > c.cfg.FlowTimeout {
			c.closeFlow(victim, f)
		}
	}
}

func (c *Classifier) closeFlow(victim netx.Addr, f *flow) {
	delete(c.flows, victim)
	if f.curMinuteCnt > f.maxMinuteCnt {
		f.maxMinuteCnt = f.curMinuteCnt
	}
	duration := f.last - f.start
	maxPPS := float64(f.maxMinuteCnt) / 60
	if !c.cfg.Accept(f.packets, duration, maxPPS) {
		return
	}
	// Dominant protocol decides the event vector.
	vec := attack.VectorTCP
	best := f.protoCount[0]
	for i, v := range []attack.Vector{attack.VectorUDP, attack.VectorICMP, attack.VectorOtherIP} {
		if f.protoCount[i+1] > best {
			best = f.protoCount[i+1]
			vec = v
		}
	}
	ports := make([]uint16, 0, len(f.ports))
	for p := range f.ports {
		ports = append(ports, p)
	}
	sortPorts(ports)
	if f.morePorts && len(ports) == 1 {
		// Distinct ports overflowed the tracker: force multi-port.
		ports = append(ports, ports[0]+1)
	}
	c.events = append(c.events, attack.Event{
		Source:  attack.SourceTelescope,
		Vector:  vec,
		Target:  victim,
		Start:   f.start,
		End:     f.last,
		Packets: f.packets,
		Bytes:   f.bytes,
		MaxPPS:  maxPPS,
		Ports:   ports,
	})
}

func sortPorts(p []uint16) {
	// Insertion sort: port lists are tiny (<= MaxTrackedPorts).
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j] < p[j-1]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

// Flush closes all open flows, emitting their events. Call once the input
// stream ends.
func (c *Classifier) Flush() {
	for victim, f := range c.flows {
		c.closeFlow(victim, f)
	}
}

// Events returns the attack events emitted so far.
func (c *Classifier) Events() []attack.Event { return c.events }

// Store returns the events emitted so far as an indexed attack.Store,
// the form the fusion pipeline and CLIs query.
func (c *Classifier) Store() *attack.Store { return attack.NewStore(c.events) }

// OpenFlows returns the number of victims with unclosed flows.
func (c *Classifier) OpenFlows() int { return len(c.flows) }

package federation

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"doscope/internal/attack"
	"doscope/internal/faultnet"
)

// benchSite serves a store of n random events on loopback and returns
// a client; the same store is returned for local baselines.
func benchSite(b *testing.B, n int) (*RemoteStore, *attack.Store) {
	b.Helper()
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(71)), n))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	go NewServer(st).Serve(l)
	r := Dial(l.Addr().String())
	b.Cleanup(func() { r.Close() })
	return r, st
}

const benchEvents = 20000

// BenchmarkFederatedCount is the index-partial path the federation
// protocol exists for: a counting plan crosses the wire as 20 bytes and
// comes back as 8 — per-op cost is one round trip plus an index lookup,
// independent of the site's event count.
func BenchmarkFederatedCount(b *testing.B) {
	r, _ := benchSite(b, benchEvents)
	fed := attack.QueryBackends(r).Source(attack.SourceHoneypot).Days(0, 364)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Count(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_, recv := r.WireBytes()
	b.ReportMetric(float64(recv)/float64(b.N), "wire-B/op")
}

// BenchmarkFederatedCountSegmentShip is the strawman the counting path
// is measured against: ship the site's whole capture as a DOSEVT02
// segment and count client-side. Same answer, O(events) bytes and time.
func BenchmarkFederatedCountSegmentShip(b *testing.B) {
	r, _ := benchSite(b, benchEvents)
	plan := attack.QueryBackends(r).Source(attack.SourceHoneypot).Days(0, 364).Plan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, closer, err := r.PlanStore(attack.PlanAll())
		if err != nil {
			b.Fatal(err)
		}
		if n := plan.Query(st).Count(); n < 0 {
			b.Fatal("impossible")
		}
		closer.Close()
	}
	b.StopTimer()
	_, recv := r.WireBytes()
	b.ReportMetric(float64(recv)/float64(b.N), "wire-B/op")
}

// BenchmarkFederatedCountOneSiteDown prices degraded-mode queries with
// one of three sites blackholed: every CountPartial answers from the
// two healthy sites either way, but without the breaker each op also
// pays the dead site's full request timeout, while with it the site is
// rejected in memory after the opening failure. The gap between the
// two sub-benchmarks is what the breaker buys.
func BenchmarkFederatedCountOneSiteDown(b *testing.B) {
	const deadTimeout = 25 * time.Millisecond
	run := func(b *testing.B, breaker Option) {
		r1, _ := benchSite(b, benchEvents/10)
		r2, _ := benchSite(b, benchEvents/10)
		// The dead site: a blackhole proxy — dials succeed, requests
		// vanish — so only the request deadline detects the outage.
		proxy, err := faultnet.Listen("127.0.0.1:9", faultnet.Faults{Blackhole: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { proxy.Close() })
		dead := Dial(proxy.Addr(),
			WithAttempts(1),
			WithDialTimeout(deadTimeout),
			WithRequestTimeout(deadTimeout),
			WithHealthProbe(0),
			breaker)
		b.Cleanup(func() { dead.Close() })
		fed := attack.QueryBackends(r1, r2, dead)
		// One warm-up op outside the timer: it trips the breaker (when
		// enabled) so the loop measures the steady degraded state.
		if _, _, err := fed.CountPartial(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, statuses, err := fed.CountPartial()
			if err != nil {
				b.Fatal(err)
			}
			if !attack.Degraded(statuses) {
				b.Fatal("blackholed site did not degrade the count")
			}
		}
	}
	b.Run("breaker", func(b *testing.B) { run(b, WithBreaker(1, time.Hour)) })
	b.Run("no-breaker", func(b *testing.B) { run(b, WithBreaker(0, 0)) })
}

// BenchmarkFederatedFetchOpen measures the iteration-terminal path: a
// filtered fetch shipped as a segment and opened zero-copy.
func BenchmarkFederatedFetchOpen(b *testing.B) {
	r, _ := benchSite(b, benchEvents)
	plan := attack.QueryBackends(r).Source(attack.SourceHoneypot).Plan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, closer, err := r.PlanStore(plan)
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() == 0 {
			b.Fatal("empty fetch")
		}
		closer.Close()
	}
}

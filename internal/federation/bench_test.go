package federation

import (
	"math/rand"
	"net"
	"testing"

	"doscope/internal/attack"
)

// benchSite serves a store of n random events on loopback and returns
// a client; the same store is returned for local baselines.
func benchSite(b *testing.B, n int) (*RemoteStore, *attack.Store) {
	b.Helper()
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(71)), n))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	go NewServer(st).Serve(l)
	r := Dial(l.Addr().String())
	b.Cleanup(func() { r.Close() })
	return r, st
}

const benchEvents = 20000

// BenchmarkFederatedCount is the index-partial path the federation
// protocol exists for: a counting plan crosses the wire as 20 bytes and
// comes back as 8 — per-op cost is one round trip plus an index lookup,
// independent of the site's event count.
func BenchmarkFederatedCount(b *testing.B) {
	r, _ := benchSite(b, benchEvents)
	fed := attack.QueryBackends(r).Source(attack.SourceHoneypot).Days(0, 364)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Count(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_, recv := r.WireBytes()
	b.ReportMetric(float64(recv)/float64(b.N), "wire-B/op")
}

// BenchmarkFederatedCountSegmentShip is the strawman the counting path
// is measured against: ship the site's whole capture as a DOSEVT02
// segment and count client-side. Same answer, O(events) bytes and time.
func BenchmarkFederatedCountSegmentShip(b *testing.B) {
	r, _ := benchSite(b, benchEvents)
	plan := attack.QueryBackends(r).Source(attack.SourceHoneypot).Days(0, 364).Plan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, closer, err := r.PlanStore(attack.PlanAll())
		if err != nil {
			b.Fatal(err)
		}
		if n := plan.Query(st).Count(); n < 0 {
			b.Fatal("impossible")
		}
		closer.Close()
	}
	b.StopTimer()
	_, recv := r.WireBytes()
	b.ReportMetric(float64(recv)/float64(b.N), "wire-B/op")
}

// BenchmarkFederatedFetchOpen measures the iteration-terminal path: a
// filtered fetch shipped as a segment and opened zero-copy.
func BenchmarkFederatedFetchOpen(b *testing.B) {
	r, _ := benchSite(b, benchEvents)
	plan := attack.QueryBackends(r).Source(attack.SourceHoneypot).Plan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, closer, err := r.PlanStore(plan)
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() == 0 {
			b.Fatal("empty fetch")
		}
		closer.Close()
	}
}

package federation

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"doscope/internal/attack"
)

// Server exposes one site's attack store to federation clients. Each
// accepted connection is a sequential request/response stream: the
// client ships a compiled attack.Plan, the server executes it against
// the store and replies with either an index partial (counting
// terminals) or a DOSEVT02 segment of the matching events (fetch).
//
// A server fronts a live store — one still absorbing ingest, e.g. the
// cmd/amppot flush pipeline — with no locking at all: attack.Store
// reads are lock-free against the store's published view, so every
// handler sees a consistent whole-mutation prefix of the capture,
// concurrent handlers never serialize against each other, and serving
// never blocks (or is blocked by) the writer. Counting plans answer
// from the incrementally maintained indexes plus pending-tail scans
// without forcing a seal, so serving never re-sorts a capture
// mid-ingest.
type Server struct {
	store *attack.Store

	mu     sync.Mutex // guards conns/closed, NOT the store
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a store for serving. The store needs no external
// synchronization — its query paths are safe against a concurrent
// writer — so a server can front the same live store the ingest
// pipeline is appending to.
func NewServer(st *attack.Store) *Server {
	return &Server{store: st, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener closes, handling each on
// its own goroutine; handlers run concurrently. It returns nil when the
// listener is closed. Transient Accept failures — EMFILE-style resource
// exhaustion, aborted handshakes, anything the listener reports as a
// temporary net.Error — are retried with capped exponential backoff
// (5ms doubling to 1s, the net/http.Server discipline) instead of
// killing the accept loop and silently taking the site offline.
func (s *Server) Serve(l net.Listener) error {
	var tempDelay time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			var ne net.Error
			//lint:ignore SA1019 Temporary is how listeners still signal
			// EMFILE/ECONNABORTED-style transience; net/http does the same.
			if errors.As(err, &ne) && ne.Temporary() { //nolint:staticcheck
				if tempDelay == 0 {
					tempDelay = 5 * time.Millisecond
				} else {
					tempDelay *= 2
				}
				if tempDelay > time.Second {
					tempDelay = time.Second
				}
				time.Sleep(tempDelay)
				continue
			}
			return err
		}
		tempDelay = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Shutdown stops serving: it closes every active connection (unblocking
// handlers parked in a read) and waits for all in-flight handlers to
// return. Close the listener first so no new connections arrive, then
// call Shutdown before any final mutation or capture write whose
// output must not be observable mid-flight — the cmd/amppot shutdown
// sequence.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// handle serves one connection's request frames until the peer closes
// or a frame fails to parse (after a best-effort error frame).
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		typ, payload, err := readFrame(br, maxReqPayload)
		if err != nil {
			// io.EOF: the peer is done. Anything else: tell it why
			// before hanging up; the stream cannot be resynchronized.
			if !errors.Is(err, io.EOF) {
				_ = writeFrame(conn, typeRespError, []byte(err.Error()))
			}
			return
		}
		respType, resp, err := s.execute(typ, payload)
		if err != nil {
			_ = writeFrame(conn, typeRespError, []byte(err.Error()))
			return
		}
		if err := writeFrame(conn, respType, resp); err != nil {
			return
		}
	}
}

// execute runs one decoded request against the store — a lock-free
// read against its published view — and returns the response frame.
func (s *Server) execute(typ byte, payload []byte) (respType byte, resp []byte, err error) {
	if typ == typeReqVersion {
		// Plan-less request: the store's mutation counter, which clients
		// (e.g. the HTTP front end's response cache) compare across
		// requests to detect ingest instead of re-executing plans.
		if len(payload) != 0 {
			return 0, nil, fmt.Errorf("federation: version request carries %d payload bytes, want 0", len(payload))
		}
		resp = binary.LittleEndian.AppendUint64(nil, s.store.Version())
		return typeRespVersion, resp, nil
	}
	p, err := attack.DecodePlan(payload)
	if err != nil {
		return 0, nil, err
	}
	switch typ {
	case typeReqCount:
		n := p.Query(s.store).Count()
		resp = binary.LittleEndian.AppendUint64(nil, uint64(n))
		return typeRespCount, resp, nil
	case typeReqCountByVector:
		counts := p.Query(s.store).CountByVector()
		resp = make([]byte, 0, 8*attack.NumVectors)
		for _, n := range counts {
			resp = binary.LittleEndian.AppendUint64(resp, uint64(n))
		}
		return typeRespCountByVector, resp, nil
	case typeReqCountByDay:
		counts := p.Query(s.store).CountByDay()
		resp = make([]byte, 0, 8*attack.WindowDays)
		for _, n := range counts {
			resp = binary.LittleEndian.AppendUint64(resp, uint64(n))
		}
		return typeRespCountByDay, resp, nil
	case typeReqFetch:
		// Iteration terminals are the one case events cross the wire:
		// the matching subset leaves as a DOSEVT02 segment. An
		// unfiltered plan ships the store verbatim, skipping the copy.
		st := s.store
		if !p.All() {
			st = p.Query(s.store).Collect()
		}
		var buf bytes.Buffer
		if err := st.WriteSegment(&buf); err != nil {
			return 0, nil, err
		}
		if buf.Len() > maxRespPayload {
			return 0, nil, fmt.Errorf("federation: segment of %d bytes exceeds the %d-byte frame limit; narrow the plan", buf.Len(), maxRespPayload)
		}
		return typeRespSegment, buf.Bytes(), nil
	default:
		return 0, nil, fmt.Errorf("federation: unknown request type %#x", typ)
	}
}

// Listen opens a federation listener on addr: a unix socket when addr
// contains a path separator (any stale socket file is removed first),
// TCP otherwise.
func Listen(addr string) (net.Listener, error) {
	network := netKind(addr)
	if network == "unix" {
		_ = os.Remove(addr)
	}
	return net.Listen(network, addr)
}

// netKind maps an address to its network: paths are unix sockets,
// host:port pairs are TCP.
func netKind(addr string) string {
	if strings.ContainsRune(addr, '/') {
		return "unix"
	}
	return "tcp"
}

package federation

import (
	"fmt"
	"sync"
	"time"

	"doscope/internal/attack"
)

// ErrCircuitOpen is the error a RemoteStore returns — wrapped with the
// site address — when its circuit breaker rejects a request without
// touching the network. It wraps attack.ErrBackendSkipped, so
// degraded-mode federated terminals classify the site as skipped (known
// dead, cost nothing) rather than failed (tried and broke).
var ErrCircuitOpen = fmt.Errorf("circuit open: %w", attack.ErrBackendSkipped)

// BreakerState is one circuit-breaker state.
type BreakerState uint8

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are rejected immediately with
	// ErrCircuitOpen until the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen: the cool-down elapsed; exactly one probe request
	// is allowed through. Success closes the breaker, failure reopens
	// it for another cool-down.
	BreakerHalfOpen
)

// String returns the JSON-friendly state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", uint8(s))
}

// BreakerStatus is a point-in-time breaker snapshot for ops surfaces
// (the HTTP front end's /healthz and /v1/stats).
type BreakerStatus struct {
	State    BreakerState
	Failures int // consecutive failures since the last success
}

// breaker is the per-site circuit breaker: threshold consecutive
// failures open it, a cool-down later one request probes half-open, and
// one success closes it again. Without it a dead site costs every
// federated query attempts×(dial timeout + backoff); with it the site
// costs one in-memory check until it heals.
//
// The clock is injectable for deterministic state-machine tests. All
// methods are safe for concurrent use — the breaker is the one piece of
// RemoteStore state shared by requests, the background health prober,
// and ops snapshots.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may proceed. In the open state it
// rejects with ErrCircuitOpen until the cool-down elapses, then admits
// exactly one request as the half-open probe; concurrent requests keep
// being rejected until that probe settles.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	default: // BreakerHalfOpen
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// success records a completed request: any success closes the breaker
// and clears the failure run, whatever state it was in.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// failure records a failed request and reports whether the breaker is
// now open. A half-open probe failure reopens for another cool-down; a
// closed-state failure opens once the consecutive run reaches the
// threshold.
func (b *breaker) failure() (open bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
	case BreakerClosed:
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	}
	return b.state == BreakerOpen
}

// status snapshots the breaker for ops surfaces.
func (b *breaker) status() BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStatus{State: b.state, Failures: b.failures}
}

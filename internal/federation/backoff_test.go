package federation

import (
	"math/rand"
	"testing"
	"time"

	"doscope/internal/attack"
)

// TestBackoffCappedAndJittered pins the retry-delay policy: the
// doubling schedule must never exceed the cap (the unbounded
// r.backoff<<(attempt-1) growth was a bug under large WithAttempts),
// must never go negative (shift overflow), and must keep at least half
// of the nominal delay so jitter cannot collapse the schedule into a
// tight retry loop.
func TestBackoffCappedAndJittered(t *testing.T) {
	r := Dial("127.0.0.1:1",
		WithBackoff(50*time.Millisecond),
		WithMaxBackoff(2*time.Second))
	for attempt := 1; attempt <= 200; attempt++ {
		nominal := 50 * time.Millisecond << (attempt - 1)
		if attempt-1 >= 62 || nominal <= 0 || nominal > 2*time.Second {
			nominal = 2 * time.Second
		}
		for i := 0; i < 20; i++ {
			d := r.backoffFor(attempt)
			if d < nominal/2 || d > nominal {
				t.Fatalf("backoffFor(%d) = %v, want in [%v, %v]", attempt, d, nominal/2, nominal)
			}
		}
	}
}

// TestBackoffJitterSpreads asserts the delays are actually randomized:
// identical clients must not retry on the same schedule.
func TestBackoffJitterSpreads(t *testing.T) {
	r := Dial("127.0.0.1:1", WithBackoff(time.Second), WithMaxBackoff(time.Second))
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		seen[r.backoffFor(1)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 jittered delays collapsed to %d distinct value(s)", len(seen))
	}
}

// TestRemoteVersion exercises the DOSFED01 version request: it must
// track the site store's mutation counter across ingest, the 8-byte
// validation handle the HTTP response cache keys federated entries on.
func TestRemoteVersion(t *testing.T) {
	st := &attack.Store{}
	r := startSite(t, st)
	v0, err := r.Version()
	if err != nil {
		t.Fatal(err)
	}
	if v0 != st.Version() {
		t.Fatalf("remote version %d, store version %d", v0, st.Version())
	}
	st.AddBatch(randomEvents(rand.New(rand.NewSource(11)), 100))
	v1, err := r.Version()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != st.Version() || v1 == v0 {
		t.Fatalf("after ingest: remote version %d, store version %d (was %d)", v1, st.Version(), v0)
	}
}

// TestRemoteVersionTickPublished pins what the version frame reports
// for a site ingesting in queued mode: the PUBLISHED version — batches
// sitting in the ingest queue do not move it, the drain tick does. A
// federation client (and the HTTP response cache keyed on this handle)
// therefore invalidates exactly when the site's visible state changed,
// once per tick, not per enqueued mutation.
func TestRemoteVersionTickPublished(t *testing.T) {
	st := &attack.Store{}
	st.StartIngest(attack.IngestConfig{Tick: time.Hour})
	defer st.Close()
	r := startSite(t, st)

	st.AddBatch(randomEvents(rand.New(rand.NewSource(13)), 60))
	st.AddBatch(randomEvents(rand.New(rand.NewSource(14)), 40))
	v, err := r.Version()
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("queued batches moved the remote-visible version to %d, want 0", v)
	}
	st.Flush() // the tick: one publication covering both batches
	v, err = r.Version()
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Fatalf("after the tick remote version = %d, want 100", v)
	}
}

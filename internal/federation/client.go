package federation

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"doscope/internal/attack"
)

// RemoteStore is the client side of a federation site: it satisfies
// attack.Queryable by shipping compiled plans to the site's Server and
// decoding the partials that come back, so attack.QueryBackends plans
// treat a remote site exactly like a local store.
//
// Counting terminals receive fixed-size index partials; PlanStore
// receives the matching events as a DOSEVT02 segment and opens it
// zero-copy over the received bytes (the segment columns alias the
// buffer the socket filled, no decode pass).
//
// Transport policy: one connection is kept and reused across requests.
// Transport-level failures — dial errors, send errors, a peer that
// closes or resets before completing a response — are retried with
// exponential backoff on a fresh connection (requests are stateless
// reads, so re-sending is safe). Protocol-level failures — a malformed
// or truncated frame, an unexpected response type, a server-reported
// error — fail immediately: a corrupt stream cannot be resynchronized,
// and retrying would mask the corruption.
//
// Failure policy: a per-site circuit breaker (on by default, see
// WithBreaker) opens after a run of consecutive failures, after which
// requests fail immediately with ErrCircuitOpen — an in-memory check,
// no dial, no backoff — until a cool-down passes and a half-open probe
// (or the background health prober, see WithHealthProbe) finds the site
// answering again. ErrCircuitOpen wraps attack.ErrBackendSkipped, so
// degraded-mode federated terminals report the site as skipped while
// the healthy backends keep answering.
//
// A RemoteStore is safe for concurrent use; requests are serialized on
// the connection.
type RemoteStore struct {
	addr    string
	network string

	attempts      int
	backoff       time.Duration
	maxBackoff    time.Duration
	dialTimeout   time.Duration
	reqTimeout    time.Duration
	probeInterval time.Duration

	br *breaker // nil when disabled

	mu   sync.Mutex
	conn net.Conn

	probeMu sync.Mutex
	prober  chan struct{} // non-nil while the health prober runs
	closed  bool

	sent, recv atomic.Uint64
}

// Option configures a RemoteStore.
type Option func(*RemoteStore)

// WithAttempts sets how many times a retryable request is tried
// (default 3, minimum 1).
func WithAttempts(n int) Option {
	return func(r *RemoteStore) {
		if n >= 1 {
			r.attempts = n
		}
	}
}

// WithBackoff sets the initial retry backoff, doubled per attempt
// (default 50ms). Each delay is capped by WithMaxBackoff and jittered
// (see backoffFor).
func WithBackoff(d time.Duration) Option {
	return func(r *RemoteStore) { r.backoff = d }
}

// WithMaxBackoff caps the per-attempt retry delay (default 5s). Without
// a cap the doubling schedule grows without bound under WithAttempts,
// and with one, a client configured for many attempts settles into
// steady capped-rate retries instead of sleeping for minutes.
func WithMaxBackoff(d time.Duration) Option {
	return func(r *RemoteStore) {
		if d > 0 {
			r.maxBackoff = d
		}
	}
}

// WithDialTimeout bounds each dial attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(r *RemoteStore) { r.dialTimeout = d }
}

// WithRequestTimeout bounds each request/response exchange (default
// 60s; 0 disables). Without it a wedged site — accepted connection,
// no response — would hang a federated query forever, the healthy
// backends' partials with it.
func WithRequestTimeout(d time.Duration) Option {
	return func(r *RemoteStore) { r.reqTimeout = d }
}

// WithBreaker tunes the per-site circuit breaker: threshold consecutive
// failures open it, and after cooldown one request is admitted as a
// half-open probe (default 5 failures, 1s cool-down). threshold <= 0
// disables the breaker entirely — every request then pays the full
// dial/retry cost against a dead site, the pre-breaker behavior.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(r *RemoteStore) {
		if threshold <= 0 {
			r.br = nil
			return
		}
		if cooldown <= 0 {
			cooldown = time.Second
		}
		r.br = newBreaker(threshold, cooldown)
	}
}

// WithHealthProbe sets how often an open breaker is probed in the
// background with a version frame (the 8-byte 0x05 exchange), so a
// healed site rejoins without waiting for a live request to half-open
// the breaker (default 1s; 0 disables background probing — the site
// then rejoins only via a half-open request probe).
func WithHealthProbe(interval time.Duration) Option {
	return func(r *RemoteStore) { r.probeInterval = interval }
}

// Dial prepares a client for the site at addr — a host:port pair, or a
// unix socket path when addr contains a path separator. No connection
// is opened until the first request, so constructing clients for sites
// that are still starting up is fine.
func Dial(addr string, opts ...Option) *RemoteStore {
	r := &RemoteStore{
		addr:          addr,
		network:       netKind(addr),
		attempts:      3,
		backoff:       50 * time.Millisecond,
		maxBackoff:    5 * time.Second,
		dialTimeout:   5 * time.Second,
		reqTimeout:    60 * time.Second,
		probeInterval: time.Second,
		br:            newBreaker(5, time.Second),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Addr returns the site address the client ships plans to.
func (r *RemoteStore) Addr() string { return r.addr }

// Close drops the cached connection and stops the background health
// prober; a later request re-dials.
func (r *RemoteStore) Close() error {
	r.probeMu.Lock()
	r.closed = true
	if r.prober != nil {
		close(r.prober)
		r.prober = nil
	}
	r.probeMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}

// Breaker snapshots the site's circuit breaker; enabled is false when
// the breaker was disabled via WithBreaker(0, ...).
func (r *RemoteStore) Breaker() (status BreakerStatus, enabled bool) {
	if r.br == nil {
		return BreakerStatus{}, false
	}
	return r.br.status(), true
}

// WireBytes reports the cumulative payload-plus-header bytes this client
// has sent and received — what the O(index cells) tests and the
// federated benchmarks measure.
func (r *RemoteStore) WireBytes() (sent, received uint64) {
	return r.sent.Load(), r.recv.Load()
}

// countingConn tallies conn traffic into the client's wire counters.
type countingConn struct {
	net.Conn
	r *RemoteStore
}

func (c countingConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	c.r.recv.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.r.sent.Add(uint64(n))
	return n, err
}

// backoffFor returns the delay before retry attempt n (n >= 1): the
// doubling schedule backoff<<(n-1), capped at maxBackoff, with the top
// half of the delay randomized ("equal jitter"). The cap bounds the
// wait however many attempts are configured; the jitter decorrelates a
// fleet of identical clients retrying a restarted aggregator, which
// would otherwise thundering-herd on the same schedule.
func (r *RemoteStore) backoffFor(attempt int) time.Duration {
	d := r.maxBackoff
	// The shift overflows past 62 doublings; any schedule that long is
	// already capped.
	if attempt-1 < 62 {
		if b := r.backoff << (attempt - 1); b > 0 && b < d {
			d = b
		}
	}
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int64N(int64(d-d/2)+1))
}

// roundTrip sends one request frame and reads its response through the
// breaker gate, without a caller deadline.
func (r *RemoteStore) roundTrip(reqType byte, req []byte, wantResp byte) ([]byte, error) {
	return r.roundTripCtx(context.Background(), reqType, req, wantResp)
}

// roundTripCtx is every request's path: the breaker gate first (an open
// breaker rejects in memory, no dial, no backoff), then the wire
// exchange bounded by ctx, then the outcome feeds the breaker.
func (r *RemoteStore) roundTripCtx(ctx context.Context, reqType byte, req []byte, wantResp byte) ([]byte, error) {
	if r.br != nil {
		if err := r.br.allow(); err != nil {
			return nil, fmt.Errorf("federation: %s: %w", r.addr, err)
		}
	}
	payload, err := r.do(ctx, reqType, req, wantResp)
	r.record(err)
	return payload, err
}

// record classifies one request outcome for the breaker. A server that
// answered — even with an error frame — proves the site and path
// healthy; a cancelled caller context proves nothing either way.
// Everything else (dial failures, timeouts, resets, corrupt frames) is
// a failure, and the transition to open starts the background health
// prober.
func (r *RemoteStore) record(err error) {
	if r.br == nil {
		return
	}
	var re remoteError
	switch {
	case err == nil, errors.As(err, &re):
		r.br.success()
	case errors.Is(err, context.Canceled):
	default:
		if r.br.failure() {
			r.ensureProber()
		}
	}
}

// ensureProber starts the background health prober if it is enabled
// and not already running. The prober re-checks the site with a
// version frame every probe interval and exits once one succeeds
// (closing the breaker — the site rejoined) or the client closes.
func (r *RemoteStore) ensureProber() {
	r.probeMu.Lock()
	defer r.probeMu.Unlock()
	if r.probeInterval <= 0 || r.prober != nil || r.closed {
		return
	}
	stop := make(chan struct{})
	r.prober = stop
	go r.probeLoop(stop)
}

func (r *RemoteStore) probeLoop(stop chan struct{}) {
	tick := time.NewTicker(r.probeInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			// Bypass the breaker gate — probing an open breaker is the
			// point — but bound each probe so a blackholed site cannot
			// wedge the loop for the full request timeout.
			ctx, cancel := context.WithTimeout(context.Background(), r.probeInterval)
			_, err := r.do(ctx, typeReqVersion, nil, typeRespVersion)
			cancel()
			if err == nil {
				r.br.success()
				r.probeMu.Lock()
				if r.prober == stop {
					r.prober = nil
				}
				r.probeMu.Unlock()
				return
			}
		}
	}
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do sends one request frame and reads its response, retrying transport
// failures per the policy above. The context bounds the whole call —
// dial, exchange, and retry sleeps — so a caller-supplied budget caps a
// request's worst case, not just each leg of it.
func (r *RemoteStore) do(ctx context.Context, reqType byte, req []byte, wantResp byte) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, r.backoffFor(attempt)); err != nil {
				return nil, fmt.Errorf("federation: %s: %w (last error: %w)", r.addr, err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("federation: %s: %w", r.addr, err)
		}
		if r.conn == nil {
			d := net.Dialer{Timeout: r.dialTimeout}
			conn, err := d.DialContext(ctx, r.network, r.addr)
			if err != nil {
				lastErr = err
				if !retryable(err) {
					return nil, fmt.Errorf("federation: %s: %w", r.addr, err)
				}
				continue
			}
			r.conn = countingConn{conn, r}
		}
		payload, err := r.exchange(ctx, req, reqType, wantResp)
		if err == nil {
			return payload, nil
		}
		// The connection is in an unknown state after any failure.
		r.conn.Close()
		r.conn = nil
		if !retryable(err) {
			return nil, fmt.Errorf("federation: %s: %w", r.addr, err)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("federation: %s: %d attempts failed: %w", r.addr, r.attempts, lastErr)
}

// exchange performs one request/response on the live connection,
// bounded by the request timeout and the context deadline, whichever
// is sooner (a deadline violation is a transport error: the connection
// is dropped and the request retried).
func (r *RemoteStore) exchange(ctx context.Context, req []byte, reqType, wantResp byte) ([]byte, error) {
	var deadline time.Time
	if r.reqTimeout > 0 {
		deadline = time.Now().Add(r.reqTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if !deadline.IsZero() {
		if err := r.conn.SetDeadline(deadline); err != nil {
			return nil, err
		}
	}
	if err := writeFrame(r.conn, reqType, req); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(r.conn, maxRespPayload)
	if err != nil {
		return nil, err
	}
	switch typ {
	case wantResp:
		return payload, nil
	case typeRespError:
		if len(payload) > maxErrPayload {
			payload = payload[:maxErrPayload]
		}
		return nil, remoteError(payload)
	default:
		return nil, errFrame("response type %#x, want %#x", typ, wantResp)
	}
}

// remoteError is a failure the server reported in an error frame.
type remoteError string

func (e remoteError) Error() string { return "remote: " + string(e) }

// retryable separates transport failures (retry on a fresh connection)
// from protocol failures and context expiry (fail fast; see the
// RemoteStore doc comment — a spent caller budget must surface, not
// burn more attempts).
func retryable(err error) bool {
	var fe frameError
	var re remoteError
	switch {
	case errors.As(err, &fe), errors.As(err, &re), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

var _ attack.Queryable = (*RemoteStore)(nil)
var _ attack.QueryableContext = (*RemoteStore)(nil)

// PlanCount executes the plan's Count terminal at the site. Only the
// 20-byte plan and an 8-byte count cross the wire.
func (r *RemoteStore) PlanCount(p attack.Plan) (int, error) {
	return r.PlanCountContext(context.Background(), p)
}

// PlanCountContext is PlanCount bounded by ctx: the deadline covers the
// dial, the exchange, and any retry sleeps.
func (r *RemoteStore) PlanCountContext(ctx context.Context, p attack.Plan) (int, error) {
	payload, err := r.roundTripCtx(ctx, typeReqCount, p.AppendBinary(nil), typeRespCount)
	if err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, errFrame("count payload is %d bytes, want 8", len(payload))
	}
	return int(binary.LittleEndian.Uint64(payload)), nil
}

// PlanCountByVector executes the plan's CountByVector terminal at the
// site; the response is one fixed-size row of index cells.
func (r *RemoteStore) PlanCountByVector(p attack.Plan) ([attack.NumVectors]int, error) {
	return r.PlanCountByVectorContext(context.Background(), p)
}

// PlanCountByVectorContext is PlanCountByVector bounded by ctx.
func (r *RemoteStore) PlanCountByVectorContext(ctx context.Context, p attack.Plan) ([attack.NumVectors]int, error) {
	var out [attack.NumVectors]int
	payload, err := r.roundTripCtx(ctx, typeReqCountByVector, p.AppendBinary(nil), typeRespCountByVector)
	if err != nil {
		return out, err
	}
	if len(payload) != 8*attack.NumVectors {
		return out, errFrame("per-vector payload is %d bytes, want %d", len(payload), 8*attack.NumVectors)
	}
	for v := range out {
		out[v] = int(binary.LittleEndian.Uint64(payload[8*v:]))
	}
	return out, nil
}

// PlanCountByDay executes the plan's CountByDay terminal at the site;
// the response is the WindowDays-cell daily index row.
func (r *RemoteStore) PlanCountByDay(p attack.Plan) ([]int, error) {
	return r.PlanCountByDayContext(context.Background(), p)
}

// PlanCountByDayContext is PlanCountByDay bounded by ctx.
func (r *RemoteStore) PlanCountByDayContext(ctx context.Context, p attack.Plan) ([]int, error) {
	payload, err := r.roundTripCtx(ctx, typeReqCountByDay, p.AppendBinary(nil), typeRespCountByDay)
	if err != nil {
		return nil, err
	}
	if len(payload) != 8*attack.WindowDays {
		return nil, errFrame("per-day payload is %d bytes, want %d", len(payload), 8*attack.WindowDays)
	}
	out := make([]int, attack.WindowDays)
	for d := range out {
		out[d] = int(binary.LittleEndian.Uint64(payload[8*d:]))
	}
	return out, nil
}

// Version fetches the site store's mutation counter. Two equal versions
// bracket an ingest-free interval, so a consumer caching results
// derived from the site (the HTTP front end's plan-keyed response
// cache) can validate entries with an 8-byte exchange instead of
// re-executing plans.
func (r *RemoteStore) Version() (uint64, error) {
	payload, err := r.roundTrip(typeReqVersion, nil, typeRespVersion)
	if err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, errFrame("version payload is %d bytes, want 8", len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// PlanStore fetches the plan's matching events from the site as a
// DOSEVT02 segment and serves a Store zero-copy from the received
// bytes. The returned closer is a no-op (the buffer is heap memory),
// but callers should still close it per the Queryable contract.
func (r *RemoteStore) PlanStore(p attack.Plan) (*attack.Store, io.Closer, error) {
	return r.PlanStoreContext(context.Background(), p)
}

// PlanStoreContext is PlanStore bounded by ctx.
func (r *RemoteStore) PlanStoreContext(ctx context.Context, p attack.Plan) (*attack.Store, io.Closer, error) {
	payload, err := r.roundTripCtx(ctx, typeReqFetch, p.AppendBinary(nil), typeRespSegment)
	if err != nil {
		return nil, nil, err
	}
	st, err := attack.OpenSegment(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("federation: %s: %w", r.addr, err)
	}
	return st, nopCloser{}, nil
}

// nopCloser is the closer for heap-backed segment buffers.
type nopCloser struct{}

func (nopCloser) Close() error { return nil }

package federation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"doscope/internal/attack"
)

// RemoteStore is the client side of a federation site: it satisfies
// attack.Queryable by shipping compiled plans to the site's Server and
// decoding the partials that come back, so attack.QueryBackends plans
// treat a remote site exactly like a local store.
//
// Counting terminals receive fixed-size index partials; PlanStore
// receives the matching events as a DOSEVT02 segment and opens it
// zero-copy over the received bytes (the segment columns alias the
// buffer the socket filled, no decode pass).
//
// Transport policy: one connection is kept and reused across requests.
// Transport-level failures — dial errors, send errors, a peer that
// closes or resets before completing a response — are retried with
// exponential backoff on a fresh connection (requests are stateless
// reads, so re-sending is safe). Protocol-level failures — a malformed
// or truncated frame, an unexpected response type, a server-reported
// error — fail immediately: a corrupt stream cannot be resynchronized,
// and retrying would mask the corruption.
//
// A RemoteStore is safe for concurrent use; requests are serialized on
// the connection.
type RemoteStore struct {
	addr    string
	network string

	attempts    int
	backoff     time.Duration
	maxBackoff  time.Duration
	dialTimeout time.Duration
	reqTimeout  time.Duration

	mu   sync.Mutex
	conn net.Conn

	sent, recv atomic.Uint64
}

// Option configures a RemoteStore.
type Option func(*RemoteStore)

// WithAttempts sets how many times a retryable request is tried
// (default 3, minimum 1).
func WithAttempts(n int) Option {
	return func(r *RemoteStore) {
		if n >= 1 {
			r.attempts = n
		}
	}
}

// WithBackoff sets the initial retry backoff, doubled per attempt
// (default 50ms). Each delay is capped by WithMaxBackoff and jittered
// (see backoffFor).
func WithBackoff(d time.Duration) Option {
	return func(r *RemoteStore) { r.backoff = d }
}

// WithMaxBackoff caps the per-attempt retry delay (default 5s). Without
// a cap the doubling schedule grows without bound under WithAttempts,
// and with one, a client configured for many attempts settles into
// steady capped-rate retries instead of sleeping for minutes.
func WithMaxBackoff(d time.Duration) Option {
	return func(r *RemoteStore) {
		if d > 0 {
			r.maxBackoff = d
		}
	}
}

// WithDialTimeout bounds each dial attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(r *RemoteStore) { r.dialTimeout = d }
}

// WithRequestTimeout bounds each request/response exchange (default
// 60s; 0 disables). Without it a wedged site — accepted connection,
// no response — would hang a federated query forever, the healthy
// backends' partials with it.
func WithRequestTimeout(d time.Duration) Option {
	return func(r *RemoteStore) { r.reqTimeout = d }
}

// Dial prepares a client for the site at addr — a host:port pair, or a
// unix socket path when addr contains a path separator. No connection
// is opened until the first request, so constructing clients for sites
// that are still starting up is fine.
func Dial(addr string, opts ...Option) *RemoteStore {
	r := &RemoteStore{
		addr:        addr,
		network:     netKind(addr),
		attempts:    3,
		backoff:     50 * time.Millisecond,
		maxBackoff:  5 * time.Second,
		dialTimeout: 5 * time.Second,
		reqTimeout:  60 * time.Second,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Addr returns the site address the client ships plans to.
func (r *RemoteStore) Addr() string { return r.addr }

// Close drops the cached connection; a later request re-dials.
func (r *RemoteStore) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}

// WireBytes reports the cumulative payload-plus-header bytes this client
// has sent and received — what the O(index cells) tests and the
// federated benchmarks measure.
func (r *RemoteStore) WireBytes() (sent, received uint64) {
	return r.sent.Load(), r.recv.Load()
}

// countingConn tallies conn traffic into the client's wire counters.
type countingConn struct {
	net.Conn
	r *RemoteStore
}

func (c countingConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	c.r.recv.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.r.sent.Add(uint64(n))
	return n, err
}

// backoffFor returns the delay before retry attempt n (n >= 1): the
// doubling schedule backoff<<(n-1), capped at maxBackoff, with the top
// half of the delay randomized ("equal jitter"). The cap bounds the
// wait however many attempts are configured; the jitter decorrelates a
// fleet of identical clients retrying a restarted aggregator, which
// would otherwise thundering-herd on the same schedule.
func (r *RemoteStore) backoffFor(attempt int) time.Duration {
	d := r.maxBackoff
	// The shift overflows past 62 doublings; any schedule that long is
	// already capped.
	if attempt-1 < 62 {
		if b := r.backoff << (attempt - 1); b > 0 && b < d {
			d = b
		}
	}
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int64N(int64(d-d/2)+1))
}

// roundTrip sends one request frame and reads its response, retrying
// transport failures per the policy above. It returns the response
// payload after unwrapping error frames.
func (r *RemoteStore) roundTrip(reqType byte, req []byte, wantResp byte) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(r.backoffFor(attempt))
		}
		if r.conn == nil {
			conn, err := net.DialTimeout(r.network, r.addr, r.dialTimeout)
			if err != nil {
				lastErr = err
				continue
			}
			r.conn = countingConn{conn, r}
		}
		payload, err := r.exchange(req, reqType, wantResp)
		if err == nil {
			return payload, nil
		}
		// The connection is in an unknown state after any failure.
		r.conn.Close()
		r.conn = nil
		if !retryable(err) {
			return nil, fmt.Errorf("federation: %s: %w", r.addr, err)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("federation: %s: %d attempts failed: %w", r.addr, r.attempts, lastErr)
}

// exchange performs one request/response on the live connection,
// bounded by the request timeout (a deadline violation is a transport
// error: the connection is dropped and the request retried).
func (r *RemoteStore) exchange(req []byte, reqType, wantResp byte) ([]byte, error) {
	if r.reqTimeout > 0 {
		if err := r.conn.SetDeadline(time.Now().Add(r.reqTimeout)); err != nil {
			return nil, err
		}
	}
	if err := writeFrame(r.conn, reqType, req); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(r.conn, maxRespPayload)
	if err != nil {
		return nil, err
	}
	switch typ {
	case wantResp:
		return payload, nil
	case typeRespError:
		if len(payload) > maxErrPayload {
			payload = payload[:maxErrPayload]
		}
		return nil, remoteError(payload)
	default:
		return nil, errFrame("response type %#x, want %#x", typ, wantResp)
	}
}

// remoteError is a failure the server reported in an error frame.
type remoteError string

func (e remoteError) Error() string { return "remote: " + string(e) }

// retryable separates transport failures (retry on a fresh connection)
// from protocol failures (fail fast; see the RemoteStore doc comment).
func retryable(err error) bool {
	var fe frameError
	var re remoteError
	switch {
	case errors.As(err, &fe), errors.As(err, &re), errors.Is(err, io.ErrUnexpectedEOF):
		return false
	}
	return true
}

var _ attack.Queryable = (*RemoteStore)(nil)

// PlanCount executes the plan's Count terminal at the site. Only the
// 20-byte plan and an 8-byte count cross the wire.
func (r *RemoteStore) PlanCount(p attack.Plan) (int, error) {
	payload, err := r.roundTrip(typeReqCount, p.AppendBinary(nil), typeRespCount)
	if err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, errFrame("count payload is %d bytes, want 8", len(payload))
	}
	return int(binary.LittleEndian.Uint64(payload)), nil
}

// PlanCountByVector executes the plan's CountByVector terminal at the
// site; the response is one fixed-size row of index cells.
func (r *RemoteStore) PlanCountByVector(p attack.Plan) ([attack.NumVectors]int, error) {
	var out [attack.NumVectors]int
	payload, err := r.roundTrip(typeReqCountByVector, p.AppendBinary(nil), typeRespCountByVector)
	if err != nil {
		return out, err
	}
	if len(payload) != 8*attack.NumVectors {
		return out, errFrame("per-vector payload is %d bytes, want %d", len(payload), 8*attack.NumVectors)
	}
	for v := range out {
		out[v] = int(binary.LittleEndian.Uint64(payload[8*v:]))
	}
	return out, nil
}

// PlanCountByDay executes the plan's CountByDay terminal at the site;
// the response is the WindowDays-cell daily index row.
func (r *RemoteStore) PlanCountByDay(p attack.Plan) ([]int, error) {
	payload, err := r.roundTrip(typeReqCountByDay, p.AppendBinary(nil), typeRespCountByDay)
	if err != nil {
		return nil, err
	}
	if len(payload) != 8*attack.WindowDays {
		return nil, errFrame("per-day payload is %d bytes, want %d", len(payload), 8*attack.WindowDays)
	}
	out := make([]int, attack.WindowDays)
	for d := range out {
		out[d] = int(binary.LittleEndian.Uint64(payload[8*d:]))
	}
	return out, nil
}

// Version fetches the site store's mutation counter. Two equal versions
// bracket an ingest-free interval, so a consumer caching results
// derived from the site (the HTTP front end's plan-keyed response
// cache) can validate entries with an 8-byte exchange instead of
// re-executing plans.
func (r *RemoteStore) Version() (uint64, error) {
	payload, err := r.roundTrip(typeReqVersion, nil, typeRespVersion)
	if err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, errFrame("version payload is %d bytes, want 8", len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// PlanStore fetches the plan's matching events from the site as a
// DOSEVT02 segment and serves a Store zero-copy from the received
// bytes. The returned closer is a no-op (the buffer is heap memory),
// but callers should still close it per the Queryable contract.
func (r *RemoteStore) PlanStore(p attack.Plan) (*attack.Store, io.Closer, error) {
	payload, err := r.roundTrip(typeReqFetch, p.AppendBinary(nil), typeRespSegment)
	if err != nil {
		return nil, nil, err
	}
	st, err := attack.OpenSegment(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("federation: %s: %w", r.addr, err)
	}
	return st, nopCloser{}, nil
}

// nopCloser is the closer for heap-backed segment buffers.
type nopCloser struct{}

func (nopCloser) Close() error { return nil }

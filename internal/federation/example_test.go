package federation_test

import (
	"fmt"
	"net"

	"doscope/internal/attack"
	"doscope/internal/federation"
	"doscope/internal/netx"
)

// ExampleRemoteStore serves a store as a federation site and joins it
// with a local store in one federated counting plan: the remote site
// ships back an 8-byte index partial, not its events.
func ExampleRemoteStore() {
	day := func(d int) int64 { return attack.DayStart(d) }
	siteStore := attack.NewStore([]attack.Event{
		{Source: attack.SourceHoneypot, Vector: attack.VectorNTP,
			Target: netx.AddrFrom4(203, 0, 113, 5), Start: day(1), End: day(1) + 60, AvgRPS: 90},
		{Source: attack.SourceHoneypot, Vector: attack.VectorDNS,
			Target: netx.AddrFrom4(203, 0, 113, 6), Start: day(2), End: day(2) + 60, AvgRPS: 70},
	})
	local := attack.NewStore([]attack.Event{
		{Source: attack.SourceTelescope, Vector: attack.VectorTCP,
			Target: netx.AddrFrom4(198, 51, 100, 7), Start: day(1), End: day(1) + 120,
			MaxPPS: 500, Ports: []uint16{443}},
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer l.Close()
	go federation.NewServer(siteStore).Serve(l)

	remote := federation.Dial(l.Addr().String())
	defer remote.Close()

	n, err := attack.QueryBackends(local, remote).Days(0, 30).Count()
	if err != nil {
		panic(err)
	}
	fmt.Println("events across both backends:", n)

	reflections, err := attack.QueryBackends(local, remote).Source(attack.SourceHoneypot).Count()
	if err != nil {
		panic(err)
	}
	fmt.Println("reflection events:", reflections)
	// Output:
	// events across both backends: 3
	// reflection events: 2
}

// Package federation ships the attack-store query plane across sensor
// sites. A Server exposes one *attack.Store — typically a site's live
// capture — over a length-prefixed frame protocol (DOSFED01) on TCP or
// unix sockets, and RemoteStore is the client side: it satisfies
// attack.Queryable, so attack.QueryBackends plans mix local stores and
// remote sites freely.
//
// The wire discipline mirrors the paper's aggregation shape (independent
// vantage points joined into one macroscopic view) and keeps the
// movement of data proportional to the answer: counting terminals ship a
// compiled 20-byte attack.Plan out and fixed-size index partials back —
// O(index cells), never O(events) — while iteration terminals ship the
// matching events as a DOSEVT02 segment the client opens zero-copy.
//
// See docs/FORMATS.md for the byte-level frame and plan layout.
package federation

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame layout (all integers little-endian):
//
//	[0:4]   magic "DFD1"
//	[4]     type
//	[5:8]   reserved, zero
//	[8:12]  payload length (uint32)
//	[12:]   payload
const (
	frameMagic  = "DFD1"
	frameHeader = 12
)

// Frame types. Requests carry an attack.Plan payload; responses carry
// the terminal's result. The high bit distinguishes responses.
const (
	typeReqCount         = 0x01 // resp: typeRespCount
	typeReqCountByVector = 0x02 // resp: typeRespCountByVector
	typeReqCountByDay    = 0x03 // resp: typeRespCountByDay
	typeReqFetch         = 0x04 // resp: typeRespSegment
	typeReqVersion       = 0x05 // empty payload; resp: typeRespVersion

	typeRespCount         = 0x81 // uint64 count
	typeRespCountByVector = 0x82 // NumVectors uint64 counts
	typeRespCountByDay    = 0x83 // WindowDays uint64 counts
	typeRespSegment       = 0x84 // DOSEVT02 segment bytes
	typeRespVersion       = 0x85 // uint64 store mutation counter
	typeRespError         = 0xff // UTF-8 error message
)

// Payload bounds. Requests are tiny (a fixed-size plan); responses are
// bounded by the segment a fetch can ship. A frame claiming more is
// rejected before any allocation.
const (
	maxReqPayload  = 256
	maxRespPayload = 1 << 30
	maxErrPayload  = 1 << 16
)

// frameError marks a malformed-frame condition. The client never
// retries these: a corrupt stream cannot be resynchronized, and
// retrying would mask the corruption.
type frameError string

func (e frameError) Error() string { return string(e) }

// errFrame wraps a malformed-frame condition.
func errFrame(format string, args ...any) error {
	return frameError(fmt.Sprintf("federation: frame: "+format, args...))
}

// writeFrame writes one frame. The payload is written as-is after the
// fixed header; payloads over the protocol's response cap are refused
// rather than letting the uint32 length field wrap and desync the
// stream (a fetch of a >1 GiB capture must fail cleanly, not corrupt).
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if uint64(len(payload)) > maxRespPayload {
		return errFrame("payload of %d bytes exceeds the %d-byte limit", len(payload), maxRespPayload)
	}
	var hdr [frameHeader]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, rejecting bad magic, nonzero reserved
// bytes, and payloads over maxPayload before allocating anything. A
// stream that ends mid-frame surfaces io.ErrUnexpectedEOF; a clean EOF
// before any header byte surfaces io.EOF (the caller distinguishes a
// closed peer from a truncated frame).
func readFrame(r io.Reader, maxPayload uint32) (typ byte, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if string(hdr[:4]) != frameMagic {
		return 0, nil, errFrame("bad magic %q", hdr[:4])
	}
	if hdr[5] != 0 || hdr[6] != 0 || hdr[7] != 0 {
		return 0, nil, errFrame("nonzero reserved bytes")
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > maxPayload {
		return 0, nil, errFrame("payload of %d bytes exceeds the %d-byte limit", n, maxPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("federation: frame: truncated payload: %w", io.ErrUnexpectedEOF)
	}
	return hdr[4], payload, nil
}

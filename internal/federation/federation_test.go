package federation

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doscope/internal/attack"
	"doscope/internal/netx"
)

// randomEvents mirrors the attack package's test generator: n valid
// events over both sources and all vectors, spread across (and slightly
// outside) the measurement window.
func randomEvents(rng *rand.Rand, n int) []attack.Event {
	events := make([]attack.Event, n)
	for i := range events {
		e := attack.Event{
			Target:  netx.AddrFrom4(203, byte(rng.Intn(4)), byte(rng.Intn(8)), byte(rng.Intn(32))),
			Start:   attack.WindowStart + rng.Int63n((attack.WindowDays+20)*86400) - 10*86400,
			Packets: rng.Uint64() % 1e9,
			Bytes:   rng.Uint64() % 1e12,
		}
		if rng.Intn(2) == 0 {
			e.Source = attack.SourceTelescope
			e.Vector = attack.Vector(rng.Intn(4))
			e.MaxPPS = rng.Float64() * 1e4
			for j := 0; j < rng.Intn(4); j++ {
				e.Ports = append(e.Ports, uint16(rng.Intn(65536)))
			}
		} else {
			e.Source = attack.SourceHoneypot
			e.Vector = attack.VectorNTP + attack.Vector(rng.Intn(8))
			e.AvgRPS = rng.Float64() * 1e4
		}
		e.End = e.Start + rng.Int63n(86400)
		events[i] = e
	}
	return events
}

// startSite serves st on a loopback listener and returns a client for
// it. The store needs no lock, even when a writer is still appending.
func startSite(t *testing.T, st *attack.Store, opts ...Option) *RemoteStore {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go NewServer(st).Serve(l)
	r := Dial(l.Addr().String(), opts...)
	t.Cleanup(func() { r.Close() })
	return r
}

// segmentBacked round-trips a store through the DOSEVT02 codec so the
// site serves mmap-style (frozen, order-index-free) shards.
func segmentBacked(t *testing.T, st *attack.Store) *attack.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteSegment(&buf); err != nil {
		t.Fatal(err)
	}
	seg, err := attack.OpenSegment(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// fedPlans are the filter shapes the equivalence test executes; they
// cover every serializable filter dimension and their combination.
func fedPlans() map[string]attack.Plan {
	prefix := netx.AddrFrom4(203, 1, 0, 0)
	target := netx.AddrFrom4(203, 0, 2, 5)
	return map[string]attack.Plan{
		"all":     attack.PlanAll(),
		"source":  {Source: int8(attack.SourceHoneypot)},
		"vectors": {Source: -1, VecMask: 1<<attack.VectorTCP | 1<<attack.VectorNTP},
		"days":    {Source: -1, HasDays: true, DayLo: 10, DayHi: 400},
		"days-out-of-window": {Source: -1, HasDays: true, DayLo: -20, DayHi: 5},
		"prefix":  {Source: -1, HasPrefix: true, PrefixBits: 16, Prefix: prefix.Mask(16)},
		"target":  {Source: -1, HasPrefix: true, PrefixBits: 32, Prefix: target},
		"combined": {Source: int8(attack.SourceTelescope),
			VecMask: 1<<attack.VectorTCP | 1<<attack.VectorUDP,
			HasDays: true, DayLo: 0, DayHi: 600,
			HasPrefix: true, PrefixBits: 18, Prefix: prefix.Mask(18)},
	}
}

// TestFederatedEquivalence is the mixed-backend property test:
// QueryStores over local stores must be indistinguishable from the same
// data split across RemoteStore sites — one serving a segment-backed
// store, one serving a live store with unsealed pending tails — for
// every terminal, with counting results byte-identical to the
// equivalent single-store query.
func TestFederatedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	events := randomEvents(rng, 3000)
	combined := attack.NewStore(events)

	// Site A: a segment-backed store, the bulk-capture shape.
	localA := attack.NewStore(events[:1600])
	siteA := segmentBacked(t, localA)

	// Site B: a live store mid-ingest — AddBatch most of it, then
	// trickle the rest through Add so shards keep unsealed tails.
	siteB := &attack.Store{}
	siteB.AddBatch(events[1600:2900])
	for _, e := range events[2900:] {
		siteB.Add(e)
	}
	localB := attack.NewStore(events[1600:])

	ra := startSite(t, siteA)
	rb := startSite(t, siteB)

	for name, plan := range fedPlans() {
		t.Run(name, func(t *testing.T) {
			fed := attack.QueryPlan(plan, ra, rb)
			local := plan.Query(localA, localB)
			single := plan.Query(combined)

			n, err := fed.Count()
			if err != nil {
				t.Fatal(err)
			}
			if want := single.Count(); n != want {
				t.Errorf("Count = %d, want %d", n, want)
			}

			perVec, err := fed.CountByVector()
			if err != nil {
				t.Fatal(err)
			}
			if want := plan.Query(combined).CountByVector(); perVec != want {
				t.Errorf("CountByVector = %v, want %v", perVec, want)
			}

			perDay, err := fed.CountByDay()
			if err != nil {
				t.Fatal(err)
			}
			if want := plan.Query(combined).CountByDay(); !reflect.DeepEqual(perDay, want) {
				t.Error("CountByDay mismatch vs single-store query")
			}

			got, err := fed.Events()
			if err != nil {
				t.Fatal(err)
			}
			want := local.Events()
			if len(got) != len(want) {
				t.Fatalf("Events: %d events, want %d", len(got), len(want))
			}
			if len(want) > 0 && !reflect.DeepEqual(got, want) {
				t.Error("Events mismatch vs local split")
			}

			// IterByStart merges across backends by start time exactly
			// like the local multi-store merge.
			it, closer, err := attack.QueryPlan(plan, ra, rb).IterByStart()
			if err != nil {
				t.Fatal(err)
			}
			var starts []int64
			for e := range it {
				starts = append(starts, e.Start)
			}
			closer.Close()
			var wantStarts []int64
			for e := range plan.Query(localA, localB).IterByStart() {
				wantStarts = append(wantStarts, e.Start)
			}
			if !reflect.DeepEqual(starts, wantStarts) {
				t.Error("IterByStart order mismatch")
			}
		})
	}
}

// TestFederatedMixedBackends runs one federated plan over a local store
// and a remote site in the same QueryBackends call.
func TestFederatedMixedBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	events := randomEvents(rng, 1200)
	combined := attack.NewStore(events)
	local := attack.NewStore(events[:700])
	remote := startSite(t, attack.NewStore(events[700:]))

	fed := attack.QueryBackends(local, remote).Source(attack.SourceHoneypot)
	n, err := fed.Count()
	if err != nil {
		t.Fatal(err)
	}
	if want := combined.Query().Source(attack.SourceHoneypot).Count(); n != want {
		t.Fatalf("mixed-backend Count = %d, want %d", n, want)
	}
	evs, err := fed.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != n {
		t.Fatalf("mixed-backend Events = %d, want %d", len(evs), n)
	}
}

// TestCountingWireBytesOIndex asserts the acceptance criterion that
// counting queries ship index partials, not events: the bytes a
// federated count moves are identical for a small and an 8x larger
// store, while a segment fetch scales with the events.
func TestCountingWireBytesOIndex(t *testing.T) {
	countingBytes := func(n int) (recv uint64) {
		rng := rand.New(rand.NewSource(47))
		r := startSite(t, attack.NewStore(randomEvents(rng, n)))
		fed := attack.QueryBackends(r)
		if _, err := fed.Count(); err != nil {
			t.Fatal(err)
		}
		if _, err := fed.CountByVector(); err != nil {
			t.Fatal(err)
		}
		if _, err := fed.CountByDay(); err != nil {
			t.Fatal(err)
		}
		_, recv = r.WireBytes()
		return recv
	}
	small, large := countingBytes(1000), countingBytes(8000)
	if small != large {
		t.Errorf("counting wire bytes grew with the store: %d at 1k events, %d at 8k", small, large)
	}
	// The exact budget: three response headers plus the count (8B),
	// per-vector (NumVectors*8) and per-day (WindowDays*8) index rows.
	wantResp := uint64(3*frameHeader + 8 + 8*attack.NumVectors + 8*attack.WindowDays)
	if small != wantResp {
		t.Errorf("counting wire bytes = %d, want exactly %d (index cells + headers)", small, wantResp)
	}

	segmentBytes := func(n int) (recv uint64) {
		rng := rand.New(rand.NewSource(47))
		r := startSite(t, attack.NewStore(randomEvents(rng, n)))
		st, closer, err := r.PlanStore(attack.PlanAll())
		if err != nil {
			t.Fatal(err)
		}
		defer closer.Close()
		if st.Len() != n {
			t.Fatalf("fetched store has %d events, want %d", st.Len(), n)
		}
		_, recv = r.WireBytes()
		return recv
	}
	if s, l := segmentBytes(1000), segmentBytes(8000); l < 4*s {
		t.Errorf("segment fetch should scale with events: %d at 1k, %d at 8k", s, l)
	}
}

// TestLiveSiteSeesIngest: a served store keeps answering as the writer
// appends — no shared lock anywhere — and remote counts track the
// ingest batch by batch.
func TestLiveSiteSeesIngest(t *testing.T) {
	st := &attack.Store{}
	r := startSite(t, st)
	rng := rand.New(rand.NewSource(53))
	events := randomEvents(rng, 300)

	for round := 0; round < 3; round++ {
		st.AddBatch(events[100*round : 100*(round+1)])
		n, err := attack.QueryBackends(r).Count()
		if err != nil {
			t.Fatal(err)
		}
		if want := 100 * (round + 1); n != want {
			t.Fatalf("after round %d: remote Count = %d, want %d", round, n, want)
		}
	}
}

// TestConcurrentClients: handlers run one per connection and execute
// concurrently with no serialization at all — counting queries are
// lock-free reads against the store's published view, and the
// once-per-view lazy index build is shared between racing readers (run
// under -race in CI).
func TestConcurrentClients(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	st := attack.NewStore(randomEvents(rng, 2000))
	want := st.Query().Count() // pre-read so the fresh servers below start cold
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go NewServer(attack.NewStore(randomEvents(rand.New(rand.NewSource(71)), 2000))).Serve(l)

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := Dial(l.Addr().String())
			defer r.Close()
			for j := 0; j < 5; j++ {
				n, err := r.PlanCount(attack.PlanAll())
				if err != nil {
					errs[i] = err
					return
				}
				if n != want {
					errs[i] = fmt.Errorf("Count = %d, want %d", n, want)
					return
				}
				if _, err := r.PlanCountByDay(attack.PlanAll()); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// rawSite runs fn for each accepted connection — a hand-rolled peer for
// protocol-corruption tests.
func rawSite(t *testing.T, fn func(net.Conn)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				fn(c)
			}(conn)
		}
	}()
	return l.Addr().String()
}

// discardRequest reads one request frame off the wire.
func discardRequest(c net.Conn) bool {
	_, _, err := readFrame(c, maxReqPayload)
	return err == nil
}

// TestClientRejectsCorruptFrames mirrors the DOSEVT02 fuzz posture on
// the wire: truncated, oversized, mistyped, and mismagicked responses
// must surface as errors immediately — never hangs, panics, or silent
// wrong answers — and must not be retried (a corrupt stream cannot be
// resynchronized).
func TestClientRejectsCorruptFrames(t *testing.T) {
	goodCount := func() []byte {
		var buf bytes.Buffer
		writeFrame(&buf, typeRespCount, binary.LittleEndian.AppendUint64(nil, 42))
		return buf.Bytes()
	}
	cases := []struct {
		name string
		resp func() []byte
	}{
		{"bad-magic", func() []byte { b := goodCount(); b[0] = 'X'; return b }},
		{"reserved", func() []byte { b := goodCount(); b[6] = 1; return b }},
		{"wrong-type", func() []byte {
			var buf bytes.Buffer
			writeFrame(&buf, typeRespSegment, []byte("not a count"))
			return buf.Bytes()
		}},
		{"unknown-type", func() []byte { b := goodCount(); b[4] = 0x7b; return b }},
		{"short-payload", func() []byte {
			var buf bytes.Buffer
			writeFrame(&buf, typeRespCount, []byte{1, 2, 3})
			return buf.Bytes()
		}},
		{"oversized-length", func() []byte {
			b := goodCount()
			binary.LittleEndian.PutUint32(b[8:12], maxRespPayload+1)
			return b[:frameHeader]
		}},
		{"truncated-header", func() []byte { return goodCount()[:5] }},
		{"truncated-payload", func() []byte { return goodCount()[:frameHeader+3] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := rawSite(t, func(c net.Conn) {
				if discardRequest(c) {
					c.Write(tc.resp())
				}
			})
			r := Dial(addr, WithAttempts(1), WithBackoff(time.Millisecond))
			defer r.Close()
			if _, err := r.PlanCount(attack.PlanAll()); err == nil {
				t.Fatal("corrupt response accepted without error")
			}
		})
	}
}

// TestClientRejectsCorruptSegment: a syntactically valid segment frame
// carrying corrupt DOSEVT02 bytes is rejected by the segment reader.
func TestClientRejectsCorruptSegment(t *testing.T) {
	addr := rawSite(t, func(c net.Conn) {
		if discardRequest(c) {
			writeFrame(c, typeRespSegment, []byte("DOSEVT02 but then garbage"))
		}
	})
	r := Dial(addr, WithAttempts(1))
	defer r.Close()
	if _, _, err := r.PlanStore(attack.PlanAll()); err == nil {
		t.Fatal("corrupt segment accepted without error")
	}
}

// TestServerRejectsCorruptRequests: garbage from a client yields an
// error frame (when a response is possible at all) and a closed
// connection, not a wedged or crashed server.
func TestServerRejectsCorruptRequests(t *testing.T) {
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(59)), 100))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go NewServer(st).Serve(l)

	send := func(raw []byte) (byte, []byte, error) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(raw); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		return readFrame(conn, maxRespPayload)
	}

	frame := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		writeFrame(&buf, typ, payload)
		return buf.Bytes()
	}
	goodPlan := attack.PlanAll().AppendBinary(nil)
	for name, raw := range map[string][]byte{
		"bad-magic":      append([]byte("XXXX"), frame(typeReqCount, goodPlan)[4:]...),
		"unknown-type":   frame(0x42, goodPlan),
		"short-plan":     frame(typeReqCount, goodPlan[:7]),
		"corrupt-plan":   frame(typeReqCount, append(append([]byte{}, goodPlan[:1]...), append([]byte{0xee}, goodPlan[2:]...)...)),
		"oversized-plan": frame(typeReqCount, make([]byte, maxReqPayload+1)),
	} {
		t.Run(name, func(t *testing.T) {
			typ, _, err := send(raw)
			if err == nil && typ != typeRespError {
				t.Fatalf("server answered type %#x to a corrupt request, want error frame or close", typ)
			}
		})
	}

	// And the server is still healthy afterwards.
	r := Dial(l.Addr().String())
	defer r.Close()
	n, err := r.PlanCount(attack.PlanAll())
	if err != nil || n != st.Len() {
		t.Fatalf("server unhealthy after corrupt requests: n=%d err=%v", n, err)
	}
}

// TestRetryAfterPeerClose: a site that drops the first connection before
// responding is retried with backoff and the second attempt succeeds —
// the RemoteStore transport contract.
func TestRetryAfterPeerClose(t *testing.T) {
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(61)), 50))
	var mu sync.Mutex
	drops := 1
	srv := NewServer(st)
	addr := rawSite(t, func(c net.Conn) {
		mu.Lock()
		drop := drops > 0
		if drop {
			drops--
		}
		mu.Unlock()
		if drop {
			return // close before any response byte: retryable
		}
		srv.handle(nopCloseConn{c})
	})
	r := Dial(addr, WithAttempts(3), WithBackoff(time.Millisecond))
	defer r.Close()
	n, err := r.PlanCount(attack.PlanAll())
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if n != st.Len() {
		t.Fatalf("Count = %d, want %d", n, st.Len())
	}
}

// nopCloseConn lets rawSite's deferred Close coexist with handle's.
type nopCloseConn struct{ net.Conn }

func (nopCloseConn) Close() error { return nil }

// TestDialRetryBackoff: nothing listening at all exhausts the attempts
// and reports the dial failure rather than hanging.
func TestDialRetryBackoff(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens here now
	r := Dial(addr, WithAttempts(2), WithBackoff(time.Millisecond), WithDialTimeout(time.Second))
	if _, err := r.PlanCount(attack.PlanAll()); err == nil {
		t.Fatal("count against a dead site succeeded")
	}
}

// TestUnixSocketSite: the unix-socket transport works end to end and is
// selected automatically from the path-shaped address.
func TestUnixSocketSite(t *testing.T) {
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(67)), 200))
	sock := t.TempDir() + "/site.sock"
	l, err := Listen(sock)
	if err != nil {
		t.Skipf("unix sockets unavailable: %v", err)
	}
	defer l.Close()
	go NewServer(st).Serve(l)
	r := Dial(sock)
	defer r.Close()
	n, err := r.PlanCount(attack.PlanAll())
	if err != nil {
		t.Fatal(err)
	}
	if n != st.Len() {
		t.Fatalf("Count over unix socket = %d, want %d", n, st.Len())
	}
}

// TestRemoteCountsUnderLiveIngest is the federated leg of the
// writer-vs-readers stress test: a writer AddBatches into a served
// store while concurrent RemoteStore clients count it over the wire.
// Batches publish atomically, so every remote count must be a
// whole-batch prefix, per-client monotonic, and per-vector results must
// match the from-scratch oracle of their prefix. Run under -race this
// also proves the server handlers need no lock over the store.
func TestRemoteCountsUnderLiveIngest(t *testing.T) {
	const (
		batches   = 16
		batchSize = 50
		clients   = 4
	)
	rng := rand.New(rand.NewSource(73))
	events := randomEvents(rng, batches*batchSize)

	kByCount := make(map[int]int, batches+1)
	vecByK := make([][attack.NumVectors]int, batches+1)
	for k := 0; k <= batches; k++ {
		fresh := attack.NewStore(events[:k*batchSize])
		kByCount[fresh.Len()] = k
		vecByK[k] = fresh.Query().CountByVector()
	}

	st := &attack.Store{}
	r := startSite(t, st)
	_ = r // each client goroutine dials its own connection below

	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < batches; k++ {
			st.AddBatch(events[k*batchSize : (k+1)*batchSize])
		}
		writerDone.Store(true)
	}()

	addr := r.Addr()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := Dial(addr)
			defer cl.Close()
			lastK := 0
			for done := false; !done; {
				done = writerDone.Load()
				n, err := cl.PlanCount(attack.PlanAll())
				if err != nil {
					t.Error(err)
					return
				}
				k, ok := kByCount[n]
				if !ok {
					t.Errorf("client %d: remote Count %d is not a whole-batch prefix", c, n)
					return
				}
				if k < lastK {
					t.Errorf("client %d: remote Count went back in time (prefix %d after %d)", c, k, lastK)
					return
				}
				lastK = k
				vec, err := cl.PlanCountByVector(attack.PlanAll())
				if err != nil {
					t.Error(err)
					return
				}
				total := 0
				for _, v := range vec {
					total += v
				}
				vk, ok := kByCount[total]
				if !ok || vk < lastK {
					t.Errorf("client %d: remote CountByVector total %d invalid at prefix %d", c, total, lastK)
					return
				}
				lastK = vk
				if vec != vecByK[vk] {
					t.Errorf("client %d: remote CountByVector diverged from prefix %d oracle", c, vk)
					return
				}
			}
			if lastK != batches {
				t.Errorf("client %d finished at prefix %d, want %d", c, lastK, batches)
			}
		}(c)
	}
	wg.Wait()
}

// TestServerShutdown covers the cmd/amppot shutdown ordering: after the
// listener closes, Shutdown must unblock a handler parked mid-request
// (by closing its connection), wait for in-flight handlers to return,
// and leave nothing serving — so a final capture flush/write can never
// be observed by a remote fetch.
func TestServerShutdown(t *testing.T) {
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(79)), 200))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	// A healthy round trip first, keeping its connection open.
	r := Dial(l.Addr().String())
	defer r.Close()
	if n, err := r.PlanCount(attack.PlanAll()); err != nil || n != st.Len() {
		t.Fatalf("pre-shutdown count: n=%d err=%v", n, err)
	}

	// Park a second connection mid-frame: the handler blocks reading the
	// rest of the request and only Shutdown's conn close can free it.
	stuck, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	if _, err := stuck.Write([]byte("DFED")); err != nil { // header fragment
		t.Fatal(err)
	}
	// Let the server accept and park the handler before shutting down.
	time.Sleep(50 * time.Millisecond)

	l.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after listener close", err)
	}
	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on a handler parked mid-frame")
	}

	// Nothing serves anymore: a fresh client cannot reach the store.
	dead := Dial(l.Addr().String(), WithAttempts(1), WithBackoff(time.Millisecond))
	defer dead.Close()
	if _, err := dead.PlanCount(attack.PlanAll()); err == nil {
		t.Fatal("count succeeded after Shutdown")
	}
}

package federation

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"doscope/internal/attack"
	"doscope/internal/faultnet"
)

// TestBreakerStateMachine walks the closed → open → half-open →
// closed/reopen transitions on an injected clock, so the cool-down
// edges are exact instead of sleep-raced.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Minute)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("closed breaker rejected request %d: %v", i, err)
		}
		if b.failure() {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	if st := b.status(); st.State != BreakerClosed || st.Failures != 2 {
		t.Fatalf("status = %+v, want closed with 2 failures", st)
	}
	if !b.failure() {
		t.Fatal("breaker still closed at the failure threshold")
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker admitted a request: %v", err)
	}
	if !errors.Is(b.allow(), attack.ErrBackendSkipped) {
		t.Fatal("ErrCircuitOpen does not wrap attack.ErrBackendSkipped")
	}

	// One tick short of the cool-down: still open.
	now = now.Add(time.Minute - time.Nanosecond)
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("breaker half-opened before the cool-down elapsed")
	}
	// Cool-down elapsed: exactly one probe admitted, concurrent
	// requests keep bouncing until it settles.
	now = now.Add(time.Nanosecond)
	if err := b.allow(); err != nil {
		t.Fatalf("cooled-down breaker rejected the probe: %v", err)
	}
	if st := b.status(); st.State != BreakerHalfOpen {
		t.Fatalf("state after admitting probe = %s, want half-open", st.State)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// Probe fails: reopen for a fresh cool-down.
	if !b.failure() {
		t.Fatal("failed probe left the breaker non-open")
	}
	now = now.Add(30 * time.Second)
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("reopened breaker forgot its new cool-down start")
	}
	now = now.Add(30 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	// Probe succeeds: closed, failure run cleared.
	b.success()
	if st := b.status(); st.State != BreakerClosed || st.Failures != 0 {
		t.Fatalf("status after successful probe = %+v, want closed/0", st)
	}
	if err := b.allow(); err != nil {
		t.Fatalf("closed breaker rejecting: %v", err)
	}
}

// TestBreakerOpensOnDeadSite: a site that refuses everything trips the
// breaker after the threshold, after which requests fail immediately —
// in memory, no dial — with an error degraded terminals classify as
// skipped.
func TestBreakerOpensOnDeadSite(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens here now

	r := Dial(addr,
		WithAttempts(1), WithDialTimeout(500*time.Millisecond),
		WithBreaker(2, time.Hour), WithHealthProbe(0))
	defer r.Close()

	for i := 0; i < 2; i++ {
		if _, err := r.PlanCount(attack.PlanAll()); err == nil {
			t.Fatal("count against a dead site succeeded")
		} else if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("request %d rejected by the breaker before the threshold", i)
		}
	}
	if st, on := r.Breaker(); !on || st.State != BreakerOpen {
		t.Fatalf("breaker after threshold failures = %+v enabled=%v, want open", st, on)
	}

	start := time.Now()
	_, err = r.PlanCount(attack.PlanAll())
	if !errors.Is(err, ErrCircuitOpen) || !errors.Is(err, attack.ErrBackendSkipped) {
		t.Fatalf("open-breaker error = %v, want ErrCircuitOpen wrapping ErrBackendSkipped", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("open-breaker rejection took %v, want in-memory fast", d)
	}

	// Degraded federated terminals see the open breaker as a skip, not
	// a failure — the healthy backend's answer still comes back whole.
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(83)), 400))
	n, statuses, err := attack.QueryBackends(st, r).CountPartial()
	if err != nil {
		t.Fatal(err)
	}
	if n != st.Len() {
		t.Errorf("degraded count = %d, want the local store's %d", n, st.Len())
	}
	if statuses[1].State != attack.BackendSkipped {
		t.Errorf("breaker-open site classified %s, want skipped", statuses[1].State)
	}
}

// TestBreakerHalfOpenRecovery: with background probing disabled, a
// healed site rejoins via the half-open request probe after the
// cool-down.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(89)), 300))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go NewServer(st).Serve(l)

	proxy, err := faultnet.Listen(l.Addr().String(), faultnet.Faults{Refuse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	r := Dial(proxy.Addr(),
		WithAttempts(1), WithDialTimeout(500*time.Millisecond),
		WithBreaker(1, 30*time.Millisecond), WithHealthProbe(0))
	defer r.Close()

	if _, err := r.PlanCount(attack.PlanAll()); err == nil {
		t.Fatal("count through a refusing proxy succeeded")
	}
	if bst, _ := r.Breaker(); bst.State != BreakerOpen {
		t.Fatalf("breaker = %s after threshold-1 failure, want open", bst.State)
	}
	if _, err := r.PlanCount(attack.PlanAll()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("request inside the cool-down = %v, want ErrCircuitOpen", err)
	}

	proxy.Heal()
	time.Sleep(50 * time.Millisecond) // cool-down elapsed
	n, err := r.PlanCount(attack.PlanAll())
	if err != nil {
		t.Fatalf("half-open probe against the healed site failed: %v", err)
	}
	if n != st.Len() {
		t.Fatalf("post-recovery count = %d, want %d", n, st.Len())
	}
	if bst, _ := r.Breaker(); bst.State != BreakerClosed || bst.Failures != 0 {
		t.Fatalf("breaker after recovery = %+v, want closed/0", bst)
	}
}

// TestBackgroundProbeRejoin: with the health prober on, a healed site
// rejoins without any caller traffic — the prober's version frames
// close the breaker on their own.
func TestBackgroundProbeRejoin(t *testing.T) {
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(91)), 300))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go NewServer(st).Serve(l)

	proxy, err := faultnet.Listen(l.Addr().String(), faultnet.Faults{Refuse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	r := Dial(proxy.Addr(),
		WithAttempts(1), WithDialTimeout(500*time.Millisecond),
		WithBreaker(1, time.Hour), // only the prober can close it
		WithHealthProbe(10*time.Millisecond))
	defer r.Close()

	if _, err := r.PlanCount(attack.PlanAll()); err == nil {
		t.Fatal("count through a refusing proxy succeeded")
	}
	proxy.Heal()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if bst, _ := r.Breaker(); bst.State == BreakerClosed {
			break
		}
		if time.Now().After(deadline) {
			bst, _ := r.Breaker()
			t.Fatalf("prober never closed the breaker; state %s", bst.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	n, err := r.PlanCount(attack.PlanAll())
	if err != nil || n != st.Len() {
		t.Fatalf("count after background rejoin = (%d, %v), want (%d, nil)", n, err, st.Len())
	}
}

// TestBreakerRaceStress hammers one RemoteStore from many goroutines
// while the site flaps healthy/refusing underneath — the breaker, the
// prober lifecycle, and ops snapshots all racing. Run under -race; the
// assertion is the absence of data races and a usable site afterwards.
func TestBreakerRaceStress(t *testing.T) {
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(93)), 200))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go NewServer(st).Serve(l)

	proxy, err := faultnet.Listen(l.Addr().String(), faultnet.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	r := Dial(proxy.Addr(),
		WithAttempts(1), WithDialTimeout(200*time.Millisecond),
		WithRequestTimeout(200*time.Millisecond),
		WithBreaker(2, 5*time.Millisecond), WithHealthProbe(5*time.Millisecond))
	defer r.Close()

	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		sick := false
		for {
			select {
			case <-stop:
				proxy.Heal()
				return
			case <-time.After(10 * time.Millisecond):
				sick = !sick
				proxy.SetFaults(faultnet.Faults{Refuse: sick})
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, _ = r.PlanCount(attack.PlanAll())
				_, _ = r.Breaker()
			}
		}()
	}
	wg.Wait()
	close(stop)
	flapper.Wait()

	// The site is healthy again; the breaker must let it rejoin.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := r.PlanCount(attack.PlanAll())
		if err == nil {
			if n != st.Len() {
				t.Fatalf("post-stress count = %d, want %d", n, st.Len())
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("site never rejoined after the stress run: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// flakyListener fails its first n Accepts with a temporary error —
// EMFILE-style transience — before delegating to the real listener.
type flakyListener struct {
	net.Listener
	mu   sync.Mutex
	fail int
}

type tempError struct{}

func (tempError) Error() string   { return "accept: too many open files" }
func (tempError) Temporary() bool { return true }
func (tempError) Timeout() bool   { return false }

func (f *flakyListener) Accept() (net.Conn, error) {
	f.mu.Lock()
	if f.fail > 0 {
		f.fail--
		f.mu.Unlock()
		return nil, tempError{}
	}
	f.mu.Unlock()
	return f.Listener.Accept()
}

// TestServeSurvivesTemporaryAcceptErrors: transient Accept failures are
// retried with backoff instead of killing the accept loop — the site
// still serves the connection that arrives after the glitch.
func TestServeSurvivesTemporaryAcceptErrors(t *testing.T) {
	st := attack.NewStore(randomEvents(rand.New(rand.NewSource(95)), 150))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	fl := &flakyListener{Listener: l, fail: 3}
	done := make(chan error, 1)
	go func() { done <- NewServer(st).Serve(fl) }()

	r := Dial(l.Addr().String(), WithAttempts(1))
	defer r.Close()
	n, err := r.PlanCount(attack.PlanAll())
	if err != nil {
		t.Fatalf("count after transient accept errors: %v", err)
	}
	if n != st.Len() {
		t.Fatalf("count = %d, want %d", n, st.Len())
	}

	l.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v on listener close, want nil", err)
	}
}

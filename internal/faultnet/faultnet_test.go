package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// echoServer answers every connection with a fixed banner, then echoes
// request bytes back — enough traffic shape to observe each fault.
func echoServer(t *testing.T) (addr string, banner []byte) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	banner = bytes.Repeat([]byte("dosbanner"), 100) // 900 bytes
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				c.Write(banner)
				io.Copy(c, c)
			}()
		}
	}()
	return l.Addr().String(), banner
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTransparent(t *testing.T) {
	addr, banner := echoServer(t)
	p, err := Listen(addr, Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	got := make([]byte, len(banner))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, banner) {
		t.Error("transparent proxy altered the response bytes")
	}
	// Request direction forwards too: echo round-trip.
	c.Write([]byte("ping"))
	echo := make([]byte, 4)
	if _, err := io.ReadFull(c, echo); err != nil || string(echo) != "ping" {
		t.Errorf("echo through proxy = %q, %v", echo, err)
	}
}

func TestRefuse(t *testing.T) {
	addr, _ := echoServer(t)
	p, err := Listen(addr, Faults{Refuse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("refused connection delivered response bytes")
	}
}

func TestBlackhole(t *testing.T) {
	addr, _ := echoServer(t)
	p, err := Listen(addr, Faults{Blackhole: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	// Writes succeed — the hole swallows them — but no byte ever comes
	// back; only the client's own deadline ends the wait.
	if _, err := c.Write([]byte("anyone home")); err != nil {
		t.Fatalf("write into blackhole failed: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackhole read ended with %v, want deadline timeout", err)
	}
}

func TestLatency(t *testing.T) {
	addr, banner := echoServer(t)
	const lat = 80 * time.Millisecond
	p, err := Listen(addr, Faults{Latency: lat})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	c := dialProxy(t, p)
	got := make([]byte, len(banner))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < lat {
		t.Errorf("first response byte after %v, want >= %v", d, lat)
	}
}

func TestTruncate(t *testing.T) {
	addr, banner := echoServer(t)
	p, err := Listen(addr, Faults{TruncateAfter: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	got, _ := io.ReadAll(c)
	if len(got) != 100 {
		t.Fatalf("truncated response delivered %d bytes, want 100", len(got))
	}
	if !bytes.Equal(got, banner[:100]) {
		t.Error("delivered prefix differs from the real response prefix")
	}
}

func TestReset(t *testing.T) {
	addr, _ := echoServer(t)
	p, err := Listen(addr, Faults{ResetAfter: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := io.ReadAll(c)
	if len(got) > 64 {
		t.Fatalf("reset connection delivered %d bytes, want <= 64", len(got))
	}
	if err == nil && len(got) == 64 {
		// Acceptable: some platforms surface the RST as a plain close
		// after the partial delivery. The essential property is the
		// response never completed.
		return
	}
}

func TestCorruptDeterministic(t *testing.T) {
	addr, banner := echoServer(t)
	read := func(seed uint64) []byte {
		p, err := Listen(addr, Faults{CorruptProb: 0.05, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		c := dialProxy(t, p)
		got := make([]byte, len(banner))
		if _, err := io.ReadFull(c, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := read(7), read(7)
	if !bytes.Equal(a, b) {
		t.Error("same seed corrupted different byte positions")
	}
	if bytes.Equal(a, banner) {
		t.Error("corruption fault delivered the response unmodified")
	}
	other := read(8)
	if bytes.Equal(a, other) {
		t.Error("different seeds corrupted identical positions — not seed-driven")
	}
}

// TestHeal: faults swapped at runtime apply to new connections — the
// injure → observe → heal → rejoin cycle the chaos tests drive.
func TestHeal(t *testing.T) {
	addr, banner := echoServer(t)
	p, err := Listen(addr, Faults{Blackhole: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("blackholed connection answered")
	}

	p.Heal()
	if p.Faults() != (Faults{}) {
		t.Fatalf("Faults after Heal = %+v", p.Faults())
	}
	c2 := dialProxy(t, p)
	got := make([]byte, len(banner))
	if _, err := io.ReadFull(c2, got); err != nil {
		t.Fatalf("healed proxy still failing: %v", err)
	}
}

// TestInjureSeversLiveConns: arming a fault kills established
// connections, so a client holding a warm connection feels the outage
// instead of riding out the chaos on a pre-fault session.
func TestInjureSeversLiveConns(t *testing.T) {
	addr, banner := echoServer(t)
	p, err := Listen(addr, Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	got := make([]byte, len(banner))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	p.SetFaults(Faults{Blackhole: true})
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	// The live connection dies rather than continuing to echo.
	c.Write([]byte("ping"))
	if _, err := io.ReadFull(c, make([]byte, 4)); err == nil {
		t.Fatal("pre-fault connection still answering after the site was injured")
	}
}

func TestCloseTearsDownConns(t *testing.T) {
	addr, _ := echoServer(t)
	p, err := Listen(addr, Faults{Blackhole: true})
	if err != nil {
		t.Fatal(err)
	}
	c := dialProxy(t, p)
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read on torn-down connection succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close left a blackholed connection parked")
	}
}

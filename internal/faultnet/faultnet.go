// Package faultnet is a deterministic fault-injecting TCP/unix proxy
// for exercising partial-failure paths: it sits between a client and a
// real server (a federation site, an HTTP backend) and injures the
// connection in controlled, seed-reproducible ways — added latency,
// refused connections, blackholed requests, resets mid-frame, truncated
// or corrupted responses.
//
// The fault set is swappable at runtime (SetFaults), so a test or the
// -chaos demo can blackhole a site, watch the serving layer degrade and
// the circuit breaker open, then heal the site and watch it rejoin —
// all without touching the server under test. Already-established
// connections keep the faults they were accepted under; clients that
// reconnect (every sane wire client after a failure) observe the new
// set.
//
// Faults apply to the response direction (server → client): that is
// where a query client can be hurt mid-answer. The request direction is
// forwarded verbatim.
package faultnet

import (
	"io"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"time"
)

// Faults selects what the proxy does to connections and responses.
// The zero value is a transparent proxy.
type Faults struct {
	// Refuse closes every accepted connection immediately — the
	// dial-level failure mode (a down daemon, a refusing firewall).
	Refuse bool
	// Blackhole accepts and reads requests but never responds — the
	// stall mode that only request deadlines can detect.
	Blackhole bool
	// Latency delays connection establishment and the first response
	// byte of each connection by this much.
	Latency time.Duration
	// ResetAfter kills the connection after this many response bytes
	// have been forwarded — a mid-frame connection reset (0 = off).
	ResetAfter int64
	// TruncateAfter stops forwarding response bytes after this many,
	// then closes — a cleanly truncated response (0 = off).
	TruncateAfter int64
	// CorruptProb flips one bit in a response byte with this
	// probability, drawn from the seeded per-connection stream — wire
	// corruption a frame or segment reader must reject (0 = off).
	CorruptProb float64
	// Seed makes byte corruption reproducible: the same seed, fault
	// set, and traffic corrupt the same byte positions.
	Seed uint64
}

// Proxy is one listening fault injector in front of one target
// address. Close it to stop accepting; in-flight connections are torn
// down with it.
type Proxy struct {
	l       net.Listener
	target  string
	network string

	mu     sync.Mutex
	faults Faults
	connID uint64 // per-connection corruption substream selector
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Listen starts a proxy for the server at target (host:port, or a unix
// socket path) on an ephemeral loopback port, injecting the given
// faults. The proxy listens on TCP regardless of the target's network,
// so it can front unix-socket sites for TCP-only clients too.
func Listen(target string, faults Faults) (*Proxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		l:       l,
		target:  target,
		network: netKind(target),
		faults:  faults,
		conns:   make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what the client under test
// dials instead of the real target.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// SetFaults swaps the fault set. New connections observe it
// immediately. Arming any fault also severs established connections —
// the way a crashed or partitioned site severs live TCP sessions, so a
// client holding a warm connection feels the outage too. Healing does
// not resurrect severed or injured connections (a client the site hung
// up on must reconnect, and reconnecting observes health).
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	if f.faulty() {
		for c := range p.conns {
			c.Close()
		}
	}
	p.mu.Unlock()
}

// faulty reports whether any fault is armed.
func (f Faults) faulty() bool {
	return f.Refuse || f.Blackhole || f.Latency > 0 || f.ResetAfter > 0 ||
		f.TruncateAfter > 0 || f.CorruptProb > 0
}

// Faults returns the current fault set.
func (p *Proxy) Faults() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Heal clears every fault — shorthand for SetFaults(Faults{}).
func (p *Proxy) Heal() { p.SetFaults(Faults{}) }

// Close stops accepting and tears down every in-flight connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.l.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		f := p.faults
		id := p.connID
		p.connID++
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.serve(conn, f, id)
			p.mu.Lock()
			delete(p.conns, conn)
			p.mu.Unlock()
		}()
	}
}

// track registers an upstream connection for teardown on Close.
func (p *Proxy) track(c net.Conn) (untrack func()) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}
}

// serve runs one proxied connection under a fixed fault set.
func (p *Proxy) serve(client net.Conn, f Faults, id uint64) {
	defer client.Close()
	if f.Refuse {
		return
	}
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.Blackhole {
		// Consume the requests so the client's writes succeed; never
		// answer a byte. Only the client's own deadline ends this.
		io.Copy(io.Discard, client)
		return
	}
	up, err := net.DialTimeout(p.network, p.target, 5*time.Second)
	if err != nil {
		return
	}
	defer up.Close()
	defer p.track(up)()

	// Requests forward verbatim; when the client is done writing, the
	// upstream learns via close so its handler unblocks.
	go func() {
		io.Copy(up, client)
		up.Close()
	}()
	p.copyResponses(client, up, f, id)
}

// copyResponses forwards server→client bytes through the armed faults.
func (p *Proxy) copyResponses(client, up net.Conn, f Faults, id uint64) {
	// Two independent substreams per connection: same seed, same
	// traffic, same corrupted byte positions — deterministic chaos.
	rng := rand.New(rand.NewPCG(f.Seed, id))
	var forwarded int64
	buf := make([]byte, 32*1024)
	first := true
	for {
		n, err := up.Read(buf)
		if n > 0 {
			if first && f.Latency > 0 {
				time.Sleep(f.Latency)
			}
			first = false
			chunk := buf[:n]
			if f.CorruptProb > 0 {
				for i := range chunk {
					if rng.Float64() < f.CorruptProb {
						chunk[i] ^= 1 << rng.IntN(8)
					}
				}
			}
			if f.TruncateAfter > 0 && forwarded+int64(len(chunk)) > f.TruncateAfter {
				chunk = chunk[:f.TruncateAfter-forwarded]
				client.Write(chunk)
				return
			}
			if f.ResetAfter > 0 && forwarded+int64(len(chunk)) > f.ResetAfter {
				chunk = chunk[:f.ResetAfter-forwarded]
				client.Write(chunk)
				abort(client)
				return
			}
			if _, werr := client.Write(chunk); werr != nil {
				return
			}
			forwarded += int64(n)
		}
		if err != nil {
			return
		}
	}
}

// abort closes the client side as abruptly as the platform allows: RST
// rather than FIN where SetLinger(0) is supported, so the client
// observes a reset mid-frame, not a tidy EOF.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// netKind mirrors federation's address convention: paths are unix
// sockets, host:port pairs are TCP.
func netKind(addr string) string {
	if strings.ContainsRune(addr, '/') {
		return "unix"
	}
	return "tcp"
}

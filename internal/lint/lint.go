// Package lint is doscope's custom static-analysis suite: five
// go/analysis analyzers that machine-check the contracts no compiler
// sees. They are the successors of the Makefile greps and the review
// checklist that used to guard these invariants by hand:
//
//   - scratchescape — the per-iteration scratch *Event yielded by
//     Iter/IterByStart/Fold must not outlive its callback (PR 2).
//   - readpurity — nothing reachable from a query terminal in
//     internal/attack may lock the writer mutex, call a mutator, or
//     load the published view more than once per execution (PR 5).
//   - errsentinel — errors on the federation/httpapi path must wrap
//     sentinels with %w so errors.Is classification keeps working
//     (PR 7's ok/failed/skipped split).
//   - nodeprecated — type-aware quarantine of the deprecated
//     (*attack.Store).Events/ByTarget snapshot API.
//   - ctxflow — QueryableContext implementations must thread the
//     caller's context, and cancellable paths must not block on
//     context-blind waits.
//
// Run them via cmd/dosvet (standalone, or as `go vet -vettool=`), or
// `make lint`. A finding the analyzer cannot see around is suppressed
// with a comment on the flagged line or the line above:
//
//	//dosvet:ignore readpurity <why this is safe>
//
// naming one or more comma-separated analyzers (or "all"). The reason
// is free-form but expected — a bare ignore reads as an unexplained
// hole in the contract.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Analyzers is the full dosvet suite, in the order cmd/dosvet runs it.
var Analyzers = []*analysis.Analyzer{
	ScratchEscape,
	ReadPurity,
	ErrSentinel,
	NoDeprecated,
	CtxFlow,
}

// reporter wraps pass.Reportf with //dosvet:ignore handling: a
// directive comment suppresses this analyzer's findings on its own
// line and on the line immediately below (so it works both trailing
// and as a lead-in comment).
type reporter struct {
	pass    *analysis.Pass
	ignored map[string]map[int]bool // filename -> suppressed line
}

func newReporter(pass *analysis.Pass) *reporter {
	r := &reporter{pass: pass, ignored: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "dosvet:ignore")
				if !ok {
					continue
				}
				// The first field is the comma-separated analyzer
				// list; everything after it is the human reason.
				names := ""
				if fields := strings.Fields(rest); len(fields) > 0 {
					names = fields[0]
				}
				if names != "" && names != "all" &&
					!slices.Contains(strings.Split(names, ","), pass.Analyzer.Name) {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				lines := r.ignored[p.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					r.ignored[p.Filename] = lines
				}
				lines[p.Line] = true
				lines[p.Line+1] = true
			}
		}
	}
	return r
}

func (r *reporter) reportf(pos token.Pos, format string, args ...any) {
	p := r.pass.Fset.Position(pos)
	if lines, ok := r.ignored[p.Filename]; ok && lines[p.Line] {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

// inTestFile reports whether pos lives in a _test.go file.
func inTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// namedOf unwraps aliases and one level of pointer to the named type
// underneath, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (through aliases and one pointer) is a
// named type typeName declared in a package *named* pkgName. Matching
// the package name rather than its import path keeps the analyzers
// honest on both the real tree (doscope/internal/attack) and the
// self-contained testdata corpora (lintdata/attack).
func isNamedType(t types.Type, pkgName string, typeNames ...string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && slices.Contains(typeNames, n.Obj().Name())
}

// isEventPtr reports whether t is *attack.Event.
func isEventPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return isNamedType(p.Elem(), "attack", "Event")
	}
	return false
}

// calleeFunc resolves the static callee of call, or nil for calls of
// function values, builtins, and conversions.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	return fn
}

// recvNamed returns the package and type name of fn's receiver's named
// type ("", "" for functions and unusable receivers).
func recvNamed(fn *types.Func) (pkgName, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	n := namedOf(sig.Recv().Type())
	if n == nil || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Pkg().Name(), n.Obj().Name()
}

// isPkgFunc reports whether fn is the function pkgPath.name (by import
// path, for stdlib callees like fmt.Errorf and time.Sleep).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// canAlias reports whether a value of type t can carry a reference to
// shared storage (so assigning it propagates aliasing). Scalars and
// strings cannot; anything with a pointer, slice, map, chan, func or
// interface inside can.
func canAlias(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return t != nil // deep recursion: assume aliasing, stay sound
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if canAlias(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return canAlias(u.Elem(), depth+1)
	default:
		return false
	}
}

// rootIdent unwraps index, selector, star and paren expressions to the
// base identifier being written through (m in m[k].f), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

package lint

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
)

// NoDeprecated is the type-aware replacement for the Makefile's two
// deprecated-API greps: it flags calls to (*attack.Store).Events and
// (*attack.Store).ByTarget — the snapshot shims kept for the paper's
// original example style — anywhere outside the attack package itself.
// The greps matched variable names (st.Events()); this matches the
// method on the receiver's type, so renaming the variable no longer
// smuggles a deprecated call past the check, and false positives on
// unrelated Events/ByTarget methods are gone.
//
// The attack package (the shims' own bodies and the tests that use
// Events() as an oracle) is allowlisted, as are _test.go files.
var NoDeprecated = &analysis.Analyzer{
	Name: "nodeprecated",
	Doc: "flags calls to the deprecated (*attack.Store).Events/ByTarget " +
		"snapshot API outside the attack package",
	Run: runNoDeprecated,
}

func runNoDeprecated(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "attack" {
		return nil, nil
	}
	rep := newReporter(pass)
	replacement := map[string]string{
		"Events":   "Query().Iter() (or Query().Events() for a filtered copy)",
		"ByTarget": "Query().GroupByTarget()",
	}
	for _, f := range pass.Files {
		if inTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil {
				return true
			}
			repl, deprecated := replacement[fn.Name()]
			if !deprecated {
				return true
			}
			if pkg, typ := recvNamed(fn); pkg != "attack" || typ != "Store" {
				return true
			}
			rep.reportf(call.Pos(), "(*attack.Store).%s is deprecated: it materializes "+
				"the whole store on every call; use %s", fn.Name(), repl)
			return true
		})
	}
	return nil, nil
}

// Package linttest is an offline analysistest equivalent: it loads
// golden corpora from a GOPATH-style testdata tree, typechecks them
// with the source importer (stdlib from GOROOT, fake dependencies such
// as lintdata/attack from the same tree), runs one analyzer per
// package, and diffs its diagnostics against `// want "regexp"`
// comments.
//
// It exists because the toolchain's vendored x/tools (the copy under
// third_party/) ships the analysis framework but not analysistest or
// go/packages; this harness reimplements the slice of analysistest the
// suite needs with no network and no module downloads.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each pkgpath under dir and checks a's diagnostics against
// the corpus's // want comments. A package without want comments is a
// negative corpus: the analyzer must stay silent on it.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := newLoader(t, dir)
	for _, path := range pkgpaths {
		pi := ld.load(path)
		diags := runAnalyzer(t, ld.fset, a, pi)
		checkWants(t, ld.fset, path, pi.files, diags)
	}
}

type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	t    *testing.T
	dir  string
	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*pkgInfo
}

func newLoader(t *testing.T, dir string) *loader {
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		t.Fatal("source importer does not implement ImporterFrom")
	}
	return &loader{t: t, dir: dir, fset: fset, std: std, pkgs: map[string]*pkgInfo{}}
}

func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

func (ld *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pi, ok := ld.pkgs[path]; ok {
		return pi.pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(ld.dir, path)); err == nil && fi.IsDir() {
		return ld.load(path).pkg, nil
	}
	return ld.std.ImportFrom(path, srcDir, mode)
}

func (ld *loader) load(path string) *pkgInfo {
	ld.t.Helper()
	if pi, ok := ld.pkgs[path]; ok {
		return pi
	}
	pkgDir := filepath.Join(ld.dir, path)
	names, err := filepath.Glob(filepath.Join(pkgDir, "*.go"))
	if err != nil || len(names) == 0 {
		ld.t.Fatalf("corpus %s: no Go files (%v)", pkgDir, err)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			ld.t.Fatalf("corpus %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: ld, Sizes: sizes()}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("corpus %s does not typecheck: %v", path, err)
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = pi
	return pi
}

func sizes() types.Sizes {
	if s := types.SizesFor("gc", runtime.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

type diag struct {
	pos token.Position
	msg string
}

// runAnalyzer hand-constructs an analysis.Pass over pi (running any
// prerequisite analyzers first) and collects the diagnostics.
func runAnalyzer(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, pi *pkgInfo) []diag {
	t.Helper()
	results := map[*analysis.Analyzer]any{}
	var run func(a *analysis.Analyzer) (any, []diag)
	run = func(a *analysis.Analyzer) (any, []diag) {
		resultOf := map[*analysis.Analyzer]any{}
		for _, req := range a.Requires {
			if _, ok := results[req]; !ok {
				res, _ := run(req)
				results[req] = res
			}
			resultOf[req] = results[req]
		}
		var out []diag
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      pi.files,
			Pkg:        pi.pkg,
			TypesInfo:  pi.info,
			TypesSizes: sizes(),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				out = append(out, diag{pos: fset.Position(d.Pos), msg: d.Message})
			},
			ReadFile: os.ReadFile,
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
		return res, out
	}
	_, diags := run(a)
	return diags
}

// want is one expectation parsed from a // want comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRx = regexp.MustCompile(`//\s*want\s+(.*)`)
var wantArgRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func checkWants(t *testing.T, fset *token.FileSet, pkgpath string, files []*ast.File, diags []diag) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantArgRx.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.pos.Filename && w.line == d.pos.Line && w.re.MatchString(d.msg) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.pos, d.msg)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	if len(wants) == 0 && len(diags) == 0 {
		t.Logf("%s: negative corpus clean", pkgpath)
	}
}

package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// CtxFlow enforces context propagation on the degraded-mode fan-out
// path (PR 7): a caller-supplied deadline must bound the whole
// request, so backends and helpers may not drop the context on the
// floor. It flags:
//
//   - implementations of the QueryableContext methods (PlanCountContext
//     and friends) that never use their context parameter — a backend
//     that ignores ctx silently turns every deadline into the
//     transport default,
//   - time.Sleep inside any function that has a context in scope
//     (parameter of it or of an enclosing literal) in the attack,
//     federation, and httpapi packages — a context-blind sleep stalls
//     cancellation; use a ctx-aware wait (federation's sleepCtx),
//   - context-less Queryable calls (PlanCount and friends) on an
//     interface-typed backend from a function with a context in scope,
//     unless that function first type-asserts to QueryableContext —
//     the fall-back-after-assert pattern the exec closures use.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags QueryableContext backends that drop the incoming context " +
		"and context-blind blocking calls on cancellable paths",
	Run: runCtxFlow,
}

var qcMethods = map[string]bool{
	"PlanCountContext":         true,
	"PlanCountByVectorContext": true,
	"PlanCountByDayContext":    true,
	"PlanStoreContext":         true,
}

var planMethods = map[string]bool{
	"PlanCount":         true,
	"PlanCountByVector": true,
	"PlanCountByDay":    true,
	"PlanStore":         true,
}

func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	rep := newReporter(pass)
	scoped := false
	switch pass.Pkg.Name() {
	case "attack", "federation", "httpapi":
		scoped = true
	}
	for _, f := range pass.Files {
		if inTestFile(pass, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkQCImpl(pass, rep, fd)
			if scoped {
				checkCtxBlind(pass, rep, fd)
			}
		}
	}
	return nil, nil
}

// checkQCImpl flags QueryableContext method implementations whose ctx
// parameter is unnamed, blank, or never read.
func checkQCImpl(pass *analysis.Pass, rep *reporter, fd *ast.FuncDecl) {
	if fd.Recv == nil || !qcMethods[fd.Name.Name] {
		return
	}
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return
	}
	first := params.List[0]
	if !isContextType(pass.TypesInfo.TypeOf(first.Type)) {
		return
	}
	if len(first.Names) == 0 || first.Names[0].Name == "_" {
		rep.reportf(first.Pos(), "%s implements QueryableContext but discards its context; "+
			"thread ctx into the request so caller deadlines bound it", fd.Name.Name)
		return
	}
	obj := pass.TypesInfo.ObjectOf(first.Names[0])
	if obj == nil {
		return
	}
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	if !used {
		rep.reportf(first.Pos(), "%s implements QueryableContext but never uses ctx; "+
			"thread it into the request so caller deadlines bound it", fd.Name.Name)
	}
}

// ctxFrame is one function (decl or literal) on the lexical stack,
// with whether it (or an enclosing frame) has a context parameter and
// whether its body contains a QueryableContext type assertion.
type ctxFrame struct {
	hasCtx   bool
	asserted bool
}

// checkCtxBlind walks fd flagging context-blind sleeps and
// context-less Queryable interface calls made while a ctx is in scope.
func checkCtxBlind(pass *analysis.Pass, rep *reporter, fd *ast.FuncDecl) {
	var stack []ctxFrame

	push := func(ft *ast.FuncType, body *ast.BlockStmt) {
		fr := ctxFrame{}
		if len(stack) > 0 {
			fr = stack[len(stack)-1] // ctx stays lexically in scope
		}
		if ft.Params != nil {
			for _, p := range ft.Params.List {
				if isContextType(pass.TypesInfo.TypeOf(p.Type)) {
					fr.hasCtx = true
				}
			}
		}
		if body != nil && hasQCAssert(pass, body) {
			fr.asserted = true
		}
		stack = append(stack, fr)
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			push(n.Type, n.Body)
			walk(n.Body)
			stack = stack[:len(stack)-1]
			return
		case *ast.CallExpr:
			if len(stack) > 0 && stack[len(stack)-1].hasCtx {
				fr := stack[len(stack)-1]
				fn := calleeFunc(pass, n)
				switch {
				case isPkgFunc(fn, "time", "Sleep"):
					rep.reportf(n.Pos(), "time.Sleep with a context in scope stalls "+
						"cancellation; use a ctx-aware wait (select on time.After/ctx.Done, "+
						"see federation.sleepCtx)")
				case fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "attack" &&
					planMethods[fn.Name()] && !fr.asserted && interfaceRecvCall(pass, n):
					rep.reportf(n.Pos(), "context-less %s on an interface backend while ctx "+
						"is in scope; type-assert to QueryableContext first and fall back "+
						"only for local backends", fn.Name())
				}
			}
		}
		for _, c := range childNodes(n) {
			walk(c)
		}
	}

	push(fd.Type, fd.Body)
	walk(fd.Body)
}

// interfaceRecvCall reports whether call is a method call through an
// interface-typed receiver (dynamic dispatch — the case where the
// concrete backend might offer QueryableContext).
func interfaceRecvCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return t != nil && types.IsInterface(t)
}

// hasQCAssert reports whether body contains a type assertion or type
// switch to a type named QueryableContext.
func hasQCAssert(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ta, ok := n.(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil {
			return true
		}
		if isNamedType(pass.TypesInfo.TypeOf(ta.Type), "attack", "QueryableContext") {
			found = true
		}
		return !found
	})
	return found
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// ReadPurity enforces the PR 5 read-path contract inside the attack
// package: queries run lock-free against one published view snapshot.
// Concretely, in any function reachable from a function that loads the
// published view (Store.view / Query.views — the loaders behind every
// query terminal), it flags:
//
//   - touching the writer mutex (sync.Mutex/RWMutex Lock and friends),
//   - calling a writer-side mutator (Add, AddBatch, Seal, ingest,
//     beginWrite, adoptLazy, ownCounts, publish, sealShard on Store;
//     appendRow, thaw, seal, sealTgt, countRows on shard),
//   - loading the view more than once per execution: a second
//     same-receiver loader call in one body, or a loader call inside a
//     loop whose receiver the loop does not rebind (Query.views, the
//     one blessed per-store loop, is a loader itself and exempt),
//   - touching the Store.pub pointer anywhere but view and publish.
//
// Reachability follows direct static calls and deliberately stops at
// constructor boundaries — callees returning a *Store (NewStore,
// Collect, PlanStore, segment openers) build a private store and may
// lock it; that store is theirs.
var ReadPurity = &analysis.Analyzer{
	Name: "readpurity",
	Doc: "flags locking, mutation, and repeated view loads on attack's " +
		"query read paths, which must run lock-free against one published view",
	Run: runReadPurity,
}

var (
	storeMutators = map[string]bool{
		"Add": true, "AddBatch": true, "Seal": true, "ingest": true,
		"beginWrite": true, "adoptLazy": true, "ownCounts": true,
		"publish": true, "sealShard": true,
		// The MPSC ingest front (PR 9): enqueueing, draining, and the
		// queue lifecycle are all writer-side — a read path reaching any
		// of them could publish (or block on) the very view it is
		// snapshotting.
		"enqueue": true, "drainOrWait": true, "drainAll": true,
		"drainer": true, "ensureIngest": true, "StartIngest": true,
		"Flush": true, "Close": true,
	}
	shardMutators = map[string]bool{
		"appendRow": true, "thaw": true, "seal": true, "sealTgt": true,
		"countRows": true,
	}
	mutexMethods = map[string]bool{
		"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
		"TryLock": true, "TryRLock": true,
	}
)

// isLoader reports whether fn is one of the published-view loaders.
func isLoader(fn *types.Func) bool {
	pkg, typ := recvNamed(fn)
	if pkg != "attack" {
		return false
	}
	return (fn.Name() == "view" && typ == "Store") ||
		(fn.Name() == "views" && typ == "Query")
}

// isMutator reports whether fn is a writer-side mutator.
func isMutator(fn *types.Func) bool {
	pkg, typ := recvNamed(fn)
	if pkg != "attack" {
		return false
	}
	return (typ == "Store" && storeMutators[fn.Name()]) ||
		(typ == "shard" && shardMutators[fn.Name()])
}

// isStoreCtor reports whether fn returns a *Store — the constructor
// boundary reachability does not cross.
func isStoreCtor(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isNamedType(sig.Results().At(i).Type(), "attack", "Store") {
			return true
		}
	}
	return false
}

// isMutexRecv reports whether fn's receiver is sync.Mutex or RWMutex.
func isMutexRecv(fn *types.Func) bool {
	pkg, typ := recvNamed(fn)
	return pkg == "sync" && (typ == "Mutex" || typ == "RWMutex")
}

// callsite is one direct call recorded while building the package call
// graph.
type callsite struct {
	callee   *types.Func
	pos      token.Pos
	loopRecv loopRecvKind
	recvText string // receiver expression text, for same-recv dedup
}

type loopRecvKind uint8

const (
	notInLoop         loopRecvKind = iota
	loopRebindsRecv                // receiver is bound by the enclosing loop
	loopInvariantRecv              // receiver survives iterations: repeated load
)

func runReadPurity(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() != "attack" {
		return nil, nil
	}
	rep := newReporter(pass)

	// The package call graph over non-test files. Func literals are
	// attributed to their enclosing declaration.
	bodies := make(map[*types.Func]*ast.FuncDecl)
	calls := make(map[*types.Func][]callsite)
	var order []*types.Func
	for _, f := range pass.Files {
		if inTestFile(pass, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			bodies[fn] = fd
			calls[fn] = collectCalls(pass, fd.Body)
			order = append(order, fn)
		}
	}

	// reaches(fn): whether fn's execution can load a published view,
	// stopping at constructor boundaries and never looking inside
	// loader or mutator bodies.
	reach := make(map[*types.Func]int8) // 0 unknown, 1 visiting, 2 yes, 3 no
	var reaches func(fn *types.Func) bool
	reaches = func(fn *types.Func) bool {
		switch reach[fn] {
		case 1, 3:
			return false
		case 2:
			return true
		}
		reach[fn] = 1
		ans := false
		for _, cs := range calls[fn] {
			if isLoader(cs.callee) {
				ans = true
				break
			}
			if isStoreCtor(cs.callee) || isMutator(cs.callee) {
				continue
			}
			if reaches(cs.callee) {
				ans = true
				break
			}
		}
		if ans {
			reach[fn] = 2
		} else {
			reach[fn] = 3
		}
		return ans
	}

	// The read set: every function that loads the view, plus everything
	// those functions call (transitively, same boundaries) — all of it
	// must stay pure.
	onReadPath := make(map[*types.Func]bool)
	var mark func(fn *types.Func)
	mark = func(fn *types.Func) {
		if onReadPath[fn] || isLoader(fn) || isMutator(fn) {
			return
		}
		onReadPath[fn] = true
		for _, cs := range calls[fn] {
			if isStoreCtor(cs.callee) || isLoader(cs.callee) {
				continue
			}
			mark(cs.callee)
		}
	}
	for _, fn := range order {
		if reaches(fn) {
			mark(fn)
		}
	}

	exemptBody := func(fn *types.Func) bool {
		if isLoader(fn) {
			return true
		}
		pkg, typ := recvNamed(fn)
		return pkg == "attack" && typ == "Store" && fn.Name() == "publish"
	}

	for _, fn := range order {
		if exemptBody(fn) {
			continue
		}
		// Store.pub is the published-view slot: only view and publish
		// may touch it, read path or not.
		ast.Inspect(bodies[fn].Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "pub" {
				return true
			}
			if isNamedType(pass.TypesInfo.TypeOf(sel.X), "attack", "Store") {
				rep.reportf(sel.Pos(), "%s accesses Store.pub directly; the published-view "+
					"pointer is loaded only by Store.view and stored only by Store.publish", fn.Name())
			}
			return true
		})
		if !onReadPath[fn] {
			continue
		}
		seenLoaderRecv := make(map[string]bool)
		for _, cs := range calls[fn] {
			switch {
			case isMutator(cs.callee):
				rep.reportf(cs.pos, "%s is reachable from a query terminal but calls the "+
					"mutator %s; read paths must not mutate the store", fn.Name(), cs.callee.Name())
			case mutexMethods[cs.callee.Name()] && isMutexRecv(cs.callee):
				rep.reportf(cs.pos, "%s is reachable from a query terminal but touches a "+
					"sync mutex (%s); read paths run lock-free against the published view",
					fn.Name(), cs.callee.Name())
			case isLoader(cs.callee):
				if cs.loopRecv == loopInvariantRecv {
					rep.reportf(cs.pos, "%s loads the published view inside a loop; load "+
						"once per execution and pass the snapshot down", fn.Name())
					continue
				}
				if cs.recvText != "" && seenLoaderRecv[cs.recvText] {
					rep.reportf(cs.pos, "%s loads the published view more than once per "+
						"execution; a second load can observe a different snapshot — reuse the first",
						fn.Name())
					continue
				}
				seenLoaderRecv[cs.recvText] = true
			}
		}
	}
	return nil, nil
}

// collectCalls records every direct call in body, noting for each how
// its receiver relates to enclosing loops (for the loader-in-loop
// rule). Func literals are walked as part of the enclosing body.
func collectCalls(pass *analysis.Pass, body ast.Node) []callsite {
	var out []callsite
	type loopFrame struct{ bound map[types.Object]bool }
	var loops []loopFrame

	bind := func(frame *loopFrame, exprs ...ast.Expr) {
		for _, e := range exprs {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					frame.bound[obj] = true
				}
			}
		}
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// Executor worker bodies are func literals handed to a
			// fan-out helper; they run as part of the enclosing
			// declaration's execution, so their calls are attributed to
			// it. (childNodes stops at literals for scratchescape's
			// sake, so descend explicitly.)
			walk(n.Body)
			return
		case *ast.ForStmt:
			loops = append(loops, loopFrame{bound: map[types.Object]bool{}})
			walk(n.Init)
			walk(n.Cond)
			walk(n.Post)
			walk(n.Body)
			loops = loops[:len(loops)-1]
			return
		case *ast.RangeStmt:
			frame := loopFrame{bound: map[types.Object]bool{}}
			bind(&frame, n.Key, n.Value)
			walk(n.X)
			loops = append(loops, frame)
			walk(n.Body)
			loops = loops[:len(loops)-1]
			return
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil {
				cs := callsite{callee: fn, pos: n.Pos()}
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					cs.recvText = exprText(sel.X)
					if len(loops) > 0 {
						cs.loopRecv = loopInvariantRecv
						if root := rootIdent(sel.X); root != nil {
							if obj := pass.TypesInfo.ObjectOf(root); obj != nil {
								for _, fr := range loops {
									if fr.bound[obj] {
										cs.loopRecv = loopRebindsRecv
									}
								}
							}
						}
					}
				}
				out = append(out, cs)
			}
		}
		for _, c := range childNodes(n) {
			walk(c)
		}
	}
	walk(body)
	return out
}

// exprText renders a receiver expression for same-receiver matching
// (s.view() twice in one body). It is syntactic on purpose: two
// different spellings of the same store are beyond a linter, but the
// overwhelmingly common bug is the literal repeat.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprText(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.StarExpr:
		return exprText(e.X)
	}
	return ""
}

// Corpus for the scratchescape analyzer: each flagged line retains the
// per-iteration scratch *Event (or an alias of its Ports) past its
// callback; the unflagged functions are the blessed patterns.
package scratch

import (
	"lintdata/attack"
)

var sink *attack.Event

// Storing the scratch pointer to a captured variable.
func captured(q *attack.Query) {
	for e := range q.Iter() {
		sink = e // want `stored to "sink"`
	}
}

// A value copy is not enough: the Ports slice header still aliases.
func valueCopy(q *attack.Query) []attack.Event {
	var out []attack.Event
	for e := range q.Iter() {
		out = append(out, *e) // want `appended to "out"`
	}
	return out
}

// Taint flows through locals to the captured variable.
func viaLocal(q *attack.Query) {
	var keep []uint16
	for e := range q.IterByStart() {
		p := e.Ports
		keep = p // want `stored to "keep"`
	}
	_ = keep
}

// Sending the scratch on a channel hands it to another goroutine.
func onChannel(q *attack.Query, ch chan *attack.Event) {
	for e := range q.Iter() {
		ch <- e // want `sent on a channel`
	}
}

// A goroutine capturing the scratch outlives the iteration step.
func inGoroutine(q *attack.Query, out chan int64) {
	for e := range q.Iter() {
		go func() {
			out <- e.Start // want `passed to a goroutine`
		}()
	}
}

// Returning the scratch from the surrounding search loop.
func firstLong(q *attack.Query) *attack.Event {
	for e := range q.Iter() {
		if e.End-e.Start > 3600 {
			return e // want `returned from the callback`
		}
	}
	return nil
}

var foldSink []uint16

// Fold's accumulator gets the same scratch event.
func foldEscape(q *attack.Query) int64 {
	return attack.Fold(q,
		func() int64 { return 0 },
		func(max int64, e *attack.Event) int64 {
			foldSink = e.Ports // want `stored to "foldSink"`
			if e.Start > max {
				return e.Start
			}
			return max
		},
		func(a, b int64) int64 { return a + b },
	)
}

// ---- negative corpus: the allowlisted patterns stay clean ----

func use(e *attack.Event) {}

// Scalar extraction and synchronous calls are fine.
func scalars(q *attack.Query) int64 {
	var total int64
	counts := map[uint32]int{}
	for e := range q.Iter() {
		total += e.End - e.Start
		counts[e.Target]++
		use(e)
	}
	return total + int64(len(counts))
}

// Clone() before retaining is the blessed pattern.
func cloned(q *attack.Query) []*attack.Event {
	var out []*attack.Event
	for e := range q.Iter() {
		out = append(out, e.Clone())
	}
	return out
}

// A value copy of a Clone is deep: appending it is fine too.
func clonedValues(q *attack.Query) []attack.Event {
	var out []attack.Event
	for e := range q.Iter() {
		out = append(out, *e.Clone())
	}
	return out
}

var held []*attack.Event

// GroupByTarget returns stable caller-owned events: retaining them is
// outside the scratch contract.
func grouped(q *attack.Query) {
	for _, evs := range q.GroupByTarget() {
		for _, e := range evs {
			held = append(held, e)
		}
	}
}

// Fold returning the accumulated scalar is fine.
func foldMax(q *attack.Query) int64 {
	return attack.Fold(q,
		func() int64 { return 0 },
		func(max int64, e *attack.Event) int64 {
			if e.Start > max {
				return e.Start
			}
			return max
		},
		func(a, b int64) int64 { return max(a, b) },
	)
}

var debugEvent *attack.Event

// A deliberate, documented exception suppresses the finding.
func suppressed(q *attack.Query) {
	for e := range q.Iter() {
		//dosvet:ignore scratchescape debug hook reads the event before the next yield
		debugEvent = e
	}
}

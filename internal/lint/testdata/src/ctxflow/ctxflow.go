// Corpus for the ctxflow analyzer. The package is named federation on
// purpose — the blocking-call rules engage on the attack, federation,
// and httpapi packages.
package federation

import (
	"context"
	"time"

	"lintdata/attack"
)

// ---- QueryableContext implementations ----

type goodBackend struct{}

// goodBackend threads ctx into its work.
func (g *goodBackend) PlanCountContext(ctx context.Context, p attack.Plan) (int, error) {
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	default:
	}
	return 0, nil
}

type deafBackend struct{}

func (b *deafBackend) PlanCountContext(ctx context.Context, p attack.Plan) (int, error) { // want `never uses ctx`
	return 0, nil
}

type blankBackend struct{}

func (b *blankBackend) PlanCountContext(_ context.Context, p attack.Plan) (int, error) { // want `discards its context`
	return 0, nil
}

// ---- blocking calls on cancellable paths ----

func badSleep(ctx context.Context, d time.Duration) {
	time.Sleep(d) // want `time.Sleep with a context in scope`
}

// The ctx stays lexically in scope inside nested literals.
func badSleepNested(ctx context.Context, d time.Duration) func() {
	return func() {
		time.Sleep(d) // want `time.Sleep with a context in scope`
	}
}

func goodSleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// No context in scope: a plain sleep is fine.
func plainSleep(d time.Duration) {
	time.Sleep(d)
}

// ---- context-less dispatch on interface backends ----

func badDispatch(ctx context.Context, b attack.Queryable, p attack.Plan) (int, error) {
	return b.PlanCount(p) // want `context-less PlanCount`
}

// The exec-closure pattern: assert the context-aware face first, fall
// back to the plain call only for backends without one.
func goodDispatch(ctx context.Context, b attack.Queryable, p attack.Plan) (int, error) {
	if qc, ok := b.(attack.QueryableContext); ok {
		return qc.PlanCountContext(ctx, p)
	}
	return b.PlanCount(p)
}

// Concrete receivers are static dispatch — no context-aware face to
// prefer.
func localDispatch(ctx context.Context, s *attack.Store, p attack.Plan) (int, error) {
	return s.PlanCount(p)
}

// No context in scope: the plain call is the only option.
func plainDispatch(b attack.Queryable, p attack.Plan) (int, error) {
	return b.PlanCount(p)
}

// A justified exception can be suppressed.
func suppressed(ctx context.Context, d time.Duration) {
	//dosvet:ignore ctxflow calibration pause, deliberately unconditional
	time.Sleep(d)
}

// Corpus for the errsentinel analyzer. The package is named federation
// on purpose — the analyzer engages on the federation/httpapi paths,
// where callers classify outcomes with errors.Is against sentinels.
package federation

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the blessed pattern: born once,
// classifiable forever.
var ErrCircuitOpen = errors.New("circuit open")

var errProbe error

// init wiring of sentinels is exempt.
func init() {
	errProbe = errors.New("probe failed")
}

// ---- violations ----

func flattened(err error) error {
	return fmt.Errorf("site a: %v", err) // want `use %w`
}

func stringified(err error) error {
	return fmt.Errorf("site a failed (%s)", err) // want `use %w`
}

func adHoc() error {
	return errors.New("request refused") // want `errors.New inside a function`
}

// ---- negative corpus ----

func wrapped(err error) error {
	return fmt.Errorf("site a: %w", err)
}

func doubleWrapped(err error) error {
	return fmt.Errorf("breaker: %w (after %w)", ErrCircuitOpen, err)
}

func noErrorArgs(n int, s string) error {
	return fmt.Errorf("bad cursor %q at offset %d", s, n)
}

func widthArgs(err error, n int) error {
	return fmt.Errorf("%*d attempts: %w", n, 3, err)
}

func suppressed() error {
	//dosvet:ignore errsentinel this error never reaches a classifier
	return errors.New("one-off diagnostic")
}

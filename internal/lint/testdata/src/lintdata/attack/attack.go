// Package attack is a self-contained stand-in for doscope's real
// attack package: it carries just enough surface (Event with a Ports
// alias, the Query iteration terminals, the deprecated Store shims,
// the Queryable faces) for the analyzer corpora to typecheck without
// importing the module under analysis. The analyzers match package
// *names*, so this fake engages them exactly like the real thing.
//
// It is also itself a negative corpus for nodeprecated: the deprecated
// shims' own bodies (ByTarget calling Events) are allowlisted because
// they live in a package named attack.
package attack

import (
	"context"
	"iter"
)

// Event mirrors the real schema's shape: scalars plus the aliasing
// Ports slice.
type Event struct {
	Source     uint8
	Target     uint32
	Start, End int64
	Ports      []uint16
}

// Clone is the blessed retain pattern scratchescape treats as a
// sanitization boundary.
func (e *Event) Clone() *Event {
	cp := *e
	cp.Ports = append([]uint16(nil), e.Ports...)
	return &cp
}

// Plan is an opaque query plan.
type Plan struct{}

// Store is the event store.
type Store struct{}

// Query opens the modern query pipeline.
func (s *Store) Query() *Query { return &Query{} }

// PlanCount is the context-less Queryable face on a concrete store.
func (s *Store) PlanCount(p Plan) (int, error) { return 0, nil }

// Events is the deprecated whole-store snapshot shim.
func (s *Store) Events() []Event { return nil }

// ByTarget is the deprecated per-target snapshot shim; calling Events
// from its own body is allowlisted.
func (s *Store) ByTarget() map[uint32][]int {
	_ = s.Events()
	return nil
}

// Query is the filtered-query builder.
type Query struct{}

// Iter yields the per-iteration scratch *Event.
func (q *Query) Iter() iter.Seq[*Event] { return func(func(*Event) bool) {} }

// IterByStart yields the scratch *Event in start order.
func (q *Query) IterByStart() iter.Seq[*Event] { return func(func(*Event) bool) {} }

// GroupByTarget returns stable, caller-owned copies — retaining these
// is fine.
func (q *Query) GroupByTarget() map[uint32][]*Event { return nil }

// Count is a counting terminal.
func (q *Query) Count() int { return 0 }

// Fold folds the matching events through acc; the *Event it passes is
// the same per-iteration scratch as Iter's.
func Fold[T any](q *Query, init func() T, acc func(T, *Event) T, merge func(T, T) T) T {
	var zero T
	return zero
}

// Queryable is the context-less backend face.
type Queryable interface {
	PlanCount(p Plan) (int, error)
}

// QueryableContext is the optional context-aware face.
type QueryableContext interface {
	PlanCountContext(ctx context.Context, p Plan) (int, error)
}

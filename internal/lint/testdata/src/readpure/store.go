// Corpus for the readpurity analyzer. The package is named attack on
// purpose — the analyzer only engages there — and reproduces the real
// store's shape: a published-view pointer, a writer mutex, loader
// methods (Store.view, Query.views), mutators, and query terminals.
package attack

import (
	"sync"
	"sync/atomic"
)

type view struct {
	length int
}

var emptyView view

type Event struct {
	Start int64
	Ports []uint16
}

type shard struct{ start []int64 }

func (sh *shard) appendRow(e *Event) { sh.start = append(sh.start, e.Start) }

type Store struct {
	mu     sync.Mutex
	pub    atomic.Pointer[view]
	shards []shard
}

// view is the blessed loader: the only reader of Store.pub.
func (s *Store) view() *view {
	if v := s.pub.Load(); v != nil {
		return v
	}
	return &emptyView
}

// publish is the blessed writer of Store.pub.
func (s *Store) publish() {
	prev := s.pub.Load()
	nv := &view{}
	if prev != nil {
		nv.length = prev.length
	}
	s.pub.Store(nv)
}

// Add is a mutator: locking here is fine, it is not a read path.
func (s *Store) Add(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.shards) == 0 {
		s.shards = make([]shard, 1)
	}
	s.shards[0].appendRow(&e)
	s.publish()
}

// NewStore is a constructor: reachability stops at *Store returns.
func NewStore(events []Event) *Store {
	s := &Store{}
	for _, e := range events {
		s.Add(e)
	}
	return s
}

// ---- the MPSC ingest front (PR 9 shape) ----

type pendingBatch struct{ events []Event }

// enqueue, drainAll, Flush, and Close are writer-side: the drainer's
// publication path. The analyzer treats them as mutators, so locking
// and publishing inside them is fine — and reaching them from a read
// path is flagged.
func (s *Store) enqueue(events []Event) *pendingBatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &pendingBatch{events: events}
}

func (s *Store) drainAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.shards) == 0 {
		s.shards = make([]shard, 1)
	}
	s.publish()
}

func (s *Store) Flush() { s.drainAll() }

func (s *Store) Close() error {
	s.Flush()
	return nil
}

// AddBatch routes through the queue: mutator calling mutators, clean.
func (s *Store) AddBatch(events []Event) {
	s.enqueue(events)
	s.drainAll()
}

type Query struct{ stores []*Store }

func (s *Store) Query() *Query { return &Query{stores: []*Store{s}} }

// views is the multi-store loader; its per-store loop is the one
// blessed loader loop.
func (q *Query) views() []*view {
	out := make([]*view, 0, len(q.stores))
	for _, st := range q.stores {
		out = append(out, st.view())
	}
	return out
}

// ---- clean read paths ----

// Count loads once and fans out to pure helpers.
func (q *Query) Count() int {
	n := 0
	for _, v := range q.views() {
		n += countView(v)
	}
	return n
}

func countView(v *view) int { return v.length }

// Len is one load per execution.
func (s *Store) Len() int { return s.view().length }

// Collect crosses a constructor boundary: the fresh store is private
// and may be mutated/locked by its builder.
func (q *Query) Collect() *Store {
	n := 0
	for _, v := range q.views() {
		n += v.length
	}
	return NewStore(make([]Event, 0, n))
}

// ---- violations ----

// badLocked takes the writer mutex on a read path.
func (s *Store) badLocked() int {
	s.mu.Lock()         // want `touches a sync mutex`
	defer s.mu.Unlock() // want `touches a sync mutex`
	return s.view().length
}

// badMutates calls a mutator from a read path.
func (s *Store) badMutates() int {
	n := s.view().length
	s.Add(Event{}) // want `calls the mutator Add`
	return n
}

// badDouble loads the published view twice in one execution.
func (s *Store) badDouble() int {
	a := s.view().length
	b := s.view().length // want `more than once per execution`
	return a + b
}

// badLoop reloads a loop-invariant receiver's view every iteration.
func (s *Store) badLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += s.view().length // want `inside a loop`
	}
	return total
}

// Tally is a read path whose helper mutates two hops down.
func (q *Query) Tally() int {
	total := 0
	for _, v := range q.views() {
		total += tallyHelper(q.stores[0], v.length)
	}
	return total
}

func tallyHelper(s *Store, n int) int {
	s.publish() // want `calls the mutator publish`
	return n
}

// badFlushes forces a drain (a publication) from a read path.
func (s *Store) badFlushes() int {
	s.Flush() // want `calls the mutator Flush`
	return s.view().length
}

// badDrains reaches the drainer's publication path from a read path,
// one hop down.
func (q *Query) badDrains() int {
	n := 0
	for _, v := range q.views() {
		n += drainHelper(q.stores[0], v.length)
	}
	return n
}

func drainHelper(s *Store, n int) int {
	s.drainAll() // want `calls the mutator drainAll`
	return n
}

// badEnqueues: even the enqueue half (no publication of its own) is
// writer-side — it can block on backpressure until a drain publishes.
func (s *Store) badEnqueues() int {
	s.enqueue(nil) // want `calls the mutator enqueue`
	return s.view().length
}

// badPub reads the published pointer outside view/publish.
func (s *Store) badPub() int {
	if v := s.pub.Load(); v != nil { // want `accesses Store.pub directly`
		return v.length
	}
	return 0
}

// ---- the per-shard executor (PR 10 shape) ----

// Seal is a mutator in the real store: it compacts a shard under the
// writer lock and republishes.
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publish()
}

// runTasks mirrors the executor's worker pool: a pure fan-out helper
// that hands each task index to run.
func runTasks(workers, n int, run func(ti int)) {
	if workers <= 0 {
		workers = 1
	}
	for ti := 0; ti < n; ti++ {
		run(ti)
	}
}

// ExecCount is the clean executor shape: one views() load before the
// fan-out, worker bodies touching only the snapshot they were handed.
func (q *Query) ExecCount() int {
	vs := q.views()
	parts := make([]int, len(vs))
	runTasks(0, len(vs), func(ti int) {
		parts[ti] = countView(vs[ti])
	})
	n := 0
	for _, p := range parts {
		n += p
	}
	return n
}

// badWorkerSeals: a worker body calling a mutator is still the read
// path mutating — func literals attribute to the enclosing terminal.
func (q *Query) badWorkerSeals() int {
	vs := q.views()
	parts := make([]int, len(vs))
	runTasks(0, len(vs), func(ti int) {
		q.stores[0].Seal() // want `calls the mutator Seal`
		parts[ti] = countView(vs[ti])
	})
	return len(parts)
}

// badWorkerLocks takes the writer mutex inside a worker body.
func (q *Query) badWorkerLocks() int {
	vs := q.views()
	parts := make([]int, len(vs))
	runTasks(0, len(vs), func(ti int) {
		q.stores[0].mu.Lock() // want `touches a sync mutex`
		parts[ti] = countView(vs[ti])
		q.stores[0].mu.Unlock() // want `touches a sync mutex`
	})
	return len(parts)
}

// badWorkerPub peeks at the published pointer from a worker body.
func (q *Query) badWorkerPub() int {
	vs := q.views()
	n := 0
	runTasks(0, len(vs), func(ti int) {
		if v := q.stores[0].pub.Load(); v != nil { // want `accesses Store.pub directly`
			n += v.length
		}
	})
	return n
}

// badWorkerReload: the terminal loaded its snapshot before the
// fan-out; a worker loading again can observe a newer publication and
// split the execution across two snapshots.
func (q *Query) badWorkerReload() int {
	vs := q.views()
	n := 0
	runTasks(0, len(vs), func(ti int) {
		n += len(q.views()) // want `more than once per execution`
	})
	return len(vs) + n
}

// suppressed shows the escape hatch for a justified exception.
func (s *Store) suppressed() int {
	a := s.view().length
	//dosvet:ignore readpurity deliberate second load in a stats probe
	b := s.view().length
	return a + b
}

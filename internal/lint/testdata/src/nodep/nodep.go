// Corpus for the nodeprecated analyzer: type-aware detection of the
// deprecated (*attack.Store).Events/ByTarget snapshot API.
package nodep

import "lintdata/attack"

func snapshots(s *attack.Store) int {
	evs := s.Events()  // want `deprecated`
	_ = s.ByTarget()   // want `deprecated`
	return len(evs)
}

// A renamed receiver no longer dodges the check — the old Makefile
// grep only matched variables literally named st or store.
func renamed(db *attack.Store) int {
	return len(db.Events()) // want `deprecated`
}

// ---- negative corpus ----

// The Query pipeline is the replacement.
func modern(s *attack.Store) int {
	n := 0
	for e := range s.Query().Iter() {
		_ = e.Start
		n++
	}
	return n
}

// Unrelated methods that happen to share the names are not flagged.
type metrics struct{}

func (m *metrics) Events() int                { return 0 }
func (m *metrics) ByTarget() map[uint32][]int { return nil }

func unrelated(m *metrics) int {
	_ = m.ByTarget()
	return m.Events()
}

// A documented exception can be suppressed.
func suppressed(s *attack.Store) int {
	//dosvet:ignore nodeprecated migration shim, tracked in ROADMAP
	return len(s.Events())
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// ErrSentinel enforces the PR 7 degraded-mode error contract on the
// federation and httpapi packages: callers classify backend outcomes
// with errors.Is against sentinels (attack.ErrBackendSkipped, wrapped
// by federation.ErrCircuitOpen), so every error that travels those
// paths must preserve its chain. The analyzer flags:
//
//   - fmt.Errorf calls that format an error argument with any verb but
//     %w — %v/%s flatten the chain and silently break statusFor's
//     ok/failed/skipped split,
//   - errors.New inside a function body — such errors are born
//     unclassifiable; declare a package-level sentinel (allowed) or
//     wrap an existing one with fmt.Errorf("...: %w", ...).
//
// Test files are exempt: ad-hoc errors are how tests build fixtures.
var ErrSentinel = &analysis.Analyzer{
	Name: "errsentinel",
	Doc: "flags un-wrapped errors (fmt.Errorf without %w, in-body errors.New) " +
		"on the federation/httpapi paths classified via errors.Is",
	Run: runErrSentinel,
}

func runErrSentinel(pass *analysis.Pass) (any, error) {
	switch pass.Pkg.Name() {
	case "federation", "httpapi":
	default:
		return nil, nil
	}
	rep := newReporter(pass)
	errType := types.Universe.Lookup("error").Type()

	for _, f := range pass.Files {
		if inTestFile(pass, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// func init is sentinel wiring, not a request path.
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass, call)
				switch {
				case isPkgFunc(fn, "errors", "New"):
					rep.reportf(call.Pos(), "errors.New inside a function creates an error "+
						"no errors.Is sentinel check can classify; declare a package-level "+
						"sentinel or wrap one with fmt.Errorf(\"...: %%w\", ...)")
				case isPkgFunc(fn, "fmt", "Errorf"):
					checkErrorfVerbs(pass, rep, call, errType)
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkErrorfVerbs matches each format verb against its argument and
// flags error-typed arguments formatted with anything but %w.
func checkErrorfVerbs(pass *analysis.Pass, rep *reporter, call *ast.CallExpr, errType types.Type) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := stringConstant(pass, call.Args[0])
	if !ok {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		v := verbs[i]
		if v == 'w' || v == '*' {
			continue
		}
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil || !types.AssignableTo(t, errType) {
			continue
		}
		rep.reportf(arg.Pos(), "error formatted with %%%c loses its wrap chain; "+
			"use %%w so errors.Is classification (ErrCircuitOpen, ErrBackendSkipped) keeps working", v)
	}
}

// stringConstant evaluates e as a constant string (handles literals
// and constant concatenation).
func stringConstant(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns one rune per consumed variadic argument of a
// Printf-style format: the verb letter, or '*' for a width/precision
// argument.
func formatVerbs(format string) []rune {
	var out []rune
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// width
		if i < len(format) && format[i] == '*' {
			out = append(out, '*')
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				out = append(out, '*')
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		// argument index [n] resets are rare enough to skip: treat the
		// verb as consuming the next argument, which is the common case.
		if i < len(format) && format[i] == '[' {
			for i < len(format) && format[i] != ']' {
				i++
			}
			if i < len(format) {
				i++
			}
		}
		if i < len(format) {
			out = append(out, rune(format[i]))
			i++
		}
	}
	return out
}

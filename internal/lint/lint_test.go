package lint_test

import (
	"testing"

	"doscope/internal/lint"
	"doscope/internal/lint/linttest"
)

// Each corpus under testdata/src mixes positive cases (// want lines
// the analyzer must flag) with a negative corpus (blessed patterns
// that must stay clean) — an analyzer that goes blind or trigger-happy
// fails either way.

func TestScratchEscape(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.ScratchEscape, "scratch")
}

func TestReadPurity(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.ReadPurity, "readpure")
}

func TestErrSentinel(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.ErrSentinel, "errsent")
}

func TestNoDeprecated(t *testing.T) {
	// lintdata/attack is the shim-allowlist negative corpus: ByTarget
	// calls Events in a package named attack and must stay clean.
	linttest.Run(t, "testdata/src", lint.NoDeprecated, "nodep", "lintdata/attack")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.CtxFlow, "ctxflow")
}

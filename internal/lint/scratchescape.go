package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// ScratchEscape enforces the PR 2 iteration contract: the *Event
// yielded by Iter/IterByStart (and handed to Fold's accumulator) is a
// per-iteration scratch — the struct is reused on the next yield and
// its Ports slice aliases shared storage. Neither the pointer, a value
// copy, nor any slice field of it may outlive the callback. The
// blessed way to retain an event is (*Event).Clone().
//
// The analyzer scans every range over an iter.Seq[*attack.Event] and
// every func literal taking a *attack.Event parameter, taints the
// scratch pointer, propagates the taint through aliasing assignments
// inside the callback, and flags stores to variables declared outside
// it, channel sends, returns, and goroutine/defer captures. A call is
// a sanitization boundary — in particular Clone() — so
// `out = append(out, e.Clone())` is clean while `out = append(out, e)`
// and `out = append(out, *e)` are not.
//
// The attack package itself is exempt: it owns the scratch plumbing.
var ScratchEscape = &analysis.Analyzer{
	Name: "scratchescape",
	Doc: "flags iteration callbacks that let the scratch *attack.Event " +
		"(or its Ports alias) escape; retain a Clone() instead",
	Run: runScratchEscape,
}

func runScratchEscape(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "attack" {
		return nil, nil
	}
	rep := newReporter(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if !yieldsScratchEvent(pass, n.X) {
					return true
				}
				id, ok := n.Key.(*ast.Ident)
				if !ok || id.Name == "_" {
					return true
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil {
					return true
				}
				es := newEscapeScan(pass, rep, n, nil)
				es.tainted[obj] = true
				es.run(n.Body)
			case *ast.FuncLit:
				var scratch []types.Object
				for _, field := range n.Type.Params.List {
					if !isEventPtr(pass.TypesInfo.TypeOf(field.Type)) {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
							scratch = append(scratch, obj)
						}
					}
				}
				if len(scratch) == 0 {
					return true
				}
				es := newEscapeScan(pass, rep, n, n)
				for _, o := range scratch {
					es.tainted[o] = true
				}
				es.run(n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// yieldsScratchEvent reports whether ranging over an expression of x's
// type yields *attack.Event through an iter.Seq-shaped function — the
// scratch-event sources (Query/FedQuery Iter and IterByStart, and the
// httpapi fan-in helpers built on them) all have this shape.
func yieldsScratchEvent(pass *analysis.Pass, x ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(x)
	if t == nil {
		return false
	}
	seq, ok := t.Underlying().(*types.Signature)
	if !ok || seq.Params().Len() != 1 {
		return false
	}
	yield, ok := seq.Params().At(0).Type().Underlying().(*types.Signature)
	if !ok || yield.Params().Len() != 1 {
		return false
	}
	return isEventPtr(yield.Params().At(0).Type())
}

// escapeScan propagates scratch taint through one callback body to a
// fixpoint, flagging each way the scratch can outlive the iteration.
type escapeScan struct {
	pass     *analysis.Pass
	rep      *reporter
	boundary ast.Node     // the RangeStmt or FuncLit owning the scratch
	bodyLit  *ast.FuncLit // non-nil when the boundary is a FuncLit
	tainted  map[types.Object]bool
	reported map[token.Pos]bool
	changed  bool
}

func newEscapeScan(pass *analysis.Pass, rep *reporter, boundary ast.Node, lit *ast.FuncLit) *escapeScan {
	return &escapeScan{
		pass:     pass,
		rep:      rep,
		boundary: boundary,
		bodyLit:  lit,
		tainted:  make(map[types.Object]bool),
		reported: make(map[token.Pos]bool),
	}
}

func (es *escapeScan) run(body *ast.BlockStmt) {
	for {
		es.changed = false
		es.walk(body, es.bodyLit)
		if !es.changed {
			break
		}
	}
}

func (es *escapeScan) flag(pos token.Pos, format string, args ...any) {
	if es.reported[pos] {
		return
	}
	es.reported[pos] = true
	es.rep.reportf(pos, "scratch *attack.Event escapes its iteration callback: "+format+
		" (the event and its Ports are reused on the next yield; retain a Clone() instead)", args...)
}

// declaredInside reports whether obj's declaration lies within the
// callback boundary — such variables die with the iteration and may
// hold taint; anything else outlives it.
func (es *escapeScan) declaredInside(obj types.Object) bool {
	return obj.Pos() >= es.boundary.Pos() && obj.Pos() <= es.boundary.End()
}

// walk visits n attributing returns to curLit, the innermost enclosing
// func literal (nil when a return would exit the function surrounding
// a range-statement boundary).
func (es *escapeScan) walk(n ast.Node, curLit *ast.FuncLit) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		es.walk(n.Body, n)
		return
	case *ast.AssignStmt:
		es.assign(n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, v := range vs.Values {
					if es.taintedExpr(v) {
						es.taintName(vs.Names[i], v.Pos())
					}
				}
			}
		}
	case *ast.SendStmt:
		if es.taintedExpr(n.Value) {
			es.flag(n.Value.Pos(), "sent on a channel")
		}
	case *ast.ReturnStmt:
		// A return at the callback's own level hands the scratch to
		// the iterator driver (range case: to the surrounding
		// function). Returns from helper literals nested inside the
		// callback stay within the iteration and are not flagged.
		if curLit == es.bodyLit {
			for _, r := range n.Results {
				if es.taintedExpr(r) {
					es.flag(r.Pos(), "returned from the callback")
				}
			}
		}
	case *ast.GoStmt:
		es.asyncCall(n.Call, "passed to a goroutine")
	case *ast.DeferStmt:
		es.asyncCall(n.Call, "captured by a deferred call that runs after the iteration")
	}
	for _, c := range childNodes(n) {
		es.walk(c, curLit)
	}
}

// asyncCall flags taint reaching a call that executes outside the
// iteration step: tainted arguments, and tainted free variables of a
// func-literal callee.
func (es *escapeScan) asyncCall(call *ast.CallExpr, how string) {
	for _, a := range call.Args {
		if es.taintedExpr(a) {
			es.flag(a.Pos(), "%s", how)
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := es.pass.TypesInfo.Uses[id]; obj != nil && es.tainted[obj] {
					es.flag(id.Pos(), "%s", how)
				}
			}
			return true
		})
	}
}

func (es *escapeScan) assign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return // multi-value call/map/type-assert RHS: a call boundary
	}
	for i, rhs := range n.Rhs {
		if !es.taintedExpr(rhs) {
			continue
		}
		lhs := n.Lhs[i]
		root := rootIdent(lhs)
		if root == nil {
			es.flag(lhs.Pos(), "stored through an expression the analyzer cannot track")
			continue
		}
		if root.Name == "_" {
			continue
		}
		obj := es.pass.TypesInfo.ObjectOf(root)
		if obj == nil {
			continue
		}
		if !es.declaredInside(obj) {
			how := "stored to %q, which outlives the iteration"
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(es.pass, call) {
				how = "appended to %q, which outlives the iteration, without Clone()"
			}
			es.flag(rhs.Pos(), how, root.Name)
			continue
		}
		if !es.tainted[obj] {
			es.tainted[obj] = true
			es.changed = true
		}
	}
}

func (es *escapeScan) taintName(id *ast.Ident, pos token.Pos) {
	obj := es.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	if !es.declaredInside(obj) {
		es.flag(pos, "stored to %q, which outlives the iteration", id.Name)
		return
	}
	if !es.tainted[obj] {
		es.tainted[obj] = true
		es.changed = true
	}
}

// taintedExpr reports whether evaluating e can yield a value that
// aliases the scratch event. Calls are sanitization boundaries (their
// results are fresh) except the append builtin, which forwards its
// arguments' aliases, and conversions, which are value-preserving.
func (es *escapeScan) taintedExpr(e ast.Expr) bool {
	if !canAlias(es.pass.TypesInfo.TypeOf(e), 0) {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := es.pass.TypesInfo.ObjectOf(e)
		return obj != nil && es.tainted[obj]
	case *ast.ParenExpr:
		return es.taintedExpr(e.X)
	case *ast.StarExpr:
		return es.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && es.taintedExpr(e.X)
	case *ast.SelectorExpr:
		return es.taintedExpr(e.X)
	case *ast.IndexExpr:
		return es.taintedExpr(e.X)
	case *ast.SliceExpr:
		return es.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if es.taintedExpr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if tv, ok := es.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && es.taintedExpr(e.Args[0]) // conversion
		}
		if isBuiltinAppend(es.pass, e) {
			for _, a := range e.Args {
				if es.taintedExpr(a) {
					return true
				}
			}
		}
		return false
	default:
		return false
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// childNodes returns n's immediate children for the manual walk,
// skipping the node kinds walk handles itself.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	switch n := n.(type) {
	case *ast.FuncLit, nil:
		return nil
	case *ast.BlockStmt:
		for _, s := range n.List {
			out = append(out, s)
		}
	default:
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			out = append(out, c)
			return false
		})
	}
	return out
}

// Package pcap reads and writes libpcap classic capture files (the
// tcpdump format) using only the standard library. Both the microsecond
// (0xa1b2c3d4) and nanosecond (0xa1b23c4d) magic variants are supported,
// in either byte order. doscope uses it to persist synthetic telescope
// traffic and to classify externally supplied captures.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Link-layer header types (subset).
const (
	LinkTypeNull     uint32 = 0
	LinkTypeEthernet uint32 = 1
	LinkTypeRaw      uint32 = 101 // raw IP; used for telescope captures
)

const (
	magicMicros        = 0xa1b2c3d4
	magicNanos         = 0xa1b23c4d
	magicMicrosSwapped = 0xd4c3b2a1
	magicNanosSwapped  = 0x4d3cb2a1
)

// ErrBadMagic is returned when the file header magic is unknown.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Header is the per-packet record header.
type Header struct {
	// Timestamp of capture.
	Timestamp time.Time
	// CaptureLength is the number of bytes stored in the file.
	CaptureLength int
	// OriginalLength is the packet's length on the wire.
	OriginalLength int
}

// Reader reads packets from a pcap stream.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nanos    bool
	linkType uint32
	snaplen  uint32
	buf      []byte
	hdr      [16]byte
}

// NewReader parses the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var gh [24]byte
	if _, err := io.ReadFull(br, gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(gh[0:4])
	rd := &Reader{r: br}
	switch magic {
	case magicMicros:
		rd.order = binary.LittleEndian
	case magicNanos:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicMicrosSwapped:
		rd.order = binary.BigEndian
	case magicNanosSwapped:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	major := rd.order.Uint16(gh[4:6])
	minor := rd.order.Uint16(gh[6:8])
	if major != 2 || minor != 4 {
		return nil, fmt.Errorf("pcap: unsupported version %d.%d", major, minor)
	}
	rd.snaplen = rd.order.Uint32(gh[16:20])
	rd.linkType = rd.order.Uint32(gh[20:24])
	return rd, nil
}

// LinkType returns the capture's link-layer header type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// Snaplen returns the capture's snapshot length.
func (r *Reader) Snaplen() uint32 { return r.snaplen }

// Next returns the next packet. The returned data slice is reused by
// subsequent calls; copy it to retain. io.EOF signals a clean end of file.
func (r *Reader) Next() (Header, []byte, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return Header{}, nil, io.EOF
		}
		return Header{}, nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := r.order.Uint32(r.hdr[0:4])
	frac := r.order.Uint32(r.hdr[4:8])
	caplen := r.order.Uint32(r.hdr[8:12])
	origlen := r.order.Uint32(r.hdr[12:16])
	if caplen > r.snaplen+65535 {
		return Header{}, nil, fmt.Errorf("pcap: implausible capture length %d", caplen)
	}
	if cap(r.buf) < int(caplen) {
		r.buf = make([]byte, caplen)
	}
	data := r.buf[:caplen]
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Header{}, nil, fmt.Errorf("pcap: reading packet data: %w", err)
	}
	nsec := int64(frac)
	if !r.nanos {
		nsec *= 1000
	}
	h := Header{
		Timestamp:      time.Unix(int64(sec), nsec).UTC(),
		CaptureLength:  int(caplen),
		OriginalLength: int(origlen),
	}
	return h, data, nil
}

// Writer writes packets to a pcap stream in little-endian microsecond
// format.
type Writer struct {
	w       *bufio.Writer
	snaplen uint32
	hdr     [16]byte
}

// NewWriter writes the global header and returns a Writer.
func NewWriter(w io.Writer, linkType uint32, snaplen uint32) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], magicMicros)
	binary.LittleEndian.PutUint16(gh[4:6], 2)
	binary.LittleEndian.PutUint16(gh[6:8], 4)
	binary.LittleEndian.PutUint32(gh[16:20], snaplen)
	binary.LittleEndian.PutUint32(gh[20:24], linkType)
	if _, err := bw.Write(gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing global header: %w", err)
	}
	return &Writer{w: bw, snaplen: snaplen}, nil
}

// WritePacket appends one packet record. Data longer than the snaplen is
// truncated, with OriginalLength preserving the full size.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	orig := len(data)
	if uint32(len(data)) > w.snaplen {
		data = data[:w.snaplen]
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(w.hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(w.hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(w.hdr[12:16], uint32(orig))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing packet data: %w", err)
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

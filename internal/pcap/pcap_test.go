package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeRaw, 65535)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2015, 3, 1, 0, 0, 0, 123456000, time.UTC)
	packets := [][]byte{
		{0x45, 0x00, 0x00, 0x14},
		{0xde, 0xad},
		bytes.Repeat([]byte{0xaa}, 1500),
	}
	for i, p := range packets {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	for i, want := range packets {
		h, data, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("packet %d data mismatch (%d vs %d bytes)", i, len(data), len(want))
		}
		wantTS := base.Add(time.Duration(i) * time.Second)
		if !h.Timestamp.Equal(wantTS) {
			t.Errorf("packet %d ts = %v, want %v", i, h.Timestamp, wantTS)
		}
		if h.OriginalLength != len(want) {
			t.Errorf("packet %d origlen = %d", i, h.OriginalLength)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Errorf("expected io.EOF at end, got %v", err)
	}
}

func TestSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeRaw, 16)
	if err != nil {
		t.Fatal(err)
	}
	long := bytes.Repeat([]byte{1}, 100)
	if err := w.WritePacket(time.Unix(0, 0), long); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 16 || h.CaptureLength != 16 {
		t.Errorf("caplen = %d", len(data))
	}
	if h.OriginalLength != 100 {
		t.Errorf("origlen = %d", h.OriginalLength)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedGlobalHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 10))); err == nil {
		t.Error("truncated global header accepted")
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-craft a big-endian (swapped-magic) microsecond capture.
	var buf bytes.Buffer
	gh := make([]byte, 24)
	binary.BigEndian.PutUint32(gh[0:4], magicMicros)
	binary.BigEndian.PutUint16(gh[4:6], 2)
	binary.BigEndian.PutUint16(gh[6:8], 4)
	binary.BigEndian.PutUint32(gh[16:20], 65535)
	binary.BigEndian.PutUint32(gh[20:24], LinkTypeEthernet)
	buf.Write(gh)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 1000)
	binary.BigEndian.PutUint32(rec[4:8], 500000)
	binary.BigEndian.PutUint32(rec[8:12], 2)
	binary.BigEndian.PutUint32(rec[12:16], 2)
	buf.Write(rec)
	buf.Write([]byte{0xca, 0xfe})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	h, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Timestamp.Equal(time.Unix(1000, 500000000).UTC()) {
		t.Errorf("ts = %v", h.Timestamp)
	}
	if !bytes.Equal(data, []byte{0xca, 0xfe}) {
		t.Errorf("data = %x", data)
	}
}

func TestNanosecondMagic(t *testing.T) {
	var buf bytes.Buffer
	gh := make([]byte, 24)
	binary.LittleEndian.PutUint32(gh[0:4], magicNanos)
	binary.LittleEndian.PutUint16(gh[4:6], 2)
	binary.LittleEndian.PutUint16(gh[6:8], 4)
	binary.LittleEndian.PutUint32(gh[16:20], 65535)
	binary.LittleEndian.PutUint32(gh[20:24], LinkTypeRaw)
	buf.Write(gh)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], 7)
	binary.LittleEndian.PutUint32(rec[4:8], 42) // 42 ns
	binary.LittleEndian.PutUint32(rec[8:12], 1)
	binary.LittleEndian.PutUint32(rec[12:16], 1)
	buf.Write(rec)
	buf.WriteByte(0xff)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Timestamp.Equal(time.Unix(7, 42).UTC()) {
		t.Errorf("ts = %v, want 7s+42ns", h.Timestamp)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeRaw, 65535)
	_ = w.WritePacket(time.Unix(0, 0), []byte{1, 2, 3, 4})
	_ = w.Flush()
	full := buf.Bytes()
	// Drop the final byte of packet data.
	r, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated record: err = %v, want read error", err)
	}
}

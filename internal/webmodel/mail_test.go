package webmodel

import (
	"testing"
)

func testMailPopulation(t *testing.T) *Population {
	t.Helper()
	p := testPopulation(t, 50000)
	if err := p.BuildMail(9); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildMailAllocatesClusters(t *testing.T) {
	p := testMailPopulation(t)
	for i := range p.Pools {
		pool := &p.Pools[i]
		if len(pool.MailIPs) == 0 {
			t.Fatalf("pool %s has no mail cluster", pool.Name)
		}
		if len(pool.Sites) > 5000 && len(pool.MailIPs) < 2 {
			t.Errorf("mega pool %s has only %d mail IPs", pool.Name, len(pool.MailIPs))
		}
		// Mail IPs live in the hoster's own network.
		for _, addr := range pool.MailIPs {
			if asn, _ := p.cfg.Plan.ASOf(addr); asn != pool.ASN {
				// Customer more-specifics may resolve differently; the
				// country must still match.
				cc, _ := p.cfg.Plan.CountryOf(addr)
				if cc != pool.Country {
					t.Errorf("pool %s mail IP %v outside hoster network", pool.Name, addr)
				}
			}
		}
	}
	// Idempotent.
	before := len(p.Pools[0].MailIPs)
	if err := p.BuildMail(9); err != nil {
		t.Fatal(err)
	}
	if len(p.Pools[0].MailIPs) != before {
		t.Error("BuildMail not idempotent")
	}
}

func TestMailAddrConsistency(t *testing.T) {
	p := testMailPopulation(t)
	day := 100
	for id := uint32(0); id < 2000; id += 41 {
		if !p.Alive(id, day) {
			continue
		}
		addr, ok := p.MailAddrOf(id, day)
		if !ok {
			t.Fatalf("domain %d has no mail address", id)
		}
		found := false
		p.ForEachMailDomainOn(addr, day, func(got uint32) {
			if got == id {
				found = true
			}
		})
		if !found {
			t.Fatalf("domain %d not listed on its own mail address %v", id, addr)
		}
		if p.MXTarget(id) == "" {
			t.Fatalf("domain %d has empty MX target", id)
		}
	}
}

func TestMailBeforeBirth(t *testing.T) {
	p := testMailPopulation(t)
	for id := range p.Domains {
		if b := int(p.Domains[id].BirthDay); b > 10 {
			if _, ok := p.MailAddrOf(uint32(id), b-1); ok {
				t.Fatal("mail resolves before domain birth")
			}
			return
		}
	}
	t.Skip("no newborn in sample")
}

func TestMailTargets(t *testing.T) {
	p := testMailPopulation(t)
	targets := p.MailTargets(200)
	if len(targets) == 0 {
		t.Fatal("no mail targets")
	}
	seenGoDaddy := false
	for _, mt := range targets {
		if mt.Domains < 200 {
			t.Errorf("mail target %v below threshold: %d", mt.Addr, mt.Domains)
		}
		if p.Pools[mt.Pool].Name == "GoDaddy" {
			seenGoDaddy = true
		}
	}
	if !seenGoDaddy {
		t.Error("GoDaddy mail cluster missing (paper §5 calls it out)")
	}
	// Quiet pools must not appear.
	for _, mt := range targets {
		if !p.Pools[mt.Pool].Attacked {
			t.Errorf("quiet pool %s in mail targets", p.Pools[mt.Pool].Name)
		}
	}
}

func TestMailSeparateFromWebIPs(t *testing.T) {
	p := testMailPopulation(t)
	for i := range p.Pools {
		pool := &p.Pools[i]
		for _, m := range pool.MailIPs {
			for _, w := range pool.IPs {
				if m == w {
					t.Fatalf("pool %s mail IP collides with Web IP %v", pool.Name, m)
				}
			}
		}
	}
}

package webmodel

import (
	"testing"

	"doscope/internal/dps"
	"doscope/internal/ipmeta"
)

func testPlan(t testing.TB) *ipmeta.Plan {
	t.Helper()
	plan, err := ipmeta.BuildPlan(ipmeta.PlanConfig{Seed: 1, NumSixteens: 512, NumActive24: 3000})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func testPopulation(t testing.TB, n int) *Population {
	t.Helper()
	p, err := Build(Config{Seed: 7, NumDomains: n, Plan: testPlan(t)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildBasics(t *testing.T) {
	p := testPopulation(t, 50000)
	if p.NumDomains() != 50000 {
		t.Fatalf("NumDomains = %d", p.NumDomains())
	}
	if len(p.Pools) < 300 {
		t.Errorf("pools = %d, want several hundred", len(p.Pools))
	}
	if len(p.SingleIPs) == 0 {
		t.Error("no self-hosted singles")
	}
	// TLD mix should be roughly 83/10/7.
	var counts [NumTLDs]int
	for i := range p.Domains {
		counts[p.Domains[i].TLD]++
	}
	comFrac := float64(counts[TLDCom]) / float64(p.NumDomains())
	if comFrac < 0.78 || comFrac < float64(counts[TLDNet])/float64(p.NumDomains()) {
		t.Errorf(".com fraction = %.2f", comFrac)
	}
}

func TestDomainNames(t *testing.T) {
	p := testPopulation(t, 5000)
	name := p.DomainName(0)
	if len(name) == 0 || p.WWWName(0) != "www."+name {
		t.Errorf("names: %q / %q", name, p.WWWName(0))
	}
}

func TestNamedPoolsExist(t *testing.T) {
	p := testPopulation(t, 50000)
	for _, name := range []string{"GoDaddy", "Wix", "OVH", "DOSarrestFront", "eNom", "CloudFlareFront"} {
		pool, ok := p.PoolByName(name)
		if !ok {
			t.Errorf("pool %q missing", name)
			continue
		}
		if len(pool.IPs) == 0 || len(pool.Sites) == 0 {
			t.Errorf("pool %q empty: %d IPs, %d sites", name, len(pool.IPs), len(pool.Sites))
		}
	}
	gd, _ := p.PoolByName("GoDaddy")
	if len(gd.IPs) != 20 {
		t.Errorf("GoDaddy IPs = %d, want 20 (paper §5 peak 1)", len(gd.IPs))
	}
}

func TestFrontPoolsArePreexisting(t *testing.T) {
	p := testPopulation(t, 50000)
	pool, _ := p.PoolByName("DOSarrestFront")
	for _, id := range pool.Sites {
		if p.Domains[id].Pre != dps.DOSarrest {
			t.Fatalf("front pool site %d has Pre=%v", id, p.Domains[id].Pre)
		}
	}
}

func TestAddrOfConsistentWithForEachSiteOn(t *testing.T) {
	p := testPopulation(t, 30000)
	day := 100
	// For a sample of domains, AddrOf must be an IP that ForEachSiteOn
	// reports the domain on.
	for id := uint32(0); id < 3000; id += 97 {
		if !p.Alive(id, day) {
			continue
		}
		addr := p.AddrOf(id, day)
		found := false
		p.ForEachSiteOn(addr, day, func(got uint32) {
			if got == id {
				found = true
			}
		})
		if !found {
			t.Fatalf("domain %d not found on its own address %v", id, addr)
		}
	}
}

func TestCoHostingDistribution(t *testing.T) {
	p := testPopulation(t, 100000)
	day := 365
	// Singles host exactly one site; mega pools host thousands.
	n := p.CountSitesOn(p.SingleIPs[0], day)
	if n > 1 {
		t.Errorf("single IP hosts %d sites", n)
	}
	gd, _ := p.PoolByName("GoDaddy")
	perIP := p.CountSitesOn(gd.IPs[0], day)
	want := len(gd.Sites) / len(gd.IPs)
	if perIP < want/2 || perIP > want*2 {
		t.Errorf("GoDaddy co-hosting = %d, want ~%d", perIP, want)
	}
	dos, _ := p.PoolByName("DOSarrestFront")
	dosCount := p.CountSitesOn(dos.IPs[0], day)
	if dosCount <= perIP {
		t.Errorf("DOSarrest front (%d) should exceed GoDaddy shard (%d): paper's max co-hosting group", dosCount, perIP)
	}
}

func TestBirthDayGating(t *testing.T) {
	p := testPopulation(t, 20000)
	var newborn uint32
	found := false
	for id := range p.Domains {
		if p.Domains[id].BirthDay > 200 {
			newborn, found = uint32(id), true
			break
		}
	}
	if !found {
		t.Fatal("no newborn domain found")
	}
	if p.Alive(newborn, 100) {
		t.Error("domain alive before birth")
	}
	bd := int(p.Domains[newborn].BirthDay)
	if !p.Alive(newborn, bd) {
		t.Error("domain not alive on birth day")
	}
	addr := p.AddrOf(newborn, bd)
	count := 0
	p.ForEachSiteOn(addr, bd-1, func(id uint32) {
		if id == newborn {
			count++
		}
	})
	if count != 0 {
		t.Error("unborn domain resolves")
	}
}

func TestDNSStateDetection(t *testing.T) {
	plan := testPlan(t)
	p, err := Build(Config{Seed: 7, NumDomains: 50000, Plan: plan}, nil)
	if err != nil {
		t.Fatal(err)
	}
	det := dps.NewDetector(plan)
	day := 50

	// Front pool sites must detect via the A record (BGP diversion).
	pool, _ := p.PoolByName("DOSarrestFront")
	st := p.DNSStateOf(pool.Sites[0], day)
	if got := det.Detect(st); got != dps.DOSarrest {
		t.Errorf("front detection = %v (state %+v)", got, st)
	}

	// Unprotected pool sites must not detect.
	gd, _ := p.PoolByName("GoDaddy")
	st = p.DNSStateOf(gd.Sites[0], day)
	if got := det.Detect(st); got != dps.None {
		t.Errorf("GoDaddy site detected as %v", got)
	}

	// CNAME platform sites expand through the hoster CNAME pre-migration.
	wix, _ := p.PoolByName("Wix")
	st = p.DNSStateOf(wix.Sites[0], day)
	if st.CNAME == "" {
		t.Error("Wix site has no CNAME")
	}
	if got := det.Detect(st); got != dps.None {
		t.Errorf("pre-migration Wix site detected as %v", got)
	}
}

func TestApplyMigrationsBulk(t *testing.T) {
	p := testPopulation(t, 50000)
	p.ApplyMigrations(3, nil)
	wix, _ := p.PoolByName("Wix")
	migDay := int32(wix.Bulk.TriggerDay + wix.Bulk.DelayDays)
	for _, id := range wix.Sites {
		d := &p.Domains[id]
		if d.MigDay != migDay || d.MigTo != dps.Incapsula {
			t.Fatalf("Wix site %d: MigDay=%d MigTo=%v", id, d.MigDay, d.MigTo)
		}
	}
	// After migration the sites resolve into Incapsula's network and the
	// detector sees the provider CNAME.
	det := dps.NewDetector(p.cfg.Plan)
	id := wix.Sites[0]
	after := int(migDay) + 1
	if got := det.Detect(p.DNSStateOf(id, after)); got != dps.Incapsula {
		t.Errorf("post-migration detection = %v", got)
	}
	if got := det.Detect(p.DNSStateOf(id, int(migDay)-2)); got != dps.None {
		t.Errorf("pre-migration detection = %v", got)
	}
	// And they no longer resolve on the old Wix IP.
	if n := p.CountSitesOn(wix.IPs[0], after); n != 0 {
		t.Errorf("%d sites still on Wix IP after bulk migration", n)
	}
}

func TestApplyMigrationsIndividual(t *testing.T) {
	p := testPopulation(t, 50000)
	pool, ok := p.PoolByName("large-0")
	if !ok {
		t.Fatal("no large-0 pool")
	}
	var exposures []AttackExposure
	for _, id := range pool.Sites {
		exposures = append(exposures, AttackExposure{Domain: id, FirstDay: 100, IntensityPct: 0.9995})
	}
	p.ApplyMigrations(3, exposures)
	migrated, fast := 0, 0
	for _, id := range pool.Sites {
		d := &p.Domains[id]
		if d.Pre == dps.None && d.MigDay >= 0 {
			migrated++
			if d.MigDay <= 101 {
				fast++
			}
		}
	}
	frac := float64(migrated) / float64(len(pool.Sites))
	if frac < 0.015 || frac > 0.08 {
		t.Errorf("migration fraction = %.3f, want ~0.0376 (mid co-hosting band)", frac)
	}
	if migrated > 0 {
		fastFrac := float64(fast) / float64(migrated)
		if fastFrac < 0.65 {
			t.Errorf("top-intensity next-day migration = %.2f, want ~0.81 (Fig 10)", fastFrac)
		}
	}
	// Exposures for preexisting sites must be ignored.
	dos, _ := p.PoolByName("DOSarrestFront")
	p.ApplyMigrations(3, []AttackExposure{{Domain: dos.Sites[0], FirstDay: 10, IntensityPct: 1}})
	if p.Domains[dos.Sites[0]].MigDay >= 0 {
		t.Error("preexisting site migrated")
	}
}

func TestMigrationDelayDistribution(t *testing.T) {
	p := testPopulation(t, 50000)
	p.cfg.MigrationProb = 1.0 // isolate the delay distribution
	gd, _ := p.PoolByName("GoDaddy")
	var exposures []AttackExposure
	for _, id := range gd.Sites {
		exposures = append(exposures, AttackExposure{Domain: id, FirstDay: 50, IntensityPct: 0.5})
	}
	p.ApplyMigrations(3, exposures)
	within1, within6, total := 0, 0, 0
	for _, id := range gd.Sites {
		d := &p.Domains[id]
		if d.Pre != dps.None || d.MigDay < 0 {
			continue
		}
		total++
		delay := int(d.MigDay) - 50
		if delay <= 1 {
			within1++
		}
		if delay <= 6 {
			within6++
		}
	}
	if total == 0 {
		t.Fatal("nothing migrated")
	}
	// The sampled distribution is deliberately slower than the paper's
	// measured Figure 10 "All" curve (23.2% within a day): the measured
	// delay is taken from the attack nearest the migration, which
	// compresses delays for repeatedly attacked targets; the generator
	// compensates by sampling a slower base distribution.
	f1 := float64(within1) / float64(total)
	f6 := float64(within6) / float64(total)
	if f1 > 0.12 {
		t.Errorf("P(<=1d) = %.3f, want small (ordinary-intensity band)", f1)
	}
	if f6 < 0.03 || f6 > 0.25 {
		t.Errorf("P(<=6d) = %.3f", f6)
	}
	// Top-intensity exposures migrate next day in the vast majority.
	p2 := testPopulation(t, 50000)
	p2.cfg.MigrationProb = 1.0
	gd2, _ := p2.PoolByName("GoDaddy")
	var hot []AttackExposure
	for _, id := range gd2.Sites {
		hot = append(hot, AttackExposure{Domain: id, FirstDay: 50, IntensityPct: 0.9995})
	}
	p2.ApplyMigrations(3, hot)
	fast, tot := 0, 0
	for _, id := range gd2.Sites {
		d := &p2.Domains[id]
		if d.Pre != dps.None || d.MigDay < 0 {
			continue
		}
		tot++
		if int(d.MigDay)-50 <= 1 {
			fast++
		}
	}
	if tot == 0 {
		t.Fatal("nothing migrated in hot band")
	}
	if frac := float64(fast) / float64(tot); frac < 0.65 {
		t.Errorf("top-band next-day fraction = %.2f, want ~0.81", frac)
	}
}

func TestTaxonomyMassesAtBuild(t *testing.T) {
	p := testPopulation(t, 100000)
	attackedSites, preOnAttacked, quietPre, quietMig := 0, 0, 0, 0
	quiet := 0
	for id := range p.Domains {
		d := &p.Domains[id]
		pool := poolOf(p, uint32(id))
		attacked := pool != nil && pool.Attacked
		if attacked {
			attackedSites++
			if d.Pre != dps.None {
				preOnAttacked++
			}
		} else {
			quiet++
			if d.Pre != dps.None {
				quietPre++
			} else if d.MigDay >= 0 {
				quietMig++
			}
		}
	}
	attackedFrac := float64(attackedSites) / float64(p.NumDomains())
	if attackedFrac < 0.55 || attackedFrac > 0.72 {
		t.Errorf("attacked-intent site fraction = %.3f, want ~0.64", attackedFrac)
	}
	preFrac := float64(preOnAttacked) / float64(attackedSites)
	if preFrac < 0.13 || preFrac > 0.25 {
		t.Errorf("preexisting|attacked = %.3f, want ~0.186", preFrac)
	}
	quietPreFrac := float64(quietPre) / float64(quiet)
	if quietPreFrac < 0.004 || quietPreFrac > 0.02 {
		t.Errorf("preexisting|quiet = %.4f, want ~0.0089", quietPreFrac)
	}
	quietMigFrac := float64(quietMig) / float64(quiet)
	if quietMigFrac < 0.02 || quietMigFrac > 0.05 {
		t.Errorf("migrating|quiet = %.4f, want ~0.033", quietMigFrac)
	}
}

func TestAttackableTargetsAndTriggers(t *testing.T) {
	p := testPopulation(t, 50000)
	targets := p.AttackableTargets(5, 200)
	if len(targets) < 300 {
		t.Fatalf("targets = %d", len(targets))
	}
	singles := 0
	for _, tgt := range targets {
		if tgt.Pool == -1 {
			singles++
		}
	}
	if singles != 200 {
		t.Errorf("single targets = %d, want 200", singles)
	}
	trigs := p.BulkTriggers()
	if len(trigs) != 2 {
		t.Fatalf("bulk triggers = %d, want 2 (Wix, eNom)", len(trigs))
	}
	for _, tr := range trigs {
		if tr.Day <= 0 || tr.MinDurationSec < 4*3600 {
			t.Errorf("trigger %+v", tr)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := testPopulation(t, 20000)
	b := testPopulation(t, 20000)
	for i := range a.Domains {
		if a.Domains[i] != b.Domains[i] {
			t.Fatalf("domain %d differs", i)
		}
	}
	for i := range a.SingleIPs {
		if a.SingleIPs[i] != b.SingleIPs[i] {
			t.Fatalf("single IP %d differs", i)
		}
	}
}

func TestHostsAnySite(t *testing.T) {
	p := testPopulation(t, 20000)
	gd, _ := p.PoolByName("GoDaddy")
	if !p.HostsAnySite(gd.IPs[0]) {
		t.Error("pool IP not recognized")
	}
	if !p.HostsAnySite(p.SingleIPs[0]) {
		t.Error("single IP not recognized")
	}
	if p.HostsAnySite(0xdeadbeef) {
		t.Error("random address hosts a site")
	}
}

// Package webmodel generates the synthetic Web hosting ecosystem that
// substitutes for the OpenINTEL view of .com/.net/.org: domains with www
// labels, hosting pools (from single self-hosted sites to mega hosters
// sharding millions of sites over a handful of IPs), DPS-fronted pools,
// and the migration behaviour the paper studies in §6.
//
// The default tier table is calibrated so that, at any scale, the paper's
// §5/§6 masses hold: ~64% of sites live on IPs the simulator will attack,
// preexisting DPS customers concentrate on attacked infrastructure
// (18.6% vs 0.89%), and the Figure 6 co-hosting distribution spans
// single-site IPs up to a DOSarrest-routed IP hosting the maximum number
// of sites.
package webmodel

import (
	"fmt"
	"math/rand"
	"sort"

	"doscope/internal/dps"
	"doscope/internal/ipmeta"
	"doscope/internal/netx"
)

// TLD identifies the generic TLDs the paper measures.
type TLD uint8

// The three gTLDs.
const (
	TLDCom TLD = iota
	TLDNet
	TLDOrg
	NumTLDs = int(TLDOrg) + 1
)

// String returns the zone name.
func (t TLD) String() string {
	switch t {
	case TLDCom:
		return "com"
	case TLDNet:
		return "net"
	case TLDOrg:
		return "org"
	}
	return "tld?"
}

// tldWeights follow Table 2: 173.7M / 21.6M / 14.7M Web sites.
var tldWeights = [NumTLDs]float64{173.7, 21.6, 14.7}

// FullScaleDomains is the paper's Web-site population (Table 2).
const FullScaleDomains = 210e6

// Domain is one Web site (a registered domain with a www label).
type Domain struct {
	TLD      TLD
	BirthDay uint16
	// Pool is the hosting pool index, or -1 for self-hosted singles.
	Pool int32
	// SingleIP indexes Population.SingleIPs when Pool == -1.
	SingleIP int32
	// Pre is the preexisting DPS provider (None if unprotected at birth).
	Pre dps.Provider
	// MigDay is the day the site first appears protected (migration), -1
	// if never; MigTo is the adopted provider.
	MigDay int32
	MigTo  dps.Provider
}

// Protected reports the provider in effect on the given day.
func (d *Domain) Protected(day int) dps.Provider {
	if d.Pre != dps.None {
		return d.Pre
	}
	if d.MigDay >= 0 && int(d.MigDay) <= day {
		return d.MigTo
	}
	return dps.None
}

// Pool is a hosting pool: one hoster's shared infrastructure. Site i of
// the pool is served by IP i % len(IPs) (sharding).
type Pool struct {
	Name    string
	Tier    string
	ASN     ipmeta.ASN
	Country ipmeta.Country
	NS      string // hoster name-server target
	// CNAMEHost, when set, makes www labels expand through a hoster CNAME
	// (Wix-style platforms).
	CNAMEHost string
	// Front is the DPS provider fronting the whole pool (preexisting
	// protection detected via the A record's origin AS).
	Front dps.Provider
	IPs   []netx.Addr
	// MailIPs is the pool's shared mail cluster (see mail.go).
	MailIPs []netx.Addr
	Sites   []uint32
	// Attacked marks pools the simulator will target; Weight shapes how
	// often (per IP).
	Attacked bool
	Weight   float64
	Bulk     *BulkMigration
}

// BulkMigration models hoster-level migrations (Wix to Incapsula next-day
// after the Nov 4, 2016 attack; eNom to Verisign after 101 days).
type BulkMigration struct {
	// TriggerDay is the day the simulator plants the triggering attack.
	TriggerDay int
	// MinDurationSec forces the trigger attack to be at least this long
	// (Fig. 11 conditions on >= 4h attacks).
	MinDurationSec int64
	DelayDays      int
	To             dps.Provider
}

// Config parameterizes Build.
type Config struct {
	Seed       int64
	NumDomains int // default 210_000 (1/1000 scale)
	Plan       *ipmeta.Plan
	// NewbornFraction of domains appear during the window rather than on
	// day 0. Default 0.15.
	NewbornFraction float64
	// BackgroundMigrationRate is the no-attack-observed migration rate
	// (Fig. 8: 3.32%). Default 0.0332.
	BackgroundMigrationRate float64
	// PreexistingQuietRate is the preexisting-DPS rate among never-attacked
	// sites (Fig. 8: 0.89%). Default 0.0089.
	PreexistingQuietRate float64
	// MigrationProb is the per-site probability of migrating after an
	// attack exposure (individual migrations; bulk migrations add the
	// rest of the paper's 4.31%). Default 0.0376.
	MigrationProb float64
	// WindowDays is the observation window length. Default 731.
	WindowDays int
}

func (c *Config) applyDefaults() {
	if c.NumDomains == 0 {
		c.NumDomains = 210_000
	}
	if c.NewbornFraction == 0 {
		c.NewbornFraction = 0.15
	}
	if c.BackgroundMigrationRate == 0 {
		c.BackgroundMigrationRate = 0.0332
	}
	if c.PreexistingQuietRate == 0 {
		c.PreexistingQuietRate = 0.0089
	}
	if c.MigrationProb == 0 {
		c.MigrationProb = 0.0376
	}
	if c.WindowDays == 0 {
		c.WindowDays = 731
	}
}

// TierSpec declares one row of the hosting tier table with full-scale site
// counts; Build scales them by NumDomains/FullScaleDomains.
type TierSpec struct {
	Name      string
	ASName    string // named AS in the plan ("" = generic AS by country)
	Country   string // used for generic pools; cycled when empty
	Pools     int
	IPsPer    int
	SitesFull float64 // sites per pool at full scale
	Front     dps.Provider
	CNAMEHost string
	Attacked  bool
	Weight    float64
	Bulk      *BulkMigration
}

// DefaultTiers is the calibrated hosting tier table (see package comment).
func DefaultTiers() []TierSpec {
	return []TierSpec{
		{Name: "GoDaddy", ASName: "GoDaddy", Country: "US", Pools: 1, IPsPer: 20, SitesFull: 32e6, Attacked: true, Weight: 30},
		{Name: "Wix", ASName: "Amazon AWS", Country: "US", Pools: 1, IPsPer: 1, SitesFull: 0.5e6, CNAMEHost: "wix-sites.com", Attacked: true, Weight: 10,
			Bulk: &BulkMigration{TriggerDay: 614, MinDurationSec: 4 * 3600, DelayDays: 1, To: dps.Incapsula}},
		{Name: "WordPress", ASName: "Automattic", Country: "US", Pools: 1, IPsPer: 2, SitesFull: 5e6, Attacked: true, Weight: 10},
		{Name: "Google", ASName: "Google Cloud", Country: "US", Pools: 1, IPsPer: 5, SitesFull: 10e6, Attacked: true, Weight: 15},
		{Name: "AmazonReseller", ASName: "Amazon AWS", Country: "US", Pools: 1, IPsPer: 3, SitesFull: 9e6, CNAMEHost: "reseller-pages.com", Attacked: true, Weight: 10},
		{Name: "Squarespace", ASName: "Squarespace", Country: "US", Pools: 1, IPsPer: 2, SitesFull: 4e6, Attacked: true, Weight: 8},
		{Name: "eNom", ASName: "eNom", Country: "US", Pools: 1, IPsPer: 1, SitesFull: 0.13e6, Attacked: true, Weight: 2,
			Bulk: &BulkMigration{TriggerDay: 350, MinDurationSec: 5 * 3600, DelayDays: 101, To: dps.Verisign}},
		{Name: "EIG", ASName: "Endurance (EIG)", Country: "US", Pools: 1, IPsPer: 10, SitesFull: 13e6, Attacked: true, Weight: 12},
		{Name: "OVH", ASName: "OVH", Country: "FR", Pools: 1, IPsPer: 15, SitesFull: 13e6, Attacked: true, Weight: 25},
		{Name: "NetworkSolutions", ASName: "Network Solutions", Country: "US", Pools: 1, IPsPer: 5, SitesFull: 6.5e6, Attacked: true, Weight: 6},
		{Name: "Gandi", ASName: "Gandi", Country: "FR", Pools: 1, IPsPer: 3, SitesFull: 2.5e6, Attacked: true, Weight: 4},
		// DPS-fronted pools: preexisting customers, attacked but mitigated.
		{Name: "CloudFlareFront", ASName: "CloudFlare", Country: "US", Pools: 1, IPsPer: 2, SitesFull: 9e6, Front: dps.CloudFlare, Attacked: true, Weight: 8},
		{Name: "AkamaiFront", ASName: "Akamai", Country: "US", Pools: 1, IPsPer: 2, SitesFull: 5.5e6, Front: dps.Akamai, Attacked: true, Weight: 5},
		{Name: "NeustarFront", ASName: "Neustar", Country: "US", Pools: 1, IPsPer: 2, SitesFull: 4.3e6, Front: dps.Neustar, Attacked: true, Weight: 4},
		{Name: "DOSarrestFront", ASName: "DOSarrest", Country: "US", Pools: 1, IPsPer: 1, SitesFull: 3.6e6, Front: dps.DOSarrest, Attacked: true, Weight: 4},
		{Name: "IncapsulaFront", ASName: "Incapsula", Country: "US", Pools: 1, IPsPer: 1, SitesFull: 1.5e6, Front: dps.Incapsula, Attacked: true, Weight: 3},
		{Name: "F5Front", ASName: "F5 Networks", Country: "US", Pools: 1, IPsPer: 1, SitesFull: 0.5e6, Front: dps.F5, Attacked: true, Weight: 1},
		{Name: "VerisignFront", ASName: "Verisign", Country: "US", Pools: 1, IPsPer: 1, SitesFull: 0.3e6, Front: dps.Verisign, Attacked: true, Weight: 1},
		{Name: "CenturyLinkFront", ASName: "CenturyLink", Country: "US", Pools: 1, IPsPer: 1, SitesFull: 0.15e6, Front: dps.CenturyLink, Attacked: true, Weight: 1},
		{Name: "Level3Front", ASName: "Level 3", Country: "US", Pools: 1, IPsPer: 1, SitesFull: 0.05e6, Front: dps.Level3, Attacked: true, Weight: 0.5},
		{Name: "VirtualRoadFront", ASName: "VirtualRoad", Country: "SE", Pools: 1, IPsPer: 1, SitesFull: 0.00006e6, Front: dps.VirtualRoad, Attacked: true, Weight: 0.2},
		// Generic hosting, attacked and quiet.
		{Name: "large", Pools: 12, IPsPer: 1, SitesFull: 0.6e6, Attacked: true, Weight: 2},
		{Name: "large-quiet", Pools: 8, IPsPer: 1, SitesFull: 0.6e6},
		{Name: "medium", Pools: 110, IPsPer: 1, SitesFull: 0.05e6, Attacked: true, Weight: 0.5},
		{Name: "small", Pools: 199, IPsPer: 1, SitesFull: 0.008e6, Attacked: true, Weight: 0.2},
		{Name: "small-quiet", Pools: 51, IPsPer: 1, SitesFull: 0.008e6},
	}
}

// genericCountries cycles hosting countries for generic pools.
var genericCountries = []string{
	"US", "US", "US", "US", "DE", "GB", "FR", "NL", "CA", "CN", "CN", "RU", "JP", "US", "DE", "GB",
}

// Population is the generated ecosystem.
type Population struct {
	cfg     Config
	Domains []Domain
	Pools   []Pool
	// SingleIPs holds the self-hosted sites' addresses.
	SingleIPs []netx.Addr

	poolByName   map[string]int32
	ipToPool     map[netx.Addr]poolShard
	ipToSingle   map[netx.Addr]uint32
	ipToMailPool map[netx.Addr]int32
	mailBuilt    bool
	// providerFrontAddr receives individually migrated sites' A records.
	providerFrontAddr [dps.NumProviders + 1]netx.Addr
	// providerASNs is the set of DPS provider networks; self-hosted
	// singles never allocate addresses there (a site on provider space
	// would be detected as a customer).
	providerASNs map[ipmeta.ASN]bool
	// migratedByProvider lists domain ids sorted by MigDay, one slice per
	// provider; rebuilt by ApplyMigrations.
	migratedByProvider [dps.NumProviders + 1][]uint32
}

type poolShard struct {
	pool  int32
	shard int32
}

// Build generates a deterministic population.
func Build(cfg Config, tiers []TierSpec) (*Population, error) {
	cfg.applyDefaults()
	if cfg.Plan == nil {
		return nil, fmt.Errorf("webmodel: Config.Plan is required")
	}
	if tiers == nil {
		tiers = DefaultTiers()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Population{
		cfg:          cfg,
		poolByName:   make(map[string]int32),
		ipToPool:     make(map[netx.Addr]poolShard),
		ipToSingle:   make(map[netx.Addr]uint32),
		ipToMailPool: make(map[netx.Addr]int32),
	}
	scale := float64(cfg.NumDomains) / FullScaleDomains

	// Create pools and allocate their IPs.
	genericASNsByCC := indexGenericASNs(cfg.Plan)
	gcIdx := 0
	poolSites := 0
	for _, tier := range tiers {
		for k := 0; k < tier.Pools; k++ {
			sites := int(tier.SitesFull * scale)
			if sites < 1 {
				sites = 1
			}
			cc := tier.Country
			if cc == "" {
				cc = genericCountries[gcIdx%len(genericCountries)]
				gcIdx++
			}
			pool := Pool{
				Name:      tier.Name,
				Tier:      tier.Name,
				Country:   ipmeta.CC(cc),
				CNAMEHost: tier.CNAMEHost,
				Front:     tier.Front,
				Attacked:  tier.Attacked,
				Weight:    tier.Weight,
				Bulk:      tier.Bulk,
			}
			if tier.Pools > 1 {
				pool.Name = fmt.Sprintf("%s-%d", tier.Name, k)
			}
			if tier.ASName != "" {
				asn, ok := cfg.Plan.ASNByName(tier.ASName)
				if !ok {
					return nil, fmt.Errorf("webmodel: unknown AS %q", tier.ASName)
				}
				pool.ASN = asn
			} else {
				asns := genericASNsByCC[ipmeta.CC(cc)]
				if len(asns) == 0 {
					return nil, fmt.Errorf("webmodel: no generic AS in %s", cc)
				}
				pool.ASN = asns[rng.Intn(len(asns))]
			}
			pool.NS = fmt.Sprintf("ns1.%s-dns.net", sanitize(pool.Name))
			for len(pool.IPs) < tier.IPsPer {
				addr, ok := p.allocIPInAS(rng, cfg.Plan, pool.ASN)
				if !ok {
					return nil, fmt.Errorf("webmodel: cannot allocate IP in AS%d", pool.ASN)
				}
				p.ipToPool[addr] = poolShard{int32(len(p.Pools)), int32(len(pool.IPs))}
				pool.IPs = append(pool.IPs, addr)
			}
			pool.Sites = make([]uint32, 0, sites)
			poolSites += sites
			p.poolByName[pool.Name] = int32(len(p.Pools))
			p.Pools = append(p.Pools, pool)
		}
	}
	if poolSites > cfg.NumDomains {
		return nil, fmt.Errorf("webmodel: tier table wants %d sites but only %d domains", poolSites, cfg.NumDomains)
	}

	// Provider front addresses for individually migrated sites.
	p.providerASNs = make(map[ipmeta.ASN]bool)
	for _, prov := range dps.All() {
		asn, ok := cfg.Plan.ASNByName(dps.ASName(prov))
		if !ok {
			return nil, fmt.Errorf("webmodel: provider AS %q missing", dps.ASName(prov))
		}
		addr, ok := cfg.Plan.RandomAddrInAS(rng, asn)
		if !ok {
			return nil, fmt.Errorf("webmodel: no address in provider AS %q", dps.ASName(prov))
		}
		p.providerFrontAddr[prov] = addr
		p.providerASNs[asn] = true
	}

	// Create domains: fill pools first, the remainder self-hosts.
	p.Domains = make([]Domain, cfg.NumDomains)
	id := uint32(0)
	for pi := range p.Pools {
		pool := &p.Pools[pi]
		for len(pool.Sites) < cap(pool.Sites) {
			pool.Sites = append(pool.Sites, id)
			p.Domains[id].Pool = int32(pi)
			p.Domains[id].SingleIP = -1
			id++
		}
	}
	for ; id < uint32(cfg.NumDomains); id++ {
		addr := p.allocSingleIP(rng, cfg.Plan)
		p.Domains[id].Pool = -1
		p.Domains[id].SingleIP = int32(len(p.SingleIPs))
		p.ipToSingle[addr] = id
		p.SingleIPs = append(p.SingleIPs, addr)
	}

	// TLDs, birth days, preexisting flags and background migrations.
	totalW := tldWeights[0] + tldWeights[1] + tldWeights[2]
	for i := range p.Domains {
		d := &p.Domains[i]
		x := rng.Float64() * totalW
		switch {
		case x < tldWeights[0]:
			d.TLD = TLDCom
		case x < tldWeights[0]+tldWeights[1]:
			d.TLD = TLDNet
		default:
			d.TLD = TLDOrg
		}
		if rng.Float64() < cfg.NewbornFraction {
			d.BirthDay = uint16(rng.Intn(cfg.WindowDays))
		}
		d.MigDay = -1
		pool := poolOf(p, uint32(i))
		if pool != nil && pool.Front != dps.None {
			d.Pre = pool.Front
			continue
		}
		attacked := pool != nil && pool.Attacked
		if !attacked {
			// Quiet infrastructure: background preexisting use and
			// background (no-attack-observed) migration.
			if rng.Float64() < cfg.PreexistingQuietRate {
				d.Pre = backgroundProvider(rng)
			} else if rng.Float64() < cfg.BackgroundMigrationRate {
				lo := int(d.BirthDay) + 1
				if lo >= cfg.WindowDays {
					continue
				}
				d.MigDay = int32(lo + rng.Intn(cfg.WindowDays-lo))
				d.MigTo = backgroundProvider(rng)
			}
		}
	}
	return p, nil
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c-'A'+'a')
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-':
			out = append(out, c)
		}
	}
	return string(out)
}

func indexGenericASNs(plan *ipmeta.Plan) map[ipmeta.Country][]ipmeta.ASN {
	out := make(map[ipmeta.Country][]ipmeta.ASN)
	for i := range plan.ASes {
		as := &plan.ASes[i]
		if as.Name == "" {
			out[as.Country] = append(out[as.Country], as.Num)
		}
	}
	return out
}

func (p *Population) allocIPInAS(rng *rand.Rand, plan *ipmeta.Plan, asn ipmeta.ASN) (netx.Addr, bool) {
	free := func(addr netx.Addr) bool {
		if _, used := p.ipToPool[addr]; used {
			return false
		}
		if _, used := p.ipToSingle[addr]; used {
			return false
		}
		if _, used := p.ipToMailPool[addr]; used {
			return false
		}
		return true
	}
	for tries := 0; tries < 500; tries++ {
		blk, ok := plan.RandomActive24InAS(rng, asn)
		if !ok {
			return 0, false
		}
		addr := blk.Base + netx.Addr(1+rng.Intn(254))
		if free(addr) {
			return addr, true
		}
	}
	// Random probing failed (a small, densely allocated AS): scan a block
	// sequentially so allocation degrades gracefully instead of failing.
	for tries := 0; tries < 20; tries++ {
		blk, ok := plan.RandomActive24InAS(rng, asn)
		if !ok {
			return 0, false
		}
		for host := netx.Addr(1); host <= 254; host++ {
			if addr := blk.Base + host; free(addr) {
				return addr, true
			}
		}
	}
	return 0, false
}

func (p *Population) allocSingleIP(rng *rand.Rand, plan *ipmeta.Plan) netx.Addr {
	for {
		blk := plan.Active24s[rng.Intn(len(plan.Active24s))]
		if p.providerASNs[blk.AS] {
			continue // provider space would read as DPS use
		}
		addr := blk.Base + netx.Addr(1+rng.Intn(254))
		if _, used := p.ipToPool[addr]; used {
			continue
		}
		if _, used := p.ipToSingle[addr]; used {
			continue
		}
		return addr
	}
}

func poolOf(p *Population, id uint32) *Pool {
	pi := p.Domains[id].Pool
	if pi < 0 {
		return nil
	}
	return &p.Pools[pi]
}

// backgroundProvider draws the provider for organic (non-attack-driven)
// DPS adoption, CloudFlare-heavy like the real market.
func backgroundProvider(rng *rand.Rand) dps.Provider {
	return weightedProvider(rng)
}

var migrationWeights = []struct {
	p dps.Provider
	w float64
}{
	{dps.CloudFlare, 0.30}, {dps.Incapsula, 0.15}, {dps.Akamai, 0.12},
	{dps.Neustar, 0.12}, {dps.Verisign, 0.08}, {dps.DOSarrest, 0.08},
	{dps.F5, 0.06}, {dps.CenturyLink, 0.04}, {dps.Level3, 0.03},
	{dps.VirtualRoad, 0.02},
}

func weightedProvider(rng *rand.Rand) dps.Provider {
	x := rng.Float64()
	for _, mw := range migrationWeights {
		if x < mw.w {
			return mw.p
		}
		x -= mw.w
	}
	return dps.CloudFlare
}

// --- accessors ----------------------------------------------------------

// NumDomains returns the population size.
func (p *Population) NumDomains() int { return len(p.Domains) }

// DomainName renders the registered name of a domain id.
func (p *Population) DomainName(id uint32) string {
	return fmt.Sprintf("w%07d.%s", id, p.Domains[id].TLD)
}

// WWWName renders the www label.
func (p *Population) WWWName(id uint32) string { return "www." + p.DomainName(id) }

// PoolByName returns a pool by its unique name.
func (p *Population) PoolByName(name string) (*Pool, bool) {
	i, ok := p.poolByName[name]
	if !ok {
		return nil, false
	}
	return &p.Pools[i], true
}

// AddrOf returns the A-record address of a domain on a day.
func (p *Population) AddrOf(id uint32, day int) netx.Addr {
	d := &p.Domains[id]
	if prov := d.Protected(day); prov != dps.None {
		if pool := poolOf(p, id); pool != nil && pool.Front == prov {
			// DPS-fronted pool: the pool IPs already sit in provider space.
			return pool.IPs[int(id)%len(pool.IPs)]
		}
		return p.providerFrontAddr[prov]
	}
	if pool := poolOf(p, id); pool != nil {
		return pool.IPs[int(id)%len(pool.IPs)]
	}
	return p.SingleIPs[d.SingleIP]
}

// DNSStateOf returns the detection-relevant DNS view of a domain on a day.
func (p *Population) DNSStateOf(id uint32, day int) dps.DNSState {
	d := &p.Domains[id]
	pool := poolOf(p, id)
	var st dps.DNSState
	prov := d.Protected(day)
	switch {
	case prov != dps.None && pool != nil && pool.Front == prov:
		// Fronted pool: hoster NS, no CNAME; detection must use the A
		// record's origin AS (BGP-style diversion).
		st.NS = []string{pool.NS}
	case prov != dps.None && pool != nil && pool.CNAMEHost != "":
		// Platform migrates by swinging its CNAME to the provider.
		st.NS = []string{pool.NS}
		st.CNAME = dps.CNAMETarget(prov, fmt.Sprintf("u%d", id))
	case prov != dps.None:
		// DNS-based diversion: the domain's NS moves to the provider.
		st.NS = []string{dps.NameServer(prov)}
	case pool != nil && pool.CNAMEHost != "":
		st.NS = []string{pool.NS}
		st.CNAME = fmt.Sprintf("u%d.%s", id, pool.CNAMEHost)
	case pool != nil:
		st.NS = []string{pool.NS}
	default:
		st.NS = []string{fmt.Sprintf("ns1.w%07d.%s", id, d.TLD)}
	}
	if asn, ok := p.cfg.Plan.ASOf(p.AddrOf(id, day)); ok {
		st.AASN = asn
	}
	return st
}

// Alive reports whether the domain exists in the DNS on the given day.
func (p *Population) Alive(id uint32, day int) bool {
	return int(p.Domains[id].BirthDay) <= day
}

// --- IP -> sites join ----------------------------------------------------

// ForEachSiteOn calls fn for every domain whose www A record points at
// addr on the given day. It visits pool shards, self-hosted singles, and
// sites migrated onto provider front addresses.
func (p *Population) ForEachSiteOn(addr netx.Addr, day int, fn func(id uint32)) {
	if ps, ok := p.ipToPool[addr]; ok {
		pool := &p.Pools[ps.pool]
		n := len(pool.IPs)
		for i := int(ps.shard); i < len(pool.Sites); i += n {
			id := pool.Sites[i]
			d := &p.Domains[id]
			if int(d.BirthDay) > day {
				continue
			}
			// Sites that migrated away (to a non-front provider) no longer
			// resolve here.
			if d.Pre == dps.None && d.MigDay >= 0 && int(d.MigDay) <= day {
				continue
			}
			fn(id)
		}
	}
	if id, ok := p.ipToSingle[addr]; ok {
		d := &p.Domains[id]
		if int(d.BirthDay) <= day && !(d.MigDay >= 0 && int(d.MigDay) <= day) {
			fn(id)
		}
	}
	// Provider front addresses accumulate migrated sites.
	for _, prov := range dps.All() {
		if p.providerFrontAddr[prov] != addr {
			continue
		}
		ids := p.migratedByProvider[prov]
		// ids are sorted by MigDay; all with MigDay <= day resolve here.
		hi := sort.Search(len(ids), func(i int) bool {
			return int(p.Domains[ids[i]].MigDay) > day
		})
		for _, id := range ids[:hi] {
			if int(p.Domains[id].BirthDay) <= day {
				fn(id)
			}
		}
	}
}

// CountSitesOn counts sites resolving to addr on a day.
func (p *Population) CountSitesOn(addr netx.Addr, day int) int {
	n := 0
	p.ForEachSiteOn(addr, day, func(uint32) { n++ })
	return n
}

// HostsAnySite reports whether addr serves at least one site on any day
// (used to decide which attack targets are "Web targets").
func (p *Population) HostsAnySite(addr netx.Addr) bool {
	if _, ok := p.ipToPool[addr]; ok {
		return true
	}
	if _, ok := p.ipToSingle[addr]; ok {
		return true
	}
	for _, prov := range dps.All() {
		if p.providerFrontAddr[prov] == addr {
			return len(p.migratedByProvider[prov]) > 0
		}
	}
	return false
}

// --- attack wiring --------------------------------------------------------

// WebTarget is an attackable Web-hosting IP exposed to the simulator.
type WebTarget struct {
	Addr   netx.Addr
	Weight float64
	Pool   int32 // -1 for singles
}

// AttackableTargets lists pool IPs marked for attack plus a deterministic
// sample of single-site IPs (the paper's Fig. 6 n=1 bin).
func (p *Population) AttackableTargets(seed int64, singles int) []WebTarget {
	rng := rand.New(rand.NewSource(seed))
	var out []WebTarget
	for pi := range p.Pools {
		pool := &p.Pools[pi]
		if !pool.Attacked {
			continue
		}
		for _, addr := range pool.IPs {
			out = append(out, WebTarget{Addr: addr, Weight: pool.Weight, Pool: int32(pi)})
		}
	}
	if singles > len(p.SingleIPs) {
		singles = len(p.SingleIPs)
	}
	perm := rng.Perm(len(p.SingleIPs))[:singles]
	sort.Ints(perm)
	for _, i := range perm {
		out = append(out, WebTarget{Addr: p.SingleIPs[i], Weight: 0.1, Pool: -1})
	}
	return out
}

// BulkTrigger describes an attack the simulator must plant to fire a
// hoster-level migration.
type BulkTrigger struct {
	PoolName       string
	Addr           netx.Addr
	Day            int
	MinDurationSec int64
}

// BulkTriggers lists required planted attacks.
func (p *Population) BulkTriggers() []BulkTrigger {
	var out []BulkTrigger
	for pi := range p.Pools {
		pool := &p.Pools[pi]
		if pool.Bulk == nil {
			continue
		}
		out = append(out, BulkTrigger{
			PoolName:       pool.Name,
			Addr:           pool.IPs[0],
			Day:            pool.Bulk.TriggerDay,
			MinDurationSec: pool.Bulk.MinDurationSec,
		})
	}
	return out
}

// AttackExposure summarizes a domain's attack history for the migration
// decision: when it was first attacked and how intense its worst attack
// was (as a percentile of the normalized intensity distribution).
type AttackExposure struct {
	Domain        uint32
	FirstDay      int
	IntensityPct  float64 // 0..1 percentile of the worst attack
	LongestSecs   int64
	TriggeredBulk bool
}

// ApplyMigrations decides, per exposed domain, whether and when it
// migrates to a DPS. Bulk pools migrate wholesale DelayDays after their
// trigger. Individual sites migrate with probability MigrationProb and a
// delay that shrinks sharply with attack intensity (Fig. 10).
func (p *Population) ApplyMigrations(seed int64, exposures []AttackExposure) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	// Bulk migrations.
	for pi := range p.Pools {
		pool := &p.Pools[pi]
		if pool.Bulk == nil {
			continue
		}
		day := int32(pool.Bulk.TriggerDay + pool.Bulk.DelayDays)
		for _, id := range pool.Sites {
			d := &p.Domains[id]
			if d.Pre != dps.None {
				continue
			}
			d.MigDay = day
			d.MigTo = pool.Bulk.To
		}
	}
	// Individual migrations. The probability scales inversely with
	// co-hosting: a mega-hoster's shared-hosting customer cannot move
	// the infrastructure DNS and rarely shows up as migrating (the paper
	// verifies that few migrating sites in the top intensity percentiles
	// were hosted in large numbers), while small-hoster and self-hosted
	// sites migrate far more readily.
	for _, ex := range exposures {
		d := &p.Domains[ex.Domain]
		if d.Pre != dps.None || d.MigDay >= 0 {
			continue
		}
		pool := poolOf(p, ex.Domain)
		if pool != nil && (pool.Bulk != nil || pool.Front != dps.None) {
			continue
		}
		prob := p.cfg.MigrationProb
		cohost := 1
		if pool != nil && len(pool.IPs) > 0 {
			cohost = len(pool.Sites) / len(pool.IPs)
		}
		switch {
		case cohost > 1000:
			prob *= 0.1
		case cohost > 100:
			prob *= 1.0
		default:
			prob *= 8
		}
		if prob > 0.5 {
			prob = 0.5
		}
		if rng.Float64() >= prob {
			continue
		}
		delay := migrationDelayDays(rng, ex.IntensityPct)
		day := ex.FirstDay + delay
		if day >= p.cfg.WindowDays {
			// Migration falls outside the window: invisible to the study.
			continue
		}
		d.MigDay = int32(day)
		d.MigTo = weightedProvider(rng)
	}
	p.rebuildMigrationIndex()
}

// migrationDelayDays samples the attack-to-migration delay, calibrated to
// Figure 10: almost all of the top 0.1% by intensity migrate within a day
// or two; the bulk of ordinary victims take one to several weeks.
func migrationDelayDays(rng *rand.Rand, pct float64) int {
	type band struct {
		pFast   float64 // P(delay == 1 day)
		pMedium float64 // P(2..6 days)
	}
	var b band
	switch {
	case pct >= 0.999:
		b = band{0.807, 0.179}
	case pct >= 0.99:
		b = band{0.50, 0.271}
	case pct >= 0.95:
		b = band{0.40, 0.271}
	default:
		// Slightly slower than the paper's 23.2%/29.9% because the
		// measured delay compresses toward the most recent attack when
		// targets are attacked repeatedly.
		b = band{0.03, 0.05}
	}
	x := rng.Float64()
	switch {
	case x < b.pFast:
		return 1
	case x < b.pFast+b.pMedium:
		return 2 + rng.Intn(5)
	default:
		// Heavy tail: one to many weeks.
		return 7 + int(rng.ExpFloat64()*70)
	}
}

func (p *Population) rebuildMigrationIndex() {
	for i := range p.migratedByProvider {
		p.migratedByProvider[i] = p.migratedByProvider[i][:0]
	}
	for id := range p.Domains {
		d := &p.Domains[id]
		if d.Pre == dps.None && d.MigDay >= 0 {
			pool := poolOf(p, uint32(id))
			if pool != nil && pool.Front != dps.None {
				continue
			}
			p.migratedByProvider[d.MigTo] = append(p.migratedByProvider[d.MigTo], uint32(id))
		}
	}
	for i := range p.migratedByProvider {
		ids := p.migratedByProvider[i]
		sort.Slice(ids, func(a, b int) bool {
			return p.Domains[ids[a]].MigDay < p.Domains[ids[b]].MigDay
		})
	}
}

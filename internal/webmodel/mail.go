package webmodel

import (
	"fmt"
	"math/rand"

	"doscope/internal/ipmeta"
	"doscope/internal/netx"
)

// Mail infrastructure model — the paper's §8 extension ("we find that
// GoDaddy's e-mail servers, which are used by tens of millions of domain
// names, are frequently targeted by DoS attacks. In future work, we plan
// to investigate the impact of DoS attacks on mail infrastructure").
//
// Each hosting pool runs a small mail cluster shared by all its domains
// (the MX of w123.com points at mail.godaddy-dns.net, which resolves into
// the hoster's network); self-hosted singles run mail on their Web IP.

// BuildMail allocates mail-cluster addresses for every pool. Call after
// Build; idempotent.
func (p *Population) BuildMail(seed int64) error {
	if p.mailBuilt {
		return nil
	}
	rng := rand.New(rand.NewSource(seed ^ 0x3a11))
	for pi := range p.Pools {
		pool := &p.Pools[pi]
		n := 1
		if len(pool.Sites) > 5000 {
			n = 2 // mega hosters run more than one MX host
		}
		for len(pool.MailIPs) < n {
			addr, ok := p.allocIPInAS(rng, p.cfg.Plan, pool.ASN)
			if !ok {
				return fmt.Errorf("webmodel: cannot allocate mail IP in AS%d", pool.ASN)
			}
			p.ipToMailPool[addr] = int32(pi)
			pool.MailIPs = append(pool.MailIPs, addr)
		}
	}
	p.mailBuilt = true
	return nil
}

// MailAddrOf returns where the domain's MX target resolves on a day.
// Mail does not follow Web DPS migrations (the paper's DPS mechanisms
// divert Web traffic); pool mail stays on the hoster's mail cluster.
func (p *Population) MailAddrOf(id uint32, day int) (netx.Addr, bool) {
	d := &p.Domains[id]
	if int(d.BirthDay) > day {
		return 0, false
	}
	if pool := poolOf(p, id); pool != nil {
		if len(pool.MailIPs) == 0 {
			return 0, false
		}
		return pool.MailIPs[int(id)%len(pool.MailIPs)], true
	}
	return p.SingleIPs[d.SingleIP], true
}

// MXTarget renders the domain's MX record target.
func (p *Population) MXTarget(id uint32) string {
	if pool := poolOf(p, id); pool != nil {
		return fmt.Sprintf("mx1.%s-mail.net", sanitize(pool.Name))
	}
	return "mail." + p.DomainName(id)
}

// ForEachMailDomainOn visits the domains whose mail is handled at addr on
// the given day.
func (p *Population) ForEachMailDomainOn(addr netx.Addr, day int, fn func(id uint32)) {
	if pi, ok := p.ipToMailPool[addr]; ok {
		pool := &p.Pools[pi]
		n := len(pool.MailIPs)
		for i := range pool.Sites {
			if pool.MailIPs[i%n] != addr {
				continue
			}
			id := pool.Sites[i]
			if int(p.Domains[id].BirthDay) <= day {
				fn(id)
			}
		}
	}
	if id, ok := p.ipToSingle[addr]; ok {
		if int(p.Domains[id].BirthDay) <= day {
			fn(id)
		}
	}
}

// MailTarget is an attackable mail-cluster IP.
type MailTarget struct {
	Addr    netx.Addr
	Pool    int32
	Domains int
	ASN     ipmeta.ASN
}

// MailTargets lists the mail clusters of attacked hosting pools; the
// simulator targets the big ones (the paper singles out GoDaddy's mail
// servers as frequent targets).
func (p *Population) MailTargets(minDomains int) []MailTarget {
	var out []MailTarget
	for pi := range p.Pools {
		pool := &p.Pools[pi]
		if !pool.Attacked || len(pool.MailIPs) == 0 {
			continue
		}
		per := len(pool.Sites) / len(pool.MailIPs)
		if per < minDomains {
			continue
		}
		for _, addr := range pool.MailIPs {
			out = append(out, MailTarget{Addr: addr, Pool: int32(pi), Domains: per, ASN: pool.ASN})
		}
	}
	return out
}

// Package ipmeta provides the target-metadata substrates the paper layers
// onto attack events: IP geolocation (a NetAcuity Edge substitute built on
// non-overlapping address ranges) and BGP prefix-to-AS mapping (a
// Routeviews pfx2as substitute built on a longest-prefix-match radix
// trie), plus a generator for a synthetic Internet address plan that the
// simulator samples attack targets from.
package ipmeta

import (
	"fmt"
	"sort"

	"doscope/internal/netx"
)

// Country is a two-letter country code such as "US".
type Country [2]byte

// CC builds a Country from a string; it panics unless len(s) == 2.
func CC(s string) Country {
	if len(s) != 2 {
		panic(fmt.Sprintf("ipmeta: invalid country code %q", s))
	}
	return Country{s[0], s[1]}
}

// String returns the two-letter code.
func (c Country) String() string { return string(c[:]) }

// IsZero reports whether the country is unset.
func (c Country) IsZero() bool { return c == Country{} }

// GeoRange maps a contiguous address range to a country.
type GeoRange struct {
	First, Last netx.Addr
	Country     Country
}

// GeoDB is an immutable range-based IP geolocation database. Lookups are
// O(log n) binary searches over sorted, non-overlapping ranges.
type GeoDB struct {
	firsts []netx.Addr
	lasts  []netx.Addr
	cc     []Country
}

// NewGeoDB builds a database from ranges. Ranges are sorted; overlapping
// or inverted ranges are rejected.
func NewGeoDB(ranges []GeoRange) (*GeoDB, error) {
	sorted := make([]GeoRange, len(ranges))
	copy(sorted, ranges)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].First < sorted[j].First })
	db := &GeoDB{
		firsts: make([]netx.Addr, len(sorted)),
		lasts:  make([]netx.Addr, len(sorted)),
		cc:     make([]Country, len(sorted)),
	}
	var prevLast netx.Addr
	for i, r := range sorted {
		if r.Last < r.First {
			return nil, fmt.Errorf("ipmeta: inverted range %v-%v", r.First, r.Last)
		}
		if i > 0 && r.First <= prevLast {
			return nil, fmt.Errorf("ipmeta: overlapping ranges at %v", r.First)
		}
		prevLast = r.Last
		db.firsts[i] = r.First
		db.lasts[i] = r.Last
		db.cc[i] = r.Country
	}
	return db, nil
}

// Lookup returns the country for an address, if any range covers it.
func (db *GeoDB) Lookup(a netx.Addr) (Country, bool) {
	// Find the first range whose First is > a, then check the one before.
	i := sort.Search(len(db.firsts), func(i int) bool { return db.firsts[i] > a })
	if i == 0 {
		return Country{}, false
	}
	i--
	if a > db.lasts[i] {
		return Country{}, false
	}
	return db.cc[i], true
}

// Len returns the number of ranges.
func (db *GeoDB) Len() int { return len(db.firsts) }

package ipmeta

import (
	"doscope/internal/netx"
)

// ASN is an autonomous system number.
type ASN uint32

// PfxToAS maps addresses to origin ASNs by longest prefix match. It is the
// Routeviews pfx2as equivalent.
type PfxToAS interface {
	Lookup(a netx.Addr) (ASN, bool)
}

// PrefixTrie is a binary radix trie for longest-prefix-match lookups.
// Nodes are stored in a flat slice for cache locality; the zero value is an
// empty trie ready for use.
type PrefixTrie struct {
	nodes []trieNode
	size  int // number of stored prefixes
}

type trieNode struct {
	child [2]int32 // index into nodes; 0 means nil (node 0 is the root)
	asn   ASN
	set   bool
}

func (t *PrefixTrie) init() {
	if len(t.nodes) == 0 {
		t.nodes = append(t.nodes, trieNode{})
	}
}

// Insert adds a prefix→ASN mapping, replacing any previous value for the
// exact same prefix.
func (t *PrefixTrie) Insert(p netx.Prefix, asn ASN) {
	t.init()
	idx := int32(0)
	addr := uint32(p.Addr())
	for depth := 0; depth < p.Bits(); depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		next := t.nodes[idx].child[bit]
		if next == 0 {
			t.nodes = append(t.nodes, trieNode{})
			next = int32(len(t.nodes) - 1)
			t.nodes[idx].child[bit] = next
		}
		idx = next
	}
	if !t.nodes[idx].set {
		t.size++
	}
	t.nodes[idx].asn = asn
	t.nodes[idx].set = true
}

// Lookup returns the ASN of the most specific prefix covering the address.
func (t *PrefixTrie) Lookup(a netx.Addr) (ASN, bool) {
	if len(t.nodes) == 0 {
		return 0, false
	}
	var (
		best    ASN
		found   bool
		idx     int32
		addrBit = uint32(a)
	)
	for depth := 0; ; depth++ {
		n := &t.nodes[idx]
		if n.set {
			best, found = n.asn, true
		}
		if depth == 32 {
			break
		}
		bit := (addrBit >> (31 - uint(depth))) & 1
		next := n.child[bit]
		if next == 0 {
			break
		}
		idx = next
	}
	return best, found
}

// Len returns the number of stored prefixes.
func (t *PrefixTrie) Len() int { return t.size }

// LinearPfx2AS is a reference longest-prefix-match implementation that
// scans all prefixes. It exists to cross-check the trie in tests and to
// quantify the trie's benefit in the ablation bench.
type LinearPfx2AS struct {
	prefixes []netx.Prefix
	asns     []ASN
}

// Insert adds a prefix→ASN mapping.
func (l *LinearPfx2AS) Insert(p netx.Prefix, asn ASN) {
	for i, q := range l.prefixes {
		if q == p {
			l.asns[i] = asn
			return
		}
	}
	l.prefixes = append(l.prefixes, p)
	l.asns = append(l.asns, asn)
}

// Lookup scans every prefix and returns the longest match.
func (l *LinearPfx2AS) Lookup(a netx.Addr) (ASN, bool) {
	bestLen := -1
	var best ASN
	for i, p := range l.prefixes {
		if p.Contains(a) && p.Bits() > bestLen {
			bestLen = p.Bits()
			best = l.asns[i]
		}
	}
	return best, bestLen >= 0
}

// Len returns the number of stored prefixes.
func (l *LinearPfx2AS) Len() int { return len(l.prefixes) }

package ipmeta

import (
	"fmt"
	"math/rand"
	"sort"

	"doscope/internal/netx"
)

// AS describes one autonomous system in the synthetic address plan.
type AS struct {
	Num      ASN
	Name     string // non-empty for named organizations
	Country  Country
	Prefixes []netx.Prefix
}

// NumAddrs returns the total number of addresses announced by the AS.
func (a *AS) NumAddrs() uint64 {
	var n uint64
	for _, p := range a.Prefixes {
		n += p.NumAddrs()
	}
	return n
}

// Active24 is a /24 block inferred to be actively used; attack targets are
// sampled from active blocks only, mirroring the paper's comparison of
// attacked /24s against the ~6.5M /24s estimated active on the Internet.
type Active24 struct {
	Base    netx.Addr // first address of the /24
	AS      ASN
	Country Country
}

// Plan is a synthetic Internet address plan: countries, ASNs, announced
// prefixes, active /24 blocks, and the derived geolocation database and
// prefix-to-AS trie.
type Plan struct {
	ASes      []AS
	Active24s []Active24
	Geo       *GeoDB
	Trie      *PrefixTrie
	Telescope netx.Prefix // the darknet /8, never allocated

	asIndex         map[ASN]int32
	asByName        map[string]ASN
	activeByCountry map[Country][]int32
	activeByASN     map[ASN][]int32
	countries       []Country
}

// PlanConfig parameterizes BuildPlan.
type PlanConfig struct {
	Seed        int64
	NumSixteens int         // /16 blocks to allocate across countries (default 2048)
	NumActive24 int         // active /24 blocks (default 6500 ≈ 6.5M scaled 1/1000)
	Telescope   netx.Prefix // darknet prefix to keep unallocated (default 44.0.0.0/8)
}

// CountryShare is a country's share of allocated address space.
type CountryShare struct {
	CC    Country
	Share float64
}

// DefaultCountryShares approximates published IPv4 space-usage estimates
// (cf. the paper's discussion of [26, 27]): the US holds the largest share,
// Japan ranks third. Attack-target country mixes are planted separately by
// the simulator; this table only shapes where address space lives.
func DefaultCountryShares() []CountryShare {
	return []CountryShare{
		{CC("US"), 0.300}, {CC("CN"), 0.080}, {CC("JP"), 0.062},
		{CC("DE"), 0.045}, {CC("GB"), 0.045}, {CC("KR"), 0.035},
		{CC("FR"), 0.032}, {CC("CA"), 0.030}, {CC("BR"), 0.028},
		{CC("IT"), 0.025}, {CC("RU"), 0.025}, {CC("AU"), 0.022},
		{CC("NL"), 0.020}, {CC("IN"), 0.020}, {CC("ES"), 0.018},
		{CC("MX"), 0.015}, {CC("SE"), 0.013}, {CC("TW"), 0.013},
		{CC("PL"), 0.012}, {CC("CH"), 0.011}, {CC("TR"), 0.010},
		{CC("AR"), 0.009}, {CC("ZA"), 0.007}, {CC("SG"), 0.006},
		{CC("ZZ"), 0.117}, // rest of world
	}
}

// namedAS fixes the organizations the paper names, with paper-consistent
// AS numbers where the paper states them (OVH appears as AS12276 in §4).
type namedAS struct {
	num      ASN
	name     string
	cc       string
	sixteens int
}

func namedASes() []namedAS {
	return []namedAS{
		{12276, "OVH", "FR", 4},
		{4134, "China Telecom", "CN", 8},
		{4837, "China Unicom", "CN", 6},
		{26496, "GoDaddy", "US", 4},
		{15169, "Google Cloud", "US", 8},
		{16509, "Amazon AWS", "US", 8},
		{2635, "Automattic", "US", 1},
		{53831, "Squarespace", "US", 1},
		{21740, "eNom", "US", 1},
		{46606, "Endurance (EIG)", "US", 2},
		{29169, "Gandi", "FR", 1},
		{19871, "Network Solutions", "US", 1},
		// DPS provider scrubbing infrastructure.
		{12222, "Akamai", "US", 2},
		{209, "CenturyLink", "US", 2},
		{13335, "CloudFlare", "US", 2},
		{19324, "DOSarrest", "US", 1},
		{55002, "F5 Networks", "US", 1},
		{19551, "Incapsula", "US", 2},
		{3356, "Level 3", "US", 2},
		{19905, "Neustar", "US", 2},
		{26134, "Verisign", "US", 1},
		{197068, "VirtualRoad", "SE", 1},
	}
}

// BuildPlan constructs a deterministic synthetic Internet for the given
// configuration.
func BuildPlan(cfg PlanConfig) (*Plan, error) {
	if cfg.NumSixteens == 0 {
		cfg.NumSixteens = 2048
	}
	if cfg.NumActive24 == 0 {
		cfg.NumActive24 = 6500
	}
	if cfg.Telescope == (netx.Prefix{}) {
		cfg.Telescope = netx.MustParsePrefix("44.0.0.0/8")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	shares := DefaultCountryShares()

	// Allocate /16 counts per country.
	type alloc struct {
		cc  Country
		n16 int
	}
	allocs := make([]alloc, 0, len(shares))
	total := 0
	for _, s := range shares {
		n := int(s.Share*float64(cfg.NumSixteens) + 0.5)
		if n < 2 {
			n = 2
		}
		allocs = append(allocs, alloc{s.CC, n})
		total += n
	}
	if total > cfg.NumSixteens {
		// Trim the rest-of-world bucket to fit.
		allocs[len(allocs)-1].n16 -= total - cfg.NumSixteens
		if allocs[len(allocs)-1].n16 < 2 {
			return nil, fmt.Errorf("ipmeta: NumSixteens %d too small", cfg.NumSixteens)
		}
	}

	// Walk /16 blocks across usable /8s, skipping reserved space and the
	// telescope.
	telescopeOctet := byte(uint32(cfg.Telescope.Addr()) >> 24)
	var blocks []netx.Addr // /16 base addresses, allocated in order
	for o8 := 1; o8 <= 223 && len(blocks) < cfg.NumSixteens; o8++ {
		if byte(o8) == telescopeOctet || o8 == 127 {
			continue
		}
		for o16 := 0; o16 < 256 && len(blocks) < cfg.NumSixteens; o16++ {
			blocks = append(blocks, netx.AddrFrom4(byte(o8), byte(o16), 0, 0))
		}
	}
	if len(blocks) < cfg.NumSixteens {
		return nil, fmt.Errorf("ipmeta: cannot place %d /16s", cfg.NumSixteens)
	}

	p := &Plan{
		Telescope:       cfg.Telescope,
		asIndex:         make(map[ASN]int32),
		asByName:        make(map[string]ASN),
		activeByCountry: make(map[Country][]int32),
		activeByASN:     make(map[ASN][]int32),
	}

	// Hand consecutive /16 runs to each country; named ASes first, then
	// generic ASes of Zipf-ish size.
	named := namedASes()
	namedByCC := make(map[Country][]namedAS)
	for _, n := range named {
		namedByCC[CC(n.cc)] = append(namedByCC[CC(n.cc)], n)
	}
	cursor := 0
	genericASN := ASN(60000)
	var geoRanges []GeoRange
	for _, al := range allocs {
		p.countries = append(p.countries, al.cc)
		remaining := al.n16
		take := func(n int) []netx.Prefix {
			if n > remaining {
				n = remaining
			}
			prefixes := make([]netx.Prefix, 0, n)
			for i := 0; i < n; i++ {
				prefixes = append(prefixes, netx.PrefixFrom(blocks[cursor], 16))
				cursor++
			}
			remaining -= n
			return prefixes
		}
		for _, n := range namedByCC[al.cc] {
			prefixes := take(n.sixteens)
			if len(prefixes) == 0 {
				continue
			}
			p.addAS(AS{Num: n.num, Name: n.name, Country: al.cc, Prefixes: prefixes})
		}
		for remaining > 0 {
			size := 1 + rng.Intn(4) // 1..4 /16s per generic AS
			prefixes := take(size)
			p.addAS(AS{Num: genericASN, Country: al.cc, Prefixes: prefixes})
			genericASN++
		}
	}

	// Derived structures: geo ranges (one per announced /16) and the LPM
	// trie. A small fraction of generic ASes delegate a more-specific /20
	// to a customer ASN, so longest-prefix matching is exercised for real.
	for i := range p.ASes {
		as := &p.ASes[i]
		for _, pre := range as.Prefixes {
			geoRanges = append(geoRanges, GeoRange{First: pre.First(), Last: pre.Last(), Country: as.Country})
			p.Trie.Insert(pre, as.Num)
		}
	}
	moreSpecifics := 0
	for i := range p.ASes {
		as := &p.ASes[i]
		if as.Name == "" && rng.Float64() < 0.05 {
			sub := netx.PrefixFrom(as.Prefixes[0].Addr(), 20)
			cust := AS{Num: genericASN, Country: as.Country, Prefixes: []netx.Prefix{sub}}
			genericASN++
			p.addAS(cust)
			p.Trie.Insert(sub, cust.Num)
			moreSpecifics++
		}
	}
	_ = moreSpecifics

	geo, err := NewGeoDB(geoRanges)
	if err != nil {
		return nil, err
	}
	p.Geo = geo

	// Sample active /24 blocks: every AS gets at least one; hoster-named
	// ASes are guaranteed several since Web hosting concentrates there.
	p.sampleActive(rng, cfg.NumActive24)
	return p, nil
}

func (p *Plan) addAS(as AS) {
	if p.Trie == nil {
		p.Trie = &PrefixTrie{}
	}
	p.asIndex[as.Num] = int32(len(p.ASes))
	if as.Name != "" {
		p.asByName[as.Name] = as.Num
	}
	p.ASes = append(p.ASes, as)
}

func (p *Plan) sampleActive(rng *rand.Rand, want int) {
	seen := make(map[netx.Addr]bool)
	add := func(base netx.Addr, as *AS) bool {
		if seen[base] {
			return false
		}
		seen[base] = true
		idx := int32(len(p.Active24s))
		p.Active24s = append(p.Active24s, Active24{Base: base, AS: as.Num, Country: as.Country})
		p.activeByCountry[as.Country] = append(p.activeByCountry[as.Country], idx)
		p.activeByASN[as.Num] = append(p.activeByASN[as.Num], idx)
		return true
	}
	// Guaranteed floor per AS (named ASes get a denser floor). Retry on
	// base collisions: a customer AS carved out of a parent block must
	// still end up with at least one active /24 of its own.
	for i := range p.ASes {
		as := &p.ASes[i]
		floor := 1
		if as.Name != "" {
			floor = 8
		}
		for j := 0; j < floor; j++ {
			for tries := 0; tries < 64; tries++ {
				pre := as.Prefixes[rng.Intn(len(as.Prefixes))]
				off := netx.Addr(rng.Int63n(int64(pre.NumAddrs()))) &^ 0xff
				if add(pre.First()+off, as) {
					break
				}
			}
		}
	}
	// Fill the remainder proportional to AS size.
	var cum []uint64
	var totalAddrs uint64
	for i := range p.ASes {
		totalAddrs += p.ASes[i].NumAddrs()
		cum = append(cum, totalAddrs)
	}
	for len(p.Active24s) < want {
		x := uint64(rng.Int63n(int64(totalAddrs)))
		i := sort.Search(len(cum), func(i int) bool { return cum[i] > x })
		as := &p.ASes[i]
		pre := as.Prefixes[rng.Intn(len(as.Prefixes))]
		off := netx.Addr(rng.Int63n(int64(pre.NumAddrs()))) &^ 0xff
		_ = add(pre.First()+off, as)
	}
	sort.Slice(p.Active24s, func(i, j int) bool { return p.Active24s[i].Base < p.Active24s[j].Base })
	// Rebuild indices after sorting.
	p.activeByCountry = make(map[Country][]int32)
	p.activeByASN = make(map[ASN][]int32)
	for i := range p.Active24s {
		a := &p.Active24s[i]
		p.activeByCountry[a.Country] = append(p.activeByCountry[a.Country], int32(i))
		p.activeByASN[a.AS] = append(p.activeByASN[a.AS], int32(i))
	}
}

// CountryOf returns the country an address geolocates to ("ZZ" semantics
// are up to the caller; ok is false outside allocated space).
func (p *Plan) CountryOf(a netx.Addr) (Country, bool) { return p.Geo.Lookup(a) }

// ASOf returns the origin AS for an address by longest prefix match.
func (p *Plan) ASOf(a netx.Addr) (ASN, bool) { return p.Trie.Lookup(a) }

// ASByNum returns the AS record for a number.
func (p *Plan) ASByNum(n ASN) (*AS, bool) {
	i, ok := p.asIndex[n]
	if !ok {
		return nil, false
	}
	return &p.ASes[i], true
}

// ASNByName resolves a named organization ("OVH", "GoDaddy", ...).
func (p *Plan) ASNByName(name string) (ASN, bool) {
	n, ok := p.asByName[name]
	return n, ok
}

// Countries lists the countries present in the plan in allocation order.
func (p *Plan) Countries() []Country { return p.countries }

// NumActive24 returns the number of active /24 blocks.
func (p *Plan) NumActive24() int { return len(p.Active24s) }

// RandomActive24 picks a uniformly random active /24 in the given country.
func (p *Plan) RandomActive24(rng *rand.Rand, cc Country) (Active24, bool) {
	idxs := p.activeByCountry[cc]
	if len(idxs) == 0 {
		return Active24{}, false
	}
	return p.Active24s[idxs[rng.Intn(len(idxs))]], true
}

// RandomActive24InAS picks a uniformly random active /24 in the given AS.
func (p *Plan) RandomActive24InAS(rng *rand.Rand, asn ASN) (Active24, bool) {
	idxs := p.activeByASN[asn]
	if len(idxs) == 0 {
		return Active24{}, false
	}
	return p.Active24s[idxs[rng.Intn(len(idxs))]], true
}

// RandomAddrInAS picks a random address announced by the AS.
func (p *Plan) RandomAddrInAS(rng *rand.Rand, asn ASN) (netx.Addr, bool) {
	as, ok := p.ASByNum(asn)
	if !ok || len(as.Prefixes) == 0 {
		return 0, false
	}
	pre := as.Prefixes[rng.Intn(len(as.Prefixes))]
	return pre.First() + netx.Addr(rng.Int63n(int64(pre.NumAddrs()))), true
}

package ipmeta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doscope/internal/netx"
)

func TestGeoDBLookup(t *testing.T) {
	db, err := NewGeoDB([]GeoRange{
		{netx.MustParseAddr("10.0.0.0"), netx.MustParseAddr("10.0.255.255"), CC("US")},
		{netx.MustParseAddr("10.2.0.0"), netx.MustParseAddr("10.2.0.255"), CC("DE")},
		{netx.MustParseAddr("192.168.0.0"), netx.MustParseAddr("192.168.255.255"), CC("FR")},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.0.0.0", "US", true},
		{"10.0.255.255", "US", true},
		{"10.1.0.0", "", false},
		{"10.2.0.128", "DE", true},
		{"10.2.1.0", "", false},
		{"192.168.77.1", "FR", true},
		{"9.255.255.255", "", false},
		{"255.255.255.255", "", false},
	}
	for _, c := range cases {
		cc, ok := db.Lookup(netx.MustParseAddr(c.addr))
		if ok != c.ok || (ok && cc.String() != c.want) {
			t.Errorf("Lookup(%s) = %v,%v want %v,%v", c.addr, cc, ok, c.want, c.ok)
		}
	}
}

func TestGeoDBRejectsOverlap(t *testing.T) {
	_, err := NewGeoDB([]GeoRange{
		{netx.MustParseAddr("10.0.0.0"), netx.MustParseAddr("10.0.255.255"), CC("US")},
		{netx.MustParseAddr("10.0.128.0"), netx.MustParseAddr("10.1.0.0"), CC("DE")},
	})
	if err == nil {
		t.Fatal("overlapping ranges accepted")
	}
	_, err = NewGeoDB([]GeoRange{
		{netx.MustParseAddr("10.1.0.0"), netx.MustParseAddr("10.0.0.0"), CC("US")},
	})
	if err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestPrefixTrieBasic(t *testing.T) {
	var trie PrefixTrie
	trie.Insert(netx.MustParsePrefix("10.0.0.0/8"), 100)
	trie.Insert(netx.MustParsePrefix("10.1.0.0/16"), 200)
	trie.Insert(netx.MustParsePrefix("10.1.2.0/24"), 300)

	cases := []struct {
		addr string
		want ASN
		ok   bool
	}{
		{"10.0.0.1", 100, true},
		{"10.1.0.1", 200, true},
		{"10.1.2.3", 300, true},
		{"10.255.0.0", 100, true},
		{"11.0.0.0", 0, false},
	}
	for _, c := range cases {
		got, ok := trie.Lookup(netx.MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = %v,%v want %v,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
	if trie.Len() != 3 {
		t.Errorf("Len = %d", trie.Len())
	}
}

func TestPrefixTrieReplace(t *testing.T) {
	var trie PrefixTrie
	p := netx.MustParsePrefix("192.0.2.0/24")
	trie.Insert(p, 1)
	trie.Insert(p, 2)
	if got, _ := trie.Lookup(netx.MustParseAddr("192.0.2.5")); got != 2 {
		t.Errorf("after replace Lookup = %d", got)
	}
	if trie.Len() != 1 {
		t.Errorf("Len = %d after replacing same prefix", trie.Len())
	}
}

func TestPrefixTrieDefaultRoute(t *testing.T) {
	var trie PrefixTrie
	trie.Insert(netx.MustParsePrefix("0.0.0.0/0"), 7)
	if got, ok := trie.Lookup(netx.MustParseAddr("203.0.113.99")); !ok || got != 7 {
		t.Errorf("default route lookup = %v,%v", got, ok)
	}
}

func TestPrefixTrieHostRoute(t *testing.T) {
	var trie PrefixTrie
	trie.Insert(netx.MustParsePrefix("203.0.113.7/32"), 9)
	if got, ok := trie.Lookup(netx.MustParseAddr("203.0.113.7")); !ok || got != 9 {
		t.Errorf("host route lookup = %v,%v", got, ok)
	}
	if _, ok := trie.Lookup(netx.MustParseAddr("203.0.113.8")); ok {
		t.Error("host route matched wrong address")
	}
}

// TestTrieMatchesLinear cross-checks the radix trie against the linear
// reference implementation on random prefix sets.
func TestTrieMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		var trie PrefixTrie
		var lin LinearPfx2AS
		n := 1 + local.Intn(50)
		for i := 0; i < n; i++ {
			bits := local.Intn(33)
			p := netx.PrefixFrom(netx.Addr(local.Uint32()), bits)
			asn := ASN(local.Intn(1000))
			trie.Insert(p, asn)
			lin.Insert(p, asn)
		}
		for i := 0; i < 200; i++ {
			a := netx.Addr(rng.Uint32())
			ta, tok := trie.Lookup(a)
			la, lok := lin.Lookup(a)
			if tok != lok || ta != la {
				t.Logf("mismatch at %v: trie=%v,%v linear=%v,%v", a, ta, tok, la, lok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func testPlan(t testing.TB) *Plan {
	t.Helper()
	p, err := BuildPlan(PlanConfig{Seed: 1, NumSixteens: 512, NumActive24: 2000})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanBasics(t *testing.T) {
	p := testPlan(t)
	if p.NumActive24() < 2000 {
		t.Errorf("NumActive24 = %d, want >= 2000", p.NumActive24())
	}
	if len(p.ASes) < 100 {
		t.Errorf("only %d ASes", len(p.ASes))
	}
	// Every named AS must exist and be reachable by name.
	for _, name := range []string{"OVH", "GoDaddy", "Google Cloud", "Amazon AWS", "China Telecom", "CloudFlare"} {
		asn, ok := p.ASNByName(name)
		if !ok {
			t.Errorf("missing named AS %q", name)
			continue
		}
		as, ok := p.ASByNum(asn)
		if !ok || as.Name != name {
			t.Errorf("ASByNum(%d) = %v, %v", asn, as, ok)
		}
	}
	if asn, _ := p.ASNByName("OVH"); asn != 12276 {
		t.Errorf("OVH ASN = %d, want 12276 (paper §4)", asn)
	}
}

func TestPlanConsistency(t *testing.T) {
	p := testPlan(t)
	rng := rand.New(rand.NewSource(7))
	// Sampled addresses must geolocate to the AS's country and LPM back to
	// an AS (possibly a more-specific customer carved from the block).
	for i := 0; i < 2000; i++ {
		as := &p.ASes[rng.Intn(len(p.ASes))]
		addr, ok := p.RandomAddrInAS(rng, as.Num)
		if !ok {
			t.Fatalf("RandomAddrInAS(%d) failed", as.Num)
		}
		cc, ok := p.CountryOf(addr)
		if !ok || cc != as.Country {
			t.Fatalf("CountryOf(%v) = %v,%v want %v", addr, cc, ok, as.Country)
		}
		if _, ok := p.ASOf(addr); !ok {
			t.Fatalf("ASOf(%v) not found", addr)
		}
	}
}

func TestPlanTelescopeUnallocated(t *testing.T) {
	p := testPlan(t)
	inside := p.Telescope.First() + 12345
	if _, ok := p.CountryOf(inside); ok {
		t.Error("telescope space geolocates")
	}
	if _, ok := p.ASOf(inside); ok {
		t.Error("telescope space has an origin AS")
	}
	for _, a := range p.Active24s {
		if p.Telescope.Contains(a.Base) {
			t.Fatalf("active /24 %v inside telescope", a.Base)
		}
	}
}

func TestPlanActiveSampling(t *testing.T) {
	p := testPlan(t)
	rng := rand.New(rand.NewSource(3))
	blk, ok := p.RandomActive24(rng, CC("US"))
	if !ok {
		t.Fatal("no active /24 in US")
	}
	if cc, _ := p.CountryOf(blk.Base); cc != CC("US") {
		t.Errorf("US active block geolocates to %v", cc)
	}
	if blk.Base&0xff != 0 {
		t.Errorf("active base %v not /24-aligned", blk.Base)
	}
	ovh, _ := p.ASNByName("OVH")
	blk2, ok := p.RandomActive24InAS(rng, ovh)
	if !ok {
		t.Fatal("no active /24 in OVH")
	}
	if asn, _ := p.ASOf(blk2.Base); asn != ovh {
		t.Errorf("OVH active block maps to AS%d", asn)
	}
	if _, ok := p.RandomActive24(rng, CC("XX")); ok {
		t.Error("nonexistent country returned a block")
	}
}

func TestPlanDeterminism(t *testing.T) {
	a := testPlan(t)
	b := testPlan(t)
	if len(a.ASes) != len(b.ASes) || a.NumActive24() != b.NumActive24() {
		t.Fatal("plan not deterministic in sizes")
	}
	for i := range a.Active24s {
		if a.Active24s[i] != b.Active24s[i] {
			t.Fatalf("active block %d differs", i)
		}
	}
}

func TestPlanCountriesCovered(t *testing.T) {
	p := testPlan(t)
	for _, cc := range []string{"US", "CN", "RU", "FR", "DE", "GB", "JP"} {
		if len(p.activeByCountry[CC(cc)]) == 0 {
			t.Errorf("no active blocks in %s", cc)
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	p, err := BuildPlan(PlanConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	addrs := make([]netx.Addr, 1024)
	for i := range addrs {
		as := &p.ASes[rng.Intn(len(p.ASes))]
		addrs[i], _ = p.RandomAddrInAS(rng, as.Num)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Trie.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkGeoLookup(b *testing.B) {
	p, err := BuildPlan(PlanConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	addrs := make([]netx.Addr, 1024)
	for i := range addrs {
		as := &p.ASes[rng.Intn(len(p.ASes))]
		addrs[i], _ = p.RandomAddrInAS(rng, as.Num)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Geo.Lookup(addrs[i%len(addrs)])
	}
}

func TestEveryASHasActiveBlock(t *testing.T) {
	// Customer ASes carved out of parent blocks must still receive their
	// guaranteed active /24 (regression: base collisions used to leave
	// them empty, breaking downstream IP allocation).
	for seed := int64(0); seed < 20; seed++ {
		p, err := BuildPlan(PlanConfig{Seed: seed, NumActive24: 1300})
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.ASes {
			if len(p.activeByASN[p.ASes[i].Num]) == 0 {
				t.Fatalf("seed %d: AS%d has no active /24", seed, p.ASes[i].Num)
			}
		}
	}
}

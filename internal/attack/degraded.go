package attack

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
)

// ErrBackendSkipped marks a backend error that means the backend was
// never tried at all — the wire client refused the request up front
// (federation's circuit breaker wraps this when a site's breaker is
// open). Degraded-mode terminals classify such backends as
// BackendSkipped rather than BackendFailed, so a consumer can tell "the
// site is known-dead and cost nothing" from "the site was tried and
// broke mid-request".
var ErrBackendSkipped = errors.New("backend skipped")

// BackendState classifies one backend's outcome in a degraded-mode
// federated terminal.
type BackendState uint8

const (
	// BackendOK: the backend answered and its partial is merged into
	// the result.
	BackendOK BackendState = iota
	// BackendFailed: the backend was tried and errored (or outlived the
	// query's context budget); its partial is excluded.
	BackendFailed
	// BackendSkipped: the backend was not tried — its error wraps
	// ErrBackendSkipped, e.g. an open circuit breaker.
	BackendSkipped
)

// String returns the JSON-friendly state name.
func (s BackendState) String() string {
	switch s {
	case BackendOK:
		return "ok"
	case BackendFailed:
		return "failed"
	case BackendSkipped:
		return "skipped"
	}
	return fmt.Sprintf("BackendState(%d)", uint8(s))
}

// BackendStatus is one backend's outcome in a degraded-mode terminal,
// in backend argument order (Backend is the index into the FedQuery's
// backend set).
type BackendStatus struct {
	Backend int
	State   BackendState
	Err     error // nil when State is BackendOK
}

// Degraded reports whether any backend failed or was skipped — whether
// the merged result is a partial answer rather than the full federated
// one.
func Degraded(statuses []BackendStatus) bool {
	for _, s := range statuses {
		if s.State != BackendOK {
			return true
		}
	}
	return false
}

// QueryableContext is the optional context-aware face of Queryable.
// Backends whose requests cross a process boundary implement it so a
// caller-supplied deadline bounds the whole request — connection
// deadlines, retry sleeps and all — not just the fan-out wait
// (federation.RemoteStore does). Local stores answer in-process and
// need no cancellation; fanOut falls back to the plain methods for
// backends that do not implement this.
type QueryableContext interface {
	PlanCountContext(ctx context.Context, p Plan) (int, error)
	PlanCountByVectorContext(ctx context.Context, p Plan) ([NumVectors]int, error)
	PlanCountByDayContext(ctx context.Context, p Plan) ([]int, error)
	PlanStoreContext(ctx context.Context, p Plan) (*Store, io.Closer, error)
}

// Context bounds the whole federated fan-out by ctx: every backend leg
// observes its deadline (context-aware backends abort in-flight wire
// requests and retry sleeps; others are abandoned when the deadline
// passes, their slot reported failed with the context error). The
// default is context.Background() — no bound beyond each backend's own
// transport timeouts.
func (f *FedQuery) Context(ctx context.Context) *FedQuery {
	f.ctx = ctx
	return f
}

// statusFor classifies one backend outcome.
func statusFor(i int, err error) BackendStatus {
	switch {
	case err == nil:
		return BackendStatus{Backend: i}
	case errors.Is(err, ErrBackendSkipped):
		return BackendStatus{Backend: i, State: BackendSkipped, Err: err}
	default:
		return BackendStatus{Backend: i, State: BackendFailed, Err: err}
	}
}

// fanOutStatus executes exec against every backend concurrently and
// returns the partials and per-backend statuses in backend argument
// order. It never fails as a whole: each backend's outcome lands in its
// own status slot, and both strict and degraded terminals are built on
// top of this one primitive.
//
// When the query's context expires, backends that have not answered are
// abandoned: their slot reports BackendFailed with the context error,
// and their late result (still being produced by a leaked goroutine) is
// handed to discard — Stores uses that to close the closer of a partial
// that arrived after the budget. Results travel over per-backend
// buffered channels, never shared slices, so an abandoned goroutine's
// late write cannot race the caller.
func fanOutStatus[T any](f *FedQuery, exec func(ctx context.Context, b Queryable) (T, error), discard func(T)) ([]T, []BackendStatus) {
	ctx := f.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	type result struct {
		v   T
		err error
	}
	chans := make([]chan result, len(f.backends))
	for i, b := range f.backends {
		chans[i] = make(chan result, 1)
		go func(ch chan result, b Queryable) {
			v, err := exec(ctx, b)
			ch <- result{v, err}
		}(chans[i], b)
	}
	partials := make([]T, len(f.backends))
	statuses := make([]BackendStatus, len(f.backends))
	expired := false
	for i := range chans {
		if !expired {
			select {
			case r := <-chans[i]:
				partials[i], statuses[i] = r.v, statusFor(i, r.err)
				continue
			case <-ctx.Done():
				expired = true
			}
		}
		// Past the deadline: drain without waiting; a backend that has
		// not answered is abandoned and its slot fails with ctx.Err().
		select {
		case r := <-chans[i]:
			partials[i], statuses[i] = r.v, statusFor(i, r.err)
		default:
			statuses[i] = BackendStatus{Backend: i, State: BackendFailed, Err: ctx.Err()}
			go func(ch chan result) {
				if r := <-ch; r.err == nil && discard != nil {
					discard(r.v)
				}
			}(chans[i])
		}
	}
	return partials, statuses
}

// joinStatusErrs joins every backend error in backend order — the
// strict terminals' error shape.
func joinStatusErrs(statuses []BackendStatus) error {
	errs := make([]error, len(statuses))
	for i, s := range statuses {
		errs[i] = s.Err
	}
	return errors.Join(errs...)
}

// allFailed returns a joined error when not one backend answered —
// the only condition under which a degraded-mode terminal fails.
func allFailed(statuses []BackendStatus) error {
	for _, s := range statuses {
		if s.State == BackendOK {
			return nil
		}
	}
	if len(statuses) == 0 {
		return nil
	}
	return fmt.Errorf("federated query: all %d backends failed: %w", len(statuses), joinStatusErrs(statuses))
}

// The exec closures dispatch one plan terminal to one backend,
// preferring the context-aware face when the backend has one.

func execCount(p Plan) func(context.Context, Queryable) (int, error) {
	return func(ctx context.Context, b Queryable) (int, error) {
		if qc, ok := b.(QueryableContext); ok {
			return qc.PlanCountContext(ctx, p)
		}
		return b.PlanCount(p)
	}
}

func execCountByVector(p Plan) func(context.Context, Queryable) ([NumVectors]int, error) {
	return func(ctx context.Context, b Queryable) ([NumVectors]int, error) {
		if qc, ok := b.(QueryableContext); ok {
			return qc.PlanCountByVectorContext(ctx, p)
		}
		return b.PlanCountByVector(p)
	}
}

func execCountByDay(p Plan) func(context.Context, Queryable) ([]int, error) {
	return func(ctx context.Context, b Queryable) ([]int, error) {
		if qc, ok := b.(QueryableContext); ok {
			return qc.PlanCountByDayContext(ctx, p)
		}
		return b.PlanCountByDay(p)
	}
}

// storePart carries one backend's PlanStore result through the fan-out.
type storePart struct {
	st *Store
	c  io.Closer
}

// discardStorePart releases a partial that arrived after the query's
// deadline — nobody will iterate it.
func discardStorePart(p storePart) {
	if p.c != nil {
		p.c.Close()
	}
}

func execStore(p Plan) func(context.Context, Queryable) (storePart, error) {
	return func(ctx context.Context, b Queryable) (storePart, error) {
		if qc, ok := b.(QueryableContext); ok {
			st, c, err := qc.PlanStoreContext(ctx, p)
			return storePart{st, c}, err
		}
		st, c, err := b.PlanStore(p)
		return storePart{st, c}, err
	}
}

// CountPartial is the degraded-results Count: it merges the healthy
// backends' partials and reports every backend's outcome alongside,
// instead of discarding the healthy work because one site is down. The
// error is non-nil only when no backend answered at all. The strict
// all-or-nothing behavior remains on Count.
func (f *FedQuery) CountPartial() (int, []BackendStatus, error) {
	partials, statuses := fanOutStatus(f, execCount(f.plan), nil)
	if err := allFailed(statuses); err != nil {
		return 0, statuses, err
	}
	n := 0
	for i, p := range partials {
		if statuses[i].State == BackendOK {
			n += p
		}
	}
	return n, statuses, nil
}

// CountByVectorPartial is the degraded-results CountByVector; see
// CountPartial for the contract.
func (f *FedQuery) CountByVectorPartial() ([NumVectors]int, []BackendStatus, error) {
	var out [NumVectors]int
	partials, statuses := fanOutStatus(f, execCountByVector(f.plan), nil)
	if err := allFailed(statuses); err != nil {
		return out, statuses, err
	}
	for i, p := range partials {
		if statuses[i].State != BackendOK {
			continue
		}
		for v := range p {
			out[v] += p[v]
		}
	}
	return out, statuses, nil
}

// CountByDayPartial is the degraded-results CountByDay; see
// CountPartial for the contract.
func (f *FedQuery) CountByDayPartial() ([]int, []BackendStatus, error) {
	partials, statuses := fanOutStatus(f, execCountByDay(f.plan), nil)
	if err := allFailed(statuses); err != nil {
		return nil, statuses, err
	}
	out := make([]int, WindowDays)
	for i, p := range partials {
		if statuses[i].State != BackendOK {
			continue
		}
		for d, n := range p {
			out[d] += n
		}
	}
	return out, statuses, nil
}

// StoresPartial is the degraded-results Stores: the healthy backends'
// store partials (in backend order, failed slots absent) plus every
// backend's outcome. The closer releases the healthy partials and must
// outlive them; it is non-nil whenever the error is nil.
func (f *FedQuery) StoresPartial() ([]*Store, []BackendStatus, io.Closer, error) {
	partials, statuses := fanOutStatus(f, execStore(f.plan), discardStorePart)
	closers := make(multiCloser, 0, len(partials))
	stores := make([]*Store, 0, len(partials))
	for i, p := range partials {
		if statuses[i].State != BackendOK {
			continue
		}
		if p.st != nil {
			stores = append(stores, p.st)
		}
		if p.c != nil {
			closers = append(closers, p.c)
		}
	}
	if err := allFailed(statuses); err != nil {
		closers.Close()
		return nil, statuses, nil, err
	}
	return stores, statuses, closers, nil
}

// IterPartial is the degraded-results Iter: events from the healthy
// backends only, statuses alongside. Close the closer only after
// iteration.
func (f *FedQuery) IterPartial() (iter.Seq[*Event], []BackendStatus, io.Closer, error) {
	stores, statuses, c, err := f.StoresPartial()
	if err != nil {
		return nil, statuses, nil, err
	}
	return f.plan.Query(stores...).Iter(), statuses, c, nil
}

// IterByStartPartial is the degraded-results IterByStart: the healthy
// backends' events merged by start time, statuses alongside.
func (f *FedQuery) IterByStartPartial() (iter.Seq[*Event], []BackendStatus, io.Closer, error) {
	stores, statuses, c, err := f.StoresPartial()
	if err != nil {
		return nil, statuses, nil, err
	}
	return f.plan.Query(stores...).IterByStart(), statuses, c, nil
}

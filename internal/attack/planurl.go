package attack

import (
	"encoding/base64"
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"doscope/internal/netx"
)

// This file maps plans to and from their two user-facing text forms: a
// base64 string of the 20-byte wire encoding (what doscope -plan prints
// and the HTTP API's plan= parameter carries, for parity with DOSFED01),
// and a set of human-readable URL query parameters (source=, vectors=,
// days=, prefix=). Both directions validate through the same domain
// checks as DecodePlan, so a URL can never compile into a query the
// wire protocol would reject.

// EncodeString returns the plan as unpadded URL-safe base64 of its
// 20-byte wire encoding — safe to paste into a query string or ship as
// the plan= parameter.
func (p Plan) EncodeString() string {
	return base64.RawURLEncoding.EncodeToString(p.AppendBinary(nil))
}

// DecodePlanString inverts EncodeString, applying DecodePlan's full
// domain validation.
func DecodePlanString(s string) (Plan, error) {
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return Plan{}, fmt.Errorf("attack: plan base64: %v", err)
	}
	return DecodePlan(b)
}

// Plan URL parameter names. PlanFromValues reads exactly these keys and
// ignores everything else, so endpoint-specific parameters (limit,
// cursor, ...) can share the query string.
const (
	ParamPlan    = "plan"    // base64 20-byte plan (exclusive with the rest)
	ParamSource  = "source"  // "telescope" or "honeypot"
	ParamVectors = "vectors" // comma-separated vector names
	ParamDays    = "days"    // "lo..hi" (or "lo-hi" for in-window ranges)
	ParamPrefix  = "prefix"  // CIDR, e.g. "198.51.100.0/24"
)

// Values renders the plan as its canonical URL query parameters — the
// inverse of PlanFromValues. The zero-filter plan renders as no
// parameters at all.
func (p Plan) Values() url.Values {
	v := url.Values{}
	if p.Source >= 0 {
		v.Set(ParamSource, Source(p.Source).String())
	}
	if p.VecMask != 0 {
		var names []string
		for vec := 0; vec < 32; vec++ {
			if p.VecMask&(1<<vec) != 0 {
				names = append(names, Vector(vec).String())
			}
		}
		v.Set(ParamVectors, strings.Join(names, ","))
	}
	if p.HasDays {
		v.Set(ParamDays, fmt.Sprintf("%d..%d", p.DayLo, p.DayHi))
	}
	if p.HasPrefix {
		v.Set(ParamPrefix, fmt.Sprintf("%s/%d", p.Prefix, p.PrefixBits))
	}
	return v
}

// ParseSource inverts Source.String.
func ParseSource(s string) (Source, error) {
	for src := Source(0); int(src) < NumSources; src++ {
		if src.String() == s {
			return src, nil
		}
	}
	return 0, fmt.Errorf("attack: unknown source %q", s)
}

// parseDayRange parses "lo..hi" (any int32 bounds, negatives included)
// or "lo-hi" / "d" shorthand for non-negative in-window ranges.
func parseDayRange(s string) (lo, hi int32, err error) {
	var loStr, hiStr string
	if l, h, ok := strings.Cut(s, ".."); ok {
		loStr, hiStr = l, h
	} else if l, h, ok := strings.Cut(s, "-"); ok && l != "" {
		// "lo-hi" only for non-negative bounds; a leading '-' would make
		// the split ambiguous, which is what ".." exists for.
		loStr, hiStr = l, h
	} else {
		loStr, hiStr = s, s
	}
	l64, err := strconv.ParseInt(strings.TrimSpace(loStr), 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("attack: days %q: bad lower bound", s)
	}
	h64, err := strconv.ParseInt(strings.TrimSpace(hiStr), 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("attack: days %q: bad upper bound", s)
	}
	return int32(l64), int32(h64), nil
}

// PlanFromValues compiles URL query parameters into a plan. Either the
// plan= parameter carries a complete base64 plan (and no filter
// parameter may accompany it), or the filter parameters compose exactly
// like the Query builder methods. Keys outside the Param* set are
// ignored. Every field passes the same domain validation as DecodePlan.
func PlanFromValues(v url.Values) (Plan, error) {
	if s := v.Get(ParamPlan); s != "" {
		for _, k := range []string{ParamSource, ParamVectors, ParamDays, ParamPrefix} {
			if v.Get(k) != "" {
				return Plan{}, fmt.Errorf("attack: plan= cannot be combined with %s=", k)
			}
		}
		return DecodePlanString(s)
	}
	p := PlanAll()
	if s := v.Get(ParamSource); s != "" {
		src, err := ParseSource(s)
		if err != nil {
			return Plan{}, err
		}
		p.Source = int8(src)
	}
	if s := v.Get(ParamVectors); s != "" {
		for _, name := range strings.Split(s, ",") {
			vec, err := ParseVector(strings.TrimSpace(name))
			if err != nil {
				return Plan{}, err
			}
			p.VecMask |= 1 << vec
		}
	}
	if s := v.Get(ParamDays); s != "" {
		lo, hi, err := parseDayRange(s)
		if err != nil {
			return Plan{}, err
		}
		p.HasDays, p.DayLo, p.DayHi = true, lo, hi
	}
	if s := v.Get(ParamPrefix); s != "" {
		pfx, err := netx.ParsePrefix(s)
		if err != nil {
			return Plan{}, err
		}
		p.HasPrefix, p.PrefixBits, p.Prefix = true, uint8(pfx.Bits()), pfx.Addr()
	}
	// Round-trip through the wire encoding: a URL must not compose a
	// plan the binary form would reject (and cannot — every parameter
	// above is already domain-checked — but the en/decode keeps the two
	// text forms verifiably equivalent).
	return DecodePlan(p.AppendBinary(nil))
}

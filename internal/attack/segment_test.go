package attack

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"doscope/internal/netx"
)

// segmentBytes encodes a store as a DOSEVT02 image.
func segmentBytes(t testing.TB, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSegment(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := NewStore(randomEvents(rng, 3000))
	got, err := OpenSegment(segmentBytes(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), s.Len())
	}
	if !reflect.DeepEqual(got.Events(), s.Events()) {
		t.Fatal("segment round trip changed the event sequence")
	}
	if got.Query().Count() != s.Query().Count() {
		t.Fatal("count mismatch after round trip")
	}
}

func TestSegmentRoundTripEmpty(t *testing.T) {
	got, err := OpenSegment(segmentBytes(t, &Store{}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || len(got.Events()) != 0 {
		t.Fatalf("empty store round trip yielded %d events", got.Len())
	}
}

// TestSegmentCrossCodec drives events DOSEVT01 -> store -> DOSEVT02 ->
// store -> DOSEVT01; every leg must preserve the sorted event sequence.
func TestSegmentCrossCodec(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(randomEvents(rng, int(n)%512))
		want := s.Events()

		var v1 bytes.Buffer
		if err := s.WriteBinary(&v1); err != nil {
			return false
		}
		from01, err := ReadBinary(&v1)
		if err != nil {
			return false
		}
		from02, err := OpenSegment(segmentBytes(t, from01))
		if err != nil {
			return false
		}
		var v1again bytes.Buffer
		if err := from02.WriteBinary(&v1again); err != nil {
			return false
		}
		back, err := ReadBinary(&v1again)
		if err != nil {
			return false
		}
		if len(want) == 0 {
			return back.Len() == 0
		}
		return reflect.DeepEqual(from02.Events(), want) &&
			reflect.DeepEqual(back.Events(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentStoreQueryOracle runs the full query-case matrix against a
// segment-backed store: the mmap-shaped columns must answer every
// terminal exactly like the heap store the segment was written from.
func TestSegmentStoreQueryOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	heap := NewStore(randomEvents(rng, 4000))
	seg, err := OpenSegment(segmentBytes(t, heap))
	if err != nil {
		t.Fatal(err)
	}
	evs := append([]Event(nil), heap.Events()...)
	for _, tc := range queryCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := oracleFilter(evs, tc.oracle)
			if got := tc.build(seg.Query()).Events(); !reflect.DeepEqual(got, want) {
				t.Fatalf("Events: got %d, want %d", len(got), len(want))
			}
			if got := tc.build(seg.Query()).Count(); got != len(want) {
				t.Errorf("Count = %d, want %d", got, len(want))
			}
			var wantVec [NumVectors]int
			for i := range want {
				wantVec[want[i].Vector]++
			}
			if got := tc.build(seg.Query()).CountByVector(); got != wantVec {
				t.Errorf("CountByVector = %v, want %v", got, wantVec)
			}
		})
	}
}

// TestSegmentFile exercises the mmap path end to end, including Add on a
// frozen (segment-backed) store, which must copy the shard out of the
// mapping rather than write through it.
func TestSegmentFile(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := NewStore(randomEvents(rng, 1500))
	path := filepath.Join(t.TempDir(), "events.seg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSegment(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, closer, err := OpenSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if !reflect.DeepEqual(got.Events(), s.Events()) {
		t.Fatal("mmap'd store does not match the written store")
	}

	// Live ingest into the mapped store: copy-on-write, then re-query.
	ev := Event{
		Source: SourceHoneypot, Vector: VectorNTP,
		Target: netx.MustParseAddr("192.0.2.200"),
		Start:  WindowStart + 123, End: WindowStart + 456,
	}
	before := got.Query().Target(ev.Target).Count()
	got.Add(ev)
	if n := got.Query().Target(ev.Target).Count(); n != before+1 {
		t.Fatalf("count after Add = %d, want %d", n, before+1)
	}
	if got.Len() != s.Len()+1 {
		t.Fatalf("Len after Add = %d", got.Len())
	}

	// The backing file must be untouched by the mutation.
	reread, closer2, err := OpenSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer2.Close()
	if reread.Len() != s.Len() {
		t.Fatal("Add wrote through to the segment file")
	}
}

func TestOpenEventsFileBothCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := NewStore(randomEvents(rng, 800))
	dir := t.TempDir()

	segPath := filepath.Join(dir, "events.seg")
	if err := os.WriteFile(segPath, segmentBytes(t, s), 0o644); err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := s.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "events.bin")
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{segPath, binPath} {
		got, closer, err := OpenEventsFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !reflect.DeepEqual(got.Events(), s.Events()) {
			t.Fatalf("%s: event mismatch", path)
		}
		closer.Close()
	}

	badPath := filepath.Join(dir, "events.bad")
	if err := os.WriteFile(badPath, []byte("NOTMAGIC plus some trailing junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenEventsFile(badPath); err == nil {
		t.Error("unknown magic accepted")
	}
}

// TestSegmentRejectsCorrupt hand-corrupts a valid image in the ways the
// reader must detect: truncation anywhere, trailer damage, geometry and
// offset lies.
func TestSegmentRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	raw := segmentBytes(t, NewStore(randomEvents(rng, 500)))

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		b := mutate(append([]byte(nil), raw...))
		if _, err := OpenSegment(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	corrupt("empty", func(b []byte) []byte { return nil })
	corrupt("short", func(b []byte) []byte { return b[:20] })
	corrupt("truncated trailer", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("truncated footer", func(b []byte) []byte {
		// Drop one footer entry and pretend nothing happened.
		return append(b[:len(b)-segTrailerLen-segFooterEntry], b[len(b)-segTrailerLen:]...)
	})
	corrupt("bad leading magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	corrupt("bad trailer magic", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	corrupt("bad shard count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[len(b)-24:], numShards+1)
		return b
	})
	corrupt("bad total rows", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[len(b)-16:], 999999)
		return b
	})
	corrupt("footer offset beyond file", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[len(b)-32:], uint64(len(b)))
		return b
	})
	corrupt("block offset beyond footer", func(b []byte) []byte {
		footerOff := binary.LittleEndian.Uint64(b[len(b)-32:])
		// First non-empty shard's block offset.
		for si := uint64(0); si < numShards; si++ {
			m := b[footerOff+si*segFooterEntry:]
			if binary.LittleEndian.Uint64(m[8:16]) > 0 {
				binary.LittleEndian.PutUint64(m[0:8], footerOff)
				break
			}
		}
		return b
	})

	if _, err := OpenSegment(raw); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
}

// TestSegmentCorruptPortRefs checks the defensive arena bounds: port
// references pointing outside the arena must come back as empty port
// lists, never a panic.
func TestSegmentCorruptPortRefs(t *testing.T) {
	s := NewStore(sampleEvents())
	raw := segmentBytes(t, s)
	// Find the first non-empty shard and poison its port_off column.
	footerOff := binary.LittleEndian.Uint64(raw[len(raw)-32:])
	for si := uint64(0); si < numShards; si++ {
		m := raw[footerOff+si*segFooterEntry:]
		off := binary.LittleEndian.Uint64(m[0:8])
		rows := binary.LittleEndian.Uint64(m[8:16])
		if rows == 0 {
			continue
		}
		binary.LittleEndian.PutUint32(raw[off+52*rows:], 1<<30)
		break
	}
	got, err := OpenSegment(raw)
	if err != nil {
		t.Fatal(err)
	}
	for e := range got.Query().Iter() {
		_ = e.Ports // must not panic
	}
}

// FuzzOpenSegment feeds arbitrary bytes to the segment reader: it must
// either error out or produce a store that can be fully iterated,
// never panic.
func FuzzOpenSegment(f *testing.F) {
	rng := rand.New(rand.NewSource(53))
	valid := segmentBytes(f, NewStore(randomEvents(rng, 200)))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	empty := segmentBytes(f, &Store{})
	f.Add(empty)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := OpenSegment(data)
		if err != nil {
			return
		}
		n := 0
		for e := range s.Query().Iter() {
			_ = e.Ports
			n++
		}
		if n != s.Len() {
			t.Fatalf("iterated %d events, Len says %d", n, s.Len())
		}
		s.Query().CountByVector()
	})
}

// TestIterScratchContract documents the scratch-Event iteration contract:
// Iter yields the same scratch pointer every time, while GroupByTarget
// hands out stable private copies.
func TestIterScratchContract(t *testing.T) {
	s := NewStore(sampleEvents())
	var first *Event
	for e := range s.Query().Iter() {
		if first == nil {
			first = e
		} else if e != first {
			t.Fatal("Iter yielded a new pointer; expected the per-iteration scratch")
		}
	}

	seen := make(map[*Event]bool)
	for _, evs := range s.Query().GroupByTarget() {
		for _, e := range evs {
			if seen[e] {
				t.Fatal("GroupByTarget returned aliased pointers")
			}
			seen[e] = true
		}
	}
	if len(seen) != s.Len() {
		t.Fatalf("GroupByTarget covered %d events, want %d", len(seen), s.Len())
	}
}

// TestSegmentRejectsOverflowingBlockOffset covers the uint64-wraparound
// corner: a footer block offset near the top of the address space must
// be rejected by the bounds check, not wrap past it into a slice panic.
func TestSegmentRejectsOverflowingBlockOffset(t *testing.T) {
	raw := segmentBytes(t, NewStore(sampleEvents()))
	footerOff := binary.LittleEndian.Uint64(raw[len(raw)-32:])
	for si := uint64(0); si < numShards; si++ {
		m := raw[footerOff+si*segFooterEntry:]
		if binary.LittleEndian.Uint64(m[8:16]) > 0 {
			binary.LittleEndian.PutUint64(m[0:8], ^uint64(0)&^7) // 8-aligned, near max
			break
		}
	}
	if _, err := OpenSegment(raw); err == nil {
		t.Fatal("wrapping block offset accepted")
	}
}

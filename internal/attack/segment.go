package attack

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"

	"doscope/internal/netx"
)

// DOSEVT02 is the column-oriented segment format for bulk captures. It
// serializes the store's columnar shard layout verbatim — per-shard
// column blocks plus a footer of offsets — so a reader can serve a Store
// directly from an mmap'd file: open cost is O(1) in the event count, and
// pages fault in only as queries touch their columns.
//
// Layout (all integers little-endian):
//
//	[0, 8)   magic "DOSEVT02"
//	then, for each non-empty shard, one 8-byte-aligned block of column
//	data at a fixed stride from the row count r and arena length a:
//
//	    start    [r]int64      offset 0
//	    end      [r]int64      offset 8r
//	    packets  [r]uint64     offset 16r
//	    bytes    [r]uint64     offset 24r
//	    max_pps  [r]uint64     offset 32r   (IEEE-754 bits)
//	    avg_rps  [r]uint64     offset 40r
//	    target   [r]uint32     offset 48r
//	    port_off [r]uint32     offset 52r
//	    key      [r]uint16     offset 56r   (Source<<8 | Vector)
//	    port_len [r]uint16     offset 58r
//	    arena    [a]uint16     offset 60r
//	    zero padding to the next multiple of 8
//
//	footer: numShards records of {block_off, rows, arena_len} uint64
//	trailer (32 bytes): {footer_off, shard_count, total_rows} uint64,
//	then the magic again
//
// Column order puts the 8-byte columns first, then 4-, then 2-byte ones,
// so every column begins at a multiple of its element size and the
// mmap'd bytes can be reinterpreted in place on little-endian hosts.
// Empty shards store {0, 0, 0} footer records and no block. Rows within
// a block are in (start, target) order, the shard's sort invariant.
//
// Versioning: DOSEVT01 (WriteBinary/ReadBinary) is the record-oriented
// stream codec; DOSEVT02 additionally fixes the shard geometry — a
// segment written under a different shardDays/WindowDays would carry a
// different shard count and is rejected rather than misread.
const segMagic = "DOSEVT02"

const (
	segTrailerLen  = 32
	segFooterEntry = 24
	// maxArena bounds the per-shard port arena length accepted from a
	// footer (2 GiB of ports); real arenas are ≤ MaxTrackedPorts*rows.
	maxArena = 1 << 30
)

// segBlockSize returns the unpadded and padded byte size of a shard
// block with r rows and an a-entry arena.
func segBlockSize(r, a uint64) (size, padded uint64) {
	size = 60*r + 2*a
	return size, (size + 7) &^ 7
}

// hostLittle reports whether the host is little-endian, the condition
// for serving columns zero-copy from segment bytes.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// --- writer ----------------------------------------------------------

// gatheredShard holds one shard's columns in physical (start, target)
// order, ready to stream into a segment block.
type gatheredShard struct {
	start, end     []int64
	packets, bts   []uint64
	maxPPS, avgRPS []float64
	target         []netx.Addr
	portOff        []uint32
	key, portLen   []uint16
}

// gatherShard resolves a shard snapshot's columns through its merged
// permutation (a no-op for physically sorted shards). Row permutation
// only: arena entries never move, so the (offset, length) port
// references stay valid as written.
func gatherShard(sh *shard) gatheredShard {
	g := gatheredShard{
		start: sh.start, end: sh.end, packets: sh.packets, bts: sh.bytes,
		maxPPS: sh.maxPPS, avgRPS: sh.avgRPS, target: sh.target,
		portOff: sh.portOff, key: sh.key, portLen: sh.portLen,
	}
	if perm := sh.fullOrd(); perm != nil {
		g.start, g.end = gather(sh.start, perm), gather(sh.end, perm)
		g.packets, g.bts = gather(sh.packets, perm), gather(sh.bytes, perm)
		g.maxPPS, g.avgRPS = gather(sh.maxPPS, perm), gather(sh.avgRPS, perm)
		g.target, g.key = gather(sh.target, perm), gather(sh.key, perm)
		g.portOff, g.portLen = gather(sh.portOff, perm), gather(sh.portLen, perm)
	}
	return g
}

// segGatherWindow bounds how many shards' gathered column copies are
// alive at once: the writer fans the gathers of one window over the
// executor pool, streams the window's blocks out sequentially, releases
// them, and moves on — parallel permutation resolution without ever
// buffering more than a window of copied columns.
const segGatherWindow = 8

// WriteSegment writes the store in the DOSEVT02 segment format. It is
// a pure read against the published view — safe under concurrent
// ingest, capturing an atomic snapshot of whole mutations: shards whose
// snapshot is not physically sorted (a live order index, or pending
// tail rows) are gathered through a merged permutation on the way out,
// so blocks always land physically in (start, target) order and reopen
// with no order index at all. Gathers run windowed-parallel; the byte
// stream is written strictly in shard order and is identical for any
// GOMAXPROCS.
func (s *Store) WriteSegment(w io.Writer) error {
	v := s.view()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(segMagic); err != nil {
		return err
	}
	type segMeta struct{ off, rows, arena uint64 }
	metas := make([]segMeta, numShards)
	off := uint64(len(segMagic))
	var pad [8]byte
	var sis []int
	for si := 0; si < numShards && si < len(v.shards); si++ {
		if v.shards[si].rows() > 0 {
			sis = append(sis, si)
		}
	}
	gathered := make([]gatheredShard, len(sis))
	for base := 0; base < len(sis); base += segGatherWindow {
		n := len(sis) - base
		if n > segGatherWindow {
			n = segGatherWindow
		}
		runTasks(0, n, func(ti int) {
			gathered[base+ti] = gatherShard(v.shards[sis[base+ti]])
		})
		for k := base; k < base+n; k++ {
			si := sis[k]
			sh := v.shards[si]
			g := &gathered[k]
			r, a := uint64(sh.rows()), uint64(len(sh.arena))
			metas[si] = segMeta{off, r, a}
			if err := writeCols(bw,
				col[int64]{g.start, putI64}, col[int64]{g.end, putI64},
				col[uint64]{g.packets, putU64}, col[uint64]{g.bts, putU64},
				col[float64]{g.maxPPS, putF64}, col[float64]{g.avgRPS, putF64},
				col[netx.Addr]{g.target, putAddr}, col[uint32]{g.portOff, putU32},
				col[uint16]{g.key, putU16}, col[uint16]{g.portLen, putU16},
				col[uint16]{sh.arena, putU16},
			); err != nil {
				return err
			}
			size, padded := segBlockSize(r, a)
			if padded > size {
				if _, err := bw.Write(pad[:padded-size]); err != nil {
					return err
				}
			}
			off += padded
			gathered[k] = gatheredShard{} // release the window's copies
		}
	}
	var scratch [segFooterEntry]byte
	for _, m := range metas {
		binary.LittleEndian.PutUint64(scratch[0:8], m.off)
		binary.LittleEndian.PutUint64(scratch[8:16], m.rows)
		binary.LittleEndian.PutUint64(scratch[16:24], m.arena)
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(scratch[0:8], off)
	binary.LittleEndian.PutUint64(scratch[8:16], numShards)
	binary.LittleEndian.PutUint64(scratch[16:24], uint64(v.length))
	if _, err := bw.Write(scratch[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(segMagic); err != nil {
		return err
	}
	return bw.Flush()
}

// column is one typed column headed for a segment block, erased to an
// interface so heterogenous columns can share one write loop.
type column interface {
	writeTo(bw *bufio.Writer) error
}

func writeCols(bw *bufio.Writer, cols ...column) error {
	for _, c := range cols {
		if err := c.writeTo(bw); err != nil {
			return err
		}
	}
	return nil
}

// rawBytes reinterprets a column's backing array as bytes (little-endian
// hosts only).
func rawBytes[T any](col []T) []byte {
	if len(col) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&col[0])), len(col)*int(unsafe.Sizeof(col[0])))
}

// col writes one typed column: on little-endian hosts the in-memory
// representation is written directly, otherwise each element is encoded
// with put.
type col[T any] struct {
	v   []T
	put func([]byte, T)
}

func (c col[T]) writeTo(bw *bufio.Writer) error {
	if len(c.v) == 0 {
		return nil
	}
	if hostLittle {
		_, err := bw.Write(rawBytes(c.v))
		return err
	}
	var b [8]byte
	sz := int(unsafe.Sizeof(c.v[0]))
	for _, v := range c.v {
		c.put(b[:], v)
		if _, err := bw.Write(b[:sz]); err != nil {
			return err
		}
	}
	return nil
}

func putI64(b []byte, v int64)      { binary.LittleEndian.PutUint64(b, uint64(v)) }
func putU64(b []byte, v uint64)     { binary.LittleEndian.PutUint64(b, v) }
func putF64(b []byte, v float64)    { binary.LittleEndian.PutUint64(b, floatBits(v)) }
func putU32(b []byte, v uint32)     { binary.LittleEndian.PutUint32(b, v) }
func putU16(b []byte, v uint16)     { binary.LittleEndian.PutUint16(b, v) }
func putAddr(b []byte, v netx.Addr) { binary.LittleEndian.PutUint32(b, uint32(v)) }

// --- reader ----------------------------------------------------------

// segErr wraps a corrupt-segment condition.
func segErr(format string, args ...any) error {
	return fmt.Errorf("attack: segment: "+format, args...)
}

// OpenSegment serves a Store directly from a DOSEVT02 segment image.
// On little-endian hosts the store's columns alias data zero-copy; the
// caller must keep data valid, and unmodified, for as long as the store
// (or any Event view obtained from it) is in use. Opening is O(1) in the
// event count: only the footer is decoded, columns are not touched.
//
// The returned store is fully functional: Add copies the affected shard
// out of the segment memory first (copy-on-write), so a segment-backed
// store can absorb live ingest without corrupting the backing file.
func OpenSegment(data []byte) (*Store, error) {
	if len(data) < len(segMagic)+segTrailerLen {
		return nil, segErr("short file (%d bytes)", len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, segErr("bad magic %q", data[:len(segMagic)])
	}
	tr := data[len(data)-segTrailerLen:]
	footerOff := binary.LittleEndian.Uint64(tr[0:8])
	shardCount := binary.LittleEndian.Uint64(tr[8:16])
	totalRows := binary.LittleEndian.Uint64(tr[16:24])
	if string(tr[24:32]) != segMagic {
		return nil, segErr("truncated or corrupt trailer")
	}
	if shardCount != numShards {
		return nil, segErr("segment has %d shards, this build expects %d (shard geometry mismatch)", shardCount, numShards)
	}
	if totalRows > maxEvents {
		return nil, segErr("implausible event count %d", totalRows)
	}
	footerLen := shardCount * segFooterEntry
	if footerOff < uint64(len(segMagic)) || footerOff+footerLen != uint64(len(data)-segTrailerLen) {
		return nil, segErr("footer offset %d inconsistent with file size %d", footerOff, len(data))
	}
	s := &Store{shards: make([]shard, numShards)}
	var sum uint64
	for si := uint64(0); si < shardCount; si++ {
		m := data[footerOff+si*segFooterEntry:]
		off := binary.LittleEndian.Uint64(m[0:8])
		rows := binary.LittleEndian.Uint64(m[8:16])
		arena := binary.LittleEndian.Uint64(m[16:24])
		if rows == 0 {
			if off != 0 || arena != 0 {
				return nil, segErr("shard %d: empty shard with nonzero block", si)
			}
			continue
		}
		if rows > maxEvents || arena > maxArena {
			return nil, segErr("shard %d: implausible geometry (%d rows, %d arena)", si, rows, arena)
		}
		size, padded := segBlockSize(rows, arena)
		// Subtraction form: off+padded could wrap around uint64 on a
		// crafted footer offset and slip past an additive check.
		if off < uint64(len(segMagic)) || off%8 != 0 || off > footerOff || padded > footerOff-off {
			return nil, segErr("shard %d: block [%d, +%d) out of bounds", si, off, size)
		}
		b := data[off : off+size]
		r, a := int(rows), int(arena)
		sh := &s.shards[si]
		sh.start = openColumn(b[0:], r, getI64)
		sh.end = openColumn(b[8*rows:], r, getI64)
		sh.packets = openColumn(b[16*rows:], r, getU64)
		sh.bytes = openColumn(b[24*rows:], r, getU64)
		sh.maxPPS = openColumn(b[32*rows:], r, getF64)
		sh.avgRPS = openColumn(b[40*rows:], r, getF64)
		sh.target = openColumn(b[48*rows:], r, getAddr)
		sh.portOff = openColumn(b[52*rows:], r, getU32)
		sh.key = openColumn(b[56*rows:], r, getU16)
		sh.portLen = openColumn(b[58*rows:], r, getU16)
		sh.arena = openColumn(b[60*rows:], a, getU16)
		sh.sealed, sh.frozen = r, true
		sum += rows
	}
	if sum != totalRows {
		return nil, segErr("shard rows sum to %d, trailer says %d", sum, totalRows)
	}
	s.length = int(sum)
	// Publish the initial view so the opened store serves lock-free
	// reads like any other; the snapshots alias the segment memory, so
	// the data must stay mapped while the store is in use.
	s.publish()
	return s, nil
}

// openColumn serves n elements from b: zero-copy when the host is
// little-endian and b is element-aligned (always true for mmap'd or
// heap-allocated segment images), decoded into a fresh slice otherwise.
func openColumn[T any](b []byte, n int, get func([]byte) T) []T {
	if n == 0 {
		return nil
	}
	sz := unsafe.Sizeof(*new(T))
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%sz == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)[:n:n]
	}
	out := make([]T, n)
	for i := range out {
		out[i] = get(b[uintptr(i)*sz:])
	}
	return out
}

func getI64(b []byte) int64      { return int64(binary.LittleEndian.Uint64(b)) }
func getU64(b []byte) uint64     { return binary.LittleEndian.Uint64(b) }
func getF64(b []byte) float64    { return floatFromBits(binary.LittleEndian.Uint64(b)) }
func getU32(b []byte) uint32     { return binary.LittleEndian.Uint32(b) }
func getU16(b []byte) uint16     { return binary.LittleEndian.Uint16(b) }
func getAddr(b []byte) netx.Addr { return netx.Addr(binary.LittleEndian.Uint32(b)) }

// --- file opening ----------------------------------------------------

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

var nopCloser = closerFunc(func() error { return nil })

// OpenSegmentFile mmaps a DOSEVT02 segment file and serves a Store from
// the mapping: a multi-GB capture opens in O(1) time and memory, paging
// in only the columns queries actually touch. The returned io.Closer
// unmaps the file; close it only once the store and every Event view
// derived from it are no longer in use. On platforms without mmap the
// file is read into memory instead.
func OpenSegmentFile(path string) (*Store, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	data, unmap, err := mapFile(f, fi.Size())
	if err != nil {
		return nil, nil, fmt.Errorf("attack: mapping %s: %w", path, err)
	}
	s, err := OpenSegment(data)
	if err != nil {
		unmap()
		return nil, nil, fmt.Errorf("attack: %s: %w", path, err)
	}
	return s, closerFunc(unmap), nil
}

// OpenEventsFile opens an event capture in either binary codec, detected
// by magic: DOSEVT02 segments are served from an mmap (O(1) open),
// DOSEVT01 record streams are decoded into a heap store. The returned
// closer must outlive the store (it is a no-op for DOSEVT01).
func OpenEventsFile(path string) (*Store, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("attack: %s: reading magic: %w", path, err)
	}
	switch string(magic[:]) {
	case segMagic:
		f.Close()
		return OpenSegmentFile(path)
	case binMagic:
		defer f.Close()
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, nil, err
		}
		s, err := ReadBinary(f)
		if err != nil {
			return nil, nil, fmt.Errorf("attack: %s: %w", path, err)
		}
		return s, nopCloser, nil
	default:
		f.Close()
		return nil, nil, fmt.Errorf("attack: %s: unknown event file magic %q", path, magic)
	}
}

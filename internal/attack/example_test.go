package attack_test

import (
	"fmt"
	"os"
	"path/filepath"

	"doscope/internal/attack"
	"doscope/internal/netx"
)

// exampleStore builds the small fixed store the examples query: two NTP
// reflection events and one TCP backscatter event in the first window
// days, plus a later DNS event.
func exampleStore() *attack.Store {
	day := func(d int) int64 { return attack.DayStart(d) }
	return attack.NewStore([]attack.Event{
		{Source: attack.SourceHoneypot, Vector: attack.VectorNTP,
			Target: netx.AddrFrom4(203, 0, 113, 5), Start: day(0), End: day(0) + 600, AvgRPS: 120},
		{Source: attack.SourceHoneypot, Vector: attack.VectorNTP,
			Target: netx.AddrFrom4(203, 0, 113, 9), Start: day(2), End: day(2) + 60, AvgRPS: 80},
		{Source: attack.SourceTelescope, Vector: attack.VectorTCP,
			Target: netx.AddrFrom4(198, 51, 100, 7), Start: day(2) + 30, End: day(2) + 90,
			MaxPPS: 400, Ports: []uint16{80}},
		{Source: attack.SourceHoneypot, Vector: attack.VectorDNS,
			Target: netx.AddrFrom4(203, 0, 113, 5), Start: day(40), End: day(40) + 300, AvgRPS: 60},
	})
}

// ExampleQuery chains filters and executes a counting terminal: the
// count is answered from the per-day index without materializing an
// event.
func ExampleQuery() {
	st := exampleStore()
	n := st.Query().
		Source(attack.SourceHoneypot).
		Vectors(attack.VectorNTP).
		Days(0, 30).
		Count()
	fmt.Println("NTP reflection events in the first month:", n)
	// Output:
	// NTP reflection events in the first month: 2
}

// ExampleFold runs the parallel aggregation: one task per day-range
// shard, partials merged deterministically — here a per-day event count
// merged by element-wise addition.
func ExampleFold() {
	st := exampleStore()
	perDay := attack.Fold(st.Query(),
		func() []int { return make([]int, attack.WindowDays) },
		func(acc []int, e *attack.Event) []int {
			if d := e.Day(); d >= 0 && d < attack.WindowDays {
				acc[d]++
			}
			return acc
		},
		func(a, b []int) []int {
			for d, n := range b {
				a[d] += n
			}
			return a
		})
	for d, n := range perDay {
		if n > 0 {
			fmt.Printf("day %d: %d\n", d, n)
		}
	}
	// Output:
	// day 0: 1
	// day 2: 2
	// day 40: 1
}

// ExampleOpenSegmentFile persists a store as a DOSEVT02 segment and
// serves it back from an mmap: opening is O(1) in the event count, and
// the reopened store answers the same queries as the original.
func ExampleOpenSegmentFile() {
	st := exampleStore()
	path := filepath.Join(os.TempDir(), "example.seg")
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := st.WriteSegment(f); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	defer os.Remove(path)

	seg, closer, err := attack.OpenSegmentFile(path)
	if err != nil {
		panic(err)
	}
	defer closer.Close()
	fmt.Println("events:", seg.Len())
	fmt.Println("reflection:", seg.Query().Source(attack.SourceHoneypot).Count())
	// Output:
	// events: 4
	// reflection: 3
}

package attack

import (
	"math/rand"
	"reflect"
	"testing"

	"doscope/internal/netx"
)

// TestPlanRoundTrip compiles every (serializable) query-case filter to a
// Plan, pushes it through the binary codec, and checks the decoded plan
// is identical and executes identically.
func TestPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewStore(randomEvents(rng, 2000))
	for _, tc := range queryCases() {
		if tc.name == "where" {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.build(s.Query()).Plan()
			if err != nil {
				t.Fatalf("Plan: %v", err)
			}
			dec, err := DecodePlan(p.AppendBinary(nil))
			if err != nil {
				t.Fatalf("DecodePlan: %v", err)
			}
			if dec != p {
				t.Fatalf("round trip changed the plan:\n got %+v\nwant %+v", dec, p)
			}
			want := tc.build(s.Query()).Count()
			if got := dec.Query(s).Count(); got != want {
				t.Errorf("decoded plan Count = %d, want %d", got, want)
			}
			if got, want := dec.Query(s).Events(), tc.build(s.Query()).Events(); !reflect.DeepEqual(got, want) {
				t.Errorf("decoded plan Events mismatch: %d vs %d", len(got), len(want))
			}
		})
	}
}

// TestPlanRejectsPredicate: Where predicates are arbitrary Go functions
// and must refuse to compile to a wire plan.
func TestPlanRejectsPredicate(t *testing.T) {
	q := (&Store{}).Query().Where(func(*Event) bool { return true })
	if _, err := q.Plan(); err == nil {
		t.Fatal("Plan() accepted a predicate-filtered query")
	}
}

// TestDecodePlanRejectsCorrupt mirrors the segment reader's posture:
// every out-of-domain field in a received plan is an error, not a
// silently different query.
func TestDecodePlanRejectsCorrupt(t *testing.T) {
	base := func() []byte {
		p := Plan{Source: 1, VecMask: 1 << VectorNTP, HasDays: true, DayLo: 3, DayHi: 9,
			HasPrefix: true, PrefixBits: 24, Prefix: netx.AddrFrom4(203, 0, 113, 0)}
		return p.AppendBinary(nil)
	}
	if _, err := DecodePlan(base()); err != nil {
		t.Fatalf("baseline plan rejected: %v", err)
	}
	cases := []struct {
		name    string
		corrupt func(b []byte) []byte
	}{
		{"short", func(b []byte) []byte { return b[:PlanSize-1] }},
		{"long", func(b []byte) []byte { return append(b, 0) }},
		{"bad-source", func(b []byte) []byte { b[0] = 7; return b }},
		{"unknown-flag", func(b []byte) []byte { b[1] |= 0x80; return b }},
		{"reserved", func(b []byte) []byte { b[3] = 1; return b }},
		{"vecmask-overflow", func(b []byte) []byte { b[7] = 0xff; return b }},
		{"prefix-bits", func(b []byte) []byte { b[2] = 33; return b }},
		{"prefix-unmasked", func(b []byte) []byte { b[2] = 8; return b }},
		{"days-without-flag", func(b []byte) []byte { b[1] &^= planHasDays; return b }},
		{"prefix-without-flag", func(b []byte) []byte { b[1] &^= planHasPrefix; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodePlan(tc.corrupt(base())); err == nil {
				t.Fatal("corrupt plan decoded without error")
			}
		})
	}
}

// TestQueryBackendsLocal checks the federated fan-out against the
// in-process QueryStores path with local stores as the backends — the
// degenerate federation every remote test builds on.
func TestQueryBackendsLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	events := randomEvents(rng, 3000)
	a, b := NewStore(events[:1700]), NewStore(events[1700:])
	combined := NewStore(events)

	for _, tc := range queryCases() {
		if tc.name == "where" {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			plan, err := tc.build(QueryStores(a, b)).Plan()
			if err != nil {
				t.Fatal(err)
			}
			fed := QueryPlan(plan, a, b)

			n, err := fed.Count()
			if err != nil {
				t.Fatal(err)
			}
			if want := tc.build(combined.Query()).Count(); n != want {
				t.Errorf("Count = %d, want %d", n, want)
			}
			perVec, err := fed.CountByVector()
			if err != nil {
				t.Fatal(err)
			}
			if want := tc.build(combined.Query()).CountByVector(); perVec != want {
				t.Errorf("CountByVector = %v, want %v", perVec, want)
			}
			perDay, err := fed.CountByDay()
			if err != nil {
				t.Fatal(err)
			}
			if want := tc.build(combined.Query()).CountByDay(); !reflect.DeepEqual(perDay, want) {
				t.Error("CountByDay mismatch")
			}
			got, err := fed.Events()
			if err != nil {
				t.Fatal(err)
			}
			want := tc.build(QueryStores(a, b)).Events()
			if len(got) == 0 && len(want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Events: %d events, want %d", len(got), len(want))
			}
		})
	}
}

// TestFedQueryBuilderCompilesLikeQuery: the FedQuery builder methods and
// the Query builder must compile to the same plan for the same chain.
func TestFedQueryBuilderCompilesLikeQuery(t *testing.T) {
	prefix := netx.AddrFrom4(203, 1, 2, 3)
	qp, err := (&Store{}).Query().
		Source(SourceHoneypot).Vectors(VectorNTP, VectorDNS).Days(5, 40).TargetPrefix(prefix, 20).Plan()
	if err != nil {
		t.Fatal(err)
	}
	fp := QueryBackends().
		Source(SourceHoneypot).Vectors(VectorNTP, VectorDNS).Days(5, 40).TargetPrefix(prefix, 20).Plan()
	if qp != fp {
		t.Fatalf("builder plans differ:\nQuery    %+v\nFedQuery %+v", qp, fp)
	}
	if qt, ft := (&Store{}).Query().Target(prefix), QueryBackends().Target(prefix); true {
		qtp, _ := qt.Plan()
		if qtp != ft.Plan() {
			t.Fatal("Target plans differ")
		}
	}
}

// TestCollect: the materialized sub-store is independent of its source
// (ports included) and query-equivalent to the filter it captured.
func TestCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := NewStore(randomEvents(rng, 1000))
	sub := src.Query().Source(SourceTelescope).Collect()
	want := src.Query().Source(SourceTelescope).Events()
	if got := sub.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Collect store has %d events, want %d", len(got), len(want))
	}
	// Mutating the source after Collect must not affect the copy.
	src.Add(Event{Source: SourceTelescope, Vector: VectorTCP, Start: WindowStart + 86400,
		Target: netx.AddrFrom4(198, 51, 100, 1), Ports: []uint16{80}})
	if got := sub.Query().Count(); got != len(want) {
		t.Fatalf("Collect store changed after source mutation: %d, want %d", got, len(want))
	}
}

package attack

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"doscope/internal/netx"
)

// sortedOracle returns the events in the store's global (Start, Target)
// order: a stable sort of the arrival sequence, which is exactly what
// sealing preserves.
func sortedOracle(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// checkLiveOracle runs the query-case matrix against a store mid-ingest
// (pending tails and all) and compares every terminal with the naive
// slice oracle.
func checkLiveOracle(t *testing.T, st *Store, oracle []Event, full bool) {
	t.Helper()
	sorted := sortedOracle(oracle)
	for _, tc := range queryCases() {
		want := oracleFilter(sorted, tc.oracle)
		// Counting terminals first: they must answer from the index +
		// pending-tail scan without sealing anything.
		if got := tc.build(st.Query()).Count(); got != len(want) {
			t.Fatalf("%s: Count = %d, want %d (pending %d)", tc.name, got, len(want), st.pendingRows())
		}
		var wantVec [NumVectors]int
		for i := range want {
			wantVec[want[i].Vector]++
		}
		if got := tc.build(st.Query()).CountByVector(); got != wantVec {
			t.Fatalf("%s: CountByVector = %v, want %v", tc.name, got, wantVec)
		}
		wantDay := make([]int, WindowDays)
		for i := range want {
			if d := want[i].Day(); d >= 0 && d < WindowDays {
				wantDay[d]++
			}
		}
		if got := tc.build(st.Query()).CountByDay(); !reflect.DeepEqual(got, wantDay) {
			t.Fatalf("%s: CountByDay mismatch", tc.name)
		}
		if !full {
			continue
		}
		if got := tc.build(st.Query()).Events(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Events: got %d events, want %d (first diff %s)",
				tc.name, len(got), len(want), firstDiff(got, want))
		}
		folded := Fold(tc.build(st.Query()),
			func() int { return 0 },
			func(n int, e *Event) int { return n + 1 },
			func(a, b int) int { return a + b })
		if folded != len(want) {
			t.Fatalf("%s: Fold = %d, want %d", tc.name, folded, len(want))
		}
		got := tc.build(st.Query()).GroupByTarget()
		wantBy := make(map[netx.Addr]int)
		for i := range want {
			wantBy[want[i].Target]++
		}
		if len(got) != len(wantBy) {
			t.Fatalf("%s: GroupByTarget: %d targets, want %d", tc.name, len(got), len(wantBy))
		}
		for addr, evs := range got {
			if len(evs) != wantBy[addr] {
				t.Fatalf("%s: GroupByTarget[%v] = %d events, want %d", tc.name, addr, len(evs), wantBy[addr])
			}
		}
	}
	wantTargets := make(map[netx.Addr]struct{})
	for i := range oracle {
		wantTargets[oracle[i].Target] = struct{}{}
	}
	if got := st.UniqueTargets(); got != len(wantTargets) {
		t.Fatalf("UniqueTargets = %d, want %d", got, len(wantTargets))
	}
}

// assertIndexesMatchRebuild compares the store's delta-maintained
// indexes against a from-scratch rebuild over the same events.
func assertIndexesMatchRebuild(t *testing.T, st *Store, oracle []Event) {
	t.Helper()
	fresh := NewStore(oracle)
	st.Seal()
	fresh.Seal()
	sv, fv := st.view(), fresh.view()
	if got, want := sv.countsFor(), fv.countsFor(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delta-maintained count index diverged from a from-scratch rebuild:\n%+v\nvs\n%+v",
			got.out, want.out)
	}
	// The by-target permutations must each be a valid (target, start,
	// row) sort of exactly the sealed rows...
	for si, p := range sv.tgtFor() {
		sh := sv.shards[si]
		if len(p) != sh.sealed {
			t.Fatalf("shard %d: by-target permutation covers %d rows, sealed %d", si, len(p), sh.sealed)
		}
		for k := 1; k < len(p); k++ {
			if sh.cmpRowsTgt(p[k-1], p[k]) >= 0 {
				t.Fatalf("shard %d: by-target permutation out of order at %d", si, k)
			}
		}
	}
	// ...and resolve every address to the same events a rebuilt store
	// resolves it to.
	addrs := make(map[netx.Addr]struct{})
	for i := range oracle {
		addrs[oracle[i].Target] = struct{}{}
	}
	for addr := range addrs {
		got := st.Query().Target(addr).Events()
		want := fresh.Query().Target(addr).Events()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("by-target index[%v] resolves %d events, rebuild %d", addr, len(got), len(want))
		}
	}
}

// TestLiveIngestOracle is the live-ingest interleaving property test:
// alternating Add and AddBatch with counting, iterating, grouping and
// folding terminals between mutations, against a naive slice oracle —
// including ingest into a segment-backed (frozen) store — and asserting
// at the end that the incrementally maintained indexes match a
// from-scratch rebuild exactly.
func TestLiveIngestOracle(t *testing.T) {
	for _, fromSegment := range []bool{false, true} {
		name := "empty-store"
		if fromSegment {
			name = "segment-backed"
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				var st *Store
				var oracle []Event
				if fromSegment {
					base := randomEvents(rng, 600)
					heap := NewStore(base)
					oracle = heap.Events()
					seg, err := OpenSegment(segmentBytes(t, heap))
					if err != nil {
						t.Fatal(err)
					}
					st = seg
					// Warm the indexes so the rest of the run maintains
					// them purely by deltas.
					st.Query().Count()
					st.Query().Target(oracle[0].Target).Count()
				} else {
					st = &Store{}
				}
				for round := 0; round < 6; round++ {
					if rng.Intn(2) == 0 {
						batch := randomEvents(rng, rng.Intn(200))
						st.AddBatch(batch)
						oracle = append(oracle, batch...)
					} else {
						singles := randomEvents(rng, rng.Intn(120))
						for i := range singles {
							st.Add(singles[i])
						}
						oracle = append(oracle, singles...)
					}
					// Full terminal matrix every other round keeps the
					// test fast while still interleaving seals (Iter,
					// Fold) with pending-tail counting paths.
					checkLiveOracle(t, st, oracle, round%2 == 1)
				}
				assertIndexesMatchRebuild(t, st, oracle)
			}
		})
	}
}

// TestLiveIngestNoRebuilds is the rebuild-counter assertion: the lazy
// indexes are built from scratch at most once per store lifetime — by
// the first reader that needs them — after which the writer adopts them
// and live ingest maintains them purely by seal deltas, with zero
// further rebuilds and zero full re-sorts (the incremental store has no
// full-sort path at all).
func TestLiveIngestNoRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	st := NewStore(randomEvents(rng, 2000))
	st.Seal() // seal everything so the first reads build real indexes

	if n := st.Query().Count(); n != 2000 {
		t.Fatalf("Count = %d", n)
	}
	if got := st.rebuilds.Load(); got != 1 {
		t.Fatalf("first Count built %d indexes, want 1", got)
	}
	target := st.Events()[0].Target
	st.Query().Target(target).Count()
	if got := st.rebuilds.Load(); got != 2 {
		t.Fatalf("target query raised rebuilds to %d, want 2", got)
	}

	// rowRef stability: remember which events the index resolves now.
	tq := st.Query().Target(target)
	var refs []rowRef
	ex := tq.compile(cmRows)
	var exScratch Event
	for ti := range ex.tasks {
		si := ex.tasks[ti].si
		ex.drainTask(ti, true, &exScratch, func(_ *shard, i int) bool {
			refs = append(refs, rowRef{int32(si), int32(i)})
			return true
		})
	}
	wantEvents := make([]Event, len(refs))
	for i, ref := range refs {
		st.view().shards[ref.shard].view(int(ref.row), &wantEvents[i])
	}

	// Live ingest: thousands of Adds force many automatic seals, plus
	// explicit AddBatch seals. The first mutation adopts the
	// reader-built indexes; seal deltas maintain them from then on.
	extra := randomEvents(rng, 3000)
	for i := range extra[:1500] {
		st.Add(extra[i])
	}
	st.AddBatch(extra[1500:])
	st.Seal()

	if st.pendingRows() != 0 {
		t.Fatalf("Seal left %d pending rows", st.pendingRows())
	}
	if n := st.Query().Count(); n != 5000 {
		t.Fatalf("post-seal Count = %d, want 5000", n)
	}
	if got := st.rebuilds.Load(); got != 2 {
		t.Fatalf("live ingest triggered %d from-scratch index rebuilds; deltas should have maintained both indexes", got-2)
	}

	// The pre-ingest references must still resolve to the same events:
	// sealing rewrites order indexes, never rows.
	for i, ref := range refs {
		var got Event
		st.view().shards[ref.shard].view(int(ref.row), &got)
		if !reflect.DeepEqual(got, wantEvents[i]) {
			t.Fatalf("rowRef %d resolved to a different event after live ingest", i)
		}
	}

	// And the delta-maintained per-day counts must agree with a full
	// recount of everything ingested.
	wantDay := make([]int, WindowDays)
	for _, e := range st.Events() {
		if d := e.Day(); d >= 0 && d < WindowDays {
			wantDay[d]++
		}
	}
	if got := st.Query().CountByDay(); !reflect.DeepEqual(got, wantDay) {
		t.Fatal("post-seal CountByDay disagrees with a full recount")
	}
	if got := st.rebuilds.Load(); got != 2 {
		t.Fatalf("query traffic after seal triggered rebuilds (%d)", got-2)
	}
}

// TestStaleLazyBuildIsAdopted: a lazy index built against a view that
// further ingest has already superseded must still be adopted — the
// writer catches it up from the build's sealed watermarks — so a busy
// writer can never starve adoption into rebuild-per-view behavior.
func TestStaleLazyBuildIsAdopted(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	evs := randomEvents(rng, 3000)
	st := NewStore(evs[:1000])
	st.Seal()
	stale := st.view()

	// Ingest moves on before any reader finishes a build: the store
	// publishes new views (with new sealed rows) that carry no lazy
	// results.
	st.AddBatch(evs[1000:2000])
	st.Seal()

	// Now a reader completes its builds against the STALE view.
	stale.countsFor()
	stale.tgtFor()
	if got := st.rebuilds.Load(); got != 2 {
		t.Fatalf("stale-view builds counted %d rebuilds, want 2", got)
	}

	// The next mutation must adopt both builds, delta them up to the
	// current sealed rows, and maintain them from then on.
	st.AddBatch(evs[2000:])
	st.Seal()

	if n := st.Query().Count(); n != 3000 {
		t.Fatalf("post-adoption Count = %d, want 3000", n)
	}
	target := evs[2500].Target
	fresh := NewStore(evs)
	if got, want := st.Query().Target(target).Events(), fresh.Query().Target(target).Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-adoption target query resolves %d events, want %d", len(got), len(want))
	}
	if got, want := st.Query().CountByVector(), fresh.Query().CountByVector(); got != want {
		t.Fatal("post-adoption CountByVector diverged from a from-scratch store")
	}
	if got := st.rebuilds.Load(); got != 2 {
		t.Fatalf("adoption failed: query traffic after ingest rebuilt indexes (%d rebuilds, want 2)", got)
	}
	assertIndexesMatchRebuild(t, st, evs)
}

// TestLazyCatchUpAcrossViews: a view published after a registered
// build (but before any writer adoption) must catch up from that build
// by watermark deltas — correct results, no extra from-scratch rebuild
// — even though its own sealed rows have moved past the build's.
func TestLazyCatchUpAcrossViews(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	evs := randomEvents(rng, 2400)
	st := NewStore(evs[:1200])
	st.Seal()
	v1 := st.view()
	// More ingest publishes newer views; nothing is registered yet, so
	// the writer has nothing to adopt.
	st.AddBatch(evs[1200:])
	st.Seal()
	v2 := st.view()
	if v1 == v2 {
		t.Fatal("ingest did not publish a new view")
	}

	// The old view's builds register first...
	v1.countsFor()
	v1.tgtFor()
	if got := st.rebuilds.Load(); got != 2 {
		t.Fatalf("v1 builds counted %d rebuilds, want 2", got)
	}
	// ...and the newer view extends them instead of rebuilding.
	fresh := NewStore(evs)
	fresh.Seal()
	if got, want := v2.countsFor(), fresh.view().countsFor(); !reflect.DeepEqual(got, want) {
		t.Fatal("caught-up count index diverged from a from-scratch build")
	}
	target := evs[1800].Target
	if got, want := st.Query().Target(target).Events(), fresh.Query().Target(target).Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("caught-up target query resolves %d events, want %d", len(got), len(want))
	}
	if got := st.rebuilds.Load(); got != 2 {
		t.Fatalf("newer view rebuilt instead of catching up (%d rebuilds, want 2)", got)
	}
}

// TestAddBatchMatchesAdds checks that the batch path is observably
// identical to event-at-a-time ingest, and that it seals eagerly.
func TestAddBatchMatchesAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	evs := randomEvents(rng, 700)
	batch := &Store{}
	batch.AddBatch(evs)
	single := &Store{}
	for i := range evs {
		single.Add(evs[i])
	}
	if !reflect.DeepEqual(batch.Events(), single.Events()) {
		t.Fatal("AddBatch and Add produced different stores")
	}
	if batch.Version() != uint64(len(evs)) {
		t.Fatalf("Version after AddBatch = %d, want %d", batch.Version(), len(evs))
	}
	fresh := &Store{}
	fresh.AddBatch(evs)
	for si := range fresh.shards {
		if tl := fresh.shards[si].tail(); tl >= sealTailMax {
			t.Fatalf("shard %d kept a %d-row tail after AddBatch; threshold is %d", si, tl, sealTailMax)
		}
	}
	fresh.AddBatch(nil)
	if fresh.Version() != uint64(len(evs)) {
		t.Fatal("empty AddBatch bumped the version")
	}
}

// TestEventsDefensiveCopy: the deprecated shim must hand out a private
// slice — mutating it cannot corrupt later reads.
func TestEventsDefensiveCopy(t *testing.T) {
	s := NewStore(sampleEvents())
	evs := s.Events()
	want := append([]Event(nil), evs...)
	for i := range evs {
		evs[i] = Event{Target: netx.MustParseAddr("255.255.255.255")}
	}
	if !reflect.DeepEqual(s.Events(), want) {
		t.Fatal("mutating the Events() result corrupted the store's later reads")
	}
}

// TestBinaryPortClamp: DOSEVT01 stores the port count in one byte, so
// WriteBinary must clamp >255-port lists at the format limit instead of
// wrapping mod 256 and desynchronizing the stream. DOSEVT02 and CSV
// have no such limit and round-trip the full list.
func TestBinaryPortClamp(t *testing.T) {
	big := Event{
		Source: SourceTelescope, Vector: VectorTCP,
		Target: netx.MustParseAddr("203.0.113.7"),
		Start:  WindowStart + 100, End: WindowStart + 400,
		Packets: 500, Bytes: 20000, MaxPPS: 12.5,
	}
	for p := 0; p < 300; p++ {
		big.Ports = append(big.Ports, uint16(p+1))
	}
	follow := Event{
		Source: SourceHoneypot, Vector: VectorNTP,
		Target: netx.MustParseAddr("203.0.113.9"),
		Start:  WindowStart + 500, End: WindowStart + 900,
		Packets: 10, Bytes: 100, AvgRPS: 2,
		Ports: []uint16{123},
	}
	s := NewStore([]Event{big, follow})

	// DOSEVT01: clamped to 255 ports, and crucially the record after the
	// oversized one still parses (the seed wrote a wrapped count byte but
	// all 300 ports, desynchronizing every later record).
	var bin bytes.Buffer
	if err := s.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	from01, err := ReadBinary(&bin)
	if err != nil {
		t.Fatalf("DOSEVT01 with >255-port event failed to parse: %v", err)
	}
	got := from01.Events()
	if len(got) != 2 {
		t.Fatalf("DOSEVT01 round trip produced %d events, want 2", len(got))
	}
	if !reflect.DeepEqual(got[0].Ports, big.Ports[:maxBinPorts]) {
		t.Fatalf("DOSEVT01 ports = %d entries, want the first %d", len(got[0].Ports), maxBinPorts)
	}
	if !reflect.DeepEqual(got[1].Ports, follow.Ports) {
		t.Fatal("record following the clamped one was misparsed")
	}

	// DOSEVT02: lossless.
	from02, err := OpenSegment(segmentBytes(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if evs := from02.Events(); !reflect.DeepEqual(evs[0].Ports, big.Ports) {
		t.Fatalf("DOSEVT02 ports = %d entries, want %d", len(evs[0].Ports), len(big.Ports))
	}

	// CSV: lossless.
	var csvBuf bytes.Buffer
	if err := s.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if evs := fromCSV.Events(); !reflect.DeepEqual(evs[0].Ports, big.Ports) {
		t.Fatalf("CSV ports = %d entries, want %d", len(evs[0].Ports), len(big.Ports))
	}
}

// TestReadCSVPortTokens: trailing and doubled separators must be
// skipped, real garbage still rejected.
func TestReadCSVPortTokens(t *testing.T) {
	row := func(ports string) string {
		return "source,vector,target,start,end,packets,bytes,max_pps,avg_rps,ports\n" +
			`telescope,TCP,203.0.113.1,1425168100,1425168200,10,100,1,0,"` + ports + `"` + "\n"
	}
	cases := []struct {
		ports string
		want  []uint16
	}{
		{"80", []uint16{80}},
		{"80;", []uint16{80}},
		{"80;;443", []uint16{80, 443}},
		{";", nil},
		{";;", nil},
		{";8080", []uint16{8080}},
	}
	for _, c := range cases {
		s, err := ReadCSV(strings.NewReader(row(c.ports)))
		if err != nil {
			t.Errorf("ports %q: %v", c.ports, err)
			continue
		}
		got := s.Events()[0].Ports
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ports %q parsed as %v, want %v", c.ports, got, c.want)
		}
	}
	if _, err := ReadCSV(strings.NewReader(row("80;x"))); err == nil {
		t.Error("non-numeric port token accepted")
	}
	if _, err := ReadCSV(strings.NewReader(row("80;70000"))); err == nil {
		t.Error("out-of-range port token accepted")
	}
}

// TestSegmentAddThenCountImmediately: a segment-backed store that takes
// an Add before ANY other query must still count the pending row on the
// index fast path — the thawed shard's per-(source, vector) counts are
// not authoritative until countRows runs, so the pending-tail scan must
// not prune on them.
func TestSegmentAddThenCountImmediately(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	heap := NewStore(randomEvents(rng, 400))
	seg, err := OpenSegment(segmentBytes(t, heap))
	if err != nil {
		t.Fatal(err)
	}
	want := heap.Query().Vectors(VectorQOTD).Count()
	seg.Add(Event{
		Source: SourceHoneypot, Vector: VectorQOTD,
		Target: netx.MustParseAddr("198.18.0.1"),
		Start:  WindowStart + 42, End: WindowStart + 90,
	})
	if got := seg.Query().Vectors(VectorQOTD).Count(); got != want+1 {
		t.Fatalf("Count = %d, want %d (pending row on a thawed, uncounted shard was dropped)", got, want+1)
	}
}

package attack

import (
	"math/rand"
	"net/url"
	"testing"

	"doscope/internal/netx"
)

// randomPlan builds a domain-valid plan with each filter present with
// probability 1/2 — the same shapes DecodePlan accepts.
func randomPlan(rng *rand.Rand) Plan {
	p := PlanAll()
	if rng.Intn(2) == 0 {
		p.Source = int8(rng.Intn(NumSources))
	}
	if rng.Intn(2) == 0 {
		p.VecMask = rng.Uint32() & (1<<NumVectors - 1)
	}
	if rng.Intn(2) == 0 {
		lo := rng.Intn(2*WindowDays) - WindowDays/2
		p.HasDays, p.DayLo, p.DayHi = true, int32(lo), int32(lo+rng.Intn(WindowDays))
	}
	if rng.Intn(2) == 0 {
		bits := rng.Intn(33)
		p.HasPrefix, p.PrefixBits = true, uint8(bits)
		p.Prefix = netx.Addr(rng.Uint32()).Mask(bits)
	}
	return p
}

// TestPlanURLRoundTrip drives random plans through both text forms —
// URL parameters and base64 — and back, asserting exact equality.
func TestPlanURLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := randomPlan(rng)
		got, err := PlanFromValues(p.Values())
		if err != nil {
			t.Fatalf("PlanFromValues(%v): %v", p.Values(), err)
		}
		if got != p {
			t.Fatalf("URL round trip: got %+v, want %+v (params %v)", got, p, p.Values())
		}
		got, err = DecodePlanString(p.EncodeString())
		if err != nil {
			t.Fatalf("DecodePlanString(%q): %v", p.EncodeString(), err)
		}
		if got != p {
			t.Fatalf("base64 round trip: got %+v, want %+v", got, p)
		}
		// The plan= parameter must decode to the same plan as the
		// equivalent filter parameters.
		got, err = PlanFromValues(url.Values{ParamPlan: {p.EncodeString()}})
		if err != nil {
			t.Fatalf("PlanFromValues(plan=): %v", err)
		}
		if got != p {
			t.Fatalf("plan= round trip: got %+v, want %+v", got, p)
		}
	}
}

func TestPlanFromValuesForms(t *testing.T) {
	// In-window shorthand forms and whitespace tolerance.
	for _, tc := range []struct {
		query string
		want  Plan
	}{
		{"", PlanAll()},
		{"source=honeypot", Plan{Source: int8(SourceHoneypot)}},
		{"vectors=NTP,DNS", Plan{Source: -1, VecMask: 1<<VectorNTP | 1<<VectorDNS}},
		{"vectors=NTP, DNS", Plan{Source: -1, VecMask: 1<<VectorNTP | 1<<VectorDNS}},
		{"days=0-29", Plan{Source: -1, HasDays: true, DayLo: 0, DayHi: 29}},
		{"days=5", Plan{Source: -1, HasDays: true, DayLo: 5, DayHi: 5}},
		{"days=-3..7", Plan{Source: -1, HasDays: true, DayLo: -3, DayHi: 7}},
		{"prefix=198.51.100.0/24", Plan{Source: -1, HasPrefix: true, PrefixBits: 24, Prefix: netx.MustParseAddr("198.51.100.0")}},
		// The prefix is masked on parse, like Query.TargetPrefix.
		{"prefix=198.51.100.77/24", Plan{Source: -1, HasPrefix: true, PrefixBits: 24, Prefix: netx.MustParseAddr("198.51.100.0")}},
		{"limit=10&cursor=abc", PlanAll()}, // non-plan keys are ignored
	} {
		v, err := url.ParseQuery(tc.query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PlanFromValues(v)
		if err != nil {
			t.Fatalf("PlanFromValues(%q): %v", tc.query, err)
		}
		if got != tc.want {
			t.Fatalf("PlanFromValues(%q) = %+v, want %+v", tc.query, got, tc.want)
		}
	}
}

func TestPlanFromValuesRejects(t *testing.T) {
	for _, query := range []string{
		"source=darknet",
		"vectors=HTTP",
		"days=x",
		"days=3-",
		"prefix=198.51.100.0",    // no /bits
		"prefix=198.51.100.0/40", // bits out of range
		"plan=!!!",
		"plan=" + PlanAll().EncodeString() + "&days=0-1", // plan= is exclusive
	} {
		v, err := url.ParseQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := PlanFromValues(v); err == nil {
			t.Fatalf("PlanFromValues(%q) succeeded, want error", query)
		}
	}
}

package attack

import (
	"io"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"doscope/internal/netx"
)

// prefixOracle holds the from-scratch results for one batch prefix:
// what any reader must observe if its snapshot landed after batch k.
type prefixOracle struct {
	count  int
	vec    [NumVectors]int
	day    []int
	events []Event
	starts []int64
	byTgt  map[netx.Addr]int
}

// buildPrefixOracles replays the batch sequence into from-scratch
// stores and records every terminal's expected result per prefix.
func buildPrefixOracles(events []Event, batchSize int) []prefixOracle {
	n := len(events) / batchSize
	out := make([]prefixOracle, n+1)
	for k := 0; k <= n; k++ {
		fresh := NewStore(events[:k*batchSize])
		o := prefixOracle{
			count:  fresh.Query().Count(),
			vec:    fresh.Query().CountByVector(),
			day:    fresh.Query().CountByDay(),
			events: fresh.Query().Events(),
			byTgt:  make(map[netx.Addr]int),
		}
		for e := range fresh.Query().IterByStart() {
			o.starts = append(o.starts, e.Start)
		}
		for addr, evs := range fresh.Query().GroupByTarget() {
			o.byTgt[addr] = len(evs)
		}
		out[k] = o
	}
	return out
}

// TestConcurrentReadersUnderIngest is the writer-vs-readers stress
// test: one goroutine AddBatches the event stream while N reader
// goroutines hammer every terminal. Because mutations publish
// atomically, every result a reader observes must equal the
// from-scratch oracle of some whole-batch prefix, and the prefixes a
// single reader observes must be monotonically non-decreasing. Run
// under -race this is also the data-race proof for the lock-free read
// paths.
func TestConcurrentReadersUnderIngest(t *testing.T) {
	const (
		batches   = 24
		batchSize = 64
		readers   = 6
	)
	rng := rand.New(rand.NewSource(97))
	events := randomEvents(rng, batches*batchSize)
	oracles := buildPrefixOracles(events, batchSize)

	// Batch sizes are fixed and non-empty, so the total count identifies
	// the prefix uniquely.
	kByCount := make(map[int]int, len(oracles))
	for k, o := range oracles {
		kByCount[o.count] = k
	}

	st := &Store{}
	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < batches; k++ {
			st.AddBatch(events[k*batchSize : (k+1)*batchSize])
		}
		writerDone.Store(true)
	}()

	// resolve maps an observed total back to its prefix, enforcing
	// per-reader monotonicity: a later read can never see an earlier
	// prefix than an earlier read did.
	resolve := func(t *testing.T, total int, lastK *int, terminal string) (int, bool) {
		k, ok := kByCount[total]
		if !ok {
			t.Errorf("%s observed %d events: not any whole-batch prefix", terminal, total)
			return 0, false
		}
		if k < *lastK {
			t.Errorf("%s went back in time: prefix %d after %d", terminal, k, *lastK)
			return k, false
		}
		*lastK = k
		return k, true
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastK := 0
			// Keep reading until the writer is done, then do one last
			// sweep that must observe the complete store.
			for done := false; !done; {
				done = writerDone.Load()
				switch r % 3 {
				case 0:
					if n := st.Query().Count(); true {
						resolve(t, n, &lastK, "Count")
					}
					vec := st.Query().CountByVector()
					total := 0
					for _, n := range vec {
						total += n
					}
					if k, ok := resolve(t, total, &lastK, "CountByVector"); ok && vec != oracles[k].vec {
						t.Errorf("CountByVector diverged from prefix %d oracle", k)
					}
					day := st.Query().CountByDay()
					matched := false
					for k := lastK; k <= batches && !matched; k++ {
						matched = reflect.DeepEqual(day, oracles[k].day)
					}
					if !matched {
						t.Error("CountByDay matches no whole-batch prefix oracle")
					}
				case 1:
					evs := st.Query().Events()
					if k, ok := resolve(t, len(evs), &lastK, "Iter/Events"); ok && !reflect.DeepEqual(evs, oracles[k].events) {
						t.Errorf("Iter diverged from prefix %d oracle", k)
					}
					var starts []int64
					for e := range st.Query().IterByStart() {
						starts = append(starts, e.Start)
					}
					if k, ok := resolve(t, len(starts), &lastK, "IterByStart"); ok && !reflect.DeepEqual(starts, oracles[k].starts) {
						t.Errorf("IterByStart diverged from prefix %d oracle", k)
					}
				case 2:
					got := st.Query().GroupByTarget()
					total := 0
					for _, evs := range got {
						total += len(evs)
					}
					if k, ok := resolve(t, total, &lastK, "GroupByTarget"); ok {
						for addr, evs := range got {
							if len(evs) != oracles[k].byTgt[addr] {
								t.Errorf("GroupByTarget[%v] diverged from prefix %d oracle", addr, k)
								break
							}
						}
					}
					folded := Fold(st.Query(),
						func() int { return 0 },
						func(n int, e *Event) int { return n + 1 },
						func(a, b int) int { return a + b })
					resolve(t, folded, &lastK, "Fold")
				}
			}
			if lastK != batches {
				// The final sweep above ran with writerDone observed
				// true, so it must have seen the full store.
				t.Errorf("reader %d finished at prefix %d, want %d", r, lastK, batches)
			}
		}(r)
	}
	wg.Wait()

	// After the dust settles the store must equal the full oracle.
	if got := st.Query().Events(); !reflect.DeepEqual(got, oracles[batches].events) {
		t.Fatal("final store diverged from the full oracle")
	}
}

// TestReadPathsDoNotMutate is the acceptance assertion that no query
// terminal takes a lock or mutates shard state: running the complete
// terminal matrix against a store with pending tails leaves the
// published view POINTER untouched (nothing was republished), the seal
// and version counters unchanged, and every tail still pending. Only
// the once-per-lifetime lazy index builds may tick the rebuild counter.
func TestReadPathsDoNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	build := func(t *testing.T) *Store {
		st := &Store{}
		st.AddBatch(randomEvents(rng, 600))
		for _, e := range randomEvents(rng, 40) {
			st.Add(e) // leave unsealed pending tails behind
		}
		return st
	}
	fromSegment := func(t *testing.T) *Store {
		seg, err := OpenSegment(segmentBytes(t, build(t)))
		if err != nil {
			t.Fatal(err)
		}
		return seg
	}
	for name, mk := range map[string]func(*testing.T) *Store{
		"live-with-tails": build,
		"segment-backed":  fromSegment,
	} {
		t.Run(name, func(t *testing.T) {
			st := mk(t)
			v0 := st.view()
			seals0 := st.sealOps.Load()
			version0 := st.Version()
			pending0 := st.pendingRows()

			target := st.Events()[0].Target
			st.Query().Count()
			st.Query().Source(SourceHoneypot).Vectors(VectorNTP).CountByVector()
			st.Query().Days(0, 30).CountByDay()
			st.Query().Target(target).Count()
			st.Query().TargetPrefix(target, 16).Count()
			st.Query().Where(func(e *Event) bool { return e.Packets%2 == 0 }).Count()
			st.Query().Events()
			for range st.Query().IterByStart() {
				break
			}
			st.Query().GroupByTarget()
			Fold(st.Query(),
				func() int { return 0 },
				func(n int, e *Event) int { return n + 1 },
				func(a, b int) int { return a + b })
			st.UniqueTargets()
			st.UniqueBlocks(16)
			st.ByTarget()
			if err := st.WriteSegment(io.Discard); err != nil {
				t.Fatal(err)
			}
			if err := st.WriteBinary(io.Discard); err != nil {
				t.Fatal(err)
			}
			if err := st.WriteCSV(io.Discard); err != nil {
				t.Fatal(err)
			}

			if st.view() != v0 {
				t.Fatal("query traffic republished the store view: some read path mutated")
			}
			if got := st.sealOps.Load(); got != seals0 {
				t.Fatalf("query traffic sealed %d shards", got-seals0)
			}
			if got := st.Version(); got != version0 {
				t.Fatalf("query traffic moved the version %d -> %d", version0, got)
			}
			if got := st.pendingRows(); got != pending0 {
				t.Fatalf("query traffic drained pending tails %d -> %d", pending0, got)
			}
			if got := st.rebuilds.Load(); got > 3 {
				t.Fatalf("query traffic built %d from-scratch indexes, want at most 3 (counts + target perms + target bitmaps)", got)
			}
		})
	}
}

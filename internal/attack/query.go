package attack

import (
	"iter"

	"doscope/internal/netx"
)

// Query is a composable filter over one or more stores. Builder methods
// narrow the selection and return the receiver for chaining; terminal
// operations (Iter, IterByStart, Count, CountByVector, CountByDay,
// GroupByTarget, Events, Collect, and the package-level Fold) execute
// it, pushing filters down to shard and index pruning instead of full
// scans. Plan compiles the filters (minus Where predicates) to a
// portable form that federation ships to remote sites; QueryBackends
// runs the same shapes across any mix of local and remote backends.
//
// Execution is columnar: the source, vector, day, and target-prefix
// filters are tested against the hot shard columns (~14 bytes per event)
// and only matching rows are materialized into Event views.
//
// Every terminal is a lock-free read: it loads each store's published
// view once when it starts and runs entirely against that immutable
// snapshot, so terminals never block — or are blocked by — a concurrent
// writer, and never mutate store state. Counting terminals answer
// sealed rows from the incrementally maintained indexes and the small
// pending tails by linear scan; terminals that need sorted order
// (Iter, IterByStart, Fold) merge the pending tails on the fly instead
// of sealing.
//
// A Query value is single-use (build a fresh one per execution), and
// two terminals on the same Query may observe different snapshots if a
// writer published between them; each terminal is individually
// consistent.
type Query struct {
	stores     []*Store
	source     int8   // -1 = any
	vecMask    uint32 // 0 = all
	dayLo      int
	dayHi      int
	startLo    int64 // [startLo, startHi): the day range as timestamps
	startHi    int64
	hasDays    bool
	prefix     netx.Addr
	prefixBits int
	hasPrefix  bool
	pred       func(*Event) bool
	workers    int // executor parallelism bound; 0 = GOMAXPROCS
}

// Query starts a query over this store.
func (s *Store) Query() *Query { return QueryStores(s) }

// QueryStores starts a query spanning several stores (e.g. the telescope
// and honeypot data sets). Iter visits stores in argument order;
// IterByStart merges them by start time.
func QueryStores(stores ...*Store) *Query {
	return &Query{stores: stores, source: -1}
}

// views snapshots the published view of every store, in store order.
// Nil stores yield nil entries; empty stores yield the empty view.
func (q *Query) views() []*view {
	vs := make([]*view, len(q.stores))
	for i, st := range q.stores {
		if st != nil {
			vs[i] = st.view()
		}
	}
	return vs
}

// Source keeps only events observed by the given sensor.
func (q *Query) Source(src Source) *Query { q.source = int8(src); return q }

// Vectors keeps only events with one of the given attack vectors.
func (q *Query) Vectors(vs ...Vector) *Query {
	for _, v := range vs {
		q.vecMask |= 1 << v
	}
	return q
}

// Days keeps only events whose start day index lies in [lo, hi]
// (inclusive). Out-of-window events have negative or >= WindowDays day
// indexes and are excluded by any in-window range.
func (q *Query) Days(lo, hi int) *Query {
	q.hasDays, q.dayLo, q.dayHi = true, lo, hi
	// Precompute the range as start timestamps: DayOf is a floor
	// division, so d in [lo, hi] is exactly start in [lo*86400,
	// (hi+1)*86400) relative to the window — two compares per row on
	// the hot path instead of a division.
	q.startLo = WindowStart + int64(lo)*86400
	q.startHi = WindowStart + int64(hi+1)*86400
	return q
}

// Target keeps only events aimed at exactly this address (served from the
// by-target permutations).
func (q *Query) Target(a netx.Addr) *Query { return q.TargetPrefix(a, 32) }

// TargetPrefix keeps only events whose target falls inside a/bits.
func (q *Query) TargetPrefix(a netx.Addr, bits int) *Query {
	q.hasPrefix, q.prefixBits, q.prefix = true, bits, a.Mask(bits)
	return q
}

// Where adds an arbitrary predicate (composed with any previous one).
// Predicate-filtered queries cannot use the count indexes, and force
// candidate rows to be materialized before the predicate runs.
func (q *Query) Where(pred func(*Event) bool) *Query {
	if prev := q.pred; prev != nil {
		q.pred = func(e *Event) bool { return prev(e) && pred(e) }
	} else {
		q.pred = pred
	}
	return q
}

// matchKey applies the columnar filters to row i's hot columns: the
// packed source|vector key, target address, and start timestamp. This is
// the fast path every scan takes before touching the payload columns;
// each column is loaded only if a filter actually reads it, so e.g. a
// vector-only query streams just the 2-byte key column.
func (q *Query) matchKey(sh *shard, i int) bool {
	if q.source >= 0 || q.vecMask != 0 {
		key := sh.key[i]
		if q.source >= 0 && key>>8 != uint16(q.source) {
			return false
		}
		if q.vecMask != 0 {
			if vec := key & 0xff; vec >= 32 || q.vecMask&(1<<vec) == 0 {
				return false
			}
		}
	}
	if q.hasPrefix && sh.target[i].Mask(q.prefixBits) != q.prefix {
		return false
	}
	if q.hasDays {
		if s := sh.start[i]; s < q.startLo || s >= q.startHi {
			return false
		}
	}
	return true
}

func clampDay(d int) int {
	if d < 0 {
		return 0
	}
	if d >= WindowDays {
		return WindowDays - 1
	}
	return d
}

// shardRange returns the inclusive shard index range that can contain
// matching events given the day filter; lo > hi means no shard can.
func (q *Query) shardRange() (lo, hi int) {
	if !q.hasDays {
		return 0, numShards - 1
	}
	if q.dayLo > q.dayHi {
		return 1, 0
	}
	return clampDay(q.dayLo) / shardDays, clampDay(q.dayHi) / shardDays
}

// mayMatch prunes shard si of the view using its (source, vector)
// counts — the shard's own when the writer maintains them, or the
// view's once-per-view tallies for uncounted (segment-opened, never
// written) shards, so pruning survives the move to non-mutating reads.
func (q *Query) mayMatch(v *view, si int) bool {
	sh := v.shards[si]
	if sh.rows() == 0 {
		return false
	}
	if q.source < 0 && q.vecMask == 0 {
		return true
	}
	counts, unindexed := &sh.counts, sh.unindexed
	if !sh.counted {
		t := v.shardTallies()
		counts, unindexed = &t[si].counts, t[si].unindexed
	}
	if unindexed > 0 {
		return true
	}
	for src := 0; src < 2; src++ {
		if q.source >= 0 && int(q.source) != src {
			continue
		}
		for vec := 0; vec < NumVectors; vec++ {
			if q.vecMask != 0 && q.vecMask&(1<<vec) == 0 {
				continue
			}
			if counts[src][vec] > 0 {
				return true
			}
		}
	}
	return false
}

// scanShard walks one shard snapshot, in (Start, Target) order when
// ordered (merging any pending tail on the fly) and physical order
// otherwise. The predicate-free case keeps the pure columnar loops:
// only the hot columns are read, nothing is materialized.
func (q *Query) scanShard(sh *shard, scratch *Event, ordered bool, fn func(sh *shard, i int) bool) bool {
	if q.pred == nil {
		if ordered && sh.tail() > 0 {
			c := newMergeCursor(sh)
			for i := c.next(); i >= 0; i = c.next() {
				if q.matchKey(sh, i) && !fn(sh, i) {
					return false
				}
			}
			return true
		}
		ord := sh.ord
		if !ordered {
			ord = nil // physical order covers body and tail alike
		}
		if ord == nil {
			for i, n := 0, sh.rows(); i < n; i++ {
				if q.matchKey(sh, i) && !fn(sh, i) {
					return false
				}
			}
			return true
		}
		for _, p := range ord {
			if i := int(p); q.matchKey(sh, i) && !fn(sh, i) {
				return false
			}
		}
		return true
	}
	visit := func(i int) bool {
		if !q.matchKey(sh, i) {
			return true
		}
		sh.view(i, scratch)
		if !q.pred(scratch) {
			return true
		}
		return fn(sh, i)
	}
	if ordered && sh.tail() > 0 {
		c := newMergeCursor(sh)
		for i := c.next(); i >= 0; i = c.next() {
			if !visit(i) {
				return false
			}
		}
		return true
	}
	ord := sh.ord
	if !ordered {
		ord = nil
	}
	if ord == nil {
		for i, n := 0, sh.rows(); i < n; i++ {
			if !visit(i) {
				return false
			}
		}
		return true
	}
	for _, p := range ord {
		if !visit(int(p)) {
			return false
		}
	}
	return true
}

// forEachPendingRow visits every pending-tail row matching the columnar
// filters. The count fast paths answer sealed rows from the
// incrementally maintained indexes and use this to fold in the (at most
// sealTailMax per shard) rows not yet sealed. Callers guarantee the
// query has no predicate.
func (q *Query) forEachPendingRow(v *view, fn func(sh *shard, i int)) {
	lo, hi := q.shardRange()
	for si := lo; si <= hi && si < len(v.shards); si++ {
		sh := v.shards[si]
		if sh.sealed == sh.rows() {
			continue
		}
		if !q.mayMatch(v, si) {
			continue
		}
		for i, n := sh.sealed, sh.rows(); i < n; i++ {
			if q.matchKey(sh, i) {
				fn(sh, i)
			}
		}
	}
}

// Iter yields matching events store by store, each in (Start, Target)
// order. The yielded *Event is a per-iteration scratch view materialized
// from the shard columns: it is valid until the next yield (and its Ports
// slice aliases store-owned memory, valid as long as the store is).
// Callers that retain events across iterations must copy them; use
// GroupByTarget or Events for retained results.
func (q *Query) Iter() iter.Seq[*Event] {
	return func(yield func(*Event) bool) {
		ex := q.compile(cmRows)
		var scratch Event
		for ti := range ex.tasks {
			ok := ex.drainTask(ti, true, &scratch, func(sh *shard, i int) bool {
				if q.pred == nil {
					sh.view(i, &scratch)
				}
				return yield(&scratch)
			})
			if !ok {
				return
			}
		}
	}
}

// IterByStart yields matching events from all stores merged by start
// time (ties favor the earlier store, then per-store order), the order
// the fusion pipeline consumes for daily stamping. Shard alignment makes
// this a per-day-range k-way merge over the start columns instead of a
// global sort; rows are materialized only after they win the merge, and
// pending tails join the merge on the fly. The yielded *Event is
// scratch, valid until the next yield.
func (q *Query) IterByStart() iter.Seq[*Event] {
	return func(yield func(*Event) bool) {
		lo, hi := q.shardRange()
		views := q.views()
		var scratch Event
		cursors := make([]mergeCursor, len(views))
		for si := lo; si <= hi; si++ {
			for k, v := range views {
				cursors[k] = mergeCursor{}
				if v == nil || si >= len(v.shards) {
					continue
				}
				if q.mayMatch(v, si) {
					cursors[k] = newMergeCursor(v.shards[si])
				}
			}
			for {
				best, bestRow := -1, -1
				var bestStart int64
				for k := range cursors {
					c := &cursors[k]
					if c.sh == nil {
						continue
					}
					row := c.peek()
					if row < 0 {
						continue
					}
					if s := c.sh.start[row]; best < 0 || s < bestStart {
						best, bestRow, bestStart = k, row, s
					}
				}
				if best < 0 {
					break
				}
				c := &cursors[best]
				c.advance()
				if !q.matchKey(c.sh, bestRow) {
					continue
				}
				c.sh.view(bestRow, &scratch)
				if q.pred != nil && !q.pred(&scratch) {
					continue
				}
				if !yield(&scratch) {
					return
				}
			}
		}
	}
}

// Events materializes the matching events (copies) in Iter order.
func (q *Query) Events() []Event {
	var out []Event
	for e := range q.Iter() {
		out = append(out, *e)
	}
	return out
}

// GroupByTarget collects matching events per target address, per target
// in Iter order. Unlike the per-iteration scratch *Event that Iter,
// IterByStart and Fold yield (valid only until the next yield), each
// slice entry here is a private copy (its Ports still alias store arena
// memory), so the pointers stay stable and distinct after the call —
// safe to retain without the copy discipline scratch views require.
//
// Grouping fans out per shard: each task collects its shard's groups in
// Iter order, and the per-task maps are merged in task order, so every
// per-target slice is identical to the sequential Iter-driven build for
// any worker count.
func (q *Query) GroupByTarget() map[netx.Addr][]*Event {
	ex := q.compile(cmRows)
	parts := make([]map[netx.Addr][]*Event, len(ex.tasks))
	runTasks(q.workers, len(ex.tasks), func(ti int) {
		m := make(map[netx.Addr][]*Event)
		var scratch Event
		ex.drainTask(ti, true, &scratch, func(sh *shard, i int) bool {
			ev := new(Event)
			if q.pred == nil {
				sh.view(i, ev)
			} else {
				*ev = scratch
			}
			m[ev.Target] = append(m[ev.Target], ev)
			return true
		})
		parts[ti] = m
	})
	out := make(map[netx.Addr][]*Event)
	for _, m := range parts {
		for t, evs := range m {
			out[t] = append(out[t], evs...)
		}
	}
	return out
}

// Count returns the number of matching events. Queries filtering only on
// source, vector, and day range are answered from the per-day count index
// plus a linear scan of the pending tails, without sealing or re-sorting
// anything; prefix queries (down to /8) from the by-target permutations.
// Everything else compiles to per-shard columnar scan tasks over the hot
// columns, fanned out across the worker pool, that materialize no events
// (unless a predicate forces it).
func (q *Query) Count() int {
	return q.execCounts(cmTotal).n
}

// countViaIndex answers a source/vector/day-only count over the SEALED
// rows from the per-day index (the caller adds pending-tail rows via
// forEachPendingRow). When perVec is non-nil it additionally accumulates
// per-vector totals. ok is false when the index cannot answer exactly
// (events with out-of-range enum values, or a day filter straddling the
// window edge while out-of-window events exist).
func (q *Query) countViaIndex(c *countsIndex, perVec *[NumVectors]int) (n int, ok bool) {
	if c.unindexed > 0 {
		return 0, false
	}
	includeOut := true
	dlo, dhi := 0, WindowDays-1
	if q.hasDays {
		if q.dayLo > q.dayHi {
			return 0, true
		}
		if q.dayLo < 0 || q.dayHi >= WindowDays {
			// The index does not resolve which side of the window an
			// out-of-window event falls on.
			if c.outTotal > 0 {
				return 0, false
			}
		}
		includeOut = false
		dlo, dhi = clampDay(q.dayLo), clampDay(q.dayHi)
		if q.dayHi < 0 || q.dayLo >= WindowDays {
			return 0, true
		}
	}
	for src := 0; src < 2; src++ {
		if q.source >= 0 && int(q.source) != src {
			continue
		}
		for v := 0; v < NumVectors; v++ {
			if q.vecMask != 0 && q.vecMask&(1<<v) == 0 {
				continue
			}
			sum := 0
			for d := dlo; d <= dhi; d++ {
				sum += int(c.day[d][src][v])
			}
			if includeOut {
				sum += int(c.out[src][v])
			}
			n += sum
			if perVec != nil {
				perVec[v] += sum
			}
		}
	}
	return n, true
}

// CountByVector returns matching event counts per attack vector, answered
// from the count index plus a pending-tail scan when the query has no
// prefix or predicate filter, and from per-shard key-column scan tasks
// otherwise. Events with out-of-range vector values are not counted.
func (q *Query) CountByVector() [NumVectors]int {
	return q.execCounts(cmVector).vec
}

// CountByDay returns matching in-window event counts per start day
// (length WindowDays), answered from the count index plus a pending-tail
// scan when the query has no prefix or predicate filter, and from
// per-shard start-column scan tasks otherwise.
func (q *Query) CountByDay() []int {
	return q.execCounts(cmDay).day
}

// Fold runs a parallel aggregation over the matching events: one task per
// shard index (spanning that shard in every store, store-major), fanned
// out over up to GOMAXPROCS goroutines. Within a task events arrive in
// Iter order; partials are merged in ascending shard order, so the result
// is deterministic for any GOMAXPROCS as long as acc is order-independent
// across shards or merge is associative in shard order.
//
// Fold snapshots every store's published view once, up front: all tasks
// see the same consistent data regardless of concurrent ingest, and no
// seal or index build runs on its account.
//
// The *Event passed to acc is a per-task scratch view, valid only for the
// duration of that acc call; accumulators that retain events must copy
// them.
//
// Because every store shards by day-of-window, a task sees all events of
// its day range across all stores: per-day aggregations (daily counts,
// per-day dedup sets) are safe to keep in the partial.
func Fold[T any](q *Query, init func() T, acc func(T, *Event) T, merge func(T, T) T) T {
	lo, hi := q.shardRange()
	views := q.views()
	var tasks []int
	for si := lo; si <= hi; si++ {
		for _, v := range views {
			if v == nil || si >= len(v.shards) {
				continue
			}
			if q.mayMatch(v, si) {
				tasks = append(tasks, si)
				break
			}
		}
	}
	partials := make([]T, len(tasks))
	runTasks(q.workers, len(tasks), func(ti int) {
		si := tasks[ti]
		val := init()
		var scratch Event
		for _, v := range views {
			if v == nil || si >= len(v.shards) {
				continue
			}
			if !q.mayMatch(v, si) {
				continue
			}
			statTask(v, execScan)
			sh := v.shards[si]
			c := newMergeCursor(sh)
			for i := c.next(); i >= 0; i = c.next() {
				if !q.matchKey(sh, i) {
					continue
				}
				sh.view(i, &scratch)
				if q.pred != nil && !q.pred(&scratch) {
					continue
				}
				val = acc(val, &scratch)
			}
		}
		partials[ti] = val
	})
	out := init()
	for _, p := range partials {
		out = merge(out, p)
	}
	return out
}

package attack

import (
	"math/bits"
	"slices"
	"sync/atomic"

	"doscope/internal/netx"
)

// Target bitmap indexes: roaring-flavored compressed bitsets over the
// target-address column, one bitmap per (shard, day-of-window) cell plus
// one out-of-window bitmap on the boundary shards. They answer the
// distinct-target terminals — CountDistinctTargets, the per-day series
// behind the paper's Figure-1 targets panel, and UniqueTargets /
// UniqueBlocks — by container union and popcount instead of hash-set
// scans over every target cell.
//
// Representation is the classic two-level scheme: a bitmap is a sorted
// array of 16-bit keys (the target's high bits), each owning one
// container over the low 16 bits. A container starts as a sorted
// uint16 array and converts to a fixed 1024-word bitset once it
// outgrows arrContainerMax entries, so sparse cells stay compact while
// dense cells get O(1) inserts and word-wide unions.
//
// Concurrency follows the store's copy-on-write discipline, enforced
// with generation stamps instead of whole-index clones: every node
// (index, shard, bitmap, container) records the generation it was
// created under, and a mutator may write a node in place only when its
// generation matches the mutator's own — anything else is path-copied
// first. Generations come from a global counter and are never reused,
// so a published view's nodes can never match a later writer's
// generation: whatever a reader can see is immutable by construction.
const arrContainerMax = 4096

// tgtGen hands out index generations. Every distinct build, adoption,
// or post-publication mutation cycle claims a fresh generation, so
// stamps identify ownership globally and forever.
var tgtGen atomic.Uint64

// container holds one key's low-16-bit membership set: a sorted array
// below arrContainerMax entries, a 1024-word bitset above. n caches the
// cardinality in either form. Containers are never empty.
type container struct {
	gen  uint64
	arr  []uint16      // sorted; nil iff bits is non-nil
	bits *[1024]uint64 // bitset form
	n    int
}

// mut returns a container the caller may mutate under generation g,
// cloning the payload when the receiver belongs to another generation.
func (c *container) mut(g uint64) *container {
	if c.gen == g {
		return c
	}
	nc := &container{gen: g, n: c.n}
	if c.bits != nil {
		b := *c.bits
		nc.bits = &b
	} else {
		nc.arr = slices.Clone(c.arr)
	}
	return nc
}

// add inserts low. The caller must own the container (gen-checked via
// mut).
func (c *container) add(low uint16) {
	if c.bits != nil {
		w, b := low>>6, uint64(1)<<(low&63)
		if c.bits[w]&b == 0 {
			c.bits[w] |= b
			c.n++
		}
		return
	}
	i, ok := slices.BinarySearch(c.arr, low)
	if ok {
		return
	}
	if len(c.arr) >= arrContainerMax {
		var bs [1024]uint64
		for _, v := range c.arr {
			bs[v>>6] |= 1 << (v & 63)
		}
		bs[low>>6] |= 1 << (low & 63)
		c.bits, c.arr = &bs, nil
		c.n++
		return
	}
	c.arr = slices.Insert(c.arr, i, low)
	c.n++
}

// contains reports membership of low.
func (c *container) contains(low uint16) bool {
	if c.bits != nil {
		return c.bits[low>>6]&(1<<(low&63)) != 0
	}
	_, ok := slices.BinarySearch(c.arr, low)
	return ok
}

// orInto folds the container into a scratch bitset.
func (c *container) orInto(dst *[1024]uint64) {
	if c.bits != nil {
		for w, v := range c.bits {
			dst[w] |= v
		}
		return
	}
	for _, v := range c.arr {
		dst[v>>6] |= 1 << (v & 63)
	}
}

// groups counts distinct low-bit groups of width 1<<shift present in
// the container — the sub-key half of a prefix-block count.
func (c *container) groups(shift int) int {
	if c.bits == nil {
		n, last := 0, -1
		for _, v := range c.arr {
			if g := int(v >> shift); g != last {
				last = g
				n++
			}
		}
		return n
	}
	return bitsetGroups(c.bits, shift)
}

// bitsetGroups counts groups of 1<<shift consecutive bits with any bit
// set in a 65536-bit bitset.
func bitsetGroups(bs *[1024]uint64, shift int) int {
	n := 0
	if shift >= 6 {
		stride := 1 << (shift - 6)
		for w := 0; w < 1024; w += stride {
			for k := 0; k < stride; k++ {
				if bs[w+k] != 0 {
					n++
					break
				}
			}
		}
		return n
	}
	width := 1 << shift
	mask := uint64(1)<<width - 1
	for _, v := range bs {
		for ; v != 0; v >>= width {
			if v&mask != 0 {
				n++
			}
		}
	}
	return n
}

// targetBitmap is one cell's compressed target set: sorted high-16-bit
// keys, one container each.
type targetBitmap struct {
	gen  uint64
	keys []uint16
	cts  []*container
}

// mut returns a bitmap the caller may mutate under generation g.
func (tb *targetBitmap) mut(g uint64) *targetBitmap {
	if tb.gen == g {
		return tb
	}
	return &targetBitmap{gen: g, keys: slices.Clone(tb.keys), cts: slices.Clone(tb.cts)}
}

// add inserts target t. The caller must own the bitmap.
func (tb *targetBitmap) add(g uint64, t netx.Addr) {
	key, low := uint16(t>>16), uint16(t)
	i, ok := slices.BinarySearch(tb.keys, key)
	if !ok {
		c := &container{gen: g, arr: []uint16{low}, n: 1}
		tb.keys = slices.Insert(tb.keys, i, key)
		tb.cts = slices.Insert(tb.cts, i, c)
		return
	}
	c := tb.cts[i].mut(g)
	tb.cts[i] = c
	c.add(low)
}

// card returns the bitmap's cardinality.
func (tb *targetBitmap) card() int {
	n := 0
	for _, c := range tb.cts {
		n += c.n
	}
	return n
}

// contains reports membership of t.
func (tb *targetBitmap) contains(t netx.Addr) bool {
	i, ok := slices.BinarySearch(tb.keys, uint16(t>>16))
	return ok && tb.cts[i].contains(uint16(t))
}

// unionCard returns the number of distinct targets across the bitmaps
// (nil entries ignored): a k-way merge over the sorted key spaces,
// popcounting a scratch bitset only where several bitmaps share a key.
func unionCard(bms []*targetBitmap) int {
	return unionCount(bms, 32)
}

// unionBlocks returns the number of distinct maskBits-bit target
// prefixes across the bitmaps — UniqueBlocks as container arithmetic:
// prefixes at or above the key split count distinct key prefixes,
// longer ones count low-bit groups inside each merged key.
func unionBlocks(bms []*targetBitmap, maskBits int) int {
	if maskBits <= 0 {
		for _, tb := range bms {
			if tb != nil && len(tb.keys) > 0 {
				return 1
			}
		}
		return 0
	}
	if maskBits > 32 {
		maskBits = 32
	}
	return unionCount(bms, maskBits)
}

// arrayUnion counts distinct values (shift == 0) or distinct
// width-(1<<shift) low-bit groups across sorted array containers by
// k-way merge. pos is caller-provided scratch of len(cs).
func arrayUnion(cs []*container, pos []int, shift int) int {
	for i := range pos {
		pos[i] = 0
	}
	total, last := 0, -1
	for {
		minVal := -1
		for i, c := range cs {
			if pos[i] < len(c.arr) {
				if v := int(c.arr[pos[i]]); minVal < 0 || v < minVal {
					minVal = v
				}
			}
		}
		if minVal < 0 {
			return total
		}
		for i, c := range cs {
			if pos[i] < len(c.arr) && int(c.arr[pos[i]]) == minVal {
				pos[i]++
			}
		}
		if g := minVal >> shift; g != last {
			last = g
			total++
		}
	}
}

// oneContainer counts one unshared container's contribution: its
// cardinality for exact targets, its distinct low-bit groups otherwise.
func oneContainer(c *container, shift int) int {
	if shift == 0 {
		return c.n
	}
	return c.groups(shift)
}

// pairCount counts the union of exactly two containers sharing a key.
func pairCount(ca, cb *container, shift int) int {
	if ca.bits == nil && cb.bits == nil {
		return arrayUnion2(ca.arr, cb.arr, shift)
	}
	var scratch [1024]uint64
	ca.orInto(&scratch)
	cb.orInto(&scratch)
	if shift == 0 {
		n := 0
		for _, w := range scratch {
			n += bits.OnesCount64(w)
		}
		return n
	}
	return bitsetGroups(&scratch, shift)
}

// arrayUnion2 is the two-pointer form of arrayUnion.
func arrayUnion2(x, y []uint16, shift int) int {
	i, j, total, last := 0, 0, 0, -1
	for i < len(x) || j < len(y) {
		var v int
		switch {
		case j >= len(y) || (i < len(x) && x[i] < y[j]):
			v = int(x[i])
			i++
		case i >= len(x) || y[j] < x[i]:
			v = int(y[j])
			j++
		default:
			v = int(x[i])
			i++
			j++
		}
		if g := v >> shift; g != last {
			last = g
			total++
		}
	}
	return total
}

// unionCount2 merges exactly two bitmaps' key spaces with two
// pointers — the dominant shape (one bitmap per store, empty tails),
// worth sparing the generic path's position bookkeeping and per-call
// allocations: the per-day terminals call this once per window day.
func unionCount2(a, b *targetBitmap, shift int) int {
	i, j, total := 0, 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			total += oneContainer(a.cts[i], shift)
			i++
		case b.keys[j] < a.keys[i]:
			total += oneContainer(b.cts[j], shift)
			j++
		default:
			total += pairCount(a.cts[i], b.cts[j], shift)
			i++
			j++
		}
	}
	for ; i < len(a.keys); i++ {
		total += oneContainer(a.cts[i], shift)
	}
	for ; j < len(b.keys); j++ {
		total += oneContainer(b.cts[j], shift)
	}
	return total
}

// unionCount is the shared k-way merge behind unionCard and
// unionBlocks. maskBits == 32 counts exact targets; 17..31 counts
// low-bit groups per key; 1..16 counts distinct key prefixes.
func unionCount(bms []*targetBitmap, maskBits int) int {
	live := make([]*targetBitmap, 0, len(bms))
	for _, tb := range bms {
		if tb != nil && len(tb.keys) > 0 {
			live = append(live, tb)
		}
	}
	if len(live) == 0 {
		return 0
	}
	if maskBits > 16 {
		switch len(live) {
		case 1:
			total := 0
			for _, c := range live[0].cts {
				total += oneContainer(c, 32-maskBits)
			}
			return total
		case 2:
			return unionCount2(live[0], live[1], 32-maskBits)
		}
	}
	if maskBits <= 16 {
		// Distinct high-bit prefixes: walk the merged key space alone.
		shift := 16 - maskBits
		total, lastPfx := 0, -1
		pos := make([]int, len(live))
		for {
			minKey := -1
			for k, tb := range live {
				if pos[k] < len(tb.keys) {
					if key := int(tb.keys[pos[k]]); minKey < 0 || key < minKey {
						minKey = key
					}
				}
			}
			if minKey < 0 {
				return total
			}
			for k, tb := range live {
				if pos[k] < len(tb.keys) && int(tb.keys[pos[k]]) == minKey {
					pos[k]++
				}
			}
			if pfx := minKey >> shift; pfx != lastPfx {
				lastPfx = pfx
				total++
			}
		}
	}
	shift := 32 - maskBits // 0 for exact targets
	pos := make([]int, len(live))
	cs := make([]*container, 0, len(live))
	cpos := make([]int, len(live))
	var scratch [1024]uint64
	total := 0
	for {
		minKey := -1
		for k, tb := range live {
			if pos[k] < len(tb.keys) {
				if key := int(tb.keys[pos[k]]); minKey < 0 || key < minKey {
					minKey = key
				}
			}
		}
		if minKey < 0 {
			return total
		}
		cs = cs[:0]
		allArr := true
		for k, tb := range live {
			if pos[k] < len(tb.keys) && int(tb.keys[pos[k]]) == minKey {
				c := tb.cts[pos[k]]
				allArr = allArr && c.bits == nil
				cs = append(cs, c)
				pos[k]++
			}
		}
		if len(cs) == 1 {
			if shift == 0 {
				total += cs[0].n
			} else {
				total += cs[0].groups(shift)
			}
			continue
		}
		if allArr {
			// Sparse group: k-way merge of the sorted arrays directly.
			// The 8KB bitset scratch pays zero + OR + popcount per
			// group; per-day per-shard cells hold a handful of entries
			// each, so the merge is orders of magnitude cheaper there.
			total += arrayUnion(cs, cpos[:len(cs)], shift)
			continue
		}
		scratch = [1024]uint64{}
		for _, c := range cs {
			c.orInto(&scratch)
		}
		if shift == 0 {
			for _, w := range scratch {
				total += bits.OnesCount64(w)
			}
		} else {
			total += bitsetGroups(&scratch, shift)
		}
	}
}

// shardTargets is one shard's slice of the target index: a bitmap per
// day the shard covers, plus one for out-of-window rows (non-empty only
// on the boundary shards, where shardOf clamps strays).
type shardTargets struct {
	gen uint64
	day [shardDays]*targetBitmap
	out *targetBitmap
}

// mut returns a shardTargets the caller may mutate under generation g.
func (st *shardTargets) mut(g uint64) *shardTargets {
	if st.gen == g {
		return st
	}
	ns := *st
	ns.gen = g
	return &ns
}

// add stamps one row's target into its day cell (the out cell for
// out-of-window rows). The caller must own st.
func (st *shardTargets) add(g uint64, si int, start int64, t netx.Addr) {
	slot := &st.out
	if d := DayOf(start); d >= 0 && d < WindowDays {
		if rel := d - si*shardDays; rel >= 0 && rel < shardDays {
			slot = &st.day[rel]
		}
	}
	if *slot == nil {
		*slot = &targetBitmap{gen: g}
	} else {
		*slot = (*slot).mut(g)
	}
	(*slot).add(g, t)
}

// targetsIndex is the store-level target bitmap index, covering exactly
// the sealed rows of every shard (pending tails are folded in at query
// time as tiny tailTargets bitmaps). Like the count index it is built
// from scratch at most once — by the first distinct-target reader —
// registered for writer adoption with per-shard sealed watermarks, and
// from then on maintained by seal deltas.
type targetsIndex struct {
	gen    uint64
	shards [numShards]*shardTargets
}

// mut returns an index root the caller may mutate under generation g.
func (ti *targetsIndex) mut(g uint64) *targetsIndex {
	if ti.gen == g {
		return ti
	}
	nt := *ti
	nt.gen = g
	return &nt
}

// addRows folds rows [lo, hi) of shard si into the index. The caller
// must own the root; deeper nodes are path-copied as needed.
func (ti *targetsIndex) addRows(g uint64, si int, sh *shard, lo, hi int) {
	if lo >= hi {
		return
	}
	st := ti.shards[si]
	if st == nil {
		st = &shardTargets{gen: g}
	} else {
		st = st.mut(g)
	}
	ti.shards[si] = st
	for i := lo; i < hi; i++ {
		st.add(g, si, sh.start[i], sh.target[i])
	}
}

// buildTargets constructs a fresh index over the sealed rows of the
// given shard snapshots, recording per-shard watermarks.
func buildTargets(shards []*shard) (*targetsIndex, [numShards]int32) {
	g := tgtGen.Add(1)
	ti := &targetsIndex{gen: g}
	var sealedAt [numShards]int32
	for si, sh := range shards {
		ti.addRows(g, si, sh, 0, sh.sealed)
		sealedAt[si] = int32(sh.sealed)
	}
	return ti, sealedAt
}

// tailTargets builds a query-time shardTargets over the pending tail
// rows [sealed, rows) — at most sealTailMax rows — so distinct-target
// terminals treat an unsealed tail as one more bitmap in the union.
// Returns nil when the tail is empty.
func tailTargets(sh *shard, si int) *shardTargets {
	if sh.sealed == sh.rows() {
		return nil
	}
	g := tgtGen.Add(1)
	st := &shardTargets{gen: g}
	for i := sh.sealed; i < sh.rows(); i++ {
		st.add(g, si, sh.start[i], sh.target[i])
	}
	return st
}

// appendShardBitmaps collects st's bitmaps for the in-window days
// [dlo, dhi] (absolute day indexes), plus the out-of-window cell when
// includeOut is set.
func appendShardBitmaps(dst []*targetBitmap, st *shardTargets, si, dlo, dhi int, includeOut bool) []*targetBitmap {
	if st == nil {
		return dst
	}
	base := si * shardDays
	for rel := 0; rel < shardDays; rel++ {
		if d := base + rel; d < dlo || d > dhi {
			continue
		}
		if tb := st.day[rel]; tb != nil {
			dst = append(dst, tb)
		}
	}
	if includeOut && st.out != nil {
		dst = append(dst, st.out)
	}
	return dst
}

package attack

import "testing"

// TestCloneIsDeep pins the blessed retain pattern the scratchescape
// analyzer points at: Clone must deep-copy Ports, so a retained clone
// is immune to both scratch reuse and arena aliasing.
func TestCloneIsDeep(t *testing.T) {
	e := &Event{
		Source: SourceTelescope, Vector: VectorUDP,
		Start: WindowStart, End: WindowStart + 60,
		Packets: 100, Bytes: 64000, MaxPPS: 12.5,
		Ports: []uint16{53, 80, 443},
	}
	c := e.Clone()
	if c == e {
		t.Fatal("Clone returned the same pointer")
	}
	if &c.Ports[0] == &e.Ports[0] {
		t.Fatal("Clone shares the Ports backing array")
	}

	// Mutating the original (scratch reuse between yields) must not
	// reach the clone.
	e.Start, e.Ports[0] = 0, 9999
	if c.Start != WindowStart || c.Ports[0] != 53 {
		t.Fatalf("clone changed with its source: start=%d ports=%v", c.Start, c.Ports)
	}
	if len(c.Ports) != 3 || c.Ports[1] != 80 || c.Ports[2] != 443 {
		t.Fatalf("clone ports = %v, want [53 80 443]", c.Ports)
	}
}

// TestCloneSurvivesIteration retains clones across a live Iter pass
// and checks they match a materialized snapshot — the exact usage the
// contract prescribes.
func TestCloneSurvivesIteration(t *testing.T) {
	st := NewStore(nil)
	for i := 0; i < 100; i++ {
		st.Add(Event{
			Start: WindowStart + int64(i)*3600, End: WindowStart + int64(i)*3600 + 60,
			Packets: uint64(i), Ports: []uint16{uint16(i), uint16(i + 1)},
		})
	}
	var kept []*Event
	for e := range st.Query().Iter() {
		kept = append(kept, e.Clone())
	}
	want := st.Query().Events()
	if len(kept) != len(want) {
		t.Fatalf("kept %d events, want %d", len(kept), len(want))
	}
	for i, e := range kept {
		if e.Start != want[i].Start || e.Packets != want[i].Packets {
			t.Fatalf("event %d: got (%d,%d), want (%d,%d)",
				i, e.Start, e.Packets, want[i].Start, want[i].Packets)
		}
		if len(e.Ports) != len(want[i].Ports) {
			t.Fatalf("event %d: ports %v, want %v", i, e.Ports, want[i].Ports)
		}
	}
}

package attack

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"doscope/internal/netx"
)

func sampleEvents() []Event {
	return []Event{
		{
			Source: SourceTelescope, Vector: VectorTCP,
			Target: netx.MustParseAddr("203.0.113.7"),
			Start:  WindowStart + 100, End: WindowStart + 400,
			Packets: 500, Bytes: 20000, MaxPPS: 12.5,
			Ports: []uint16{80},
		},
		{
			Source: SourceHoneypot, Vector: VectorNTP,
			Target: netx.MustParseAddr("203.0.113.7"),
			Start:  WindowStart + 300, End: WindowStart + 900,
			Packets: 10000, Bytes: 4_000_000, AvgRPS: 77,
		},
		{
			Source: SourceTelescope, Vector: VectorUDP,
			Target: netx.MustParseAddr("198.51.100.9"),
			Start:  WindowStart + 86400*3, End: WindowStart + 86400*3 + 60,
			Packets: 30, Bytes: 1200, MaxPPS: 0.6,
			Ports: []uint16{27015, 27016},
		},
	}
}

func TestEventAccessors(t *testing.T) {
	evs := sampleEvents()
	e := &evs[0]
	if e.Duration() != 300 {
		t.Errorf("Duration = %d", e.Duration())
	}
	if e.Day() != 0 {
		t.Errorf("Day = %d", e.Day())
	}
	if evs[2].Day() != 3 {
		t.Errorf("Day = %d", evs[2].Day())
	}
	if e.Intensity() != 12.5 {
		t.Errorf("telescope Intensity = %v", e.Intensity())
	}
	if evs[1].Intensity() != 77 {
		t.Errorf("honeypot Intensity = %v", evs[1].Intensity())
	}
	if e.EstimatedVictimPPS() != 12.5*256 {
		t.Errorf("EstimatedVictimPPS = %v", e.EstimatedVictimPPS())
	}
	if !e.SinglePort() || evs[2].SinglePort() {
		t.Error("SinglePort classification wrong")
	}
	if !e.TargetsWeb() {
		t.Error("port-80 TCP event should target Web")
	}
	if evs[2].TargetsWeb() {
		t.Error("UDP event cannot target Web per Table 8 semantics")
	}
}

func TestOverlaps(t *testing.T) {
	evs := sampleEvents()
	if !evs[0].Overlaps(&evs[1]) || !evs[1].Overlaps(&evs[0]) {
		t.Error("overlapping events not detected")
	}
	if evs[0].Overlaps(&evs[2]) {
		t.Error("disjoint events reported overlapping")
	}
	// Touching endpoints count as overlap (instantaneous joint attack).
	a := Event{Start: 100, End: 200}
	b := Event{Start: 200, End: 300}
	if !a.Overlaps(&b) {
		t.Error("touching events should overlap")
	}
}

func TestDayHelpers(t *testing.T) {
	if DayOf(WindowStart) != 0 {
		t.Error("DayOf(WindowStart) != 0")
	}
	if DayOf(WindowEnd-1) != WindowDays-1 {
		t.Errorf("DayOf(WindowEnd-1) = %d", DayOf(WindowEnd-1))
	}
	if DayStart(1)-DayStart(0) != 86400 {
		t.Error("DayStart spacing wrong")
	}
	d := Date(WindowStart)
	if d.Year() != 2015 || d.Month() != 3 || d.Day() != 1 {
		t.Errorf("window start = %v", d)
	}
	end := Date(WindowEnd - 86400)
	if end.Year() != 2017 || end.Month() != 2 || end.Day() != 28 {
		t.Errorf("window last day = %v (want 2017-02-28)", end)
	}
}

func TestVectorStringRoundTrip(t *testing.T) {
	for v := Vector(0); int(v) < NumVectors; v++ {
		got, err := ParseVector(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVector(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVector("bogus"); err == nil {
		t.Error("ParseVector accepted bogus vector")
	}
}

func TestVectorIsReflection(t *testing.T) {
	for _, v := range []Vector{VectorTCP, VectorUDP, VectorICMP, VectorOtherIP} {
		if v.IsReflection() {
			t.Errorf("%v misclassified as reflection", v)
		}
	}
	for _, v := range []Vector{VectorNTP, VectorDNS, VectorCharGen, VectorSSDP, VectorRIPv1, VectorQOTD, VectorMSSQL, VectorTFTP} {
		if !v.IsReflection() {
			t.Errorf("%v misclassified as direct", v)
		}
	}
}

func TestStoreSortingAndStats(t *testing.T) {
	evs := sampleEvents()
	// Insert in reverse order; store must sort by start time.
	s := &Store{}
	for i := len(evs) - 1; i >= 0; i-- {
		s.Add(evs[i])
	}
	got := s.Events()
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatal("events not sorted by start")
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.UniqueTargets() != 2 {
		t.Errorf("UniqueTargets = %d", s.UniqueTargets())
	}
	if s.UniqueBlocks(24) != 2 {
		t.Errorf("UniqueBlocks(24) = %d", s.UniqueBlocks(24))
	}
	if s.UniqueBlocks(16) != 2 {
		t.Errorf("UniqueBlocks(16) = %d", s.UniqueBlocks(16))
	}
	if s.UniqueBlocks(8) != 2 {
		t.Errorf("UniqueBlocks(8) = %d", s.UniqueBlocks(8))
	}
	byTarget := s.ByTarget()
	if len(byTarget[netx.MustParseAddr("203.0.113.7")]) != 2 {
		t.Error("ByTarget grouping wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewStore(sampleEvents())
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Events(), got.Events()) {
		t.Fatalf("round trip mismatch:\n%v\n%v", s.Events(), got.Events())
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("nope\n")); err == nil {
		t.Error("garbage CSV accepted")
	}
	bad := "source,vector,target,start,end,packets,bytes,max_pps,avg_rps,ports\n" +
		"telescope,TCP,not-an-ip,0,0,0,0,0,0,\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad)); err == nil {
		t.Error("bad target accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := NewStore(sampleEvents())
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Events(), got.Events()) {
		t.Fatalf("round trip mismatch")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		events := make([]Event, int(n)%64)
		for i := range events {
			e := Event{
				Source:  Source(rng.Intn(2)),
				Vector:  Vector(rng.Intn(NumVectors)),
				Target:  netx.Addr(rng.Uint32()),
				Start:   WindowStart + rng.Int63n(WindowDays*86400),
				Packets: rng.Uint64() % 1e9,
				Bytes:   rng.Uint64() % 1e12,
				MaxPPS:  rng.Float64() * 1e5,
				AvgRPS:  rng.Float64() * 1e5,
			}
			e.End = e.Start + rng.Int63n(86400)
			for j := 0; j < rng.Intn(5); j++ {
				e.Ports = append(e.Ports, uint16(rng.Intn(65536)))
			}
			events[i] = e
		}
		s := NewStore(events)
		var buf bytes.Buffer
		if err := s.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(s.Events(), got.Events())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("NOTMAGIC\x00\x00\x00\x00\x00\x00\x00\x00")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestServiceName(t *testing.T) {
	cases := []struct {
		v    Vector
		port uint16
		want string
	}{
		{VectorTCP, 80, "HTTP"},
		{VectorTCP, 443, "HTTPS"},
		{VectorTCP, 3306, "MySQL"},
		{VectorTCP, 53, "DNS"},
		{VectorTCP, 1723, "VPN PPTP"},
		{VectorUDP, 3306, "MySQL"},
		{VectorUDP, 27015, "27015"},
		{VectorUDP, 123, "NTP"},
		{VectorTCP, 27015, "27015"},
	}
	for _, c := range cases {
		if got := ServiceName(c.v, c.port); got != c.want {
			t.Errorf("ServiceName(%v,%d) = %q, want %q", c.v, c.port, got, c.want)
		}
	}
}

func TestWebPort(t *testing.T) {
	if !WebPort(80) || !WebPort(443) || WebPort(25) {
		t.Error("WebPort classification wrong")
	}
}

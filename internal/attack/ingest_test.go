package attack

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"doscope/internal/netx"
)

// ---------------------------------------------------------------------
// Multi-producer fixture: P producers, each with a sequence of tagged
// batches. Producer p is identified by its vector (VectorNTP+p) and a
// batch by the Packets field, so any observed event can be attributed
// to exactly one (producer, batch). Starts are globally unique (every
// (start, target) pair is distinct, making every sorted order
// deterministic) but shuffled across — and slightly outside — the
// window, so batches carry out-of-order days; targets are drawn from a
// small pool, so duplicates are everywhere.
// ---------------------------------------------------------------------

const (
	mpProducers = 3
	mpBatches   = 10
)

type mpTuple [mpProducers]int // applied-batch count per producer

type mpFixture struct {
	batches [mpProducers][mpBatches][]Event
	// cum[p][k]: events in p's first k batches; inWin is the in-window
	// subset (what CountByDay can see).
	cum   [mpProducers][mpBatches + 1]int
	inWin [mpProducers][mpBatches + 1]int
	// dayCum[p][k]: per-day histogram of p's first k batches.
	dayCum [mpProducers][mpBatches + 1][]int
	// tgtCum[p][k]: per-target counts of p's first k batches.
	tgtCum [mpProducers][mpBatches + 1]map[netx.Addr]int
	// byTotal maps a total event count to every tuple achieving it.
	byTotal map[int][]mpTuple

	mu      sync.Mutex
	oracles map[mpTuple]*mpOracle
}

// mpOracle is the from-scratch result set for one batch tuple.
type mpOracle struct {
	events []Event
	starts []int64
}

func mpVector(p int) Vector { return VectorNTP + Vector(p) }

func buildMPFixture(rng *rand.Rand) *mpFixture {
	f := &mpFixture{byTotal: make(map[int][]mpTuple), oracles: make(map[mpTuple]*mpOracle)}
	// Batch sizes vary from singletons up; total events stay modest so
	// the -race stress finishes quickly.
	total := 0
	var sizes [mpProducers][mpBatches]int
	for p := 0; p < mpProducers; p++ {
		for k := 0; k < mpBatches; k++ {
			sizes[p][k] = 1 + rng.Intn(40)
			total += sizes[p][k]
		}
	}
	// Globally unique starts, shuffled so consecutive batch events jump
	// across days (and a tenth land outside the window entirely).
	span := int64(WindowDays+20) * 86400
	step := span / int64(total)
	if step < 1 {
		step = 1
	}
	starts := make([]int64, total)
	for i := range starts {
		starts[i] = WindowStart - 10*86400 + int64(i)*step
	}
	rng.Shuffle(total, func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })

	next := 0
	for p := 0; p < mpProducers; p++ {
		f.dayCum[p][0] = make([]int, WindowDays)
		f.tgtCum[p][0] = map[netx.Addr]int{}
		for k := 0; k < mpBatches; k++ {
			evs := make([]Event, sizes[p][k])
			for j := range evs {
				evs[j] = Event{
					Source:  SourceHoneypot,
					Vector:  mpVector(p),
					Target:  netx.AddrFrom4(198, 51, 100, byte(rng.Intn(24))),
					Start:   starts[next],
					Packets: uint64(k),
					Bytes:   uint64(p),
					AvgRPS:  float64(next),
				}
				evs[j].End = evs[j].Start + 60
				next++
			}
			f.batches[p][k] = evs
			f.cum[p][k+1] = f.cum[p][k] + len(evs)
			f.inWin[p][k+1] = f.inWin[p][k]
			day := append([]int(nil), f.dayCum[p][k]...)
			tgt := make(map[netx.Addr]int, len(f.tgtCum[p][k]))
			for a, n := range f.tgtCum[p][k] {
				tgt[a] = n
			}
			for j := range evs {
				if d := DayOf(evs[j].Start); d >= 0 && d < WindowDays {
					day[d]++
					f.inWin[p][k+1]++
				}
				tgt[evs[j].Target]++
			}
			f.dayCum[p][k+1] = day
			f.tgtCum[p][k+1] = tgt
		}
	}
	var tup mpTuple
	f.enumTotals(0, 0, tup)
	return f
}

func (f *mpFixture) enumTotals(p, sum int, tup mpTuple) {
	if p == mpProducers {
		f.byTotal[sum] = append(f.byTotal[sum], tup)
		return
	}
	for k := 0; k <= mpBatches; k++ {
		tup[p] = k
		f.enumTotals(p+1, sum+f.cum[p][k], tup)
	}
}

// oracle returns (building on first use) the from-scratch store results
// for one tuple of applied batch prefixes.
func (f *mpFixture) oracle(tup mpTuple) *mpOracle {
	f.mu.Lock()
	defer f.mu.Unlock()
	if o := f.oracles[tup]; o != nil {
		return o
	}
	var union []Event
	for p := 0; p < mpProducers; p++ {
		for k := 0; k < tup[p]; k++ {
			union = append(union, f.batches[p][k]...)
		}
	}
	fresh := NewStore(union)
	o := &mpOracle{events: fresh.Query().Events()}
	for e := range fresh.Query().IterByStart() {
		o.starts = append(o.starts, e.Start)
	}
	f.oracles[tup] = o
	return o
}

// decompose attributes observed events to (producer, batch) tags and
// verifies the whole-batch prefix property: for each producer, batches
// appear fully or not at all, and batch k implies every batch before
// it. It returns the applied-batch tuple.
func (f *mpFixture) decompose(t *testing.T, terminal string, evs []Event) (mpTuple, bool) {
	t.Helper()
	var got [mpProducers][mpBatches]int
	for i := range evs {
		p := int(evs[i].Vector - VectorNTP)
		k := int(evs[i].Packets)
		if p < 0 || p >= mpProducers || k < 0 || k >= mpBatches {
			t.Errorf("%s observed alien event %+v", terminal, evs[i])
			return mpTuple{}, false
		}
		got[p][k]++
	}
	var tup mpTuple
	for p := 0; p < mpProducers; p++ {
		k := 0
		for ; k < mpBatches && got[p][k] == len(f.batches[p][k]); k++ {
		}
		for j := k; j < mpBatches; j++ {
			if got[p][j] != 0 {
				t.Errorf("%s observed a non-prefix batch set for producer %d: batch %d present (%d/%d events) with batch %d incomplete",
					terminal, p, j, got[p][j], len(f.batches[p][j]), k)
				return mpTuple{}, false
			}
		}
		tup[p] = k
	}
	return tup, true
}

// monotone enforces per-reader monotonicity: the applied tuple may only
// grow componentwise across one reader's successive observations.
func monotone(t *testing.T, terminal string, last *mpTuple, tup mpTuple) {
	t.Helper()
	for p := 0; p < mpProducers; p++ {
		if tup[p] < last[p] {
			t.Errorf("%s went back in time for producer %d: %d batches after %d", terminal, p, tup[p], last[p])
			return
		}
	}
	*last = tup
}

// TestConcurrentWritersOracle is the multi-producer extension of the PR
// 5 writer-vs-readers stress: N producer goroutines race Add/AddBatch
// (mixed sizes, duplicate targets, out-of-order days) against M
// concurrent readers, in both writer modes. Every observed terminal
// result must equal the from-scratch oracle of SOME serialization
// prefix of whole batches — batch-atomic, per-producer prefix-closed —
// and the prefixes one reader observes must be monotone. Run under
// -race (make race / CI) this is also the data-race proof for the MPSC
// ingest front.
func TestConcurrentWritersOracle(t *testing.T) {
	for _, mode := range []string{"sync", "queued"} {
		t.Run(mode, func(t *testing.T) {
			rng := rand.New(rand.NewSource(211))
			f := buildMPFixture(rng)
			st := &Store{}
			if mode == "queued" {
				st.StartIngest(IngestConfig{Tick: 0}) // continuous: drain whenever batches are queued
			}

			var writersDone sync.WaitGroup
			var done bool
			var doneMu sync.Mutex
			writersDone.Add(mpProducers)
			for p := 0; p < mpProducers; p++ {
				go func(p int) {
					defer writersDone.Done()
					for k := 0; k < mpBatches; k++ {
						if len(f.batches[p][k]) == 1 {
							st.Add(f.batches[p][k][0]) // exercise the singleton path too
						} else {
							st.AddBatch(f.batches[p][k])
						}
					}
				}(p)
			}
			go func() {
				writersDone.Wait()
				st.Flush() // queued mode: barrier before readers' final sweep
				doneMu.Lock()
				done = true
				doneMu.Unlock()
			}()

			const readers = 3
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					var last mpTuple
					for finished := false; !finished; {
						doneMu.Lock()
						finished = done
						doneMu.Unlock()
						switch r % 3 {
						case 0:
							evs := st.Query().Events()
							tup, ok := f.decompose(t, "Events", evs)
							if !ok {
								return
							}
							monotone(t, "Events", &last, tup)
							if o := f.oracle(tup); !reflect.DeepEqual(evs, o.events) {
								t.Errorf("Events diverged from the %v prefix oracle", tup)
								return
							}
						case 1:
							var obs []Event
							for e := range st.Query().IterByStart() {
								obs = append(obs, *e.Clone())
							}
							tup, ok := f.decompose(t, "IterByStart", obs)
							if !ok {
								return
							}
							monotone(t, "IterByStart", &last, tup)
							o := f.oracle(tup)
							for i := range obs {
								if obs[i].Start != o.starts[i] {
									t.Errorf("IterByStart order diverged from the %v prefix oracle at %d", tup, i)
									return
								}
							}
						case 2:
							// Counting terminals: each producer's vector count
							// must sit exactly on one of its batch boundaries.
							vec := st.Query().CountByVector()
							var tup mpTuple
							for p := 0; p < mpProducers; p++ {
								k := -1
								for j := 0; j <= mpBatches; j++ {
									if vec[mpVector(p)] == f.cum[p][j] {
										k = j
										break
									}
								}
								if k < 0 {
									t.Errorf("CountByVector saw %d events for producer %d: not any whole-batch boundary", vec[mpVector(p)], p)
									return
								}
								tup[p] = k
							}
							monotone(t, "CountByVector", &last, tup)

							if n := st.Query().Count(); len(f.byTotal[n]) == 0 {
								t.Errorf("Count observed %d events: not any batch-serialization prefix", n)
								return
							}
							day := st.Query().CountByDay()
							if !f.dayMatchesSomePrefix(day) {
								t.Error("CountByDay matches no batch-serialization prefix")
								return
							}
							if !f.targetsMatchSomePrefix(st.Query().GroupByTarget()) {
								t.Error("GroupByTarget matches no batch-serialization prefix")
								return
							}
						}
					}
					// The final sweep ran after the done flag, which is set
					// only after every batch is published.
					full := mpTuple{mpBatches, mpBatches, mpBatches}
					if last != full {
						t.Errorf("reader %d finished at prefix %v, want %v", r, last, full)
					}
				}(r)
			}
			wg.Wait()
			if mode == "queued" {
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
			}
			if got := st.Query().Events(); !reflect.DeepEqual(got, f.oracle(mpTuple{mpBatches, mpBatches, mpBatches}).events) {
				t.Fatal("final store diverged from the full oracle")
			}
		})
	}
}

// dayMatchesSomePrefix reports whether an observed per-day histogram is
// the sum of some per-producer batch prefixes.
func (f *mpFixture) dayMatchesSomePrefix(day []int) bool {
	total := 0
	for _, n := range day {
		total += n
	}
	// Candidate tuples are constrained by the in-window total.
	for sum, tups := range f.byTotal {
		_ = sum
		for _, tup := range tups {
			in := 0
			for p := 0; p < mpProducers; p++ {
				in += f.inWin[p][tup[p]]
			}
			if in != total {
				continue
			}
			match := true
			for d := 0; d < WindowDays && match; d++ {
				want := 0
				for p := 0; p < mpProducers; p++ {
					want += f.dayCum[p][tup[p]][d]
				}
				match = day[d] == want
			}
			if match {
				return true
			}
		}
	}
	return false
}

// targetsMatchSomePrefix reports whether observed per-target event
// counts are the sum of some per-producer batch prefixes.
func (f *mpFixture) targetsMatchSomePrefix(groups map[netx.Addr][]*Event) bool {
	total := 0
	for _, evs := range groups {
		total += len(evs)
	}
	for _, tup := range f.byTotal[total] {
		match := true
		seen := 0
		for a, evs := range groups {
			want := 0
			for p := 0; p < mpProducers; p++ {
				want += f.tgtCum[p][tup[p]][a]
			}
			if len(evs) != want {
				match = false
				break
			}
			seen += want
		}
		if match && seen == total {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Drain/shutdown determinism.
// ---------------------------------------------------------------------

// TestQueuedPublicationCadence pins the tick model: queued batches are
// invisible (and the version unmoved) until a drain, and one drain
// publishes everything queued as a single view — two batches inside one
// tick never produce an intermediate state.
func TestQueuedPublicationCadence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	st := &Store{}
	st.StartIngest(IngestConfig{Tick: time.Hour}) // ticks never fire; Flush is the tick
	defer st.Close()

	b1, b2 := randomEvents(rng, 37), randomEvents(rng, 23)
	st.AddBatch(b1)
	st.AddBatch(b2)
	if n := st.Len(); n != 0 {
		t.Fatalf("queued batches visible before the tick: Len=%d", n)
	}
	if v := st.Version(); v != 0 {
		t.Fatalf("version moved before the tick: %d", v)
	}
	is := st.IngestStats()
	if is.Queued != 60 || is.Batches != 2 || !is.Async {
		t.Fatalf("pre-drain stats = %+v, want 60 queued in 2 batches, async", is)
	}

	st.Flush()
	if n := st.Len(); n != 60 {
		t.Fatalf("after the tick Len=%d, want 60", n)
	}
	if v := st.Version(); v != 60 {
		t.Fatalf("after the tick Version=%d, want 60", v)
	}
	is = st.IngestStats()
	if is.Queued != 0 || is.Batches != 0 || is.Drains != 1 || is.Coalesced != 2 {
		t.Fatalf("post-drain stats = %+v, want 0 queued, 1 drain coalescing 2 batches", is)
	}
	want := NewStore(append(append([]Event(nil), b1...), b2...)).Query().Events()
	if got := st.Query().Events(); !reflect.DeepEqual(got, want) {
		t.Fatal("tick-published store diverged from the two-batch oracle")
	}
}

// TestCloseExactlyOnce races producers against Close: every batch whose
// AddBatch returned must be applied exactly once — no loss from a
// stopping drainer, no double-apply from the final sweep — and the
// store must revert to working synchronous ingest afterwards.
func TestCloseExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := randomEvents(rng, mpProducers*240)
	st := &Store{}
	st.StartIngest(IngestConfig{Tick: 250 * time.Microsecond})

	var wg sync.WaitGroup
	for p := 0; p < mpProducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < 24; k++ {
				evs := make([]Event, 10)
				copy(evs, base[p*240+k*10:])
				for j := range evs {
					// Tag so every event is attributable: exactly-once is
					// checked per (producer, batch) tag.
					evs[j].Packets = uint64(p*1000 + k)
				}
				st.AddBatch(evs)
			}
		}(p)
	}
	// Race shutdown with the producers mid-stream.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Post-Close mutations fall back to synchronous ingest (visible on
	// return) rather than being dropped.
	st.Add(Event{Source: SourceHoneypot, Vector: VectorNTP, Target: netx.AddrFrom4(192, 0, 2, 1), Start: WindowStart + 5, End: WindowStart + 6, Packets: 999999})
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	counts := make(map[uint64]int)
	for e := range st.Query().Iter() {
		counts[e.Packets]++
	}
	for p := 0; p < mpProducers; p++ {
		for k := 0; k < 24; k++ {
			if got := counts[uint64(p*1000+k)]; got != 10 {
				t.Fatalf("batch (%d,%d) applied %d/10 times", p, k, got)
			}
		}
	}
	if counts[999999] != 1 {
		t.Fatalf("post-Close Add applied %d times, want 1", counts[999999])
	}
	if got, want := st.Len(), mpProducers*240+1; got != want {
		t.Fatalf("Len=%d, want %d", got, want)
	}
}

// TestFlushBarrier: a batch enqueued before Flush is queryable when
// Flush returns, and a closed-then-written store round-trips the full
// multiset (the flush/close contract WriteSegment/WriteBinary document).
func TestFlushBarrier(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	evs := randomEvents(rng, 300)
	st := &Store{}
	st.StartIngest(IngestConfig{Tick: time.Hour})
	for off := 0; off < len(evs); off += 50 {
		st.AddBatch(evs[off : off+50])
	}
	st.Flush()
	if got := st.Len(); got != len(evs) {
		t.Fatalf("after Flush Len=%d, want %d", got, len(evs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteSegment(&buf); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegment(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seg.Events(), NewStore(evs).Events()) {
		t.Fatal("written segment diverged from the ingested multiset")
	}
}

// TestBackpressureBound: producers at the queue bound block instead of
// growing the queue without limit, the drainer is kicked ahead of a
// distant tick, and nothing is lost.
func TestBackpressureBound(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	evs := randomEvents(rng, 2000)
	st := &Store{}
	st.StartIngest(IngestConfig{Tick: time.Hour, MaxQueue: 64})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for off := 0; off < len(evs); off += 25 {
			st.AddBatch(evs[off : off+25])
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("producer deadlocked at the backpressure bound")
	}
	st.Flush()
	if got := st.Len(); got != len(evs) {
		t.Fatalf("Len=%d, want %d", got, len(evs))
	}
	if is := st.IngestStats(); is.Drains < 2 {
		t.Fatalf("expected backpressure kicks to force multiple drains, got %+v", is)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStartIngestMisuse pins the mode machine's edges.
func TestStartIngestMisuse(t *testing.T) {
	st := &Store{}
	st.StartIngest(IngestConfig{Tick: time.Hour})
	mustPanic(t, "double StartIngest", func() { st.StartIngest(IngestConfig{}) })
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "StartIngest after Close", func() { st.StartIngest(IngestConfig{}) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

// TestSyncCombining drives many synchronous producers concurrently and
// checks the combining accounting: every batch is applied exactly once
// and the drain count is not larger than the batch count (producers
// coalesce instead of publishing one view each; with real concurrency
// it is typically much smaller).
func TestSyncCombining(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	evs := randomEvents(rng, 1600)
	st := &Store{}
	var wg sync.WaitGroup
	const producers = 8
	per := len(evs) / producers
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			mine := evs[p*per : (p+1)*per]
			for off := 0; off < len(mine); off += 20 {
				st.AddBatch(mine[off : off+20])
			}
		}(p)
	}
	wg.Wait()
	if got := st.Len(); got != len(evs) {
		t.Fatalf("Len=%d, want %d", got, len(evs))
	}
	is := st.IngestStats()
	wantBatches := uint64(len(evs) / 20)
	if is.Coalesced != wantBatches {
		t.Fatalf("Coalesced=%d, want %d", is.Coalesced, wantBatches)
	}
	if is.Drains > is.Coalesced {
		t.Fatalf("more drains (%d) than batches (%d)", is.Drains, is.Coalesced)
	}
	if !reflect.DeepEqual(st.Query().Events(), NewStore(evs).Events()) {
		t.Fatal("combined store diverged from the oracle")
	}
	_ = fmt.Sprintf("%d", is.Drains)
}

package attack

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"doscope/internal/netx"
)

// Shard geometry: events are bucketed by the day-of-window their Start
// falls in, shardDays days per shard. Days before the window collapse into
// the first shard and days beyond it into the last, so concatenating the
// shards in index order always reproduces the global (Start, Target) sort
// while Add only dirties a single shard instead of the whole store.
const (
	shardDays = 8
	numShards = (WindowDays + shardDays - 1) / shardDays
)

// shardOf maps a start timestamp to its shard index.
func shardOf(start int64) int {
	d := DayOf(start)
	if d < 0 {
		d = 0
	} else if d >= WindowDays {
		d = WindowDays - 1
	}
	return d / shardDays
}

// countsIndex is the store-level per-day rollup: in-window events counted
// by (day, source, vector), out-of-window events by (source, vector).
type countsIndex struct {
	day       [][2][NumVectors]int32 // len WindowDays
	out       [2][NumVectors]int32
	outTotal  int
	unindexed int
}

// rowRef addresses one event as a (shard, row) handle. References stay
// valid until the next Add (which re-sorts the shard's rows).
type rowRef struct {
	shard int32
	row   int32
}

// Store holds attack events sharded by day-of-window. Each shard keeps
// its events in a columnar struct-of-arrays layout (see shard) so filter
// and count scans touch only the columns they read. The by-target and
// per-day count indexes are built lazily on first use and invalidated by
// Add. Access events through Query; the Events slice contract is retained
// only as a deprecated compatibility shim.
//
// A Store is not safe for concurrent use without external synchronization:
// even read paths may build lazy indexes. Fold parallelizes internally
// after sealing the lazy state and is safe on its own.
type Store struct {
	shards  []shard
	length  int
	version uint64

	// lazily built, invalidated by Add
	flat    []Event // Events() compatibility cache
	counts  *countsIndex
	targets map[netx.Addr][]rowRef
}

// NewStore builds a store from events (which it copies).
func NewStore(events []Event) *Store {
	s := &Store{}
	for i := range events {
		s.Add(events[i])
	}
	return s
}

// Add appends an event, dirtying only the shard its start day falls in.
func (s *Store) Add(e Event) {
	if s.shards == nil {
		s.shards = make([]shard, numShards)
	}
	s.shards[shardOf(e.Start)].appendRow(&e)
	s.length++
	s.version++
	s.flat, s.counts, s.targets = nil, nil, nil
}

// Version counts mutations: it increments on every Add. Consumers caching
// results derived from a store can compare versions to detect staleness
// instead of invalidating on every call.
func (s *Store) Version() uint64 { return s.version }

// ensureSorted sorts any dirty shard (and refreshes its counts). Shards
// opened from a segment arrive sorted but uncounted; they get a single
// cheap pass over the key column on first use.
func (s *Store) ensureSorted() {
	for i := range s.shards {
		sh := &s.shards[i]
		if !sh.sorted {
			sh.sortAndCount()
		} else if !sh.counted {
			sh.countRows()
		}
	}
}

// ensureCounts builds the per-day count index from the hot columns.
func (s *Store) ensureCounts() {
	if s.counts != nil {
		return
	}
	s.ensureSorted()
	c := &countsIndex{day: make([][2][NumVectors]int32, WindowDays)}
	for si := range s.shards {
		sh := &s.shards[si]
		c.unindexed += sh.unindexed
		for i, k := range sh.key {
			src, vec := int(k>>8), int(k&0xff)
			if src >= 2 || vec >= NumVectors {
				continue
			}
			if d := DayOf(sh.start[i]); d >= 0 && d < WindowDays {
				c.day[d][src][vec]++
			} else {
				c.out[src][vec]++
				c.outTotal++
			}
		}
	}
	s.counts = c
}

// ensureTargets builds the by-target index of (shard, row) handles. The
// handles stay valid until the next Add.
func (s *Store) ensureTargets() {
	if s.targets != nil {
		return
	}
	s.ensureSorted()
	m := make(map[netx.Addr][]rowRef, s.length/2+1)
	for si := range s.shards {
		sh := &s.shards[si]
		for i, t := range sh.target {
			m[t] = append(m[t], rowRef{int32(si), int32(i)})
		}
	}
	s.targets = m
}

// Events returns all events sorted by (Start, Target). The returned
// events' Ports slices alias store-owned arena memory.
//
// Deprecated: Events materializes a full copy of the store on first call
// after a mutation; use Query with Iter, Count or Fold instead, which
// push filters down to shard and index pruning. Retained for persistence
// round-trip tests and external callers not yet migrated.
func (s *Store) Events() []Event {
	if s.flat == nil {
		s.ensureSorted()
		flat := make([]Event, 0, s.length)
		for i := range s.shards {
			sh := &s.shards[i]
			for r := 0; r < sh.rows(); r++ {
				var e Event
				sh.view(r, &e)
				flat = append(flat, e)
			}
		}
		s.flat = flat
	}
	return s.flat
}

// Len returns the number of events.
func (s *Store) Len() int { return s.length }

// ByTarget groups event indices (into Events()) by target address.
//
// Deprecated: use Query().GroupByTarget, which returns event copies
// without materializing the flat slice.
func (s *Store) ByTarget() map[netx.Addr][]int {
	evs := s.Events()
	out := make(map[netx.Addr][]int)
	for i := range evs {
		out[evs[i].Target] = append(out[evs[i].Target], i)
	}
	return out
}

// UniqueTargets returns the number of distinct target addresses. It
// reuses the by-target index when already built but does not force it:
// counting needs only the target column, not per-event handle slices.
func (s *Store) UniqueTargets() int {
	if s.targets != nil {
		return len(s.targets)
	}
	seen := make(map[netx.Addr]struct{}, s.length/2+1)
	for si := range s.shards {
		for _, t := range s.shards[si].target {
			seen[t] = struct{}{}
		}
	}
	return len(seen)
}

// UniqueBlocks returns distinct /24s, /16s given the mask length.
func (s *Store) UniqueBlocks(maskBits int) int {
	seen := make(map[netx.Addr]struct{}, s.length)
	for si := range s.shards {
		for _, t := range s.shards[si].target {
			seen[t.Mask(maskBits)] = struct{}{}
		}
	}
	return len(seen)
}

// --- CSV persistence -------------------------------------------------

var csvHeader = []string{
	"source", "vector", "target", "start", "end",
	"packets", "bytes", "max_pps", "avg_rps", "ports",
}

// WriteCSV writes the store in a stable text format.
func (s *Store) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	var ports strings.Builder
	var err error
	for e := range s.Query().Iter() {
		rec[0] = e.Source.String()
		rec[1] = e.Vector.String()
		rec[2] = e.Target.String()
		rec[3] = strconv.FormatInt(e.Start, 10)
		rec[4] = strconv.FormatInt(e.End, 10)
		rec[5] = strconv.FormatUint(e.Packets, 10)
		rec[6] = strconv.FormatUint(e.Bytes, 10)
		rec[7] = strconv.FormatFloat(e.MaxPPS, 'g', -1, 64)
		rec[8] = strconv.FormatFloat(e.AvgRPS, 'g', -1, 64)
		ports.Reset()
		for i, p := range e.Ports {
			if i > 0 {
				ports.WriteByte(';')
			}
			ports.WriteString(strconv.Itoa(int(p)))
		}
		rec[9] = ports.String()
		if err = cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a store written by WriteCSV.
func ReadCSV(r io.Reader) (*Store, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("attack: reading CSV header: %w", err)
	}
	if len(head) != len(csvHeader) || head[0] != "source" {
		return nil, fmt.Errorf("attack: unexpected CSV header %v", head)
	}
	s := &Store{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var e Event
		switch rec[0] {
		case "telescope":
			e.Source = SourceTelescope
		case "honeypot":
			e.Source = SourceHoneypot
		default:
			return nil, fmt.Errorf("attack: line %d: bad source %q", line, rec[0])
		}
		if e.Vector, err = ParseVector(rec[1]); err != nil {
			return nil, fmt.Errorf("attack: line %d: %w", line, err)
		}
		if e.Target, err = netx.ParseAddr(rec[2]); err != nil {
			return nil, fmt.Errorf("attack: line %d: %w", line, err)
		}
		if e.Start, err = strconv.ParseInt(rec[3], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: start: %w", line, err)
		}
		if e.End, err = strconv.ParseInt(rec[4], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: end: %w", line, err)
		}
		if e.Packets, err = strconv.ParseUint(rec[5], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: packets: %w", line, err)
		}
		if e.Bytes, err = strconv.ParseUint(rec[6], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: bytes: %w", line, err)
		}
		if e.MaxPPS, err = strconv.ParseFloat(rec[7], 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: max_pps: %w", line, err)
		}
		if e.AvgRPS, err = strconv.ParseFloat(rec[8], 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: avg_rps: %w", line, err)
		}
		if rec[9] != "" {
			start := 0
			str := rec[9]
			for i := 0; i <= len(str); i++ {
				if i == len(str) || str[i] == ';' {
					p, err := strconv.ParseUint(str[start:i], 10, 16)
					if err != nil {
						return nil, fmt.Errorf("attack: line %d: ports: %w", line, err)
					}
					e.Ports = append(e.Ports, uint16(p))
					start = i + 1
				}
			}
		}
		s.Add(e)
	}
	return s, nil
}

// --- binary persistence (DOSEVT01, record-oriented) -------------------

const binMagic = "DOSEVT01"

// maxEvents bounds the event counts a codec will accept from a header.
const maxEvents = 1 << 30

// WriteBinary writes the compact fixed-record DOSEVT01 encoding, roughly
// 5x smaller and 20x faster to load than CSV. For bulk captures prefer
// WriteSegment (DOSEVT02), whose column-oriented layout a reader can mmap
// and serve without decoding.
func (s *Store) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(s.length))
	if _, err := bw.Write(scratch[:]); err != nil {
		return err
	}
	var werr error
	for e := range s.Query().Iter() {
		var rec [56]byte
		rec[0] = byte(e.Source)
		rec[1] = byte(e.Vector)
		rec[2] = byte(len(e.Ports))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.Target))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(e.Start))
		binary.LittleEndian.PutUint64(rec[16:24], uint64(e.End))
		binary.LittleEndian.PutUint64(rec[24:32], e.Packets)
		binary.LittleEndian.PutUint64(rec[32:40], e.Bytes)
		binary.LittleEndian.PutUint64(rec[40:48], floatBits(e.MaxPPS))
		binary.LittleEndian.PutUint64(rec[48:56], floatBits(e.AvgRPS))
		if _, werr = bw.Write(rec[:]); werr != nil {
			return werr
		}
		for _, p := range e.Ports {
			binary.LittleEndian.PutUint16(scratch[:2], p)
			if _, werr = bw.Write(scratch[:2]); werr != nil {
				return werr
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a store written by WriteBinary. Source and Vector
// bytes are validated against their enum ranges rather than trusted.
func ReadBinary(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("attack: reading magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("attack: bad magic %q", magic)
	}
	var scratch [8]byte
	if _, err := io.ReadFull(br, scratch[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(scratch[:])
	if n > maxEvents {
		return nil, fmt.Errorf("attack: implausible event count %d", n)
	}
	s := &Store{}
	var portBuf [2 * 255]byte // record port count is one byte
	for i := uint64(0); i < n; i++ {
		var rec [56]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("attack: record %d: %w", i, err)
		}
		if rec[0] > byte(SourceHoneypot) {
			return nil, fmt.Errorf("attack: record %d: bad source %d", i, rec[0])
		}
		if int(rec[1]) >= NumVectors {
			return nil, fmt.Errorf("attack: record %d: bad vector %d", i, rec[1])
		}
		e := Event{
			Source:  Source(rec[0]),
			Vector:  Vector(rec[1]),
			Target:  netx.Addr(binary.LittleEndian.Uint32(rec[4:8])),
			Start:   int64(binary.LittleEndian.Uint64(rec[8:16])),
			End:     int64(binary.LittleEndian.Uint64(rec[16:24])),
			Packets: binary.LittleEndian.Uint64(rec[24:32]),
			Bytes:   binary.LittleEndian.Uint64(rec[32:40]),
			MaxPPS:  floatFromBits(binary.LittleEndian.Uint64(rec[40:48])),
			AvgRPS:  floatFromBits(binary.LittleEndian.Uint64(rec[48:56])),
		}
		if nPorts := int(rec[2]); nPorts > 0 {
			// One sized read for the whole port list instead of one
			// 2-byte read per port.
			pb := portBuf[:2*nPorts]
			if _, err := io.ReadFull(br, pb); err != nil {
				return nil, fmt.Errorf("attack: record %d: ports: %w", i, err)
			}
			e.Ports = make([]uint16, nPorts)
			for j := range e.Ports {
				e.Ports[j] = binary.LittleEndian.Uint16(pb[2*j:])
			}
		}
		s.Add(e)
	}
	return s, nil
}

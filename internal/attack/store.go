package attack

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doscope/internal/netx"
)

// Shard geometry: events are bucketed by the day-of-window their Start
// falls in, shardDays days per shard. Days before the window collapse into
// the first shard and days beyond it into the last, so concatenating the
// shards in index order always reproduces the global (Start, Target) sort
// while Add only touches a single shard instead of the whole store.
const (
	shardDays = 8
	numShards = (WindowDays + shardDays - 1) / shardDays
)

// sealTailMax bounds a shard's pending tail: Add seals the shard once
// the tail reaches this many rows, so queries between seals scan at
// most sealTailMax unsorted rows per shard. Each seal sorts the tail
// and merges it into the shard body's order index, so amortized append
// cost is O(log tail) plus O(body/sealTailMax) for the merge — bounded
// by the events of one 8-day shard, never the store (and the merge
// drops to O(tail) for append-ordered ingest, which skips the merge
// entirely).
const sealTailMax = 64

// shardOf maps a start timestamp to its shard index.
func shardOf(start int64) int {
	d := DayOf(start)
	if d < 0 {
		d = 0
	} else if d >= WindowDays {
		d = WindowDays - 1
	}
	return d / shardDays
}

// countsIndex is the store-level per-day rollup: in-window events counted
// by (day, source, vector), out-of-window events by (source, vector).
// It covers exactly the sealed rows of every shard — pending-tail rows
// are counted by a linear tail scan at query time and enter the index
// as deltas when their shard seals.
type countsIndex struct {
	day       [][2][NumVectors]int32 // len WindowDays
	out       [2][NumVectors]int32
	outTotal  int
	unindexed int
}

// rowRef addresses one event as a (shard, row) handle. Physical rows
// never move (sealing only rewrites the shard's order index), so a
// reference stays valid for the life of the store.
type rowRef struct {
	shard int32
	row   int32
}

// view is one published, immutable snapshot of a store: the shard
// snapshots (value copies of the shard headers — the column backing
// arrays are shared, which is safe because rows are append-only and
// permutation merges never rewrite entries below a published length),
// the event count and version, and the count index covering the sealed
// rows. The writer swaps a fresh view into Store.pub on every mutation;
// readers load it once per terminal and run against it lock-free.
//
// A view additionally owns the once-per-view lazy indexes: when the
// writer has never adopted an index, the first reader that needs it
// builds it here — from the view's own immutable data, coordinated by a
// sync.Once so concurrent readers share one build — and the writer
// adopts the result on its next mutation (see Store.adoptLazy).
type view struct {
	owner   *Store
	shards  []*shard // aliases shardArr; nil only for the empty view
	length  int
	version uint64

	// shardArr backs the shards slice inline so a publication is two
	// allocations (view + dirty-shard snapshot), not three. Snapshots
	// themselves stay separate heap objects: embedding them here would
	// chain every view to its predecessor and leak the whole history.
	shardArr [numShards]*shard

	// counts is the writer-maintained per-day index (nil until a reader
	// build has been adopted). It covers exactly the sealed rows.
	counts *countsIndex

	// targets is the writer-maintained target bitmap index (nil until
	// adopted). Like counts it covers exactly the sealed rows; pending
	// tails are folded in at query time (see tailTargets).
	targets *targetsIndex

	lazyCountsOnce  sync.Once
	lazyCounts      atomic.Pointer[countsIndex]
	lazyTgtOnce     sync.Once
	lazyTgt         atomic.Pointer[[][]int32]
	lazyTallyOnce   sync.Once
	lazyTally       atomic.Pointer[[]shardTally]
	lazyTargetsOnce sync.Once
	lazyTargets     atomic.Pointer[targetsIndex]
}

// shardTally is a read-side substitute for a shard's per-(source,
// vector) counts when the shard itself is uncounted (opened from a
// segment and never written): scans use it to keep pruning shards a
// filter cannot match. It covers ALL rows, tail included, like the
// writer-maintained counts.
type shardTally struct {
	counts    [2][NumVectors]int
	unindexed int
}

// shardTallies returns per-shard pruning tallies for the view's
// uncounted shards, built once per view on first use. For the static
// mmap-opened store (the doscope -load-events shape) the view never
// changes, so this is one key-column pass for the store's lifetime —
// the same cost the old read-side countRows paid, without mutating the
// shard. Counted shards keep zero entries here and are pruned through
// their own counts.
func (v *view) shardTallies() []shardTally {
	v.lazyTallyOnce.Do(func() {
		out := make([]shardTally, len(v.shards))
		for si, sh := range v.shards {
			if sh.counted {
				continue
			}
			t := &out[si]
			for _, k := range sh.key {
				src, vec := int(k>>8), int(k&0xff)
				if src < 2 && vec < NumVectors {
					t.counts[src][vec]++
				} else {
					t.unindexed++
				}
			}
		}
		v.lazyTally.Store(&out)
	})
	return *v.lazyTally.Load()
}

// emptyView serves reads against a store that has never published.
var emptyView view

// iterAll yields every event of the view in per-shard (Start, Target)
// order — the store-major order Iter uses — as a reused scratch view,
// merging pending tails on the fly. It backs the deprecated Events shim
// and the binary writers, which must iterate the exact snapshot whose
// length they recorded.
func (v *view) iterAll(yield func(*Event) bool) {
	var e Event
	for _, sh := range v.shards {
		c := newMergeCursor(sh)
		for i := c.next(); i >= 0; i = c.next() {
			sh.view(i, &e)
			if !yield(&e) {
				return
			}
		}
	}
}

// pendingRows reports how many rows are still in pending tails.
func (v *view) pendingRows() int {
	n := 0
	for _, sh := range v.shards {
		n += sh.tail()
	}
	return n
}

// builtCounts is a finished reader-side count-index build offered to
// the writer for adoption. sealedAt records, per shard, exactly how
// many sealed rows the index covers — the watermark the writer deltas
// from — so a build is adoptable even when the view it was computed
// against has long been superseded by further ingest.
type builtCounts struct {
	c        *countsIndex
	sealedAt [numShards]int32
}

// countsFor returns the per-day count index covering the view's sealed
// rows: the writer-maintained one when the store has adopted it,
// otherwise a once-per-view reader-side result. A finished from-scratch
// build registers itself on the store (first build wins); both the
// writer (on its next mutation) and every LATER view catch up from the
// registered build with per-shard watermark deltas instead of
// rebuilding, so under any read/write interleaving the store pays for
// one from-scratch count build plus cheap catch-ups — only a reader
// still holding a view older than the first completed build may pay an
// extra full build.
func (v *view) countsFor() *countsIndex {
	if v.counts != nil {
		return v.counts
	}
	v.lazyCountsOnce.Do(func() {
		var c *countsIndex
		if v.owner != nil {
			if b := v.owner.builtCounts.Load(); b != nil && v.atOrAfter(&b.sealedAt) {
				c = b.c.clone()
				for si, sh := range v.shards {
					for i := int(b.sealedAt[si]); i < sh.sealed; i++ {
						countDelta(c, sh.key[i], sh.start[i], 1)
					}
				}
			}
		}
		if c == nil {
			c = &countsIndex{day: make([][2][NumVectors]int32, WindowDays)}
			var b builtCounts
			b.c = c
			for si, sh := range v.shards {
				for i := 0; i < sh.sealed; i++ {
					countDelta(c, sh.key[i], sh.start[i], 1)
				}
				b.sealedAt[si] = int32(sh.sealed)
			}
			if v.owner != nil {
				v.owner.rebuilds.Add(1)
				v.owner.builtCounts.CompareAndSwap(nil, &b)
			}
		}
		v.lazyCounts.Store(c)
	})
	return v.lazyCounts.Load()
}

// builtTargets is a finished reader-side target-bitmap build offered to
// the writer for adoption, with the same per-shard sealed watermarks
// builtCounts carries.
type builtTargets struct {
	t        *targetsIndex
	sealedAt [numShards]int32
}

// targetsFor returns the target bitmap index covering the view's sealed
// rows: the writer-maintained one when adopted, otherwise a
// once-per-view reader-side result following exactly the countsFor
// protocol — catch up from the registered build via per-shard watermark
// deltas when one exists (path-copying under a fresh generation, so the
// registered nodes stay immutable), build from scratch and register
// otherwise.
func (v *view) targetsFor() *targetsIndex {
	if v.targets != nil {
		return v.targets
	}
	v.lazyTargetsOnce.Do(func() {
		var t *targetsIndex
		if v.owner != nil {
			if b := v.owner.builtTargets.Load(); b != nil && v.atOrAfter(&b.sealedAt) {
				g := tgtGen.Add(1)
				t = b.t.mut(g)
				for si, sh := range v.shards {
					t.addRows(g, si, sh, int(b.sealedAt[si]), sh.sealed)
				}
			}
		}
		if t == nil {
			var sealedAt [numShards]int32
			t, sealedAt = buildTargets(v.shards)
			if v.owner != nil {
				v.owner.rebuilds.Add(1)
				v.owner.builtTargets.CompareAndSwap(nil, &builtTargets{t: t, sealedAt: sealedAt})
			}
		}
		v.lazyTargets.Store(t)
	})
	return v.lazyTargets.Load()
}

// atOrAfter reports whether every shard of the view has sealed at least
// up to the build watermarks — i.e. the view was published at or after
// the state the registered build covers, so catching up only needs
// positive deltas over rows this snapshot can actually see.
func (v *view) atOrAfter(sealedAt *[numShards]int32) bool {
	for si, sh := range v.shards {
		if sh.sealed < int(sealedAt[si]) {
			return false
		}
	}
	return true
}

// tgtFor returns the per-shard by-target permutations covering the
// view's sealed rows, reusing writer-maintained permutations where they
// exist and building the rest once per view — from the registered build
// (extended by a sorted-merge over the rows sealed since, each
// permutation's length being its own watermark) when one exists, from
// scratch otherwise.
func (v *view) tgtFor() [][]int32 {
	v.lazyTgtOnce.Do(func() {
		var reg [][]int32
		if v.owner != nil {
			if tg := v.owner.builtTgt.Load(); tg != nil && len(*tg) == len(v.shards) {
				reg = *tg
			}
		}
		built := false
		out := make([][]int32, len(v.shards))
		for si, sh := range v.shards {
			switch {
			case sh.sealed == 0:
			case len(sh.tgt) == sh.sealed:
				out[si] = sh.tgt
			case reg != nil && len(reg[si]) == sh.sealed:
				out[si] = reg[si]
			case reg != nil && len(reg[si]) < sh.sealed:
				out[si] = sh.mergeTgtPerms(reg[si], sh.sortedTgtRows(len(reg[si]), sh.sealed))
			default:
				built = true
				out[si] = sh.sortedTgtRows(0, sh.sealed)
			}
		}
		if v.owner != nil && built {
			v.owner.rebuilds.Add(1)
			v.owner.builtTgt.CompareAndSwap(nil, &out)
		}
		v.lazyTgt.Store(&out)
	})
	return *v.lazyTgt.Load()
}

// Store holds attack events sharded by day-of-window. Each shard keeps
// its events in a columnar struct-of-arrays layout (see shard): a sorted
// body addressed through an order index plus a small unsorted pending
// tail that absorbs appends. The by-target and per-day count indexes are
// built from scratch at most once (by the first reader that needs them)
// and from then on maintained incrementally by the writer: sealing a
// shard applies index deltas for the newly sealed rows only, so mutation
// cost is proportional to the delta, not the store. Access events
// through Query; the Events slice contract is retained only as a
// deprecated compatibility shim.
//
// Concurrency: a Store is safe for any number of concurrent readers
// alongside any number of concurrent writers. Mutations route through
// an MPSC ingest queue (see ingest.go): producers enqueue whole
// batches, and a single drainer applies every queued batch, seals each
// touched shard at most once, and atomically publishes ONE immutable
// view covering all of them. By default the drainer role is taken
// inline by a producer, so Add/AddBatch still return only after their
// batch is published (read-your-writes), with concurrent producers'
// batches coalescing into one publication; after StartIngest a
// background drainer publishes once per tick instead and producers
// only enqueue. Either way batches apply in enqueue order — one
// serialization of the producers' batch sequences — every published
// view covers a whole-batch prefix of that order (an AddBatch becomes
// visible all at once, never partially), and no read path ever takes a
// lock, seals a tail, or mutates shard state.
type Store struct {
	// pub is the published immutable view readers load. It is only ever
	// swapped by a writer holding mu.
	pub atomic.Pointer[view]

	mu sync.Mutex // serializes mutators; never taken by readers

	// Writer-private canonical state, guarded by mu.
	shards  []shard
	length  int
	version uint64
	dirty   []bool // per-shard: touched since the last publish

	// counts is the canonical per-day index once adopted (nil before).
	// countsShared marks it as referenced by a published view: the next
	// delta application clones it first (copy-on-write), so published
	// cells are never rewritten.
	counts       *countsIndex
	countsShared bool
	// tgtMaintained marks the per-shard by-target permutations as
	// adopted: seals merge into them from then on.
	tgtMaintained bool
	// targets is the canonical target bitmap index once adopted (nil
	// before). targetsShared marks it as referenced by a published view:
	// the next delta application re-roots it under a fresh generation
	// (gen-stamped path-copy-on-write — see bitmap.go), so published
	// nodes are never rewritten.
	targets       *targetsIndex
	targetsShared bool
	targetsGen    uint64
	// shardsCounted marks the one-time writer-side counting pass over
	// segment-opened shards as done (heap shards count incrementally
	// from their first append).
	shardsCounted bool

	// builtCounts and builtTgt are finished reader-side index builds
	// waiting for writer adoption (registered by the first build to
	// complete, from whatever view it ran against; the writer deltas
	// them up to date when it adopts).
	builtCounts  atomic.Pointer[builtCounts]
	builtTgt     atomic.Pointer[[][]int32]
	builtTargets atomic.Pointer[builtTargets]

	// rebuilds counts from-scratch index constructions (the once-per-
	// lifetime lazy builds); sealOps counts shard seals. Incremental
	// maintenance never touches rebuilds, and no read path touches
	// either: tests assert both stay put under pure query traffic.
	rebuilds atomic.Uint64
	sealOps  atomic.Uint64

	// Query-execution counters (see ExecStats): per-shard tasks by kind
	// and bitmap-index hit/miss attribution for distinct-target
	// terminals. Bumped from read paths like rebuilds — observability
	// atomics, not store state.
	execScanTasks   atomic.Uint64
	execProbeTasks  atomic.Uint64
	execBitmapTasks atomic.Uint64
	bitmapHits      atomic.Uint64
	bitmapMisses    atomic.Uint64

	// MPSC ingest front (see ingest.go). qmu guards the queue fields;
	// it is held only for enqueue/snapshot bookkeeping, never during
	// apply or publication. drainSem is the cap-1 drainer-role token:
	// whoever holds it is the one goroutine draining the queue.
	qmu       sync.Mutex
	qcond     *sync.Cond      // backpressure: signaled when a drain frees space
	queue     []*pendingBatch // enqueued batches, in arrival order
	queued    int             // events enqueued, not yet published
	maxQueue  int             // backpressure bound (events); set by ensureIngest
	drainSem  chan struct{}
	drainKick chan struct{} // wakes the background drainer ahead of its tick
	drainTick time.Duration
	drainStop chan struct{}
	drainerWG sync.WaitGroup
	drainerOn bool // queued mode active (guarded by qmu)
	ingClosed bool // Close called; store reverted to synchronous mode

	// ingDrains counts drains that applied at least one batch;
	// ingCoalesced counts batches applied (their ratio is the
	// combining factor /v1/stats reports).
	ingDrains    atomic.Uint64
	ingCoalesced atomic.Uint64
}

// view returns the current published snapshot (an empty one for a store
// that has never been written).
func (s *Store) view() *view {
	if v := s.pub.Load(); v != nil {
		return v
	}
	return &emptyView
}

// NewStore builds a store from events (which it copies).
func NewStore(events []Event) *Store {
	s := &Store{}
	s.AddBatch(events)
	return s
}

// beginWrite prepares writer state for a mutation: allocates the shard
// array on first use, gives segment-opened shards their one counting
// pass (so pruning stops depending on per-view read-side tallies the
// moment the store takes writes), and adopts any registered
// reader-built lazy indexes, so this mutation's seal deltas keep them
// current instead of forcing readers to rebuild per view. It reports
// whether an index was adopted, so Seal knows adoption alone warrants a
// publication.
func (s *Store) beginWrite() (adopted bool) {
	if s.shards == nil {
		s.shards = make([]shard, numShards)
	}
	if s.dirty == nil {
		s.dirty = make([]bool, numShards)
	}
	if !s.shardsCounted {
		for si := range s.shards {
			if sh := &s.shards[si]; sh.rows() > 0 && !sh.counted {
				sh.countRows()
				s.dirty[si] = true
			}
		}
		s.shardsCounted = true
	}
	return s.adoptLazy()
}

// adoptLazy promotes registered reader-built indexes into
// writer-maintained state. A build is registered with per-shard sealed
// watermarks, and rows seal strictly in physical order, so whatever
// sealed after the build ran is exactly the physical rows
// [watermark, sealed) of each shard — the writer catches the index up
// with deltas over just those rows, even if many mutations were
// published since the build's view. Adoption therefore cannot be
// starved by a busy writer: any completed build is eventually adopted
// and maintained by seal deltas from then on. The adopted structures
// stay shared with published readers — the count index is cloned
// before any delta, and the by-target permutations are extended with
// the same non-destructive append-or-reallocate merges sealing uses.
func (s *Store) adoptLazy() (adopted bool) {
	if s.counts == nil {
		if b := s.builtCounts.Load(); b != nil {
			c, shared := b.c, true
			for si := range s.shards {
				sh := &s.shards[si]
				lo := int(b.sealedAt[si])
				if lo >= sh.sealed {
					continue
				}
				if shared {
					c, shared = c.clone(), false
				}
				for i := lo; i < sh.sealed; i++ {
					countDelta(c, sh.key[i], sh.start[i], 1)
				}
			}
			s.counts, s.countsShared = c, shared
			// Drop the registration: re-adoption is gated on s.counts,
			// so holding the build would only pin dead memory.
			s.builtCounts.Store(nil)
			adopted = true
		}
	} else if s.builtCounts.Load() != nil {
		// A reader still holding a pre-adoption view registered a build
		// after the writer adopted; nothing will ever consume it.
		s.builtCounts.Store(nil)
	}
	if s.targets == nil {
		if b := s.builtTargets.Load(); b != nil {
			t := b.t
			g := t.gen
			owned := false
			for si := range s.shards {
				sh := &s.shards[si]
				lo := int(b.sealedAt[si])
				if lo >= sh.sealed {
					continue
				}
				if !owned {
					g = tgtGen.Add(1)
					t = t.mut(g)
					owned = true
				}
				t.addRows(g, si, sh, lo, sh.sealed)
			}
			s.targets, s.targetsGen = t, g
			// The registered root stays shared until this writer needs to
			// mutate again post-publication; the generation fence makes
			// that safe without tracking which nodes are shared.
			s.targetsShared = !owned
			s.builtTargets.Store(nil)
			adopted = true
		}
	} else if s.builtTargets.Load() != nil {
		s.builtTargets.Store(nil)
	}
	if !s.tgtMaintained {
		if tg := s.builtTgt.Load(); tg != nil && len(*tg) == len(s.shards) {
			for si := range s.shards {
				sh := &s.shards[si]
				if p := (*tg)[si]; len(p) > 0 || sh.sealed > 0 {
					sh.tgt = p
					if len(p) < sh.sealed {
						sh.sealTgt(len(p), sh.sealed)
					}
					s.dirty[si] = true
				}
			}
			s.tgtMaintained = true
			s.builtTgt.Store(nil)
			adopted = true
		}
	} else if s.builtTgt.Load() != nil {
		s.builtTgt.Store(nil)
	}
	return adopted
}

// ownCounts makes the canonical count index writable: if the current
// pointer is shared with a published view it is cloned first, so
// readers of that view keep consistent cells.
func (s *Store) ownCounts() {
	if s.countsShared {
		s.counts = s.counts.clone()
		s.countsShared = false
	}
}

// ownTargets makes the canonical target bitmap index writable: if the
// current root is shared with a published view, mutation moves to a
// fresh generation, re-rooting the index so shared nodes are
// path-copied on first touch instead of cloned wholesale.
func (s *Store) ownTargets() {
	if s.targetsShared {
		s.targetsGen = tgtGen.Add(1)
		s.targets = s.targets.mut(s.targetsGen)
		s.targetsShared = false
	}
}

// clone deep-copies the index (the day slice is the only reference).
func (c *countsIndex) clone() *countsIndex {
	cp := *c
	cp.day = slices.Clone(c.day)
	return &cp
}

// ingest appends one event to its shard and marks the shard dirty.
func (s *Store) ingest(e *Event) int {
	si := shardOf(e.Start)
	s.shards[si].appendRow(e)
	s.dirty[si] = true
	return si
}

// publish snapshots every dirty shard and swaps a fresh view in. Shard
// snapshots are value copies of the shard header (slice headers and the
// per-shard count array); the column arrays are shared with the
// canonical state, which only ever appends past the snapshotted lengths
// or replaces whole permutation slices — never rewrites what a
// published header can reach.
func (s *Store) publish() {
	prev := s.pub.Load()
	nv := &view{owner: s, length: s.length, version: s.version, counts: s.counts}
	nv.shards = nv.shardArr[:len(s.shards)]
	if prev != nil && len(prev.shards) == len(s.shards) {
		copy(nv.shards, prev.shards)
		for si, d := range s.dirty {
			if d {
				snap := s.shards[si]
				nv.shards[si] = &snap
			}
		}
	} else {
		for si := range s.shards {
			snap := s.shards[si]
			nv.shards[si] = &snap
		}
	}
	for si := range s.dirty {
		s.dirty[si] = false
	}
	s.countsShared = s.counts != nil
	nv.targets = s.targets
	s.targetsShared = s.targets != nil
	s.pub.Store(nv)
}

// Add appends one event through the ingest queue. In synchronous mode
// (the default) it returns once the event is published — visible to
// every subsequent query — possibly coalesced into one publication
// with other producers' concurrent batches; in queued mode (after
// StartIngest) it enqueues and returns, and the event publishes on the
// next drain tick. The event parks in its shard's pending tail, which
// seals automatically once it reaches sealTailMax rows; until then the
// row is served by a linear tail scan. No index is invalidated and
// nothing is re-sorted (see sealTailMax).
func (s *Store) Add(e Event) {
	s.AddBatch([]Event{e})
}

// AddBatch appends a batch of events through the ingest queue. The
// batch is published atomically — concurrent readers see either none
// or all of it, and batches land in enqueue order. In synchronous mode
// (the default) AddBatch returns only after publication; concurrent
// batches coalesce into a single drain, which checks the seal
// threshold once per shard for all of them and publishes one view. In
// queued mode (after StartIngest) AddBatch enqueues and returns — the
// store takes ownership of the slice until the batch publishes on the
// next drain tick, and Flush is the visibility barrier. Producers
// block only when the queue is at its backpressure bound. This is the
// preferred ingest path for periodic flushes (e.g. the amppot live
// pipeline); small flushes simply park in the pending tails, which
// every query sees.
func (s *Store) AddBatch(events []Event) {
	if len(events) == 0 {
		return
	}
	b, async, kick := s.enqueue(events)
	if kick {
		select {
		case s.drainKick <- struct{}{}:
		default:
		}
	}
	if async {
		return
	}
	s.drainOrWait(b)
}

// Version counts published mutations: it advances by the event count
// of every batch a drain publishes. In synchronous mode that means
// every Add/AddBatch moves it before returning; in queued mode it
// moves once per drain tick, by everything the tick coalesced —
// consumers caching results derived from a store compare versions to
// detect staleness, so a cached body stays valid exactly until a tick
// actually changes what queries can observe.
func (s *Store) Version() uint64 { return s.view().version }

// sealShard merges shard si's pending tail into its sorted body and
// applies index deltas for the newly sealed rows: countsIndex day/out
// cells are incremented (on a private clone if the index is shared with
// a published view) and by-target permutations merged, for the new rows
// only. Existing references stay valid — sealing rewrites order
// indexes, never the rows. Callers hold mu.
func (s *Store) sealShard(si int) {
	sh := &s.shards[si]
	lo := sh.sealed
	n := sh.rows()
	if lo == n {
		return
	}
	sh.seal(s.tgtMaintained)
	s.sealOps.Add(1)
	s.dirty[si] = true
	if s.counts != nil {
		s.ownCounts()
		for i := lo; i < n; i++ {
			countDelta(s.counts, sh.key[i], sh.start[i], 1)
		}
	}
	if s.targets != nil {
		s.ownTargets()
		s.targets.addRows(s.targetsGen, si, sh, lo, n)
	}
}

// countDelta applies one row's contribution to the count index.
func countDelta(c *countsIndex, key uint16, start int64, by int32) {
	src, vec := int(key>>8), int(key&0xff)
	if src >= 2 || vec >= NumVectors {
		c.unindexed += int(by)
		return
	}
	if d := DayOf(start); d >= 0 && d < WindowDays {
		c.day[d][src][vec] += by
	} else {
		c.out[src][vec] += by
		c.outTotal += int(by)
	}
}

// Seal merges every shard's pending tail into its sorted body, brings
// the adopted indexes up to date via deltas, and publishes the result.
// Sealing is a writer-side convenience, not a query prerequisite:
// terminals that need sorted order merge pending tails on the fly, and
// counting terminals answer from the index plus bounded tail scans.
// Seal covers the batches already drained into the shards; in queued
// mode, call Flush first to drain the ingest queue as well.
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shards == nil {
		return
	}
	adopted := s.beginWrite()
	for si := range s.shards {
		if s.shards[si].tail() > 0 {
			s.sealShard(si)
		}
	}
	if !adopted {
		// Adoption alone must publish too: the adopted count index only
		// reaches readers through a view.
		for _, d := range s.dirty {
			if d {
				adopted = true
				break
			}
		}
	}
	if adopted {
		s.publish()
	}
}

// pendingRows reports how many appended rows are still in pending
// tails (not yet covered by the incrementally maintained indexes).
func (s *Store) pendingRows() int { return s.view().pendingRows() }

// Events returns a fresh copy of all events sorted by (Start, Target).
// The returned slice is the caller's to mutate, but the events' Ports
// slices still alias store-owned arena memory. Like every read path it
// runs against the published view and is safe under concurrent ingest.
//
// Deprecated: Events materializes a full copy of the store on every
// call; use Query with Iter, Count or Fold instead, which push filters
// down to shard and index pruning. Retained for persistence round-trip
// tests and external callers not yet migrated.
func (s *Store) Events() []Event {
	v := s.view()
	flat := make([]Event, 0, v.length)
	for e := range v.iterAll {
		flat = append(flat, *e)
	}
	return flat
}

// Len returns the number of events.
func (s *Store) Len() int { return s.view().length }

// ByTarget groups event indices (positions in the slice the deprecated
// Events method returns) by target address.
//
// Deprecated: use Query().GroupByTarget, which returns event copies
// without materializing the flat slice.
func (s *Store) ByTarget() map[netx.Addr][]int {
	evs := s.Events()
	out := make(map[netx.Addr][]int)
	for i := range evs {
		out[evs[i].Target] = append(out[evs[i].Target], i)
	}
	return out
}

// UniqueTargets returns the number of distinct target addresses,
// answered from the target bitmap index (built lazily once, maintained
// by seal deltas) by container union and popcount.
func (s *Store) UniqueTargets() int {
	return s.Query().CountDistinctTargets()
}

// UniqueBlocks returns distinct /24s, /16s given the mask length,
// answered from the target bitmap index by prefix-group counting.
func (s *Store) UniqueBlocks(maskBits int) int {
	return s.Query().CountDistinctBlocks(maskBits)
}

// --- CSV persistence -------------------------------------------------

var csvHeader = []string{
	"source", "vector", "target", "start", "end",
	"packets", "bytes", "max_pps", "avg_rps", "ports",
}

// WriteCSV writes the store in a stable text format.
func (s *Store) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	var ports strings.Builder
	var err error
	for e := range s.Query().Iter() {
		rec[0] = e.Source.String()
		rec[1] = e.Vector.String()
		rec[2] = e.Target.String()
		rec[3] = strconv.FormatInt(e.Start, 10)
		rec[4] = strconv.FormatInt(e.End, 10)
		rec[5] = strconv.FormatUint(e.Packets, 10)
		rec[6] = strconv.FormatUint(e.Bytes, 10)
		rec[7] = strconv.FormatFloat(e.MaxPPS, 'g', -1, 64)
		rec[8] = strconv.FormatFloat(e.AvgRPS, 'g', -1, 64)
		ports.Reset()
		for i, p := range e.Ports {
			if i > 0 {
				ports.WriteByte(';')
			}
			ports.WriteString(strconv.Itoa(int(p)))
		}
		rec[9] = ports.String()
		if err = cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a store written by WriteCSV.
func ReadCSV(r io.Reader) (*Store, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("attack: reading CSV header: %w", err)
	}
	if len(head) != len(csvHeader) || head[0] != "source" {
		return nil, fmt.Errorf("attack: unexpected CSV header %v", head)
	}
	// Accumulate and build with one AddBatch: a decode is private until
	// it returns, so per-record view publication would be pure overhead.
	var events []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var e Event
		switch rec[0] {
		case "telescope":
			e.Source = SourceTelescope
		case "honeypot":
			e.Source = SourceHoneypot
		default:
			return nil, fmt.Errorf("attack: line %d: bad source %q", line, rec[0])
		}
		if e.Vector, err = ParseVector(rec[1]); err != nil {
			return nil, fmt.Errorf("attack: line %d: %w", line, err)
		}
		if e.Target, err = netx.ParseAddr(rec[2]); err != nil {
			return nil, fmt.Errorf("attack: line %d: %w", line, err)
		}
		if e.Start, err = strconv.ParseInt(rec[3], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: start: %w", line, err)
		}
		if e.End, err = strconv.ParseInt(rec[4], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: end: %w", line, err)
		}
		if e.Packets, err = strconv.ParseUint(rec[5], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: packets: %w", line, err)
		}
		if e.Bytes, err = strconv.ParseUint(rec[6], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: bytes: %w", line, err)
		}
		if e.MaxPPS, err = strconv.ParseFloat(rec[7], 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: max_pps: %w", line, err)
		}
		if e.AvgRPS, err = strconv.ParseFloat(rec[8], 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: avg_rps: %w", line, err)
		}
		if rec[9] != "" {
			start := 0
			str := rec[9]
			for i := 0; i <= len(str); i++ {
				if i == len(str) || str[i] == ';' {
					// Skip empty tokens so trailing or doubled
					// separators ("80;", "80;;443") round-trip instead
					// of failing with a bare strconv error.
					if i > start {
						p, err := strconv.ParseUint(str[start:i], 10, 16)
						if err != nil {
							return nil, fmt.Errorf("attack: line %d: ports: %w", line, err)
						}
						e.Ports = append(e.Ports, uint16(p))
					}
					start = i + 1
				}
			}
		}
		events = append(events, e)
	}
	return NewStore(events), nil
}

// --- binary persistence (DOSEVT01, record-oriented) -------------------

const binMagic = "DOSEVT01"

// maxEvents bounds the event counts a codec will accept from a header.
const maxEvents = 1 << 30

// maxBinPorts is DOSEVT01's per-record port-list limit: the record
// stores the count in one byte. WriteBinary clamps longer lists (which
// can only arise via Add with hand-built events; the sensor pipelines
// cap at MaxTrackedPorts) so the stream stays parseable instead of
// wrapping mod 256 and desynchronizing every following record.
const maxBinPorts = 255

// WriteBinary writes the compact fixed-record DOSEVT01 encoding, roughly
// 5x smaller and 20x faster to load than CSV. Port lists longer than
// maxBinPorts are truncated to the format limit; use WriteSegment
// (DOSEVT02) for lossless persistence of oversized lists — its
// column-oriented layout a reader can also mmap and serve without
// decoding.
//
// Like every read path, WriteBinary (and WriteSegment) serializes the
// published view: batches still in the ingest queue of a queued-mode
// store are not included. Call Flush (or Close, when the capture is
// ending) first to make the file cover everything enqueued — the
// amppot shutdown sequence does exactly that before its -out write.
func (s *Store) WriteBinary(w io.Writer) error {
	// One view snapshot covers both the header count and the record
	// loop, so a concurrent writer cannot desynchronize the stream.
	v := s.view()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(v.length))
	if _, err := bw.Write(scratch[:]); err != nil {
		return err
	}
	var werr error
	for e := range v.iterAll {
		nPorts := len(e.Ports)
		if nPorts > maxBinPorts {
			nPorts = maxBinPorts
		}
		var rec [56]byte
		rec[0] = byte(e.Source)
		rec[1] = byte(e.Vector)
		rec[2] = byte(nPorts)
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.Target))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(e.Start))
		binary.LittleEndian.PutUint64(rec[16:24], uint64(e.End))
		binary.LittleEndian.PutUint64(rec[24:32], e.Packets)
		binary.LittleEndian.PutUint64(rec[32:40], e.Bytes)
		binary.LittleEndian.PutUint64(rec[40:48], floatBits(e.MaxPPS))
		binary.LittleEndian.PutUint64(rec[48:56], floatBits(e.AvgRPS))
		if _, werr = bw.Write(rec[:]); werr != nil {
			return werr
		}
		for _, p := range e.Ports[:nPorts] {
			binary.LittleEndian.PutUint16(scratch[:2], p)
			if _, werr = bw.Write(scratch[:2]); werr != nil {
				return werr
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a store written by WriteBinary. Source and Vector
// bytes are validated against their enum ranges rather than trusted.
func ReadBinary(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("attack: reading magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("attack: bad magic %q", magic)
	}
	var scratch [8]byte
	if _, err := io.ReadFull(br, scratch[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(scratch[:])
	if n > maxEvents {
		return nil, fmt.Errorf("attack: implausible event count %d", n)
	}
	events := make([]Event, 0, int(min(n, 1<<20)))
	var portBuf [2 * maxBinPorts]byte // record port count is one byte
	for i := uint64(0); i < n; i++ {
		var rec [56]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("attack: record %d: %w", i, err)
		}
		if rec[0] > byte(SourceHoneypot) {
			return nil, fmt.Errorf("attack: record %d: bad source %d", i, rec[0])
		}
		if int(rec[1]) >= NumVectors {
			return nil, fmt.Errorf("attack: record %d: bad vector %d", i, rec[1])
		}
		e := Event{
			Source:  Source(rec[0]),
			Vector:  Vector(rec[1]),
			Target:  netx.Addr(binary.LittleEndian.Uint32(rec[4:8])),
			Start:   int64(binary.LittleEndian.Uint64(rec[8:16])),
			End:     int64(binary.LittleEndian.Uint64(rec[16:24])),
			Packets: binary.LittleEndian.Uint64(rec[24:32]),
			Bytes:   binary.LittleEndian.Uint64(rec[32:40]),
			MaxPPS:  floatFromBits(binary.LittleEndian.Uint64(rec[40:48])),
			AvgRPS:  floatFromBits(binary.LittleEndian.Uint64(rec[48:56])),
		}
		if nPorts := int(rec[2]); nPorts > 0 {
			// One sized read for the whole port list instead of one
			// 2-byte read per port.
			pb := portBuf[:2*nPorts]
			if _, err := io.ReadFull(br, pb); err != nil {
				return nil, fmt.Errorf("attack: record %d: ports: %w", i, err)
			}
			e.Ports = make([]uint16, nPorts)
			for j := range e.Ports {
				e.Ports[j] = binary.LittleEndian.Uint16(pb[2*j:])
			}
		}
		events = append(events, e)
	}
	return NewStore(events), nil
}

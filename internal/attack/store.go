package attack

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"doscope/internal/netx"
)

// Shard geometry: events are bucketed by the day-of-window their Start
// falls in, shardDays days per shard. Days before the window collapse into
// the first shard and days beyond it into the last, so concatenating the
// shards in index order always reproduces the global (Start, Target) sort
// while Add only touches a single shard instead of the whole store.
const (
	shardDays = 8
	numShards = (WindowDays + shardDays - 1) / shardDays
)

// sealTailMax bounds a shard's pending tail: Add seals the shard once
// the tail reaches this many rows, so queries between seals scan at
// most sealTailMax unsorted rows per shard. Each seal sorts the tail
// and merges it into the shard body's order index, so amortized append
// cost is O(log tail) plus O(body/sealTailMax) for the merge — bounded
// by the events of one 8-day shard, never the store (and the merge
// drops to O(tail) for append-ordered ingest, which skips the merge
// entirely).
const sealTailMax = 64

// shardOf maps a start timestamp to its shard index.
func shardOf(start int64) int {
	d := DayOf(start)
	if d < 0 {
		d = 0
	} else if d >= WindowDays {
		d = WindowDays - 1
	}
	return d / shardDays
}

// countsIndex is the store-level per-day rollup: in-window events counted
// by (day, source, vector), out-of-window events by (source, vector).
// It covers exactly the sealed rows of every shard — pending-tail rows
// are counted by a linear tail scan at query time and enter the index
// as deltas when their shard seals.
type countsIndex struct {
	day       [][2][NumVectors]int32 // len WindowDays
	out       [2][NumVectors]int32
	outTotal  int
	unindexed int
}

// rowRef addresses one event as a (shard, row) handle. Physical rows
// never move (sealing only rewrites the shard's order index), so a
// reference stays valid for the life of the store.
type rowRef struct {
	shard int32
	row   int32
}

// Store holds attack events sharded by day-of-window. Each shard keeps
// its events in a columnar struct-of-arrays layout (see shard): a sorted
// body addressed through an order index plus a small unsorted pending
// tail that absorbs appends. The by-target and per-day count indexes are
// built lazily on first use and from then on maintained incrementally:
// sealing a shard applies index deltas for the newly sealed rows only,
// so mutation cost is proportional to the delta, not the store. Access
// events through Query; the Events slice contract is retained only as a
// deprecated compatibility shim.
//
// A Store is not safe for concurrent use without external
// synchronization: even read paths may build lazy indexes or seal
// pending tails. Fold parallelizes internally after sealing the lazy
// state and is safe on its own.
type Store struct {
	shards  []shard
	length  int
	version uint64

	// rebuilds counts from-scratch index constructions (the lazy first
	// build of counts or targets). Incremental maintenance never
	// increments it: tests assert that live ingest after the first
	// build leaves it unchanged.
	rebuilds uint64

	// Lazily built on first use, then maintained by seal deltas. Both
	// cover exactly rows [0, shard.sealed) of every shard.
	counts  *countsIndex
	targets map[netx.Addr][]rowRef
}

// NewStore builds a store from events (which it copies).
func NewStore(events []Event) *Store {
	s := &Store{}
	s.AddBatch(events)
	return s
}

// Add appends an event to its shard's pending tail. The shard is sealed
// automatically once the tail reaches sealTailMax rows; until then the
// row is visible to every query via a linear tail scan. No index is
// invalidated and nothing is re-sorted: the append itself is O(1), and
// the amortized seal share is bounded by the size of one day-range
// shard over sealTailMax (see sealTailMax), not by the store.
func (s *Store) Add(e Event) {
	if s.shards == nil {
		s.shards = make([]shard, numShards)
	}
	si := shardOf(e.Start)
	s.shards[si].appendRow(&e)
	s.length++
	s.version++
	if s.shards[si].tail() >= sealTailMax {
		s.sealShard(si)
	}
}

// AddBatch appends a batch of events, checking the seal threshold once
// per shard after the whole batch instead of once per event: a shard
// that receives many batch rows is merged and index-delta'd once,
// amortizing the per-shard seal work across the batch. This is the
// preferred ingest path for periodic flushes (e.g. the amppot live
// pipeline); small flushes simply park in the pending tails, which
// every query sees.
func (s *Store) AddBatch(events []Event) {
	if len(events) == 0 {
		return
	}
	if s.shards == nil {
		s.shards = make([]shard, numShards)
	}
	for i := range events {
		s.shards[shardOf(events[i].Start)].appendRow(&events[i])
	}
	s.length += len(events)
	s.version += uint64(len(events))
	for si := range s.shards {
		if s.shards[si].tail() >= sealTailMax {
			s.sealShard(si)
		}
	}
}

// Version counts mutations: it increments on every Add (and by the
// batch size on AddBatch). Consumers caching results derived from a
// store can compare versions to detect staleness instead of
// invalidating on every call.
func (s *Store) Version() uint64 { return s.version }

// sealShard merges shard si's pending tail into its sorted body and
// applies index deltas for the newly sealed rows: countsIndex day/out
// cells are incremented and by-target references appended for the new
// rows only. Existing references stay valid — sealing rewrites the
// order index, never the rows.
func (s *Store) sealShard(si int) {
	sh := &s.shards[si]
	lo := sh.sealed
	n := sh.rows()
	if lo == n {
		return
	}
	sh.seal()
	if s.counts != nil {
		for i := lo; i < n; i++ {
			countDelta(s.counts, sh.key[i], sh.start[i], 1)
		}
	}
	if s.targets != nil {
		for i := lo; i < n; i++ {
			s.targets[sh.target[i]] = append(s.targets[sh.target[i]], rowRef{int32(si), int32(i)})
		}
	}
}

// countDelta applies one row's contribution to the count index.
func countDelta(c *countsIndex, key uint16, start int64, by int32) {
	src, vec := int(key>>8), int(key&0xff)
	if src >= 2 || vec >= NumVectors {
		c.unindexed += int(by)
		return
	}
	if d := DayOf(start); d >= 0 && d < WindowDays {
		c.day[d][src][vec] += by
	} else {
		c.out[src][vec] += by
		c.outTotal += int(by)
	}
}

// Seal merges every shard's pending tail into its sorted body and
// brings the lazy indexes up to date via deltas. Queries that need
// sorted order (Iter, IterByStart, Fold, Events, the segment writer)
// seal automatically; counting terminals do not need it and scan the
// small tails instead.
func (s *Store) Seal() { s.ensureSealed() }

// ensureSealed seals every shard and refreshes the per-shard counts of
// segment-opened shards (which arrive sorted but uncounted; they get a
// single cheap pass over the key column on first use).
func (s *Store) ensureSealed() {
	for i := range s.shards {
		s.sealShard(i)
		if sh := &s.shards[i]; !sh.counted {
			sh.countRows()
		}
	}
}

// ensureCounted refreshes per-shard counts without sealing, for scan
// paths that tolerate pending tails.
func (s *Store) ensureCounted() {
	for i := range s.shards {
		if sh := &s.shards[i]; !sh.counted {
			sh.countRows()
		}
	}
}

// pendingRows reports how many appended rows are still in pending
// tails (not yet covered by the lazy indexes).
func (s *Store) pendingRows() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].tail()
	}
	return n
}

// ensureCounts builds the per-day count index over the sealed rows of
// every shard. Pending tails enter via sealShard deltas, so the index
// is built from scratch at most once per store lifetime (the rebuilds
// counter tracks this).
func (s *Store) ensureCounts() {
	if s.counts != nil {
		return
	}
	s.rebuilds++
	c := &countsIndex{day: make([][2][NumVectors]int32, WindowDays)}
	for si := range s.shards {
		sh := &s.shards[si]
		for i := 0; i < sh.sealed; i++ {
			countDelta(c, sh.key[i], sh.start[i], 1)
		}
	}
	s.counts = c
}

// ensureTargets builds the by-target index of (shard, row) handles over
// the sealed rows of every shard; pending tails enter via sealShard
// deltas. The handles stay valid for the life of the store.
func (s *Store) ensureTargets() {
	if s.targets != nil {
		return
	}
	s.rebuilds++
	m := make(map[netx.Addr][]rowRef, s.length/2+1)
	for si := range s.shards {
		sh := &s.shards[si]
		for i := 0; i < sh.sealed; i++ {
			m[sh.target[i]] = append(m[sh.target[i]], rowRef{int32(si), int32(i)})
		}
	}
	s.targets = m
}

// Events returns a fresh copy of all events sorted by (Start, Target).
// The returned slice is the caller's to mutate, but the events' Ports
// slices still alias store-owned arena memory.
//
// Deprecated: Events materializes a full copy of the store on every
// call; use Query with Iter, Count or Fold instead, which push filters
// down to shard and index pruning. Retained for persistence round-trip
// tests and external callers not yet migrated.
func (s *Store) Events() []Event {
	s.ensureSealed()
	flat := make([]Event, 0, s.length)
	for i := range s.shards {
		sh := &s.shards[i]
		for k := 0; k < sh.rows(); k++ {
			var e Event
			sh.view(sh.ordRow(k), &e)
			flat = append(flat, e)
		}
	}
	return flat
}

// Len returns the number of events.
func (s *Store) Len() int { return s.length }

// ByTarget groups event indices (positions in the slice the deprecated
// Events method returns) by target address.
//
// Deprecated: use Query().GroupByTarget, which returns event copies
// without materializing the flat slice.
func (s *Store) ByTarget() map[netx.Addr][]int {
	evs := s.Events()
	out := make(map[netx.Addr][]int)
	for i := range evs {
		out[evs[i].Target] = append(out[evs[i].Target], i)
	}
	return out
}

// UniqueTargets returns the number of distinct target addresses. It
// reuses the by-target index when that index covers every row, but does
// not force it: counting needs only the target column, not per-event
// handle slices.
func (s *Store) UniqueTargets() int {
	if s.targets != nil && s.pendingRows() == 0 {
		return len(s.targets)
	}
	seen := make(map[netx.Addr]struct{}, s.length/2+1)
	for si := range s.shards {
		for _, t := range s.shards[si].target {
			seen[t] = struct{}{}
		}
	}
	return len(seen)
}

// UniqueBlocks returns distinct /24s, /16s given the mask length.
func (s *Store) UniqueBlocks(maskBits int) int {
	seen := make(map[netx.Addr]struct{}, s.length)
	for si := range s.shards {
		for _, t := range s.shards[si].target {
			seen[t.Mask(maskBits)] = struct{}{}
		}
	}
	return len(seen)
}

// --- CSV persistence -------------------------------------------------

var csvHeader = []string{
	"source", "vector", "target", "start", "end",
	"packets", "bytes", "max_pps", "avg_rps", "ports",
}

// WriteCSV writes the store in a stable text format.
func (s *Store) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	var ports strings.Builder
	var err error
	for e := range s.Query().Iter() {
		rec[0] = e.Source.String()
		rec[1] = e.Vector.String()
		rec[2] = e.Target.String()
		rec[3] = strconv.FormatInt(e.Start, 10)
		rec[4] = strconv.FormatInt(e.End, 10)
		rec[5] = strconv.FormatUint(e.Packets, 10)
		rec[6] = strconv.FormatUint(e.Bytes, 10)
		rec[7] = strconv.FormatFloat(e.MaxPPS, 'g', -1, 64)
		rec[8] = strconv.FormatFloat(e.AvgRPS, 'g', -1, 64)
		ports.Reset()
		for i, p := range e.Ports {
			if i > 0 {
				ports.WriteByte(';')
			}
			ports.WriteString(strconv.Itoa(int(p)))
		}
		rec[9] = ports.String()
		if err = cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a store written by WriteCSV.
func ReadCSV(r io.Reader) (*Store, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("attack: reading CSV header: %w", err)
	}
	if len(head) != len(csvHeader) || head[0] != "source" {
		return nil, fmt.Errorf("attack: unexpected CSV header %v", head)
	}
	s := &Store{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var e Event
		switch rec[0] {
		case "telescope":
			e.Source = SourceTelescope
		case "honeypot":
			e.Source = SourceHoneypot
		default:
			return nil, fmt.Errorf("attack: line %d: bad source %q", line, rec[0])
		}
		if e.Vector, err = ParseVector(rec[1]); err != nil {
			return nil, fmt.Errorf("attack: line %d: %w", line, err)
		}
		if e.Target, err = netx.ParseAddr(rec[2]); err != nil {
			return nil, fmt.Errorf("attack: line %d: %w", line, err)
		}
		if e.Start, err = strconv.ParseInt(rec[3], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: start: %w", line, err)
		}
		if e.End, err = strconv.ParseInt(rec[4], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: end: %w", line, err)
		}
		if e.Packets, err = strconv.ParseUint(rec[5], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: packets: %w", line, err)
		}
		if e.Bytes, err = strconv.ParseUint(rec[6], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: bytes: %w", line, err)
		}
		if e.MaxPPS, err = strconv.ParseFloat(rec[7], 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: max_pps: %w", line, err)
		}
		if e.AvgRPS, err = strconv.ParseFloat(rec[8], 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: avg_rps: %w", line, err)
		}
		if rec[9] != "" {
			start := 0
			str := rec[9]
			for i := 0; i <= len(str); i++ {
				if i == len(str) || str[i] == ';' {
					// Skip empty tokens so trailing or doubled
					// separators ("80;", "80;;443") round-trip instead
					// of failing with a bare strconv error.
					if i > start {
						p, err := strconv.ParseUint(str[start:i], 10, 16)
						if err != nil {
							return nil, fmt.Errorf("attack: line %d: ports: %w", line, err)
						}
						e.Ports = append(e.Ports, uint16(p))
					}
					start = i + 1
				}
			}
		}
		s.Add(e)
	}
	return s, nil
}

// --- binary persistence (DOSEVT01, record-oriented) -------------------

const binMagic = "DOSEVT01"

// maxEvents bounds the event counts a codec will accept from a header.
const maxEvents = 1 << 30

// maxBinPorts is DOSEVT01's per-record port-list limit: the record
// stores the count in one byte. WriteBinary clamps longer lists (which
// can only arise via Add with hand-built events; the sensor pipelines
// cap at MaxTrackedPorts) so the stream stays parseable instead of
// wrapping mod 256 and desynchronizing every following record.
const maxBinPorts = 255

// WriteBinary writes the compact fixed-record DOSEVT01 encoding, roughly
// 5x smaller and 20x faster to load than CSV. Port lists longer than
// maxBinPorts are truncated to the format limit; use WriteSegment
// (DOSEVT02) for lossless persistence of oversized lists — its
// column-oriented layout a reader can also mmap and serve without
// decoding.
func (s *Store) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(s.length))
	if _, err := bw.Write(scratch[:]); err != nil {
		return err
	}
	var werr error
	for e := range s.Query().Iter() {
		nPorts := len(e.Ports)
		if nPorts > maxBinPorts {
			nPorts = maxBinPorts
		}
		var rec [56]byte
		rec[0] = byte(e.Source)
		rec[1] = byte(e.Vector)
		rec[2] = byte(nPorts)
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.Target))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(e.Start))
		binary.LittleEndian.PutUint64(rec[16:24], uint64(e.End))
		binary.LittleEndian.PutUint64(rec[24:32], e.Packets)
		binary.LittleEndian.PutUint64(rec[32:40], e.Bytes)
		binary.LittleEndian.PutUint64(rec[40:48], floatBits(e.MaxPPS))
		binary.LittleEndian.PutUint64(rec[48:56], floatBits(e.AvgRPS))
		if _, werr = bw.Write(rec[:]); werr != nil {
			return werr
		}
		for _, p := range e.Ports[:nPorts] {
			binary.LittleEndian.PutUint16(scratch[:2], p)
			if _, werr = bw.Write(scratch[:2]); werr != nil {
				return werr
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a store written by WriteBinary. Source and Vector
// bytes are validated against their enum ranges rather than trusted.
func ReadBinary(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("attack: reading magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("attack: bad magic %q", magic)
	}
	var scratch [8]byte
	if _, err := io.ReadFull(br, scratch[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(scratch[:])
	if n > maxEvents {
		return nil, fmt.Errorf("attack: implausible event count %d", n)
	}
	s := &Store{}
	var portBuf [2 * maxBinPorts]byte // record port count is one byte
	for i := uint64(0); i < n; i++ {
		var rec [56]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("attack: record %d: %w", i, err)
		}
		if rec[0] > byte(SourceHoneypot) {
			return nil, fmt.Errorf("attack: record %d: bad source %d", i, rec[0])
		}
		if int(rec[1]) >= NumVectors {
			return nil, fmt.Errorf("attack: record %d: bad vector %d", i, rec[1])
		}
		e := Event{
			Source:  Source(rec[0]),
			Vector:  Vector(rec[1]),
			Target:  netx.Addr(binary.LittleEndian.Uint32(rec[4:8])),
			Start:   int64(binary.LittleEndian.Uint64(rec[8:16])),
			End:     int64(binary.LittleEndian.Uint64(rec[16:24])),
			Packets: binary.LittleEndian.Uint64(rec[24:32]),
			Bytes:   binary.LittleEndian.Uint64(rec[32:40]),
			MaxPPS:  floatFromBits(binary.LittleEndian.Uint64(rec[40:48])),
			AvgRPS:  floatFromBits(binary.LittleEndian.Uint64(rec[48:56])),
		}
		if nPorts := int(rec[2]); nPorts > 0 {
			// One sized read for the whole port list instead of one
			// 2-byte read per port.
			pb := portBuf[:2*nPorts]
			if _, err := io.ReadFull(br, pb); err != nil {
				return nil, fmt.Errorf("attack: record %d: ports: %w", i, err)
			}
			e.Ports = make([]uint16, nPorts)
			for j := range e.Ports {
				e.Ports[j] = binary.LittleEndian.Uint16(pb[2*j:])
			}
		}
		s.Add(e)
	}
	return s, nil
}

package attack

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"doscope/internal/netx"
)

// Store holds attack events sorted by start time and provides the index
// structures the fusion pipeline queries.
type Store struct {
	events []Event
	sorted bool
}

// NewStore builds a store from events (which it copies).
func NewStore(events []Event) *Store {
	s := &Store{events: append([]Event(nil), events...)}
	s.sortEvents()
	return s
}

// Add appends an event, invalidating sort order until the next query.
func (s *Store) Add(e Event) {
	s.events = append(s.events, e)
	s.sorted = false
}

func (s *Store) sortEvents() {
	sort.SliceStable(s.events, func(i, j int) bool {
		if s.events[i].Start != s.events[j].Start {
			return s.events[i].Start < s.events[j].Start
		}
		return s.events[i].Target < s.events[j].Target
	})
	s.sorted = true
}

// Events returns the events sorted by start time. The returned slice is
// owned by the store; callers must not mutate it.
func (s *Store) Events() []Event {
	if !s.sorted {
		s.sortEvents()
	}
	return s.events
}

// Len returns the number of events.
func (s *Store) Len() int { return len(s.events) }

// ByTarget groups event indices by target address.
func (s *Store) ByTarget() map[netx.Addr][]int {
	evs := s.Events()
	out := make(map[netx.Addr][]int)
	for i := range evs {
		out[evs[i].Target] = append(out[evs[i].Target], i)
	}
	return out
}

// UniqueTargets returns the number of distinct target addresses.
func (s *Store) UniqueTargets() int {
	seen := make(map[netx.Addr]struct{}, len(s.events))
	for i := range s.events {
		seen[s.events[i].Target] = struct{}{}
	}
	return len(seen)
}

// UniqueBlocks returns distinct /24s, /16s given the mask length.
func (s *Store) UniqueBlocks(maskBits int) int {
	seen := make(map[netx.Addr]struct{}, len(s.events))
	for i := range s.events {
		seen[s.events[i].Target.Mask(maskBits)] = struct{}{}
	}
	return len(seen)
}

// --- CSV persistence -------------------------------------------------

var csvHeader = []string{
	"source", "vector", "target", "start", "end",
	"packets", "bytes", "max_pps", "avg_rps", "ports",
}

// WriteCSV writes the store in a stable text format.
func (s *Store) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	for _, e := range s.Events() {
		rec[0] = e.Source.String()
		rec[1] = e.Vector.String()
		rec[2] = e.Target.String()
		rec[3] = strconv.FormatInt(e.Start, 10)
		rec[4] = strconv.FormatInt(e.End, 10)
		rec[5] = strconv.FormatUint(e.Packets, 10)
		rec[6] = strconv.FormatUint(e.Bytes, 10)
		rec[7] = strconv.FormatFloat(e.MaxPPS, 'g', -1, 64)
		rec[8] = strconv.FormatFloat(e.AvgRPS, 'g', -1, 64)
		ports := ""
		for i, p := range e.Ports {
			if i > 0 {
				ports += ";"
			}
			ports += strconv.Itoa(int(p))
		}
		rec[9] = ports
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a store written by WriteCSV.
func ReadCSV(r io.Reader) (*Store, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("attack: reading CSV header: %w", err)
	}
	if len(head) != len(csvHeader) || head[0] != "source" {
		return nil, fmt.Errorf("attack: unexpected CSV header %v", head)
	}
	var events []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var e Event
		switch rec[0] {
		case "telescope":
			e.Source = SourceTelescope
		case "honeypot":
			e.Source = SourceHoneypot
		default:
			return nil, fmt.Errorf("attack: line %d: bad source %q", line, rec[0])
		}
		if e.Vector, err = ParseVector(rec[1]); err != nil {
			return nil, fmt.Errorf("attack: line %d: %w", line, err)
		}
		if e.Target, err = netx.ParseAddr(rec[2]); err != nil {
			return nil, fmt.Errorf("attack: line %d: %w", line, err)
		}
		if e.Start, err = strconv.ParseInt(rec[3], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: start: %w", line, err)
		}
		if e.End, err = strconv.ParseInt(rec[4], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: end: %w", line, err)
		}
		if e.Packets, err = strconv.ParseUint(rec[5], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: packets: %w", line, err)
		}
		if e.Bytes, err = strconv.ParseUint(rec[6], 10, 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: bytes: %w", line, err)
		}
		if e.MaxPPS, err = strconv.ParseFloat(rec[7], 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: max_pps: %w", line, err)
		}
		if e.AvgRPS, err = strconv.ParseFloat(rec[8], 64); err != nil {
			return nil, fmt.Errorf("attack: line %d: avg_rps: %w", line, err)
		}
		if rec[9] != "" {
			start := 0
			str := rec[9]
			for i := 0; i <= len(str); i++ {
				if i == len(str) || str[i] == ';' {
					p, err := strconv.ParseUint(str[start:i], 10, 16)
					if err != nil {
						return nil, fmt.Errorf("attack: line %d: ports: %w", line, err)
					}
					e.Ports = append(e.Ports, uint16(p))
					start = i + 1
				}
			}
		}
		events = append(events, e)
	}
	return NewStore(events), nil
}

// --- binary persistence ----------------------------------------------

const binMagic = "DOSEVT01"

// WriteBinary writes a compact fixed-record binary encoding, roughly 5x
// smaller and 20x faster to load than CSV; the doscope CLI uses it to
// cache generated scenarios.
func (s *Store) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(s.Events())))
	if _, err := bw.Write(scratch[:]); err != nil {
		return err
	}
	for _, e := range s.Events() {
		var rec [56]byte
		rec[0] = byte(e.Source)
		rec[1] = byte(e.Vector)
		rec[2] = byte(len(e.Ports))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.Target))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(e.Start))
		binary.LittleEndian.PutUint64(rec[16:24], uint64(e.End))
		binary.LittleEndian.PutUint64(rec[24:32], e.Packets)
		binary.LittleEndian.PutUint64(rec[32:40], e.Bytes)
		binary.LittleEndian.PutUint64(rec[40:48], uint64(floatBits(e.MaxPPS)))
		binary.LittleEndian.PutUint64(rec[48:56], uint64(floatBits(e.AvgRPS)))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		for _, p := range e.Ports {
			binary.LittleEndian.PutUint16(scratch[:2], p)
			if _, err := bw.Write(scratch[:2]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a store written by WriteBinary.
func ReadBinary(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("attack: reading magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("attack: bad magic %q", magic)
	}
	var scratch [8]byte
	if _, err := io.ReadFull(br, scratch[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(scratch[:])
	const maxEvents = 1 << 30
	if n > maxEvents {
		return nil, fmt.Errorf("attack: implausible event count %d", n)
	}
	events := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		var rec [56]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("attack: record %d: %w", i, err)
		}
		e := Event{
			Source:  Source(rec[0]),
			Vector:  Vector(rec[1]),
			Target:  netx.Addr(binary.LittleEndian.Uint32(rec[4:8])),
			Start:   int64(binary.LittleEndian.Uint64(rec[8:16])),
			End:     int64(binary.LittleEndian.Uint64(rec[16:24])),
			Packets: binary.LittleEndian.Uint64(rec[24:32]),
			Bytes:   binary.LittleEndian.Uint64(rec[32:40]),
			MaxPPS:  floatFromBits(binary.LittleEndian.Uint64(rec[40:48])),
			AvgRPS:  floatFromBits(binary.LittleEndian.Uint64(rec[48:56])),
		}
		nPorts := int(rec[2])
		if nPorts > 0 {
			e.Ports = make([]uint16, nPorts)
			for j := 0; j < nPorts; j++ {
				if _, err := io.ReadFull(br, scratch[:2]); err != nil {
					return nil, err
				}
				e.Ports[j] = binary.LittleEndian.Uint16(scratch[:2])
			}
		}
		events = append(events, e)
	}
	return NewStore(events), nil
}

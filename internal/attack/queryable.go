package attack

import (
	"context"
	"errors"
	"io"
	"iter"

	"doscope/internal/netx"
)

// Queryable is the narrow backend contract federated query plans execute
// against: a local *Store satisfies it directly, and
// federation.RemoteStore satisfies it by shipping the plan to a sensor
// site over the DOSFED01 protocol. Counting terminals return index
// partials (no events cross the backend boundary); PlanStore returns the
// matching events as an ordinary store, which for remote backends is a
// DOSEVT02 segment opened zero-copy from the received bytes.
type Queryable interface {
	// PlanCount executes the plan's Count terminal.
	PlanCount(p Plan) (int, error)
	// PlanCountByVector executes the plan's CountByVector terminal.
	PlanCountByVector(p Plan) ([NumVectors]int, error)
	// PlanCountByDay executes the plan's CountByDay terminal (length
	// WindowDays).
	PlanCountByDay(p Plan) ([]int, error)
	// PlanStore materializes the plan's matching events as a queryable
	// Store. The closer releases any backing mapping or buffer and must
	// be closed only once the store is no longer in use. Backends may
	// return a superset of the plan's matches (a local store returns
	// itself unfiltered); callers re-apply the plan when iterating.
	PlanStore(p Plan) (*Store, io.Closer, error)
}

// Local *Store backends execute plans in process and never fail.
var _ Queryable = (*Store)(nil)

// PlanCount executes the plan's Count terminal against this store.
func (s *Store) PlanCount(p Plan) (int, error) { return p.Query(s).Count(), nil }

// PlanCountByVector executes the plan's CountByVector terminal against
// this store.
func (s *Store) PlanCountByVector(p Plan) ([NumVectors]int, error) {
	return p.Query(s).CountByVector(), nil
}

// PlanCountByDay executes the plan's CountByDay terminal against this
// store.
func (s *Store) PlanCountByDay(p Plan) ([]int, error) {
	return p.Query(s).CountByDay(), nil
}

// PlanStore returns the store itself: local backends need not
// materialize a filtered copy, since federated iteration re-applies the
// plan's filters.
func (s *Store) PlanStore(Plan) (*Store, io.Closer, error) { return s, nopCloser, nil }

// Collect materializes the matching events into a fresh, independent
// store: every field (including the port lists, which are copied into
// the new store's arenas) is detached from the source stores. This is
// what a federation site ships for iteration terminals — the matching
// subset of its store, re-encoded as a DOSEVT02 segment.
func (q *Query) Collect() *Store {
	// Accumulate, then build with one batch: the intermediate events may
	// alias source arenas (stable for the life of the source stores),
	// and AddBatch copies the ports out when it builds the new arenas.
	var evs []Event
	for e := range q.Iter() {
		evs = append(evs, *e)
	}
	return NewStore(evs)
}

// FedQuery is a Query-shaped plan over a mix of Queryable backends —
// local stores and federation.RemoteStore sites in any combination. The
// builder methods mirror Query's; terminals fan the compiled Plan out to
// every backend concurrently and merge the partials in backend argument
// order (the same deterministic merge discipline Fold uses for its
// shard partials), so results are independent of scheduling.
//
// Unlike Query, a FedQuery is reusable: terminals do not consume it, and
// remote backends hold no per-query state.
//
// Terminals come in two failure disciplines. The plain terminals are
// strict: any backend error fails the whole query (errors from all
// backends joined). The *Partial terminals degrade instead: they merge
// whatever the healthy backends answered and report a per-backend
// BackendStatus vector alongside, failing only when no backend answered
// at all — the shape a serving layer needs to keep answering with the
// healthy subset while a site is down. Context bounds either kind by a
// caller-supplied deadline.
type FedQuery struct {
	backends []Queryable
	plan     Plan
	ctx      context.Context
}

// QueryBackends starts a federated query over the given backends.
func QueryBackends(backends ...Queryable) *FedQuery {
	return &FedQuery{backends: backends, plan: PlanAll()}
}

// QueryPlan starts a federated query from an already-compiled plan.
func QueryPlan(p Plan, backends ...Queryable) *FedQuery {
	return &FedQuery{backends: backends, plan: p}
}

// Source keeps only events observed by the given sensor.
func (f *FedQuery) Source(src Source) *FedQuery { f.plan.Source = int8(src); return f }

// Vectors keeps only events with one of the given attack vectors.
func (f *FedQuery) Vectors(vs ...Vector) *FedQuery {
	for _, v := range vs {
		f.plan.VecMask |= 1 << v
	}
	return f
}

// Days keeps only events whose start day index lies in [lo, hi].
func (f *FedQuery) Days(lo, hi int) *FedQuery {
	f.plan.HasDays, f.plan.DayLo, f.plan.DayHi = true, int32(lo), int32(hi)
	return f
}

// Target keeps only events aimed at exactly this address.
func (f *FedQuery) Target(a netx.Addr) *FedQuery { return f.TargetPrefix(a, 32) }

// TargetPrefix keeps only events whose target falls inside a/bits.
func (f *FedQuery) TargetPrefix(a netx.Addr, bits int) *FedQuery {
	f.plan.HasPrefix, f.plan.PrefixBits, f.plan.Prefix = true, uint8(bits), a.Mask(bits)
	return f
}

// Plan returns the compiled plan the terminals ship to each backend.
func (f *FedQuery) Plan() Plan { return f.plan }

// fanOut executes exec against every backend concurrently and returns
// the partials in backend argument order — the strict discipline:
// errors from all backends are joined, so one unreachable site reports
// alongside the others instead of masking them. discard receives late
// results of backends abandoned at the context deadline (see
// fanOutStatus).
func fanOut[T any](f *FedQuery, exec func(context.Context, Queryable) (T, error), discard func(T)) ([]T, error) {
	partials, statuses := fanOutStatus(f, exec, discard)
	return partials, joinStatusErrs(statuses)
}

// Count returns the number of matching events across all backends.
// Only count partials cross backend boundaries, never events.
func (f *FedQuery) Count() (int, error) {
	partials, err := fanOut(f, execCount(f.plan), nil)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range partials {
		n += p
	}
	return n, nil
}

// CountByVector returns matching event counts per attack vector across
// all backends, merged element-wise in backend order.
func (f *FedQuery) CountByVector() ([NumVectors]int, error) {
	var out [NumVectors]int
	partials, err := fanOut(f, execCountByVector(f.plan), nil)
	if err != nil {
		return out, err
	}
	for _, p := range partials {
		for v := range p {
			out[v] += p[v]
		}
	}
	return out, nil
}

// CountByDay returns matching in-window event counts per start day
// (length WindowDays) across all backends, merged element-wise in
// backend order.
func (f *FedQuery) CountByDay() ([]int, error) {
	partials, err := fanOut(f, execCountByDay(f.plan), nil)
	if err != nil {
		return nil, err
	}
	out := make([]int, WindowDays)
	for _, p := range partials {
		for d, n := range p {
			out[d] += n
		}
	}
	return out, nil
}

// multiCloser closes a set of per-backend closers, joining errors.
type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var errs []error
	for _, c := range m {
		if c != nil {
			errs = append(errs, c.Close())
		}
	}
	return errors.Join(errs...)
}

// Stores fetches each backend's matching events as a store partial, in
// backend argument order. Remote partials are DOSEVT02 segments opened
// zero-copy from the received bytes; local backends contribute their
// store as-is. The closer releases every partial's backing memory and
// must outlive the stores and any Event views derived from them.
func (f *FedQuery) Stores() ([]*Store, io.Closer, error) {
	partials, err := fanOut(f, execStore(f.plan), discardStorePart)
	closers := make(multiCloser, 0, len(partials))
	stores := make([]*Store, 0, len(partials))
	for _, p := range partials {
		if p.st != nil {
			stores = append(stores, p.st)
		}
		if p.c != nil {
			closers = append(closers, p.c)
		}
	}
	if err != nil {
		closers.Close()
		return nil, nil, err
	}
	return stores, closers, nil
}

// Iter yields matching events backend by backend, each partial in
// (Start, Target) order — the federated counterpart of Query.Iter, with
// the same per-iteration scratch *Event contract. The returned closer
// releases the fetched partials; close it only after iteration.
func (f *FedQuery) Iter() (iter.Seq[*Event], io.Closer, error) {
	stores, c, err := f.Stores()
	if err != nil {
		return nil, nil, err
	}
	return f.plan.Query(stores...).Iter(), c, nil
}

// IterByStart yields matching events from all backends merged by start
// time, the federated counterpart of Query.IterByStart.
func (f *FedQuery) IterByStart() (iter.Seq[*Event], io.Closer, error) {
	stores, c, err := f.Stores()
	if err != nil {
		return nil, nil, err
	}
	return f.plan.Query(stores...).IterByStart(), c, nil
}

// Events materializes the matching events (independent copies, ports
// included) in federated Iter order.
func (f *FedQuery) Events() ([]Event, error) {
	it, c, err := f.Iter()
	if err != nil {
		return nil, err
	}
	defer c.Close()
	var out []Event
	for e := range it {
		ev := *e
		ev.Ports = append([]uint16(nil), e.Ports...)
		out = append(out, ev)
	}
	return out, nil
}

package attack

import (
	"sync"
	"time"
)

// This file is the store's multi-producer ingest front: an MPSC queue
// in front of the writer. Producers (Add/AddBatch callers, amppot
// sinks, federation push) only ever enqueue; a single drainer applies
// every queued batch, seals each touched shard at most once, and
// publishes ONE immutable view covering all of them — so publication
// cost is paid once per drain, not once per mutation, and N producers
// ingest concurrently instead of serializing on the full writer path.
//
// Why a queue and not per-day-shard writer locks: the store's
// publication model (PR 5) is single-writer by construction — one
// atomic view swap, one serialization of whole batches, copy-on-write
// index sharing with published readers. Per-shard locks would let two
// producers mutate disjoint shards concurrently but would need a
// store-wide barrier anyway to publish a consistent cross-shard view
// (and to keep "a batch becomes visible atomically" — a batch spans
// shards). The queue keeps every writer invariant intact and moves the
// expensive parts (seal, index deltas, publication) off the producer
// hot path; the apply loop itself is memory-bandwidth-bound column
// appends, which one core sustains far beyond the sensor fleet rates
// the paper's regime implies.
//
// Two modes share the machinery:
//
//   - Synchronous (the zero-value default): AddBatch enqueues, then
//     either becomes the drainer or waits for one. The call returns
//     only after the batch is published, so read-your-writes holds
//     exactly as before; under concurrency the drainer coalesces every
//     queued batch into one publication (flat combining).
//   - Queued (after StartIngest): AddBatch enqueues and returns. A
//     background drainer publishes one view per tick (continuously for
//     Tick <= 0). Flush is the visibility barrier; Close final-drains
//     exactly once and reverts the store to synchronous mode.
//
// In both modes batches apply in enqueue order — a total order that is
// one serialization of the producers' batch sequences — and a view
// always covers a whole-batch prefix of it.

// defaultMaxQueue bounds the ingest queue (in events) before producers
// block in enqueue: backpressure, so a producer fleet cannot outrun the
// drainer without bound. Draining frees the space and wakes producers.
const defaultMaxQueue = 1 << 18

// pendingBatch is one producer's enqueued batch. done is closed when
// the batch has been published; it is nil for queued-mode enqueues,
// where nobody waits.
type pendingBatch struct {
	events []Event
	done   chan struct{}
}

// IngestConfig configures queued (asynchronous) ingest, see
// Store.StartIngest.
type IngestConfig struct {
	// Tick is the publication cadence: the background drainer applies
	// everything queued and publishes one view per tick. Tick <= 0
	// drains continuously — whenever batches are pending — which still
	// coalesces whatever accumulated since the previous drain.
	Tick time.Duration

	// MaxQueue bounds the queue in events (default 262144). At the
	// bound, producers block in Add/AddBatch until a drain frees space
	// — and in ticked mode the drainer is kicked early rather than
	// letting producers stall a full tick.
	MaxQueue int
}

// IngestStats is a point-in-time snapshot of the ingest front, served
// by /v1/stats for ops visibility.
type IngestStats struct {
	// Queued counts events enqueued but not yet published (including a
	// drain in progress); Batches counts batches awaiting a drainer.
	Queued  int
	Batches int
	// Drains counts drain ticks that applied at least one batch;
	// Coalesced counts batches applied — Coalesced/Drains is the
	// combining factor.
	Drains    uint64
	Coalesced uint64
	// Queued mode active (StartIngest called, Close not yet).
	Async bool
}

// ensureIngest lazily initializes the queue machinery. Callers hold
// qmu. The fields are written once and never replaced, so goroutines
// that observed the initialization through qmu may use the channels
// without further locking.
func (s *Store) ensureIngest() {
	if s.qcond == nil {
		s.qcond = sync.NewCond(&s.qmu)
		s.drainSem = make(chan struct{}, 1)
		s.drainKick = make(chan struct{}, 1)
		if s.maxQueue <= 0 {
			s.maxQueue = defaultMaxQueue
		}
	}
}

// enqueue appends a batch to the ingest queue, blocking while the
// queue is at its bound. It reports whether the store is in queued
// mode (the producer returns without waiting) and whether the drainer
// should be kicked ahead of its tick.
func (s *Store) enqueue(events []Event) (b *pendingBatch, async, kick bool) {
	s.qmu.Lock()
	s.ensureIngest()
	for s.queued >= s.maxQueue {
		// Progress guarantee: a producer waiting here has not enqueued
		// yet, so every queued batch has either a live drainer (queued
		// mode) or an owner inside drainOrWait (synchronous mode)
		// responsible for draining it.
		if s.drainerOn {
			select {
			case s.drainKick <- struct{}{}:
			default:
			}
		}
		s.qcond.Wait()
	}
	async = s.drainerOn
	b = &pendingBatch{events: events}
	if !async {
		b.done = make(chan struct{})
	}
	s.queue = append(s.queue, b)
	s.queued += len(events)
	kick = async && (s.drainTick <= 0 || s.queued >= s.maxQueue)
	s.qmu.Unlock()
	return b, async, kick
}

// drainOrWait completes a synchronous mutation: the producer either
// acquires the drainer role and drains the queue itself — publishing
// its own batch along with every other batch queued at that moment —
// or waits for whichever producer holds the role to publish it.
func (s *Store) drainOrWait(b *pendingBatch) {
	for {
		select {
		case <-b.done:
			return
		case s.drainSem <- struct{}{}:
			// b was enqueued before the role was acquired, so this
			// drain's snapshot necessarily includes it; the loop exits
			// through b.done on the next iteration.
			s.drainAll()
			<-s.drainSem
		}
	}
}

// drainAll applies every queued batch in enqueue order, seals each
// touched shard at most once, publishes ONE view covering all of them,
// then frees the queue space and wakes the batches' producers. Callers
// hold the drainer role (drainSem); the writer mutex is taken only for
// the apply-and-publish step, so Seal interleaves safely.
func (s *Store) drainAll() {
	s.qmu.Lock()
	batches := s.queue
	s.queue = nil
	s.qmu.Unlock()
	if len(batches) == 0 {
		return
	}
	n := 0
	s.mu.Lock()
	s.beginWrite()
	for _, b := range batches {
		for i := range b.events {
			s.ingest(&b.events[i])
		}
		n += len(b.events)
	}
	s.length += n
	s.version += uint64(n)
	for si := range s.shards {
		if s.shards[si].tail() >= sealTailMax {
			s.sealShard(si)
		}
	}
	s.publish()
	s.mu.Unlock()
	s.ingDrains.Add(1)
	s.ingCoalesced.Add(uint64(len(batches)))
	s.qmu.Lock()
	s.queued -= n
	s.qcond.Broadcast()
	s.qmu.Unlock()
	for _, b := range batches {
		if b.done != nil {
			close(b.done)
		}
	}
}

// StartIngest switches the store into queued ingest: Add and AddBatch
// enqueue and return, and a background drainer applies everything
// queued and publishes one immutable view per tick. Readers keep their
// lock-free published-view semantics; what changes is the publication
// cadence — a query observes the batches of some whole-tick prefix
// rather than every individual mutation. Flush forces a drain and is
// the write-visibility barrier; Close drains exactly once more and
// reverts to synchronous mode.
//
// In queued mode the store takes ownership of the slice passed to
// AddBatch (and of the events' Ports arrays) until the batch
// publishes; callers must not reuse them after the call.
//
// StartIngest panics if the store is closed or already in queued mode.
func (s *Store) StartIngest(cfg IngestConfig) {
	s.qmu.Lock()
	if cfg.MaxQueue > 0 {
		s.maxQueue = cfg.MaxQueue
	}
	s.ensureIngest()
	if s.ingClosed {
		s.qmu.Unlock()
		panic("attack: StartIngest on a closed store")
	}
	if s.drainerOn {
		s.qmu.Unlock()
		panic("attack: StartIngest called twice")
	}
	s.drainerOn = true
	s.drainTick = cfg.Tick
	s.drainStop = make(chan struct{})
	s.qmu.Unlock()
	s.drainerWG.Add(1)
	go s.drainer(cfg.Tick, s.drainStop)
}

// drainer is the queued-mode background goroutine: it drains on every
// tick (or whenever kicked: continuous mode kicks on enqueue, ticked
// mode only at the backpressure bound) and once more on stop.
func (s *Store) drainer(tick time.Duration, stop <-chan struct{}) {
	defer s.drainerWG.Done()
	var tickC <-chan time.Time
	if tick > 0 {
		t := time.NewTicker(tick)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-stop:
			s.drainSem <- struct{}{}
			s.drainAll()
			<-s.drainSem
			return
		case <-tickC:
		case <-s.drainKick:
		}
		s.drainSem <- struct{}{}
		s.drainAll()
		<-s.drainSem
	}
}

// Flush drains the ingest queue synchronously: every batch enqueued
// before the call is published when Flush returns. It is the
// visibility barrier for queued-mode producers ("everything I wrote is
// now queryable") and a no-op on an idle store.
func (s *Store) Flush() {
	s.qmu.Lock()
	s.ensureIngest()
	s.qmu.Unlock()
	s.drainSem <- struct{}{}
	s.drainAll()
	<-s.drainSem
}

// Close stops queued ingest: the background drainer performs a final
// drain and exits, any batch still queued is published, and the store
// reverts to synchronous mode — a mutation that slips in concurrently
// with Close is never lost, it just self-drains. Every enqueued batch
// is applied exactly once: a drain removes batches from the queue
// before applying them, and the drainer role serializes drains.
//
// Close is idempotent and safe on a store that never started queued
// ingest (it degrades to Flush). The store remains fully usable for
// reads and synchronous writes afterwards.
func (s *Store) Close() error {
	s.qmu.Lock()
	s.ensureIngest()
	wasOn := s.drainerOn
	s.drainerOn = false
	s.ingClosed = true
	stop := s.drainStop
	s.qmu.Unlock()
	if wasOn {
		close(stop)
		s.drainerWG.Wait()
	}
	// Sweep up batches enqueued after the drainer's final snapshot but
	// before the mode flip was observed.
	s.Flush()
	return nil
}

// IngestStats snapshots the ingest front.
func (s *Store) IngestStats() IngestStats {
	s.qmu.Lock()
	st := IngestStats{
		Queued:  s.queued,
		Batches: len(s.queue),
		Async:   s.drainerOn,
	}
	s.qmu.Unlock()
	st.Drains = s.ingDrains.Load()
	st.Coalesced = s.ingCoalesced.Load()
	return st
}

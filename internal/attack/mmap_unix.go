//go:build unix

package attack

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps a file read-only. The mapping outlives the file
// descriptor, so callers may close f once mapFile returns.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size <= 0 || size > int64(int(^uint(0)>>1)) {
		return nil, nil, fmt.Errorf("unmappable file size %d", size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

package attack

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// faultyBackend wraps a healthy local store and fails (or reports
// itself skipped) on demand — the attack-layer stand-in for a dead or
// breaker-open federation site.
type faultyBackend struct {
	st      *Store
	err     error         // non-nil: every terminal fails with it
	delay   time.Duration // answer only after this long
	ctxless bool          // hide the context-aware face
}

func (f *faultyBackend) exec() error {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.err
}

func (f *faultyBackend) PlanCount(p Plan) (int, error) {
	if err := f.exec(); err != nil {
		return 0, err
	}
	return f.st.PlanCount(p)
}

func (f *faultyBackend) PlanCountByVector(p Plan) ([NumVectors]int, error) {
	if err := f.exec(); err != nil {
		return [NumVectors]int{}, err
	}
	return f.st.PlanCountByVector(p)
}

func (f *faultyBackend) PlanCountByDay(p Plan) ([]int, error) {
	if err := f.exec(); err != nil {
		return nil, err
	}
	return f.st.PlanCountByDay(p)
}

func (f *faultyBackend) PlanStore(p Plan) (*Store, io.Closer, error) {
	if err := f.exec(); err != nil {
		return nil, nil, err
	}
	return f.st.PlanStore(p)
}

// ctxBackend is a context-aware faultyBackend: a delayed answer aborts
// as soon as the context does, the way a wire client with propagated
// deadlines behaves.
type ctxBackend struct{ faultyBackend }

func (f *ctxBackend) execCtx(ctx context.Context) error {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return f.err
}

func (f *ctxBackend) PlanCountContext(ctx context.Context, p Plan) (int, error) {
	if err := f.execCtx(ctx); err != nil {
		return 0, err
	}
	return f.st.PlanCount(p)
}

func (f *ctxBackend) PlanCountByVectorContext(ctx context.Context, p Plan) ([NumVectors]int, error) {
	if err := f.execCtx(ctx); err != nil {
		return [NumVectors]int{}, err
	}
	return f.st.PlanCountByVector(p)
}

func (f *ctxBackend) PlanCountByDayContext(ctx context.Context, p Plan) ([]int, error) {
	if err := f.execCtx(ctx); err != nil {
		return nil, err
	}
	return f.st.PlanCountByDay(p)
}

func (f *ctxBackend) PlanStoreContext(ctx context.Context, p Plan) (*Store, io.Closer, error) {
	if err := f.execCtx(ctx); err != nil {
		return nil, nil, err
	}
	return f.st.PlanStore(p)
}

var _ QueryableContext = (*ctxBackend)(nil)

// degradedFixture: three backends over a deterministic event split,
// with the healthy-subset oracle (backends 0 and 2) precomputed.
func degradedFixture(t *testing.T) (healthy0, healthy2 *Store, oracle *Store, all []Event) {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	all = randomEvents(rng, 900)
	healthy0 = NewStore(all[:300])
	healthy2 = NewStore(all[600:])
	oracleEvents := append(append([]Event(nil), all[:300]...), all[600:]...)
	oracle = NewStore(oracleEvents)
	return
}

func TestPartialTerminalsDegrade(t *testing.T) {
	h0, h2, oracle, all := degradedFixture(t)
	boom := errors.New("site unreachable")
	dead := &faultyBackend{st: NewStore(all[300:600]), err: boom}

	fed := QueryBackends(h0, dead, h2)

	n, statuses, err := fed.CountPartial()
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.Query().Count(); n != want {
		t.Errorf("CountPartial = %d, want healthy-subset oracle %d", n, want)
	}
	wantStates := []BackendState{BackendOK, BackendFailed, BackendOK}
	for i, s := range statuses {
		if s.State != wantStates[i] || s.Backend != i {
			t.Errorf("status[%d] = {%d %s %v}, want state %s", i, s.Backend, s.State, s.Err, wantStates[i])
		}
	}
	if !errors.Is(statuses[1].Err, boom) {
		t.Errorf("failed status carries %v, want the backend error", statuses[1].Err)
	}
	if !Degraded(statuses) {
		t.Error("Degraded = false with a failed backend")
	}

	vec, statuses, err := fed.CountByVectorPartial()
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.Query().CountByVector(); vec != want {
		t.Errorf("CountByVectorPartial = %v, want %v", vec, want)
	}
	if statuses[1].State != BackendFailed {
		t.Errorf("CountByVectorPartial status[1] = %s", statuses[1].State)
	}

	days, _, err := fed.CountByDayPartial()
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.Query().CountByDay(); !reflect.DeepEqual(days, want) {
		t.Error("CountByDayPartial mismatch vs healthy-subset oracle")
	}

	it, statuses, closer, err := fed.IterPartial()
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for range it {
		got++
	}
	closer.Close()
	if want := oracle.Query().Count(); got != want {
		t.Errorf("IterPartial yielded %d events, want %d", got, want)
	}
	if statuses[1].State != BackendFailed {
		t.Errorf("IterPartial status[1] = %s", statuses[1].State)
	}

	it, _, closer, err = fed.IterByStartPartial()
	if err != nil {
		t.Fatal(err)
	}
	var starts []int64
	for e := range it {
		starts = append(starts, e.Start)
	}
	closer.Close()
	var wantStarts []int64
	for e := range oracle.Query().IterByStart() {
		wantStarts = append(wantStarts, e.Start)
	}
	if len(starts) != len(wantStarts) {
		t.Errorf("IterByStartPartial yielded %d events, want %d", len(starts), len(wantStarts))
	}
}

func TestPartialTerminalsHealthy(t *testing.T) {
	h0, h2, oracle, _ := degradedFixture(t)
	fed := QueryBackends(h0, h2)
	n, statuses, err := fed.CountPartial()
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.Query().Count(); n != want {
		t.Errorf("CountPartial = %d, want %d", n, want)
	}
	if Degraded(statuses) {
		t.Errorf("Degraded = true over healthy backends: %v", statuses)
	}
	// Healthy partial results match the strict terminal exactly.
	strict, err := fed.Count()
	if err != nil || strict != n {
		t.Errorf("strict Count = (%d, %v), want (%d, nil)", strict, err, n)
	}
}

func TestPartialSkippedClassification(t *testing.T) {
	h0, _, _, all := degradedFixture(t)
	open := &faultyBackend{st: NewStore(all[300:600]),
		err: fmt.Errorf("circuit open: %w", ErrBackendSkipped)}
	n, statuses, err := QueryBackends(h0, open).CountPartial()
	if err != nil {
		t.Fatal(err)
	}
	if want := h0.Query().Count(); n != want {
		t.Errorf("CountPartial = %d, want %d", n, want)
	}
	if statuses[1].State != BackendSkipped {
		t.Errorf("breaker-open backend classified %s, want skipped", statuses[1].State)
	}
}

func TestPartialAllBackendsFailed(t *testing.T) {
	boom := errors.New("down")
	dead := &faultyBackend{err: boom}
	dead2 := &faultyBackend{err: boom}
	_, statuses, err := QueryBackends(dead, dead2).CountPartial()
	if err == nil {
		t.Fatal("CountPartial over all-dead backends returned no error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("all-failed error %v does not wrap the backend errors", err)
	}
	if len(statuses) != 2 || statuses[0].State != BackendFailed {
		t.Errorf("statuses = %v", statuses)
	}
	if _, _, _, err := QueryBackends(dead, dead2).IterPartial(); err == nil {
		t.Fatal("IterPartial over all-dead backends returned no error")
	}
}

// TestContextBoundsFanOut: a context deadline bounds the whole fan-out.
// A context-aware backend aborts promptly; a context-less one is
// abandoned and its slot reports the deadline error — either way the
// healthy backend's partial still comes back.
func TestContextBoundsFanOut(t *testing.T) {
	h0, _, _, all := degradedFixture(t)
	slowStore := NewStore(all[300:600])
	for _, tc := range []struct {
		name string
		slow Queryable
	}{
		{"context-aware", &ctxBackend{faultyBackend{st: slowStore, delay: 5 * time.Second}}},
		{"abandoned", &faultyBackend{st: slowStore, delay: 5 * time.Second, ctxless: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			n, statuses, err := QueryBackends(h0, tc.slow).Context(ctx).CountPartial()
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d > 2*time.Second {
				t.Fatalf("fan-out took %v, want ~the 50ms context budget", d)
			}
			if want := h0.Query().Count(); n != want {
				t.Errorf("CountPartial = %d, want the healthy backend's %d", n, want)
			}
			if statuses[1].State != BackendFailed || !errors.Is(statuses[1].Err, context.DeadlineExceeded) {
				t.Errorf("slow backend status = {%s %v}, want failed with deadline error", statuses[1].State, statuses[1].Err)
			}
		})
	}
}

// TestContextBoundsStrict: the strict terminals observe the deadline
// too — the query fails with the context error instead of hanging on
// the slow leg.
func TestContextBoundsStrict(t *testing.T) {
	h0, _, _, all := degradedFixture(t)
	slow := &ctxBackend{faultyBackend{st: NewStore(all[300:600]), delay: 5 * time.Second}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := QueryBackends(h0, slow).Context(ctx).Count()
	if err == nil {
		t.Fatal("strict Count under an expired deadline succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap the deadline error", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("strict fan-out took %v, want ~the 50ms budget", d)
	}
}

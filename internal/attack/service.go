package attack

import (
	"math"
	"strconv"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// ServiceName maps a single targeted port to a service label the way the
// paper's Table 8 does: IANA assignments plus commonly used port numbers.
// Ports without a well-known service are rendered as the bare number
// (e.g. the game-associated UDP ports 27015, 37547, ...).
func ServiceName(v Vector, port uint16) string {
	if v == VectorTCP {
		switch port {
		case 80, 8080:
			return "HTTP"
		case 443:
			return "HTTPS"
		case 3306:
			return "MySQL"
		case 53:
			return "DNS"
		case 1723:
			return "VPN PPTP"
		case 22:
			return "SSH"
		case 25:
			return "SMTP"
		case 21:
			return "FTP"
		case 6667:
			return "IRC"
		case 3389:
			return "RDP"
		case 5900:
			return "VNC"
		case 143:
			return "IMAP"
		case 110:
			return "POP3"
		}
	}
	if v == VectorUDP {
		switch port {
		case 3306:
			return "MySQL"
		case 53:
			return "DNS"
		case 123:
			return "NTP"
		case 138:
			return "NetBIOS"
		case 161:
			return "SNMP"
		case 1900:
			return "SSDP"
		}
	}
	return strconv.Itoa(int(port))
}

// WebPort reports whether the port is Web infrastructure (80/443 plus the
// common 8080 alternate), the class the paper singles out in §4.
func WebPort(port uint16) bool {
	return port == 80 || port == 443 || port == 8080
}

// TargetsWeb reports whether a telescope event potentially targets Web
// infrastructure: a TCP event whose targeted ports include a Web port.
func (e *Event) TargetsWeb() bool {
	if e.Vector != VectorTCP {
		return false
	}
	for _, p := range e.Ports {
		if WebPort(p) {
			return true
		}
	}
	return false
}

package attack

import (
	"math/rand"
	"reflect"
	"testing"

	"doscope/internal/netx"
)

// TestContainerConversion drives one container across the array→bitset
// boundary and checks membership and cardinality in both forms.
func TestContainerConversion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := tgtGen.Add(1)
	c := &container{gen: g}
	want := make(map[uint16]bool)
	for len(want) < arrContainerMax+500 {
		v := uint16(rng.Intn(1 << 16))
		want[v] = true
		c.add(v)
		c.add(v) // duplicate inserts must be no-ops
	}
	if c.bits == nil {
		t.Fatalf("container with %d entries did not convert to bitset form", len(want))
	}
	if c.n != len(want) {
		t.Fatalf("cardinality = %d, want %d", c.n, len(want))
	}
	for v := 0; v < 1<<16; v++ {
		if c.contains(uint16(v)) != want[uint16(v)] {
			t.Fatalf("contains(%d) = %v, want %v", v, !want[uint16(v)], want[uint16(v)])
		}
	}
}

// TestContainerCOW checks the generation fence: mutating a container
// under a new generation path-copies instead of writing published data.
func TestContainerCOW(t *testing.T) {
	g1 := tgtGen.Add(1)
	tb := &targetBitmap{gen: g1}
	tb.add(g1, netx.Addr(0x0a000001))
	tb.add(g1, netx.Addr(0x0a000002))

	g2 := tgtGen.Add(1)
	tb2 := tb.mut(g2)
	tb2.add(g2, netx.Addr(0x0a000003))
	tb2.add(g2, netx.Addr(0x0b000001))

	if tb.card() != 2 || tb.contains(netx.Addr(0x0a000003)) {
		t.Fatal("mutation under a new generation leaked into the old bitmap")
	}
	if tb2.card() != 4 || !tb2.contains(netx.Addr(0x0a000001)) {
		t.Fatal("path-copied bitmap lost or missed entries")
	}

	// Same-generation mutation is in place: no copies pile up.
	tb2.add(g2, netx.Addr(0x0a000004))
	if tb2.card() != 5 {
		t.Fatalf("in-place add: card = %d, want 5", tb2.card())
	}
}

// TestUnionOracle compares unionCard and unionBlocks against map-based
// brute force over randomized bitmap sets, including the dense case
// that forces bitset containers into the merge.
func TestUnionOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		nBms := 1 + rng.Intn(4)
		bms := make([]*targetBitmap, 0, nBms)
		all := make(map[netx.Addr]struct{})
		for b := 0; b < nBms; b++ {
			g := tgtGen.Add(1)
			tb := &targetBitmap{gen: g}
			n := rng.Intn(3000)
			if trial%5 == 0 {
				n = 6000 // force at least one bitset container
			}
			for i := 0; i < n; i++ {
				// Few high keys, so bitmaps overlap and containers fill.
				a := netx.Addr(uint32(rng.Intn(3))<<16 | uint32(rng.Intn(1<<14)))
				tb.add(g, a)
				all[a] = struct{}{}
			}
			bms = append(bms, tb)
		}
		bms = append(bms, nil) // nil entries must be ignored
		if got := unionCard(bms); got != len(all) {
			t.Fatalf("trial %d: unionCard = %d, want %d", trial, got, len(all))
		}
		for _, maskBits := range []int{0, 4, 8, 14, 16, 18, 22, 24, 29, 32} {
			blocks := make(map[netx.Addr]struct{})
			for a := range all {
				blocks[a.Mask(maskBits)] = struct{}{}
			}
			want := len(blocks)
			if maskBits == 0 && len(all) == 0 {
				want = 0
			}
			if got := unionBlocks(bms, maskBits); got != want {
				t.Fatalf("trial %d: unionBlocks(%d) = %d, want %d", trial, maskBits, got, want)
			}
		}
	}
}

// distinctOracle computes the expected distinct-target answers by brute
// force over a flat event slice under an optional filter.
func distinctOracle(evs []Event, match func(*Event) bool) (targets map[netx.Addr]struct{}, byDay []map[netx.Addr]struct{}) {
	targets = make(map[netx.Addr]struct{})
	byDay = make([]map[netx.Addr]struct{}, WindowDays)
	for i := range evs {
		e := &evs[i]
		if match != nil && !match(e) {
			continue
		}
		targets[e.Target] = struct{}{}
		if d := e.Day(); d >= 0 && d < WindowDays {
			if byDay[d] == nil {
				byDay[d] = make(map[netx.Addr]struct{})
			}
			byDay[d][e.Target] = struct{}{}
		}
	}
	return targets, byDay
}

// TestDistinctTerminalsOracle checks every distinct-target terminal —
// bitmap-served and scan-fallback — against brute force, over a store
// with unsealed pending tails and out-of-window rows.
func TestDistinctTerminalsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	evs := randomEvents(rng, 4000)
	st := NewStore(evs[:3800])
	st.Seal()
	for _, e := range evs[3800:] { // leave pending tails in place
		st.Add(e)
	}

	wantAll, wantByDay := distinctOracle(evs, nil)
	if got := st.Query().CountDistinctTargets(); got != len(wantAll) {
		t.Fatalf("CountDistinctTargets = %d, want %d", got, len(wantAll))
	}
	if got := st.UniqueTargets(); got != len(wantAll) {
		t.Fatalf("UniqueTargets = %d, want %d", got, len(wantAll))
	}
	for _, maskBits := range []int{8, 16, 24, 27, 32} {
		blocks := make(map[netx.Addr]struct{})
		for a := range wantAll {
			blocks[a.Mask(maskBits)] = struct{}{}
		}
		if got := st.UniqueBlocks(maskBits); got != len(blocks) {
			t.Fatalf("UniqueBlocks(%d) = %d, want %d", maskBits, got, len(blocks))
		}
	}
	gotByDay := st.Query().CountDistinctTargetsByDay()
	wantDaily := make([]int, WindowDays)
	for d, set := range wantByDay {
		wantDaily[d] = len(set)
	}
	if !reflect.DeepEqual(gotByDay, wantDaily) {
		t.Fatal("CountDistinctTargetsByDay disagrees with brute force")
	}

	// Day-filtered bitmap path.
	q := st.Query().Days(5, 60)
	wantWin, _ := distinctOracle(evs, func(e *Event) bool { d := e.Day(); return d >= 5 && d <= 60 })
	if got := q.CountDistinctTargets(); got != len(wantWin) {
		t.Fatalf("day-filtered CountDistinctTargets = %d, want %d", got, len(wantWin))
	}

	// Out-of-window day ranges must fall back to the scan and still agree.
	qOut := st.Query().Days(-30, 10)
	wantOut, _ := distinctOracle(evs, func(e *Event) bool {
		return e.Start >= WindowStart-30*86400 && e.Start < WindowStart+11*86400
	})
	if got := qOut.CountDistinctTargets(); got != len(wantOut) {
		t.Fatalf("straddling CountDistinctTargets = %d, want %d", got, len(wantOut))
	}

	// Filtered fallbacks: source, vector, predicate, prefix.
	wantTel, telByDay := distinctOracle(evs, func(e *Event) bool { return e.Source == SourceTelescope })
	if got := st.Query().Source(SourceTelescope).CountDistinctTargets(); got != len(wantTel) {
		t.Fatalf("source-filtered CountDistinctTargets = %d, want %d", got, len(wantTel))
	}
	telDaily := make([]int, WindowDays)
	for d, set := range telByDay {
		telDaily[d] = len(set)
	}
	if got := st.Query().Source(SourceTelescope).CountDistinctTargetsByDay(); !reflect.DeepEqual(got, telDaily) {
		t.Fatal("source-filtered CountDistinctTargetsByDay disagrees with brute force")
	}
	pred := func(e *Event) bool { return e.Packets%3 == 0 }
	wantPred, _ := distinctOracle(evs, pred)
	if got := st.Query().Where(pred).CountDistinctTargets(); got != len(wantPred) {
		t.Fatalf("predicate CountDistinctTargets = %d, want %d", got, len(wantPred))
	}
	prefix := evs[0].Target.Mask(16)
	wantPfx, _ := distinctOracle(evs, func(e *Event) bool { return e.Target.Mask(16) == prefix })
	if got := st.Query().TargetPrefix(prefix, 16).CountDistinctTargets(); got != len(wantPfx) {
		t.Fatalf("prefix CountDistinctTargets = %d, want %d", got, len(wantPfx))
	}

	// Empty day range.
	if got := st.Query().Days(10, 5).CountDistinctTargets(); got != 0 {
		t.Fatalf("empty-range CountDistinctTargets = %d, want 0", got)
	}
}

// TestTargetBitmapAdoption drives the watermark protocol for the bitmap
// index: reader build + registration, writer adoption on the next
// mutation, delta maintenance through live ingest, and immutability of
// the snapshot an old view holds.
func TestTargetBitmapAdoption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	evs := randomEvents(rng, 3000)
	st := NewStore(evs[:2000])
	st.Seal()

	oldView := st.view()
	want0, _ := distinctOracle(evs[:2000], nil)
	if got := st.UniqueTargets(); got != len(want0) {
		t.Fatalf("pre-adoption UniqueTargets = %d, want %d", got, len(want0))
	}
	base := st.rebuilds.Load() // counts the one bitmap build

	// Live ingest adopts the registered build and maintains it by seal
	// deltas: no further from-scratch builds.
	for _, e := range evs[2000:] {
		st.Add(e)
	}
	st.Seal()
	wantAll, _ := distinctOracle(evs, nil)
	if got := st.UniqueTargets(); got != len(wantAll) {
		t.Fatalf("post-ingest UniqueTargets = %d, want %d", got, len(wantAll))
	}
	if got := st.rebuilds.Load(); got != base {
		t.Fatalf("live ingest triggered %d extra from-scratch builds", got-base)
	}

	// The old view must still answer from its own snapshot.
	oldBms, ok := (&Query{source: -1}).collectBitmaps([]*view{oldView})
	if !ok {
		t.Fatal("collectBitmaps refused an unfiltered query")
	}
	if got := unionCard(oldBms); got != len(want0) {
		t.Fatalf("old view's bitmap answer moved to %d after ingest, want %d", got, len(want0))
	}
}

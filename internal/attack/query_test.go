package attack

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"testing/quick"

	"doscope/internal/netx"
)

// randomEvents builds n valid events spread across (and slightly outside)
// the measurement window, over both sources and all vectors.
func randomEvents(rng *rand.Rand, n int) []Event {
	events := make([]Event, n)
	for i := range events {
		e := Event{
			Target:  netx.AddrFrom4(203, byte(rng.Intn(4)), byte(rng.Intn(8)), byte(rng.Intn(32))),
			Start:   WindowStart + rng.Int63n((WindowDays+20)*86400) - 10*86400,
			Packets: rng.Uint64() % 1e9,
			Bytes:   rng.Uint64() % 1e12,
		}
		if rng.Intn(2) == 0 {
			e.Source = SourceTelescope
			e.Vector = Vector(rng.Intn(4))
			e.MaxPPS = rng.Float64() * 1e4
			for j := 0; j < rng.Intn(4); j++ {
				e.Ports = append(e.Ports, uint16(rng.Intn(65536)))
			}
		} else {
			e.Source = SourceHoneypot
			e.Vector = VectorNTP + Vector(rng.Intn(8))
			e.AvgRPS = rng.Float64() * 1e4
		}
		e.End = e.Start + rng.Int63n(86400)
		events[i] = e
	}
	return events
}

// oracleFilter is the naive full-scan the Query API must agree with.
func oracleFilter(evs []Event, match func(*Event) bool) []Event {
	var out []Event
	for i := range evs {
		if match(&evs[i]) {
			out = append(out, evs[i])
		}
	}
	return out
}

type queryCase struct {
	name   string
	build  func(q *Query) *Query
	oracle func(*Event) bool
}

func queryCases() []queryCase {
	prefix := netx.AddrFrom4(203, 1, 0, 0)
	target := netx.AddrFrom4(203, 0, 2, 5)
	return []queryCase{
		{"all", func(q *Query) *Query { return q }, func(*Event) bool { return true }},
		{"source", func(q *Query) *Query { return q.Source(SourceHoneypot) },
			func(e *Event) bool { return e.Source == SourceHoneypot }},
		{"vectors", func(q *Query) *Query { return q.Vectors(VectorTCP, VectorNTP) },
			func(e *Event) bool { return e.Vector == VectorTCP || e.Vector == VectorNTP }},
		{"days", func(q *Query) *Query { return q.Days(10, 400) },
			func(e *Event) bool { d := e.Day(); return d >= 10 && d <= 400 }},
		{"days-out-of-window", func(q *Query) *Query { return q.Days(-20, 5) },
			func(e *Event) bool { d := e.Day(); return d >= -20 && d <= 5 }},
		{"days-empty", func(q *Query) *Query { return q.Days(9, 3) },
			func(*Event) bool { return false }},
		{"prefix", func(q *Query) *Query { return q.TargetPrefix(prefix, 16) },
			func(e *Event) bool { return e.Target.Mask(16) == prefix.Mask(16) }},
		{"target", func(q *Query) *Query { return q.Target(target) },
			func(e *Event) bool { return e.Target == target }},
		{"where", func(q *Query) *Query { return q.Where(func(e *Event) bool { return e.Packets%2 == 0 }) },
			func(e *Event) bool { return e.Packets%2 == 0 }},
		{"combined", func(q *Query) *Query {
			return q.Source(SourceTelescope).Vectors(VectorTCP, VectorUDP).Days(0, 600).TargetPrefix(prefix, 18)
		}, func(e *Event) bool {
			d := e.Day()
			return e.Source == SourceTelescope &&
				(e.Vector == VectorTCP || e.Vector == VectorUDP) &&
				d >= 0 && d <= 600 && e.Target.Mask(18) == prefix.Mask(18)
		}},
	}
}

// TestQueryAgainstOracle checks every terminal against a naive full scan
// over the deprecated Events() slice.
func TestQueryAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewStore(randomEvents(rng, 4000))
	evs := append([]Event(nil), s.Events()...)

	for _, tc := range queryCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := oracleFilter(evs, tc.oracle)

			if got := tc.build(s.Query()).Events(); !reflect.DeepEqual(got, want) {
				t.Fatalf("Events: got %d events, want %d (first mismatch around %v)", len(got), len(want), firstDiff(got, want))
			}
			if got := tc.build(s.Query()).Count(); got != len(want) {
				t.Errorf("Count = %d, want %d", got, len(want))
			}

			var wantVec [NumVectors]int
			for i := range want {
				wantVec[want[i].Vector]++
			}
			if got := tc.build(s.Query()).CountByVector(); got != wantVec {
				t.Errorf("CountByVector = %v, want %v", got, wantVec)
			}

			wantDay := make([]int, WindowDays)
			for i := range want {
				if d := want[i].Day(); d >= 0 && d < WindowDays {
					wantDay[d]++
				}
			}
			if got := tc.build(s.Query()).CountByDay(); !reflect.DeepEqual(got, wantDay) {
				t.Errorf("CountByDay mismatch")
			}

			wantBy := make(map[netx.Addr][]Event)
			for i := range want {
				wantBy[want[i].Target] = append(wantBy[want[i].Target], want[i])
			}
			got := tc.build(s.Query()).GroupByTarget()
			if len(got) != len(wantBy) {
				t.Fatalf("GroupByTarget: %d targets, want %d", len(got), len(wantBy))
			}
			for addr, ptrs := range got {
				if len(ptrs) != len(wantBy[addr]) {
					t.Fatalf("GroupByTarget[%v]: %d events, want %d", addr, len(ptrs), len(wantBy[addr]))
				}
				for i, p := range ptrs {
					if !reflect.DeepEqual(*p, wantBy[addr][i]) {
						t.Fatalf("GroupByTarget[%v][%d] mismatch", addr, i)
					}
				}
			}

			// Fold must see exactly the matching events.
			type agg struct {
				n       int
				packets uint64
			}
			folded := Fold(tc.build(s.Query()),
				func() agg { return agg{} },
				func(a agg, e *Event) agg { a.n++; a.packets += e.Packets; return a },
				func(a, b agg) agg { return agg{a.n + b.n, a.packets + b.packets} })
			var wantAgg agg
			for i := range want {
				wantAgg.n++
				wantAgg.packets += want[i].Packets
			}
			if folded != wantAgg {
				t.Errorf("Fold = %+v, want %+v", folded, wantAgg)
			}
		})
	}
}

func firstDiff(got, want []Event) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			return got[i].Target.String()
		}
	}
	return "length"
}

// TestQueryMultiStore checks store-major Iter order and the merged
// IterByStart order across two stores.
func TestQueryMultiStore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	all := randomEvents(rng, 2000)
	var telEvs, hpEvs []Event
	for _, e := range all {
		if e.Source == SourceTelescope {
			telEvs = append(telEvs, e)
		} else {
			hpEvs = append(hpEvs, e)
		}
	}
	tel, hp := NewStore(telEvs), NewStore(hpEvs)

	// Iter: telescope events (sorted), then honeypot events (sorted).
	want := append(append([]Event(nil), tel.Events()...), hp.Events()...)
	if got := QueryStores(tel, hp).Events(); !reflect.DeepEqual(got, want) {
		t.Fatal("multi-store Iter is not store-major")
	}

	// IterByStart: the stable by-start merge the fusion join consumes.
	merged := append([]Event(nil), want...)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Start < merged[j].Start })
	var got []Event
	for e := range QueryStores(tel, hp).IterByStart() {
		got = append(got, *e)
	}
	if !reflect.DeepEqual(got, merged) {
		t.Fatal("IterByStart does not match the stable by-start sort")
	}

	// Filters apply on the merged stream too.
	var wantN int
	for i := range merged {
		if merged[i].Vector == VectorNTP {
			wantN++
		}
	}
	n := 0
	for range QueryStores(tel, hp).Vectors(VectorNTP).IterByStart() {
		n++
	}
	if n != wantN {
		t.Fatalf("filtered IterByStart = %d events, want %d", n, wantN)
	}
}

// TestFoldDeterministicAcrossGOMAXPROCS runs the same parallel fold under
// different worker counts; results must be identical.
func TestFoldDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tel := NewStore(randomEvents(rng, 3000))
	hp := NewStore(randomEvents(rng, 3000))

	run := func() []float64 {
		daily := Fold(QueryStores(tel, hp),
			func() []float64 { return make([]float64, WindowDays) },
			func(d []float64, e *Event) []float64 {
				if day := e.Day(); day >= 0 && day < WindowDays {
					d[day] += e.Intensity()
				}
				return d
			},
			func(a, b []float64) []float64 {
				for i := range a {
					a[i] += b[i]
				}
				return a
			})
		return daily
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var base []float64
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		got := run()
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("Fold result differs at GOMAXPROCS=%d", procs)
		}
	}
}

// TestQueryAfterAdd checks that Add invalidates the lazy indexes.
func TestQueryAfterAdd(t *testing.T) {
	s := NewStore(sampleEvents())
	if n := s.Query().Vectors(VectorNTP).Count(); n != 1 {
		t.Fatalf("NTP count = %d", n)
	}
	s.Add(Event{Source: SourceHoneypot, Vector: VectorNTP,
		Target: netx.MustParseAddr("203.0.113.8"),
		Start:  WindowStart + 50, End: WindowStart + 60})
	if n := s.Query().Vectors(VectorNTP).Count(); n != 2 {
		t.Fatalf("NTP count after Add = %d", n)
	}
	if n := s.Query().Target(netx.MustParseAddr("203.0.113.8")).Count(); n != 1 {
		t.Fatalf("target count after Add = %d", n)
	}
	if len(s.Events()) != 4 {
		t.Fatal("Events() not refreshed after Add")
	}
}

// TestRoundTripChainProperty drives events through CSV, back into a
// store, through the binary codec, and back again; every leg must
// preserve the sorted event sequence exactly.
func TestRoundTripChainProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(randomEvents(rng, int(n)%256))
		want := s.Events()

		var csvBuf bytes.Buffer
		if err := s.WriteCSV(&csvBuf); err != nil {
			return false
		}
		fromCSV, err := ReadCSV(&csvBuf)
		if err != nil {
			return false
		}
		var binBuf bytes.Buffer
		if err := fromCSV.WriteBinary(&binBuf); err != nil {
			return false
		}
		fromBin, err := ReadBinary(&binBuf)
		if err != nil {
			return false
		}
		got := fromBin.Events()
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReadBinaryRejectsBadEnums corrupts the Source and Vector bytes of a
// valid encoding; ReadBinary must reject both.
func TestReadBinaryRejectsBadEnums(t *testing.T) {
	s := NewStore(sampleEvents())
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	recStart := len(binMagic) + 8

	bad := append([]byte(nil), raw...)
	bad[recStart] = 7 // source
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad source byte accepted")
	}

	bad = append([]byte(nil), raw...)
	bad[recStart+1] = byte(NumVectors) // vector
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad vector byte accepted")
	}

	if got, err := ReadBinary(bytes.NewReader(raw)); err != nil || got.Len() != s.Len() {
		t.Errorf("pristine encoding rejected: %v", err)
	}
}

// TestReadBinaryTruncatedCount keeps the header plausible but truncates
// the body; the loop must fail cleanly instead of fabricating events.
func TestReadBinaryTruncatedCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binMagic)
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], 3)
	buf.Write(scratch[:])
	buf.Write(make([]byte, 56)) // one zeroed record, two missing
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("truncated body accepted")
	}
}

package attack

import (
	"cmp"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"doscope/internal/netx"
)

// The per-shard execution engine behind every query terminal. A
// terminal no longer hand-rolls its own view/shard loops: it compiles
// the query into an ordered list of per-shard tasks — index probes,
// by-target-permutation probes, bitmap unions, or columnar scans —
// fans the tasks over a bounded worker pool, and merges the partial
// results in task order. Because the merge consumes partials by task
// index, never by completion order, every terminal's result is
// byte-identical for any worker count and any scheduling of the pool.
//
// Tasks inherit the store's snapshot discipline: compile loads each
// store's published view exactly once, pre-resolves the lazy indexes
// the tasks will need (so the sync.Once builds run before the fan-out,
// not under it), and workers touch only that immutable snapshot. The
// worker bodies are read paths in the readpurity sense — no locks, no
// second view loads, no Store.pub — which dosvet enforces statically.

// execKind classifies one compiled task.
type execKind uint8

const (
	execScan   execKind = iota // columnar scan over the shard's hot columns
	execProbe                  // count-index or by-target-permutation probe
	execBitmap                 // target-bitmap union / popcount
)

// execOrder is a test-only hook: when set, runTasks claims task indexes
// in the returned permutation of [0, n) instead of ascending order, so
// the determinism property tests can exercise arbitrary completion
// orders. Never set outside tests.
var execOrder func(n int) []int

// runTasks runs n tasks over up to `workers` goroutines (0 means
// GOMAXPROCS). Tasks are claimed from a shared atomic counter, so an
// idle worker always has work while any task remains; the caller merges
// per-task partials in task order afterwards, which is what makes the
// fan-out order-independent.
func runTasks(workers, n int, run func(ti int)) {
	if n == 0 {
		return
	}
	var order []int
	if execOrder != nil {
		order = execOrder(n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	claim := func(k int) int {
		if k >= n {
			return -1
		}
		if order != nil {
			return order[k]
		}
		return k
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			run(claim(k))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ti := claim(int(next.Add(1)) - 1)
				if ti < 0 {
					return
				}
				run(ti)
			}
		}()
	}
	wg.Wait()
}

// Workers bounds the executor's parallelism for this query's terminals;
// 0 (the default) means GOMAXPROCS. Results are identical for any
// value — the knob exists for benchmarks, tests, and callers that want
// to cap a terminal's CPU share.
func (q *Query) Workers(n int) *Query { q.workers = n; return q }

// countMode selects what a counting task accumulates; cmRows marks a
// row-iteration compile (Iter, GroupByTarget), which never takes
// whole-view index shortcuts.
type countMode uint8

const (
	cmRows countMode = iota
	cmTotal
	cmVector
	cmDay
)

// shardTask is one unit of executor work: shard si of view vi, or the
// whole view when si is -1 (a count-index probe plus pending-tail scan).
type shardTask struct {
	vi   int
	si   int
	kind execKind
}

// executor is a query compiled against a consistent set of view
// snapshots: the task list, in merge order, plus the pre-resolved
// by-target permutations for probe tasks.
type executor struct {
	q     *Query
	views []*view
	tasks []shardTask
	tgt   [][][]int32 // per view: tgtFor() result, when probing
}

// probes reports whether the query's prefix filter is served from the
// by-target permutations: a binary-searchable target range needs at
// least a /8 (shorter prefixes cover most of the permutation, where the
// columnar scan wins).
func (q *Query) probes() bool { return q.hasPrefix && q.prefixBits >= 8 }

// indexAnswerable reports whether countViaIndex can answer the query
// exactly over a view's sealed rows.
func (q *Query) indexAnswerable(c *countsIndex, mode countMode) bool {
	if c.unindexed > 0 {
		return false
	}
	if mode == cmDay {
		// Out-of-window rows never contribute to per-day cells, so a
		// window-straddling day range cannot mis-count here.
		return true
	}
	if q.hasDays && q.dayLo <= q.dayHi && (q.dayLo < 0 || q.dayHi >= WindowDays) && c.outTotal > 0 {
		return false
	}
	return true
}

// compile loads every store's published view once and lowers the query
// to per-shard tasks. Counting modes take a single whole-view probe
// task where the count index answers exactly; prefix queries compile to
// per-shard permutation probes; everything else to per-shard scans,
// pruned by the day→shard range and the (source, vector) counts. Tasks
// are emitted view-major then shard-ascending — concatenating per-task
// results in task order reproduces Iter order, because shards partition
// the time axis.
func (q *Query) compile(mode countMode) *executor {
	ex := &executor{q: q, views: q.views()}
	lo, hi := q.shardRange()
	for vi, v := range ex.views {
		if v == nil || v.length == 0 {
			continue
		}
		if mode != cmRows && !q.hasPrefix && q.pred == nil {
			if q.indexAnswerable(v.countsFor(), mode) {
				ex.tasks = append(ex.tasks, shardTask{vi: vi, si: -1, kind: execProbe})
				continue
			}
		}
		kind := execScan
		if q.probes() {
			kind = execProbe
			if ex.tgt == nil {
				ex.tgt = make([][][]int32, len(ex.views))
			}
			// Resolve the permutations before the fan-out so the
			// once-per-view build is not serialized under the pool.
			ex.tgt[vi] = v.tgtFor()
		}
		for si := lo; si <= hi && si < len(v.shards); si++ {
			if q.mayMatch(v, si) {
				ex.tasks = append(ex.tasks, shardTask{vi: vi, si: si, kind: kind})
			}
		}
	}
	return ex
}

// prefixBounds returns the inclusive target range covered by the
// query's prefix filter.
func (q *Query) prefixBounds() (lo, hi netx.Addr) {
	lo = q.prefix
	hi = lo | netx.Addr(^uint32(0)>>q.prefixBits)
	return lo, hi
}

// probeShard serves one shard's prefix-filtered rows from the by-target
// permutation: binary search to the start of the [lo, hi] target run,
// walk it applying the residual filters, then a linear pass over the
// pending tail. When ordered, matched rows are buffered and sorted into
// (start, target, row) order — the shard's Iter order, which
// concatenates to the global one because shards partition the time
// axis. fn returning false stops the walk.
func (q *Query) probeShard(sh *shard, perm []int32, ordered bool, scratch *Event, fn func(sh *shard, i int) bool) bool {
	loT, hiT := q.prefixBounds()
	var refs []int32
	visit := func(i int) bool {
		if !q.matchKey(sh, i) {
			return true
		}
		if q.pred != nil {
			sh.view(i, scratch)
			if !q.pred(scratch) {
				return true
			}
		}
		if ordered {
			refs = append(refs, int32(i))
			return true
		}
		return fn(sh, i)
	}
	if len(perm) > 0 {
		lo := sort.Search(len(perm), func(k int) bool { return sh.target[perm[k]] >= loT })
		for k := lo; k < len(perm); k++ {
			i := int(perm[k])
			if sh.target[i] > hiT {
				break
			}
			if !visit(i) {
				return false
			}
		}
	}
	for i, n := sh.sealed, sh.rows(); i < n; i++ {
		if t := sh.target[i]; t >= loT && t <= hiT {
			if !visit(i) {
				return false
			}
		}
	}
	if !ordered {
		return true
	}
	slices.SortFunc(refs, func(a, b int32) int {
		if c := cmp.Compare(sh.start[a], sh.start[b]); c != 0 {
			return c
		}
		if c := cmp.Compare(sh.target[a], sh.target[b]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	for _, i := range refs {
		if q.pred != nil {
			sh.view(int(i), scratch)
		}
		if !fn(sh, int(i)) {
			return false
		}
	}
	return true
}

// drainTask visits every matching row of a compiled per-shard task (not
// the whole-view index tasks, which countTask answers arithmetically).
// When ordered, rows arrive in the shard's Iter order. Reports whether
// the walk ran to completion.
func (ex *executor) drainTask(ti int, ordered bool, scratch *Event, fn func(sh *shard, i int) bool) bool {
	t := ex.tasks[ti]
	v := ex.views[t.vi]
	statTask(v, t.kind)
	if t.kind == execProbe {
		return ex.q.probeShard(v.shards[t.si], ex.tgt[t.vi][t.si], ordered, scratch, fn)
	}
	return ex.q.scanShard(v.shards[t.si], scratch, ordered, fn)
}

// countPartial is one counting task's accumulator; execCounts merges
// them by summation, which is order-independent.
type countPartial struct {
	n   int
	vec [NumVectors]int
	day []int
}

// rowInc folds one matching row into the partial under the given mode.
func (p *countPartial) rowInc(mode countMode, sh *shard, i int) {
	switch mode {
	case cmTotal:
		p.n++
	case cmVector:
		if vec := int(sh.key[i] & 0xff); vec < NumVectors {
			p.vec[vec]++
		}
	case cmDay:
		if d := DayOf(sh.start[i]); d >= 0 && d < WindowDays {
			p.day[d]++
		}
	}
}

// countTask answers one compiled task: the whole-view tasks from the
// count index plus a pending-tail scan, the per-shard tasks by probe or
// scan.
func (ex *executor) countTask(ti int, mode countMode) countPartial {
	t := ex.tasks[ti]
	v := ex.views[t.vi]
	q := ex.q
	var p countPartial
	if mode == cmDay {
		p.day = make([]int, WindowDays)
	}
	if t.si < 0 {
		statTask(v, execProbe)
		c := v.countsFor()
		switch mode {
		case cmTotal:
			p.n, _ = q.countViaIndex(c, nil)
		case cmVector:
			_, _ = q.countViaIndex(c, &p.vec)
		case cmDay:
			q.indexCountByDay(c, p.day)
		}
		q.forEachPendingRow(v, func(sh *shard, i int) { p.rowInc(mode, sh, i) })
		return p
	}
	var scratch Event
	ex.drainTask(ti, false, &scratch, func(sh *shard, i int) bool {
		p.rowInc(mode, sh, i)
		return true
	})
	return p
}

// indexCountByDay adds the query's sealed per-day counts from the count
// index into out (length WindowDays).
func (q *Query) indexCountByDay(c *countsIndex, out []int) {
	dlo, dhi := 0, WindowDays-1
	if q.hasDays {
		if q.dayLo > q.dayHi || q.dayHi < 0 || q.dayLo >= WindowDays {
			return
		}
		dlo, dhi = clampDay(q.dayLo), clampDay(q.dayHi)
	}
	for d := dlo; d <= dhi; d++ {
		for src := 0; src < 2; src++ {
			if q.source >= 0 && int(q.source) != src {
				continue
			}
			for vec := 0; vec < NumVectors; vec++ {
				if q.vecMask != 0 && q.vecMask&(1<<vec) == 0 {
					continue
				}
				out[d] += int(c.day[d][src][vec])
			}
		}
	}
}

// execCounts compiles and runs a counting terminal: tasks fan out over
// the worker pool, partials merge by summation.
func (q *Query) execCounts(mode countMode) countPartial {
	ex := q.compile(mode)
	parts := make([]countPartial, len(ex.tasks))
	runTasks(q.workers, len(ex.tasks), func(ti int) {
		parts[ti] = ex.countTask(ti, mode)
	})
	var out countPartial
	if mode == cmDay {
		out.day = make([]int, WindowDays)
	}
	for i := range parts {
		out.n += parts[i].n
		for v, n := range parts[i].vec {
			out.vec[v] += n
		}
		if parts[i].day != nil {
			for d, n := range parts[i].day {
				out.day[d] += n
			}
		}
	}
	return out
}

// --- distinct-target terminals ---------------------------------------

// collectBitmaps gathers the target-bitmap cells answering a
// distinct-target terminal under the query's filters: the indexed day
// (and, absent a day filter, out-of-window) bitmaps of every shard in
// range, plus tiny query-time bitmaps over the pending tails. ok is
// false when the filters force a scan — source/vector/prefix/predicate
// filters select rows the target cells cannot resolve, and a day range
// reaching outside the window cannot be split out of the single
// out-of-window cell.
func (q *Query) collectBitmaps(views []*view) (bms []*targetBitmap, ok bool) {
	if q.source >= 0 || q.vecMask != 0 || q.hasPrefix || q.pred != nil {
		return nil, false
	}
	dlo, dhi := 0, WindowDays-1
	includeOut := true
	if q.hasDays {
		if q.dayLo < 0 || q.dayHi >= WindowDays {
			return nil, false
		}
		dlo, dhi, includeOut = q.dayLo, q.dayHi, false
	}
	lo, hi := q.shardRange()
	for _, v := range views {
		if v == nil || v.length == 0 {
			continue
		}
		statBitmap(v, true)
		tix := v.targetsFor()
		for si := lo; si <= hi && si < len(v.shards); si++ {
			sh := v.shards[si]
			if sh.rows() == 0 {
				continue
			}
			statTask(v, execBitmap)
			bms = appendShardBitmaps(bms, tix.shards[si], si, dlo, dhi, includeOut)
			bms = appendShardBitmaps(bms, tailTargets(sh, si), si, dlo, dhi, includeOut)
		}
	}
	return bms, true
}

// CountDistinctTargets returns the number of distinct target addresses
// among matching events. Filter-free (and day-filtered) queries are
// answered from the per-shard target bitmaps by container union and
// popcount; other filters fall back to a parallel per-shard scan with
// hash-set merge. Both paths count every matching row, pending tails
// included.
func (q *Query) CountDistinctTargets() int {
	if q.hasDays && q.dayLo > q.dayHi {
		return 0
	}
	views := q.views()
	if bms, ok := q.collectBitmaps(views); ok {
		return unionCard(bms)
	}
	return len(q.distinctScan(views))
}

// CountDistinctBlocks returns the number of distinct maskBits-bit
// target prefixes (e.g. 24 for /24 blocks) among matching events — the
// paper's "fraction of the address space attacked" figures. Served from
// the target bitmaps when eligible, by prefix-group counting inside the
// containers.
func (q *Query) CountDistinctBlocks(maskBits int) int {
	if q.hasDays && q.dayLo > q.dayHi {
		return 0
	}
	views := q.views()
	if bms, ok := q.collectBitmaps(views); ok {
		return unionBlocks(bms, maskBits)
	}
	seen := q.distinctScan(views)
	blocks := make(map[netx.Addr]struct{}, len(seen))
	for t := range seen {
		blocks[t.Mask(maskBits)] = struct{}{}
	}
	return len(blocks)
}

// distinctScan is the fallback distinct-target path: parallel per-shard
// scans under the full filter set, each task building a private target
// set, merged into one. Merge order is irrelevant (set union), so the
// result is worker-count independent.
func (q *Query) distinctScan(views []*view) map[netx.Addr]struct{} {
	lo, hi := q.shardRange()
	type scanTask struct{ vi, si int }
	var tasks []scanTask
	for vi, v := range views {
		if v == nil || v.length == 0 {
			continue
		}
		statBitmap(v, false)
		for si := lo; si <= hi && si < len(v.shards); si++ {
			if q.mayMatch(v, si) {
				tasks = append(tasks, scanTask{vi, si})
			}
		}
	}
	parts := make([]map[netx.Addr]struct{}, len(tasks))
	runTasks(q.workers, len(tasks), func(ti int) {
		t := tasks[ti]
		v := views[t.vi]
		statTask(v, execScan)
		set := make(map[netx.Addr]struct{})
		var scratch Event
		q.scanShard(v.shards[t.si], &scratch, false, func(sh *shard, i int) bool {
			set[sh.target[i]] = struct{}{}
			return true
		})
		parts[ti] = set
	})
	out := make(map[netx.Addr]struct{})
	for _, p := range parts {
		for t := range p {
			out[t] = struct{}{}
		}
	}
	return out
}

// CountDistinctTargetsByDay returns, per in-window start day, the
// number of distinct targets attacked that day (length WindowDays) —
// the series behind the paper's Figure-1 targets panel. The bitmap path
// runs one union task per shard (each shard owns its 8 days, so no day
// spans tasks); the fallback scans with per-day sets under the same
// sharding.
func (q *Query) CountDistinctTargetsByDay() []int {
	out := make([]int, WindowDays)
	if q.hasDays && (q.dayLo > q.dayHi || q.dayHi < 0 || q.dayLo >= WindowDays) {
		return out
	}
	views := q.views()
	dlo, dhi := 0, WindowDays-1
	if q.hasDays {
		dlo, dhi = clampDay(q.dayLo), clampDay(q.dayHi)
	}
	lo, hi := q.shardRange()
	if q.source < 0 && q.vecMask == 0 && !q.hasPrefix && q.pred == nil {
		// Bitmap path: collect each shard's cells across views (indexed
		// plus pending-tail), then one parallel union task per shard.
		stByShard := make([][]*shardTargets, numShards)
		for _, v := range views {
			if v == nil || v.length == 0 {
				continue
			}
			statBitmap(v, true)
			tix := v.targetsFor()
			for si := lo; si <= hi && si < len(v.shards); si++ {
				if v.shards[si].rows() == 0 {
					continue
				}
				statTask(v, execBitmap)
				if st := tix.shards[si]; st != nil {
					stByShard[si] = append(stByShard[si], st)
				}
				if st := tailTargets(v.shards[si], si); st != nil {
					stByShard[si] = append(stByShard[si], st)
				}
			}
		}
		var tasks []int
		for si := lo; si <= hi && si < numShards; si++ {
			if len(stByShard[si]) > 0 {
				tasks = append(tasks, si)
			}
		}
		runTasks(q.workers, len(tasks), func(ti int) {
			si := tasks[ti]
			base := si * shardDays
			var bms []*targetBitmap
			for rel := 0; rel < shardDays; rel++ {
				d := base + rel
				if d < dlo || d > dhi || d >= WindowDays {
					continue
				}
				bms = bms[:0]
				for _, st := range stByShard[si] {
					if tb := st.day[rel]; tb != nil {
						bms = append(bms, tb)
					}
				}
				out[d] = unionCard(bms)
			}
		})
		return out
	}
	// Fallback: per-shard scan tasks with per-day sets. A day's rows
	// live in exactly one shard, so each task owns its output days.
	var tasks []int
	for si := lo; si <= hi && si < numShards; si++ {
		for _, v := range views {
			if v != nil && v.length > 0 && si < len(v.shards) && q.mayMatch(v, si) {
				tasks = append(tasks, si)
				break
			}
		}
	}
	for _, v := range views {
		if v != nil && v.length > 0 {
			statBitmap(v, false)
		}
	}
	runTasks(q.workers, len(tasks), func(ti int) {
		si := tasks[ti]
		var sets [shardDays]map[netx.Addr]struct{}
		var scratch Event
		for _, v := range views {
			if v == nil || v.length == 0 || si >= len(v.shards) || !q.mayMatch(v, si) {
				continue
			}
			statTask(v, execScan)
			q.scanShard(v.shards[si], &scratch, false, func(sh *shard, i int) bool {
				d := DayOf(sh.start[i])
				if d < dlo || d > dhi {
					return true
				}
				rel := d - si*shardDays
				if rel < 0 || rel >= shardDays {
					return true
				}
				if sets[rel] == nil {
					sets[rel] = make(map[netx.Addr]struct{})
				}
				sets[rel][sh.target[i]] = struct{}{}
				return true
			})
		}
		for rel, set := range sets {
			if set != nil {
				out[si*shardDays+rel] = len(set)
			}
		}
	})
	return out
}

// --- execution counters ----------------------------------------------

// statTask attributes one executed task to the owning store's
// execution counters. Views without an owner (federated Collect
// results, hand-built snapshots) are not counted. Like the rebuild
// counter, these are atomics a read path may bump without mutating any
// store state readers depend on.
func statTask(v *view, kind execKind) {
	o := v.owner
	if o == nil {
		return
	}
	switch kind {
	case execScan:
		o.execScanTasks.Add(1)
	case execProbe:
		o.execProbeTasks.Add(1)
	case execBitmap:
		o.execBitmapTasks.Add(1)
	}
}

// statBitmap records whether a distinct-target terminal answered a
// view's rows from the bitmap index (hit) or fell back to scanning.
func statBitmap(v *view, hit bool) {
	o := v.owner
	if o == nil {
		return
	}
	if hit {
		o.bitmapHits.Add(1)
	} else {
		o.bitmapMisses.Add(1)
	}
}

// ExecStats is a snapshot of a store's query-execution counters: how
// many per-shard tasks ran by kind, and how often distinct-target
// terminals were served by the bitmap index versus falling back to a
// scan. Degraded index coverage (e.g. unindexable enum values forcing
// scans) shows up here long before it shows up in latency.
type ExecStats struct {
	ScanTasks    uint64 `json:"scan_tasks"`
	ProbeTasks   uint64 `json:"probe_tasks"`
	BitmapTasks  uint64 `json:"bitmap_tasks"`
	BitmapHits   uint64 `json:"bitmap_hits"`
	BitmapMisses uint64 `json:"bitmap_misses"`
}

// ExecStats returns the store's execution counters.
func (s *Store) ExecStats() ExecStats {
	return ExecStats{
		ScanTasks:    s.execScanTasks.Load(),
		ProbeTasks:   s.execProbeTasks.Load(),
		BitmapTasks:  s.execBitmapTasks.Load(),
		BitmapHits:   s.bitmapHits.Load(),
		BitmapMisses: s.bitmapMisses.Load(),
	}
}

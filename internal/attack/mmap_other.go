//go:build !unix

package attack

import (
	"fmt"
	"io"
	"os"
)

// mapFile substitutes for mmap on platforms without it: the whole file
// is read into memory and "unmapping" is a no-op. Segment opening loses
// its O(1) property but keeps identical semantics.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size < 0 || size > int64(int(^uint(0)>>1)) {
		return nil, nil, fmt.Errorf("unreadable file size %d", size)
	}
	data, err = io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

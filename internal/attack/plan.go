package attack

import (
	"encoding/binary"
	"fmt"

	"doscope/internal/netx"
)

// Plan is the portable, serializable form of a Query's filter set: the
// source, vector, day-range, and target-prefix filters, without the
// stores they run against. A Plan is what federation ships to a remote
// site — the site compiles it back into a Query over its local store and
// executes it there, so counting terminals move index partials instead
// of events.
//
// Where predicates are deliberately absent: arbitrary Go functions do
// not serialize, so Query.Plan refuses to compile a predicate-filtered
// query. The zero value (with Source = -1, see PlanAll) matches every
// event.
type Plan struct {
	Source     int8   // -1 = any sensor
	VecMask    uint32 // 0 = all vectors; else bit v selects Vector(v)
	HasDays    bool
	DayLo      int32 // inclusive day range, meaningful when HasDays
	DayHi      int32
	HasPrefix  bool
	PrefixBits uint8     // 0..32, meaningful when HasPrefix
	Prefix     netx.Addr // masked to PrefixBits
}

// PlanAll returns the plan matching every event.
func PlanAll() Plan { return Plan{Source: -1} }

// All reports whether the plan carries no filter at all — the case where
// a federation site can ship its store verbatim instead of materializing
// a filtered copy.
func (p Plan) All() bool {
	return p.Source < 0 && p.VecMask == 0 && !p.HasDays && !p.HasPrefix
}

// Plan compiles the query's filters into their portable form. It fails
// if the query carries a Where predicate, which cannot be serialized.
func (q *Query) Plan() (Plan, error) {
	if q.pred != nil {
		return Plan{}, fmt.Errorf("attack: a query with a Where predicate cannot be compiled to a Plan")
	}
	p := Plan{Source: q.source, VecMask: q.vecMask}
	if q.hasDays {
		p.HasDays, p.DayLo, p.DayHi = true, int32(q.dayLo), int32(q.dayHi)
	}
	if q.hasPrefix {
		p.HasPrefix, p.PrefixBits, p.Prefix = true, uint8(q.prefixBits), q.prefix
	}
	return p, nil
}

// Query compiles the plan back into an executable query over the given
// stores — the inverse of Query.Plan, used by federation sites to run a
// shipped plan against their local store.
func (p Plan) Query(stores ...*Store) *Query {
	q := QueryStores(stores...)
	q.source = p.Source
	q.vecMask = p.VecMask
	if p.HasDays {
		q.Days(int(p.DayLo), int(p.DayHi))
	}
	if p.HasPrefix {
		q.TargetPrefix(p.Prefix, int(p.PrefixBits))
	}
	return q
}

// PlanSize is the length of the fixed binary plan encoding.
const PlanSize = 20

// Plan encoding flag bits.
const (
	planHasDays   = 1 << 0
	planHasPrefix = 1 << 1
	planKnownFlag = planHasDays | planHasPrefix
)

// planAnySource encodes Source = -1 (any sensor) on the wire.
const planAnySource = 0xff

// AppendBinary appends the 20-byte plan encoding (see docs/FORMATS.md):
//
//	[0]      source (0xff = any)
//	[1]      flags (bit 0 has-days, bit 1 has-prefix)
//	[2]      prefix bits
//	[3]      reserved, zero
//	[4:8]    vector mask  (uint32 LE)
//	[8:12]   day lo       (int32 LE)
//	[12:16]  day hi       (int32 LE)
//	[16:20]  prefix       (uint32 LE)
func (p Plan) AppendBinary(b []byte) []byte {
	var buf [PlanSize]byte
	if p.Source < 0 {
		buf[0] = planAnySource
	} else {
		buf[0] = byte(p.Source)
	}
	if p.HasDays {
		buf[1] |= planHasDays
	}
	if p.HasPrefix {
		buf[1] |= planHasPrefix
		buf[2] = p.PrefixBits
	}
	binary.LittleEndian.PutUint32(buf[4:8], p.VecMask)
	if p.HasDays {
		binary.LittleEndian.PutUint32(buf[8:12], uint32(p.DayLo))
		binary.LittleEndian.PutUint32(buf[12:16], uint32(p.DayHi))
	}
	if p.HasPrefix {
		binary.LittleEndian.PutUint32(buf[16:20], uint32(p.Prefix))
	}
	return append(b, buf[:]...)
}

// DecodePlan parses the fixed binary plan encoding, validating every
// field against its domain: unknown flag bits, nonzero reserved bytes,
// out-of-range sources, vector-mask bits beyond NumVectors, prefix
// lengths beyond 32, and fields set without their flag are all rejected
// rather than trusted — a corrupt or hostile frame must not turn into a
// silently different query.
func DecodePlan(b []byte) (Plan, error) {
	if len(b) != PlanSize {
		return Plan{}, fmt.Errorf("attack: plan is %d bytes, want %d", len(b), PlanSize)
	}
	var p Plan
	switch src := b[0]; {
	case src == planAnySource:
		p.Source = -1
	case int(src) < NumSources:
		p.Source = int8(src)
	default:
		return Plan{}, fmt.Errorf("attack: plan: bad source %d", src)
	}
	flags := b[1]
	if flags&^byte(planKnownFlag) != 0 {
		return Plan{}, fmt.Errorf("attack: plan: unknown flag bits %#x", flags)
	}
	if b[3] != 0 {
		return Plan{}, fmt.Errorf("attack: plan: nonzero reserved byte")
	}
	p.VecMask = binary.LittleEndian.Uint32(b[4:8])
	if p.VecMask>>NumVectors != 0 {
		return Plan{}, fmt.Errorf("attack: plan: vector mask %#x has bits beyond %d vectors", p.VecMask, NumVectors)
	}
	dayLo := int32(binary.LittleEndian.Uint32(b[8:12]))
	dayHi := int32(binary.LittleEndian.Uint32(b[12:16]))
	if flags&planHasDays != 0 {
		p.HasDays, p.DayLo, p.DayHi = true, dayLo, dayHi
	} else if dayLo != 0 || dayHi != 0 {
		return Plan{}, fmt.Errorf("attack: plan: day range set without the has-days flag")
	}
	bits := b[2]
	prefix := binary.LittleEndian.Uint32(b[16:20])
	if flags&planHasPrefix != 0 {
		if bits > 32 {
			return Plan{}, fmt.Errorf("attack: plan: prefix length %d", bits)
		}
		p.HasPrefix, p.PrefixBits, p.Prefix = true, bits, netx.Addr(prefix)
		if p.Prefix.Mask(int(bits)) != p.Prefix {
			return Plan{}, fmt.Errorf("attack: plan: prefix %s has bits beyond /%d", p.Prefix, bits)
		}
	} else if bits != 0 || prefix != 0 {
		return Plan{}, fmt.Errorf("attack: plan: prefix set without the has-prefix flag")
	}
	return p, nil
}

package attack

import (
	"cmp"
	"math"
	"slices"

	"doscope/internal/netx"
)

// shard is one day-range bucket stored column-wise (struct of arrays).
// The hot filter columns — start, target, and the packed source|vector
// key — are what Count/CountByDay and every filtered scan read: ~14 bytes
// per event instead of the full ~90-byte record. The cold payload columns
// are only touched when a matching row is materialized into an Event
// view. Port lists live in one shared per-shard arena referenced by
// (offset, length), so ingest performs no per-event allocation.
//
// All columns are parallel: row i of every column describes event i. A
// shard opened from a DOSEVT02 segment aliases read-only (mmap'd) memory
// and is marked frozen; appendRow copies it out before mutating.
type shard struct {
	// Hot filter columns.
	start  []int64
	target []netx.Addr
	key    []uint16 // packed Source<<8 | Vector

	// Cold payload columns.
	end     []int64
	packets []uint64
	bytes   []uint64
	maxPPS  []float64
	avgRPS  []float64

	// Port lists: rows reference [portOff, portOff+portLen) in arena.
	portOff []uint32
	portLen []uint16
	arena   []uint16

	sorted  bool // rows are in (start, target) order
	counted bool // counts/unindexed reflect the current rows
	frozen  bool // columns alias read-only segment memory

	// Per-(source, vector) counts let queries prune or count the shard
	// without scanning. unindexed counts events whose Source or Vector
	// fall outside the enum ranges (possible only through Add with
	// hand-built events); a nonzero value disables the count fast paths.
	counts    [2][NumVectors]int
	unindexed int
}

// packKey packs an event's sensor and vector into the hot key column.
func packKey(src Source, vec Vector) uint16 {
	return uint16(src)<<8 | uint16(vec)
}

// rows returns the number of events in the shard.
func (sh *shard) rows() int { return len(sh.start) }

// ports returns row i's port list as a view into the arena. Out-of-range
// references (possible only in a corrupt segment file) yield nil instead
// of panicking.
func (sh *shard) ports(i int) []uint16 {
	n := int(sh.portLen[i])
	if n == 0 {
		return nil
	}
	off := int(sh.portOff[i])
	if off+n > len(sh.arena) {
		return nil
	}
	return sh.arena[off : off+n : off+n]
}

// view materializes row i into e. The Ports slice aliases the shard
// arena: valid for reading until the store is mutated.
func (sh *shard) view(i int, e *Event) {
	k := sh.key[i]
	e.Source = Source(k >> 8)
	e.Vector = Vector(k & 0xff)
	e.Target = sh.target[i]
	e.Start = sh.start[i]
	e.End = sh.end[i]
	e.Packets = sh.packets[i]
	e.Bytes = sh.bytes[i]
	e.MaxPPS = sh.maxPPS[i]
	e.AvgRPS = sh.avgRPS[i]
	e.Ports = sh.ports(i)
}

// appendRow appends e's fields to the columns, copying its ports into
// the arena. Frozen (segment-backed) shards are copied to the heap first.
func (sh *shard) appendRow(e *Event) {
	if sh.frozen {
		sh.thaw()
	}
	sh.start = append(sh.start, e.Start)
	sh.target = append(sh.target, e.Target)
	sh.key = append(sh.key, packKey(e.Source, e.Vector))
	sh.end = append(sh.end, e.End)
	sh.packets = append(sh.packets, e.Packets)
	sh.bytes = append(sh.bytes, e.Bytes)
	sh.maxPPS = append(sh.maxPPS, e.MaxPPS)
	sh.avgRPS = append(sh.avgRPS, e.AvgRPS)
	n := len(e.Ports)
	if n > math.MaxUint16 {
		n = math.MaxUint16
	}
	sh.portOff = append(sh.portOff, uint32(len(sh.arena)))
	sh.portLen = append(sh.portLen, uint16(n))
	sh.arena = append(sh.arena, e.Ports[:n]...)
	sh.sorted, sh.counted = false, false
}

// thaw copies every column out of read-only segment memory so the shard
// can be appended to and re-sorted.
func (sh *shard) thaw() {
	sh.start = slices.Clone(sh.start)
	sh.target = slices.Clone(sh.target)
	sh.key = slices.Clone(sh.key)
	sh.end = slices.Clone(sh.end)
	sh.packets = slices.Clone(sh.packets)
	sh.bytes = slices.Clone(sh.bytes)
	sh.maxPPS = slices.Clone(sh.maxPPS)
	sh.avgRPS = slices.Clone(sh.avgRPS)
	sh.portOff = slices.Clone(sh.portOff)
	sh.portLen = slices.Clone(sh.portLen)
	sh.arena = slices.Clone(sh.arena)
	sh.frozen = false
}

// gather applies a row permutation to one column.
func gather[T any](col []T, perm []int32) []T {
	out := make([]T, len(col))
	for i, p := range perm {
		out[i] = col[p]
	}
	return out
}

// sortAndCount re-sorts the shard's rows by (Start, Target) and refreshes
// its counts. The sort orders a row permutation over the two hot columns
// and then gathers every column through it; arena entries never move,
// only the (offset, length) references do.
func (sh *shard) sortAndCount() {
	n := sh.rows()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	slices.SortStableFunc(perm, func(a, b int32) int {
		if c := cmp.Compare(sh.start[a], sh.start[b]); c != 0 {
			return c
		}
		return cmp.Compare(sh.target[a], sh.target[b])
	})
	inOrder := true
	for i := range perm {
		if perm[i] != int32(i) {
			inOrder = false
			break
		}
	}
	if !inOrder {
		sh.start = gather(sh.start, perm)
		sh.target = gather(sh.target, perm)
		sh.key = gather(sh.key, perm)
		sh.end = gather(sh.end, perm)
		sh.packets = gather(sh.packets, perm)
		sh.bytes = gather(sh.bytes, perm)
		sh.maxPPS = gather(sh.maxPPS, perm)
		sh.avgRPS = gather(sh.avgRPS, perm)
		sh.portOff = gather(sh.portOff, perm)
		sh.portLen = gather(sh.portLen, perm)
	}
	sh.countRows()
	sh.sorted = true
}

// countRows rebuilds the per-(source, vector) counts from the key column.
func (sh *shard) countRows() {
	sh.counts = [2][NumVectors]int{}
	sh.unindexed = 0
	for _, k := range sh.key {
		src, vec := int(k>>8), int(k&0xff)
		if src < 2 && vec < NumVectors {
			sh.counts[src][vec]++
		} else {
			sh.unindexed++
		}
	}
	sh.counted = true
}

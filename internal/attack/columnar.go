package attack

import (
	"cmp"
	"math"
	"slices"

	"doscope/internal/netx"
)

// shard is one day-range bucket stored column-wise (struct of arrays).
// The hot filter columns — start, target, and the packed source|vector
// key — are what Count/CountByDay and every filtered scan read: ~14 bytes
// per event instead of the full ~90-byte record. The cold payload columns
// are only touched when a matching row is materialized into an Event
// view. Port lists live in one shared per-shard arena referenced by
// (offset, length), so ingest performs no per-event allocation.
//
// All columns are parallel: row i of every column describes event i.
// Physical rows are append-only and NEVER move: (shard, row) handles
// handed out by the by-target index stay valid for the life of the
// store. Sorted-order iteration goes through the ord permutation
// instead of permuting the columns.
//
// Rows are split into a sealed body and a pending tail:
//
//   - rows [0, sealed) are the body; ord (when non-nil, len == sealed)
//     lists them in (start, target) order. ord == nil means the body is
//     physically in (start, target) order already (the common case for
//     time-ordered ingest and for segment-backed shards).
//   - rows [sealed, rows()) are the pending tail, in arrival order.
//     Appends park here; queries that do not need sorted order scan the
//     tail linearly, and seal merges it into the body ordering.
//
// A shard opened from a DOSEVT02 segment aliases read-only (mmap'd)
// memory and is marked frozen; appendRow copies it out before mutating.
type shard struct {
	// Hot filter columns.
	start  []int64
	target []netx.Addr
	key    []uint16 // packed Source<<8 | Vector

	// Cold payload columns.
	end     []int64
	packets []uint64
	bytes   []uint64
	maxPPS  []float64
	avgRPS  []float64

	// Port lists: rows reference [portOff, portOff+portLen) in arena.
	portOff []uint32
	portLen []uint16
	arena   []uint16

	// ord lists the sealed body rows in (start, target) order; nil means
	// physical order is already sorted. len(ord) == sealed when non-nil.
	ord    []int32
	sealed int  // rows [0, sealed) are ordered by ord; the rest are tail
	frozen bool // columns alias read-only segment memory

	// tgt lists the sealed body rows in (target, start, row) order — the
	// by-target index, maintained by seal-time merges once the store has
	// adopted a reader-built permutation (see Store.adoptLazy). nil means
	// no exact-target query has ever run against the store; readers then
	// build a per-view permutation themselves.
	tgt []int32

	// Per-(source, vector) counts let queries prune or count the shard
	// without scanning. They cover ALL rows including the pending tail:
	// appendRow maintains them incrementally once counted is set (a
	// frozen segment shard gets one countRows pass on first use).
	// unindexed counts events whose Source or Vector fall outside the
	// enum ranges (possible only through Add with hand-built events); a
	// nonzero value disables the count fast paths.
	counts    [2][NumVectors]int
	unindexed int
	counted   bool // counts/unindexed reflect the current rows
}

// packKey packs an event's sensor and vector into the hot key column.
func packKey(src Source, vec Vector) uint16 {
	return uint16(src)<<8 | uint16(vec)
}

// rows returns the number of events in the shard.
func (sh *shard) rows() int { return len(sh.start) }

// tail returns the number of pending (unsealed) rows.
func (sh *shard) tail() int { return sh.rows() - sh.sealed }

// ordRow maps sorted position k to its physical row index.
func (sh *shard) ordRow(k int) int {
	if sh.ord == nil {
		return k
	}
	return int(sh.ord[k])
}

// ports returns row i's port list as a view into the arena. Out-of-range
// references (possible only in a corrupt segment file) yield nil instead
// of panicking.
func (sh *shard) ports(i int) []uint16 {
	n := int(sh.portLen[i])
	if n == 0 {
		return nil
	}
	off := int(sh.portOff[i])
	if off+n > len(sh.arena) {
		return nil
	}
	return sh.arena[off : off+n : off+n]
}

// view materializes row i into e. The Ports slice aliases the shard
// arena: valid for reading until the store is mutated.
func (sh *shard) view(i int, e *Event) {
	k := sh.key[i]
	e.Source = Source(k >> 8)
	e.Vector = Vector(k & 0xff)
	e.Target = sh.target[i]
	e.Start = sh.start[i]
	e.End = sh.end[i]
	e.Packets = sh.packets[i]
	e.Bytes = sh.bytes[i]
	e.MaxPPS = sh.maxPPS[i]
	e.AvgRPS = sh.avgRPS[i]
	e.Ports = sh.ports(i)
}

// appendRow appends e's fields to the columns as a pending-tail row,
// copying its ports into the arena. Frozen (segment-backed) shards are
// copied to the heap first. The per-shard counts are maintained
// incrementally, so appending never invalidates them; a shard that was
// opened uncounted (from a segment) gets its one countRows pass here,
// on the writer side — read paths never count.
func (sh *shard) appendRow(e *Event) {
	if sh.frozen {
		sh.thaw()
	}
	sh.start = append(sh.start, e.Start)
	sh.target = append(sh.target, e.Target)
	sh.key = append(sh.key, packKey(e.Source, e.Vector))
	sh.end = append(sh.end, e.End)
	sh.packets = append(sh.packets, e.Packets)
	sh.bytes = append(sh.bytes, e.Bytes)
	sh.maxPPS = append(sh.maxPPS, e.MaxPPS)
	sh.avgRPS = append(sh.avgRPS, e.AvgRPS)
	n := len(e.Ports)
	if n > math.MaxUint16 {
		n = math.MaxUint16
	}
	sh.portOff = append(sh.portOff, uint32(len(sh.arena)))
	sh.portLen = append(sh.portLen, uint16(n))
	sh.arena = append(sh.arena, e.Ports[:n]...)
	if !sh.counted {
		sh.countRows()
	} else if src, vec := int(sh.key[len(sh.key)-1]>>8), int(e.Vector); src < 2 && vec < NumVectors {
		sh.counts[src][vec]++
	} else {
		sh.unindexed++
	}
}

// thaw copies every column out of read-only segment memory so the shard
// can be appended to.
func (sh *shard) thaw() {
	sh.start = slices.Clone(sh.start)
	sh.target = slices.Clone(sh.target)
	sh.key = slices.Clone(sh.key)
	sh.end = slices.Clone(sh.end)
	sh.packets = slices.Clone(sh.packets)
	sh.bytes = slices.Clone(sh.bytes)
	sh.maxPPS = slices.Clone(sh.maxPPS)
	sh.avgRPS = slices.Clone(sh.avgRPS)
	sh.portOff = slices.Clone(sh.portOff)
	sh.portLen = slices.Clone(sh.portLen)
	sh.arena = slices.Clone(sh.arena)
	sh.frozen = false
}

// gather copies one column through a row permutation (used by the
// segment writer to emit physically sorted blocks without permuting the
// live shard).
func gather[T any](col []T, perm []int32) []T {
	out := make([]T, len(perm))
	for i, p := range perm {
		out[i] = col[p]
	}
	return out
}

// cmpRows orders two physical rows by the (start, target) sort key.
func (sh *shard) cmpRows(a, b int32) int {
	if c := cmp.Compare(sh.start[a], sh.start[b]); c != 0 {
		return c
	}
	return cmp.Compare(sh.target[a], sh.target[b])
}

// cmpRowsTgt orders two physical rows by the (target, start, row) key
// the by-target permutation uses. The physical-row tiebreak makes the
// order total, so plain sorts are deterministic without stability.
func (sh *shard) cmpRowsTgt(a, b int32) int {
	if c := cmp.Compare(sh.target[a], sh.target[b]); c != 0 {
		return c
	}
	if c := cmp.Compare(sh.start[a], sh.start[b]); c != 0 {
		return c
	}
	return cmp.Compare(a, b)
}

// seal merges the pending tail into the body ordering: the tail rows
// are sorted among themselves (stable, so equal keys keep arrival
// order) and then sorted-merged with the body's ord run. Cost is
// O(tail log tail + body) — proportional to the delta plus one linear
// merge — instead of the O(n log n) full re-sort of the pre-incremental
// store, and no column data moves, so existing (shard, row) handles
// stay valid.
//
// The merges are publication-safe by construction: they either append
// past the length of any previously published permutation header or
// allocate a fresh slice, never rewriting entries a published view can
// see. trackTgt additionally merges the tail into the by-target
// permutation under the same discipline.
func (sh *shard) seal(trackTgt bool) {
	n := sh.rows()
	t := n - sh.sealed
	if t == 0 {
		return
	}
	tail := make([]int32, t)
	for i := range tail {
		tail[i] = int32(sh.sealed + i)
	}
	slices.SortStableFunc(tail, sh.cmpRows)
	body := sh.sealed
	if trackTgt {
		sh.sealTgt(body, n)
	}
	sh.sealed = n
	// Append fast path: a tail that sorts entirely after the body (the
	// common case for time-ordered live ingest) extends the run without
	// a merge; with an identity body it costs nothing at all.
	if body == 0 || sh.cmpRows(int32(sh.ordRow(body-1)), tail[0]) <= 0 {
		if sh.ord == nil {
			if tailIsIdentity(tail, body) {
				return
			}
			sh.ord = identity(body)
		}
		sh.ord = append(sh.ord, tail...)
		return
	}
	merged := make([]int32, 0, n)
	bi, ti := 0, 0
	for bi < body && ti < t {
		b := int32(sh.ordRow(bi))
		// Ties keep the body row first: physical order is arrival order,
		// and tail rows arrived later.
		if sh.cmpRows(b, tail[ti]) <= 0 {
			merged = append(merged, b)
			bi++
		} else {
			merged = append(merged, tail[ti])
			ti++
		}
	}
	for ; bi < body; bi++ {
		merged = append(merged, int32(sh.ordRow(bi)))
	}
	merged = append(merged, tail[ti:]...)
	sh.ord = merged
}

// sortedTgtRows returns rows [lo, hi) sorted by the by-target key.
func (sh *shard) sortedTgtRows(lo, hi int) []int32 {
	rows := make([]int32, hi-lo)
	for i := range rows {
		rows[i] = int32(lo + i)
	}
	slices.SortFunc(rows, sh.cmpRowsTgt)
	return rows
}

// mergeTgtPerms merges two (target, start, row)-sorted permutations
// into a fresh slice. Pure — safe for read-side catch-up over shared
// permutations as well as the writer's seal merge.
func (sh *shard) mergeTgtPerms(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if sh.cmpRowsTgt(a[i], b[j]) < 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// sealTgt merges rows [body, n) into the by-target permutation. The
// body permutation is normally already maintained (adoption hands the
// writer a full-length permutation); a missing one is built here, on
// the writer side, in the one case adoption could not cover the shard
// (it had no sealed rows when the index was adopted).
func (sh *shard) sealTgt(body, n int) {
	if len(sh.tgt) != body {
		sh.tgt = sh.sortedTgtRows(0, body)
	}
	tail := sh.sortedTgtRows(body, n)
	if body == 0 || sh.cmpRowsTgt(sh.tgt[body-1], tail[0]) < 0 {
		sh.tgt = append(sh.tgt, tail...)
		return
	}
	sh.tgt = sh.mergeTgtPerms(sh.tgt[:body], tail)
}

// tailPerm returns the pending-tail rows sorted by (start, target),
// arrival order breaking ties — exactly the order seal would merge them
// in. Read-only: terminals that need sorted output use it to merge the
// tail on the fly instead of sealing.
func (sh *shard) tailPerm() []int32 {
	t := sh.tail()
	if t == 0 {
		return nil
	}
	tail := make([]int32, t)
	for i := range tail {
		tail[i] = int32(sh.sealed + i)
	}
	slices.SortStableFunc(tail, sh.cmpRows)
	return tail
}

// mergeCursor walks a shard snapshot's rows in global (start, target)
// order without mutating anything: the sealed body through its ord
// permutation, the pending tail through a temporary sorted permutation,
// two-way merged with body-first ties (physical order is arrival order,
// and tail rows arrived later). It yields exactly the order seal would
// have produced.
type mergeCursor struct {
	sh   *shard
	k    int // position in the body ordering
	body int
	tail []int32
	t    int
}

func newMergeCursor(sh *shard) mergeCursor {
	return mergeCursor{sh: sh, body: sh.sealed, tail: sh.tailPerm()}
}

// peek returns the next physical row in merged order, or -1 when the
// cursor is exhausted.
func (c *mergeCursor) peek() int {
	if c.k < c.body {
		b := int32(c.sh.ordRow(c.k))
		if c.t >= len(c.tail) || c.sh.cmpRows(b, c.tail[c.t]) <= 0 {
			return int(b)
		}
		return int(c.tail[c.t])
	}
	if c.t < len(c.tail) {
		return int(c.tail[c.t])
	}
	return -1
}

// advance consumes the row peek would return.
func (c *mergeCursor) advance() {
	if c.k < c.body {
		b := int32(c.sh.ordRow(c.k))
		if c.t >= len(c.tail) || c.sh.cmpRows(b, c.tail[c.t]) <= 0 {
			c.k++
			return
		}
	}
	c.t++
}

// next returns and consumes the next row in merged order, -1 when
// exhausted — the drain loop every terminal but IterByStart (which
// needs peek and advance split around its k-way merge) uses.
func (c *mergeCursor) next() int {
	if c.k < c.body {
		b := int32(c.sh.ordRow(c.k))
		if c.t >= len(c.tail) || c.sh.cmpRows(b, c.tail[c.t]) <= 0 {
			c.k++
			return int(b)
		}
		c.t++
		return int(c.tail[c.t-1])
	}
	if c.t < len(c.tail) {
		c.t++
		return int(c.tail[c.t-1])
	}
	return -1
}

// fullOrd returns a permutation listing ALL rows — sealed body and
// pending tail — in (start, target) order, or nil when the physical
// layout already is that order. Pure: unlike seal it never updates the
// shard, so the segment writer can run against a live snapshot.
func (sh *shard) fullOrd() []int32 {
	if sh.tail() == 0 {
		return sh.ord
	}
	out := make([]int32, 0, sh.rows())
	c := newMergeCursor(sh)
	for i := c.next(); i >= 0; i = c.next() {
		out = append(out, int32(i))
	}
	if tailIsIdentity(out, 0) {
		return nil
	}
	return out
}

// tailIsIdentity reports whether the sorted tail indexes are exactly
// base, base+1, ... — i.e. the tail was appended already in order.
func tailIsIdentity(tail []int32, base int) bool {
	for i, p := range tail {
		if p != int32(base+i) {
			return false
		}
	}
	return true
}

// identity builds the identity permutation of length n.
func identity(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// countRows rebuilds the per-(source, vector) counts from the key
// column. Only segment-backed shards (which arrive uncounted) ever need
// this; heap shards maintain their counts incrementally in appendRow.
func (sh *shard) countRows() {
	sh.counts = [2][NumVectors]int{}
	sh.unindexed = 0
	for _, k := range sh.key {
		src, vec := int(k>>8), int(k&0xff)
		if src < 2 && vec < NumVectors {
			sh.counts[src][vec]++
		} else {
			sh.unindexed++
		}
	}
	sh.counted = true
}

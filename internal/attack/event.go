// Package attack defines the attack-event schema shared by the telescope
// and honeypot substrates and consumed by the fusion pipeline, together
// with an indexed store and CSV/binary persistence.
//
// The schema mirrors the union of what the two sensors can observe: the
// telescope sees randomly spoofed (direct) attacks with an IP protocol,
// target ports and a max packet rate; the honeypots see reflection attacks
// with an amplification vector and an average request rate.
package attack

import (
	"fmt"
	"slices"
	"time"

	"doscope/internal/netx"
)

// Measurement window used throughout the reproduction: March 1, 2015 to
// February 28, 2017 inclusive (731 days), the paper's observation period.
const (
	WindowStart int64 = 1425168000 // 2015-03-01T00:00:00Z
	WindowDays        = 731
	WindowEnd   int64 = WindowStart + WindowDays*86400
)

// DayOf maps a unix timestamp to a day index within the window; times
// before the window map to negative values (floor division, so even
// times less than a day before the window are day -1, not day 0).
func DayOf(t int64) int {
	d := t - WindowStart
	if d < 0 {
		d -= 86399
	}
	return int(d / 86400)
}

// DayStart returns the unix timestamp of midnight starting the given day
// index.
func DayStart(day int) int64 { return WindowStart + int64(day)*86400 }

// Date returns the calendar time of a unix timestamp.
func Date(t int64) time.Time { return time.Unix(t, 0).UTC() }

// Source identifies the sensor that observed an event.
type Source uint8

// Sensors.
const (
	SourceTelescope Source = iota
	SourceHoneypot
	NumSources = int(SourceHoneypot) + 1
)

// String names the sensor.
func (s Source) String() string {
	switch s {
	case SourceTelescope:
		return "telescope"
	case SourceHoneypot:
		return "honeypot"
	}
	return fmt.Sprintf("source-%d", uint8(s))
}

// Vector is the attack vector: an IP protocol for randomly spoofed
// attacks, or an amplification protocol for reflection attacks.
type Vector uint8

// Telescope (randomly spoofed) vectors.
const (
	VectorTCP Vector = iota
	VectorUDP
	VectorICMP
	VectorOtherIP
	// Honeypot (reflection) vectors; the eight protocols AmpPot emulates.
	VectorNTP
	VectorDNS
	VectorCharGen
	VectorSSDP
	VectorRIPv1
	VectorQOTD
	VectorMSSQL
	VectorTFTP
	NumVectors = int(VectorTFTP) + 1
)

// String names the vector as the paper prints it.
func (v Vector) String() string {
	switch v {
	case VectorTCP:
		return "TCP"
	case VectorUDP:
		return "UDP"
	case VectorICMP:
		return "ICMP"
	case VectorOtherIP:
		return "Other"
	case VectorNTP:
		return "NTP"
	case VectorDNS:
		return "DNS"
	case VectorCharGen:
		return "CharGen"
	case VectorSSDP:
		return "SSDP"
	case VectorRIPv1:
		return "RIPv1"
	case VectorQOTD:
		return "QOTD"
	case VectorMSSQL:
		return "MSSQL"
	case VectorTFTP:
		return "TFTP"
	}
	return fmt.Sprintf("vector-%d", uint8(v))
}

// IsReflection reports whether the vector is an amplification protocol.
func (v Vector) IsReflection() bool { return v >= VectorNTP }

// ParseVector inverts String.
func ParseVector(s string) (Vector, error) {
	for v := Vector(0); int(v) < NumVectors; v++ {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("attack: unknown vector %q", s)
}

// Event is one inferred DoS attack event.
type Event struct {
	Source Source
	Vector Vector
	Target netx.Addr
	// Start and End are unix timestamps delimiting the observed attack.
	Start, End int64
	// Packets and Bytes observed by the sensor.
	Packets, Bytes uint64
	// MaxPPS is the maximum per-minute packet rate observed at the
	// telescope (multiply by 256 to estimate the rate at the victim).
	// Zero for honeypot events.
	MaxPPS float64
	// AvgRPS is the average reflector request rate for honeypot events.
	// Zero for telescope events.
	AvgRPS float64
	// Ports holds the distinct targeted ports for telescope events,
	// sorted ascending, truncated to MaxTrackedPorts.
	Ports []uint16
}

// MaxTrackedPorts bounds the per-event distinct-port list; the telescope
// classifier only needs single- vs multi-port discrimination plus the
// top-port identity, matching the paper's Table 7/8 analyses.
const MaxTrackedPorts = 16

// Clone returns a deep copy of e that is safe to retain indefinitely.
// The *Event yielded by Iter/IterByStart (and handed to Fold
// accumulators) is a per-iteration scratch whose struct is reused on
// the next yield and whose Ports alias the store's arena — Clone is
// the one blessed way to keep an event past its callback (the
// scratchescape analyzer in internal/lint enforces this).
func (e *Event) Clone() *Event {
	cp := *e
	cp.Ports = slices.Clone(e.Ports)
	return &cp
}

// Duration returns End-Start in seconds.
func (e *Event) Duration() int64 { return e.End - e.Start }

// Day returns the day index of the event start (multi-day attacks count
// toward the day they began, following the paper's convention).
func (e *Event) Day() int { return DayOf(e.Start) }

// Intensity returns the sensor-specific intensity attribute: MaxPPS for
// telescope events, AvgRPS for honeypot events.
func (e *Event) Intensity() float64 {
	if e.Source == SourceTelescope {
		return e.MaxPPS
	}
	return e.AvgRPS
}

// SinglePort reports whether the event targeted exactly one port.
func (e *Event) SinglePort() bool { return len(e.Ports) == 1 }

// Overlaps reports whether two events intersect in time.
func (e *Event) Overlaps(o *Event) bool {
	return e.Start <= o.End && o.Start <= e.End
}

// EstimatedVictimPPS estimates the packet rate at the victim. For
// telescope events the /8 darknet sees 1/256 of uniformly spoofed
// backscatter, so the observed max rate is multiplied by 256.
func (e *Event) EstimatedVictimPPS() float64 {
	if e.Source == SourceTelescope {
		return e.MaxPPS * 256
	}
	return e.AvgRPS
}

package attack

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"doscope/internal/netx"
)

// setExecOrder installs a task-claim permutation for runTasks: seed -1
// restores natural order, 0 reverses, anything else shuffles under that
// seed. Callers must restore with defer resetExecOrder().
func setExecOrder(seed int64) {
	if seed < 0 {
		execOrder = nil
		return
	}
	execOrder = func(n int) []int {
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		if seed == 0 {
			slices.Reverse(p)
		} else {
			rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
		}
		return p
	}
}

func resetExecOrder() { execOrder = nil }

func hashEvent(h interface{ Write([]byte) (int, error) }, e *Event) {
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d|%g|%g|%v;",
		e.Source, e.Vector, uint32(e.Target), e.Start, e.End, e.Packets, e.Bytes, e.MaxPPS, e.AvgRPS, e.Ports)
}

// fingerprint executes every local terminal of the query the factory
// builds and serializes the results into one comparable string. Queries
// are single-use, so each terminal gets a fresh one.
func fingerprint(t *testing.T, qf func() *Query) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d;", qf().Count())
	fmt.Fprintf(&b, "vec=%v;", qf().CountByVector())
	fmt.Fprintf(&b, "day=%v;", qf().CountByDay())
	fmt.Fprintf(&b, "dt=%d;", qf().CountDistinctTargets())
	fmt.Fprintf(&b, "db24=%d;", qf().CountDistinctBlocks(24))
	fmt.Fprintf(&b, "dtd=%v;", qf().CountDistinctTargetsByDay())

	h := fnv.New64a()
	for e := range qf().Iter() {
		hashEvent(h, e)
	}
	fmt.Fprintf(&b, "iter=%x;", h.Sum64())

	h = fnv.New64a()
	for e := range qf().IterByStart() {
		hashEvent(h, e)
	}
	fmt.Fprintf(&b, "bystart=%x;", h.Sum64())

	groups := qf().GroupByTarget()
	keys := make([]netx.Addr, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	h = fnv.New64a()
	for _, k := range keys {
		fmt.Fprintf(h, "%d:", uint32(k))
		for _, e := range groups[k] {
			hashEvent(h, e)
		}
	}
	fmt.Fprintf(&b, "group=%x;", h.Sum64())

	// Fold with a non-commutative, non-associative-under-reorder merge:
	// any change in event order within a task or partial order across
	// tasks changes the result.
	folded := Fold(qf(), func() uint64 { return 1469598103934665603 },
		func(acc uint64, e *Event) uint64 {
			return acc*1099511628211 + uint64(uint32(e.Target)) + uint64(e.Start)
		},
		func(a, b uint64) uint64 { return a*37 + b })
	fmt.Fprintf(&b, "fold=%x;", folded)

	var bin bytes.Buffer
	if err := qf().Collect().WriteBinary(&bin); err != nil {
		t.Fatalf("Collect().WriteBinary: %v", err)
	}
	h = fnv.New64a()
	h.Write(bin.Bytes())
	fmt.Fprintf(&b, "collect=%x;", h.Sum64())
	return b.String()
}

// fedFingerprint does the same over the federated strict terminals.
func fedFingerprint(t *testing.T, ff func() *FedQuery) string {
	t.Helper()
	var b strings.Builder
	n, err := ff().Count()
	if err != nil {
		t.Fatalf("fed Count: %v", err)
	}
	fmt.Fprintf(&b, "count=%d;", n)
	vec, err := ff().CountByVector()
	if err != nil {
		t.Fatalf("fed CountByVector: %v", err)
	}
	fmt.Fprintf(&b, "vec=%v;", vec)
	day, err := ff().CountByDay()
	if err != nil {
		t.Fatalf("fed CountByDay: %v", err)
	}
	fmt.Fprintf(&b, "day=%v;", day)
	it, closer, err := ff().Iter()
	if err != nil {
		t.Fatalf("fed Iter: %v", err)
	}
	h := fnv.New64a()
	for e := range it {
		hashEvent(h, e)
	}
	closer.Close()
	fmt.Fprintf(&b, "iter=%x;", h.Sum64())
	return b.String()
}

// TestExecutorDeterminism is the executor's core property: every
// terminal returns byte-identical results for any worker count and any
// task completion order, over live stores (pending tails included),
// segment-backed stores, multi-store queries, and federated backends.
// The race CI job additionally runs this under -cpu 1,2,4, varying
// GOMAXPROCS for the default worker count.
func TestExecutorDeterminism(t *testing.T) {
	defer resetExecOrder()
	rng := rand.New(rand.NewSource(7))
	evs := randomEvents(rng, 3000)
	live := NewStore(evs[:2500])
	live.Seal()
	for _, e := range evs[2500:2900] {
		live.Add(e) // leaves pending tails
	}
	second := NewStore(evs[2900:])
	second.Seal()

	var seg bytes.Buffer
	if err := live.WriteSegment(&seg); err != nil {
		t.Fatalf("WriteSegment: %v", err)
	}
	segst, err := OpenSegment(seg.Bytes())
	if err != nil {
		t.Fatalf("OpenSegment: %v", err)
	}

	prefix := evs[0].Target.Mask(16)
	pred := func(e *Event) bool { return e.Packets%2 == 0 }
	shapes := []struct {
		name  string
		build func(w int) *Query
	}{
		{"unfiltered-live", func(w int) *Query { return live.Query().Workers(w) }},
		{"days-pred-live", func(w int) *Query { return live.Query().Days(5, 100).Where(pred).Workers(w) }},
		{"prefix-live", func(w int) *Query { return live.Query().TargetPrefix(prefix, 16).Workers(w) }},
		{"unfiltered-segment", func(w int) *Query { return segst.Query().Workers(w) }},
		{"multi-store", func(w int) *Query { return QueryStores(live, second).Workers(w) }},
	}
	variants := []struct {
		workers int
		seed    int64 // exec-order seed; -1 = natural
	}{
		{1, -1}, {2, 0}, {4, 1}, {8, 2}, {3, 3},
	}
	for _, shape := range shapes {
		setExecOrder(-1)
		want := fingerprint(t, func() *Query { return shape.build(1) })
		for _, v := range variants[1:] {
			setExecOrder(v.seed)
			got := fingerprint(t, func() *Query { return shape.build(v.workers) })
			if got != want {
				t.Fatalf("%s: workers=%d order-seed=%d diverged:\n got %s\nwant %s",
					shape.name, v.workers, v.seed, got, want)
			}
		}
	}

	// Federated strict terminals over local Queryable backends.
	setExecOrder(-1)
	fedWant := fedFingerprint(t, func() *FedQuery { return QueryBackends(live, second).Days(0, WindowDays-1) })
	for _, seed := range []int64{0, 1, 2} {
		setExecOrder(seed)
		if got := fedFingerprint(t, func() *FedQuery { return QueryBackends(live, second).Days(0, WindowDays-1) }); got != fedWant {
			t.Fatalf("federated: order-seed=%d diverged:\n got %s\nwant %s", seed, got, fedWant)
		}
	}
}

// TestExecStats checks the index-vs-scan execution counters: probe
// tasks for index-served counts and prefix queries, scan tasks for
// predicate queries, bitmap hits and misses for the distinct terminals.
func TestExecStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	st := NewStore(randomEvents(rng, 1000))
	st.Seal()

	before := st.ExecStats()
	st.Query().Count() // index-answerable → whole-view probe task
	after := st.ExecStats()
	if after.ProbeTasks == before.ProbeTasks {
		t.Fatal("index-served Count did not record a probe task")
	}

	before = after
	st.Query().Where(func(e *Event) bool { return true }).Count()
	after = st.ExecStats()
	if after.ScanTasks == before.ScanTasks {
		t.Fatal("predicate Count did not record scan tasks")
	}

	before = after
	st.Query().TargetPrefix(netx.AddrFrom4(203, 0, 0, 0), 16).Count()
	after = st.ExecStats()
	if after.ProbeTasks == before.ProbeTasks {
		t.Fatal("prefix Count did not record probe tasks")
	}

	before = after
	st.UniqueTargets()
	after = st.ExecStats()
	if after.BitmapTasks == before.BitmapTasks || after.BitmapHits == before.BitmapHits {
		t.Fatal("UniqueTargets did not record bitmap tasks/hits")
	}

	before = after
	st.Query().Source(SourceTelescope).CountDistinctTargets()
	after = st.ExecStats()
	if after.BitmapMisses == before.BitmapMisses {
		t.Fatal("filtered distinct count did not record a bitmap miss")
	}
}

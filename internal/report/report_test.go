package report

import (
	"strings"
	"sync"
	"testing"

	"doscope/internal/core"
	"doscope/internal/dossim"
	"doscope/internal/stats"
)

var (
	once  sync.Once
	dsVal *core.Dataset
	dsErr error
)

func dataset(t *testing.T) *core.Dataset {
	t.Helper()
	once.Do(func() {
		sc, err := dossim.Generate(dossim.Config{Seed: 42, Scale: 0.0003})
		if err != nil {
			dsErr = err
			return
		}
		dsVal = core.New(sc.Telescope, sc.Honeypot, sc.Plan, sc.History, sc.Cfg.WindowDays)
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

func TestAllSectionsPresent(t *testing.T) {
	out := All(dataset(t))
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4a", "Table 4b",
		"Table 5", "Table 6", "Table 7", "Table 8a", "Table 8b", "Table 9",
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
		"Joint attacks", "Web impact",
		"Network Telescope", "Amplification Honeypot", "Combined",
		"NTP", "CloudFlare", "preexisting",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table1(dataset(t).Table1())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("Table1 lines = %d:\n%s", len(lines), out)
	}
}

func TestSparkline(t *testing.T) {
	s := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Errorf("sparkline width = %d", len([]rune(s)))
	}
	if s != "▁▂▃▄▅▆▇█" {
		t.Errorf("sparkline = %q", s)
	}
	if sparkline(nil, 10) != "" {
		t.Error("empty series should render empty")
	}
	wide := sparkline([]float64{1, 2}, 10)
	if len([]rune(wide)) != 2 {
		t.Errorf("short series sparkline = %q", wide)
	}
}

func TestFigure6Rendering(t *testing.T) {
	h := stats.NewLogHistogram([]int{1, 1, 5, 50, 5000})
	out := Figure6(h)
	for _, want := range []string{"n=1", "1<n<=10", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure6 missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyDatasetDoesNotPanic(t *testing.T) {
	ds := dataset(t)
	bare := core.New(ds.Telescope, ds.Honeypot, ds.Plan, nil, ds.WindowDays)
	out := All(bare)
	if !strings.Contains(out, "Table 1") {
		t.Error("bare report broken")
	}
}

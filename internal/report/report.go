// Package report renders the analyses of internal/core as paper-style
// text: aligned tables for Tables 1-9, sparkline time series and CDF
// summaries for Figures 1-11, and the §4-§6 headline paragraphs. The
// doscope CLI and the benchmark harness print these.
package report

import (
	"fmt"
	"strings"

	"doscope/internal/attack"
	"doscope/internal/core"
	"doscope/internal/stats"
)

// table renders rows of cells with right-aligned columns (first column
// left-aligned).
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := len(header) - 1
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }
func count(n int) string   { return fmt.Sprintf("%d", n) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }

// sparkline draws a one-line chart of a series, downsampled to width.
func sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	if width > len(values) {
		width = len(values)
	}
	bucket := float64(len(values)) / float64(width)
	agg := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * bucket)
		hi := int(float64(i+1) * bucket)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		var max float64
		for _, v := range values[lo:hi] {
			if v > max {
				max = v
			}
		}
		agg[i] = max
	}
	var top float64
	for _, v := range agg {
		if v > top {
			top = v
		}
	}
	var b strings.Builder
	for _, v := range agg {
		idx := 0
		if top > 0 {
			idx = int(v / top * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// cdfLine summarizes a CDF at the paper's anchor points.
func cdfLine(label string, c *stats.CDF, unit string) string {
	if c.Len() == 0 {
		return fmt.Sprintf("  %-10s (no samples)\n", label)
	}
	return fmt.Sprintf("  %-10s n=%-7d median=%.4g%s mean=%.4g%s P90=%.4g%s P99=%.4g%s\n",
		label, c.Len(), c.Median(), unit, c.Mean(), unit, c.Quantile(0.9), unit, c.Quantile(0.99), unit)
}

// Table1 renders Table 1.
func Table1(rows []core.Table1Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Source, count(r.Events), count(r.Targets), count(r.Slash24s), count(r.Slash16s), count(r.ASNs)}
	}
	return "Table 1: DoS attack events data\n" +
		table([]string{"source", "#events", "#targets", "#/24s", "#/16s", "#ASNs"}, out)
}

// Table2 renders Table 2.
func Table2(rows []core.Table2Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.TLD, count(r.WebSites), fmt.Sprintf("%d", r.DataPoints)}
	}
	return "Table 2: Active DNS data set\n" +
		table([]string{"source", "#Web sites", "#data points"}, out)
}

// Table3 renders Table 3.
func Table3(rows []core.Table3Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Provider, count(r.WebSites)}
	}
	return "Table 3: DDoS Protection Service use\n" +
		table([]string{"provider", "#Web sites"}, out)
}

// Table4 renders one panel of Table 4.
func Table4(name string, rows []core.CountryRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Country, count(r.Targets), pct(r.Share)}
	}
	return fmt.Sprintf("Table 4%s: targets per country\n", name) +
		table([]string{"country", "#targets", "%"}, out)
}

// Mix renders Tables 5, 6, 7, 8.
func Mix(title string, rows []core.MixRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Label, count(r.Events), pct(r.Share)}
	}
	return title + "\n" + table([]string{"type", "#events", "%"}, out)
}

// Table9 renders Table 9.
func Table9(res core.Table9Result) string {
	head := []string{"percentile"}
	row := []string{"intensity (<=)"}
	for i, p := range res.Percentiles {
		head = append(head, fmt.Sprintf("P%.4g", p))
		row = append(row, f2(res.Intensity[i]))
	}
	return "Table 9: normalized attack intensity over Web sites\n" +
		table(head, [][]string{row})
}

// Figure1 renders the three daily panels.
func Figure1(tel, hp, comb *core.DailyPanel) string {
	var b strings.Builder
	b.WriteString("Figure 1: attacks over time (daily)\n")
	panel := func(name string, p *core.DailyPanel) {
		fmt.Fprintf(&b, "  %-9s attacks    %s  avg=%.1f/day\n", name, sparkline(p.Attacks, 73), mean(p.Attacks))
		fmt.Fprintf(&b, "  %-9s targets    %s  avg=%.1f/day\n", "", sparkline(p.Targets, 73), mean(p.Targets))
		fmt.Fprintf(&b, "  %-9s /16s       %s  avg=%.1f/day\n", "", sparkline(p.Slash16s, 73), mean(p.Slash16s))
		fmt.Fprintf(&b, "  %-9s ASNs       %s  avg=%.1f/day\n", "", sparkline(p.ASNs, 73), mean(p.ASNs))
	}
	panel("Telescope", tel)
	panel("Honeypot", hp)
	panel("Combined", comb)
	return b.String()
}

// Figure2 renders the duration CDFs.
func Figure2(tel, hp core.DurationCDF) string {
	var b strings.Builder
	b.WriteString("Figure 2: duration of attacks\n")
	for _, d := range []core.DurationCDF{tel, hp} {
		b.WriteString(cdfLine(d.Source, d.CDF, "s"))
		fmt.Fprintf(&b, "             >1h: %s   >24h: %s\n", pct(d.Over1h), pct(d.Over24h))
	}
	return b.String()
}

// Figure3 renders the telescope intensity CDF.
func Figure3(c core.IntensityCDF) string {
	var b strings.Builder
	b.WriteString("Figure 3: telescope intensity distribution (max pps; x256 for victim estimate)\n")
	b.WriteString(cdfLine(c.Label, c.CDF, ""))
	fmt.Fprintf(&b, "             P(<=2 pps)=%s\n", pct(c.CDF.At(2)))
	return b.String()
}

// Figure4 renders the honeypot intensity CDFs.
func Figure4(curves []core.IntensityCDF) string {
	var b strings.Builder
	b.WriteString("Figure 4: honeypot intensity distribution (avg requests/s)\n")
	for _, c := range curves {
		b.WriteString(cdfLine(c.Label, c.CDF, ""))
	}
	return b.String()
}

// Figure5 renders the medium+ intensity series.
func Figure5(p *core.DailyPanel) string {
	var b strings.Builder
	b.WriteString("Figure 5: high-intensity attack events over time (combined)\n")
	fmt.Fprintf(&b, "  attacks  %s  avg=%.1f/day\n", sparkline(p.Attacks, 73), mean(p.Attacks))
	fmt.Fprintf(&b, "  targets  %s  avg=%.1f/day\n", sparkline(p.Targets, 73), mean(p.Targets))
	return b.String()
}

// Figure6 renders the co-hosting histogram.
func Figure6(h *stats.LogHistogram) string {
	var rows [][]string
	for k, c := range h.Counts {
		rows = append(rows, []string{h.BinLabel(k), count(c)})
	}
	return "Figure 6: Web site associations with attacked IPs (co-hosting)\n" +
		table([]string{"sites per IP", "#target IPs"}, rows)
}

// Figure7 renders the Web impact series.
func Figure7(res core.Figure7Result, windowDays int) string {
	var b strings.Builder
	b.WriteString("Figure 7: Web sites on attacked IPs over time\n")
	fmt.Fprintf(&b, "  all      %s  avg=%.0f/day\n", sparkline(res.DailySites, 73), mean(res.DailySites))
	fmt.Fprintf(&b, "  medium+  %s  avg=%.0f/day\n", sparkline(res.DailyMedium, 73), mean(res.DailyMedium))
	fmt.Fprintf(&b, "  smoothed %% of all sites: start=%.2f%% end=%.2f%%\n",
		at(res.SmoothedPct, 0), at(res.SmoothedPct, windowDays-1))
	for i, d := range res.PeakDays {
		fmt.Fprintf(&b, "  peak %d: day %d (%s) with %.0f sites\n",
			i+1, d, attack.Date(attack.DayStart(d)).Format("2006-01-02"), res.PeakValues[i])
	}
	return b.String()
}

// Figure8 renders the taxonomy tree.
func Figure8(tax core.Figure8Result) string {
	var b strings.Builder
	b.WriteString("Figure 8: Web site taxonomy\n")
	pctOf := func(n, den int) string {
		if den == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(den))
	}
	fmt.Fprintf(&b, "  total Web sites: %d\n", tax.Total)
	fmt.Fprintf(&b, "  ├─ attack observed:      %8d (%s)\n", tax.Attacked, pctOf(tax.Attacked, tax.Total))
	fmt.Fprintf(&b, "  │   ├─ preexisting:      %8d (%s)\n", tax.AttackedPreexisting, pctOf(tax.AttackedPreexisting, tax.Attacked))
	fmt.Fprintf(&b, "  │   └─ non-preexisting:  %8d (%s)\n", tax.AttackedNonPre, pctOf(tax.AttackedNonPre, tax.Attacked))
	fmt.Fprintf(&b, "  │       ├─ migrating:    %8d (%s)\n", tax.AttackedMigrating, pctOf(tax.AttackedMigrating, tax.AttackedNonPre))
	fmt.Fprintf(&b, "  │       └─ non-migrating:%8d (%s)\n", tax.AttackedNonMigrating, pctOf(tax.AttackedNonMigrating, tax.AttackedNonPre))
	fmt.Fprintf(&b, "  └─ no attack observed:   %8d (%s)\n", tax.NoAttack, pctOf(tax.NoAttack, tax.Total))
	fmt.Fprintf(&b, "      ├─ preexisting:      %8d (%s)\n", tax.NoAttackPreexisting, pctOf(tax.NoAttackPreexisting, tax.NoAttack))
	fmt.Fprintf(&b, "      └─ non-preexisting:  %8d (%s)\n", tax.NoAttackNonPre, pctOf(tax.NoAttackNonPre, tax.NoAttack))
	fmt.Fprintf(&b, "          ├─ migrating:    %8d (%s)\n", tax.NoAttackMigrating, pctOf(tax.NoAttackMigrating, tax.NoAttackNonPre))
	fmt.Fprintf(&b, "          └─ non-migrating:%8d (%s)\n", tax.NoAttackNonMigrating, pctOf(tax.NoAttackNonMigrating, tax.NoAttackNonPre))
	return b.String()
}

// Figure9 renders the attack frequency comparison.
func Figure9(res core.Figure9Result) string {
	var b strings.Builder
	b.WriteString("Figure 9: attack frequency, all vs migrating Web sites\n")
	fmt.Fprintf(&b, "  all sites:       P(<=5 attacks) = %s\n", pct(res.AtMost5All))
	fmt.Fprintf(&b, "  migrating sites: P(<=5 attacks) = %s\n", pct(res.AtMost5Migrating))
	return b.String()
}

// Figure10 renders the migration delay bands.
func Figure10(bands []core.MigrationDelayCDF) string {
	var rows [][]string
	for _, bnd := range bands {
		rows = append(rows, []string{bnd.Label, count(bnd.Sites), pct(bnd.Within1), pct(bnd.Within6)})
	}
	return "Figure 10: migration delay by attack intensity\n" +
		table([]string{"band", "#sites", "<=1 day", "<=6 days"}, rows)
}

// Figure11 renders the long-attack migration delay.
func Figure11(c core.MigrationDelayCDF) string {
	return "Figure 11: migration delay after >=4h attacks\n" +
		fmt.Sprintf("  sites=%d  within 1 day=%s  within 5 days=%s\n", c.Sites, pct(c.Within1), pct(c.Within6))
}

// Joint renders the §4 joint-attack analysis.
func Joint(j core.JointStats) string {
	var b strings.Builder
	b.WriteString("Joint attacks (both data sets)\n")
	fmt.Fprintf(&b, "  common targets: %d   simultaneous (joint): %d\n", j.CommonTargets, j.JointTargets)
	fmt.Fprintf(&b, "  joint telescope events: single-port %s, HTTP %s of single-port TCP, 27015 %s of single-port UDP\n",
		pct(j.SinglePortShare), pct(j.HTTPShare), pct(j.Port27015Share))
	fmt.Fprintf(&b, "  joint reflection events: NTP %s, CharGen %s\n", pct(j.NTPShare), pct(j.CharGenShare))
	b.WriteString("  top joint-target ASNs:\n")
	for _, a := range j.TopASNs {
		name := a.Name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Fprintf(&b, "    AS%-7d %-18s %s\n", a.ASN, name, pct(a.Share))
	}
	b.WriteString("  top joint-target countries:\n")
	for _, c := range j.TopCountries {
		fmt.Fprintf(&b, "    %-3s %s\n", c.Country, pct(c.Share))
	}
	return b.String()
}

// WebImpact renders the §5 headline numbers.
func WebImpact(w core.WebImpact) string {
	var b strings.Builder
	b.WriteString("Web impact (§5)\n")
	fmt.Fprintf(&b, "  sites ever on attacked IPs: %d of %d (%s)\n", w.SitesEverAttacked, w.AliveSites, pct(w.AttackedFraction))
	fmt.Fprintf(&b, "  daily average: %.0f sites (%s of namespace); medium+ only: %.0f\n",
		w.DailyAvgSites, pct(w.DailyAvgFraction), w.MediumDailyAvgSites)
	fmt.Fprintf(&b, "  target IPs hosting sites: %d of %d (%s)\n", w.WebTargetIPs, w.TotalTargetIPs,
		pct(float64(w.WebTargetIPs)/float64(max(1, w.TotalTargetIPs))))
	fmt.Fprintf(&b, "  on Web targets: TCP %s, Web ports %s, NTP %s\n",
		pct(w.TCPShareOnWeb), pct(w.WebPortShareOnWeb), pct(w.NTPShareOnWeb))
	return b.String()
}

// Mail renders the §8 mail-infrastructure extension.
func Mail(m core.MailImpact) string {
	var b strings.Builder
	b.WriteString("Mail infrastructure impact (§8 extension)\n")
	fmt.Fprintf(&b, "  domains with attacked mail service: %d (%s of namespace)\n",
		m.DomainsEverAffected, pct(m.Fraction))
	fmt.Fprintf(&b, "  daily average: %.0f domains; attacked mail-serving IPs: %d\n", m.DailyAvg, m.AttackedMailIPs)
	for _, c := range m.TopClusters {
		fmt.Fprintf(&b, "    %-16v %6d domains  %3d events\n", c.Addr, c.Domains, c.Events)
	}
	return b.String()
}

// All renders every table and figure.
func All(ds *core.Dataset) string {
	var b strings.Builder
	sep := func() { b.WriteString("\n") }
	b.WriteString(Table1(ds.Table1()))
	sep()
	b.WriteString(Table2(ds.Table2()))
	sep()
	b.WriteString(Table3(ds.Table3()))
	sep()
	b.WriteString(Table4("a (telescope)", ds.Table4(attack.SourceTelescope, 5)))
	sep()
	b.WriteString(Table4("b (honeypot)", ds.Table4(attack.SourceHoneypot, 5)))
	sep()
	b.WriteString(Mix("Table 5: IP protocol distribution (telescope)", ds.Table5()))
	sep()
	b.WriteString(Mix("Table 6: reflection protocol distribution (honeypot)", ds.Table6()))
	sep()
	b.WriteString(Mix("Table 7: target port cardinality (telescope)", ds.Table7()))
	sep()
	b.WriteString(Mix("Table 8a: top targeted services, single-port TCP", ds.Table8(attack.VectorTCP, 5)))
	sep()
	b.WriteString(Mix("Table 8b: top targeted services, single-port UDP", ds.Table8(attack.VectorUDP, 5)))
	sep()
	b.WriteString(Table9(ds.Table9()))
	sep()
	tel, hp, comb := ds.Figure1()
	b.WriteString(Figure1(tel, hp, comb))
	sep()
	f2tel, f2hp := ds.Figure2()
	b.WriteString(Figure2(f2tel, f2hp))
	sep()
	b.WriteString(Figure3(ds.Figure3()))
	sep()
	b.WriteString(Figure4(ds.Figure4()))
	sep()
	b.WriteString(Figure5(ds.Figure5()))
	sep()
	b.WriteString(Figure6(ds.Figure6()))
	sep()
	b.WriteString(Figure7(ds.Figure7(), ds.WindowDays))
	sep()
	b.WriteString(Figure8(ds.Figure8()))
	sep()
	b.WriteString(Figure9(ds.Figure9()))
	sep()
	b.WriteString(Figure10(ds.Figure10()))
	sep()
	b.WriteString(Figure11(ds.Figure11()))
	sep()
	b.WriteString(Joint(ds.JointAttacks()))
	sep()
	b.WriteString(WebImpact(ds.WebImpactStats()))
	if ds.MailIdx != nil {
		sep()
		b.WriteString(Mail(ds.MailImpactStats()))
	}
	return b.String()
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func at(v []float64, i int) float64 {
	if i < 0 || i >= len(v) {
		return 0
	}
	return v[i]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package core

import (
	"sort"

	"doscope/internal/attack"
	"doscope/internal/ipmeta"
	"doscope/internal/netx"
)

// JointStats reproduces the §4 joint-attack correlation: targets hit by
// both randomly spoofed and reflection attacks, and how attack attributes
// shift when attacks are combined.
type JointStats struct {
	CommonTargets int // targets in both data sets
	JointTargets  int // targets with time-overlapping attacks

	// Telescope-side shifts for events co-participating in joint attacks.
	SinglePortShare float64 // 60.6% -> 77.1%
	HTTPShare       float64 // share of HTTP among single-port TCP (50.23%)
	Port27015Share  float64 // share of 27015 among single-port UDP (53%)

	// Honeypot-side shifts.
	NTPShare     float64 // 40.08% -> 47.0%
	CharGenShare float64 // 22.37% -> 11.5%

	// Joint-target rankings.
	TopASNs      []ASShare
	TopCountries []CountryRow
}

// ASShare is one row of the joint-target AS ranking.
type ASShare struct {
	ASN   uint32
	Name  string
	Share float64
}

// JointAttacks computes the §4 joint-attack analysis over the by-target
// groupings of both stores.
func (ds *Dataset) JointAttacks() JointStats {
	telBy := ds.Telescope.Query().GroupByTarget()
	hpBy := ds.Honeypot.Query().GroupByTarget()

	var st JointStats
	jointTargets := make(map[netx.Addr]bool)
	var jointTel, jointHp []*attack.Event
	for target, tEvs := range telBy {
		hEvs, ok := hpBy[target]
		if !ok {
			continue
		}
		st.CommonTargets++
		overlap := false
		for _, te := range tEvs {
			for _, he := range hEvs {
				if te.Overlaps(he) {
					overlap = true
					jointTel = append(jointTel, te)
					jointHp = append(jointHp, he)
				}
			}
		}
		if overlap {
			st.JointTargets++
			jointTargets[target] = true
		}
	}

	// Telescope-side attribute shifts over co-participating events.
	single, withPorts := 0, 0
	http, tcpSingle := 0, 0
	p27015, udpSingle := 0, 0
	seenTel := make(map[*attack.Event]bool)
	for _, e := range jointTel {
		if seenTel[e] {
			continue
		}
		seenTel[e] = true
		if len(e.Ports) == 0 {
			continue
		}
		withPorts++
		if e.SinglePort() {
			single++
			switch e.Vector {
			case attack.VectorTCP:
				tcpSingle++
				if attack.WebPort(e.Ports[0]) && e.Ports[0] != 443 {
					http++
				}
			case attack.VectorUDP:
				udpSingle++
				if e.Ports[0] == 27015 {
					p27015++
				}
			}
		}
	}
	if withPorts > 0 {
		st.SinglePortShare = float64(single) / float64(withPorts)
	}
	if tcpSingle > 0 {
		st.HTTPShare = float64(http) / float64(tcpSingle)
	}
	if udpSingle > 0 {
		st.Port27015Share = float64(p27015) / float64(udpSingle)
	}

	// Honeypot-side vector shifts.
	seenHp := make(map[*attack.Event]bool)
	ntp, chargen, hpTotal := 0, 0, 0
	for _, e := range jointHp {
		if seenHp[e] {
			continue
		}
		seenHp[e] = true
		hpTotal++
		switch e.Vector {
		case attack.VectorNTP:
			ntp++
		case attack.VectorCharGen:
			chargen++
		}
	}
	if hpTotal > 0 {
		st.NTPShare = float64(ntp) / float64(hpTotal)
		st.CharGenShare = float64(chargen) / float64(hpTotal)
	}

	// Joint-target AS and country rankings.
	if ds.Plan != nil {
		asCounts := make(map[uint32]int)
		ccCounts := make(map[string]int)
		for target := range jointTargets {
			if asn, ok := ds.Plan.ASOf(target); ok {
				asCounts[uint32(asn)]++
			}
			if cc, ok := ds.Plan.CountryOf(target); ok {
				ccCounts[cc.String()]++
			}
		}
		total := float64(len(jointTargets))
		for asn, n := range asCounts {
			name := ""
			if as, ok := ds.Plan.ASByNum(ipmeta.ASN(asn)); ok {
				name = as.Name
			}
			st.TopASNs = append(st.TopASNs, ASShare{ASN: asn, Name: name, Share: float64(n) / total})
		}
		sort.Slice(st.TopASNs, func(i, j int) bool { return st.TopASNs[i].Share > st.TopASNs[j].Share })
		if len(st.TopASNs) > 5 {
			st.TopASNs = st.TopASNs[:5]
		}
		for cc, n := range ccCounts {
			st.TopCountries = append(st.TopCountries, CountryRow{Country: cc, Targets: n, Share: float64(n) / total})
		}
		sort.Slice(st.TopCountries, func(i, j int) bool { return st.TopCountries[i].Targets > st.TopCountries[j].Targets })
		if len(st.TopCountries) > 5 {
			st.TopCountries = st.TopCountries[:5]
		}
	}
	return st
}

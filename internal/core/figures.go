package core

import (
	"cmp"
	"slices"

	"doscope/internal/attack"
	"doscope/internal/netx"
	"doscope/internal/stats"
)

// DailyPanel is one panel of Figure 1 (or Figure 5): per-day counts of
// attacks, unique targets, targeted /16 blocks, and targeted ASNs.
type DailyPanel struct {
	Attacks  []float64
	Targets  []float64
	Slash16s []float64
	ASNs     []float64
}

func newDailyPanel(days int) *DailyPanel {
	return &DailyPanel{
		Attacks:  make([]float64, days),
		Targets:  make([]float64, days),
		Slash16s: make([]float64, days),
		ASNs:     make([]float64, days),
	}
}

// addInto sums p into dst elementwise.
func (p *DailyPanel) addInto(dst *DailyPanel) {
	for d := range p.Attacks {
		dst.Attacks[d] += p.Attacks[d]
		dst.Targets[d] += p.Targets[d]
		dst.Slash16s[d] += p.Slash16s[d]
		dst.ASNs[d] += p.ASNs[d]
	}
}

type panelStamps struct {
	target map[int64]struct{}
	s16    map[int64]struct{}
	asn    map[int64]struct{}
}

func (ds *Dataset) accumulatePanel(p *DailyPanel, st *panelStamps, e *attack.Event) {
	day := e.Day()
	if day < 0 || day >= ds.WindowDays {
		return
	}
	p.Attacks[day]++
	dkey := int64(day) << 32
	tkey := dkey | int64(uint32(e.Target))
	if _, ok := st.target[tkey]; !ok {
		st.target[tkey] = struct{}{}
		p.Targets[day]++
	}
	skey := dkey | int64(uint32(e.Target.Slash16()))
	if _, ok := st.s16[skey]; !ok {
		st.s16[skey] = struct{}{}
		p.Slash16s[day]++
	}
	if ds.Plan != nil {
		if asn, ok := ds.Plan.ASOf(e.Target); ok {
			akey := dkey | int64(asn)
			if _, ok := st.asn[akey]; !ok {
				st.asn[akey] = struct{}{}
				p.ASNs[day]++
			}
		}
	}
}

func newPanelStamps() *panelStamps {
	return &panelStamps{
		target: make(map[int64]struct{}),
		s16:    make(map[int64]struct{}),
		asn:    make(map[int64]struct{}),
	}
}

// figure1Partial carries one shard task's panels plus its dedup stamps.
// Shard tasks own disjoint day ranges (both stores shard by day-of-start),
// so per-day dedup inside a task is globally correct and merging reduces
// to elementwise sums.
type figure1Partial struct {
	tel, hp, comb       *DailyPanel
	stTel, stHp, stComb *panelStamps
}

// Figure1 reproduces the three panels of Figure 1: daily attack and target
// counts for the telescope, honeypot, and combined data sets, computed as
// one parallel fold over the shard-aligned event stream.
func (ds *Dataset) Figure1() (tel, hp, combined *DailyPanel) {
	res := attack.Fold(ds.All(),
		func() figure1Partial {
			return figure1Partial{
				tel: newDailyPanel(ds.WindowDays), hp: newDailyPanel(ds.WindowDays), comb: newDailyPanel(ds.WindowDays),
				stTel: newPanelStamps(), stHp: newPanelStamps(), stComb: newPanelStamps(),
			}
		},
		func(p figure1Partial, e *attack.Event) figure1Partial {
			if e.Source == attack.SourceTelescope {
				ds.accumulatePanel(p.tel, p.stTel, e)
			} else {
				ds.accumulatePanel(p.hp, p.stHp, e)
			}
			ds.accumulatePanel(p.comb, p.stComb, e)
			return p
		},
		func(a, b figure1Partial) figure1Partial {
			b.tel.addInto(a.tel)
			b.hp.addInto(a.hp)
			b.comb.addInto(a.comb)
			return a
		})
	return res.tel, res.hp, res.comb
}

// DurationCDF summarizes one data set's duration distribution (Figure 2).
type DurationCDF struct {
	Source  string
	CDF     *stats.CDF
	MeanSec float64
	P50Sec  float64
	P90Sec  float64
	Over1h  float64
	Over24h float64
}

// Figure2 reproduces Figure 2: duration distributions per data set.
func (ds *Dataset) Figure2() (tel, hp DurationCDF) {
	build := func(name string, st *attack.Store) DurationCDF {
		d := make([]float64, 0, st.Len())
		for e := range st.Query().Iter() {
			d = append(d, float64(e.Duration()))
		}
		c := stats.NewCDF(d)
		return DurationCDF{
			Source: name, CDF: c,
			MeanSec: c.Mean(), P50Sec: c.Median(), P90Sec: c.Quantile(0.9),
			Over1h: 1 - c.At(3600), Over24h: 1 - c.At(86400),
		}
	}
	return build("Telescope", ds.Telescope), build("Honeypot", ds.Honeypot)
}

// IntensityCDF summarizes an intensity distribution (Figures 3 and 4).
type IntensityCDF struct {
	Label  string
	CDF    *stats.CDF
	Mean   float64
	Median float64
}

// Figure3 reproduces Figure 3: the telescope intensity distribution
// (maximum packets per second observed at the telescope).
func (ds *Dataset) Figure3() IntensityCDF {
	v := make([]float64, 0, ds.Telescope.Len())
	for e := range ds.Telescope.Query().Iter() {
		v = append(v, e.MaxPPS)
	}
	c := stats.NewCDF(v)
	return IntensityCDF{Label: "Telescope (max pps)", CDF: c, Mean: c.Mean(), Median: c.Median()}
}

// Figure4 reproduces Figure 4: honeypot request-rate distributions,
// overall and for the top five reflection protocols.
func (ds *Dataset) Figure4() []IntensityCDF {
	byVec := make(map[attack.Vector][]float64)
	all := make([]float64, 0, ds.Honeypot.Len())
	for e := range ds.Honeypot.Query().Iter() {
		byVec[e.Vector] = append(byVec[e.Vector], e.AvgRPS)
		all = append(all, e.AvgRPS)
	}
	out := []IntensityCDF{}
	c := stats.NewCDF(all)
	out = append(out, IntensityCDF{Label: "Overall", CDF: c, Mean: c.Mean(), Median: c.Median()})
	for _, v := range []attack.Vector{attack.VectorNTP, attack.VectorDNS, attack.VectorCharGen, attack.VectorSSDP, attack.VectorRIPv1} {
		c := stats.NewCDF(byVec[v])
		out = append(out, IntensityCDF{Label: v.String(), CDF: c, Mean: c.Mean(), Median: c.Median()})
	}
	return out
}

// Figure5 reproduces Figure 5: the daily series restricted to events of
// medium or higher intensity (>= the mean intensity of the data set),
// both data sets combined, as a parallel fold.
func (ds *Dataset) Figure5() *DailyPanel {
	ds.intensityStats() // seal the lazy stats before fanning out
	type partial struct {
		p  *DailyPanel
		st *panelStamps
	}
	res := attack.Fold(ds.All().Where(ds.MediumPlus),
		func() partial { return partial{newDailyPanel(ds.WindowDays), newPanelStamps()} },
		func(pt partial, e *attack.Event) partial {
			ds.accumulatePanel(pt.p, pt.st, e)
			return pt
		},
		func(a, b partial) partial {
			b.p.addInto(a.p)
			return a
		})
	return res.p
}

// Figure6 reproduces Figure 6: the histogram of Web sites co-hosted on
// attacked IP addresses (each unique attacked Web-hosting IP contributes
// its co-hosting count at the time of its first attack).
func (ds *Dataset) Figure6() *stats.LogHistogram {
	j := ds.webJoinResult()
	return stats.NewLogHistogram(j.cohost)
}

// Figure7Result is the Figure 7 Web-impact time series.
type Figure7Result struct {
	// DailySites is the number of distinct Web sites on attacked IPs per
	// day; DailyMedium restricts to medium+ intensity events.
	DailySites  []float64
	DailyMedium []float64
	// SmoothedPct is the monthly-median cubic-spline smoothed percentage
	// of all measured Web sites (the paper's black curve).
	SmoothedPct []float64
	// Peaks are the four largest days.
	PeakDays   []int
	PeakValues []float64
}

// Figure7 reproduces Figure 7.
func (ds *Dataset) Figure7() Figure7Result {
	j := ds.webJoinResult()
	res := Figure7Result{
		DailySites:  j.dailyAll.Values,
		DailyMedium: j.dailyMed.Values,
	}
	smoothed := j.dailyAll.MonthlyMedianSpline()
	res.SmoothedPct = make([]float64, len(smoothed))
	if j.aliveSites > 0 {
		for i, v := range smoothed {
			res.SmoothedPct[i] = 100 * v / float64(j.aliveSites)
		}
	}
	// Extract the four highest peak days.
	type peak struct {
		day int
		v   float64
	}
	var peaks []peak
	for d, v := range j.dailyAll.Values {
		peaks = append(peaks, peak{d, v})
	}
	slices.SortFunc(peaks, func(a, b peak) int {
		if c := cmp.Compare(b.v, a.v); c != 0 {
			return c
		}
		return cmp.Compare(a.day, b.day) // deterministic tie-break
	})
	for i := 0; i < 4 && i < len(peaks); i++ {
		res.PeakDays = append(res.PeakDays, peaks[i].day)
		res.PeakValues = append(res.PeakValues, peaks[i].v)
	}
	return res
}

// TargetsIn24s returns unique attacked /24 blocks across both data sets
// (the "one third of the Internet" headline, §4).
func (ds *Dataset) TargetsIn24s() int {
	s := attack.Fold(ds.All(), newAddrSet,
		func(m map[netx.Addr]struct{}, e *attack.Event) map[netx.Addr]struct{} {
			m[e.Target.Slash24()] = struct{}{}
			return m
		}, mergeAddrSets)
	return len(s)
}

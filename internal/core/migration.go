package core

import (
	"sort"

	"doscope/internal/attack"
	"doscope/internal/stats"
)

// Figure8Result is the Web-site taxonomy tree of Figure 8 (counts of Web
// sites per class).
type Figure8Result struct {
	Total int

	Attacked             int
	AttackedPreexisting  int
	AttackedNonPre       int
	AttackedMigrating    int
	AttackedNonMigrating int
	NoAttack             int
	NoAttackPreexisting  int
	NoAttackNonPre       int
	NoAttackMigrating    int
	NoAttackNonMigrating int
}

// migrationStudy caches the per-site §6 classification.
type migrationStudy struct {
	taxonomy Figure8Result
	// Delays (days, >=1) from first observed attack to first DPS sighting
	// for attacked migrating sites.
	delays []int
	// maxPct of each attacked migrating site (intensity percentile of its
	// worst attack, for the Figure 10 bands).
	delayPct []float64
	// longHp flags migrating sites whose longest honeypot attack was >= 4h
	// (Figure 11).
	longHp []bool
	// Attack frequencies for Figure 9.
	freqAll, freqMigrating []float64
	// sitePct sorted distribution of per-site max normalized intensity,
	// used to translate intensities into site percentiles.
	sitePct []float64
}

func (ds *Dataset) migrationResult() *migrationStudy {
	ds.refreshCaches()
	if ds.migrations != nil {
		return ds.migrations
	}
	j := ds.webJoinResult()
	m := &migrationStudy{}
	ds.migrations = m
	if ds.History == nil {
		return m
	}

	// Site-level intensity percentile basis (over attacked sites).
	for id, n := range j.attacksPerSite {
		if n > 0 {
			m.sitePct = append(m.sitePct, j.maxNorm[id])
		}
	}
	sort.Float64s(m.sitePct)
	pctOf := func(v float64) float64 {
		if len(m.sitePct) < 2 {
			return 1
		}
		// Upper bound (first index > v) so a block of sites tied at the
		// maximum — a bulk-migrating hoster — counts as the top
		// percentile rather than being pushed below the band cut.
		i := sort.Search(len(m.sitePct), func(k int) bool { return m.sitePct[k] > v })
		return float64(i) / float64(len(m.sitePct))
	}

	// Migration delay is measured from the last attack preceding the DPS
	// sighting: repeatedly attacked sites migrate in reaction to the
	// attack closest to the migration, not to the first one years
	// earlier. Collect, for every site with a DPS adoption day, the
	// latest attack day before it.
	adoption := make(map[uint32]int32)
	for id := 0; id < ds.History.NumDomains(); id++ {
		if day, _, ok := ds.History.FirstProtectedDay(uint32(id)); ok && !ds.History.Preexisting(uint32(id)) {
			adoption[uint32(id)] = int32(day)
		}
	}
	lastBefore := make(map[uint32]int32, len(adoption))
	rev := ds.reverseIndex()
	ds.allEvents(func(e *attack.Event) {
		day := int32(e.Day())
		if day < 0 || int(day) >= ds.WindowDays {
			return
		}
		rev.ForEachSiteOn(e.Target, int(day), func(id uint32) {
			ad, ok := adoption[id]
			if !ok || day >= ad {
				return
			}
			if prev, ok := lastBefore[id]; !ok || day > prev {
				lastBefore[id] = day
			}
		})
	})

	for id := 0; id < ds.History.NumDomains(); id++ {
		if len(ds.History.Segments[id]) == 0 {
			continue // never observed
		}
		m.taxonomy.Total++
		attacked := j.attacksPerSite[id] > 0
		adoptionDay, _, adopted := ds.History.FirstProtectedDay(uint32(id))
		pre := ds.History.Preexisting(uint32(id))
		if attacked {
			m.taxonomy.Attacked++
			m.freqAll = append(m.freqAll, float64(j.attacksPerSite[id]))
			firstAttack := int(j.firstAttackDay[id])
			switch {
			case pre || (adopted && adoptionDay <= firstAttack):
				// Protected when (first) attacked: a preexisting customer
				// from the study's perspective.
				m.taxonomy.AttackedPreexisting++
			case adopted: // adoptionDay > firstAttack
				m.taxonomy.AttackedNonPre++
				m.taxonomy.AttackedMigrating++
				ref := firstAttack
				if lb, ok := lastBefore[uint32(id)]; ok {
					ref = int(lb)
				}
				delay := adoptionDay - ref
				if delay < 1 {
					delay = 1
				}
				m.delays = append(m.delays, delay)
				m.delayPct = append(m.delayPct, pctOf(j.maxNorm[id]))
				m.longHp = append(m.longHp, j.longestHpSecs[id] >= 4*3600)
				m.freqMigrating = append(m.freqMigrating, float64(j.attacksPerSite[id]))
			default:
				m.taxonomy.AttackedNonPre++
				m.taxonomy.AttackedNonMigrating++
			}
		} else {
			m.taxonomy.NoAttack++
			switch {
			case pre:
				m.taxonomy.NoAttackPreexisting++
			case adopted:
				m.taxonomy.NoAttackNonPre++
				m.taxonomy.NoAttackMigrating++
			default:
				m.taxonomy.NoAttackNonPre++
				m.taxonomy.NoAttackNonMigrating++
			}
		}
	}
	return m
}

// Figure8 reproduces the taxonomy tree of Figure 8.
func (ds *Dataset) Figure8() Figure8Result {
	return ds.migrationResult().taxonomy
}

// Figure9Result holds the attack-frequency CDFs of Figure 9.
type Figure9Result struct {
	All       *stats.CDF
	Migrating *stats.CDF
	// AtMost5All / AtMost5Migrating are the annotated 92.35% / 97.83%.
	AtMost5All       float64
	AtMost5Migrating float64
}

// Figure9 reproduces Figure 9: attack-frequency distributions for all
// attacked Web sites versus those that migrated after an attack.
func (ds *Dataset) Figure9() Figure9Result {
	m := ds.migrationResult()
	res := Figure9Result{
		All:       stats.NewCDF(m.freqAll),
		Migrating: stats.NewCDF(m.freqMigrating),
	}
	res.AtMost5All = res.All.At(5)
	res.AtMost5Migrating = res.Migrating.At(5)
	return res
}

// MigrationDelayCDF is one curve of Figure 10 / Figure 11.
type MigrationDelayCDF struct {
	Label   string
	Days    *stats.CDF
	Within1 float64
	Within6 float64
	Sites   int
}

func delayCDF(label string, delays []int) MigrationDelayCDF {
	var f []float64
	for _, d := range delays {
		f = append(f, float64(d))
	}
	c := stats.NewCDF(f)
	return MigrationDelayCDF{
		Label: label, Days: c,
		Within1: c.At(1), Within6: c.At(6), Sites: len(delays),
	}
}

// Figure10 reproduces Figure 10: days to migration for all migrating
// sites and for the top 5%/1%/0.1% by attack intensity.
func (ds *Dataset) Figure10() []MigrationDelayCDF {
	m := ds.migrationResult()
	bands := []struct {
		label string
		min   float64
	}{
		{"All", 0}, {"Top 5%", 0.95}, {"Top 1%", 0.99}, {"Top 0.1%", 0.999},
	}
	var out []MigrationDelayCDF
	for _, b := range bands {
		var sel []int
		for i, d := range m.delays {
			if m.delayPct[i] >= b.min {
				sel = append(sel, d)
			}
		}
		out = append(out, delayCDF(b.label, sel))
	}
	return out
}

// Figure11 reproduces Figure 11: days to migration for sites whose
// longest honeypot-observed attack lasted at least four hours.
func (ds *Dataset) Figure11() MigrationDelayCDF {
	m := ds.migrationResult()
	var sel []int
	for i, d := range m.delays {
		if m.longHp[i] {
			sel = append(sel, d)
		}
	}
	c := delayCDF(">=4h attacks", sel)
	c.Within6 = c.Days.At(5) // the paper annotates <=5 days (76%)
	return c
}

package core

import (
	"math"
	"sync"
	"testing"

	"doscope/internal/attack"
	"doscope/internal/dossim"
)

var (
	dsOnce sync.Once
	dsVal  *Dataset
	dsErr  error
)

// scenario builds the default 1/1000-scale scenario once and wraps it in a
// core.Dataset.
func scenario(t testing.TB) *Dataset {
	t.Helper()
	dsOnce.Do(func() {
		sc, err := dossim.Generate(dossim.Config{Seed: 42})
		if err != nil {
			dsErr = err
			return
		}
		dsVal = New(sc.Telescope, sc.Honeypot, sc.Plan, sc.History, sc.Cfg.WindowDays)
		dsVal.MailIdx = sc.Web
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

func TestTable1(t *testing.T) {
	ds := scenario(t)
	rows := ds.Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	tel, hp, comb := rows[0], rows[1], rows[2]
	if comb.Events != tel.Events+hp.Events {
		t.Errorf("combined events %d != %d + %d", comb.Events, tel.Events, hp.Events)
	}
	if comb.Targets >= tel.Targets+hp.Targets {
		t.Error("combined targets must be less than the sum (common targets exist)")
	}
	if comb.Targets < tel.Targets || comb.Targets < hp.Targets {
		t.Error("combined targets must dominate each data set")
	}
	if tel.Slash24s > tel.Targets || tel.Slash16s > tel.Slash24s || tel.ASNs == 0 {
		t.Errorf("telescope row inconsistent: %+v", tel)
	}
	// Honeypot sees more unique targets than the telescope (Table 1).
	if hp.Targets <= tel.Targets {
		t.Errorf("honeypot targets (%d) should exceed telescope targets (%d)", hp.Targets, tel.Targets)
	}
	// Telescope has more events (12.47M vs 8.43M).
	if tel.Events <= hp.Events {
		t.Errorf("telescope events (%d) should exceed honeypot events (%d)", tel.Events, hp.Events)
	}
}

func TestTable2(t *testing.T) {
	ds := scenario(t)
	rows := ds.Table2()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	com, net, org, comb := rows[0], rows[1], rows[2], rows[3]
	if com.TLD != ".com" || comb.TLD != "Combined" {
		t.Errorf("row labels: %+v", rows)
	}
	if com.WebSites <= net.WebSites || net.WebSites <= org.WebSites {
		t.Error(".com > .net > .org ordering violated")
	}
	if comb.WebSites != com.WebSites+net.WebSites+org.WebSites {
		t.Error("combined mismatch")
	}
	// Roughly 82.7% of sites in .com.
	frac := float64(com.WebSites) / float64(comb.WebSites)
	if math.Abs(frac-0.827) > 0.03 {
		t.Errorf(".com share = %.3f", frac)
	}
	if comb.DataPoints == 0 {
		t.Error("no data points")
	}
}

func TestTable3(t *testing.T) {
	ds := scenario(t)
	rows := ds.Table3()
	if len(rows) != 10 {
		t.Fatalf("providers = %d", len(rows))
	}
	byName := map[string]int{}
	total := 0
	for _, r := range rows {
		byName[r.Provider] = r.WebSites
		total += r.WebSites
	}
	if total == 0 {
		t.Fatal("no DPS-protected sites detected")
	}
	// Structural expectations from Table 3: the commercial providers
	// dwarf VirtualRoad (< 100 sites at full scale).
	if byName["VirtualRoad"] >= byName["CloudFlare"] {
		t.Error("VirtualRoad should be the smallest provider")
	}
	if byName["CloudFlare"] == 0 || byName["Incapsula"] == 0 || byName["DOSarrest"] == 0 {
		t.Errorf("major providers missing: %v", byName)
	}
}

func TestTable4(t *testing.T) {
	ds := scenario(t)
	tel := ds.Table4(attack.SourceTelescope, 5)
	if len(tel) != 6 {
		t.Fatalf("rows = %d", len(tel))
	}
	if tel[0].Country != "US" {
		t.Errorf("telescope top country = %s, want US", tel[0].Country)
	}
	if tel[1].Country != "CN" {
		t.Errorf("telescope #2 = %s, want CN", tel[1].Country)
	}
	if math.Abs(tel[0].Share-0.2556) > 0.06 {
		t.Errorf("US share = %.3f", tel[0].Share)
	}
	var sum float64
	for _, r := range tel {
		sum += r.Share
	}
	if math.Abs(sum-1) > 0.02 {
		t.Errorf("shares sum to %.3f", sum)
	}
	hp := ds.Table4(attack.SourceHoneypot, 5)
	if hp[0].Country != "US" {
		t.Errorf("honeypot top country = %s", hp[0].Country)
	}
	// France ranks high in the honeypot data (OVH effect).
	foundFR := false
	for _, r := range hp[:5] {
		if r.Country == "FR" {
			foundFR = true
		}
	}
	if !foundFR {
		t.Error("FR missing from honeypot top 5")
	}
}

func TestTable5Through8(t *testing.T) {
	ds := scenario(t)
	t5 := ds.Table5()
	if t5[0].Label != "TCP" || math.Abs(t5[0].Share-0.794) > 0.06 {
		t.Errorf("Table5 TCP = %+v", t5[0])
	}
	t6 := ds.Table6()
	if t6[0].Label != "NTP" {
		t.Errorf("Table6 top = %s, want NTP", t6[0].Label)
	}
	if math.Abs(t6[0].Share-0.4008) > 0.06 {
		t.Errorf("NTP share = %.3f", t6[0].Share)
	}
	t7 := ds.Table7()
	if math.Abs(t7[0].Share-0.606) > 0.08 {
		t.Errorf("single-port = %.3f", t7[0].Share)
	}
	if math.Abs(t7[0].Share+t7[1].Share-1) > 1e-9 {
		t.Error("Table7 shares must sum to 1")
	}
	t8tcp := ds.Table8(attack.VectorTCP, 5)
	if t8tcp[0].Label != "HTTP" || t8tcp[1].Label != "HTTPS" {
		t.Errorf("Table8a top = %s, %s; want HTTP, HTTPS", t8tcp[0].Label, t8tcp[1].Label)
	}
	t8udp := ds.Table8(attack.VectorUDP, 5)
	if t8udp[0].Label != "27015" {
		t.Errorf("Table8b top = %s, want 27015", t8udp[0].Label)
	}
}

func TestTable9(t *testing.T) {
	ds := scenario(t)
	t9 := ds.Table9()
	if len(t9.Intensity) != len(t9.Percentiles) {
		t.Fatal("shape mismatch")
	}
	prev := -1.0
	for i, v := range t9.Intensity {
		if v < prev-1e-9 || v < 0 || v > 1 {
			t.Fatalf("intensity at P%.1f = %v not monotone in [0,1]", t9.Percentiles[i], v)
		}
		prev = v
	}
	// The distribution is bottom-heavy: P95 far below the max (Table 9
	// shows 95% of sites at <= 0.07 normalized intensity).
	p95 := t9.Intensity[2]
	if p95 > 0.6 {
		t.Errorf("P95 normalized intensity = %.3f; distribution should be bottom-heavy", p95)
	}
}

func TestFigure1(t *testing.T) {
	ds := scenario(t)
	tel, hp, comb := ds.Figure1()
	telMean := mean(tel.Attacks)
	hpMean := mean(hp.Attacks)
	combMean := mean(comb.Attacks)
	if math.Abs(combMean-telMean-hpMean) > 1e-9 {
		t.Error("combined attacks != tel + hp")
	}
	// ~17.1/day and ~11.6/day at 1/1000 scale.
	if telMean < 12 || telMean > 22 {
		t.Errorf("telescope daily mean = %.1f, want ~17.1", telMean)
	}
	if hpMean < 8 || hpMean > 16 {
		t.Errorf("honeypot daily mean = %.1f, want ~11.6", hpMean)
	}
	// Unique targets per day below attacks per day (same-day repeats).
	if mean(tel.Targets) >= telMean {
		t.Error("telescope daily targets should be below attacks")
	}
	// Combined targets not the sum of panels (same-day cross-data-set hits).
	if mean(comb.Targets) > mean(tel.Targets)+mean(hp.Targets) {
		t.Error("combined targets exceed sum of panels")
	}
	if mean(comb.ASNs) == 0 || mean(comb.Slash16s) == 0 {
		t.Error("ASN //16 series empty")
	}
}

func TestFigure2(t *testing.T) {
	ds := scenario(t)
	tel, hp := ds.Figure2()
	if tel.P50Sec < 250 || tel.P50Sec > 900 {
		t.Errorf("telescope median = %.0f", tel.P50Sec)
	}
	if hp.P50Sec < 150 || hp.P50Sec > 450 {
		t.Errorf("honeypot median = %.0f", hp.P50Sec)
	}
	if tel.MeanSec <= hp.MeanSec {
		t.Error("randomly spoofed attacks must last longer on average (Fig 2)")
	}
	if hp.Over24h > 0 {
		t.Error("honeypot durations beyond the 24h cap")
	}
}

func TestFigure3And4(t *testing.T) {
	ds := scenario(t)
	f3 := ds.Figure3()
	if f3.Median < 0.5 || f3.Median > 3 {
		t.Errorf("telescope median intensity = %.2f", f3.Median)
	}
	f4 := ds.Figure4()
	if len(f4) != 6 || f4[0].Label != "Overall" {
		t.Fatalf("Figure4 curves = %d", len(f4))
	}
	// NTP reaches the highest rates among protocols (Fig 4).
	var ntp, ripv1 IntensityCDF
	for _, c := range f4 {
		switch c.Label {
		case "NTP":
			ntp = c
		case "RIPv1":
			ripv1 = c
		}
	}
	if ntp.Mean <= ripv1.Mean {
		t.Errorf("NTP mean rps (%.1f) should exceed RIPv1 (%.1f)", ntp.Mean, ripv1.Mean)
	}
}

func TestFigure5(t *testing.T) {
	ds := scenario(t)
	f5 := ds.Figure5()
	medMean := mean(f5.Attacks)
	_, _, comb := ds.Figure1()
	allMean := mean(comb.Attacks)
	// ~1.4k of 28.7k daily at full scale: medium+ events are a small
	// fraction of all events.
	frac := medMean / allMean
	if frac < 0.01 || frac > 0.25 {
		t.Errorf("medium+ fraction = %.3f, want ~0.05", frac)
	}
	// The Nov 4 2016 planted peak (day 614) must stand out.
	peak, at := maxAt(f5.Attacks)
	if peak < 3*medMean {
		t.Errorf("no pronounced high-intensity peak (max %.0f, mean %.1f)", peak, medMean)
	}
	if at < 600 || at > 630 {
		t.Logf("note: top medium+ day = %d (planted peak at 614)", at)
	}
}

func TestFigure6(t *testing.T) {
	ds := scenario(t)
	h := ds.Figure6()
	if len(h.Counts) < 4 {
		t.Fatalf("co-hosting bins = %d", len(h.Counts))
	}
	// n=1 is the biggest bin; counts decay across bins (Fig 6 shape).
	if h.Counts[0] < h.Counts[1] {
		t.Errorf("n=1 bin (%d) should dominate (1,10] (%d)", h.Counts[0], h.Counts[1])
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	// 572k/1000 attacked Web IPs.
	if total < 300 || total > 1200 {
		t.Errorf("attacked Web IPs = %d, want ~572", total)
	}
}

func TestFigure7AndWebImpact(t *testing.T) {
	ds := scenario(t)
	f7 := ds.Figure7()
	w := ds.WebImpactStats()
	if math.Abs(w.AttackedFraction-0.64) > 0.08 {
		t.Errorf("attacked site fraction = %.3f, want ~0.64", w.AttackedFraction)
	}
	if w.DailyAvgFraction < 0.01 || w.DailyAvgFraction > 0.06 {
		t.Errorf("daily attacked fraction = %.4f, want ~0.03", w.DailyAvgFraction)
	}
	if w.MediumDailyAvgSites <= 0 || w.MediumDailyAvgSites >= w.DailyAvgSites {
		t.Errorf("medium+ daily sites = %.1f (all: %.1f)", w.MediumDailyAvgSites, w.DailyAvgSites)
	}
	webIPFrac := float64(w.WebTargetIPs) / float64(w.TotalTargetIPs)
	if webIPFrac < 0.05 || webIPFrac > 0.15 {
		t.Errorf("web target IP fraction = %.3f, want ~0.09", webIPFrac)
	}
	if math.Abs(w.TCPShareOnWeb-0.934) > 0.05 {
		t.Errorf("TCP share on web = %.3f", w.TCPShareOnWeb)
	}
	if math.Abs(w.NTPShareOnWeb-0.5469) > 0.08 {
		t.Errorf("NTP share on web = %.3f", w.NTPShareOnWeb)
	}
	if w.WebPortShareOnWeb < 0.75 {
		t.Errorf("web-port share on web targets = %.3f, want ~0.876", w.WebPortShareOnWeb)
	}
	// Peaks: the largest Fig 7 day should be one of the planted peaks.
	if len(f7.PeakDays) == 0 {
		t.Fatal("no peaks")
	}
	planted := map[int]bool{11: true, 223: true, 614: true, 727: true}
	if !planted[f7.PeakDays[0]] {
		t.Errorf("top web-impact day = %d, want a planted peak day", f7.PeakDays[0])
	}
	if len(f7.SmoothedPct) != ds.WindowDays {
		t.Error("smoothed series wrong length")
	}
}

func TestFigure8Taxonomy(t *testing.T) {
	ds := scenario(t)
	tax := ds.Figure8()
	if tax.Total == 0 {
		t.Fatal("empty taxonomy")
	}
	attackedFrac := float64(tax.Attacked) / float64(tax.Total)
	if math.Abs(attackedFrac-0.64) > 0.08 {
		t.Errorf("attacked fraction = %.3f, want ~0.64", attackedFrac)
	}
	preA := float64(tax.AttackedPreexisting) / float64(tax.Attacked)
	if math.Abs(preA-0.186) > 0.06 {
		t.Errorf("preexisting|attacked = %.3f, want ~0.186", preA)
	}
	preN := float64(tax.NoAttackPreexisting) / float64(tax.NoAttack)
	if preN > 0.03 {
		t.Errorf("preexisting|no-attack = %.4f, want ~0.0089", preN)
	}
	migA := float64(tax.AttackedMigrating) / float64(tax.AttackedNonPre)
	if migA < 0.02 || migA > 0.09 {
		t.Errorf("migrating|attacked = %.4f, want ~0.0431", migA)
	}
	migN := float64(tax.NoAttackMigrating) / float64(tax.NoAttackNonPre)
	if migN < 0.015 || migN > 0.06 {
		t.Errorf("migrating|no-attack = %.4f, want ~0.0332", migN)
	}
	// Sanity: the tree sums.
	if tax.Attacked+tax.NoAttack != tax.Total {
		t.Error("tree level 1 does not sum")
	}
	if tax.AttackedPreexisting+tax.AttackedNonPre != tax.Attacked {
		t.Error("tree level 2 (attacked) does not sum")
	}
	if tax.AttackedMigrating+tax.AttackedNonMigrating != tax.AttackedNonPre {
		t.Error("tree level 3 (attacked) does not sum")
	}
}

func TestFigure9(t *testing.T) {
	ds := scenario(t)
	f9 := ds.Figure9()
	if f9.All.Len() == 0 || f9.Migrating.Len() == 0 {
		t.Fatal("empty frequency CDFs")
	}
	// Migrating sites are attacked less often (Fig 9: 97.83% vs 92.35%
	// within 5 attacks).
	if f9.AtMost5Migrating <= f9.AtMost5All {
		t.Errorf("P(<=5) migrating %.3f should exceed all %.3f", f9.AtMost5Migrating, f9.AtMost5All)
	}
}

func TestFigure10(t *testing.T) {
	ds := scenario(t)
	f10 := ds.Figure10()
	if len(f10) != 4 {
		t.Fatalf("bands = %d", len(f10))
	}
	all, top01 := f10[0], f10[3]
	if all.Sites == 0 {
		t.Fatal("no migrating sites")
	}
	// Intensity accelerates migration: the top band migrates much faster.
	if top01.Sites > 0 && top01.Within1 <= all.Within1 {
		t.Errorf("top 0.1%% within-1-day %.3f should exceed all %.3f", top01.Within1, all.Within1)
	}
	if math.Abs(all.Within1-0.232) > 0.12 {
		t.Errorf("all within-1-day = %.3f, want ~0.232", all.Within1)
	}
	if top01.Sites > 0 && top01.Within6 < 0.85 {
		t.Errorf("top 0.1%% within-6-days = %.3f, want ~0.986", top01.Within6)
	}
}

func TestFigure11(t *testing.T) {
	ds := scenario(t)
	f11 := ds.Figure11()
	if f11.Sites == 0 {
		t.Fatal("no >=4h migrating sites (Wix trigger missing?)")
	}
	// The Wix bulk migration dominates: most migrate within a day.
	if f11.Within1 < 0.4 {
		t.Errorf("within-1-day after >=4h attacks = %.3f, want ~0.676", f11.Within1)
	}
}

func TestJointAttacks(t *testing.T) {
	ds := scenario(t)
	j := ds.JointAttacks()
	if j.CommonTargets == 0 || j.JointTargets == 0 {
		t.Fatal("no joint attacks found")
	}
	if j.JointTargets > j.CommonTargets {
		t.Error("joint > common")
	}
	// Joint attacks concentrate on single ports (77.1% vs 60.6%).
	base := ds.Table7()[0].Share
	if j.SinglePortShare <= base {
		t.Errorf("joint single-port %.3f should exceed base %.3f", j.SinglePortShare, base)
	}
	// 27015/UDP concentration (53% vs 18.5%).
	if j.Port27015Share < 0.3 {
		t.Errorf("joint 27015 share = %.3f, want ~0.53", j.Port27015Share)
	}
	// NTP gains, CharGen halves.
	if j.NTPShare < 0.40 {
		t.Errorf("joint NTP share = %.3f, want ~0.47", j.NTPShare)
	}
	if j.CharGenShare > 0.18 {
		t.Errorf("joint CharGen share = %.3f, want ~0.115", j.CharGenShare)
	}
	// OVH tops the joint-target AS ranking (AS12276, 12.3%).
	if len(j.TopASNs) == 0 {
		t.Fatal("no AS ranking")
	}
	if j.TopASNs[0].Name != "OVH" {
		t.Errorf("top joint AS = %q (%.3f), want OVH", j.TopASNs[0].Name, j.TopASNs[0].Share)
	}
	// US and CN lead the joint country ranking.
	if len(j.TopCountries) < 2 || j.TopCountries[0].Country != "US" || j.TopCountries[1].Country != "CN" {
		t.Errorf("joint countries = %+v", j.TopCountries)
	}
}

func TestTargetsIn24s(t *testing.T) {
	ds := scenario(t)
	n := ds.TargetsIn24s()
	frac := float64(n) / float64(ds.Plan.NumActive24())
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("attacked /24 fraction = %.3f, want ~1/3", frac)
	}
}

func TestDatasetWithoutHistory(t *testing.T) {
	ds := scenario(t)
	bare := New(ds.Telescope, ds.Honeypot, ds.Plan, nil, ds.WindowDays)
	if rows := bare.Table1(); rows[2].Events == 0 {
		t.Error("Table1 broken without history")
	}
	if tax := bare.Figure8(); tax.Total != 0 {
		t.Error("taxonomy should be empty without history")
	}
	if w := bare.WebImpactStats(); w.SitesEverAttacked != 0 {
		t.Error("web impact should be empty without history")
	}
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func maxAt(v []float64) (float64, int) {
	best, at := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, at = x, i
		}
	}
	return best, at
}

func TestMailImpact(t *testing.T) {
	ds := scenario(t)
	m := ds.MailImpactStats()
	if m.DomainsEverAffected == 0 {
		t.Fatal("no mail impact measured")
	}
	if m.Fraction <= 0 || m.Fraction > 0.8 {
		t.Errorf("mail-affected fraction = %.3f", m.Fraction)
	}
	if m.AttackedMailIPs == 0 || len(m.TopClusters) == 0 {
		t.Fatalf("mail clusters missing: %+v", m)
	}
	// Clusters are sorted by affected domains, and the biggest cluster
	// belongs to a mega hoster (GoDaddy-scale: >= hundreds of domains).
	if m.TopClusters[0].Domains < 200 {
		t.Errorf("top mail cluster only %d domains", m.TopClusters[0].Domains)
	}
	for i := 1; i < len(m.TopClusters); i++ {
		if m.TopClusters[i].Domains > m.TopClusters[i-1].Domains {
			t.Fatal("clusters not sorted")
		}
	}
	// Without an index the analysis degrades gracefully.
	bare := New(ds.Telescope, ds.Honeypot, ds.Plan, ds.History, ds.WindowDays)
	if got := bare.MailImpactStats(); got.DomainsEverAffected != 0 {
		t.Error("mail impact without index should be empty")
	}
}

// TestWebJoinMemoizedPerStoreVersion checks the version-counter memo:
// chained analyses share one web join, and an Add to either attack store
// invalidates it (and the intensity stats) on the next call.
func TestWebJoinMemoizedPerStoreVersion(t *testing.T) {
	sc, err := dossim.Generate(dossim.Config{Seed: 5, Scale: 0.0003})
	if err != nil {
		t.Fatal(err)
	}
	ds := New(sc.Telescope, sc.Honeypot, sc.Plan, sc.History, sc.Cfg.WindowDays)

	j1 := ds.webJoinResult()
	ds.Figure6()
	ds.Figure7()
	if ds.webJoinResult() != j1 {
		t.Fatal("chained figures recomputed the web join without a store mutation")
	}

	ds.Honeypot.Add(attack.Event{
		Source: attack.SourceHoneypot, Vector: attack.VectorNTP,
		Target: sc.Honeypot.Events()[0].Target,
		Start:  attack.WindowStart + 3600, End: attack.WindowStart + 7200,
		AvgRPS: 1,
	})
	j2 := ds.webJoinResult()
	if j2 == j1 {
		t.Fatal("web join not recomputed after Store.Add bumped the version")
	}
	if ds.webJoinResult() != j2 {
		t.Fatal("web join recomputed again without a further mutation")
	}
}

// TestCachesInvalidateOnAddBatch checks that the batched live-ingest
// path (the amppot periodic flush) bumps the store version like
// event-at-a-time Add, so the Dataset's memoized intermediates are
// recomputed after a flush instead of serving stale results.
func TestCachesInvalidateOnAddBatch(t *testing.T) {
	sc, err := dossim.Generate(dossim.Config{Seed: 6, Scale: 0.0003})
	if err != nil {
		t.Fatal(err)
	}
	ds := New(sc.Telescope, sc.Honeypot, sc.Plan, sc.History, sc.Cfg.WindowDays)

	j1 := ds.webJoinResult()
	target := sc.Honeypot.Events()[0].Target
	ds.Honeypot.AddBatch([]attack.Event{
		{
			Source: attack.SourceHoneypot, Vector: attack.VectorNTP,
			Target: target,
			Start:  attack.WindowStart + 3600, End: attack.WindowStart + 7200,
			AvgRPS: 1,
		},
		{
			Source: attack.SourceHoneypot, Vector: attack.VectorDNS,
			Target: target,
			Start:  attack.WindowStart + 9000, End: attack.WindowStart + 9600,
			AvgRPS: 2,
		},
	})
	if ds.webJoinResult() == j1 {
		t.Fatal("web join not recomputed after Store.AddBatch bumped the version")
	}
}

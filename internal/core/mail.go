package core

import (
	"sort"

	"doscope/internal/attack"
	"doscope/internal/netx"
)

// MailIndex answers which domains' mail (MX target) is handled at an
// address on a day. webmodel.Population implements it; the §8 extension
// of the measurement platform ("query for more DNS RRs on the names found
// in MX records") would populate the same interface from wire data.
type MailIndex interface {
	ForEachMailDomainOn(addr netx.Addr, day int, fn func(id uint32))
}

// MailImpact summarizes the §8 extension: the effect of attacks on mail
// infrastructure.
type MailImpact struct {
	// DomainsEverAffected counts domains whose MX resolved to an attacked
	// IP at attack time at least once.
	DomainsEverAffected int
	// Fraction over the measured namespace.
	Fraction float64
	// DailyAvg is the mean number of domains with attacked mail per day.
	DailyAvg float64
	// AttackedMailIPs counts distinct attacked addresses serving mail.
	AttackedMailIPs int
	// TopClusters lists the largest attacked mail clusters by affected
	// domain count.
	TopClusters []MailCluster
}

// MailCluster is one attacked mail-serving address.
type MailCluster struct {
	Addr    netx.Addr
	Domains int
	Events  int
}

// MailImpactStats computes the mail-infrastructure analysis; the Dataset
// must have been built with a MailIndex (SetMailIndex).
func (ds *Dataset) MailImpactStats() MailImpact {
	var m MailImpact
	if ds.MailIdx == nil || ds.History == nil {
		return m
	}
	nd := ds.History.NumDomains()
	affected := make([]bool, nd)
	stamp := make([]int32, nd)
	for i := range stamp {
		stamp[i] = -1
	}
	daily := make([]float64, ds.WindowDays)
	type cluster struct {
		domains map[uint32]struct{}
		events  int
	}
	clusters := make(map[netx.Addr]*cluster)
	ds.allEvents(func(e *attack.Event) {
		day := e.Day()
		if day < 0 || day >= ds.WindowDays {
			return
		}
		var cl *cluster
		ds.MailIdx.ForEachMailDomainOn(e.Target, day, func(id uint32) {
			if cl == nil {
				cl = clusters[e.Target]
				if cl == nil {
					cl = &cluster{domains: make(map[uint32]struct{})}
					clusters[e.Target] = cl
				}
			}
			affected[id] = true
			cl.domains[id] = struct{}{}
			if stamp[id] != int32(day) {
				stamp[id] = int32(day)
				daily[day]++
			}
		})
		if cl != nil {
			cl.events++
		}
	})
	for _, a := range affected {
		if a {
			m.DomainsEverAffected++
		}
	}
	alive := 0
	for id := 0; id < nd; id++ {
		if len(ds.History.Segments[id]) > 0 {
			alive++
		}
	}
	if alive > 0 {
		m.Fraction = float64(m.DomainsEverAffected) / float64(alive)
	}
	var sum float64
	for _, v := range daily {
		sum += v
	}
	m.DailyAvg = sum / float64(len(daily))
	m.AttackedMailIPs = len(clusters)
	for addr, cl := range clusters {
		m.TopClusters = append(m.TopClusters, MailCluster{Addr: addr, Domains: len(cl.domains), Events: cl.events})
	}
	sort.Slice(m.TopClusters, func(i, j int) bool {
		if m.TopClusters[i].Domains != m.TopClusters[j].Domains {
			return m.TopClusters[i].Domains > m.TopClusters[j].Domains
		}
		return m.TopClusters[i].Addr < m.TopClusters[j].Addr
	})
	if len(m.TopClusters) > 5 {
		m.TopClusters = m.TopClusters[:5]
	}
	return m
}
